(* Benchmark harness.

   Running this executable regenerates every table and figure of the
   paper's evaluation (DESIGN.md maps experiment ids to paper artifacts;
   EXPERIMENTS.md records paper-vs-measured numbers):

     dune exec bench/main.exe                 # all experiments, fast scale
     dune exec bench/main.exe -- fig5 fig6    # a subset
     dune exec bench/main.exe -- --paper      # paper-scale Monte-Carlo (slow)
     dune exec bench/main.exe -- --bechamel   # only the Bechamel microbenches

   After the experiment regeneration, a Bechamel micro-benchmark suite
   times the computational core of each table/figure driver plus the
   engine primitives (one [Test.make] per artifact). *)

open Sfi_util
open Sfi_core

(* ---------- Bechamel microbenchmark suite ---------- *)

let bechamel_suite () =
  let open Bechamel in
  (* Shared fixtures, built once. *)
  let flow = Flow.create ~config:{ Flow.default_config with Flow.char_cycles = 600 } () in
  let alu = Flow.alu flow in
  let db = Flow.char_db flow ~vdd:0.7 in
  let median_small = Sfi_kernels.Median.create ~n:17 () in
  let matmul_small = Sfi_kernels.Matmul.create ~n:6 ~bits:8 () in
  let model_c = Flow.model_c flow ~vdd:0.7 ~sigma:0.010 () in
  let model_bplus = Flow.model_bplus flow ~vdd:0.7 ~sigma:0.010 in
  let logic = Sfi_netlist.Logic_sim.create alu.Sfi_netlist.Alu.circuit in
  let dta = Sfi_timing.Dta.create alu.Sfi_netlist.Alu.circuit in
  let rng = Rng.of_int 77 in
  let tests =
    [
      (* one Test.make per table / figure driver *)
      Test.make ~name:"table1:iss-fault-free-run"
        (Staged.stage (fun () -> ignore (Sfi_kernels.Bench.run_fault_free median_small)));
      Test.make ~name:"table2:model-feature-rows"
        (Staged.stage (fun () -> ignore (Sfi_fi.Model.feature_rows ())));
      Test.make ~name:"fig1:bplus-injector-hook"
        (Staged.stage (fun () ->
             let injector =
               Sfi_fi.Injector.create ~model:model_bplus ~freq_mhz:663. ~rng
             in
             ignore
               (Sfi_fi.Injector.hook injector ~cycle:0 ~cls:Op_class.Add ~a:1 ~b:2
                  ~result:3)));
      Test.make ~name:"fig2:cdf-probability-eval"
        (Staged.stage (fun () ->
             ignore
               (Sfi_timing.Characterize.error_probability db Op_class.Mul ~endpoint:24
                  ~period_ps:1100. ~scale:1.03)));
      Test.make ~name:"fig3:sta-full-alu"
        (Staged.stage (fun () -> ignore (Sfi_timing.Sta.analyze alu.Sfi_netlist.Alu.circuit)));
      Test.make ~name:"fig4:model-c-op-stream-100"
        (Staged.stage (fun () ->
             let injector = Sfi_fi.Injector.create ~model:model_c ~freq_mhz:850. ~rng in
             let hook = Sfi_fi.Injector.hook injector in
             for i = 1 to 100 do
               let a = Rng.bits32 rng and b = Rng.bits32 rng in
               ignore (hook ~cycle:i ~cls:Op_class.Add ~a ~b ~result:(U32.add a b))
             done));
      Test.make ~name:"fig5:mc-trial-median"
        (Staged.stage (fun () ->
             ignore
               (Sfi_fi.Campaign.run_trial ~bench:median_small ~model:model_c
                  ~freq_mhz:820. ~seed:(Rng.bits32 rng))));
      Test.make ~name:"fig6:mc-trial-matmul"
        (Staged.stage (fun () ->
             ignore
               (Sfi_fi.Campaign.run_trial ~bench:matmul_small ~model:model_c
                  ~freq_mhz:760. ~seed:(Rng.bits32 rng))));
      Test.make ~name:"fig7:power-model-eval"
        (Staged.stage (fun () ->
             ignore (Power.normalized ~vdd:0.66);
             ignore (Power.equivalent_vdd Sfi_timing.Vdd_model.default ~headroom_ratio:1.05)));
      (* engine primitives *)
      Test.make ~name:"engine:logic-sim-alu-eval"
        (Staged.stage (fun () ->
             Sfi_netlist.Alu.drive alu logic Op_class.Mul (Rng.bits32 rng) (Rng.bits32 rng);
             Sfi_netlist.Logic_sim.eval logic));
      Test.make ~name:"engine:dta-alu-cycle"
        (Staged.stage (fun () ->
             Sfi_timing.Dta.set_input_vec dta alu.Sfi_netlist.Alu.a (Rng.bits32 rng);
             Sfi_timing.Dta.set_input_vec dta alu.Sfi_netlist.Alu.b (Rng.bits32 rng);
             Sfi_timing.Dta.cycle dta));
      Test.make ~name:"engine:iss-small-program"
        (Staged.stage
           (let program =
              Sfi_isa.Asm.assemble_exn
                {|
        l.addi r1, r0, 111
loop:   l.addi r2, r2, 3
        l.mul  r3, r2, r1
        l.xor  r4, r3, r2
        l.addi r1, r1, -1
        l.sfnei r1, 0
        l.bf   loop
        l.nop  0x1
                |}
            in
            fun () ->
              let mem = Sfi_sim.Memory.create ~size:4096 in
              Sfi_sim.Memory.load_program mem program;
              ignore (Sfi_sim.Cpu.run mem ~entry:0)));
    ]
  in
  let test = Test.make_grouped ~name:"sfi" ~fmt:"%s/%s" tests in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~kde:None () in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> rows := (name, est) :: !rows
      | _ -> ())
    results;
  let t =
    Table.create ~title:"Bechamel microbenchmarks (monotonic clock)"
      [ ("benchmark", Table.Left); ("time/run", Table.Right) ]
  in
  let fmt_ns ns =
    if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
    else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  List.iter
    (fun (name, est) -> Table.add_row t [ name; fmt_ns est ])
    (List.sort compare !rows);
  Table.print t

(* ---------- driver ---------- *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let paper = List.mem "--paper" args in
  let bechamel_only = List.mem "--bechamel" args in
  let skip_bechamel = List.mem "--no-bechamel" args in
  let ids = List.filter (fun a -> String.length a > 0 && a.[0] <> '-') args in
  if not bechamel_only then begin
    let scale = if paper then Experiments.paper else Experiments.fast in
    Printf.printf "regenerating %s at %s scale\n\n%!"
      (if ids = [] then "all tables and figures" else String.concat ", " ids)
      scale.Experiments.label;
    let ctx = Experiments.make_ctx scale in
    Experiments.run ctx ids
  end;
  if bechamel_only || ((not skip_bechamel) && ids = []) then bechamel_suite ()
