examples/custom_kernel.ml: Array Flow List Printf Rng Sfi_core Sfi_fi Sfi_isa Sfi_kernels Sfi_sim Sfi_util U32
