examples/instruction_characterization.ml: Characterize Flow List Op_class Printf Sfi_core Sfi_timing Sfi_util Sta Table
