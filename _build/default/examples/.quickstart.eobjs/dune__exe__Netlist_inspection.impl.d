examples/netlist_inspection.ml: Alu Cell Cell_lib Circuit Filename List Path_report Printf Sfi_netlist Sfi_timing Sizing Sta Verilog
