examples/netlist_inspection.mli:
