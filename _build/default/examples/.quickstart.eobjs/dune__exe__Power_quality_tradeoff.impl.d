examples/power_quality_tradeoff.ml: Flow List Power Printf Sfi_core Sfi_fi Sfi_kernels
