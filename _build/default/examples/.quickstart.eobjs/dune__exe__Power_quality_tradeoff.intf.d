examples/power_quality_tradeoff.mli:
