examples/quickstart.ml: Flow List Printf Sfi_core Sfi_fi Sfi_kernels
