examples/quickstart.mli:
