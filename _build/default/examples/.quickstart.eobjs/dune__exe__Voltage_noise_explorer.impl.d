examples/voltage_noise_explorer.ml: Arg Cmd Cmdliner Flow List Printf Sfi_core Sfi_fi Sfi_kernels Sfi_util String Table Term
