examples/voltage_noise_explorer.mli:
