(* Instruction characterization: where does each ALU operation start to
   fail, and which result bits go first?

   This reproduces the paper's Fig. 2 / Fig. 4 style analysis directly
   from the DTA database: per-instruction-class dynamic timing limits,
   per-bit error-probability CDFs, and the effect of operand bit-width.

     dune exec examples/instruction_characterization.exe *)

open Sfi_util
open Sfi_timing
open Sfi_core

let () =
  let config = { Flow.default_config with Flow.char_cycles = 2000 } in
  let flow = Flow.create ~config () in
  let fsta = Flow.sta_limit_mhz flow ~vdd:0.7 in
  Printf.printf "STA limit: %.1f MHz @ 0.7 V\n\n%!" fsta;

  (* Dynamic timing limit of each class, at both supply voltages. *)
  let db07 = Flow.char_db flow ~vdd:0.7 in
  let db08 = Flow.char_db flow ~vdd:0.8 in
  let t =
    Table.create ~title:"Dynamic first-failure frequency per instruction class [MHz]"
      [ ("class", Table.Left); ("@0.7V", Table.Right); ("@0.8V", Table.Right);
        ("margin over STA", Table.Right) ]
  in
  List.iter
    (fun cls ->
      let f07 = Characterize.class_first_failure_mhz db07 cls ~scale:1.0 in
      let f08 = Characterize.class_first_failure_mhz db08 cls ~scale:1.0 in
      Table.add_row t
        [
          Op_class.name cls;
          Printf.sprintf "%.0f" f07;
          Printf.sprintf "%.0f" f08;
          Printf.sprintf "%+.1f%%" (100. *. (f07 -. fsta) /. fsta);
        ])
    Op_class.all;
  Table.print t;

  (* Per-bit CDFs for the multiplier (compare with the paper's Fig. 2). *)
  print_endline "Timing-error probability of l.mul endpoints at 0.7 V:";
  let freqs = [ 750.; 800.; 850.; 900.; 1000.; 1100.; 1300. ] in
  Printf.printf "%8s" "bit";
  List.iter (fun f -> Printf.printf "%9.0f" f) freqs;
  print_newline ();
  List.iter
    (fun bit ->
      Printf.printf "%8d" bit;
      List.iter
        (fun f ->
          let p =
            Characterize.error_probability db07 Op_class.Mul ~endpoint:bit
              ~period_ps:(Sta.period_ps_of_mhz f) ~scale:1.0
          in
          Printf.printf "%8.1f%%" (100. *. p))
        freqs;
      print_newline ())
    [ 0; 3; 8; 16; 24; 31 ];

  (* Operand bit-width conditioning (the paper's 16-bit variants). *)
  let db16 = Flow.char_db ~profile:Characterize.uniform16 flow ~vdd:0.7 in
  Printf.printf
    "\nOperand conditioning: l.add fails at %.0f MHz with 32-bit operands\n\
     but only at %.0f MHz when operands span a 16-bit range (paper Fig. 4).\n"
    (Characterize.class_first_failure_mhz db07 Op_class.Add ~scale:1.0)
    (Characterize.class_first_failure_mhz db16 Op_class.Add ~scale:1.0)
