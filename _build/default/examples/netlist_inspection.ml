(* Netlist inspection: look inside the gate-level model the fault
   statistics come from — cell inventory, per-unit sizing, the critical
   paths through the multiplier, and a structural Verilog export for use
   with external tools.

     dune exec examples/netlist_inspection.exe *)

open Sfi_netlist
open Sfi_timing

let () =
  let alu = Alu.build () in
  Printf.printf "generated ALU: %d gates, logic depth %d, area %.0f units\n"
    (Circuit.gate_count alu.Alu.circuit)
    (Circuit.logic_depth alu.Alu.circuit)
    (Circuit.total_area alu.Alu.circuit ~lib:Cell_lib.default);
  print_endline "cell inventory:";
  List.iter
    (fun (kind, n) -> Printf.printf "  %-6s %5d\n" (Cell.name kind) n)
    (Circuit.count_by_kind alu.Alu.circuit);
  print_endline "gates per unit:";
  List.iter
    (fun (tag, n) -> Printf.printf "  %-8s %5d\n" tag n)
    (Circuit.count_by_tag alu.Alu.circuit);

  (* Virtual synthesis against the case study's 707 MHz constraint. *)
  Sizing.apply_process_variation ~sigma:0.03 ~seed:1 alu.Alu.circuit;
  Sizing.size_to_clock ~clock_mhz:707. alu.Alu.circuit;
  print_endline "\nper-unit worst paths after sizing (ps @ 0.7 V):";
  List.iter
    (fun (tag, worst) -> Printf.printf "  %-8s %7.1f\n" tag worst)
    (Sizing.report alu.Alu.circuit);
  let sta = Sta.analyze alu.Alu.circuit in
  Printf.printf "STA limit: %.1f MHz\n\n" (Sta.max_frequency_mhz sta);

  (* Where does the clock period actually go? *)
  print_endline "critical path of the slowest endpoint:";
  (match Path_report.worst_paths ~count:1 alu.Alu.circuit with
  | [ p ] -> print_string (Path_report.pp p)
  | _ -> ());

  (* Export for external tools. *)
  let path = Filename.temp_file "sfi_alu" ".v" in
  Verilog.write_file ~module_name:"sfi_alu" ~path alu.Alu.circuit;
  Printf.printf "\nstructural Verilog written to %s\n" path;

  (* The cell library is plain text, editable and reloadable. *)
  print_endline "\ncell library (mini-Liberty text format):";
  print_string (Cell_lib.to_text Cell_lib.default)
