lib/core/experiments.mli: Flow
