lib/core/flow.ml: Alu Array Buffer Cell_lib Characterize Circuit Hashtbl List Mutex Noise Option Printf Sfi_fi Sfi_netlist Sfi_timing Sizing Sta Vdd_model
