lib/core/flow.mli: Alu Cell_lib Characterize Sfi_fi Sfi_netlist Sfi_timing Sizing Sta Vdd_model
