lib/core/power.ml: Float List Sfi_timing Vdd_model
