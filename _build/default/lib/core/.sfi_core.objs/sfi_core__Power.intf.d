lib/core/power.mli: Sfi_timing
