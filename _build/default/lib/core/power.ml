open Sfi_timing

(* Quadratic active power through the paper's reference points:
   p(V) = a V^2 with a fitted by least squares to
   (0.6, 10.9) and (0.7, 15.0) uW/MHz. *)
let quad_coeff =
  let pts = [ (0.6, 10.9); (0.7, 15.0) ] in
  let num = List.fold_left (fun acc (v, p) -> acc +. (v *. v *. p)) 0. pts in
  let den = List.fold_left (fun acc (v, _) -> acc +. (v ** 4.)) 0. pts in
  num /. den

let active_uw_per_mhz ~vdd = quad_coeff *. vdd *. vdd

let leakage_fraction ~vdd =
  let f = 0.02 +. ((vdd -. 0.6) *. 0.1) in
  Float.max 0.005 (Float.min 0.10 f)

let total_mw ~vdd ~freq_mhz =
  let active = active_uw_per_mhz ~vdd *. freq_mhz /. 1000. in
  active /. (1. -. leakage_fraction ~vdd)

let normalized ~vdd = total_mw ~vdd ~freq_mhz:707. /. total_mw ~vdd:0.7 ~freq_mhz:707.

let equivalent_vdd vdd_model ~headroom_ratio =
  if headroom_ratio < 1. then invalid_arg "Power.equivalent_vdd: ratio must be >= 1";
  (* Bisection on the monotone derate curve: find V with
     derate(V) = headroom_ratio (derate(0.7) = 1). *)
  let target = headroom_ratio in
  let lo = ref 0.45 and hi = ref 0.7 in
  for _ = 1 to 60 do
    let mid = (!lo +. !hi) /. 2. in
    if Vdd_model.derate vdd_model mid > target then lo := mid else hi := mid
  done;
  (!lo +. !hi) /. 2.
