(** Core power model (paper §4.4, footnote 2).

    The paper translates frequency-over-scaling headroom into an
    equivalent supply reduction and computes power from two post-layout
    reference points — 10.9 uW/MHz at 0.6 V and 15.0 uW/MHz at 0.7 V —
    with quadratic scaling of active power between them, and core leakage
    of 2% / 3% of total power at the two points. *)

val active_uw_per_mhz : vdd:float -> float
(** Quadratic fit through the paper's two reference points. *)

val leakage_fraction : vdd:float -> float
(** Linear interpolation through (0.6 V, 2%) and (0.7 V, 3%). *)

val total_mw : vdd:float -> freq_mhz:float -> float
(** Active plus leakage core power. *)

val normalized : vdd:float -> float
(** Core power at [vdd] relative to the nominal 0.7 V at the same fixed
    frequency (the x-axis of Fig. 7). *)

val equivalent_vdd : Sfi_timing.Vdd_model.t -> headroom_ratio:float -> float
(** [equivalent_vdd m ~headroom_ratio] finds the reduced supply at which
    all delays grow by [headroom_ratio] (>= 1): the voltage the core can
    drop to when it has that much frequency headroom at the nominal
    supply. Solved on the fitted Vdd-delay curve. *)
