lib/fi/campaign.ml: Bench Cpu Float Hashtbl Injector List Rng Sfi_isa Sfi_kernels Sfi_sim Sfi_util
