lib/fi/campaign.ml: Array Bench Cpu Float Hashtbl Injector List Mutex Pool Rng Sfi_isa Sfi_kernels Sfi_sim Sfi_util
