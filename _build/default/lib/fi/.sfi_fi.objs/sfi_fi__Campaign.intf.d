lib/fi/campaign.mli: Bench Model Sfi_kernels
