lib/fi/injector.ml: Array Cdf Characterize Float Model Noise Op_class Rng Sfi_sim Sfi_timing Sfi_util Sta U32 Vdd_model
