lib/fi/injector.mli: Model Rng Sfi_sim Sfi_util
