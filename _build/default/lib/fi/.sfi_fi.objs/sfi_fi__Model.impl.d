lib/fi/model.ml: Characterize Noise Sfi_timing Vdd_model
