lib/fi/model.mli: Characterize Noise Sfi_timing Vdd_model
