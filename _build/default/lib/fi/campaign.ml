open Sfi_util
open Sfi_sim
open Sfi_kernels

type trial = {
  finished : bool;
  correct : bool;
  fault_bits : int;
  fault_events : int;
  kernel_cycles : int;
  error : float;
}

type point = {
  freq_mhz : float;
  trials : int;
  finished_rate : float;
  correct_rate : float;
  fi_per_kcycle : float;
  mean_error : float;
  any_fault_possible : bool;
}

(* Fault-free cycle counts, cached per benchmark so watchdog budgets do
   not require a reference run per trial. *)
let reference_cycles =
  let cache : (string, int) Hashtbl.t = Hashtbl.create 8 in
  fun (bench : Bench.t) ->
    match Hashtbl.find_opt cache bench.Bench.name with
    | Some c -> c
    | None ->
      let stats, _ = Bench.run_fault_free bench in
      Hashtbl.replace cache bench.Bench.name stats.Cpu.cycles;
      stats.Cpu.cycles

let run_trial_with ~bench ~model ~freq_mhz ~rng =
  let injector = Injector.create ~model ~freq_mhz ~rng in
  let budget = (3 * reference_cycles bench) + 65536 in
  let config =
    {
      Cpu.default_config with
      Cpu.max_cycles = budget;
      Cpu.fault_hook = Some (Injector.hook injector);
    }
  in
  let mem = Bench.fresh_memory bench in
  let stats = Cpu.run ~config mem ~entry:bench.Bench.program.Sfi_isa.Program.entry in
  let finished = stats.Cpu.outcome = Cpu.Exited in
  let actual = if finished then Bench.read_output bench mem else [||] in
  let correct = finished && actual = bench.Bench.golden in
  let error =
    if finished then bench.Bench.metric ~expected:bench.Bench.golden ~actual else nan
  in
  let kernel_cycles = max 1 stats.Cpu.kernel_cycles in
  {
    finished;
    correct;
    fault_bits = Injector.fault_bits injector;
    fault_events = Injector.fault_events injector;
    kernel_cycles;
    error;
  }

let run_trial ~bench ~model ~freq_mhz ~seed =
  run_trial_with ~bench ~model ~freq_mhz ~rng:(Rng.of_int seed)

let aggregate ~freq_mhz ~any_fault_possible trials_list =
  let n = List.length trials_list in
  let fn = float_of_int n in
  let finished_rate =
    float_of_int (List.length (List.filter (fun t -> t.finished) trials_list)) /. fn
  in
  let correct_rate =
    float_of_int (List.length (List.filter (fun t -> t.correct) trials_list)) /. fn
  in
  let fi_per_kcycle =
    List.fold_left
      (fun acc t -> acc +. (1000. *. float_of_int t.fault_bits /. float_of_int t.kernel_cycles))
      0. trials_list
    /. fn
  in
  let finished_errors =
    List.filter_map (fun t -> if t.finished then Some t.error else None) trials_list
  in
  let mean_error =
    match finished_errors with
    | [] -> nan
    | errs -> List.fold_left ( +. ) 0. errs /. float_of_int (List.length errs)
  in
  {
    freq_mhz;
    trials = n;
    finished_rate;
    correct_rate;
    fi_per_kcycle;
    mean_error;
    any_fault_possible;
  }

let run_point ?(trials = 100) ?(seed = 1) ~bench ~model ~freq_mhz () =
  if trials < 1 then invalid_arg "Campaign.run_point: trials must be positive";
  let root = Rng.of_int (seed lxor 0x0F1) in
  let probe = Injector.create ~model ~freq_mhz ~rng:(Rng.copy root) in
  if Injector.cannot_inject probe then begin
    (* Deterministic fault-free region: one run represents all trials. *)
    let t = run_trial_with ~bench ~model ~freq_mhz ~rng:(Rng.copy root) in
    aggregate ~freq_mhz ~any_fault_possible:false [ t ]
  end
  else begin
    let results =
      List.init trials (fun _ ->
          let rng = Rng.split root in
          run_trial_with ~bench ~model ~freq_mhz ~rng)
    in
    aggregate ~freq_mhz ~any_fault_possible:true results
  end

let sweep ?(trials = 100) ?(seed = 1) ~bench ~model ~freqs_mhz () =
  List.map (fun freq_mhz -> run_point ~trials ~seed ~bench ~model ~freq_mhz ()) freqs_mhz

let point_of_first_failure points =
  points
  |> List.filter (fun p -> p.correct_rate < 1.0)
  |> List.fold_left
       (fun acc p ->
         match acc with
         | None -> Some p.freq_mhz
         | Some f -> Some (Float.min f p.freq_mhz))
       None
