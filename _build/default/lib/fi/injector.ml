open Sfi_util
open Sfi_timing

type t = {
  hook : Sfi_sim.Cpu.fault_hook;
  mutable bits : int;
  mutable events : int;
  by_class : int array;
  cannot : bool;
}

let record t cls mask =
  if mask <> 0 then begin
    let n = U32.popcount mask in
    t.bits <- t.bits + n;
    t.events <- t.events + 1;
    let i = Op_class.index cls in
    t.by_class.(i) <- t.by_class.(i) + n
  end;
  mask

(* Worst-case (slowest) delay modulation this noise model can produce at
   this operating voltage, relative to the voltage the timing data was
   taken at. *)
let worst_scale ~vdd_model ~vdd ~ref_vdd ~noise =
  Vdd_model.derate vdd_model (vdd -. Noise.max_excursion noise)
  /. Vdd_model.derate vdd_model ref_vdd

let scale_of_noise ~vdd_model ~vdd ~ref_vdd noise_v =
  Vdd_model.derate vdd_model (vdd +. noise_v) /. Vdd_model.derate vdd_model ref_vdd

let create ~model ~freq_mhz ~rng =
  let period = Sta.period_ps_of_mhz freq_mhz in
  match model with
  | Model.Fixed_probability { bit_flip_prob } ->
    let cannot = bit_flip_prob <= 0. in
    let rec t =
      {
        hook =
          (fun ~cycle:_ ~cls ~a:_ ~b:_ ~result:_ ->
            if cannot then 0
            else begin
              let mask = ref 0 in
              for e = 0 to 31 do
                if Rng.bernoulli rng bit_flip_prob then mask := !mask lor (1 lsl e)
              done;
              record t cls !mask
            end);
        bits = 0;
        events = 0;
        by_class = Array.make Op_class.count 0;
        cannot;
      }
    in
    t
  | Model.Static_timing { endpoint_arrivals; setup_ps; vdd; noise; vdd_model } ->
    let with_setup = Array.map (fun a -> a +. setup_ps) endpoint_arrivals in
    let max_arrival = Array.fold_left Float.max 0. with_setup in
    let cannot =
      max_arrival *. worst_scale ~vdd_model ~vdd ~ref_vdd:vdd ~noise <= period
    in
    let mask_at threshold =
      (* threshold = period / scale; endpoint faults iff arrival+setup
         exceeds it *)
      let mask = ref 0 in
      Array.iteri (fun e a -> if a > threshold then mask := !mask lor (1 lsl e)) with_setup;
      !mask
    in
    let static_mask = mask_at period in
    let has_noise = Noise.sigma noise > 0. in
    let rec t =
      {
        hook =
          (fun ~cycle:_ ~cls ~a:_ ~b:_ ~result:_ ->
            if cannot then 0
            else if not has_noise then record t cls static_mask
            else begin
              let nv = Noise.draw noise rng in
              let scale = scale_of_noise ~vdd_model ~vdd ~ref_vdd:vdd nv in
              record t cls (mask_at (period /. scale))
            end);
        bits = 0;
        events = 0;
        by_class = Array.make Op_class.count 0;
        cannot;
      }
    in
    t
  | Model.Statistical { db; vdd; noise; vdd_model; sampling } ->
    let ref_vdd = db.Characterize.vdd in
    let setup = db.Characterize.setup_ps in
    let cannot =
      let ws = worst_scale ~vdd_model ~vdd ~ref_vdd ~noise in
      (db.Characterize.max_settle +. setup) *. ws <= period
    in
    (* Per class: per-endpoint maximum settle, for cheap skipping. *)
    let class_caps =
      Array.map
        (fun (c : Characterize.class_db) ->
          Array.map Cdf.max_value c.Characterize.endpoint_cdfs)
        db.Characterize.classes
    in
    let rec t =
      {
        hook =
          (fun ~cycle:_ ~cls ~a:_ ~b:_ ~result:_ ->
            if cannot then 0
            else begin
              let nv = Noise.draw noise rng in
              let scale = scale_of_noise ~vdd_model ~vdd ~ref_vdd nv in
              let threshold = (period /. scale) -. setup in
              let ci = Op_class.index cls in
              let cdb = db.Characterize.classes.(ci) in
              if cdb.Characterize.max_settle <= threshold then 0
              else begin
                match sampling with
                | Model.Vector_correlated ->
                  let k = Rng.int rng db.Characterize.cycles in
                  let row = cdb.Characterize.cycle_arrivals.(k) in
                  let mask = ref 0 in
                  Array.iteri
                    (fun e s -> if s > threshold then mask := !mask lor (1 lsl e))
                    row;
                  record t cls !mask
                | Model.Independent ->
                  let caps = class_caps.(ci) in
                  let mask = ref 0 in
                  for e = 0 to Array.length caps - 1 do
                    if caps.(e) > threshold then begin
                      let p =
                        Cdf.prob_greater cdb.Characterize.endpoint_cdfs.(e) threshold
                      in
                      if Rng.bernoulli rng p then mask := !mask lor (1 lsl e)
                    end
                  done;
                  record t cls !mask
              end
            end);
        bits = 0;
        events = 0;
        by_class = Array.make Op_class.count 0;
        cannot;
      }
    in
    t

let hook t = t.hook

let fault_bits t = t.bits

let fault_events t = t.events

let fault_bits_by_class t = Array.copy t.by_class

let cannot_inject t = t.cannot
