(** Per-cycle fault injection: turns a {!Model.t} and an operating
    frequency into the {!Sfi_sim.Cpu.fault_hook} the simulator calls at
    every ALU execution, and counts the injected bit flips (the paper's
    "FIs per kCycle" numerator).

    The injector draws one supply-noise sample per ALU execution cycle.
    The paper draws one per clock cycle, but noise samples are i.i.d. and
    only the cycles with an ALU instruction in EX can inject, so the fault
    statistics are identical and the bubble-cycle draws are skipped.

    A fast path makes the "no errors possible" region cheap: when even the
    worst clipped noise excursion cannot make any characterized path (or
    static endpoint) violate the period, the hook is a constant zero. *)

open Sfi_util

type t

val create : model:Model.t -> freq_mhz:float -> rng:Rng.t -> t

val hook : t -> Sfi_sim.Cpu.fault_hook

val fault_bits : t -> int
(** Total bits flipped so far. *)

val fault_events : t -> int
(** ALU executions in which at least one bit flipped. *)

val fault_bits_by_class : t -> int array
(** Bit flips per {!Sfi_util.Op_class.index}: which instruction classes
    actually drive a workload's faults. *)

val cannot_inject : t -> bool
(** [true] when the fast path proves no fault can ever be injected at this
    operating point: the whole Monte-Carlo trial set is then a single
    deterministic fault-free run. *)
