open Sfi_timing

type sampling = Independent | Vector_correlated

type t =
  | Fixed_probability of { bit_flip_prob : float }
  | Static_timing of {
      endpoint_arrivals : float array;
      setup_ps : float;
      vdd : float;
      noise : Noise.t;
      vdd_model : Vdd_model.t;
    }
  | Statistical of {
      db : Characterize.t;
      vdd : float;
      noise : Noise.t;
      vdd_model : Vdd_model.t;
      sampling : sampling;
    }

let name = function
  | Fixed_probability _ -> "A"
  | Static_timing { noise; _ } -> if Noise.sigma noise = 0. then "B" else "B+"
  | Statistical { sampling = Independent; _ } -> "C"
  | Statistical { sampling = Vector_correlated; _ } -> "C-corr"

type features = {
  technique : string;
  timing_data : string;
  multi_vdd : bool;
  vdd_noise : bool;
  gate_level_aware : string;
  instruction_aware : bool;
}

let features_a =
  {
    technique = "fixed probability";
    timing_data = "none";
    multi_vdd = false;
    vdd_noise = false;
    gate_level_aware = "no";
    instruction_aware = false;
  }

let features_b =
  {
    technique = "fixed period violation";
    timing_data = "STA";
    multi_vdd = true;
    vdd_noise = false;
    gate_level_aware = "partially";
    instruction_aware = false;
  }

let features_bplus =
  {
    technique = "modulated period violation";
    timing_data = "STA";
    multi_vdd = true;
    vdd_noise = true;
    gate_level_aware = "partially";
    instruction_aware = false;
  }

let features_c =
  {
    technique = "probabilistic period violation (using CDFs)";
    timing_data = "DTA";
    multi_vdd = true;
    vdd_noise = true;
    gate_level_aware = "yes";
    instruction_aware = true;
  }

let features = function
  | Fixed_probability _ -> features_a
  | Static_timing { noise; _ } -> if Noise.sigma noise = 0. then features_b else features_bplus
  | Statistical _ -> features_c

let feature_rows () =
  [ ("A", features_a); ("B", features_b); ("B+", features_bplus); ("C", features_c) ]
