(** The four timing-error models of Table 2.

    - Model A — fixed-probability random bit flips, the conventional
      baseline: no link to timing, voltage, or the circuit.
    - Model B — static-timing based: a fault hits every endpoint whose
      worst static path exceeds the clock period, whenever any ALU
      instruction activates the stage.
    - Model B+ — model B with per-cycle supply-voltage noise modulating
      all path delays through the fitted Vdd-delay curve.
    - Model C — the paper's contribution: instruction-aware statistical
      injection using per-endpoint DTA distributions, combined with the
      noise model.

    Model C supports two endpoint-sampling strategies: [Independent]
    (each endpoint drawn with its own probability — the paper's §3.4
    step 3) and [Vector_correlated] (one characterization cycle drawn
    per simulation cycle, yielding the joint endpoint pattern that cycle
    produced — an extension evaluated as an ablation). *)

open Sfi_timing

type sampling = Independent | Vector_correlated

type t =
  | Fixed_probability of { bit_flip_prob : float }
  | Static_timing of {
      endpoint_arrivals : float array;  (** per-endpoint worst STA arrival,
                                            ps, at the operating voltage *)
      setup_ps : float;
      vdd : float;
      noise : Noise.t;                  (** [Noise.none] gives model B *)
      vdd_model : Vdd_model.t;
    }
  | Statistical of {
      db : Characterize.t;
      vdd : float;      (** operating voltage; CDFs characterized at
                            [db.vdd] are rescaled when it differs *)
      noise : Noise.t;
      vdd_model : Vdd_model.t;
      sampling : sampling;
    }

val name : t -> string
(** "A", "B", "B+", "C" or "C-corr". *)

type features = {
  technique : string;
  timing_data : string;
  multi_vdd : bool;
  vdd_noise : bool;
  gate_level_aware : string;
  instruction_aware : bool;
}

val features : t -> features
(** The Table 2 row for the model. *)

val feature_rows : unit -> (string * features) list
(** All four rows of Table 2 (static metadata, independent of any
    instantiation). *)
