lib/isa/asm.ml: Array Encode Insn List Printf Program String
