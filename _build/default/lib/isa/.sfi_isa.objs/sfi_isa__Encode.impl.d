lib/isa/encode.ml: Insn Option Result Sfi_util U32
