lib/isa/encode.mli: Insn Sfi_util U32
