lib/isa/insn.ml: List Op_class Printf Sfi_util
