lib/isa/insn.mli: Op_class Sfi_util
