lib/isa/program.ml: Array Buffer Encode Hashtbl Insn List Printf Sfi_util U32
