lib/isa/program.mli: Insn Sfi_util U32
