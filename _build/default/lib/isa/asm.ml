type error = { line : int; message : string }

exception Asm_error of error

let fail line fmt = Printf.ksprintf (fun message -> raise (Asm_error { line; message })) fmt

(* ---------- expressions ---------- *)

type expr =
  | Num of int
  | Sym of string
  | Plus of expr * expr
  | Minus of expr * expr
  | Hi of expr
  | Lo of expr

(* Recursive-descent parser over a string; grammar:
     expr   := term (('+' | '-') term)*
     term   := number | symbol | 'hi' '(' expr ')' | 'lo' '(' expr ')'
               | '-' term *)
let parse_expr ~line s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t') do
      incr pos
    done
  in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '.' || c = '$'
  in
  let read_while pred =
    let start = !pos in
    while !pos < n && pred s.[!pos] do
      incr pos
    done;
    String.sub s start (!pos - start)
  in
  let rec term () =
    skip_ws ();
    match peek () with
    | None -> fail line "expected expression in %S" s
    | Some '-' ->
      incr pos;
      let t = term () in
      Minus (Num 0, t)
    | Some '(' ->
      incr pos;
      let e = expr () in
      skip_ws ();
      if peek () = Some ')' then begin
        incr pos;
        e
      end
      else fail line "missing ')' in %S" s
    | Some c when c >= '0' && c <= '9' ->
      let tok = read_while (fun c -> is_ident_char c) in
      (match int_of_string_opt tok with
      | Some v -> Num v
      | None -> fail line "bad number %S" tok)
    | Some c when is_ident_char c ->
      let tok = read_while is_ident_char in
      skip_ws ();
      if (tok = "hi" || tok = "lo") && peek () = Some '(' then begin
        incr pos;
        let e = expr () in
        skip_ws ();
        if peek () <> Some ')' then fail line "missing ')' after %s(" tok;
        incr pos;
        if tok = "hi" then Hi e else Lo e
      end
      else Sym tok
    | Some c -> fail line "unexpected character %C in %S" c s
  and expr () =
    let lhs = ref (term ()) in
    let continue = ref true in
    while !continue do
      skip_ws ();
      match peek () with
      | Some '+' ->
        incr pos;
        lhs := Plus (!lhs, term ())
      | Some '-' ->
        incr pos;
        lhs := Minus (!lhs, term ())
      | _ -> continue := false
    done;
    !lhs
  in
  let e = expr () in
  skip_ws ();
  if !pos <> n then fail line "trailing junk in expression %S" s;
  e

let rec eval_expr ~line ~symbols = function
  | Num v -> v
  | Sym name -> begin
    match List.assoc_opt name symbols with
    | Some v -> v
    | None -> fail line "undefined symbol %S" name
  end
  | Plus (a, b) -> eval_expr ~line ~symbols a + eval_expr ~line ~symbols b
  | Minus (a, b) -> eval_expr ~line ~symbols a - eval_expr ~line ~symbols b
  | Hi e -> (eval_expr ~line ~symbols e lsr 16) land 0xFFFF
  | Lo e -> eval_expr ~line ~symbols e land 0xFFFF

(* ---------- line scanning ---------- *)

let strip_comment line =
  let cut = ref (String.length line) in
  let check i c =
    match c with
    | '#' | ';' -> if i < !cut then cut := i
    | '/' when i + 1 < String.length line && line.[i + 1] = '/' -> if i < !cut then cut := i
    | _ -> ()
  in
  String.iteri check line;
  String.sub line 0 !cut

let split_commas s =
  (* Split on commas that are not inside parentheses. *)
  let parts = ref [] in
  let depth = ref 0 in
  let start = ref 0 in
  String.iteri
    (fun i c ->
      match c with
      | '(' -> incr depth
      | ')' -> decr depth
      | ',' when !depth = 0 ->
        parts := String.sub s !start (i - !start) :: !parts;
        start := i + 1
      | _ -> ())
    s;
  parts := String.sub s !start (String.length s - !start) :: !parts;
  List.rev_map String.trim !parts

type item =
  | I_insn of { line : int; addr : int; mnemonic : string; operands : string list }
  | I_word of { line : int; addr : int; exprs : expr list }

(* ---------- operand parsing ---------- *)

let parse_reg ~line s =
  let s = String.trim s in
  let bad () = fail line "expected register, got %S" s in
  if String.length s < 2 || (s.[0] <> 'r' && s.[0] <> 'R') then bad ();
  match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
  | Some v when v >= 0 && v <= 31 -> v
  | _ -> bad ()

(* "imm(rA)" *)
let parse_mem ~line s =
  let s = String.trim s in
  match String.index_opt s '(' with
  | None -> fail line "expected offset(register), got %S" s
  | Some i ->
    if s.[String.length s - 1] <> ')' then fail line "missing ')' in %S" s;
    let off = String.sub s 0 i in
    let reg = String.sub s (i + 1) (String.length s - i - 2) in
    (parse_expr ~line (String.trim off), parse_reg ~line reg)

let parse_imm ~line ~symbols s = eval_expr ~line ~symbols (parse_expr ~line s)

let branch_offset ~line ~addr target =
  let delta = target - addr in
  if delta land 3 <> 0 then fail line "branch target not word aligned (0x%x)" target;
  delta asr 2

(* ---------- instruction table ---------- *)

let parse_insn ~line ~addr ~symbols mnemonic operands =
  let imm s = parse_imm ~line ~symbols s in
  let reg s = parse_reg ~line s in
  let target s = branch_offset ~line ~addr (imm s) in
  let rrr f =
    match operands with
    | [ d; a; b ] -> f (reg d) (reg a) (reg b)
    | _ -> fail line "%s expects rD, rA, rB" mnemonic
  in
  let rri f =
    match operands with
    | [ d; a; i ] -> f (reg d) (reg a) (imm i)
    | _ -> fail line "%s expects rD, rA, immediate" mnemonic
  in
  let load f =
    match operands with
    | [ d; m ] ->
      let off, base = parse_mem ~line m in
      f (reg d) (eval_expr ~line ~symbols off) base
    | _ -> fail line "%s expects rD, offset(rA)" mnemonic
  in
  let store f =
    match operands with
    | [ m; b ] ->
      let off, base = parse_mem ~line m in
      f (eval_expr ~line ~symbols off) base (reg b)
    | _ -> fail line "%s expects offset(rA), rB" mnemonic
  in
  let jump f =
    match operands with
    | [ t ] -> f (target t)
    | _ -> fail line "%s expects a target" mnemonic
  in
  let one_reg f =
    match operands with
    | [ r ] -> f (reg r)
    | _ -> fail line "%s expects a register" mnemonic
  in
  let cmp_rr c =
    match operands with
    | [ a; b ] -> Insn.Sf (c, reg a, reg b)
    | _ -> fail line "%s expects rA, rB" mnemonic
  in
  let cmp_ri c =
    match operands with
    | [ a; i ] -> Insn.Sfi (c, reg a, imm i)
    | _ -> fail line "%s expects rA, immediate" mnemonic
  in
  match mnemonic with
  | "l.add" -> rrr (fun d a b -> Insn.Add (d, a, b))
  | "l.sub" -> rrr (fun d a b -> Insn.Sub (d, a, b))
  | "l.and" -> rrr (fun d a b -> Insn.And (d, a, b))
  | "l.or" -> rrr (fun d a b -> Insn.Or (d, a, b))
  | "l.xor" -> rrr (fun d a b -> Insn.Xor (d, a, b))
  | "l.mul" -> rrr (fun d a b -> Insn.Mul (d, a, b))
  | "l.sll" -> rrr (fun d a b -> Insn.Sll (d, a, b))
  | "l.srl" -> rrr (fun d a b -> Insn.Srl (d, a, b))
  | "l.sra" -> rrr (fun d a b -> Insn.Sra (d, a, b))
  | "l.addi" -> rri (fun d a i -> Insn.Addi (d, a, i))
  | "l.andi" -> rri (fun d a i -> Insn.Andi (d, a, i))
  | "l.ori" -> rri (fun d a i -> Insn.Ori (d, a, i))
  | "l.xori" -> rri (fun d a i -> Insn.Xori (d, a, i))
  | "l.muli" -> rri (fun d a i -> Insn.Muli (d, a, i))
  | "l.slli" -> rri (fun d a i -> Insn.Slli (d, a, i))
  | "l.srli" -> rri (fun d a i -> Insn.Srli (d, a, i))
  | "l.srai" -> rri (fun d a i -> Insn.Srai (d, a, i))
  | "l.movhi" -> begin
    match operands with
    | [ d; k ] -> Insn.Movhi (reg d, imm k)
    | _ -> fail line "l.movhi expects rD, constant"
  end
  | "l.j" -> jump (fun n -> Insn.J n)
  | "l.jal" -> jump (fun n -> Insn.Jal n)
  | "l.bf" -> jump (fun n -> Insn.Bf n)
  | "l.bnf" -> jump (fun n -> Insn.Bnf n)
  | "l.jr" -> one_reg (fun r -> Insn.Jr r)
  | "l.jalr" -> one_reg (fun r -> Insn.Jalr r)
  | "l.lwz" -> load (fun d i a -> Insn.Lwz (d, i, a))
  | "l.lhz" -> load (fun d i a -> Insn.Lhz (d, i, a))
  | "l.lbz" -> load (fun d i a -> Insn.Lbz (d, i, a))
  | "l.sw" -> store (fun i a b -> Insn.Sw (i, a, b))
  | "l.sh" -> store (fun i a b -> Insn.Sh (i, a, b))
  | "l.sb" -> store (fun i a b -> Insn.Sb (i, a, b))
  | "l.nop" -> begin
    match operands with
    | [] -> Insn.Nop 0
    | [ k ] -> Insn.Nop (imm k)
    | _ -> fail line "l.nop expects at most one constant"
  end
  | _ -> begin
    (* l.sfXX / l.sfXXi family *)
    let prefix = "l.sf" in
    let plen = String.length prefix in
    if String.length mnemonic > plen && String.sub mnemonic 0 plen = prefix then begin
      let rest = String.sub mnemonic plen (String.length mnemonic - plen) in
      let is_imm = String.length rest > 1 && rest.[String.length rest - 1] = 'i'
                   && Insn.cmp_of_name rest = None in
      let cond_name =
        if is_imm then String.sub rest 0 (String.length rest - 1) else rest
      in
      match Insn.cmp_of_name cond_name with
      | Some c -> if is_imm then cmp_ri c else cmp_rr c
      | None -> fail line "unknown mnemonic %S" mnemonic
    end
    else fail line "unknown mnemonic %S" mnemonic
  end

(* ---------- assembler driver ---------- *)

let assemble source =
  try
    let lines = String.split_on_char '\n' source in
    let lc = ref 0 in
    let items = ref [] in
    let symbols = ref [] in
    let entry_sym = ref None in
    let limit = ref 0 in
    let bump n =
      lc := !lc + n;
      if !lc > !limit then limit := !lc
    in
    List.iteri
      (fun idx raw ->
        let line = idx + 1 in
        let text = String.trim (strip_comment raw) in
        if text <> "" then begin
          (* Peel leading labels. *)
          let rec peel text =
            match String.index_opt text ':' with
            | Some i
              when i > 0
                   && String.for_all
                        (fun c ->
                          (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
                          || (c >= '0' && c <= '9') || c = '_' || c = '.' || c = '$')
                        (String.sub text 0 i) ->
              let name = String.sub text 0 i in
              if List.mem_assoc name !symbols then fail line "duplicate label %S" name;
              symbols := (name, !lc) :: !symbols;
              peel (String.trim (String.sub text (i + 1) (String.length text - i - 1)))
            | _ -> text
          in
          let text = peel text in
          if text <> "" then begin
            let mnemonic, rest =
              match String.index_opt text ' ' with
              | Some i ->
                ( String.sub text 0 i,
                  String.trim (String.sub text (i + 1) (String.length text - i - 1)) )
              | None -> (text, "")
            in
            let mnemonic = String.lowercase_ascii mnemonic in
            match mnemonic with
            | ".org" -> begin
              match int_of_string_opt rest with
              | Some v when v >= 0 ->
                lc := v;
                if !lc > !limit then limit := !lc
              | _ -> fail line ".org expects a literal address"
            end
            | ".align" -> begin
              match int_of_string_opt rest with
              | Some v when v > 0 -> bump ((v - (!lc mod v)) mod v)
              | _ -> fail line ".align expects a positive literal"
            end
            | ".space" -> begin
              match int_of_string_opt rest with
              | Some v when v >= 0 -> bump v
              | _ -> fail line ".space expects a non-negative literal"
            end
            | ".entry" ->
              if rest = "" then fail line ".entry expects a label";
              entry_sym := Some (line, rest)
            | ".word" ->
              let exprs = List.map (parse_expr ~line) (split_commas rest) in
              items := I_word { line; addr = !lc; exprs } :: !items;
              bump (4 * List.length exprs)
            | _ when mnemonic.[0] = '.' -> fail line "unknown directive %S" mnemonic
            | _ ->
              let operands = if rest = "" then [] else split_commas rest in
              items := I_insn { line; addr = !lc; mnemonic; operands } :: !items;
              bump 4
          end
        end)
      lines;
    let symbols = !symbols in
    let words =
      List.rev !items
      |> List.concat_map (function
           | I_word { line; addr; exprs } ->
             List.mapi
               (fun i e ->
                 (addr + (4 * i), eval_expr ~line ~symbols e land 0xFFFF_FFFF))
               exprs
           | I_insn { line; addr; mnemonic; operands } ->
             let insn = parse_insn ~line ~addr ~symbols mnemonic operands in
             (match Encode.check_immediates insn with
             | Ok () -> ()
             | Error msg -> fail line "%s: %s" (Insn.to_string insn) msg);
             [ (addr, Encode.encode insn) ])
    in
    let words = List.sort (fun (a, _) (b, _) -> compare a b) words in
    let rec check_overlap = function
      | (a1, _) :: ((a2, _) :: _ as rest) ->
        if a2 < a1 + 4 then
          raise (Asm_error { line = 0; message = Printf.sprintf "overlapping words at 0x%x" a2 });
        check_overlap rest
      | _ -> ()
    in
    check_overlap words;
    let entry =
      match !entry_sym with
      | None -> 0
      | Some (line, name) -> begin
        match List.assoc_opt name symbols with
        | Some v -> v
        | None -> fail line "undefined entry label %S" name
      end
    in
    Ok { Program.entry; words = Array.of_list words; symbols; limit = !limit }
  with Asm_error e -> Error e

let assemble_exn source =
  match assemble source with
  | Ok p -> p
  | Error { line; message } -> failwith (Printf.sprintf "asm error at line %d: %s" line message)
