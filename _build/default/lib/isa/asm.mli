(** Two-pass text assembler for the OR1K subset.

    Syntax:
    {v
        # comment      ; comment      // comment
        .org 0x100     # set location counter (byte address)
        .align 4       # pad to alignment
        .word 1, -2, 0xdeadbeef, label   # initialized 32-bit data
        .space 64      # reserve zeroed bytes
        .entry start   # entry point label (default: address 0)

    start:
        l.movhi r1, hi(table)
        l.ori   r1, r1, lo(table)
        l.addi  r2, r0, 129
    loop:
        l.lwz   r3, 0(r1)
        l.sfeqi r2, 0
        l.bf    done
        l.j     loop
    done:
        l.nop   0x1
    table:
        .word 1, 2, 3
    v}

    Immediate expressions are decimal or 0x-hex numbers, labels,
    [label+offset] / [label-offset], or [hi(expr)] / [lo(expr)] (upper and
    lower 16 bits — the classic constant-loading pair). Branch and jump
    targets are labels or absolute byte addresses; the assembler converts
    them to word offsets. *)

type error = { line : int; message : string }

val assemble : string -> (Program.t, error) result

val assemble_exn : string -> Program.t
(** Raises [Failure] with a formatted message. *)
