open Sfi_util

let cmp_code = function
  | Insn.Eq -> 0x0
  | Insn.Ne -> 0x1
  | Insn.Gtu -> 0x2
  | Insn.Geu -> 0x3
  | Insn.Ltu -> 0x4
  | Insn.Leu -> 0x5
  | Insn.Gts -> 0xa
  | Insn.Ges -> 0xb
  | Insn.Lts -> 0xc
  | Insn.Les -> 0xd

let cmp_of_code = function
  | 0x0 -> Some Insn.Eq
  | 0x1 -> Some Insn.Ne
  | 0x2 -> Some Insn.Gtu
  | 0x3 -> Some Insn.Geu
  | 0x4 -> Some Insn.Ltu
  | 0x5 -> Some Insn.Leu
  | 0xa -> Some Insn.Gts
  | 0xb -> Some Insn.Ges
  | 0xc -> Some Insn.Lts
  | 0xd -> Some Insn.Les
  | _ -> None

let fits_signed ~bits v = v >= -(1 lsl (bits - 1)) && v < 1 lsl (bits - 1)

let fits_unsigned ~bits v = v >= 0 && v < 1 lsl bits

(* Immediates that are either signed 16-bit values or unsigned 16-bit bit
   patterns are accepted for all 16-bit fields: assembly sources routinely
   write l.andi with 0xffff and l.addi with -1. *)
let fits_imm16 v = v >= -0x8000 && v <= 0xFFFF

let check_reg name v = if v < 0 || v > 31 then Error (name ^ ": register out of range") else Ok ()

let check_immediates insn =
  let ( let* ) = Result.bind in
  let imm16 v = if fits_imm16 v then Ok () else Error "immediate out of 16-bit range" in
  let off26 v =
    if fits_signed ~bits:26 v then Ok () else Error "jump offset out of 26-bit range"
  in
  let shamt v = if fits_unsigned ~bits:5 v then Ok () else Error "shift amount out of range" in
  match insn with
  | Insn.Add (d, a, b) | Insn.Sub (d, a, b) | Insn.And (d, a, b) | Insn.Or (d, a, b)
  | Insn.Xor (d, a, b) | Insn.Mul (d, a, b) | Insn.Sll (d, a, b) | Insn.Srl (d, a, b)
  | Insn.Sra (d, a, b) ->
    let* () = check_reg "rD" d in
    let* () = check_reg "rA" a in
    check_reg "rB" b
  | Insn.Addi (d, a, i) | Insn.Andi (d, a, i) | Insn.Ori (d, a, i) | Insn.Xori (d, a, i)
  | Insn.Muli (d, a, i) ->
    let* () = check_reg "rD" d in
    let* () = check_reg "rA" a in
    imm16 i
  | Insn.Slli (d, a, s) | Insn.Srli (d, a, s) | Insn.Srai (d, a, s) ->
    let* () = check_reg "rD" d in
    let* () = check_reg "rA" a in
    shamt s
  | Insn.Movhi (d, k) ->
    let* () = check_reg "rD" d in
    if fits_unsigned ~bits:16 k || fits_signed ~bits:16 k then Ok ()
    else Error "movhi constant out of 16-bit range"
  | Insn.Sf (_, a, b) ->
    let* () = check_reg "rA" a in
    check_reg "rB" b
  | Insn.Sfi (_, a, i) ->
    let* () = check_reg "rA" a in
    imm16 i
  | Insn.J n | Insn.Jal n | Insn.Bf n | Insn.Bnf n -> off26 n
  | Insn.Jr r | Insn.Jalr r -> check_reg "rB" r
  | Insn.Lwz (d, i, a) | Insn.Lhz (d, i, a) | Insn.Lbz (d, i, a) ->
    let* () = check_reg "rD" d in
    let* () = check_reg "rA" a in
    imm16 i
  | Insn.Sw (i, a, b) | Insn.Sh (i, a, b) | Insn.Sb (i, a, b) ->
    let* () = check_reg "rA" a in
    let* () = check_reg "rB" b in
    imm16 i
  | Insn.Nop k ->
    if fits_unsigned ~bits:16 k then Ok () else Error "nop code out of 16-bit range"

let word ~op rest = (op lsl 26) lor rest

let rd d = d lsl 21
let ra a = a lsl 16
let rb b = b lsl 11

let i16 v = v land 0xFFFF

let n26 v = v land 0x3FF_FFFF

let encode insn =
  (match check_immediates insn with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Encode.encode: " ^ msg ^ " in " ^ Insn.to_string insn));
  match insn with
  | Insn.J n -> word ~op:0x00 (n26 n)
  | Insn.Jal n -> word ~op:0x01 (n26 n)
  | Insn.Bnf n -> word ~op:0x03 (n26 n)
  | Insn.Bf n -> word ~op:0x04 (n26 n)
  | Insn.Nop k -> word ~op:0x05 ((1 lsl 24) lor i16 k)
  | Insn.Movhi (d, k) -> word ~op:0x06 (rd d lor i16 k)
  | Insn.Jr r -> word ~op:0x11 (rb r)
  | Insn.Jalr r -> word ~op:0x12 (rb r)
  | Insn.Lwz (d, i, a) -> word ~op:0x21 (rd d lor ra a lor i16 i)
  | Insn.Lbz (d, i, a) -> word ~op:0x23 (rd d lor ra a lor i16 i)
  | Insn.Lhz (d, i, a) -> word ~op:0x25 (rd d lor ra a lor i16 i)
  | Insn.Addi (d, a, i) -> word ~op:0x27 (rd d lor ra a lor i16 i)
  | Insn.Andi (d, a, i) -> word ~op:0x29 (rd d lor ra a lor i16 i)
  | Insn.Ori (d, a, i) -> word ~op:0x2a (rd d lor ra a lor i16 i)
  | Insn.Xori (d, a, i) -> word ~op:0x2b (rd d lor ra a lor i16 i)
  | Insn.Muli (d, a, i) -> word ~op:0x2c (rd d lor ra a lor i16 i)
  | Insn.Slli (d, a, s) -> word ~op:0x2e (rd d lor ra a lor (0b00 lsl 6) lor s)
  | Insn.Srli (d, a, s) -> word ~op:0x2e (rd d lor ra a lor (0b01 lsl 6) lor s)
  | Insn.Srai (d, a, s) -> word ~op:0x2e (rd d lor ra a lor (0b10 lsl 6) lor s)
  | Insn.Sfi (c, a, i) -> word ~op:0x2f (rd (cmp_code c) lor ra a lor i16 i)
  | Insn.Sw (i, a, b) ->
    word ~op:0x35 (((i16 i lsr 11) lsl 21) lor ra a lor rb b lor (i16 i land 0x7FF))
  | Insn.Sb (i, a, b) ->
    word ~op:0x36 (((i16 i lsr 11) lsl 21) lor ra a lor rb b lor (i16 i land 0x7FF))
  | Insn.Sh (i, a, b) ->
    word ~op:0x37 (((i16 i lsr 11) lsl 21) lor ra a lor rb b lor (i16 i land 0x7FF))
  | Insn.Add (d, a, b) -> word ~op:0x38 (rd d lor ra a lor rb b lor 0x0)
  | Insn.Sub (d, a, b) -> word ~op:0x38 (rd d lor ra a lor rb b lor 0x2)
  | Insn.And (d, a, b) -> word ~op:0x38 (rd d lor ra a lor rb b lor 0x3)
  | Insn.Or (d, a, b) -> word ~op:0x38 (rd d lor ra a lor rb b lor 0x4)
  | Insn.Xor (d, a, b) -> word ~op:0x38 (rd d lor ra a lor rb b lor 0x5)
  | Insn.Mul (d, a, b) -> word ~op:0x38 (rd d lor ra a lor rb b lor (0b11 lsl 8) lor 0x6)
  | Insn.Sll (d, a, b) -> word ~op:0x38 (rd d lor ra a lor rb b lor (0b00 lsl 6) lor 0x8)
  | Insn.Srl (d, a, b) -> word ~op:0x38 (rd d lor ra a lor rb b lor (0b01 lsl 6) lor 0x8)
  | Insn.Sra (d, a, b) -> word ~op:0x38 (rd d lor ra a lor rb b lor (0b10 lsl 6) lor 0x8)
  | Insn.Sf (c, a, b) -> word ~op:0x39 (rd (cmp_code c) lor ra a lor rb b)

let sext16 v = U32.to_signed (U32.sext ~bits:16 v)

let sext26 v = if v land (1 lsl 25) <> 0 then v - (1 lsl 26) else v

let decode w =
  let op = (w lsr 26) land 0x3F in
  let d = (w lsr 21) land 0x1F in
  let a = (w lsr 16) land 0x1F in
  let b = (w lsr 11) land 0x1F in
  let imm = sext16 (w land 0xFFFF) in
  let store_imm = sext16 ((((w lsr 21) land 0x1F) lsl 11) lor (w land 0x7FF)) in
  match op with
  | 0x00 -> Some (Insn.J (sext26 (w land 0x3FF_FFFF)))
  | 0x01 -> Some (Insn.Jal (sext26 (w land 0x3FF_FFFF)))
  | 0x03 -> Some (Insn.Bnf (sext26 (w land 0x3FF_FFFF)))
  | 0x04 -> Some (Insn.Bf (sext26 (w land 0x3FF_FFFF)))
  | 0x05 -> if (w lsr 24) land 0x3 = 1 then Some (Insn.Nop (w land 0xFFFF)) else None
  | 0x06 -> if (w lsr 16) land 0x1 = 0 then Some (Insn.Movhi (d, w land 0xFFFF)) else None
  | 0x11 -> Some (Insn.Jr b)
  | 0x12 -> Some (Insn.Jalr b)
  | 0x21 -> Some (Insn.Lwz (d, imm, a))
  | 0x23 -> Some (Insn.Lbz (d, imm, a))
  | 0x25 -> Some (Insn.Lhz (d, imm, a))
  | 0x27 -> Some (Insn.Addi (d, a, imm))
  | 0x29 -> Some (Insn.Andi (d, a, w land 0xFFFF))
  | 0x2a -> Some (Insn.Ori (d, a, w land 0xFFFF))
  | 0x2b -> Some (Insn.Xori (d, a, imm))
  | 0x2c -> Some (Insn.Muli (d, a, imm))
  | 0x2e -> begin
    let s = w land 0x3F in
    if s > 31 then None
    else
      match (w lsr 6) land 0x3 with
      | 0b00 -> Some (Insn.Slli (d, a, s))
      | 0b01 -> Some (Insn.Srli (d, a, s))
      | 0b10 -> Some (Insn.Srai (d, a, s))
      | _ -> None
  end
  | 0x2f -> Option.map (fun c -> Insn.Sfi (c, a, imm)) (cmp_of_code d)
  | 0x35 -> Some (Insn.Sw (store_imm, a, b))
  | 0x36 -> Some (Insn.Sb (store_imm, a, b))
  | 0x37 -> Some (Insn.Sh (store_imm, a, b))
  | 0x38 -> begin
    match w land 0xF with
    | 0x0 when (w lsr 6) land 0xF = 0 -> Some (Insn.Add (d, a, b))
    | 0x2 when (w lsr 6) land 0xF = 0 -> Some (Insn.Sub (d, a, b))
    | 0x3 when (w lsr 6) land 0xF = 0 -> Some (Insn.And (d, a, b))
    | 0x4 when (w lsr 6) land 0xF = 0 -> Some (Insn.Or (d, a, b))
    | 0x5 when (w lsr 6) land 0xF = 0 -> Some (Insn.Xor (d, a, b))
    | 0x6 when (w lsr 8) land 0x3 = 0b11 -> Some (Insn.Mul (d, a, b))
    | 0x8 -> begin
      match (w lsr 6) land 0x3 with
      | 0b00 -> Some (Insn.Sll (d, a, b))
      | 0b01 -> Some (Insn.Srl (d, a, b))
      | 0b10 -> Some (Insn.Sra (d, a, b))
      | _ -> None
    end
    | _ -> None
  end
  | 0x39 -> Option.map (fun c -> Insn.Sf (c, a, b)) (cmp_of_code d)
  | _ -> None
