(** Binary encoding of the instruction set (OR1K major opcode map).

    [encode] and [decode] are exact inverses on the supported subset; the
    test suite checks the round-trip property over random instructions.
    Words that do not decode (reserved opcodes, unused sub-opcodes) yield
    [None] — executing one is an illegal-instruction trap, which matters
    for fault injection because corrupted branches can land in data. *)

open Sfi_util

val encode : Insn.t -> U32.t
(** Raises [Invalid_argument] if a field is out of range (register index,
    immediate width, jump offset). *)

val decode : U32.t -> Insn.t option

val check_immediates : Insn.t -> (unit, string) result
(** Validates field ranges without encoding (used by the assembler for
    better error messages). *)
