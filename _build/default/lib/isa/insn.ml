open Sfi_util

type reg = int

type cmp = Eq | Ne | Gtu | Geu | Ltu | Leu | Gts | Ges | Lts | Les

type t =
  | Add of reg * reg * reg
  | Sub of reg * reg * reg
  | And of reg * reg * reg
  | Or of reg * reg * reg
  | Xor of reg * reg * reg
  | Mul of reg * reg * reg
  | Sll of reg * reg * reg
  | Srl of reg * reg * reg
  | Sra of reg * reg * reg
  | Addi of reg * reg * int
  | Andi of reg * reg * int
  | Ori of reg * reg * int
  | Xori of reg * reg * int
  | Muli of reg * reg * int
  | Slli of reg * reg * int
  | Srli of reg * reg * int
  | Srai of reg * reg * int
  | Movhi of reg * int
  | Sf of cmp * reg * reg
  | Sfi of cmp * reg * int
  | J of int
  | Jal of int
  | Jr of reg
  | Jalr of reg
  | Bf of int
  | Bnf of int
  | Lwz of reg * int * reg
  | Lhz of reg * int * reg
  | Lbz of reg * int * reg
  | Sw of int * reg * reg
  | Sh of int * reg * reg
  | Sb of int * reg * reg
  | Nop of int

let nop_exit = 0x0001

let nop_kernel_begin = 0x0010

let nop_kernel_end = 0x0011

let link_register = 9

let op_class = function
  | Add (_, _, _) | Addi (_, _, _) -> Some Op_class.Add
  | Sub (_, _, _) -> Some Op_class.Sub
  | Mul (_, _, _) | Muli (_, _, _) -> Some Op_class.Mul
  | Sll (_, _, _) | Slli (_, _, _) -> Some Op_class.Sll
  | Srl (_, _, _) | Srli (_, _, _) -> Some Op_class.Srl
  | Sra (_, _, _) | Srai (_, _, _) -> Some Op_class.Sra
  | And (_, _, _) | Andi (_, _, _) -> Some Op_class.And_
  | Or (_, _, _) | Ori (_, _, _) | Movhi (_, _) -> Some Op_class.Or_
  | Xor (_, _, _) | Xori (_, _, _) -> Some Op_class.Xor_
  (* Compares compute through the subtractor but latch only the 1-bit
     flag, which is not among the 32 ALU-endpoint flip-flops the case
     study injects into (the flag path is in the timing-safe set, like
     branches); see paper Sec. 2.1. *)
  | Sf (_, _, _) | Sfi (_, _, _)
  | J _ | Jal _ | Jr _ | Jalr _ | Bf _ | Bnf _
  | Lwz (_, _, _) | Lhz (_, _, _) | Lbz (_, _, _)
  | Sw (_, _, _) | Sh (_, _, _) | Sb (_, _, _)
  | Nop _ -> None

let is_alu t = op_class t <> None

let writes = function
  | Add (d, _, _) | Sub (d, _, _) | And (d, _, _) | Or (d, _, _) | Xor (d, _, _)
  | Mul (d, _, _) | Sll (d, _, _) | Srl (d, _, _) | Sra (d, _, _)
  | Addi (d, _, _) | Andi (d, _, _) | Ori (d, _, _) | Xori (d, _, _)
  | Muli (d, _, _) | Slli (d, _, _) | Srli (d, _, _) | Srai (d, _, _)
  | Movhi (d, _)
  | Lwz (d, _, _) | Lhz (d, _, _) | Lbz (d, _, _) -> Some d
  | Jal _ | Jalr _ -> Some link_register
  | Sf (_, _, _) | Sfi (_, _, _) | J _ | Jr _ | Bf _ | Bnf _
  | Sw (_, _, _) | Sh (_, _, _) | Sb (_, _, _) | Nop _ -> None

let reads = function
  | Add (_, a, b) | Sub (_, a, b) | And (_, a, b) | Or (_, a, b) | Xor (_, a, b)
  | Mul (_, a, b) | Sll (_, a, b) | Srl (_, a, b) | Sra (_, a, b)
  | Sf (_, a, b) -> [ a; b ]
  | Addi (_, a, _) | Andi (_, a, _) | Ori (_, a, _) | Xori (_, a, _)
  | Muli (_, a, _) | Slli (_, a, _) | Srli (_, a, _) | Srai (_, a, _)
  | Sfi (_, a, _)
  | Lwz (_, _, a) | Lhz (_, _, a) | Lbz (_, _, a) -> [ a ]
  | Sw (_, a, b) | Sh (_, a, b) | Sb (_, a, b) -> [ a; b ]
  | Jr r | Jalr r -> [ r ]
  | Movhi (_, _) | J _ | Jal _ | Bf _ | Bnf _ | Nop _ -> []

let is_control = function
  | J _ | Jal _ | Jr _ | Jalr _ | Bf _ | Bnf _ -> true
  | _ -> false

let is_memory = function
  | Lwz (_, _, _) | Lhz (_, _, _) | Lbz (_, _, _)
  | Sw (_, _, _) | Sh (_, _, _) | Sb (_, _, _) -> true
  | _ -> false

let cmp_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Gtu -> "gtu"
  | Geu -> "geu"
  | Ltu -> "ltu"
  | Leu -> "leu"
  | Gts -> "gts"
  | Ges -> "ges"
  | Lts -> "lts"
  | Les -> "les"

let all_cmps = [ Eq; Ne; Gtu; Geu; Ltu; Leu; Gts; Ges; Lts; Les ]

let cmp_of_name s = List.find_opt (fun c -> cmp_name c = s) all_cmps

let r i = Printf.sprintf "r%d" i

let to_string = function
  | Add (d, a, b) -> Printf.sprintf "l.add %s, %s, %s" (r d) (r a) (r b)
  | Sub (d, a, b) -> Printf.sprintf "l.sub %s, %s, %s" (r d) (r a) (r b)
  | And (d, a, b) -> Printf.sprintf "l.and %s, %s, %s" (r d) (r a) (r b)
  | Or (d, a, b) -> Printf.sprintf "l.or %s, %s, %s" (r d) (r a) (r b)
  | Xor (d, a, b) -> Printf.sprintf "l.xor %s, %s, %s" (r d) (r a) (r b)
  | Mul (d, a, b) -> Printf.sprintf "l.mul %s, %s, %s" (r d) (r a) (r b)
  | Sll (d, a, b) -> Printf.sprintf "l.sll %s, %s, %s" (r d) (r a) (r b)
  | Srl (d, a, b) -> Printf.sprintf "l.srl %s, %s, %s" (r d) (r a) (r b)
  | Sra (d, a, b) -> Printf.sprintf "l.sra %s, %s, %s" (r d) (r a) (r b)
  | Addi (d, a, i) -> Printf.sprintf "l.addi %s, %s, %d" (r d) (r a) i
  | Andi (d, a, i) -> Printf.sprintf "l.andi %s, %s, %d" (r d) (r a) i
  | Ori (d, a, i) -> Printf.sprintf "l.ori %s, %s, %d" (r d) (r a) i
  | Xori (d, a, i) -> Printf.sprintf "l.xori %s, %s, %d" (r d) (r a) i
  | Muli (d, a, i) -> Printf.sprintf "l.muli %s, %s, %d" (r d) (r a) i
  | Slli (d, a, i) -> Printf.sprintf "l.slli %s, %s, %d" (r d) (r a) i
  | Srli (d, a, i) -> Printf.sprintf "l.srli %s, %s, %d" (r d) (r a) i
  | Srai (d, a, i) -> Printf.sprintf "l.srai %s, %s, %d" (r d) (r a) i
  | Movhi (d, k) -> Printf.sprintf "l.movhi %s, %d" (r d) k
  | Sf (c, a, b) -> Printf.sprintf "l.sf%s %s, %s" (cmp_name c) (r a) (r b)
  | Sfi (c, a, i) -> Printf.sprintf "l.sf%si %s, %d" (cmp_name c) (r a) i
  | J n -> Printf.sprintf "l.j %d" n
  | Jal n -> Printf.sprintf "l.jal %d" n
  | Jr rr -> Printf.sprintf "l.jr %s" (r rr)
  | Jalr rr -> Printf.sprintf "l.jalr %s" (r rr)
  | Bf n -> Printf.sprintf "l.bf %d" n
  | Bnf n -> Printf.sprintf "l.bnf %d" n
  | Lwz (d, i, a) -> Printf.sprintf "l.lwz %s, %d(%s)" (r d) i (r a)
  | Lhz (d, i, a) -> Printf.sprintf "l.lhz %s, %d(%s)" (r d) i (r a)
  | Lbz (d, i, a) -> Printf.sprintf "l.lbz %s, %d(%s)" (r d) i (r a)
  | Sw (i, a, b) -> Printf.sprintf "l.sw %d(%s), %s" i (r a) (r b)
  | Sh (i, a, b) -> Printf.sprintf "l.sh %d(%s), %s" i (r a) (r b)
  | Sb (i, a, b) -> Printf.sprintf "l.sb %d(%s), %s" i (r a) (r b)
  | Nop k -> Printf.sprintf "l.nop %d" k
