(** The OR1K-subset instruction set of the modelled core.

    This follows the OpenRISC 1000 integer subset the benchmarks need:
    register-register and register-immediate ALU operations (including the
    single-cycle 32-bit multiply), set-flag compares, conditional branches
    on the flag, jumps, and byte/half/word loads and stores. Mnemonics and
    binary encodings follow the OR1K specification's major opcode map.
    Unlike base OR1K, branches and jumps have {e no delay slot} (as with
    the `CPUCFGR.ND` configuration of later OR1K implementations) — the
    pipeline model accounts for the flush penalty instead.

    [r0] reads as zero and writes to it are discarded, per OR1K software
    convention. *)

open Sfi_util

type reg = int
(** Register index 0..31. *)

(** Set-flag comparison conditions of the l.sf family. *)
type cmp = Eq | Ne | Gtu | Geu | Ltu | Leu | Gts | Ges | Lts | Les

type t =
  (* register-register ALU (opcode 0x38) *)
  | Add of reg * reg * reg      (** rD = rA + rB *)
  | Sub of reg * reg * reg
  | And of reg * reg * reg
  | Or of reg * reg * reg
  | Xor of reg * reg * reg
  | Mul of reg * reg * reg      (** low 32 bits, single cycle *)
  | Sll of reg * reg * reg
  | Srl of reg * reg * reg
  | Sra of reg * reg * reg
  (* register-immediate ALU *)
  | Addi of reg * reg * int     (** I sign-extended *)
  | Andi of reg * reg * int     (** I zero-extended *)
  | Ori of reg * reg * int      (** I zero-extended *)
  | Xori of reg * reg * int     (** I sign-extended (per OR1K spec) *)
  | Muli of reg * reg * int     (** I sign-extended *)
  | Slli of reg * reg * int     (** 5-bit shift count *)
  | Srli of reg * reg * int
  | Srai of reg * reg * int
  | Movhi of reg * int          (** rD = K << 16 *)
  (* flag compares *)
  | Sf of cmp * reg * reg
  | Sfi of cmp * reg * int      (** I sign-extended *)
  (* control flow; immediate offsets are in instruction words relative to
     the branch instruction's own address (OR1K semantics), resolved from
     labels by the assembler. [J 0] jumps to itself. *)
  | J of int
  | Jal of int                  (** link register is r9 *)
  | Jr of reg
  | Jalr of reg
  | Bf of int                   (** branch if flag set *)
  | Bnf of int                  (** branch if flag clear *)
  (* memory, I sign-extended byte offset *)
  | Lwz of reg * int * reg      (** rD = mem32[rA + I] *)
  | Lhz of reg * int * reg      (** zero-extended halfword *)
  | Lbz of reg * int * reg      (** zero-extended byte *)
  | Sw of int * reg * reg       (** mem32[rA + I] = rB *)
  | Sh of int * reg * reg
  | Sb of int * reg * reg
  | Nop of int                  (** l.nop K; K values carry simulator hints *)

val nop_exit : int
(** l.nop 0x0001: terminate simulation (or1ksim convention). *)

val nop_kernel_begin : int
(** l.nop 0x0010: enable fault injection (kernel region starts). *)

val nop_kernel_end : int
(** l.nop 0x0011: disable fault injection (kernel region ends). *)

val link_register : reg
(** r9, the OR1K link register used by [Jal]/[Jalr]. *)

val op_class : t -> Op_class.t option
(** The ALU class an instruction exercises in the execution stage, or
    [None] for instructions whose destination flip-flops are outside the
    32 fault-prone ALU endpoints: loads, stores, control flow, nop — and
    compares, whose 1-bit flag register belongs to the timing-safe set of
    the case study's constraint strategy (paper Sec. 2.1). *)

val is_alu : t -> bool
(** [op_class t <> None]. *)

val writes : t -> reg option
(** Destination register, if any ([Jal]/[Jalr] write the link register). *)

val reads : t -> reg list
(** Source registers (excluding the implicit flag). *)

val is_control : t -> bool
(** Branches and jumps. *)

val is_memory : t -> bool

val cmp_name : cmp -> string
(** e.g. ["gts"]. *)

val cmp_of_name : string -> cmp option

val to_string : t -> string
(** Assembly text, e.g. ["l.addi r3, r3, -1"]; parseable by [Asm]. *)
