open Sfi_util

type t = {
  entry : int;
  words : (int * U32.t) array;
  symbols : (string * int) list;
  limit : int;
}

let symbol t name = List.assoc name t.symbols

let symbol_opt t name = List.assoc_opt name t.symbols

let of_insns ?(entry = 0) insns =
  let words =
    Array.of_list (List.mapi (fun i insn -> (entry + (4 * i), Encode.encode insn)) insns)
  in
  let limit = entry + (4 * List.length insns) in
  { entry; words; symbols = []; limit }

let disassemble t =
  let buf = Buffer.create 1024 in
  let label_at =
    let table = Hashtbl.create 16 in
    List.iter (fun (name, addr) -> Hashtbl.replace table addr name) t.symbols;
    fun addr -> Hashtbl.find_opt table addr
  in
  Array.iter
    (fun (addr, w) ->
      (match label_at addr with
      | Some l -> Buffer.add_string buf (l ^ ":\n")
      | None -> ());
      let text =
        match Encode.decode w with
        | Some insn -> Insn.to_string insn
        | None -> Printf.sprintf ".word 0x%s" (U32.to_hex w)
      in
      Buffer.add_string buf (Printf.sprintf "%08x:  %s  %s\n" addr (U32.to_hex w) text))
    t.words;
  Buffer.contents buf
