(** An assembled program image.

    The image is a sparse list of initialized 32-bit words (code and data
    share one address space, as with the core's unified SRAM map) plus the
    symbol table. Uninitialized space reads as zero. *)

open Sfi_util

type t = {
  entry : int;                   (** byte address of the first instruction *)
  words : (int * U32.t) array;   (** (byte address, value), strictly
                                     increasing addresses, 4-aligned *)
  symbols : (string * int) list; (** label -> byte address *)
  limit : int;                   (** one past the highest initialized or
                                     reserved byte *)
}

val symbol : t -> string -> int
(** Raises [Not_found]. *)

val symbol_opt : t -> string -> int option

val of_insns : ?entry:int -> Insn.t list -> t
(** Convenience for tests: lay out instructions from [entry] (default 0). *)

val disassemble : t -> string
(** Address-annotated listing of the image (data words that do not decode
    are shown as [.word]). *)
