lib/kernels/bench.ml: Array Buffer Cpu Memory Printf Sfi_isa Sfi_sim Sfi_util U32
