lib/kernels/bench.mli: Cpu Memory Sfi_isa Sfi_sim Sfi_util U32
