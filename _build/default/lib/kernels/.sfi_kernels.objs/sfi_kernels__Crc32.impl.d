lib/kernels/crc32.ml: Array Bench Printf Rng Sfi_isa Sfi_util U32
