lib/kernels/crc32.mli: Bench
