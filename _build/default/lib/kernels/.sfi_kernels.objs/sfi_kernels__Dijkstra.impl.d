lib/kernels/dijkstra.ml: Array Bench Printf Rng Sfi_isa Sfi_util
