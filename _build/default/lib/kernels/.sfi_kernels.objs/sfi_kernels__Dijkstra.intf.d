lib/kernels/dijkstra.mli: Bench
