lib/kernels/fir.mli: Bench
