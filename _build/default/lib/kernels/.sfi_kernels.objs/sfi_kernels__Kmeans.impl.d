lib/kernels/kmeans.ml: Array Bench Printf Rng Sfi_isa Sfi_util U32
