lib/kernels/kmeans.mli: Bench
