lib/kernels/matmul.mli: Bench
