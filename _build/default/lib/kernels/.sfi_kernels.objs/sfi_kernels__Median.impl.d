lib/kernels/median.ml: Array Bench Float Printf Rng Sfi_isa Sfi_util
