lib/kernels/median.mli: Bench
