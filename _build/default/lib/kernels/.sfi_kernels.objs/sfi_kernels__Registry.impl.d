lib/kernels/registry.ml: Crc32 Dijkstra Fir Kmeans Matmul Median
