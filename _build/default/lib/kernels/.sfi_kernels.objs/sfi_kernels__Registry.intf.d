lib/kernels/registry.mli: Bench
