open Sfi_util

let polynomial = 0xEDB8_8320

let source ~len ~words =
  Printf.sprintf
    {|# bitwise reflected CRC-32 over %d bytes
        .entry start
start:
        l.movhi r2, hi(data)
        l.ori   r2, r2, lo(data)
        l.addi  r3, r0, %d          # length in bytes
        l.movhi r15, hi(0xedb88320)
        l.ori   r15, r15, lo(0xedb88320)
        l.nop   0x10                # kernel begin
        l.addi  r4, r0, -1          # crc = 0xffffffff
byte_loop:
        l.sfeqi r3, 0
        l.bf    finish
        l.lbz   r5, 0(r2)
        l.xor   r4, r4, r5
        l.addi  r6, r0, 8
bit_loop:
        l.andi  r7, r4, 1
        l.srli  r4, r4, 1
        l.sfeqi r7, 0
        l.bf    no_xor
        l.xor   r4, r4, r15
no_xor:
        l.addi  r6, r6, -1
        l.sfnei r6, 0
        l.bf    bit_loop
        l.addi  r2, r2, 1
        l.addi  r3, r3, -1
        l.j     byte_loop
finish:
        l.xori  r4, r4, -1          # final inversion
        l.movhi r8, hi(result)
        l.ori   r8, r8, lo(result)
        l.sw    0(r8), r4
        l.nop   0x11                # kernel end
        l.nop   0x1                 # exit
result: .word 0
data:
%s|}
    len len
    (Bench.format_word_data words)

let reference bytes =
  let crc = ref 0xFFFF_FFFF in
  Array.iter
    (fun byte ->
      crc := !crc lxor byte;
      for _ = 1 to 8 do
        let lsb = !crc land 1 in
        crc := !crc lsr 1;
        if lsb = 1 then crc := !crc lxor polynomial
      done)
    bytes;
  !crc lxor 0xFFFF_FFFF

let create ?(len = 512) ?(seed = 1) () =
  if len <= 0 || len land 3 <> 0 then
    invalid_arg "Crc32.create: len must be a positive multiple of 4";
  let rng = Rng.of_int (seed lxor 0x6372) in
  let bytes = Array.init len (fun _ -> Rng.bits32 rng land 0xFF) in
  (* Pack big-endian: byte i of word w is bytes.(4w + i), matching l.lbz's
     sequential walk through memory. *)
  let words =
    Array.init (len / 4) (fun w ->
        (bytes.(4 * w) lsl 24)
        lor (bytes.((4 * w) + 1) lsl 16)
        lor (bytes.((4 * w) + 2) lsl 8)
        lor bytes.((4 * w) + 3))
  in
  let program = Sfi_isa.Asm.assemble_exn (source ~len ~words) in
  let golden = [| reference bytes |] in
  let metric ~expected ~actual =
    (* A checksum is either right or wrong: report the Hamming distance as
       a percentage of the word width. *)
    100. *. float_of_int (U32.popcount (expected.(0) lxor actual.(0))) /. 32.
  in
  {
    Bench.name = "crc32";
    bench_type = "checksum";
    compute_rating = "+";
    control_rating = "+";
    size_desc = Printf.sprintf "%d bytes" len;
    program;
    mem_size = 65536;
    output_addr = Sfi_isa.Program.symbol program "result";
    output_count = 1;
    golden;
    metric_name = "bit error rate";
    metric;
  }
