(** CRC-32 benchmark (extension beyond the paper's four kernels).

    Bitwise reflected CRC-32 (polynomial 0xEDB88320) over a byte buffer.
    Unlike the paper's kernels, its inner loop is dominated by logical
    shifts and XORs, so it probes the barrel-shifter and logic-unit
    timing classes that median/matmul/kmeans/dijkstra barely exercise —
    predicting a later point of first failure than any paper kernel. *)

val create : ?len:int -> ?seed:int -> unit -> Bench.t
(** [len] bytes of random input, default 512. Must be a positive multiple
    of 4. *)

val reference : int array -> int
(** The OCaml reference implementation over a byte array (CRC-32/ISO-HDLC:
    reflected 0xEDB88320, init and final-xor 0xFFFFFFFF; the check value
    for "123456789" is 0xCBF43926). *)
