open Sfi_util

let inf = 0x0FFF_FFFF

let source ~nodes ~reps ~adj =
  Printf.sprintf
    {|# all-pairs shortest paths: Dijkstra from each of %d nodes, %d reps
        .entry start
start:
        l.movhi r2, hi(adj)
        l.ori   r2, r2, lo(adj)
        l.movhi r4, hi(dist)
        l.ori   r4, r4, lo(dist)
        l.movhi r5, hi(vis)
        l.ori   r5, r5, lo(vis)
        l.movhi r6, hi(out)
        l.ori   r6, r6, lo(out)
        l.addi  r3, r0, %d          # n
        l.addi  r7, r0, %d          # repetitions
        l.movhi r28, hi(0x0fffffff) # INF
        l.ori   r28, r28, lo(0x0fffffff)
        l.nop   0x10                # kernel begin
rep_loop:
        l.sfeqi r7, 0
        l.bf    done_all
        l.addi  r8, r0, 0           # source node
src_loop:
        l.sfgeu r8, r3
        l.bf    rep_next
        l.addi  r10, r0, 0          # init dist/vis arrays
init_loop:
        l.sfgeu r10, r3
        l.bf    init_done
        l.slli  r11, r10, 2
        l.add   r12, r4, r11
        l.sw    0(r12), r28         # dist[i] = INF
        l.add   r12, r5, r11
        l.sw    0(r12), r0          # vis[i] = 0
        l.addi  r10, r10, 1
        l.j     init_loop
init_done:
        l.slli  r11, r8, 2
        l.add   r12, r4, r11
        l.sw    0(r12), r0          # dist[src] = 0
        l.ori   r14, r3, 0          # n selection steps
step_loop:
        l.sfeqi r14, 0
        l.bf    src_store
        l.addi  r10, r0, 0          # scan for unvisited argmin
        l.ori   r15, r28, 0         # best distance = INF
        l.addi  r16, r0, -1         # best index
min_loop:
        l.sfgeu r10, r3
        l.bf    min_done
        l.slli  r11, r10, 2
        l.add   r12, r5, r11
        l.lwz   r13, 0(r12)
        l.sfnei r13, 0
        l.bf    min_next            # already visited
        l.add   r12, r4, r11
        l.lwz   r13, 0(r12)
        l.sfgeu r13, r15
        l.bf    min_next            # not strictly better
        l.ori   r15, r13, 0
        l.ori   r16, r10, 0
min_next:
        l.addi  r10, r10, 1
        l.j     min_loop
min_done:
        l.sfeqi r16, -1
        l.bf    src_store           # nothing reachable remains
        l.slli  r11, r16, 2
        l.add   r12, r5, r11
        l.addi  r13, r0, 1
        l.sw    0(r12), r13         # vis[u] = 1
        l.mul   r17, r16, r3
        l.slli  r17, r17, 2
        l.add   r17, r2, r17        # &adj[u][0]
        l.addi  r10, r0, 0
relax_loop:
        l.sfgeu r10, r3
        l.bf    relax_done
        l.slli  r11, r10, 2
        l.add   r12, r5, r11
        l.lwz   r13, 0(r12)
        l.sfnei r13, 0
        l.bf    relax_next          # visited
        l.add   r12, r17, r11
        l.lwz   r13, 0(r12)         # w = adj[u][v]
        l.sfeqi r13, 0
        l.bf    relax_next          # no edge
        l.add   r13, r13, r15       # dist[u] + w
        l.add   r12, r4, r11
        l.lwz   r18, 0(r12)
        l.sfltu r13, r18
        l.bnf   relax_next
        l.sw    0(r12), r13         # improve dist[v]
relax_next:
        l.addi  r10, r10, 1
        l.j     relax_loop
relax_done:
        l.addi  r14, r14, -1
        l.j     step_loop
src_store:
        l.mul   r17, r8, r3
        l.slli  r17, r17, 2
        l.add   r17, r6, r17        # &out[src][0]
        l.addi  r10, r0, 0
store_loop:
        l.sfgeu r10, r3
        l.bf    src_next
        l.slli  r11, r10, 2
        l.add   r12, r4, r11
        l.lwz   r13, 0(r12)
        l.add   r12, r17, r11
        l.sw    0(r12), r13
        l.addi  r10, r10, 1
        l.j     store_loop
src_next:
        l.addi  r8, r8, 1
        l.j     src_loop
rep_next:
        l.addi  r7, r7, -1
        l.j     rep_loop
done_all:
        l.nop   0x11                # kernel end
        l.nop   0x1                 # exit
dist:
        .space %d
vis:
        .space %d
out:
        .space %d
adj:
%s|}
    nodes reps nodes reps (4 * nodes) (4 * nodes) (4 * nodes * nodes)
    (Bench.format_word_data adj)

let reference ~nodes ~adj =
  let out = Array.make (nodes * nodes) 0 in
  for src = 0 to nodes - 1 do
    let dist = Array.make nodes inf in
    let vis = Array.make nodes false in
    dist.(src) <- 0;
    (try
       for _ = 1 to nodes do
         let best = ref inf and u = ref (-1) in
         for i = 0 to nodes - 1 do
           if (not vis.(i)) && dist.(i) < !best then begin
             best := dist.(i);
             u := i
           end
         done;
         if !u < 0 then raise Exit;
         vis.(!u) <- true;
         for v = 0 to nodes - 1 do
           let w = adj.((!u * nodes) + v) in
           if (not vis.(v)) && w <> 0 then begin
             let cand = !best + w in
             if cand < dist.(v) then dist.(v) <- cand
           end
         done
       done
     with Exit -> ());
    Array.blit dist 0 out (src * nodes) nodes
  done;
  out

let create ?(nodes = 10) ?(reps = 24) ?(seed = 1) () =
  if nodes < 2 then invalid_arg "Dijkstra.create: need at least 2 nodes";
  if reps < 1 then invalid_arg "Dijkstra.create: need at least 1 repetition";
  let rng = Rng.of_int (seed lxor 0x646a) in
  let adj = Array.make (nodes * nodes) 0 in
  for i = 0 to nodes - 1 do
    for j = i + 1 to nodes - 1 do
      let w = 1 + Rng.int rng 15 in
      adj.((i * nodes) + j) <- w;
      adj.((j * nodes) + i) <- w
    done
  done;
  let program = Sfi_isa.Asm.assemble_exn (source ~nodes ~reps ~adj) in
  let golden = reference ~nodes ~adj in
  let metric ~expected ~actual =
    let m = ref 0 in
    Array.iteri (fun i e -> if actual.(i) <> e then incr m) expected;
    100. *. float_of_int !m /. float_of_int (Array.length expected)
  in
  {
    Bench.name = "dijkstra";
    bench_type = "graph search";
    compute_rating = "-";
    control_rating = "++";
    size_desc = Printf.sprintf "%d nodes" nodes;
    program;
    mem_size = 65536;
    output_addr = Sfi_isa.Program.symbol program "out";
    output_count = nodes * nodes;
    golden;
    metric_name = "mismatch in min. distance";
    metric;
  }
