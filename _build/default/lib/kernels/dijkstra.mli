(** Dijkstra benchmark: all-pairs shortest paths by repeated
    single-source Dijkstra over a dense weighted graph, repeated [reps]
    times (Table 1: graph search, control-heavy, 10 nodes, output error =
    mismatch in min. distance over node pairs). *)

val create : ?nodes:int -> ?reps:int -> ?seed:int -> unit -> Bench.t
(** Defaults: 10 nodes (paper size), 24 repetitions (sized to land in the
    paper's cycle-count ballpark). Edge weights are uniform in [1, 15]
    over a complete graph. *)
