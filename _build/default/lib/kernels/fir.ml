open Sfi_util

let source ~outputs ~taps ~xpad ~h =
  Printf.sprintf
    {|# FIR filter: %d outputs, %d taps
        .entry start
start:
        l.movhi r2, hi(xpad)
        l.ori   r2, r2, lo(xpad)
        l.movhi r3, hi(taps)
        l.ori   r3, r3, lo(taps)
        l.movhi r4, hi(out)
        l.ori   r4, r4, lo(out)
        l.addi  r5, r0, %d          # outputs
        l.addi  r6, r0, %d          # taps
        l.nop   0x10                # kernel begin
        l.addi  r7, r0, 0           # n
n_loop:
        l.sfgeu r7, r5
        l.bf    done
        l.addi  r8, r0, 0           # k
        l.addi  r10, r0, 0          # acc
        l.addi  r11, r7, %d         # n + taps - 1
        l.slli  r11, r11, 2
        l.add   r11, r2, r11        # &xpad[n + taps - 1]
        l.ori   r12, r3, 0          # tap pointer
k_loop:
        l.sfgeu r8, r6
        l.bf    store
        l.lwz   r13, 0(r11)
        l.lwz   r14, 0(r12)
        l.mul   r15, r13, r14
        l.add   r10, r10, r15
        l.addi  r11, r11, -4
        l.addi  r12, r12, 4
        l.addi  r8, r8, 1
        l.j     k_loop
store:
        l.slli  r13, r7, 2
        l.add   r13, r4, r13
        l.sw    0(r13), r10
        l.addi  r7, r7, 1
        l.j     n_loop
done:
        l.nop   0x11                # kernel end
        l.nop   0x1                 # exit
out:
        .space %d
taps:
%sxpad:
%s|}
    outputs taps outputs taps (taps - 1) (4 * outputs)
    (Bench.format_word_data h)
    (Bench.format_word_data xpad)

let create ?(outputs = 128) ?(taps = 16) ?(seed = 1) () =
  if outputs < 1 || taps < 1 then invalid_arg "Fir.create: sizes must be positive";
  let rng = Rng.of_int (seed lxor 0x6669) in
  let h = Array.init taps (fun _ -> Rng.bits32 rng land 0xFFFF) in
  (* xpad has taps-1 leading zeros so y[n] = sum_k h[k] * x[n-k] without
     boundary special cases. *)
  let xpad =
    Array.init (outputs + taps - 1) (fun i ->
        if i < taps - 1 then 0 else Rng.bits32 rng land 0xFFFF)
  in
  let program = Sfi_isa.Asm.assemble_exn (source ~outputs ~taps ~xpad ~h) in
  let golden =
    Array.init outputs (fun n ->
        let acc = ref 0 in
        for k = 0 to taps - 1 do
          acc := U32.add !acc (U32.mul h.(k) xpad.(n + taps - 1 - k))
        done;
        !acc)
  in
  let metric ~expected ~actual =
    let acc = ref 0. in
    Array.iteri
      (fun i e ->
        let d = float_of_int actual.(i) -. float_of_int e in
        acc := !acc +. (d *. d))
      expected;
    !acc /. float_of_int (Array.length expected)
  in
  {
    Bench.name = "fir";
    bench_type = "signal processing";
    compute_rating = "++";
    control_rating = "-";
    size_desc = Printf.sprintf "%d outputs, %d taps" outputs taps;
    program;
    mem_size = 65536;
    output_addr = Sfi_isa.Program.symbol program "out";
    output_count = outputs;
    golden;
    metric_name = "mean squared error (MSE)";
    metric;
  }
