(** FIR filter benchmark (extension beyond the paper's four kernels).

    Direct-form convolution of a 16-bit sample stream with 16-bit taps —
    a streaming multiply-accumulate kernel, the signal-processing
    workload the paper's approximate-computing motivation targets. Its
    failure behaviour is multiplier-dominated like matmul, but per-output
    errors stay local (no error accumulation across outputs). *)

val create : ?outputs:int -> ?taps:int -> ?seed:int -> unit -> Bench.t
(** Defaults: 128 outputs, 16 taps. *)
