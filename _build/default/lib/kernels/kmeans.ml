open Sfi_util

let source ~points ~iters ~coords =
  Printf.sprintf
    {|# k-means, 2 clusters, %d 2-D points, %d iterations
        .entry start
start:
        l.movhi r2, hi(pts)
        l.ori   r2, r2, lo(pts)
        l.movhi r4, hi(assign)
        l.ori   r4, r4, lo(assign)
        l.addi  r3, r0, %d          # points
        l.addi  r5, r0, %d          # iterations
        l.nop   0x10                # kernel begin
        l.lwz   r16, 0(r2)          # c0 = pts[0]
        l.lwz   r17, 4(r2)
        l.lwz   r18, 8(r2)          # c1 = pts[1]
        l.lwz   r19, 12(r2)
iter_loop:
        l.sfeqi r5, 0
        l.bf    kdone
        l.addi  r26, r0, 0          # sum0x
        l.addi  r27, r0, 0          # sum0y
        l.addi  r28, r0, 0          # sum1x
        l.addi  r29, r0, 0          # sum1y
        l.addi  r30, r0, 0          # count0
        l.addi  r31, r0, 0          # count1
        l.addi  r6, r0, 0           # point index
        l.ori   r10, r2, 0          # point pointer
point_loop:
        l.sfgeu r6, r3
        l.bf    update
        l.lwz   r7, 0(r10)          # x
        l.lwz   r8, 4(r10)          # y
        l.sub   r11, r7, r16
        l.mul   r11, r11, r11
        l.sub   r12, r8, r17
        l.mul   r12, r12, r12
        l.add   r11, r11, r12       # d0
        l.sub   r12, r7, r18
        l.mul   r12, r12, r12
        l.sub   r13, r8, r19
        l.mul   r13, r13, r13
        l.add   r12, r12, r13       # d1
        l.slli  r14, r6, 2
        l.add   r14, r4, r14        # &assign[i]
        l.sfltu r12, r11            # d1 < d0 ?
        l.bf    assign1
        l.sw    0(r14), r0
        l.add   r26, r26, r7
        l.add   r27, r27, r8
        l.addi  r30, r30, 1
        l.j     next_pt
assign1:
        l.addi  r15, r0, 1
        l.sw    0(r14), r15
        l.add   r28, r28, r7
        l.add   r29, r29, r8
        l.addi  r31, r31, 1
next_pt:
        l.addi  r6, r6, 1
        l.addi  r10, r10, 8
        l.j     point_loop
update:
        l.sfeqi r30, 0
        l.bf    c1_update           # empty cluster keeps its centroid
        l.ori   r20, r26, 0
        l.ori   r21, r30, 0
        l.jal   div32
        l.ori   r16, r22, 0
        l.ori   r20, r27, 0
        l.ori   r21, r30, 0
        l.jal   div32
        l.ori   r17, r22, 0
c1_update:
        l.sfeqi r31, 0
        l.bf    iter_next
        l.ori   r20, r28, 0
        l.ori   r21, r31, 0
        l.jal   div32
        l.ori   r18, r22, 0
        l.ori   r20, r29, 0
        l.ori   r21, r31, 0
        l.jal   div32
        l.ori   r19, r22, 0
iter_next:
        l.addi  r5, r5, -1
        l.j     iter_loop
kdone:
        l.movhi r10, hi(cents)
        l.ori   r10, r10, lo(cents)
        l.sw    0(r10), r16
        l.sw    4(r10), r17
        l.sw    8(r10), r18
        l.sw    12(r10), r19
        l.nop   0x11                # kernel end
        l.nop   0x1                 # exit
# unsigned restoring division: r22 = r20 / r21 (clobbers r20, r23-r25)
div32:
        l.addi  r22, r0, 0
        l.addi  r23, r0, 0
        l.addi  r24, r0, 32
dloop:
        l.slli  r22, r22, 1
        l.slli  r23, r23, 1
        l.srli  r25, r20, 31
        l.or    r23, r23, r25
        l.slli  r20, r20, 1
        l.sfltu r23, r21
        l.bf    dskip
        l.sub   r23, r23, r21
        l.ori   r22, r22, 1
dskip:
        l.addi  r24, r24, -1
        l.sfnei r24, 0
        l.bf    dloop
        l.jr    r9
assign:
        .space %d
cents:
        .space 16
pts:
%s|}
    points iters points iters (4 * points)
    (Bench.format_word_data coords)

(* OCaml mirror of the kernel's exact integer arithmetic. *)
let reference ~points ~iters ~coords =
  let px i = coords.(2 * i) and py i = coords.((2 * i) + 1) in
  let c0x = ref (px 0) and c0y = ref (py 0) in
  let c1x = ref (px 1) and c1y = ref (py 1) in
  let assign = Array.make points 0 in
  for _ = 1 to iters do
    let s0x = ref 0 and s0y = ref 0 and s1x = ref 0 and s1y = ref 0 in
    let n0 = ref 0 and n1 = ref 0 in
    for i = 0 to points - 1 do
      let sq d = U32.mul d d in
      let d0 = U32.add (sq (U32.sub (px i) !c0x)) (sq (U32.sub (py i) !c0y)) in
      let d1 = U32.add (sq (U32.sub (px i) !c1x)) (sq (U32.sub (py i) !c1y)) in
      if U32.lt_u d1 d0 then begin
        assign.(i) <- 1;
        s1x := U32.add !s1x (px i);
        s1y := U32.add !s1y (py i);
        incr n1
      end
      else begin
        assign.(i) <- 0;
        s0x := U32.add !s0x (px i);
        s0y := U32.add !s0y (py i);
        incr n0
      end
    done;
    if !n0 > 0 then begin
      c0x := !s0x / !n0;
      c0y := !s0y / !n0
    end;
    if !n1 > 0 then begin
      c1x := !s1x / !n1;
      c1y := !s1y / !n1
    end
  done;
  Array.concat [ assign; [| !c0x; !c0y; !c1x; !c1y |] ]

let create ?(points = 8) ?(iters = 160) ?(seed = 1) () =
  if points < 2 then invalid_arg "Kmeans.create: need at least 2 points";
  if iters < 1 then invalid_arg "Kmeans.create: need at least 1 iteration";
  let rng = Rng.of_int (seed lxor 0x6b6d) in
  let coords = Array.init (2 * points) (fun _ -> Rng.bits32 rng land 0xFFFF) in
  let program = Sfi_isa.Asm.assemble_exn (source ~points ~iters ~coords) in
  let golden = reference ~points ~iters ~coords in
  let metric ~expected ~actual =
    (* Cluster-membership mismatch, invariant under label permutation. *)
    let mismatches swap =
      let m = ref 0 in
      for i = 0 to points - 1 do
        let e = expected.(i) in
        let a = if swap then 1 - (actual.(i) land 1) else actual.(i) in
        if a <> e then incr m
      done;
      !m
    in
    100. *. float_of_int (min (mismatches false) (mismatches true)) /. float_of_int points
  in
  {
    Bench.name = "kmeans";
    bench_type = "data mining";
    compute_rating = "+";
    control_rating = "+";
    size_desc = Printf.sprintf "%d points (2D)" points;
    program;
    mem_size = 65536;
    output_addr = Sfi_isa.Program.symbol program "assign";
    output_count = points + 4;
    golden;
    metric_name = "cluster membership";
    metric;
  }
