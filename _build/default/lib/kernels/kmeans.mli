(** K-means clustering benchmark: 2 clusters over [points] 2-D points,
    fixed iteration count, integer centroids via shift-subtract division
    (Table 1: data mining, mixed compute/control, 8 points (2D), output
    error = cluster membership mismatch). *)

val create : ?points:int -> ?iters:int -> ?seed:int -> unit -> Bench.t
(** Defaults: 8 points (paper size), 160 iterations (sized to land in the
    paper's cycle-count ballpark). [points] must be at least 2. *)
