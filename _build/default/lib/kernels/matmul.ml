open Sfi_util

let source ~n ~a ~b =
  Printf.sprintf
    {|# %dx%d matrix multiplication
        .entry start
start:
        l.movhi r2, hi(mat_a)
        l.ori   r2, r2, lo(mat_a)
        l.movhi r3, hi(mat_b)
        l.ori   r3, r3, lo(mat_b)
        l.movhi r4, hi(mat_c)
        l.ori   r4, r4, lo(mat_c)
        l.addi  r5, r0, %d          # n
        l.nop   0x10                # kernel begin
        l.addi  r6, r0, 0           # i
i_loop:
        l.sfgeu r6, r5
        l.bf    done
        l.addi  r7, r0, 0           # j
j_loop:
        l.sfgeu r7, r5
        l.bf    i_next
        l.addi  r8, r0, 0           # k
        l.addi  r10, r0, 0          # acc
        l.mul   r11, r6, r5
        l.slli  r11, r11, 2
        l.add   r11, r2, r11        # &A[i][0]
        l.slli  r12, r7, 2
        l.add   r12, r3, r12        # &B[0][j]
        l.slli  r13, r5, 2          # row stride in bytes
k_loop:
        l.sfgeu r8, r5
        l.bf    store
        l.lwz   r14, 0(r11)
        l.lwz   r15, 0(r12)
        l.mul   r16, r14, r15
        l.add   r10, r10, r16
        l.addi  r11, r11, 4
        l.add   r12, r12, r13
        l.addi  r8, r8, 1
        l.j     k_loop
store:
        l.mul   r14, r6, r5
        l.add   r14, r14, r7
        l.slli  r14, r14, 2
        l.add   r14, r4, r14
        l.sw    0(r14), r10
        l.addi  r7, r7, 1
        l.j     j_loop
i_next:
        l.addi  r6, r6, 1
        l.j     i_loop
done:
        l.nop   0x11                # kernel end
        l.nop   0x1                 # exit
mat_a:
%smat_b:
%smat_c:
        .space %d
|}
    n n n
    (Bench.format_word_data a)
    (Bench.format_word_data b)
    (4 * n * n)

let create ?(n = 16) ~bits ?(seed = 1) () =
  if bits <> 8 && bits <> 16 then invalid_arg "Matmul.create: bits must be 8 or 16";
  if n < 1 then invalid_arg "Matmul.create: n must be positive";
  let mask = (1 lsl bits) - 1 in
  let rng = Rng.of_int (seed lxor (0x6d6d + bits)) in
  let a = Array.init (n * n) (fun _ -> Rng.bits32 rng land mask) in
  let b = Array.init (n * n) (fun _ -> Rng.bits32 rng land mask) in
  let program = Sfi_isa.Asm.assemble_exn (source ~n ~a ~b) in
  let golden =
    Array.init (n * n) (fun idx ->
        let i = idx / n and j = idx mod n in
        let acc = ref 0 in
        for k = 0 to n - 1 do
          acc := U32.add !acc (U32.mul a.((i * n) + k) b.((k * n) + j))
        done;
        !acc)
  in
  let metric ~expected ~actual =
    let acc = ref 0. in
    Array.iteri
      (fun i e ->
        let d = float_of_int actual.(i) -. float_of_int e in
        acc := !acc +. (d *. d))
      expected;
    !acc /. float_of_int (Array.length expected)
  in
  {
    Bench.name = Printf.sprintf "mat_mult_%dbit" bits;
    bench_type = "arithmetic";
    compute_rating = "++";
    control_rating = "-";
    size_desc = Printf.sprintf "%dx%d matr." n n;
    program;
    mem_size = 65536;
    output_addr = Sfi_isa.Program.symbol program "mat_c";
    output_count = n * n;
    golden;
    metric_name = "mean squared error (MSE)";
    metric;
  }
