(** Matrix multiplication benchmark: C = A * B over n x n matrices of
    unsigned elements with an 8- or 16-bit value range (Table 1:
    arithmetic, compute-heavy, 16x16, output error = MSE). The element
    bit-width shapes which multiplier paths the data excites, exactly as
    in the paper's 8-bit vs 16-bit comparison (Fig. 6a/6b). *)

val create : ?n:int -> bits:int -> ?seed:int -> unit -> Bench.t
(** [bits] must be 8 or 16. Default [n] = 16 (paper size). *)
