open Sfi_util

let source ~n ~values =
  Printf.sprintf
    {|# median of %d values by bubble sort
        .entry start
start:
        l.movhi r2, hi(data)
        l.ori   r2, r2, lo(data)
        l.addi  r3, r0, %d          # n
        l.nop   0x10                # kernel begin
        l.addi  r4, r3, -1          # pass length i = n-1
pass_loop:
        l.sfeqi r4, 0
        l.bf    sorted
        l.addi  r5, r0, 0           # j
        l.ori   r7, r2, 0           # &a[j]
inner:
        l.sfgeu r5, r4
        l.bf    pass_next
        l.lwz   r8, 0(r7)
        l.lwz   r10, 4(r7)
        l.sfleu r8, r10             # in order -> no swap
        l.bf    noswap
        l.sw    0(r7), r10
        l.sw    4(r7), r8
noswap:
        l.addi  r5, r5, 1
        l.addi  r7, r7, 4
        l.j     inner
pass_next:
        l.addi  r4, r4, -1
        l.j     pass_loop
sorted:
        l.addi  r5, r0, %d          # byte offset of the middle element
        l.add   r5, r2, r5
        l.lwz   r6, 0(r5)
        l.movhi r7, hi(result)
        l.ori   r7, r7, lo(result)
        l.sw    0(r7), r6
        l.nop   0x11                # kernel end
        l.nop   0x1                 # exit
result: .word 0
data:
%s|}
    n n
    (n / 2 * 4)
    (Bench.format_word_data values)

let create ?(n = 129) ?(seed = 1) () =
  if n < 3 || n land 1 = 0 then invalid_arg "Median.create: n must be odd and >= 3";
  let rng = Rng.of_int (seed lxor 0x6d65) in
  let values = Array.init n (fun _ -> Rng.bits32 rng land 0x7FFF) in
  let program = Sfi_isa.Asm.assemble_exn (source ~n ~values) in
  let sorted = Array.copy values in
  Array.sort compare sorted;
  let golden = [| sorted.(n / 2) |] in
  let metric ~expected ~actual =
    let e = float_of_int expected.(0) and a = float_of_int actual.(0) in
    100. *. abs_float (a -. e) /. Float.max 1. (abs_float e)
  in
  {
    Bench.name = "median";
    bench_type = "sorting";
    compute_rating = "-";
    control_rating = "+";
    size_desc = Printf.sprintf "%d values" n;
    program;
    mem_size = 65536;
    output_addr = Sfi_isa.Program.symbol program "result";
    output_count = 1;
    golden;
    metric_name = "relative difference";
    metric;
  }
