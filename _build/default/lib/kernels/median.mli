(** Median benchmark: insertion sort of [n] values, output the middle
    element (Table 1: sorting, control-oriented, 129 values, output error
    = relative difference of the median). *)

val create : ?n:int -> ?seed:int -> unit -> Bench.t
(** Default [n] = 129 (paper size). Values are uniform in [0, 2{^15}).
    [n] must be odd and at least 3. *)
