(** Benchmark registry: the paper's suite by name. *)

val paper_suite : ?seed:int -> unit -> Bench.t list
(** median, mat_mult_8bit, mat_mult_16bit, kmeans, dijkstra — Table 1's
    rows — at the paper's problem sizes. *)

val extension_suite : ?seed:int -> unit -> Bench.t list
(** crc32 and fir: kernels beyond the paper's set, exercising the shifter
    / logic-unit classes and a streaming MAC profile respectively. *)

val names : string list

val by_name : ?seed:int -> string -> Bench.t option
