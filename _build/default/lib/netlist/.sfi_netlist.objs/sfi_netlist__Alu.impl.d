lib/netlist/alu.ml: Array Cell Cell_lib Circuit Datapath List Logic_sim Op_class Printf Sfi_util
