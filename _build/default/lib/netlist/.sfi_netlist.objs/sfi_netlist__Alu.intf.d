lib/netlist/alu.mli: Cell_lib Circuit Logic_sim Op_class Sfi_util U32
