lib/netlist/cell.ml: Array List String
