lib/netlist/cell.mli:
