lib/netlist/cell_lib.ml: Array Buffer Cell List Printf String
