lib/netlist/cell_lib.mli: Cell
