lib/netlist/circuit.ml: Array Cell Cell_lib List Printf
