lib/netlist/circuit.mli: Cell Cell_lib
