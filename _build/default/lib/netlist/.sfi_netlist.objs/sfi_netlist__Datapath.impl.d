lib/netlist/datapath.ml: Array Cell Circuit List
