lib/netlist/datapath.mli: Cell Circuit
