lib/netlist/logic_sim.ml: Array Cell Circuit List Printf
