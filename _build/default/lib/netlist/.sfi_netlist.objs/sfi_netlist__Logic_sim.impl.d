lib/netlist/logic_sim.ml: Array Circuit List Printf
