lib/netlist/logic_sim.mli: Circuit
