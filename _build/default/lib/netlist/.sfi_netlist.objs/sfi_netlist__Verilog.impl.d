lib/netlist/verilog.ml: Array Buffer Cell Circuit Fun Hashtbl List Printf String
