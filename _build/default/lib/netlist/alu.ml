open Sfi_util
module B = Circuit.Builder

let width = 32

type t = {
  circuit : Circuit.t;
  a : Circuit.net array;
  b : Circuit.net array;
  selects : (Op_class.t * Circuit.net) array;
  result : Circuit.net array;
  aux_low : Circuit.net array;
}

let unit_tag_of_class = function
  | Op_class.Add | Op_class.Sub -> "addsub"
  | Op_class.Mul -> "mul"
  | Op_class.Sll -> "sll"
  | Op_class.Srl -> "srl"
  | Op_class.Sra -> "sra"
  | Op_class.And_ -> "and"
  | Op_class.Or_ -> "or"
  | Op_class.Xor_ -> "xor"

let build ?(lib = Cell_lib.default) () =
  let b = B.create () in
  let a_in = B.input_vec b "a" width in
  let b_in = B.input_vec b "b" width in
  let selects =
    List.map (fun c -> (c, B.input b ("sel_" ^ Op_class.name c))) Op_class.all
  in
  let sel c = List.assoc c selects in
  (* Operand bypass network: two forwarding stages (from MEM and WB) in
     front of the ALU, plus a driver buffer. The forwarding buses are
     primary inputs so the netlist is self-contained; they are held low
     during characterization. *)
  B.set_tag b "bypass";
  let fwd_mem = B.input_vec b "fwd_mem" width in
  let fwd_wb = B.input_vec b "fwd_wb" width in
  let bp_mem = B.input b "bp_mem" in
  let bp_wb = B.input b "bp_wb" in
  let bypass xs =
    Array.mapi
      (fun i x ->
        let s1 = B.gate b Cell.Mux2 [| bp_mem; x; fwd_mem.(i) |] in
        let s2 = B.gate b Cell.Mux2 [| bp_wb; s1; fwd_wb.(i) |] in
        B.gate b Cell.Buf [| s2 |])
      xs
  in
  let a_byp = bypass a_in and b_byp = bypass b_in in
  (* Unit enables; add and sub share the adder/subtractor. *)
  B.set_tag b "iso";
  let en_addsub = B.gate b Cell.Or2 [| sel Op_class.Add; sel Op_class.Sub |] in
  let iso enable = (Datapath.isolate b ~enable a_byp, Datapath.isolate b ~enable b_byp) in
  let addsub_a, addsub_b = iso en_addsub in
  let mul_a, mul_b = iso (sel Op_class.Mul) in
  let sll_a, sll_b = iso (sel Op_class.Sll) in
  let srl_a, srl_b = iso (sel Op_class.Srl) in
  let sra_a, sra_b = iso (sel Op_class.Sra) in
  let and_a, and_b = iso (sel Op_class.And_) in
  let or_a, or_b = iso (sel Op_class.Or_) in
  let xor_a, xor_b = iso (sel Op_class.Xor_) in
  B.set_tag b "addsub";
  let addsub_out = Datapath.add_sub b addsub_a addsub_b ~sub:(sel Op_class.Sub) in
  B.set_tag b "mul";
  let mul_out = Datapath.array_multiplier b mul_a mul_b in
  let amount bs = Array.sub bs 0 5 in
  B.set_tag b "sll";
  let sll_out = Datapath.barrel_shifter b `Left sll_a ~amount:(amount sll_b) in
  B.set_tag b "srl";
  let srl_out = Datapath.barrel_shifter b `Right_logical srl_a ~amount:(amount srl_b) in
  B.set_tag b "sra";
  let sra_out = Datapath.barrel_shifter b `Right_arith sra_a ~amount:(amount sra_b) in
  B.set_tag b "and";
  let and_out = Datapath.bitwise b Cell.And2 and_a and_b in
  B.set_tag b "or";
  let or_out = Datapath.bitwise b Cell.Or2 or_a or_b in
  B.set_tag b "xor";
  let xor_out = Datapath.bitwise b Cell.Xor2 xor_a xor_b in
  B.set_tag b "select";
  let result =
    Datapath.one_hot_mux b
      [
        (en_addsub, addsub_out);
        (sel Op_class.Mul, mul_out);
        (sel Op_class.Sll, sll_out);
        (sel Op_class.Srl, srl_out);
        (sel Op_class.Sra, sra_out);
        (sel Op_class.And_, and_out);
        (sel Op_class.Or_, or_out);
        (sel Op_class.Xor_, xor_out);
      ]
  in
  Array.iteri (fun i net -> B.output b (Printf.sprintf "r.%d" i) net) result;
  let circuit = Circuit.freeze b ~lib in
  let aux_low = Array.concat [ fwd_mem; fwd_wb; [| bp_mem; bp_wb |] ] in
  { circuit; a = a_in; b = b_in; selects = Array.of_list selects; result; aux_low }

let select_net t c =
  let _, net = Array.to_list t.selects |> List.find (fun (c', _) -> c' = c) in
  net

let drive t sim c a b =
  Logic_sim.set_input_vec sim t.a a;
  Logic_sim.set_input_vec sim t.b b;
  Array.iter (fun net -> Logic_sim.set_input sim net false) t.aux_low;
  Array.iter (fun (c', net) -> Logic_sim.set_input sim net (c' = c)) t.selects

let simulate t sim c a b =
  drive t sim c a b;
  Logic_sim.eval sim;
  Logic_sim.read_vec sim t.result
