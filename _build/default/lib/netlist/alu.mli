(** The 32-bit execution-stage ALU as a gate-level netlist.

    This is the circuit the whole study revolves around: its 32 output
    nets are the D-inputs of the EX-stage result flip-flops — the only
    timing endpoints that can fail under frequency over-scaling in the
    paper's case study (§2.1). The ALU instantiates one datapath unit per
    operation class, with operand isolation in front of each unit, and an
    AND-OR one-hot result mux behind them. Add and Sub share the
    adder/subtractor unit.

    In front of the units sits the {e operand bypass network}: the
    forwarding muxes (EX/MEM and WB results back into the operands) that
    every real in-order pipeline has. Its delay is data-independent — the
    operands traverse it every cycle — so it consumes a fixed fraction of
    the clock period for every operation class, which is what keeps the
    dynamic timing limits of all classes within a few tens of percent of
    the STA limit, as observed in the paper's case study.

    Gate unit tags (for sizing and reports): ["bypass"], ["iso"],
    ["addsub"], ["mul"], ["sll"], ["srl"], ["sra"], ["and"], ["or"],
    ["xor"], ["select"]. *)

open Sfi_util

val width : int
(** 32. *)

type t = private {
  circuit : Circuit.t;
  a : Circuit.net array;              (** operand A inputs, LSB first *)
  b : Circuit.net array;              (** operand B inputs, LSB first *)
  selects : (Op_class.t * Circuit.net) array;
      (** one-hot class select inputs (Add and Sub have distinct selects
          even though they share the adder unit) *)
  result : Circuit.net array;         (** the 32 endpoint nets (also POs) *)
  aux_low : Circuit.net array;
      (** forwarding buses and bypass selects: primary inputs held low
          during characterization (operands then flow straight through the
          bypass muxes) *)
}

val build : ?lib:Cell_lib.t -> unit -> t
(** Generates a fresh ALU netlist with nominal (pre-sizing) delays from
    [lib] (default {!Cell_lib.default}). *)

val unit_tag_of_class : Op_class.t -> string
(** The sizing tag of the unit a class exercises. *)

val select_net : t -> Op_class.t -> Circuit.net

val drive : t -> Logic_sim.t -> Op_class.t -> U32.t -> U32.t -> unit
(** Sets operand and one-hot select inputs on a logic simulator for one
    operation (does not call [eval]). *)

val simulate : t -> Logic_sim.t -> Op_class.t -> U32.t -> U32.t -> U32.t
(** Functional evaluation: drives the inputs, evaluates, and reads back
    the 32-bit result. Must equal [Op_class.apply] for every class (the
    netlist-vs-specification equivalence checked by the test suite). *)
