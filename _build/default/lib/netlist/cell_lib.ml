type entry = {
  kind : Cell.kind;
  area : float;
  intrinsic : float;
  load_slope : float;
  vdd_alpha_skew : float;
}

type t = entry array (* indexed in the order of Cell.all *)

let index kind =
  let rec find i = function
    | [] -> assert false
    | k :: rest -> if k = kind then i else find (i + 1) rest
  in
  find 0 Cell.all

let entry t kind = t.(index kind)

let make_entry kind area intrinsic load_slope vdd_alpha_skew =
  { kind; area; intrinsic; load_slope; vdd_alpha_skew }

let default =
  (* Intrinsic delays in ps, loosely shaped on a 28 nm standard-cell library
     at 0.7 V: an inverter is the fastest cell, XOR-class cells roughly
     2.5x slower, complex cells in between. The alpha skew encodes that
     stacked-transistor cells degrade slightly faster at low voltage. *)
  [|
    make_entry Inv 1.0 8.0 1.5 0.00;
    make_entry Buf 1.5 12.0 1.2 0.00;
    make_entry Nand2 1.2 10.0 2.0 0.01;
    make_entry Nor2 1.2 12.0 2.5 0.02;
    make_entry And2 1.5 14.0 2.0 0.01;
    make_entry Or2 1.5 14.0 2.5 0.02;
    make_entry Xor2 2.5 22.0 3.0 0.03;
    make_entry Xnor2 2.5 22.0 3.0 0.03;
    make_entry Mux2 2.2 20.0 2.5 0.02;
    make_entry Aoi21 1.8 14.0 2.5 0.02;
    make_entry Oai21 1.8 14.0 2.5 0.02;
  |]

let () =
  (* The table must line up with Cell.all. *)
  assert (Array.length default = List.length Cell.all);
  List.iteri (fun i k -> assert (default.(i).kind = k)) Cell.all

let gate_delay t kind ~fanout =
  let e = entry t kind in
  let fanout = max 1 fanout in
  e.intrinsic +. (e.load_slope *. float_of_int fanout)

let to_text t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "# sfi cell library: delays in ps at 0.7 V, typical corner\n";
  Array.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "cell %s area %g intrinsic %g load %g alpha_skew %g\n"
           (Cell.name e.kind) e.area e.intrinsic e.load_slope e.vdd_alpha_skew))
    t;
  Buffer.contents buf

let of_text text =
  let lines = String.split_on_char '\n' text in
  let parse_line lineno line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    let words =
      String.split_on_char ' ' line
      |> List.concat_map (String.split_on_char '\t')
      |> List.filter (fun w -> w <> "")
    in
    match words with
    | [] -> Ok None
    | [ "cell"; cname; "area"; a; "intrinsic"; i; "load"; l; "alpha_skew"; s ] -> begin
      match Cell.of_name cname with
      | None -> Error (Printf.sprintf "line %d: unknown cell %S" lineno cname)
      | Some kind -> begin
        match
          (float_of_string_opt a, float_of_string_opt i, float_of_string_opt l,
           float_of_string_opt s)
        with
        | Some a, Some i, Some l, Some s -> Ok (Some (make_entry kind a i l s))
        | _ -> Error (Printf.sprintf "line %d: malformed number" lineno)
      end
    end
    | _ -> Error (Printf.sprintf "line %d: malformed cell line" lineno)
  in
  let rec collect lineno acc = function
    | [] -> Ok acc
    | line :: rest -> begin
      match parse_line lineno line with
      | Error _ as e -> e
      | Ok None -> collect (lineno + 1) acc rest
      | Ok (Some e) -> collect (lineno + 1) (e :: acc) rest
    end
  in
  match collect 1 [] lines with
  | Error _ as e -> e
  | Ok entries ->
    let find kind = List.filter (fun e -> e.kind = kind) entries in
    let rec build acc = function
      | [] -> Ok (Array.of_list (List.rev acc))
      | kind :: rest -> begin
        match find kind with
        | [ e ] -> build (e :: acc) rest
        | [] -> Error (Printf.sprintf "missing cell %s" (Cell.name kind))
        | _ -> Error (Printf.sprintf "duplicate cell %s" (Cell.name kind))
      end
    in
    build [] Cell.all
