(** Timing characterization of the primitive cells (a miniature Liberty).

    Each cell kind carries an intrinsic propagation delay and a linear
    load-dependence coefficient; the delay of a gate instance is
    [intrinsic +. load_slope *. fanout]. Delays are in picoseconds at the
    nominal operating point (0.7 V, typical process, 25 C). The library can
    be serialized to and parsed from a small text format so alternative
    characterizations (process corners, different technologies) can be
    supplied without recompiling. *)

type entry = {
  kind : Cell.kind;
  area : float;          (** relative cell area, for report purposes *)
  intrinsic : float;     (** ps *)
  load_slope : float;    (** ps per fanout unit load *)
  vdd_alpha_skew : float;
      (** relative skew of the alpha-power exponent for this cell, modelling
          that not all cells scale identically with supply voltage
          (cf. paper footnote 1). 0. means exactly the nominal curve. *)
}

type t

val default : t
(** The built-in 28 nm-flavoured characterization used by all experiments
    unless overridden. *)

val entry : t -> Cell.kind -> entry

val gate_delay : t -> Cell.kind -> fanout:int -> float
(** Nominal-voltage delay of one gate instance driving [fanout] unit
    loads (at least one load is assumed). *)

val to_text : t -> string
(** Serialize to the text format. *)

val of_text : string -> (t, string) result
(** Parse the text format produced by {!to_text}. The format is
    line-oriented: blank lines and [#] comments are ignored; each cell is
    [cell NAME area A intrinsic I load L alpha_skew S]. All cell kinds must
    be present exactly once. *)
