module B = Circuit.Builder

type b = B.t
type net = Circuit.net

let gate = B.gate

let full_adder b x y cin =
  let p = gate b Cell.Xor2 [| x; y |] in
  let sum = gate b Cell.Xor2 [| p; cin |] in
  let g = gate b Cell.And2 [| x; y |] in
  let t = gate b Cell.And2 [| p; cin |] in
  let cout = gate b Cell.Or2 [| g; t |] in
  (sum, cout)

let half_adder b x y =
  let sum = gate b Cell.Xor2 [| x; y |] in
  let cout = gate b Cell.And2 [| x; y |] in
  (sum, cout)

let check_widths name xs ys =
  if Array.length xs <> Array.length ys then
    invalid_arg (name ^ ": operand width mismatch")

let ripple_adder b xs ys ~cin =
  check_widths "Datapath.ripple_adder" xs ys;
  let n = Array.length xs in
  let sums = Array.make n cin in
  let carry = ref cin in
  for i = 0 to n - 1 do
    let s, c = full_adder b xs.(i) ys.(i) !carry in
    sums.(i) <- s;
    carry := c
  done;
  (sums, !carry)

let carry_skip_adder b ~block xs ys ~cin =
  check_widths "Datapath.carry_skip_adder" xs ys;
  if block <= 0 then invalid_arg "Datapath.carry_skip_adder: block must be positive";
  let n = Array.length xs in
  let sums = Array.make n cin in
  let carry_in = ref cin in
  let i = ref 0 in
  while !i < n do
    let width = min block (n - !i) in
    let lo = !i in
    (* Ripple chain inside the block. *)
    let c = ref !carry_in in
    let props = Array.make width 0 in
    for k = 0 to width - 1 do
      let x = xs.(lo + k) and y = ys.(lo + k) in
      let p = gate b Cell.Xor2 [| x; y |] in
      props.(k) <- p;
      let s = gate b Cell.Xor2 [| p; !c |] in
      sums.(lo + k) <- s;
      let g = gate b Cell.And2 [| x; y |] in
      let t = gate b Cell.And2 [| p; !c |] in
      c := gate b Cell.Or2 [| g; t |]
    done;
    (* Skip path: if the whole block propagates, the carry-out is the
       carry-in and the slow ripple chain is bypassed. *)
    let all_p =
      if width = 1 then props.(0)
      else begin
        let acc = ref props.(0) in
        for k = 1 to width - 1 do
          acc := gate b Cell.And2 [| !acc; props.(k) |]
        done;
        !acc
      end
    in
    carry_in := gate b Cell.Mux2 [| all_p; !c; !carry_in |];
    i := !i + width
  done;
  (sums, !carry_in)

let brent_kung_adder b xs ys ~cin =
  check_widths "Datapath.brent_kung_adder" xs ys;
  let n = Array.length xs in
  if n land (n - 1) <> 0 || n = 0 then
    invalid_arg "Datapath.brent_kung_adder: width must be a power of two";
  let p = Array.init n (fun i -> gate b Cell.Xor2 [| xs.(i); ys.(i) |]) in
  let g = Array.init n (fun i -> gate b Cell.And2 [| xs.(i); ys.(i) |]) in
  (* Prefix arrays: after the sweeps, gp.(i)/pp.(i) cover bits [0..i]. *)
  let gp = Array.copy g and pp = Array.copy p in
  let combine i j =
    let t = gate b Cell.And2 [| pp.(i); gp.(j) |] in
    gp.(i) <- gate b Cell.Or2 [| gp.(i); t |];
    pp.(i) <- gate b Cell.And2 [| pp.(i); pp.(j) |]
  in
  let levels =
    let rec log2 acc v = if v <= 1 then acc else log2 (acc + 1) (v / 2) in
    log2 0 n
  in
  (* Up-sweep. *)
  for k = 0 to levels - 1 do
    let step = 1 lsl (k + 1) in
    let i = ref (step - 1) in
    while !i < n do
      combine !i (!i - (1 lsl k));
      i := !i + step
    done
  done;
  (* Down-sweep. *)
  for k = levels - 2 downto 0 do
    let step = 1 lsl (k + 1) in
    let i = ref (step + (1 lsl k) - 1) in
    while !i < n do
      combine !i (!i - (1 lsl k));
      i := !i + step
    done
  done;
  (* Carry into bit i: c_0 = cin, c_i = G[0..i-1] + P[0..i-1] cin. *)
  let carry i =
    if i = 0 then cin
    else begin
      let t = gate b Cell.And2 [| pp.(i - 1); cin |] in
      gate b Cell.Or2 [| gp.(i - 1); t |]
    end
  in
  let sums = Array.init n (fun i -> gate b Cell.Xor2 [| p.(i); carry i |]) in
  (sums, carry n)

let carry_select_adder b ~block xs ys ~cin =
  check_widths "Datapath.carry_select_adder" xs ys;
  if block <= 0 then invalid_arg "Datapath.carry_select_adder: block must be positive";
  let n = Array.length xs in
  let sums = Array.make n cin in
  let carry = ref cin in
  let lo = ref 0 in
  while !lo < n do
    let width = min block (n - !lo) in
    let xs_b = Array.sub xs !lo width and ys_b = Array.sub ys !lo width in
    let sum0, cout0 = ripple_adder b xs_b ys_b ~cin:(B.const b false) in
    let sum1, cout1 = ripple_adder b xs_b ys_b ~cin:(B.const b true) in
    for k = 0 to width - 1 do
      sums.(!lo + k) <- gate b Cell.Mux2 [| !carry; sum0.(k); sum1.(k) |]
    done;
    carry := gate b Cell.Mux2 [| !carry; cout0; cout1 |];
    lo := !lo + width
  done;
  (sums, !carry)

let add_sub b xs ys ~sub =
  check_widths "Datapath.add_sub" xs ys;
  let ys' = Array.map (fun y -> gate b Cell.Xor2 [| y; sub |]) ys in
  let sums, _ = carry_select_adder b ~block:4 xs ys' ~cin:sub in
  sums

let array_multiplier b xs ys =
  check_widths "Datapath.array_multiplier" xs ys;
  let n = Array.length xs in
  let pp j i = gate b Cell.And2 [| xs.(i); ys.(j) |] in
  (* acc holds the running low-n-bit sum after each row. *)
  let acc = Array.init n (fun i -> pp 0 i) in
  for j = 1 to n - 1 do
    (* Add (a << j) & b_j into acc[j .. n-1]; bits below j are final. *)
    let carry = ref None in
    for i = j to n - 1 do
      let p = pp j (i - j) in
      match !carry with
      | None ->
        let s, c = half_adder b acc.(i) p in
        acc.(i) <- s;
        carry := Some c
      | Some c_in ->
        let s, c = full_adder b acc.(i) p c_in in
        acc.(i) <- s;
        carry := Some c
    done
  done;
  acc

let barrel_shifter b dir xs ~amount =
  let n = Array.length xs in
  let fill =
    match dir with
    | `Left | `Right_logical -> B.const b false
    | `Right_arith -> xs.(n - 1)
  in
  let stage current k =
    let sh = amount.(k) in
    let dist = 1 lsl k in
    Array.init n (fun i ->
        let shifted =
          match dir with
          | `Left -> if i >= dist then current.(i - dist) else fill
          | `Right_logical | `Right_arith ->
            if i + dist < n then current.(i + dist) else fill
        in
        gate b Cell.Mux2 [| sh; current.(i); shifted |])
  in
  let current = ref xs in
  for k = 0 to Array.length amount - 1 do
    current := stage !current k
  done;
  !current

let bitwise b kind xs ys =
  check_widths "Datapath.bitwise" xs ys;
  Array.map2 (fun x y -> gate b kind [| x; y |]) xs ys

let isolate b ~enable xs = Array.map (fun x -> gate b Cell.And2 [| x; enable |]) xs

let rec tree b kind = function
  | [] -> invalid_arg "Datapath.tree: empty"
  | [ x ] -> x
  | xs ->
    let rec pair acc = function
      | [] -> List.rev acc
      | [ x ] -> List.rev (x :: acc)
      | x :: y :: rest -> pair (gate b kind [| x; y |] :: acc) rest
    in
    tree b kind (pair [] xs)

let and_tree b xs = tree b Cell.And2 (Array.to_list xs)

let or_tree b xs = tree b Cell.Or2 (Array.to_list xs)

let one_hot_mux b buses =
  match buses with
  | [] -> invalid_arg "Datapath.one_hot_mux: empty"
  | (_, first) :: _ ->
    let width = Array.length first in
    List.iter
      (fun (_, bus) ->
        if Array.length bus <> width then
          invalid_arg "Datapath.one_hot_mux: width mismatch")
      buses;
    Array.init width (fun i ->
        let selected = List.map (fun (sel, bus) -> gate b Cell.And2 [| sel; bus.(i) |]) buses in
        tree b Cell.Or2 selected)

let equal_const b xs value =
  let bits =
    Array.mapi
      (fun i x ->
        if (value lsr i) land 1 = 1 then x else gate b Cell.Inv [| x |])
      xs
  in
  and_tree b bits
