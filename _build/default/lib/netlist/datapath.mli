(** Generators for the arithmetic datapath blocks of the execution stage.

    Every generator expands into primitive gates inside a {!Circuit.Builder}
    and returns the output nets. Bit index 0 is the least-significant bit
    throughout. The generators are deliberately structural (ripple chains,
    carry-skip blocks, shift-and-add arrays): the per-bit and per-operand
    path-delay spread that drives the paper's statistical fault model comes
    from these structures, while absolute speed is set afterwards by the
    virtual-synthesis sizing pass in [Sfi_timing.Sizing]. *)

type b = Circuit.Builder.t
type net = Circuit.net

val full_adder : b -> net -> net -> net -> net * net
(** [full_adder b x y cin] is [(sum, carry_out)]. *)

val half_adder : b -> net -> net -> net * net

val ripple_adder : b -> net array -> net array -> cin:net -> net array * net
(** Classic ripple-carry adder; operands must have equal width. *)

val carry_skip_adder :
  b -> block:int -> net array -> net array -> cin:net -> net array * net
(** Carry-skip adder with the given block size: ripple chains inside each
    block, a propagate-controlled skip mux between blocks. This is the
    EX-stage adder: delay grows with the excited carry length, so MSB
    endpoints see later arrivals than LSBs, and actual arrivals depend on
    the operands. *)

val brent_kung_adder :
  b -> net array -> net array -> cin:net -> net array * net
(** Brent-Kung parallel-prefix adder (operand width must be a power of
    two). Its balanced generate/propagate tree means random operands
    excite paths close to the structural worst case — matching the
    synthesized adder of the case study, whose dynamic timing limit sits
    only slightly above its static one — while the prefix depth still
    grows with bit significance, so MSB endpoints fail before LSBs. *)

val carry_select_adder :
  b -> block:int -> net array -> net array -> cin:net -> net array * net
(** Carry-select adder: each block computes both carry-in hypotheses with
    short ripple chains, and a block-to-block mux chain picks the real
    one. The mux chain is excited to its full depth within a few hundred
    random vectors, so the adder's dynamic timing limit sits close to its
    static one — the behaviour the case study's synthesized adder shows
    (points of first failure only ~6% above the STA limit, Fig. 4) — while
    bit significance still orders the arrival times (one more mux per
    block). *)

val add_sub : b -> net array -> net array -> sub:net -> net array
(** Adder/subtractor: computes [a + b] when [sub] is low and [a - b]
    (two's complement) when high, on top of {!carry_select_adder} with
    4-bit blocks. *)

val array_multiplier : b -> net array -> net array -> net array
(** Shift-and-add array multiplier returning the low [n] product bits for
    [n]-bit operands — the single-cycle multiplier that limits the
    processor's clock frequency. *)

val barrel_shifter : b -> [ `Left | `Right_logical | `Right_arith ] ->
  net array -> amount:net array -> net array
(** Logarithmic barrel shifter; [amount] gives the shift-count bits
    (LSB first), one mux stage per bit. *)

val bitwise : b -> Cell.kind -> net array -> net array -> net array
(** Bit-parallel application of a 2-input cell. *)

val isolate : b -> enable:net -> net array -> net array
(** Operand isolation: AND every bit with [enable] so that de-selected
    units see constant inputs and stay quiet (standard low-power practice,
    and what keeps DTA characterization conditioned on one unit). *)

val and_tree : b -> net array -> net
val or_tree : b -> net array -> net
(** Balanced reduction trees. Raise [Invalid_argument] on empty input. *)

val one_hot_mux : b -> (net * net array) list -> net array
(** [one_hot_mux b [ (sel1, bus1); ... ]] implements the result mux as an
    AND-OR structure; exactly one select is expected to be high. All buses
    must share the same width. *)

val equal_const : b -> net array -> int -> net
(** Comparator against a constant: high when the bus equals the value. *)
