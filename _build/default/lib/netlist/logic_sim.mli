(** Zero-delay functional simulation of a frozen circuit.

    Used to validate the generated datapaths against their arithmetic
    specification and as the reference for the delay-annotated simulator in
    [Sfi_timing.Dta]. *)

type t

val create : Circuit.t -> t

val set_input : t -> Circuit.net -> bool -> unit
(** Sets a primary input value. Raises [Invalid_argument] if the net is
    not a primary input or constant net. *)

val set_input_vec : t -> Circuit.net array -> int -> unit
(** [set_input_vec t nets word] drives [nets.(i)] with bit [i] of [word]. *)

val eval : t -> unit
(** Propagates all values in topological order. *)

val value : t -> Circuit.net -> bool
(** Value of a net after {!eval}. *)

val read_vec : t -> Circuit.net array -> int
(** Packs net values into an integer, index 0 = LSB. *)

val eval_fn : Circuit.t -> (string * bool) list -> (string * bool) list
(** One-shot convenience: evaluate named inputs to named outputs. Inputs
    not mentioned default to [false]. *)
