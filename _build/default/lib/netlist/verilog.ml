let cell_definitions =
  {|// behavioural primitives for the sfi netlist export
module INV   (input a, output y);            assign y = ~a;            endmodule
module BUF   (input a, output y);            assign y = a;             endmodule
module NAND2 (input a, input b, output y);   assign y = ~(a & b);      endmodule
module NOR2  (input a, input b, output y);   assign y = ~(a | b);      endmodule
module AND2  (input a, input b, output y);   assign y = a & b;         endmodule
module OR2   (input a, input b, output y);   assign y = a | b;         endmodule
module XOR2  (input a, input b, output y);   assign y = a ^ b;         endmodule
module XNOR2 (input a, input b, output y);   assign y = ~(a ^ b);      endmodule
module MUX2  (input s, input a, input b, output y); assign y = s ? b : a; endmodule
module AOI21 (input a, input b, input c, output y); assign y = ~((a & b) | c); endmodule
module OAI21 (input a, input b, input c, output y); assign y = ~((a | b) & c); endmodule
|}

let sanitize name =
  String.map (fun c -> if c = '.' || c = '-' then '_' else c) name

let port_list (c : Circuit.t) =
  let ins = Array.to_list c.Circuit.pis |> List.map (fun (n, _) -> "input " ^ sanitize n) in
  let outs =
    Array.to_list c.Circuit.pos |> List.map (fun (n, _) -> "output " ^ sanitize n)
  in
  ins @ outs

let pin_names kind =
  match Cell.arity kind with
  | 1 -> [| "a" |]
  | 2 -> [| "a"; "b" |]
  | 3 -> if kind = Cell.Mux2 then [| "s"; "a"; "b" |] else [| "a"; "b"; "c" |]
  | _ -> assert false

let to_string ?(module_name = "sfi_netlist") (c : Circuit.t) =
  let buf = Buffer.create (64 * Circuit.gate_count c) in
  let net_name =
    (* Primary inputs and constants keep readable names; internal nets are
       n<id>. *)
    let names = Hashtbl.create 64 in
    Array.iter (fun (n, net) -> Hashtbl.replace names net (sanitize n)) c.Circuit.pis;
    (match c.Circuit.const_false with
    | Some n -> Hashtbl.replace names n "1'b0"
    | None -> ());
    (match c.Circuit.const_true with
    | Some n -> Hashtbl.replace names n "1'b1"
    | None -> ());
    fun net ->
      match Hashtbl.find_opt names net with
      | Some n -> n
      | None -> Printf.sprintf "n%d" net
  in
  Buffer.add_string buf (Printf.sprintf "module %s (\n  %s\n);\n" module_name
                           (String.concat ",\n  " (port_list c)));
  (* Internal wires. *)
  let is_port = Array.make c.Circuit.n_nets false in
  Array.iter (fun (_, n) -> is_port.(n) <- true) c.Circuit.pis;
  (match c.Circuit.const_false with Some n -> is_port.(n) <- true | None -> ());
  (match c.Circuit.const_true with Some n -> is_port.(n) <- true | None -> ());
  Array.iter
    (fun (g : Circuit.gate) ->
      if not is_port.(g.Circuit.out) then
        Buffer.add_string buf (Printf.sprintf "  wire %s;\n" (net_name g.Circuit.out)))
    c.Circuit.gates;
  (* Output aliases: a PO may be driven by an internal net. *)
  Array.iter
    (fun (name, net) ->
      Buffer.add_string buf
        (Printf.sprintf "  assign %s = %s;\n" (sanitize name) (net_name net)))
    c.Circuit.pos;
  (* Gate instances, annotated with their unit tag and delay. *)
  Array.iteri
    (fun i (g : Circuit.gate) ->
      let pins = pin_names g.Circuit.kind in
      let conns =
        Array.to_list
          (Array.mapi
             (fun k n -> Printf.sprintf ".%s(%s)" pins.(k) (net_name n))
             g.Circuit.fan_in)
        @ [ Printf.sprintf ".y(%s)" (net_name g.Circuit.out) ]
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s g%d (%s); // %s, %.1f ps\n" (Cell.name g.Circuit.kind) i
           (String.concat ", " conns)
           c.Circuit.tags.(g.Circuit.tag)
           c.Circuit.base_delay.(i)))
    c.Circuit.gates;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let write_file ?module_name ~path c =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc cell_definitions;
      output_string oc "\n";
      output_string oc (to_string ?module_name c))
