(** Structural Verilog export.

    Writes a frozen circuit as a flat gate-level Verilog module over the
    primitive cells (one `module` per {!Cell.kind} is emitted alongside,
    so the output is self-contained and simulable by any Verilog tool).
    Delays are emitted as `specify`-free inline comments per instance; the
    authoritative delays live in the OCaml timing engines, the export
    exists for interoperability and inspection. *)

val cell_definitions : string
(** Behavioural definitions of the primitive cells. *)

val to_string : ?module_name:string -> Circuit.t -> string
(** The circuit as a single structural module. Primary inputs and outputs
    become ports (names sanitized: [.] becomes [_]); constants map to
    [1'b0]/[1'b1]. *)

val write_file : ?module_name:string -> path:string -> Circuit.t -> unit
(** {!cell_definitions} followed by {!to_string}, written to [path]. *)
