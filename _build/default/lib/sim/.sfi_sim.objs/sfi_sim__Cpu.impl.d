lib/sim/cpu.ml: Array Encode Insn Memory Op_class Printf Sfi_isa Sfi_util U32
