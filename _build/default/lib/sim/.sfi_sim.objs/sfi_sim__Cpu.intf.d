lib/sim/cpu.mli: Memory Op_class Sfi_isa Sfi_util U32
