lib/sim/memory.ml: Array Bytes Char Printf Sfi_isa
