lib/sim/memory.mli: Sfi_isa Sfi_util U32
