lib/timing/cdf.ml: Array Float
