lib/timing/cdf.mli:
