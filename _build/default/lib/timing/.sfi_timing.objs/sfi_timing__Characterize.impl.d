lib/timing/characterize.ml: Alu Array Cdf Cell_lib Dta Float List Op_class Pool Printf Rng Sfi_netlist Sfi_util Sta U32 Vdd_model
