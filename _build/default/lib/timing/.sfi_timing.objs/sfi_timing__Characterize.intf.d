lib/timing/characterize.mli: Alu Cdf Cell_lib Op_class Rng Sfi_netlist Sfi_util U32 Vdd_model
