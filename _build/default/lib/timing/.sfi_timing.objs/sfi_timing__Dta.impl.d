lib/timing/dta.ml: Array Cell Cell_lib Circuit List Logic_sim Min_heap Queue Sfi_netlist Sfi_util Vdd_model
