lib/timing/dta.mli: Cell_lib Circuit Logic_sim Sfi_netlist Vdd_model
