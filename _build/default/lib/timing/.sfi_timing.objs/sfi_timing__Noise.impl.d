lib/timing/noise.ml: Rng Sfi_util
