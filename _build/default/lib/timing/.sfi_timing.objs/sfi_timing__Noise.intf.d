lib/timing/noise.mli: Rng Sfi_util
