lib/timing/path_report.ml: Array Buffer Cell Cell_lib Circuit List Printf Sfi_netlist Sta Vdd_model
