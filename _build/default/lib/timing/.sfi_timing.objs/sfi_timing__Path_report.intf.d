lib/timing/path_report.mli: Cell Circuit Sfi_netlist
