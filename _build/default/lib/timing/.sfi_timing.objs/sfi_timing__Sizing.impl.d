lib/timing/sizing.ml: Array Circuit Float List Rng Sfi_netlist Sfi_util Sta
