lib/timing/sizing.mli: Circuit Sfi_netlist
