lib/timing/sta.ml: Array Cell Cell_lib Circuit Float List Sfi_netlist Vdd_model
