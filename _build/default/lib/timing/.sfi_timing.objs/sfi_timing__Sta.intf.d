lib/timing/sta.mli: Cell_lib Circuit Sfi_netlist Vdd_model
