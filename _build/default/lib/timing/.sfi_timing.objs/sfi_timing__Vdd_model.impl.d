lib/timing/vdd_model.ml: Interp List Printf Sfi_netlist Sfi_util
