lib/timing/vdd_model.mli: Sfi_netlist
