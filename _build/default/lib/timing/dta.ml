open Sfi_util
open Sfi_netlist

type t = {
  circuit : Circuit.t;
  delay : float array; (* per gate, ps at the chosen voltage *)
  values : bool array; (* per net *)
  settle : float array; (* per net, last transition in current cycle *)
  heap : Min_heap.t;
  staged : (Circuit.net * bool) Queue.t;
  mutable events : int;
  is_input : bool array;
}

let create ?(vdd = Vdd_model.nominal_voltage) ?(vdd_model = Vdd_model.default)
    ?(lib = Cell_lib.default) (c : Circuit.t) =
  let kind_factor =
    let table = List.map (fun k -> (k, Vdd_model.derate_kind vdd_model lib k vdd)) Cell.all in
    fun kind -> List.assq kind table
  in
  let delay =
    Array.mapi
      (fun i (g : Circuit.gate) -> c.Circuit.base_delay.(i) *. kind_factor g.Circuit.kind)
      c.Circuit.gates
  in
  let values = Array.make c.Circuit.n_nets false in
  (match c.Circuit.const_true with Some n -> values.(n) <- true | None -> ());
  (* Settle the circuit for the all-low input state using a zero-delay
     pass; subsequent cycles start from this stable state. *)
  Circuit.eval_all_gates c values;
  let is_input = Array.make c.Circuit.n_nets false in
  Array.iter (fun (_, n) -> is_input.(n) <- true) c.Circuit.pis;
  {
    circuit = c;
    delay;
    values;
    settle = Array.make c.Circuit.n_nets 0.;
    heap = Min_heap.create ~capacity:1024 ();
    staged = Queue.create ();
    events = 0;
    is_input;
  }

let set_input t net v =
  if net < 0 || net >= Array.length t.values || not t.is_input.(net) then
    invalid_arg "Dta.set_input: not a primary input";
  Queue.add (net, v) t.staged

let set_input_vec t nets word =
  Array.iteri (fun i n -> set_input t n ((word lsr i) land 1 = 1)) nets

(* Evaluate gate [gi] against current net values (shared with the
   zero-delay simulator). *)
let eval_gate t gi = Circuit.eval_gate t.circuit t.values gi

let cycle t =
  Array.fill t.settle 0 (Array.length t.settle) 0.;
  let readers = t.circuit.Circuit.readers in
  (* Launch staged input transitions at t = 0. *)
  Queue.iter
    (fun (net, v) ->
      if t.values.(net) <> v then begin
        t.values.(net) <- v;
        Array.iter (fun gi -> Min_heap.push t.heap t.delay.(gi) gi) readers.(net)
      end)
    t.staged;
  Queue.clear t.staged;
  let rec drain () =
    match Min_heap.pop t.heap with
    | None -> ()
    | Some (time, gi) ->
      t.events <- t.events + 1;
      let out_net = t.circuit.Circuit.gates.(gi).Circuit.out in
      let v = eval_gate t gi in
      if t.values.(out_net) <> v then begin
        t.values.(out_net) <- v;
        t.settle.(out_net) <- time;
        Array.iter (fun ri -> Min_heap.push t.heap (time +. t.delay.(ri)) ri) readers.(out_net)
      end;
      drain ()
  in
  drain ()

let value t net = t.values.(net)

let read_vec t nets =
  let acc = ref 0 in
  Array.iteri (fun i n -> if t.values.(n) then acc := !acc lor (1 lsl i)) nets;
  !acc

let settle_time t net = t.settle.(net)

let events_processed t = t.events

let check_against t logic nets =
  Array.for_all (fun n -> value t n = Logic_sim.value logic n) nets
