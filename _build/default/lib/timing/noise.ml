open Sfi_util

type t = { sigma : float; clip : float }

let create ?(clip = 2.0) ~sigma () =
  if sigma < 0. then invalid_arg "Noise.create: negative sigma";
  if clip < 0. then invalid_arg "Noise.create: negative clip";
  { sigma; clip }

let none = { sigma = 0.; clip = 2.0 }

let sigma t = t.sigma

let clip t = t.clip

let max_excursion t = t.clip *. t.sigma

let draw t rng = Rng.gaussian_clipped rng ~sigma:t.sigma ~clip:t.clip
