(** Supply-voltage noise model (paper §3.3).

    Per cycle, an independent noise value is drawn from a normal
    distribution with mean 0 V and standard deviation [sigma], saturated
    at [clip] sigmas (the paper clips at 2 sigma to avoid physically
    unrealistic spikes from the tails). *)

open Sfi_util

type t

val create : ?clip:float -> sigma:float -> unit -> t
(** Default [clip] is 2.0. [sigma] in volts; must be non-negative. *)

val none : t
(** Zero noise. *)

val sigma : t -> float
val clip : t -> float

val max_excursion : t -> float
(** [clip *. sigma]: the largest possible |noise| value, which bounds the
    worst-case delay modulation (used for fast-path checks). *)

val draw : t -> Rng.t -> float
(** One per-cycle noise sample in volts. *)
