open Sfi_netlist

type step = {
  gate_index : int;
  cell : Cell.kind;
  tag : string;
  delay : float;
  arrival : float;
}

type path = {
  endpoint : string;
  arrival : float;
  steps : step list;
}

let trace (c : Circuit.t) ~(report : Sta.report) ~kind_factor net0 =
  let arrival = report.Sta.net_arrival in
  let rec go net acc =
    let gi = c.Circuit.driver.(net) in
    if gi < 0 then acc (* reached a primary input or constant *)
    else begin
      let g = c.Circuit.gates.(gi) in
      let d = c.Circuit.base_delay.(gi) *. kind_factor g.Circuit.kind in
      let step =
        {
          gate_index = gi;
          cell = g.Circuit.kind;
          tag = c.Circuit.tags.(g.Circuit.tag);
          delay = d;
          arrival = arrival.(net);
        }
      in
      (* Pick the input whose arrival explains this gate's output time. *)
      let target = arrival.(net) -. d in
      let best = ref g.Circuit.fan_in.(0) in
      Array.iter
        (fun n ->
          if abs_float (arrival.(n) -. target) < abs_float (arrival.(!best) -. target)
          then best := n)
        g.Circuit.fan_in;
      go !best (step :: acc)
    end
  in
  go net0 []

let with_report ?(vdd = Vdd_model.nominal_voltage) c f =
  let report = Sta.analyze ~vdd c in
  let kind_factor =
    let lib = Cell_lib.default and vm = Vdd_model.default in
    let table = List.map (fun k -> (k, Vdd_model.derate_kind vm lib k vdd)) Cell.all in
    fun kind -> List.assq kind table
  in
  f ~report ~kind_factor

let critical_path ?vdd c ~endpoint =
  with_report ?vdd c (fun ~report ~kind_factor ->
      let _, net =
        Array.to_list c.Circuit.pos |> List.find (fun (n, _) -> n = endpoint)
      in
      {
        endpoint;
        arrival = report.Sta.net_arrival.(net);
        steps = trace c ~report ~kind_factor net;
      })

let worst_paths ?vdd ?(count = 5) c =
  with_report ?vdd c (fun ~report ~kind_factor ->
      let ranked =
        Array.to_list c.Circuit.pos
        |> List.map (fun (name, net) -> (name, net, report.Sta.net_arrival.(net)))
        |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
      in
      List.filteri (fun i _ -> i < count) ranked
      |> List.map (fun (endpoint, net, arrival) ->
             { endpoint; arrival; steps = trace c ~report ~kind_factor net }))

let pp path =
  let buf = Buffer.create 256 in
  let n = List.length path.steps in
  Buffer.add_string buf
    (Printf.sprintf "endpoint %s: arrival %.1f ps, %d gates\n" path.endpoint path.arrival n);
  (* Per-unit segment summary: long paths are dominated by one unit and a
     gate-by-gate dump adds nothing. *)
  let segments =
    List.fold_left
      (fun acc s ->
        match acc with
        | (tag, count, delay) :: rest when tag = s.tag ->
          (tag, count + 1, delay +. s.delay) :: rest
        | _ -> (s.tag, 1, s.delay) :: acc)
      [] path.steps
    |> List.rev
  in
  List.iter
    (fun (tag, count, delay) ->
      Buffer.add_string buf
        (Printf.sprintf "  through %-8s %3d gates, %7.1f ps\n" tag count delay))
    segments;
  let emit s =
    Buffer.add_string buf
      (Printf.sprintf "    %-6s %-8s +%6.1f ps -> %8.1f ps\n" (Cell.name s.cell) s.tag
         s.delay s.arrival)
  in
  if n <= 16 then List.iter emit path.steps
  else begin
    List.iteri (fun i s -> if i < 6 then emit s) path.steps;
    Buffer.add_string buf (Printf.sprintf "    ... %d more gates ...\n" (n - 12));
    List.iteri (fun i s -> if i >= n - 6 then emit s) path.steps
  end;
  Buffer.contents buf
