(** Critical-path extraction and reporting.

    Traces the longest path backward from each endpoint through the STA
    arrival times: at every gate, the predecessor on the critical path is
    the input whose arrival plus the gate delay equals the gate's output
    arrival. Used to identify the reliability bottlenecks the paper's
    introduction motivates ("structures that lead to timing walls"). *)

open Sfi_netlist

type step = {
  gate_index : int;
  cell : Cell.kind;
  tag : string;    (** owning unit *)
  delay : float;   (** ps *)
  arrival : float; (** ps, at the gate output *)
}

type path = {
  endpoint : string;   (** primary output name *)
  arrival : float;     (** ps *)
  steps : step list;   (** input-to-endpoint order *)
}

val critical_path : ?vdd:float -> Circuit.t -> endpoint:string -> path
(** Longest path to one endpoint. Raises [Not_found] for unknown
    endpoints. *)

val worst_paths : ?vdd:float -> ?count:int -> Circuit.t -> path list
(** The [count] (default 5) endpoints with the largest arrival, each with
    its critical path, sorted slowest first. *)

val pp : path -> string
(** Multi-line rendering: one gate per line with cumulative arrival. *)
