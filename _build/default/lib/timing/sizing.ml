open Sfi_util
open Sfi_netlist

type unit_target = { tag : string; fraction : float; compression : float }

let default_targets =
  [
    { tag = "bypass"; fraction = 0.40; compression = 0.0 };
    { tag = "mul"; fraction = 1.00; compression = 0.0 };
    { tag = "addsub"; fraction = 0.88; compression = 1.0 };
    { tag = "sra"; fraction = 0.80; compression = 0.0 };
    { tag = "srl"; fraction = 0.80; compression = 0.0 };
    { tag = "sll"; fraction = 0.80; compression = 0.0 };
    { tag = "xor"; fraction = 0.70; compression = 0.0 };
    { tag = "or"; fraction = 0.66; compression = 0.0 };
    { tag = "and"; fraction = 0.66; compression = 0.0 };
  ]

(* The bypass network's outputs are internal nets, not endpoints, so it is
   sized on its own output arrival; units are sized on their full
   input-to-endpoint through-paths (which include the bypass). *)
let measured_worst circuit t =
  if t.tag = "bypass" then Sta.worst_tag_output circuit ~tag:t.tag
  else Sta.worst_through circuit ~tag:t.tag

(* Longest delay from each net to any endpoint, where each endpoint [e]
   contributes a virtual margin of [worst -. arrival e]. Compressing the
   resulting through-path lengths toward the single value [worst] then
   compresses every real path toward {e its own endpoint's} static worst,
   which preserves the per-bit arrival gradient (MSBs stay slower than
   LSBs). *)
let margin_delay_to_endpoint (c : Circuit.t) ~arrival ~worst =
  let beta = Array.make c.Circuit.n_nets neg_infinity in
  Array.iter
    (fun (_, n) ->
      let m = worst -. arrival.(n) in
      if m > beta.(n) then beta.(n) <- m)
    c.Circuit.pos;
  let n_gates = Array.length c.Circuit.gates in
  for i = n_gates - 1 downto 0 do
    let g = c.Circuit.gates.(i) in
    let through = beta.(g.Circuit.out) in
    if Float.is_finite through then begin
      let d = c.Circuit.base_delay.(i) in
      Array.iter
        (fun n -> if through +. d > beta.(n) then beta.(n) <- through +. d)
        g.Circuit.fan_in
    end
  done;
  beta

let redistribute_slack ~tag ~compression (c : Circuit.t) =
  if compression < 0. || compression > 1. then
    invalid_arg "Sizing.redistribute_slack: compression must be in [0,1]";
  if compression > 0. then begin
    match Circuit.tag_id c tag with
    | None -> ()
    | Some tid ->
      let arrival = (Sta.analyze c).Sta.net_arrival in
      let worst = Sta.worst_through c ~tag in
      if Float.is_finite worst && worst > 0. then begin
        let beta = margin_delay_to_endpoint c ~arrival ~worst in
        Circuit.scale_gate_delays c (fun i ->
            let g = c.Circuit.gates.(i) in
            if g.Circuit.tag <> tid then 1.
            else begin
              let out = g.Circuit.out in
              let l = arrival.(out) +. beta.(out) in
              if not (Float.is_finite l) || l <= 0. || l >= worst then 1.
              else Float.min 4. ((1. -. compression) +. (compression *. worst /. l))
            end)
      end
  end

let size_to_clock ?(setup_ps = Sta.default_setup_ps) ?(targets = default_targets)
    ?(iterations = 3) ~clock_mhz circuit =
  let budget = Sta.period_ps_of_mhz clock_mhz -. setup_ps in
  if budget <= 0. then invalid_arg "Sizing.size_to_clock: clock too fast for setup";
  let present =
    List.filter (fun t -> Circuit.tag_id circuit t.tag <> None) targets
  in
  let normalize () =
    List.iter
      (fun t ->
        let worst = measured_worst circuit t in
        if worst > 0. && Float.is_finite worst then
          Circuit.scale_tag_delays circuit ~tag:t.tag
            ~factor:(t.fraction *. budget /. worst))
      present
  in
  for _ = 1 to iterations do
    normalize ()
  done;
  (* Slack redistribution only equalizes the longest path through each
     gate; repeated compress/normalize rounds converge the whole path
     population toward the per-endpoint worst. *)
  for _ = 1 to 6 do
    List.iter
      (fun t -> redistribute_slack ~tag:t.tag ~compression:t.compression circuit)
      present;
    for _ = 1 to iterations do
      normalize ()
    done
  done

let apply_process_variation ~sigma ~seed circuit =
  let rng = Rng.of_int seed in
  Circuit.scale_gate_delays circuit (fun _ ->
      Float.max 0.7 (1. +. (sigma *. Rng.gaussian rng)))

let report circuit =
  Circuit.count_by_tag circuit
  |> List.map fst
  |> List.filter (fun tag -> not (List.mem tag [ "iso"; "select"; "top" ]))
  |> List.map (fun tag ->
         (* The bypass network's outputs are not endpoints, so it is
            reported (like it is sized) on its own output arrival. *)
         if tag = "bypass" then (tag, Sta.worst_tag_output circuit ~tag)
         else (tag, Sta.worst_through circuit ~tag))
