(** Virtual synthesis: per-unit delay sizing and process variation.

    A real flow synthesizes the whole core against one clock constraint and
    then recovers area on non-critical paths, which slows them until they
    just meet timing. The net effect on the ALU is that every datapath unit
    ends up with a worst path close to (its share of) the clock period,
    while the {e structure} of each unit still dictates its per-bit and
    per-operand delay spread. This pass reproduces that effect directly:
    it iteratively scales each tagged unit's gate delays until the worst
    STA path through the unit matches a target, then applies random
    per-gate process variation (die-specific, drawn once from a seeded
    generator).

    The default targets make the multiplier the frequency-limiting unit
    with the adder/subtractor close behind, matching the case study's
    constraint strategy (only ALU endpoints limit f_max; paper §2.1) and
    the relative points of first failure of Fig. 4. *)

open Sfi_netlist

type unit_target = {
  tag : string;
  fraction : float;
      (** fraction of the available datapath delay (period - setup) the
          unit's worst static path is sized to *)
  compression : float;
      (** slack-redistribution strength in [0, 1]: 0 leaves the unit's
          path-delay distribution as generated; 1 pulls every
          input-to-endpoint path up to the unit's worst (a hard timing
          wall). Synthesis area recovery produces intermediate values:
          non-critical paths are slowed until they almost meet timing,
          which is why a synthesized unit's {e dynamic} timing limit sits
          close to its static one. *)
}

val default_targets : unit_target list
(** mul: fraction 1.0 (it defines the STA limit), no compression needed —
    the array multiplier's path distribution is naturally dense near its
    worst. addsub: fraction 0.93 with strong compression, reproducing the
    paper's small gap between the adder's point of first failure and the
    STA limit. Shifters and logic units sit well below, uncompressed. *)

val size_to_clock :
  ?setup_ps:float ->
  ?targets:unit_target list ->
  ?iterations:int ->
  clock_mhz:float ->
  Circuit.t ->
  unit
(** Scales every listed unit (in place) so its worst through-path equals
    [fraction *. (period -. setup)], then redistributes slack inside each
    unit according to its [compression], and re-normalizes. Runs
    [iterations] (default 3) measure-scale rounds; the fixed
    ``iso``/``select`` overhead makes a single round slightly off, and the
    iteration converges it. Unknown tags are ignored (the circuit may not
    contain them). *)

val redistribute_slack : tag:string -> compression:float -> Circuit.t -> unit
(** One slack-redistribution pass over the gates of [tag]: every gate [g]
    whose longest through-path [L g] is shorter than the unit's worst [W]
    is slowed by the factor [(1 -. c) +. c *. (W /. L g)] (clamped to at
    most 4x). Critical-path gates are untouched. *)

val apply_process_variation : sigma:float -> seed:int -> Circuit.t -> unit
(** Multiplies every gate delay by an independent lognormal-ish factor
    [max 0.7 (1 +. sigma *. g)] with [g] standard normal — the
    die-specific random component of gate delay. Deterministic in
    [seed]. *)

val report : Circuit.t -> (string * float) list
(** Worst through-path arrival (ps, nominal voltage) per unit tag present
    in the circuit, for diagnostics. *)
