open Sfi_netlist

let default_setup_ps = 30.

type report = {
  net_arrival : float array;
  endpoints : (string * float) array;
  worst : float;
}

let analyze ?(vdd = Vdd_model.nominal_voltage) ?(vdd_model = Vdd_model.default)
    ?(lib = Cell_lib.default) ?through (c : Circuit.t) =
  let kind_factor =
    (* One derate factor per cell kind at this voltage. *)
    let table = List.map (fun k -> (k, Vdd_model.derate_kind vdd_model lib k vdd)) Cell.all in
    fun kind -> List.assq kind table
  in
  let allowed =
    match through with
    | None -> fun _ -> true
    | Some tag ->
      let shared = [ "bypass"; "iso"; "select"; "top"; tag ] in
      let ids = List.filter_map (fun t -> Circuit.tag_id c t) shared in
      fun g -> List.mem g.Circuit.tag ids
  in
  let arrival = Array.make c.Circuit.n_nets 0. in
  (match through with
  | None -> ()
  | Some _ ->
    (* Under a through-restriction, only nets fed by allowed gates (or
       free nets) carry a finite arrival. *)
    Array.iter (fun (g : Circuit.gate) -> arrival.(g.Circuit.out) <- neg_infinity) c.Circuit.gates);
  Array.iteri
    (fun i (g : Circuit.gate) ->
      if allowed g then begin
        let worst_in =
          Array.fold_left (fun acc n -> Float.max acc arrival.(n)) neg_infinity g.Circuit.fan_in
        in
        let d = c.Circuit.base_delay.(i) *. kind_factor g.Circuit.kind in
        arrival.(g.Circuit.out) <- worst_in +. d
      end)
    c.Circuit.gates;
  let endpoints =
    Array.map (fun (name, n) -> (name, arrival.(n))) c.Circuit.pos
  in
  let worst = Array.fold_left (fun acc (_, a) -> Float.max acc a) neg_infinity endpoints in
  { net_arrival = arrival; endpoints; worst }

let worst_through c ~tag = (analyze ~through:tag c).worst

let worst_tag_output c ~tag =
  match Circuit.tag_id c tag with
  | None -> neg_infinity
  | Some tid ->
    let arrival = (analyze c).net_arrival in
    Array.fold_left
      (fun acc (g : Circuit.gate) ->
        if g.Circuit.tag = tid then Float.max acc arrival.(g.Circuit.out) else acc)
      neg_infinity c.Circuit.gates

let max_frequency_mhz ?(setup_ps = default_setup_ps) report =
  1e6 /. (report.worst +. setup_ps)

let period_ps_of_mhz f = 1e6 /. f
