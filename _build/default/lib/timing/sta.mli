(** Static timing analysis.

    Classic topological longest-path analysis: the arrival time of a net is
    the maximum arrival over the driving gate's inputs plus the gate delay,
    with primary inputs and constants arriving at t = 0. Endpoints are the
    primary outputs (the D-pins of the EX-stage flip-flops); their worst
    arrival plus the flip-flop setup time defines the maximum clock
    frequency (the "STA limit" the paper over-scales against).

    The [through] variant restricts the analysis to paths traversing one
    datapath unit — the per-unit slack view the virtual-synthesis sizing
    pass needs. *)

open Sfi_netlist

val default_setup_ps : float
(** Flip-flop setup time, 30 ps at the nominal corner. *)

type report = {
  net_arrival : float array;          (** per net, ps; [neg_infinity] if
                                          unreachable under a [through]
                                          restriction *)
  endpoints : (string * float) array; (** per primary output *)
  worst : float;                      (** max endpoint arrival, ps *)
}

val analyze :
  ?vdd:float ->
  ?vdd_model:Vdd_model.t ->
  ?lib:Cell_lib.t ->
  ?through:string ->
  Circuit.t ->
  report
(** [analyze c] computes arrival times using the circuit's base delays.
    [vdd] (default 0.7 V) derates every gate through [vdd_model] (default
    {!Vdd_model.default}) with the per-kind skew from [lib] (default
    {!Cell_lib.default}). [through] restricts paths to gates whose unit tag
    is the given one, plus shared ["iso"], ["select"] and ["top"] gates;
    endpoints unreachable through that unit report [neg_infinity]. *)

val worst_through : Circuit.t -> tag:string -> float
(** Shorthand for the worst endpoint arrival restricted to one unit, at
    the nominal voltage. Shared ["bypass"], ["iso"], ["select"] and
    ["top"] gates are always traversable. *)

val worst_tag_output : Circuit.t -> tag:string -> float
(** Worst (unrestricted) arrival at the output net of any gate carrying
    [tag]; used to size stages, like the operand bypass network, whose
    outputs are not primary outputs. [neg_infinity] for unknown tags. *)

val max_frequency_mhz : ?setup_ps:float -> report -> float
(** The STA frequency limit in MHz: [1e6 /. (worst +. setup)] with delays
    in ps. *)

val period_ps_of_mhz : float -> float
(** Clock period in ps for a frequency in MHz. *)
