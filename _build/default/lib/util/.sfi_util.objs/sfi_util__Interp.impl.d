lib/util/interp.ml: Array List
