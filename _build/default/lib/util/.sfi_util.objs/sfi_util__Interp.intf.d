lib/util/interp.mli:
