lib/util/op_class.ml: List U32
