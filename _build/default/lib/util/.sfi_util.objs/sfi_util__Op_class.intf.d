lib/util/op_class.mli: U32
