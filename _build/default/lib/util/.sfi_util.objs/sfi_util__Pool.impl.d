lib/util/pool.ml: Array Atomic Condition Domain Fun List Mutex Queue String Sys
