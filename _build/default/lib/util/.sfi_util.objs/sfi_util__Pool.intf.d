lib/util/pool.mli:
