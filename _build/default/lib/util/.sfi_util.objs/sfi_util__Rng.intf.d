lib/util/rng.mli:
