lib/util/stats.mli:
