lib/util/table.mli:
