lib/util/u32.ml: Printf
