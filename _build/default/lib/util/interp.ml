type t = { xs : float array; ys : float array }

let of_points pts =
  if pts = [] then invalid_arg "Interp.of_points: empty";
  let pts = List.sort (fun (x1, _) (x2, _) -> compare x1 x2) pts in
  let rec check = function
    | (x1, _) :: ((x2, _) :: _ as rest) ->
      if x1 = x2 then invalid_arg "Interp.of_points: duplicate x";
      check rest
    | _ -> ()
  in
  check pts;
  { xs = Array.of_list (List.map fst pts); ys = Array.of_list (List.map snd pts) }

let anchors t = Array.map2 (fun x y -> (x, y)) t.xs t.ys

(* Index of the segment [i, i+1] used for abscissa [x]; clamps to the
   boundary segments for out-of-range queries. *)
let segment t x =
  let n = Array.length t.xs in
  if n = 1 then 0
  else if x <= t.xs.(0) then 0
  else if x >= t.xs.(n - 1) then n - 2
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if t.xs.(mid) <= x then lo := mid else hi := mid
    done;
    !lo
  end

let eval t x =
  let n = Array.length t.xs in
  if n = 1 then t.ys.(0)
  else begin
    let i = segment t x in
    let x0 = t.xs.(i) and x1 = t.xs.(i + 1) in
    let y0 = t.ys.(i) and y1 = t.ys.(i + 1) in
    y0 +. ((y1 -. y0) *. (x -. x0) /. (x1 -. x0))
  end

let slope_at t x =
  let n = Array.length t.xs in
  if n = 1 then 0.
  else begin
    let i = segment t x in
    (t.ys.(i + 1) -. t.ys.(i)) /. (t.xs.(i + 1) -. t.xs.(i))
  end

let strictly_monotone ys =
  let n = Array.length ys in
  if n < 2 then true
  else begin
    let increasing = ys.(1) > ys.(0) in
    let ok = ref true in
    for i = 0 to n - 2 do
      if increasing then begin
        if ys.(i + 1) <= ys.(i) then ok := false
      end
      else if ys.(i + 1) >= ys.(i) then ok := false
    done;
    !ok
  end

let inverse_eval t y =
  if not (strictly_monotone t.ys) then
    invalid_arg "Interp.inverse_eval: curve is not strictly monotone";
  let inv = { xs = t.ys; ys = t.xs } in
  if Array.length inv.xs >= 2 && inv.xs.(0) > inv.xs.(Array.length inv.xs - 1)
  then begin
    (* Decreasing curve: reverse to obtain increasing abscissas. *)
    let n = Array.length inv.xs in
    let rev a = Array.init n (fun i -> a.(n - 1 - i)) in
    eval { xs = rev inv.xs; ys = rev inv.ys } y
  end
  else eval inv y

let linear_fit pts =
  match pts with
  | [] | [ _ ] -> invalid_arg "Interp.linear_fit: need at least two points"
  | _ ->
    let n = float_of_int (List.length pts) in
    let sx = List.fold_left (fun a (x, _) -> a +. x) 0. pts in
    let sy = List.fold_left (fun a (_, y) -> a +. y) 0. pts in
    let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. pts in
    let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. pts in
    let denom = (n *. sxx) -. (sx *. sx) in
    if denom = 0. then invalid_arg "Interp.linear_fit: degenerate x values";
    let a = ((n *. sxy) -. (sx *. sy)) /. denom in
    let b = (sy -. (a *. sx)) /. n in
    (a, b)
