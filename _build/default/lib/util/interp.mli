(** Piecewise-linear interpolation and least-squares fitting over sampled
    curves, used for the Vdd-delay model and for the error-vs-power fits. *)

type t
(** A piecewise-linear curve through a set of (x, y) anchor points. *)

val of_points : (float * float) list -> t
(** [of_points pts] builds a curve. Points are sorted by [x]; duplicate [x]
    values raise [Invalid_argument], as does an empty list. *)

val eval : t -> float -> float
(** [eval t x] interpolates linearly between the two surrounding anchors.
    Outside the anchor range the nearest segment is extrapolated. *)

val slope_at : t -> float -> float
(** Local slope of the segment containing [x] (nearest segment outside the
    range). *)

val anchors : t -> (float * float) array
(** The anchor points, sorted by [x]. *)

val inverse_eval : t -> float -> float
(** [inverse_eval t y] solves [eval t x = y] for a strictly monotone curve
    (in either direction). Raises [Invalid_argument] if the curve is not
    strictly monotone in [y]. Outside the range the boundary segment is
    extrapolated. *)

val linear_fit : (float * float) list -> float * float
(** [linear_fit pts] returns [(a, b)] minimising least squares for
    [y = a *. x +. b]. Requires at least two points with distinct [x]. *)
