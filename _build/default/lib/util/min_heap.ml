type t = {
  mutable keys : float array;
  mutable payloads : int array;
  mutable size : int;
}

let create ?(capacity = 64) () =
  let capacity = max 1 capacity in
  { keys = Array.make capacity 0.; payloads = Array.make capacity 0; size = 0 }

let grow t =
  let n = Array.length t.keys in
  let keys = Array.make (2 * n) 0. and payloads = Array.make (2 * n) 0 in
  Array.blit t.keys 0 keys 0 n;
  Array.blit t.payloads 0 payloads 0 n;
  t.keys <- keys;
  t.payloads <- payloads

let swap t i j =
  let k = t.keys.(i) and p = t.payloads.(i) in
  t.keys.(i) <- t.keys.(j);
  t.payloads.(i) <- t.payloads.(j);
  t.keys.(j) <- k;
  t.payloads.(j) <- p

let push t key payload =
  if t.size = Array.length t.keys then grow t;
  t.keys.(t.size) <- key;
  t.payloads.(t.size) <- payload;
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if t.keys.(!i) < t.keys.(parent) then begin
      swap t !i parent;
      i := parent
    end
    else continue := false
  done

let pop t =
  if t.size = 0 then None
  else begin
    let key = t.keys.(0) and payload = t.payloads.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.keys.(0) <- t.keys.(t.size);
      t.payloads.(0) <- t.payloads.(t.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && t.keys.(l) < t.keys.(!smallest) then smallest := l;
        if r < t.size && t.keys.(r) < t.keys.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          swap t !i !smallest;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (key, payload)
  end

let peek_key t = if t.size = 0 then None else Some t.keys.(0)

let size t = t.size

let is_empty t = t.size = 0

let clear t = t.size <- 0
