(** Binary min-heap with float keys and integer payloads.

    Used as the event queue of the dynamic timing simulator; payloads are
    gate ids. Ties are popped in unspecified order. *)

type t

val create : ?capacity:int -> unit -> t

val push : t -> float -> int -> unit

val pop : t -> (float * int) option
(** Removes and returns the minimum-key element. *)

val peek_key : t -> float option

val size : t -> int

val is_empty : t -> bool

val clear : t -> unit
