(** ALU operation classes.

    This is the shared vocabulary between the gate-level ALU model, the
    instruction set, and the fault-injection models: the paper conditions
    its timing-error statistics on the {e instruction type}, and every ALU
    instruction of the OR1K subset maps to exactly one of these classes
    (the class selects the datapath unit and therefore the excited paths).
    Non-ALU instructions (loads, stores, branches, jumps, nop) have no
    class and are always timing-safe below the control-path threshold
    frequency, per the constraint strategy the paper adopts from [14]. *)

type t =
  | Add   (** carry-skip adder, add mode (l.add, l.addi) *)
  | Sub   (** adder in subtract mode (l.sub and all l.sf* compares) *)
  | Mul   (** single-cycle array multiplier (l.mul, l.muli) *)
  | Sll   (** barrel shifter, left (l.sll, l.slli) *)
  | Srl   (** barrel shifter, logical right (l.srl, l.srli) *)
  | Sra   (** barrel shifter, arithmetic right (l.sra, l.srai) *)
  | And_  (** bitwise AND (l.and, l.andi) *)
  | Or_   (** bitwise OR (l.or, l.ori, l.movhi) *)
  | Xor_  (** bitwise XOR (l.xor, l.xori) *)

val all : t list

val name : t -> string
(** Short lower-case name, e.g. ["mul"]. *)

val of_name : string -> t option

val apply : t -> U32.t -> U32.t -> U32.t
(** Architectural (fault-free) semantics on 32-bit operands: the value the
    EX-stage result register latches for this class. Shift classes use the
    low five bits of the second operand. *)

val index : t -> int
(** Dense index in [0 .. count - 1], consistent with the order of {!all}. *)

val count : int
