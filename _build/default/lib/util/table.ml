type align = Left | Right

type t = {
  title : string option;
  headers : string array;
  aligns : align array;
  mutable rows : string array list; (* reverse order *)
}

let create ?title columns =
  {
    title;
    headers = Array.of_list (List.map fst columns);
    aligns = Array.of_list (List.map snd columns);
    rows = [];
  }

let add_row t cells =
  let row = Array.of_list cells in
  if Array.length row <> Array.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- row :: t.rows

let add_rows t rows = List.iter (add_row t) rows

let render t =
  let rows = List.rev t.rows in
  let ncols = Array.length t.headers in
  let widths = Array.map String.length t.headers in
  let widen row =
    Array.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter widen rows;
  let pad i cell =
    let n = widths.(i) - String.length cell in
    match t.aligns.(i) with
    | Left -> cell ^ String.make n ' '
    | Right -> String.make n ' ' ^ cell
  in
  let buf = Buffer.create 256 in
  (match t.title with
  | Some title ->
    Buffer.add_string buf title;
    Buffer.add_char buf '\n'
  | None -> ());
  let emit_row row =
    for i = 0 to ncols - 1 do
      if i > 0 then Buffer.add_string buf "  ";
      Buffer.add_string buf (pad i row.(i))
    done;
    Buffer.add_char buf '\n'
  in
  emit_row t.headers;
  let total = Array.fold_left ( + ) (2 * (ncols - 1)) widths in
  Buffer.add_string buf (String.make total '-');
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let csv_cell cell =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') cell
  in
  if not needs_quoting then cell
  else begin
    let buf = Buffer.create (String.length cell + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      cell;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let to_csv t =
  let buf = Buffer.create 256 in
  let emit_row row =
    Buffer.add_string buf
      (String.concat "," (List.map csv_cell (Array.to_list row)));
    Buffer.add_char buf '\n'
  in
  emit_row t.headers;
  List.iter emit_row (List.rev t.rows);
  Buffer.contents buf

let fmt_float ?(decimals = 3) x =
  if Float.is_nan x then "n/a" else Printf.sprintf "%.*f" decimals x

let fmt_pct ?(decimals = 1) x =
  if Float.is_nan x then "n/a" else Printf.sprintf "%.*f%%" decimals (100. *. x)

let fmt_sci x = if Float.is_nan x then "n/a" else Printf.sprintf "%.3g" x
