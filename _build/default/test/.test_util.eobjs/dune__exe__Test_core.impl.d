test/test_core.ml: Alcotest Experiments Flow Lazy List Power Printf Rng Sfi_core Sfi_fi Sfi_timing Sfi_util String Vdd_model
