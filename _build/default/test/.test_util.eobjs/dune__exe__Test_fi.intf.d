test/test_fi.mli:
