test/test_isa.ml: Alcotest Array Asm Encode Insn List Op_class Program QCheck QCheck_alcotest Sfi_isa Sfi_util String
