test/test_kernels.ml: Alcotest Array Bench Char Cpu Crc32 Dijkstra Fir Kmeans Lazy List Matmul Median Printf Registry Sfi_isa Sfi_kernels Sfi_sim Sfi_util String U32
