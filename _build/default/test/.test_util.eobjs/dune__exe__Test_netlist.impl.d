test/test_netlist.ml: Alcotest Alu Array Cell Cell_lib Circuit Datapath Lazy List Logic_sim Op_class Printf QCheck QCheck_alcotest Sfi_netlist Sfi_util String U32 Verilog
