test/test_sim.ml: Alcotest Array Asm Cpu Insn List Memory Op_class Program Sfi_isa Sfi_sim Sfi_util U32
