test/test_util.ml: Alcotest Array Float Fun Gen Int64 Interp List Op_class Pool Printf QCheck QCheck_alcotest Rng Sfi_util Stats String Table U32
