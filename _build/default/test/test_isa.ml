open Sfi_isa

(* ---------- encode / decode ---------- *)

let canonical_insns =
  [
    Insn.Add (1, 2, 3);
    Insn.Sub (31, 30, 29);
    Insn.And (0, 1, 2);
    Insn.Or (4, 5, 6);
    Insn.Xor (7, 8, 9);
    Insn.Mul (10, 11, 12);
    Insn.Sll (13, 14, 15);
    Insn.Srl (16, 17, 18);
    Insn.Sra (19, 20, 21);
    Insn.Addi (1, 2, -1);
    Insn.Addi (1, 2, 32767);
    Insn.Addi (1, 2, -32768);
    Insn.Andi (3, 4, 0xFFFF);
    Insn.Ori (5, 6, 0xABCD);
    Insn.Xori (7, 8, -5);
    Insn.Muli (9, 10, 1234);
    Insn.Slli (11, 12, 0);
    Insn.Srli (13, 14, 31);
    Insn.Srai (15, 16, 7);
    Insn.Movhi (17, 0xBEEF);
    Insn.Sf (Insn.Eq, 1, 2);
    Insn.Sf (Insn.Gts, 3, 4);
    Insn.Sf (Insn.Leu, 5, 6);
    Insn.Sfi (Insn.Ne, 7, -100);
    Insn.Sfi (Insn.Ltu, 8, 100);
    Insn.J 0;
    Insn.J (-1);
    Insn.J ((1 lsl 25) - 1);
    Insn.Jal (-(1 lsl 25));
    Insn.Jr 9;
    Insn.Jalr 10;
    Insn.Bf 100;
    Insn.Bnf (-100);
    Insn.Lwz (1, -4, 2);
    Insn.Lhz (3, 6, 4);
    Insn.Lbz (5, 7, 6);
    Insn.Sw (2047, 1, 2);
    Insn.Sw (-2048, 3, 4);
    Insn.Sw (-4, 3, 4);
    Insn.Sh (10, 5, 6);
    Insn.Sb (-1, 7, 8);
    Insn.Nop 0;
    Insn.Nop Insn.nop_exit;
    Insn.Nop Insn.nop_kernel_begin;
    Insn.Nop Insn.nop_kernel_end;
  ]

let test_roundtrip_canonical () =
  List.iter
    (fun insn ->
      let w = Encode.encode insn in
      match Encode.decode w with
      | Some insn' when insn = insn' -> ()
      | Some insn' ->
        Alcotest.failf "roundtrip %s -> %s" (Insn.to_string insn) (Insn.to_string insn')
      | None -> Alcotest.failf "did not decode: %s" (Insn.to_string insn))
    canonical_insns

let test_reserved_opcodes_reject () =
  (* Opcodes we do not implement must not decode. *)
  List.iter
    (fun op ->
      match Encode.decode (op lsl 26) with
      | None -> ()
      | Some insn ->
        Alcotest.failf "opcode 0x%x decoded to %s" op (Insn.to_string insn))
    [ 0x02; 0x08; 0x13; 0x20; 0x30; 0x3F ]

let test_encode_rejects_out_of_range () =
  List.iter
    (fun insn ->
      match Encode.check_immediates insn with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "accepted %s" (Insn.to_string insn))
    [
      Insn.Addi (1, 2, 70000);
      Insn.Addi (1, 2, -40000);
      Insn.Slli (1, 2, 32);
      Insn.J (1 lsl 25);
      Insn.Add (32, 0, 0);
      Insn.Nop (-1);
    ]

let test_all_words_decode_total () =
  (* decode must be total (no exceptions) over arbitrary words. *)
  let rng = Sfi_util.Rng.of_int 5 in
  for _ = 1 to 50_000 do
    ignore (Encode.decode (Sfi_util.Rng.bits32 rng))
  done

let prop_decode_encode_fixpoint =
  QCheck.Test.make ~name:"decode o encode o decode is stable" ~count:2000
    QCheck.(int_bound 0x3FFFFFFF)
    (fun w ->
      let w = Sfi_util.U32.of_int (w * 7) in
      match Encode.decode w with
      | None -> true
      | Some insn -> begin
        let w' = Encode.encode insn in
        match Encode.decode w' with
        | Some insn' -> insn = insn'
        | None -> false
      end)

(* ---------- instruction metadata ---------- *)

let test_op_class_mapping () =
  let open Sfi_util in
  Alcotest.(check bool) "add" true (Insn.op_class (Insn.Add (1, 2, 3)) = Some Op_class.Add);
  Alcotest.(check bool) "addi" true (Insn.op_class (Insn.Addi (1, 2, 3)) = Some Op_class.Add);
  Alcotest.(check bool) "mul" true (Insn.op_class (Insn.Mul (1, 2, 3)) = Some Op_class.Mul);
  Alcotest.(check bool) "movhi is or" true
    (Insn.op_class (Insn.Movhi (1, 2)) = Some Op_class.Or_);
  (* Compares latch the flag, not an ALU endpoint. *)
  Alcotest.(check bool) "sf safe" true (Insn.op_class (Insn.Sf (Insn.Eq, 1, 2)) = None);
  Alcotest.(check bool) "sfi safe" true (Insn.op_class (Insn.Sfi (Insn.Lts, 1, 2)) = None);
  Alcotest.(check bool) "load safe" true (Insn.op_class (Insn.Lwz (1, 0, 2)) = None);
  Alcotest.(check bool) "branch safe" true (Insn.op_class (Insn.Bf 1) = None);
  Alcotest.(check bool) "nop safe" true (Insn.op_class (Insn.Nop 0) = None)

let test_reads_writes () =
  Alcotest.(check (option int)) "add writes" (Some 1) (Insn.writes (Insn.Add (1, 2, 3)));
  Alcotest.(check (list int)) "add reads" [ 2; 3 ] (Insn.reads (Insn.Add (1, 2, 3)));
  Alcotest.(check (option int)) "jal writes link" (Some 9) (Insn.writes (Insn.Jal 0));
  Alcotest.(check (option int)) "store writes nothing" None (Insn.writes (Insn.Sw (0, 1, 2)));
  Alcotest.(check (list int)) "store reads both" [ 1; 2 ] (Insn.reads (Insn.Sw (0, 1, 2)));
  Alcotest.(check (list int)) "load reads base" [ 2 ] (Insn.reads (Insn.Lwz (1, 0, 2)))

(* ---------- assembler ---------- *)

let test_asm_simple_program () =
  let p =
    Asm.assemble_exn
      {|
        l.addi r1, r0, 5
        l.addi r2, r0, 7
        l.add  r3, r1, r2
        l.nop  0x1
      |}
  in
  Alcotest.(check int) "four words" 4 (Array.length p.Program.words);
  let _, w0 = p.Program.words.(0) in
  Alcotest.(check bool) "first decodes to addi" true
    (Encode.decode w0 = Some (Insn.Addi (1, 0, 5)))

let test_asm_labels_and_branches () =
  let p =
    Asm.assemble_exn
      {|
start:  l.sfeqi r1, 0
        l.bf   done
        l.j    start
done:   l.nop  0x1
      |}
  in
  (* l.bf at address 4 targets 'done' at 12: offset (12-4)/4 = 2. *)
  let _, w1 = p.Program.words.(1) in
  Alcotest.(check bool) "bf offset" true (Encode.decode w1 = Some (Insn.Bf 2));
  let _, w2 = p.Program.words.(2) in
  Alcotest.(check bool) "backward jump" true (Encode.decode w2 = Some (Insn.J (-2)))

let test_asm_hi_lo () =
  let p =
    Asm.assemble_exn
      {|
        l.movhi r1, hi(data)
        l.ori   r1, r1, lo(data)
        l.nop   0x1
        .org 0x12344
data:   .word 42
      |}
  in
  let addr = Program.symbol p "data" in
  Alcotest.(check int) "data placed by .org" 0x12344 addr;
  let _, w0 = p.Program.words.(0) in
  let _, w1 = p.Program.words.(1) in
  Alcotest.(check bool) "movhi hi" true (Encode.decode w0 = Some (Insn.Movhi (1, 0x1)));
  Alcotest.(check bool) "ori lo" true (Encode.decode w1 = Some (Insn.Ori (1, 1, 0x2344)))

let test_asm_word_data_and_space () =
  let p =
    Asm.assemble_exn
      {|
        l.nop 0x1
tab:    .word 1, -1, 0xdeadbeef
buf:    .space 8
after:  .word 7
      |}
  in
  Alcotest.(check int) "tab addr" 4 (Program.symbol p "tab");
  Alcotest.(check int) "buf addr" 16 (Program.symbol p "buf");
  Alcotest.(check int) "after addr" 24 (Program.symbol p "after");
  let word_at a =
    let _, w = Array.to_list p.Program.words |> List.find (fun (a', _) -> a' = a) in
    w
  in
  Alcotest.(check int) "neg word" 0xFFFF_FFFF (word_at 8);
  Alcotest.(check int) "hex word" 0xDEAD_BEEF (word_at 12)

let test_asm_expressions () =
  let p =
    Asm.assemble_exn
      {|
        l.addi r1, r0, tab + 8
        l.addi r2, r0, tab - 4
        l.nop 0x1
tab:    .word 0
      |}
  in
  let tab = Program.symbol p "tab" in
  let _, w0 = p.Program.words.(0) in
  Alcotest.(check bool) "plus" true (Encode.decode w0 = Some (Insn.Addi (1, 0, tab + 8)));
  let _, w1 = p.Program.words.(1) in
  Alcotest.(check bool) "minus" true (Encode.decode w1 = Some (Insn.Addi (2, 0, tab - 4)))

let test_asm_entry () =
  let p =
    Asm.assemble_exn
      {|
        .word 0
        .entry start
start:  l.nop 0x1
      |}
  in
  Alcotest.(check int) "entry" 4 p.Program.entry

let test_asm_comments () =
  let p =
    Asm.assemble_exn
      "# leading\n        l.nop 1 ; trailing\n        l.nop 2 // cpp style\n"
  in
  Alcotest.(check int) "two insns" 2 (Array.length p.Program.words)

let expect_error source fragment =
  match Asm.assemble source with
  | Ok _ -> Alcotest.failf "accepted bad source (expected %s error)" fragment
  | Error e ->
    let contains s sub =
      let n = String.length sub in
      let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
      n = 0 || go 0
    in
    if not (contains e.Asm.message fragment) then
      Alcotest.failf "error %S does not mention %S" e.Asm.message fragment

let test_asm_errors () =
  expect_error "l.frob r1, r2\n" "unknown mnemonic";
  expect_error "l.addi r1, r2\n" "expects";
  expect_error "l.addi r1, r2, 100000\n" "16-bit";
  expect_error "l.j nowhere\n" "undefined symbol";
  expect_error "a: l.nop 1\na: l.nop 1\n" "duplicate label";
  expect_error "l.addi r99, r0, 1\n" "register";
  expect_error ".bogus 12\n" "unknown directive";
  expect_error "l.lwz r1, 4[r2]\n" "offset(register)"

let test_asm_error_line_numbers () =
  match Asm.assemble "l.nop 1\nl.nop 1\nl.frob\n" with
  | Ok _ -> Alcotest.fail "accepted"
  | Error e -> Alcotest.(check int) "line" 3 e.Asm.line

(* ---------- program ---------- *)

let test_cmp_names () =
  List.iter
    (fun c ->
      match Insn.cmp_of_name (Insn.cmp_name c) with
      | Some c' -> Alcotest.(check bool) "roundtrip" true (c = c')
      | None -> Alcotest.fail "cmp name not parsed")
    [ Insn.Eq; Insn.Ne; Insn.Gtu; Insn.Geu; Insn.Ltu; Insn.Leu; Insn.Gts; Insn.Ges;
      Insn.Lts; Insn.Les ];
  Alcotest.(check bool) "unknown" true (Insn.cmp_of_name "zz" = None)

let test_program_symbol_opt () =
  let p = Asm.assemble_exn "here: l.nop 1\n" in
  Alcotest.(check (option int)) "present" (Some 0) (Program.symbol_opt p "here");
  Alcotest.(check (option int)) "absent" None (Program.symbol_opt p "gone")

let test_program_of_insns () =
  let p = Program.of_insns [ Insn.Nop 1; Insn.Add (1, 2, 3) ] in
  Alcotest.(check int) "limit" 8 p.Program.limit;
  Alcotest.(check int) "entry" 0 p.Program.entry

let test_disassemble_roundtrip () =
  (* Disassemble, reassemble and compare words (for label-free code). *)
  let insns = [ Insn.Addi (1, 0, 5); Insn.Add (2, 1, 1); Insn.Nop 1 ] in
  let p = Program.of_insns insns in
  let listing = Program.disassemble p in
  Alcotest.(check bool) "mentions l.addi" true
    (String.split_on_char '\n' listing
    |> List.exists (fun l ->
           String.length l > 0
           &&
           let rec contains i =
             i + 6 <= String.length l && (String.sub l i 6 = "l.addi" || contains (i + 1))
           in
           contains 0))

let test_asm_accepts_every_to_string () =
  (* Every instruction's printed form must re-assemble to itself. *)
  List.iter
    (fun insn ->
      match insn with
      | Insn.J _ | Insn.Jal _ | Insn.Bf _ | Insn.Bnf _ ->
        () (* printed as resolved offsets, not labels; skipped *)
      | _ ->
        let src = "        " ^ Insn.to_string insn ^ "\n" in
        let p = Asm.assemble_exn src in
        let _, w = p.Program.words.(0) in
        if Encode.decode w <> Some insn then
          Alcotest.failf "to_string not reparseable: %s" (Insn.to_string insn))
    canonical_insns

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_decode_encode_fixpoint ] in
  Alcotest.run "sfi_isa"
    [
      ( "encode",
        [
          Alcotest.test_case "roundtrip canonical" `Quick test_roundtrip_canonical;
          Alcotest.test_case "reserved opcodes reject" `Quick test_reserved_opcodes_reject;
          Alcotest.test_case "range checks" `Quick test_encode_rejects_out_of_range;
          Alcotest.test_case "decode total" `Quick test_all_words_decode_total;
        ] );
      ( "metadata",
        [
          Alcotest.test_case "op_class mapping" `Quick test_op_class_mapping;
          Alcotest.test_case "reads/writes" `Quick test_reads_writes;
        ] );
      ( "asm",
        [
          Alcotest.test_case "simple program" `Quick test_asm_simple_program;
          Alcotest.test_case "labels and branches" `Quick test_asm_labels_and_branches;
          Alcotest.test_case "hi/lo" `Quick test_asm_hi_lo;
          Alcotest.test_case "word data and space" `Quick test_asm_word_data_and_space;
          Alcotest.test_case "expressions" `Quick test_asm_expressions;
          Alcotest.test_case "entry directive" `Quick test_asm_entry;
          Alcotest.test_case "comments" `Quick test_asm_comments;
          Alcotest.test_case "errors" `Quick test_asm_errors;
          Alcotest.test_case "error line numbers" `Quick test_asm_error_line_numbers;
          Alcotest.test_case "to_string reparses" `Quick test_asm_accepts_every_to_string;
        ] );
      ( "program",
        [
          Alcotest.test_case "cmp names" `Quick test_cmp_names;
          Alcotest.test_case "symbol_opt" `Quick test_program_symbol_opt;
          Alcotest.test_case "of_insns" `Quick test_program_of_insns;
          Alcotest.test_case "disassemble" `Quick test_disassemble_roundtrip;
        ] );
      ("properties", qsuite);
    ]
