open Sfi_util
open Sfi_sim
open Sfi_kernels

(* Shared small instances so the suite stays fast; the paper-sized
   versions are validated in the full benchmark harness. *)

let paper_suite = lazy (Registry.paper_suite ())

let test_all_paper_benchmarks_validate () =
  List.iter
    (fun (b : Bench.t) ->
      let stats = Bench.validate b in
      Alcotest.(check bool)
        (Printf.sprintf "%s exited" b.Bench.name)
        true
        (stats.Cpu.outcome = Cpu.Exited))
    (Lazy.force paper_suite)

let test_cycle_counts_in_paper_ballpark () =
  (* Within 3x of the paper's reported counts (documented in
     EXPERIMENTS.md); matmul and dijkstra land within a few percent. *)
  let expected = [ ("median", 216_000); ("mat_mult_8bit", 60_000);
                   ("mat_mult_16bit", 60_000); ("kmeans", 351_000); ("dijkstra", 984_000) ] in
  List.iter
    (fun (b : Bench.t) ->
      let stats, _ = Bench.run_fault_free b in
      let paper = List.assoc b.Bench.name expected in
      let ratio = float_of_int stats.Cpu.cycles /. float_of_int paper in
      if ratio < 0.33 || ratio > 3.0 then
        Alcotest.failf "%s: %d cycles vs paper %d (ratio %.2f)" b.Bench.name
          stats.Cpu.cycles paper ratio)
    (Lazy.force paper_suite)

let test_kernel_window_covers_most_cycles () =
  (* The paper: the kernel accounts for 99%+ of runtime cycles. *)
  List.iter
    (fun (b : Bench.t) ->
      let stats, _ = Bench.run_fault_free b in
      let frac =
        float_of_int stats.Cpu.kernel_cycles /. float_of_int stats.Cpu.cycles
      in
      if frac < 0.99 then
        Alcotest.failf "%s kernel fraction %.3f < 0.99" b.Bench.name frac)
    (Lazy.force paper_suite)

let test_ipc_close_to_one () =
  List.iter
    (fun (b : Bench.t) ->
      let stats, _ = Bench.run_fault_free b in
      let ipc = Cpu.ipc stats in
      if ipc < 0.5 || ipc > 1.0 then
        Alcotest.failf "%s IPC %.2f outside [0.5, 1.0]" b.Bench.name ipc)
    (Lazy.force paper_suite)

let test_determinism_per_seed () =
  let p1 = (Median.create ~n:17 ~seed:3 ()).Bench.program in
  let p2 = (Median.create ~n:17 ~seed:3 ()).Bench.program in
  let p3 = (Median.create ~n:17 ~seed:4 ()).Bench.program in
  Alcotest.(check bool) "same seed same image" true
    (p1.Sfi_isa.Program.words = p2.Sfi_isa.Program.words);
  Alcotest.(check bool) "different seed differs" true
    (p1.Sfi_isa.Program.words <> p3.Sfi_isa.Program.words)

(* ---------- median ---------- *)

let test_median_small_instances () =
  List.iter
    (fun n ->
      let b = Median.create ~n ~seed:7 () in
      ignore (Bench.validate b))
    [ 3; 5; 33 ]

let test_median_rejects_even_n () =
  Alcotest.(check bool) "even n" true
    (try ignore (Median.create ~n:4 ()); false with Invalid_argument _ -> true)

let test_median_metric () =
  let b = Median.create ~n:5 () in
  let exp = b.Bench.golden in
  Alcotest.(check (float 1e-9)) "identity" 0.
    (b.Bench.metric ~expected:exp ~actual:exp);
  let doubled = [| exp.(0) * 2 |] in
  Alcotest.(check bool) "100% when doubled" true
    (abs_float (b.Bench.metric ~expected:exp ~actual:doubled -. 100.) < 1e-6)

(* ---------- matmul ---------- *)

let test_matmul_small () =
  List.iter
    (fun (n, bits) -> ignore (Bench.validate (Matmul.create ~n ~bits ~seed:2 ())))
    [ (2, 8); (3, 16); (4, 8) ]

let test_matmul_rejects_bad_bits () =
  Alcotest.(check bool) "bits=4" true
    (try ignore (Matmul.create ~bits:4 ()); false with Invalid_argument _ -> true)

let test_matmul_metric_is_mse () =
  let b = Matmul.create ~n:2 ~bits:8 () in
  let exp = b.Bench.golden in
  let actual = Array.copy exp in
  actual.(0) <- U32.add actual.(0) 10;
  Alcotest.(check (float 1e-9)) "mse" (100. /. 4.) (b.Bench.metric ~expected:exp ~actual)

let test_matmul_8bit_outputs_bounded () =
  let b = Matmul.create ~bits:8 () in
  Array.iter
    (fun v ->
      if v > 255 * 255 * 16 then Alcotest.failf "8-bit product out of range: %d" v)
    b.Bench.golden

(* ---------- kmeans ---------- *)

let test_kmeans_small () =
  List.iter
    (fun (points, iters) ->
      ignore (Bench.validate (Kmeans.create ~points ~iters ~seed:5 ())))
    [ (2, 1); (4, 3); (8, 10) ]

let test_kmeans_metric_label_swap_invariant () =
  let b = Kmeans.create ~points:4 ~iters:2 () in
  let exp = b.Bench.golden in
  let swapped = Array.mapi (fun i v -> if i < 4 then 1 - v else v) exp in
  Alcotest.(check (float 1e-9)) "swap is free" 0. (b.Bench.metric ~expected:exp ~actual:swapped)

let test_kmeans_metric_counts_mismatches () =
  let b = Kmeans.create ~points:4 ~iters:2 () in
  let exp = b.Bench.golden in
  (* Flipping one assignment is the min of {1 mismatch, 3 mismatches}. *)
  let one_flip = Array.copy exp in
  one_flip.(0) <- 1 - one_flip.(0);
  Alcotest.(check (float 1e-9)) "25%" 25. (b.Bench.metric ~expected:exp ~actual:one_flip)

let test_kmeans_assignments_are_binary () =
  let b = Kmeans.create () in
  Array.iteri
    (fun i v -> if i < 8 && v > 1 then Alcotest.failf "assignment %d = %d" i v)
    b.Bench.golden

(* ---------- dijkstra ---------- *)

let test_dijkstra_small () =
  List.iter
    (fun (nodes, reps) ->
      ignore (Bench.validate (Dijkstra.create ~nodes ~reps ~seed:9 ())))
    [ (2, 1); (5, 2); (10, 1) ]

let test_dijkstra_distance_matrix_properties () =
  let b = Dijkstra.create ~nodes:6 ~reps:1 () in
  let n = 6 in
  let d i j = b.Bench.golden.((i * n) + j) in
  for i = 0 to n - 1 do
    Alcotest.(check int) "diagonal zero" 0 (d i i);
    for j = 0 to n - 1 do
      Alcotest.(check int) "symmetric (undirected graph)" (d i j) (d j i);
      for k = 0 to n - 1 do
        if d i j > d i k + d k j then
          Alcotest.failf "triangle inequality violated: d(%d,%d)=%d > %d" i j (d i j)
            (d i k + d k j)
      done
    done
  done

let test_dijkstra_metric () =
  let b = Dijkstra.create ~nodes:4 ~reps:1 () in
  let exp = b.Bench.golden in
  let broken = Array.copy exp in
  broken.(1) <- broken.(1) + 1;
  Alcotest.(check (float 1e-6)) "1 of 16 pairs" (100. /. 16.)
    (b.Bench.metric ~expected:exp ~actual:broken)

(* ---------- extension kernels: crc32 and fir ---------- *)

let test_crc32_validates () =
  List.iter
    (fun len -> ignore (Bench.validate (Crc32.create ~len ~seed:3 ())))
    [ 4; 32; 128 ]

let test_crc32_known_vector () =
  (* CRC-32 of "123456789" is 0xCBF43926 (the canonical check value);
     validate our OCaml reference against it, then the kernel against the
     reference (covered by test_crc32_validates). *)
  let b = Crc32.create ~len:4 () in
  ignore b;
  let bytes = Array.map Char.code [| '1'; '2'; '3'; '4'; '5'; '6'; '7'; '8'; '9' |] in
  Alcotest.(check int) "check value" 0xCBF43926 (Crc32.reference bytes)

let test_crc32_rejects_bad_len () =
  Alcotest.(check bool) "len=3" true
    (try ignore (Crc32.create ~len:3 ()); false with Invalid_argument _ -> true)

let test_crc32_metric_hamming () =
  let b = Crc32.create ~len:8 () in
  let exp = b.Bench.golden in
  Alcotest.(check (float 1e-9)) "identity" 0. (b.Bench.metric ~expected:exp ~actual:exp);
  let flipped = [| exp.(0) lxor 0xF |] in
  Alcotest.(check (float 1e-9)) "4 bits" (400. /. 32.)
    (b.Bench.metric ~expected:exp ~actual:flipped)

let test_fir_validates () =
  List.iter
    (fun (outputs, taps) -> ignore (Bench.validate (Fir.create ~outputs ~taps ~seed:4 ())))
    [ (1, 1); (8, 4); (32, 16) ]

let test_fir_impulse_response () =
  (* With a known seed the first output is h[0] * x[0]; check against an
     independent convolution written differently from the library's. *)
  let b = Fir.create ~outputs:16 ~taps:8 ~seed:11 () in
  let stats, out = Bench.run_fault_free b in
  Alcotest.(check bool) "exited" true (stats.Sfi_sim.Cpu.outcome = Sfi_sim.Cpu.Exited);
  Alcotest.(check bool) "matches golden" true (out = b.Bench.golden)

(* ---------- bench utilities ---------- *)

let test_format_word_data () =
  let s = Bench.format_word_data (Array.init 10 (fun i -> i)) in
  Alcotest.(check bool) "two .word lines" true
    (List.length (String.split_on_char '\n' s |> List.filter (fun l -> l <> "")) = 2)

let test_read_output_matches_golden_after_run () =
  let b = Median.create ~n:9 () in
  let stats, out = Bench.run_fault_free b in
  Alcotest.(check bool) "exited" true (stats.Cpu.outcome = Cpu.Exited);
  Alcotest.(check bool) "golden" true (out = b.Bench.golden)

let () =
  Alcotest.run "sfi_kernels"
    [
      ( "suite",
        [
          Alcotest.test_case "all validate" `Quick test_all_paper_benchmarks_validate;
          Alcotest.test_case "cycle ballpark" `Quick test_cycle_counts_in_paper_ballpark;
          Alcotest.test_case "kernel window >= 99%" `Quick test_kernel_window_covers_most_cycles;
          Alcotest.test_case "IPC close to one" `Quick test_ipc_close_to_one;
          Alcotest.test_case "deterministic in seed" `Quick test_determinism_per_seed;
        ] );
      ( "median",
        [
          Alcotest.test_case "small instances" `Quick test_median_small_instances;
          Alcotest.test_case "rejects even n" `Quick test_median_rejects_even_n;
          Alcotest.test_case "metric" `Quick test_median_metric;
        ] );
      ( "matmul",
        [
          Alcotest.test_case "small instances" `Quick test_matmul_small;
          Alcotest.test_case "rejects bad bits" `Quick test_matmul_rejects_bad_bits;
          Alcotest.test_case "metric is MSE" `Quick test_matmul_metric_is_mse;
          Alcotest.test_case "8-bit outputs bounded" `Quick test_matmul_8bit_outputs_bounded;
        ] );
      ( "kmeans",
        [
          Alcotest.test_case "small instances" `Quick test_kmeans_small;
          Alcotest.test_case "label-swap invariant" `Quick test_kmeans_metric_label_swap_invariant;
          Alcotest.test_case "counts mismatches" `Quick test_kmeans_metric_counts_mismatches;
          Alcotest.test_case "assignments binary" `Quick test_kmeans_assignments_are_binary;
        ] );
      ( "dijkstra",
        [
          Alcotest.test_case "small instances" `Quick test_dijkstra_small;
          Alcotest.test_case "distance matrix sane" `Quick test_dijkstra_distance_matrix_properties;
          Alcotest.test_case "metric" `Quick test_dijkstra_metric;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "crc32 validates" `Quick test_crc32_validates;
          Alcotest.test_case "crc32 check value" `Quick test_crc32_known_vector;
          Alcotest.test_case "crc32 rejects bad len" `Quick test_crc32_rejects_bad_len;
          Alcotest.test_case "crc32 metric" `Quick test_crc32_metric_hamming;
          Alcotest.test_case "fir validates" `Quick test_fir_validates;
          Alcotest.test_case "fir golden" `Quick test_fir_impulse_response;
        ] );
      ( "bench",
        [
          Alcotest.test_case "format_word_data" `Quick test_format_word_data;
          Alcotest.test_case "read_output" `Quick test_read_output_matches_golden_after_run;
        ] );
    ]
