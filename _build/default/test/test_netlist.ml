open Sfi_util
open Sfi_netlist
module B = Circuit.Builder

(* ---------- Cell ---------- *)

let test_cell_arity_matches_eval () =
  List.iter
    (fun kind ->
      let n = Cell.arity kind in
      (* Evaluate over the whole truth table to make sure no assertion
         trips and the function is total. *)
      for v = 0 to (1 lsl n) - 1 do
        ignore (Cell.eval kind (Array.init n (fun i -> (v lsr i) land 1 = 1)))
      done)
    Cell.all

let test_cell_truth_tables () =
  let t = true and f = false in
  Alcotest.(check bool) "inv" true (Cell.eval Cell.Inv [| f |]);
  Alcotest.(check bool) "nand" true (Cell.eval Cell.Nand2 [| t; f |]);
  Alcotest.(check bool) "nand11" false (Cell.eval Cell.Nand2 [| t; t |]);
  Alcotest.(check bool) "xor" true (Cell.eval Cell.Xor2 [| t; f |]);
  Alcotest.(check bool) "xnor" true (Cell.eval Cell.Xnor2 [| t; t |]);
  Alcotest.(check bool) "mux sel0" true (Cell.eval Cell.Mux2 [| f; t; f |]);
  Alcotest.(check bool) "mux sel1" false (Cell.eval Cell.Mux2 [| t; t; f |]);
  Alcotest.(check bool) "aoi21" false (Cell.eval Cell.Aoi21 [| t; t; f |]);
  Alcotest.(check bool) "aoi21 c" false (Cell.eval Cell.Aoi21 [| f; f; t |]);
  Alcotest.(check bool) "aoi21 none" true (Cell.eval Cell.Aoi21 [| f; t; f |]);
  Alcotest.(check bool) "oai21" true (Cell.eval Cell.Oai21 [| t; f; f |]);
  Alcotest.(check bool) "oai21 both" false (Cell.eval Cell.Oai21 [| t; f; t |])

let test_cell_names_roundtrip () =
  List.iter
    (fun k ->
      match Cell.of_name (Cell.name k) with
      | Some k' when k = k' -> ()
      | _ -> Alcotest.failf "roundtrip failed for %s" (Cell.name k))
    Cell.all;
  Alcotest.(check bool) "case-insensitive" true (Cell.of_name "nand2" = Some Cell.Nand2);
  Alcotest.(check bool) "unknown" true (Cell.of_name "FOO" = None)

(* ---------- Cell_lib ---------- *)

let test_cell_lib_roundtrip () =
  let text = Cell_lib.to_text Cell_lib.default in
  match Cell_lib.of_text text with
  | Error e -> Alcotest.failf "parse error: %s" e
  | Ok lib ->
    List.iter
      (fun k ->
        let a = Cell_lib.entry Cell_lib.default k and b = Cell_lib.entry lib k in
        Alcotest.(check (float 1e-9)) "intrinsic" a.Cell_lib.intrinsic b.Cell_lib.intrinsic;
        Alcotest.(check (float 1e-9)) "load" a.Cell_lib.load_slope b.Cell_lib.load_slope)
      Cell.all

let test_cell_lib_rejects_missing () =
  match Cell_lib.of_text "cell INV area 1 intrinsic 8 load 1.5 alpha_skew 0\n" with
  | Ok _ -> Alcotest.fail "accepted incomplete library"
  | Error e -> Alcotest.(check bool) "mentions missing" true (String.length e > 0)

let test_cell_lib_rejects_garbage () =
  (match Cell_lib.of_text "cell WAT area 1 intrinsic 8 load 1 alpha_skew 0" with
  | Ok _ -> Alcotest.fail "accepted unknown cell"
  | Error _ -> ());
  match Cell_lib.of_text "cell INV area X intrinsic 8 load 1 alpha_skew 0" with
  | Ok _ -> Alcotest.fail "accepted bad number"
  | Error _ -> ()

let test_cell_lib_comments_ignored () =
  let text = "# a comment\n\n" ^ Cell_lib.to_text Cell_lib.default ^ "# trailing\n" in
  match Cell_lib.of_text text with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "parse error: %s" e

let test_gate_delay_monotone_in_fanout () =
  let d1 = Cell_lib.gate_delay Cell_lib.default Cell.Nand2 ~fanout:1 in
  let d4 = Cell_lib.gate_delay Cell_lib.default Cell.Nand2 ~fanout:4 in
  Alcotest.(check bool) "monotone" true (d4 > d1)

(* ---------- Circuit builder ---------- *)

let test_builder_simple_and () =
  let b = B.create () in
  let x = B.input b "x" and y = B.input b "y" in
  let z = B.gate b Cell.And2 [| x; y |] in
  B.output b "z" z;
  let c = Circuit.freeze b ~lib:Cell_lib.default in
  Alcotest.(check int) "one gate" 1 (Circuit.gate_count c);
  let outs = Logic_sim.eval_fn c [ ("x", true); ("y", true) ] in
  Alcotest.(check bool) "and true" true (List.assoc "z" outs);
  let outs = Logic_sim.eval_fn c [ ("x", true); ("y", false) ] in
  Alcotest.(check bool) "and false" false (List.assoc "z" outs)

let test_builder_rejects_unknown_net () =
  let b = B.create () in
  let x = B.input b "x" in
  Alcotest.(check bool) "bad net raises" true
    (try
       ignore (B.gate b Cell.And2 [| x; 999 |]);
       false
     with Invalid_argument _ -> true)

let test_builder_rejects_arity () =
  let b = B.create () in
  let x = B.input b "x" in
  Alcotest.(check bool) "arity raises" true
    (try
       ignore (B.gate b Cell.And2 [| x |]);
       false
     with Invalid_argument _ -> true)

let test_freeze_rejects_undriven () =
  (* An output net that exists but nothing drives cannot happen through the
     builder API (every net is an input, const, or gate output), so instead
     check that declaring outputs on valid nets works and unknown nets are
     rejected at declaration time. *)
  let b = B.create () in
  let _ = B.input b "x" in
  Alcotest.(check bool) "output unknown net raises" true
    (try
       B.output b "z" 42;
       false
     with Invalid_argument _ -> true)

let test_const_nets () =
  let b = B.create () in
  let x = B.input b "x" in
  let t1 = B.const b true and t2 = B.const b true in
  Alcotest.(check int) "consts shared" t1 t2;
  let z = B.gate b Cell.And2 [| x; t1 |] in
  B.output b "z" z;
  let c = Circuit.freeze b ~lib:Cell_lib.default in
  let outs = Logic_sim.eval_fn c [ ("x", true) ] in
  Alcotest.(check bool) "and with const true" true (List.assoc "z" outs)

let test_tags_and_scaling () =
  let b = B.create () in
  let x = B.input b "x" and y = B.input b "y" in
  B.set_tag b "u1";
  let g1 = B.gate b Cell.And2 [| x; y |] in
  B.set_tag b "u2";
  let g2 = B.gate b Cell.Or2 [| x; y |] in
  B.output b "g1" g1;
  B.output b "g2" g2;
  let c = Circuit.freeze b ~lib:Cell_lib.default in
  let d1 = c.Circuit.base_delay.(0) and d2 = c.Circuit.base_delay.(1) in
  Circuit.scale_tag_delays c ~tag:"u1" ~factor:2.0;
  Alcotest.(check (float 1e-9)) "u1 scaled" (2. *. d1) c.Circuit.base_delay.(0);
  Alcotest.(check (float 1e-9)) "u2 untouched" d2 c.Circuit.base_delay.(1);
  Circuit.scale_tag_delays c ~tag:"nonexistent" ~factor:3.0;
  Alcotest.(check (float 1e-9)) "unknown tag noop" (2. *. d1) c.Circuit.base_delay.(0);
  let counts = Circuit.count_by_tag c in
  Alcotest.(check int) "u1 count" 1 (List.assoc "u1" counts);
  Alcotest.(check int) "u2 count" 1 (List.assoc "u2" counts)

let test_topological_invariant () =
  (* Builder only lets gates read existing nets, so creation order is
     topological: every gate's inputs must be driven by earlier gates, PIs
     or constants. *)
  let alu = Alu.build () in
  let c = alu.Alu.circuit in
  let seen = Array.make c.Circuit.n_nets false in
  Array.iter (fun (_, n) -> seen.(n) <- true) c.Circuit.pis;
  (match c.Circuit.const_false with Some n -> seen.(n) <- true | None -> ());
  (match c.Circuit.const_true with Some n -> seen.(n) <- true | None -> ());
  Array.iter
    (fun (g : Circuit.gate) ->
      Array.iter
        (fun n -> if not seen.(n) then Alcotest.failf "net %d read before driven" n)
        g.Circuit.fan_in;
      seen.(g.Circuit.out) <- true)
    c.Circuit.gates

(* ---------- Datapath blocks ---------- *)

let build_binop ?(width = 16) f =
  (* Builds a circuit computing [f] over two w-bit inputs, returns an
     evaluation function over ints. *)
  let b = B.create () in
  let xs = B.input_vec b "x" width in
  let ys = B.input_vec b "y" width in
  let outs = f b xs ys in
  Array.iteri (fun i n -> B.output b (Printf.sprintf "o.%d" i) n) outs;
  let c = Circuit.freeze b ~lib:Cell_lib.default in
  let sim = Logic_sim.create c in
  fun x y ->
    Logic_sim.set_input_vec sim xs x;
    Logic_sim.set_input_vec sim ys y;
    Logic_sim.eval sim;
    Logic_sim.read_vec sim outs

let mask16 = 0xFFFF

let test_ripple_adder () =
  let eval =
    build_binop (fun b xs ys ->
        let sums, _ = Datapath.ripple_adder b xs ys ~cin:(B.const b false) in
        sums)
  in
  List.iter
    (fun (x, y) ->
      Alcotest.(check int)
        (Printf.sprintf "%d+%d" x y)
        ((x + y) land mask16)
        (eval x y))
    [ (0, 0); (1, 1); (0xFFFF, 1); (0x8000, 0x8000); (12345, 54321); (0xAAAA, 0x5555) ]

let test_carry_skip_adder () =
  let eval =
    build_binop (fun b xs ys ->
        let sums, _ = Datapath.carry_skip_adder b ~block:4 xs ys ~cin:(B.const b false) in
        sums)
  in
  List.iter
    (fun (x, y) ->
      Alcotest.(check int)
        (Printf.sprintf "%d+%d" x y)
        ((x + y) land mask16)
        (eval x y))
    [ (0, 0); (1, 0xFFFF); (0xFFFF, 0xFFFF); (0x0F0F, 0xF0F0); (99, 901) ]

let test_brent_kung_adder () =
  let eval =
    build_binop (fun b xs ys ->
        let sums, _ = Datapath.brent_kung_adder b xs ys ~cin:(B.const b false) in
        sums)
  in
  List.iter
    (fun (x, y) ->
      Alcotest.(check int)
        (Printf.sprintf "%d+%d" x y)
        ((x + y) land mask16)
        (eval x y))
    [ (0, 0); (1, 0xFFFF); (0xFFFF, 0xFFFF); (0x0F0F, 0xF0F0); (0xAAAA, 0x5555); (99, 901) ]

let test_brent_kung_rejects_odd_width () =
  let b = B.create () in
  let xs = B.input_vec b "x" 12 and ys = B.input_vec b "y" 12 in
  Alcotest.(check bool) "non-power-of-two raises" true
    (try
       ignore (Datapath.brent_kung_adder b xs ys ~cin:(B.const b false));
       false
     with Invalid_argument _ -> true)

let test_carry_select_adder () =
  let eval =
    build_binop (fun b xs ys ->
        let sums, _ = Datapath.carry_select_adder b ~block:4 xs ys ~cin:(B.const b false) in
        sums)
  in
  List.iter
    (fun (x, y) ->
      Alcotest.(check int)
        (Printf.sprintf "%d+%d" x y)
        ((x + y) land mask16)
        (eval x y))
    [ (0, 0); (1, 0xFFFF); (0xFFFF, 0xFFFF); (0x0F0F, 0xF0F0); (12345, 54321) ]

let prop_adders_agree =
  QCheck.Test.make ~name:"all three adders compute x+y" ~count:300
    QCheck.(pair (int_bound mask16) (int_bound mask16))
    (let ripple =
       build_binop (fun b xs ys ->
           fst (Datapath.ripple_adder b xs ys ~cin:(B.const b false)))
     and skip =
       build_binop (fun b xs ys ->
           fst (Datapath.carry_skip_adder b ~block:4 xs ys ~cin:(B.const b false)))
     and bk =
       build_binop (fun b xs ys ->
           fst (Datapath.brent_kung_adder b xs ys ~cin:(B.const b false)))
     and csel =
       build_binop (fun b xs ys ->
           fst (Datapath.carry_select_adder b ~block:4 xs ys ~cin:(B.const b false)))
     in
     fun (x, y) ->
       let expect = (x + y) land mask16 in
       ripple x y = expect && skip x y = expect && bk x y = expect && csel x y = expect)

let test_add_sub () =
  let b = B.create () in
  let xs = B.input_vec b "x" 16 in
  let ys = B.input_vec b "y" 16 in
  let sub = B.input b "sub" in
  let outs = Datapath.add_sub b xs ys ~sub in
  Array.iteri (fun i n -> B.output b (Printf.sprintf "o.%d" i) n) outs;
  let c = Circuit.freeze b ~lib:Cell_lib.default in
  let sim = Logic_sim.create c in
  let eval x y s =
    Logic_sim.set_input_vec sim xs x;
    Logic_sim.set_input_vec sim ys y;
    Logic_sim.set_input sim sub s;
    Logic_sim.eval sim;
    Logic_sim.read_vec sim outs
  in
  Alcotest.(check int) "add" 5 (eval 2 3 false);
  Alcotest.(check int) "sub" 1 (eval 3 2 true);
  Alcotest.(check int) "sub wrap" 0xFFFF (eval 2 3 true);
  Alcotest.(check int) "sub zero" 0 (eval 7 7 true)

let test_array_multiplier () =
  let eval = build_binop ~width:16 Datapath.array_multiplier in
  List.iter
    (fun (x, y) ->
      Alcotest.(check int)
        (Printf.sprintf "%d*%d" x y)
        (x * y land mask16)
        (eval x y))
    [ (0, 0); (1, 1); (255, 255); (0xFFFF, 0xFFFF); (3, 5); (1234, 567) ]

let test_barrel_shifters () =
  let mk dir =
    let b = B.create () in
    let xs = B.input_vec b "x" 16 in
    let amt = B.input_vec b "amt" 4 in
    let outs = Datapath.barrel_shifter b dir xs ~amount:amt in
    Array.iteri (fun i n -> B.output b (Printf.sprintf "o.%d" i) n) outs;
    let c = Circuit.freeze b ~lib:Cell_lib.default in
    let sim = Logic_sim.create c in
    fun x a ->
      Logic_sim.set_input_vec sim xs x;
      Logic_sim.set_input_vec sim amt a;
      Logic_sim.eval sim;
      Logic_sim.read_vec sim outs
  in
  let sll = mk `Left and srl = mk `Right_logical and sra = mk `Right_arith in
  for a = 0 to 15 do
    Alcotest.(check int) "sll" (0xABCD lsl a land mask16) (sll 0xABCD a);
    Alcotest.(check int) "srl" (0xABCD lsr a) (srl 0xABCD a);
    let signed = 0xABCD - 0x10000 in
    Alcotest.(check int) "sra" (signed asr a land mask16) (sra 0xABCD a);
    Alcotest.(check int) "sra pos" (0x2BCD asr a) (sra 0x2BCD a)
  done

let test_bitwise () =
  let eval_and = build_binop (fun b xs ys -> Datapath.bitwise b Cell.And2 xs ys) in
  let eval_xor = build_binop (fun b xs ys -> Datapath.bitwise b Cell.Xor2 xs ys) in
  Alcotest.(check int) "and" (0xF0F0 land 0xFF00) (eval_and 0xF0F0 0xFF00);
  Alcotest.(check int) "xor" (0xF0F0 lxor 0xFF00) (eval_xor 0xF0F0 0xFF00)

let test_trees () =
  let b = B.create () in
  let xs = B.input_vec b "x" 5 in
  let a = Datapath.and_tree b xs in
  let o = Datapath.or_tree b xs in
  B.output b "and" a;
  B.output b "or" o;
  let c = Circuit.freeze b ~lib:Cell_lib.default in
  let sim = Logic_sim.create c in
  let eval v =
    Logic_sim.set_input_vec sim xs v;
    Logic_sim.eval sim;
    (Logic_sim.value sim a, Logic_sim.value sim o)
  in
  Alcotest.(check (pair bool bool)) "all ones" (true, true) (eval 0b11111);
  Alcotest.(check (pair bool bool)) "zero" (false, false) (eval 0);
  Alcotest.(check (pair bool bool)) "mixed" (false, true) (eval 0b00100)

let test_equal_const () =
  let b = B.create () in
  let xs = B.input_vec b "x" 8 in
  let eq = Datapath.equal_const b xs 0xA5 in
  B.output b "eq" eq;
  let c = Circuit.freeze b ~lib:Cell_lib.default in
  let sim = Logic_sim.create c in
  let eval v =
    Logic_sim.set_input_vec sim xs v;
    Logic_sim.eval sim;
    Logic_sim.value sim eq
  in
  Alcotest.(check bool) "match" true (eval 0xA5);
  Alcotest.(check bool) "mismatch" false (eval 0xA4);
  Alcotest.(check bool) "mismatch2" false (eval 0x25)

let test_isolation_quiets_inputs () =
  let b = B.create () in
  let xs = B.input_vec b "x" 8 in
  let en = B.input b "en" in
  let gated = Datapath.isolate b ~enable:en xs in
  Array.iteri (fun i n -> B.output b (Printf.sprintf "g.%d" i) n) gated;
  let c = Circuit.freeze b ~lib:Cell_lib.default in
  let sim = Logic_sim.create c in
  Logic_sim.set_input_vec sim xs 0xFF;
  Logic_sim.set_input sim en false;
  Logic_sim.eval sim;
  Alcotest.(check int) "disabled -> zero" 0 (Logic_sim.read_vec sim gated);
  Logic_sim.set_input sim en true;
  Logic_sim.eval sim;
  Alcotest.(check int) "enabled -> pass" 0xFF (Logic_sim.read_vec sim gated)

(* ---------- ALU ---------- *)

let alu = lazy (Alu.build ())

let test_alu_matches_spec_exhaustive_small () =
  let alu = Lazy.force alu in
  let sim = Logic_sim.create alu.Alu.circuit in
  List.iter
    (fun cls ->
      List.iter
        (fun (a, b) ->
          let got = Alu.simulate alu sim cls a b in
          let expect = Op_class.apply cls a b in
          if got <> expect then
            Alcotest.failf "%s %08x %08x: got %08x expected %08x" (Op_class.name cls)
              a b got expect)
        [
          (0, 0); (1, 1); (0xFFFF_FFFF, 1); (0xFFFF_FFFF, 0xFFFF_FFFF);
          (0x8000_0000, 0x8000_0000); (0xDEAD_BEEF, 0x1234_5678);
          (0x0000_FFFF, 0xFFFF_0000); (5, 31); (0xFFFF_FFFF, 33);
        ])
    Op_class.all

let test_alu_gate_count_sanity () =
  let alu = Lazy.force alu in
  let n = Circuit.gate_count alu.Alu.circuit in
  Alcotest.(check bool) (Printf.sprintf "gate count %d in plausible range" n) true
    (n > 3000 && n < 30000)

let test_alu_unit_tags_present () =
  let alu = Lazy.force alu in
  let tags = List.map fst (Circuit.count_by_tag alu.Alu.circuit) in
  List.iter
    (fun t ->
      if not (List.mem t tags) then Alcotest.failf "missing tag %s" t)
    [ "iso"; "addsub"; "mul"; "sll"; "srl"; "sra"; "and"; "or"; "xor"; "select" ]

let test_alu_depth_ordering () =
  (* The multiplier must dominate the logic depth of the whole ALU. *)
  let alu = Lazy.force alu in
  let depth = Circuit.logic_depth alu.Alu.circuit in
  Alcotest.(check bool) (Printf.sprintf "depth %d > 40" depth) true (depth > 40)

(* ---------- Verilog export ---------- *)

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_verilog_small_circuit () =
  let b = B.create () in
  let x = B.input b "x" and y = B.input b "y" in
  let z = B.gate b Cell.Nand2 [| x; y |] in
  B.output b "z" z;
  let c = Circuit.freeze b ~lib:Cell_lib.default in
  let v = Verilog.to_string ~module_name:"tiny" c in
  List.iter
    (fun frag ->
      if not (contains v frag) then Alcotest.failf "missing %S in:\n%s" frag v)
    [ "module tiny"; "input x"; "input y"; "output z"; "NAND2"; "endmodule" ]

let test_verilog_constants_and_sanitize () =
  let b = B.create () in
  let xs = B.input_vec b "a" 2 in
  let t = B.const b true in
  let z = B.gate b Cell.And2 [| xs.(0); t |] in
  B.output b "out.0" z;
  let c = Circuit.freeze b ~lib:Cell_lib.default in
  let v = Verilog.to_string c in
  Alcotest.(check bool) "const true" true (contains v "1'b1");
  Alcotest.(check bool) "sanitized port" true (contains v "output out_0");
  Alcotest.(check bool) "sanitized input" true (contains v "input a_0")

let test_verilog_alu_exports () =
  let alu = Lazy.force alu in
  let v = Verilog.to_string alu.Alu.circuit in
  (* One instance line per gate plus ports/wires. *)
  let lines = String.split_on_char '\n' v in
  let instances =
    List.length (List.filter (fun l -> contains l "); //") lines)
  in
  Alcotest.(check int) "instance per gate" (Circuit.gate_count alu.Alu.circuit) instances;
  Alcotest.(check bool) "cell defs standalone" true
    (contains Verilog.cell_definitions "module MUX2")

let prop_alu_random_equivalence =
  QCheck.Test.make ~name:"alu netlist equals Op_class.apply" ~count:300
    QCheck.(triple (int_bound (Op_class.count - 1)) (int_bound 0x3FFFFFFF) (int_bound 0x3FFFFFFF))
    (fun (ci, a, b) ->
      let alu = Lazy.force alu in
      let sim = Logic_sim.create alu.Alu.circuit in
      let cls = List.nth Op_class.all ci in
      (* Spread the 30-bit generator values over the full 32-bit range. *)
      let a = U32.of_int (a * 5) and b = U32.of_int (b * 3) in
      Alu.simulate alu sim cls a b = Op_class.apply cls a b)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest [ prop_adders_agree; prop_alu_random_equivalence ]
  in
  Alcotest.run "sfi_netlist"
    [
      ( "cell",
        [
          Alcotest.test_case "arity/eval total" `Quick test_cell_arity_matches_eval;
          Alcotest.test_case "truth tables" `Quick test_cell_truth_tables;
          Alcotest.test_case "names roundtrip" `Quick test_cell_names_roundtrip;
        ] );
      ( "cell_lib",
        [
          Alcotest.test_case "text roundtrip" `Quick test_cell_lib_roundtrip;
          Alcotest.test_case "rejects missing" `Quick test_cell_lib_rejects_missing;
          Alcotest.test_case "rejects garbage" `Quick test_cell_lib_rejects_garbage;
          Alcotest.test_case "comments ignored" `Quick test_cell_lib_comments_ignored;
          Alcotest.test_case "delay monotone in fanout" `Quick test_gate_delay_monotone_in_fanout;
        ] );
      ( "circuit",
        [
          Alcotest.test_case "simple and" `Quick test_builder_simple_and;
          Alcotest.test_case "rejects unknown net" `Quick test_builder_rejects_unknown_net;
          Alcotest.test_case "rejects arity" `Quick test_builder_rejects_arity;
          Alcotest.test_case "rejects undriven output" `Quick test_freeze_rejects_undriven;
          Alcotest.test_case "const nets" `Quick test_const_nets;
          Alcotest.test_case "tags and scaling" `Quick test_tags_and_scaling;
          Alcotest.test_case "topological invariant" `Quick test_topological_invariant;
        ] );
      ( "datapath",
        [
          Alcotest.test_case "ripple adder" `Quick test_ripple_adder;
          Alcotest.test_case "carry-skip adder" `Quick test_carry_skip_adder;
          Alcotest.test_case "brent-kung adder" `Quick test_brent_kung_adder;
          Alcotest.test_case "brent-kung width check" `Quick test_brent_kung_rejects_odd_width;
          Alcotest.test_case "carry-select adder" `Quick test_carry_select_adder;
          Alcotest.test_case "add/sub" `Quick test_add_sub;
          Alcotest.test_case "array multiplier" `Quick test_array_multiplier;
          Alcotest.test_case "barrel shifters" `Quick test_barrel_shifters;
          Alcotest.test_case "bitwise" `Quick test_bitwise;
          Alcotest.test_case "reduction trees" `Quick test_trees;
          Alcotest.test_case "equal const" `Quick test_equal_const;
          Alcotest.test_case "operand isolation" `Quick test_isolation_quiets_inputs;
        ] );
      ( "verilog",
        [
          Alcotest.test_case "small circuit" `Quick test_verilog_small_circuit;
          Alcotest.test_case "constants and names" `Quick test_verilog_constants_and_sanitize;
          Alcotest.test_case "full ALU export" `Quick test_verilog_alu_exports;
        ] );
      ( "alu",
        [
          Alcotest.test_case "matches spec (corner vectors)" `Quick
            test_alu_matches_spec_exhaustive_small;
          Alcotest.test_case "gate count sane" `Quick test_alu_gate_count_sanity;
          Alcotest.test_case "unit tags present" `Quick test_alu_unit_tags_present;
          Alcotest.test_case "depth dominated by multiplier" `Quick test_alu_depth_ordering;
        ] );
      ("properties", qsuite);
    ]
