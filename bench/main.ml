(* Benchmark harness.

   Running this executable regenerates every table and figure of the
   paper's evaluation (DESIGN.md maps experiment ids to paper artifacts;
   EXPERIMENTS.md records paper-vs-measured numbers):

     dune exec bench/main.exe                 # all experiments, fast scale
     dune exec bench/main.exe -- fig5 fig6    # a subset
     dune exec bench/main.exe -- --paper      # paper-scale Monte-Carlo (slow)
     dune exec bench/main.exe -- --bechamel   # only the Bechamel microbenches
     dune exec bench/main.exe -- --jobs 4     # pin the domain-pool size
     dune exec bench/main.exe -- --smoke      # one fast parallel-vs-serial sweep
     dune build @bench-smoke                  # the same, as a dune alias

   After the experiment regeneration, a Bechamel micro-benchmark suite
   times the computational core of each table/figure driver plus the
   engine primitives (one [Test.make] per artifact).

   Every run ends by writing BENCH.json — per-experiment wall times, the
   Bechamel estimates, the serial engine throughput (DTA events/sec,
   injector hook calls/sec, interpreter-vs-compiled ISS insns/sec,
   characterize vs campaign wall split) and the parallel-smoke speedup —
   so successive PRs can track the performance trajectory mechanically. *)

open Sfi_util
open Sfi_core

(* ---------- Bechamel microbenchmark suite ---------- *)

let bechamel_suite () =
  let open Bechamel in
  (* Shared fixtures, built once. *)
  let flow = Flow.create ~config:{ Flow.default_config with Flow.char_cycles = 600 } () in
  let alu = Flow.alu flow in
  let db = Flow.char_db flow ~vdd:0.7 in
  let median_small = Sfi_kernels.Median.create ~n:17 () in
  let matmul_small = Sfi_kernels.Matmul.create ~n:6 ~bits:8 () in
  let model_c = Flow.model_c flow ~vdd:0.7 ~sigma:0.010 () in
  let model_bplus = Flow.model_bplus flow ~vdd:0.7 ~sigma:0.010 in
  let logic = Sfi_netlist.Logic_sim.create alu.Sfi_netlist.Alu.circuit in
  let dta = Sfi_timing.Dta.create alu.Sfi_netlist.Alu.circuit in
  let rng = Rng.of_int 77 in
  let tests =
    [
      (* one Test.make per table / figure driver *)
      Test.make ~name:"table1:iss-fault-free-run"
        (Staged.stage (fun () -> ignore (Sfi_kernels.Bench.run_fault_free median_small)));
      Test.make ~name:"table2:model-feature-rows"
        (Staged.stage (fun () -> ignore (Sfi_fi.Model.feature_rows ())));
      Test.make ~name:"fig1:bplus-injector-hook"
        (Staged.stage (fun () ->
             let injector =
               Sfi_fi.Injector.create ~model:model_bplus ~freq_mhz:663. ~rng ()
             in
             ignore
               (Sfi_fi.Injector.hook injector ~cycle:0 ~cls:Op_class.Add ~a:1 ~b:2
                  ~result:3)));
      Test.make ~name:"fig2:cdf-probability-eval"
        (Staged.stage (fun () ->
             ignore
               (Sfi_timing.Characterize.error_probability db Op_class.Mul ~endpoint:24
                  ~period_ps:1100. ~scale:1.03)));
      Test.make ~name:"fig3:sta-full-alu"
        (Staged.stage (fun () -> ignore (Sfi_timing.Sta.analyze alu.Sfi_netlist.Alu.circuit)));
      Test.make ~name:"fig4:model-c-op-stream-100"
        (Staged.stage (fun () ->
             let injector = Sfi_fi.Injector.create ~model:model_c ~freq_mhz:850. ~rng () in
             let hook = Sfi_fi.Injector.hook injector in
             for i = 1 to 100 do
               let a = Rng.bits32 rng and b = Rng.bits32 rng in
               ignore (hook ~cycle:i ~cls:Op_class.Add ~a ~b ~result:(U32.add a b))
             done));
      Test.make ~name:"fig5:mc-trial-median"
        (Staged.stage (fun () ->
             ignore
               (Sfi_fi.Campaign.run_trial ~bench:median_small ~model:model_c
                  ~freq_mhz:820. ~seed:(Rng.bits32 rng))));
      Test.make ~name:"fig6:mc-trial-matmul"
        (Staged.stage (fun () ->
             ignore
               (Sfi_fi.Campaign.run_trial ~bench:matmul_small ~model:model_c
                  ~freq_mhz:760. ~seed:(Rng.bits32 rng))));
      Test.make ~name:"fig7:power-model-eval"
        (Staged.stage (fun () ->
             ignore (Power.normalized ~vdd:0.66);
             ignore (Power.equivalent_vdd Sfi_timing.Vdd_model.default ~headroom_ratio:1.05)));
      (* engine primitives *)
      Test.make ~name:"engine:logic-sim-alu-eval"
        (Staged.stage (fun () ->
             Sfi_netlist.Alu.drive alu logic Op_class.Mul (Rng.bits32 rng) (Rng.bits32 rng);
             Sfi_netlist.Logic_sim.eval logic));
      Test.make ~name:"engine:dta-alu-cycle"
        (Staged.stage (fun () ->
             Sfi_timing.Dta.set_input_vec dta alu.Sfi_netlist.Alu.a (Rng.bits32 rng);
             Sfi_timing.Dta.set_input_vec dta alu.Sfi_netlist.Alu.b (Rng.bits32 rng);
             Sfi_timing.Dta.cycle dta));
      Test.make ~name:"engine:iss-small-program"
        (Staged.stage
           (let program =
              Sfi_isa.Asm.assemble_exn
                {|
        l.addi r1, r0, 111
loop:   l.addi r2, r2, 3
        l.mul  r3, r2, r1
        l.xor  r4, r3, r2
        l.addi r1, r1, -1
        l.sfnei r1, 0
        l.bf   loop
        l.nop  0x1
                |}
            in
            fun () ->
              let mem = Sfi_sim.Memory.create ~size:4096 in
              Sfi_sim.Memory.load_program mem program;
              ignore (Sfi_sim.Cpu.run mem ~entry:0)));
    ]
  in
  let test = Test.make_grouped ~name:"sfi" ~fmt:"%s/%s" tests in
  (* stabilize:false — bechamel's per-sample stabilization loop (repeated
     Gc.compact until live words settle, thousands of times across the
     suite) leaves the OCaml 5.1 major-GC pacing stalled for the rest of
     the process: after the suite returns, major-heap allocation stops
     triggering slices, the heap balloons unbounded, and every
     measurement downstream of this function (iss/cache/smoke/adaptive)
     reads 2-6x slow. A lone Gc.compact does not trigger the stall. *)
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.3) ~kde:None
      ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] test in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some (est :: _) -> rows := (name, est) :: !rows
      | _ -> ())
    results;
  let rows = List.sort compare !rows in
  let t =
    Table.create ~title:"Bechamel microbenchmarks (monotonic clock)"
      [ ("benchmark", Table.Left); ("time/run", Table.Right) ]
  in
  let fmt_ns ns =
    if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
    else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  List.iter (fun (name, est) -> Table.add_row t [ name; fmt_ns est ]) rows;
  Table.print t;
  rows

(* ---------- engine throughput: events/sec, insns/sec, phase split ---------- *)

type perf = {
  events_per_sec : float; (* DTA events evaluated per second, sized ALU *)
  injector_hook_calls_per_sec : float; (* model-C injector hook calls per second *)
  characterize_wall_s : float; (* one cold 0.7 V characterization *)
  mutable campaign_wall_s : float; (* serial Monte-Carlo sweep (from smoke) *)
}

(* Serial hot-loop throughput, measured directly so BENCH.json pins the
   event-kernel and injector fast-path speed for future PRs, independent
   of experiment composition. *)
let perf_metrics () =
  let flow = Flow.create ~config:{ Flow.default_config with Flow.char_cycles = 2000 } () in
  let alu = Flow.alu flow in
  (* Characterize phase: one cold per-class DB extraction at 0.7 V. *)
  let t0 = Unix.gettimeofday () in
  ignore (Flow.char_db flow ~vdd:0.7);
  let characterize_wall_s = Unix.gettimeofday () -. t0 in
  (* DTA events/sec on the sized (post-variation) ALU. *)
  let dta = Sfi_timing.Dta.create alu.Sfi_netlist.Alu.circuit in
  let rng = Rng.of_int 1234 in
  let drive_cycle () =
    Sfi_timing.Dta.set_input_vec dta alu.Sfi_netlist.Alu.a (Rng.bits32 rng);
    Sfi_timing.Dta.set_input_vec dta alu.Sfi_netlist.Alu.b (Rng.bits32 rng);
    Sfi_timing.Dta.cycle dta
  in
  for _ = 1 to 200 do drive_cycle () done;
  let e0 = Sfi_timing.Dta.events_processed dta in
  let t0 = Unix.gettimeofday () in
  let cycles = 20_000 in
  for _ = 1 to cycles do drive_cycle () done;
  let dta_wall = Unix.gettimeofday () -. t0 in
  let events = Sfi_timing.Dta.events_processed dta - e0 in
  let events_per_sec = float_of_int events /. Float.max 1e-9 dta_wall in
  (* Injector hook calls/sec: model C in the transition region, where the
     per-call noise draw and threshold math actually run. *)
  let fsta = Flow.sta_limit_mhz flow ~vdd:0.7 in
  let model = Flow.model_c flow ~vdd:0.7 ~sigma:0.010 () in
  let injector =
    Sfi_fi.Injector.create ~model ~freq_mhz:(fsta *. 1.15) ~rng ()
  in
  let hook = Sfi_fi.Injector.hook injector in
  let call i cls =
    let a = Rng.bits32 rng and b = Rng.bits32 rng in
    ignore (hook ~cycle:i ~cls ~a ~b ~result:(U32.add a b) : int)
  in
  for i = 1 to 10_000 do
    call i (if i land 1 = 0 then Op_class.Add else Op_class.Mul)
  done;
  let insns = 2_000_000 in
  let t0 = Unix.gettimeofday () in
  for i = 1 to insns do
    call i (if i land 1 = 0 then Op_class.Add else Op_class.Mul)
  done;
  let inj_wall = Unix.gettimeofday () -. t0 in
  let injector_hook_calls_per_sec = float_of_int insns /. Float.max 1e-9 inj_wall in
  Printf.printf
    "engine throughput: DTA %.2f Mevents/s (%d events / %.2f s), injector %.2f \
     Mcalls/s, characterize %.2f s\n%!"
    (events_per_sec /. 1e6) events dta_wall (injector_hook_calls_per_sec /. 1e6)
    characterize_wall_s;
  { events_per_sec; injector_hook_calls_per_sec; characterize_wall_s;
    campaign_wall_s = nan }

(* ---------- ISS engines: interpreter vs compiled basic blocks ---------- *)

type iss = {
  iss_insns : int; (* instructions retired by one measured run *)
  interp_wall_s : float; (* best-of-3 wall per run *)
  compiled_wall_s : float;
  interp_insns_per_sec : float;
  compiled_insns_per_sec : float;
  iss_speedup : float;
}

(* The same fault-free kernel run on both ISS engines, timed — real
   retired-instruction throughput, unlike the injector-hook rate above
   (which times only the fault model's per-operation math). The full
   stats records and outputs must be equal: the compiled engine is
   cycle-for-cycle bit-identical by contract, so any divergence here is
   a hard failure, not a measurement artifact. Wall times are
   best-of-3 over rep blocks sized to ~20 M instructions so a stray
   scheduler hiccup cannot flip the smoke gate. The upfront compact
   matters in the full run: the bechamel suite leaves a large dead
   major heap behind, and the compiled engine (which allocates at
   block-compile time, unlike the allocation-free interpreter) would
   otherwise absorb the entire sweep cost inside its timed window. *)
let iss_compare () =
  let module C = Sfi_sim.Cpu in
  Gc.compact ();
  let bench = Sfi_kernels.Median.create ~n:129 () in
  let run engine = Sfi_kernels.Bench.run_fault_free ~engine bench in
  let istats, iout = run C.Interp in
  let cstats, cout = run C.Compiled in
  if istats <> cstats || iout <> cout then
    failwith "iss compare: compiled engine diverged from the interpreter";
  let insns = istats.C.instret in
  let reps = max 1 (20_000_000 / max 1 insns) in
  let time engine =
    let best = ref infinity in
    for _ = 1 to 3 do
      let t0 = Unix.gettimeofday () in
      for _ = 1 to reps do
        ignore (run engine : C.stats * U32.t array)
      done;
      let w = Unix.gettimeofday () -. t0 in
      if w < !best then best := w
    done;
    !best /. float_of_int reps
  in
  let interp_wall_s = time C.Interp in
  let compiled_wall_s = time C.Compiled in
  let per_sec wall = float_of_int insns /. Float.max 1e-9 wall in
  let r =
    {
      iss_insns = insns;
      interp_wall_s;
      compiled_wall_s;
      interp_insns_per_sec = per_sec interp_wall_s;
      compiled_insns_per_sec = per_sec compiled_wall_s;
      iss_speedup = interp_wall_s /. Float.max 1e-9 compiled_wall_s;
    }
  in
  Printf.printf
    "iss compare: %d insns/run x %d reps, interp %.2f Minsns/s, compiled %.2f \
     Minsns/s (%.2fx), stats bit-identical\n%!"
    insns reps
    (r.interp_insns_per_sec /. 1e6)
    (r.compiled_insns_per_sec /. 1e6)
    r.iss_speedup;
  r

(* ---------- characterization kernels: scalar vs packed ---------- *)

type kernels = {
  kernel_cycles : int;
  scalar_wall_s : float;
  packed_wall_s : float;
  scalar_events_per_sec : float;
  packed_events_per_sec : float;
  kernel_speedup : float;
}

(* Merged value of a (possibly sharded) ~det:false work counter. *)
let counter_value name =
  List.fold_left
    (fun acc e ->
      match e.Sfi_obs.entry_value with
      | Sfi_obs.Counter_v v when e.Sfi_obs.entry_name = name -> acc + v
      | _ -> acc)
    0 (Sfi_obs.snapshot ())

(* The same characterization run on both kernels, serially, timed — the
   packed engine's reason to exist in one number. Events/sec counts
   scalar-equivalent gate evaluations: [dta.events] for the scalar
   engine, [bitsim.lane_events] (trigger-mask population) for the packed
   one; the two totals agree modulo the per-class initial settling that
   the packed engine folds into its functional prime. The cache must be
   off here: fingerprints are engine-independent by design, so a warm
   cache would serve engine B the database engine A just wrote. *)
let kernel_compare ~cycles () =
  if not (Sfi_netlist.Bitsim.available ()) then begin
    Printf.printf "kernel compare: skipped (packed engine unavailable on this target)\n%!";
    None
  end
  else begin
    Sfi_cache.set_dir None;
    (* A clean heap for a clean measurement: the comparison runs before
       the other phases (and compacts away whatever setup allocated), so
       GC pressure from unrelated bench fixtures cannot skew the
       engine-vs-engine ratio. *)
    Gc.compact ();
    let flow = Flow.create () in
    let alu = Flow.alu flow in
    let run engine =
      let ev0 = counter_value "dta.events" + counter_value "bitsim.lane_events" in
      let t0 = Unix.gettimeofday () in
      let db = Sfi_timing.Characterize.run ~cycles ~jobs:1 ~engine ~vdd:0.7 alu in
      let wall = Unix.gettimeofday () -. t0 in
      let events =
        counter_value "dta.events" + counter_value "bitsim.lane_events" - ev0
      in
      (db, wall, events)
    in
    let sdb, scalar_wall_s, s_events = run Sfi_timing.Characterize.Scalar in
    let pdb, packed_wall_s, p_events = run Sfi_timing.Characterize.Packed in
    if Marshal.to_string sdb [] <> Marshal.to_string pdb [] then
      failwith "kernel compare: packed database differs from scalar";
    let per_sec ev wall = float_of_int ev /. Float.max 1e-9 wall in
    let r =
      {
        kernel_cycles = cycles;
        scalar_wall_s;
        packed_wall_s;
        scalar_events_per_sec = per_sec s_events scalar_wall_s;
        packed_events_per_sec = per_sec p_events packed_wall_s;
        kernel_speedup = scalar_wall_s /. Float.max 1e-9 packed_wall_s;
      }
    in
    Printf.printf
      "kernel compare: %d cycles/class, scalar %.2f s (%.2f Mevents/s), packed %.2f s \
       (%.2f Mevents/s), %.2fx, databases bit-identical\n%!"
      cycles scalar_wall_s
      (r.scalar_events_per_sec /. 1e6)
      packed_wall_s
      (r.packed_events_per_sec /. 1e6)
      r.kernel_speedup;
    Some r
  end

(* ---------- parallel smoke: serial vs pooled sweep ---------- *)

type smoke = {
  smoke_points : int;
  smoke_trials : int;
  smoke_jobs : int;
  serial_wall_s : float;
  parallel_wall_s : float;
}

(* Bit-identity through the versioned codec: the sfi-point/1 writer
   round-trips doubles exactly (nan as null), so equal strings mean equal
   points — one comparison shared with the golden tests instead of a
   hand-maintained field list. *)
let points_equal a b =
  let render pts =
    Sfi_fi.Campaign.Point_json.to_string (Sfi_fi.Campaign.Point_json.of_sweep pts)
  in
  render a = render b

(* Deterministic obs fingerprint of a region: counters and histograms are
   cumulative, so subtract the before-snapshot name by name. Spans and
   ~det:false metrics are excluded, same as [Sfi_obs.det_signature]. *)
let det_obs_delta before after =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun e -> Hashtbl.replace tbl e.Sfi_obs.entry_name e.Sfi_obs.entry_value)
    before;
  List.filter_map
    (fun e ->
      if not e.Sfi_obs.entry_det then None
      else
        let prev = Hashtbl.find_opt tbl e.Sfi_obs.entry_name in
        match (e.Sfi_obs.entry_value, prev) with
        | Sfi_obs.Counter_v v, Some (Sfi_obs.Counter_v v0) ->
          Some (e.Sfi_obs.entry_name, [ v - v0 ])
        | Sfi_obs.Counter_v v, _ -> Some (e.Sfi_obs.entry_name, [ v ])
        | Sfi_obs.Hist_v h, prev ->
          let c0, s0, b0 =
            match prev with
            | Some (Sfi_obs.Hist_v h0) -> (h0.count, h0.sum, h0.buckets)
            | _ -> (0, 0, [])
          in
          let pairs =
            h.buckets
            |> List.map (fun (b, c) ->
                   (b, c - Option.value ~default:0 (List.assoc_opt b b0)))
            |> List.filter (fun (_, c) -> c <> 0)
            |> List.concat_map (fun (b, c) -> [ b; c ])
          in
          Some (e.Sfi_obs.entry_name, (h.count - c0) :: (h.sum - s0) :: pairs)
        | Sfi_obs.Span_v _, _ -> None)
    after

(* One fast model-C sweep run twice — jobs = 1 then jobs = default — to
   measure the pool's wall-time gain and assert the determinism contract
   end to end. *)
let parallel_smoke () =
  let flow = Flow.create ~config:{ Flow.default_config with Flow.char_cycles = 400 } () in
  let bench = Sfi_kernels.Median.create ~n:17 () in
  let fsta = Flow.sta_limit_mhz flow ~vdd:0.7 in
  let model = Flow.model_c flow ~vdd:0.7 ~sigma:0.010 () in
  let freqs = List.map (fun r -> fsta *. r) [ 1.02; 1.10; 1.18; 1.26 ] in
  let trials = 8 in
  let run jobs =
    let spec =
      Sfi_fi.Campaign.Spec.(default |> with_trials trials |> with_jobs jobs)
    in
    let t0 = Unix.gettimeofday () in
    let pts = Sfi_fi.Campaign.run_sweep spec ~bench ~model ~freqs_mhz:freqs in
    (pts, Unix.gettimeofday () -. t0)
  in
  ignore (run 1) (* warm the reference-cycle cache out of the timed region *);
  let obs_start = Sfi_obs.snapshot () in
  let serial_pts, serial_wall_s = run 1 in
  let obs_mid = Sfi_obs.snapshot () in
  let serial_obs = det_obs_delta obs_start obs_mid in
  let jobs = Pool.default_jobs () in
  let parallel_pts, parallel_wall_s = run jobs in
  let parallel_obs = det_obs_delta obs_mid (Sfi_obs.snapshot ()) in
  if not (points_equal serial_pts parallel_pts) then
    failwith "parallel smoke: jobs=1 and jobs=N produced different points";
  if Sfi_obs.enabled () && serial_obs <> parallel_obs then
    failwith "parallel smoke: obs det counters diverged between jobs=1 and jobs=N";
  Printf.printf
    "parallel smoke: %d points x %d trials, serial %.2f s, %d job(s) %.2f s (%.2fx), \
     results bit-identical\n%!"
    (List.length freqs) trials serial_wall_s jobs parallel_wall_s
    (serial_wall_s /. Float.max 1e-9 parallel_wall_s);
  {
    smoke_points = List.length freqs;
    smoke_trials = trials;
    smoke_jobs = jobs;
    serial_wall_s;
    parallel_wall_s;
  }

(* ---------- adaptive vs fixed: trial counts and wall-time savings ---------- *)

type adaptive_cmp = {
  cmp_points : int;
  cmp_ci_target : float;
  fixed_trials_total : int;
  adaptive_trials_total : int;
  fixed_wall_s : float;
  adaptive_wall_s : float;
  max_rate_dev : float;  (* max |correct_rate_adaptive - correct_rate_fixed| *)
}

(* The tentpole's payoff, measured: a fixed-count sweep against the
   adaptive engine with the same ceiling and ci_target 0.05 over a grid
   spanning the safe region, the transition and deep failure. Points
   whose Wilson interval tightens early (the extremes) stop before the
   ceiling; the transition escalates to it. The recorded rate deviation
   bounds the accuracy cost of stopping early. *)
let adaptive_vs_fixed () =
  let flow = Flow.create ~config:{ Flow.default_config with Flow.char_cycles = 400 } () in
  let bench = Sfi_kernels.Median.create ~n:17 () in
  let fsta = Flow.sta_limit_mhz flow ~vdd:0.7 in
  let model = Flow.model_c flow ~vdd:0.7 ~sigma:0.010 () in
  let freqs = List.map (fun r -> fsta *. r) [ 0.95; 1.05; 1.12; 1.20; 1.30 ] in
  let ceiling = 64 and ci_target = 0.05 in
  let module Spec = Sfi_fi.Campaign.Spec in
  let fixed_spec = Spec.with_trials ceiling Spec.default in
  let adaptive_spec =
    Spec.with_adaptive ~batch:16 ~max_trials:ceiling ~ci_target Spec.default
  in
  ignore (Sfi_fi.Campaign.reference_cycles bench) (* warm, out of the timed region *);
  let run spec =
    let t0 = Unix.gettimeofday () in
    let pts = Sfi_fi.Campaign.run_sweep spec ~bench ~model ~freqs_mhz:freqs in
    (pts, Unix.gettimeofday () -. t0)
  in
  let fixed_pts, fixed_wall_s = run fixed_spec in
  let adaptive_pts, adaptive_wall_s = run adaptive_spec in
  let total pts =
    List.fold_left (fun acc (p : Sfi_fi.Campaign.point) -> acc + p.Sfi_fi.Campaign.trials) 0 pts
  in
  let max_rate_dev =
    List.fold_left2
      (fun acc (f : Sfi_fi.Campaign.point) (a : Sfi_fi.Campaign.point) ->
        Float.max acc
          (Float.abs (f.Sfi_fi.Campaign.correct_rate -. a.Sfi_fi.Campaign.correct_rate)))
      0. fixed_pts adaptive_pts
  in
  let r =
    {
      cmp_points = List.length freqs;
      cmp_ci_target = ci_target;
      fixed_trials_total = total fixed_pts;
      adaptive_trials_total = total adaptive_pts;
      fixed_wall_s;
      adaptive_wall_s;
      max_rate_dev;
    }
  in
  Printf.printf
    "adaptive vs fixed: %d points, fixed %d trials %.2f s, adaptive %d trials %.2f s \
     (%.0f%% of the trials, %.2fx wall), max correct-rate deviation %.3f\n%!"
    r.cmp_points r.fixed_trials_total fixed_wall_s r.adaptive_trials_total
    adaptive_wall_s
    (100. *. float_of_int r.adaptive_trials_total /. float_of_int (max 1 r.fixed_trials_total))
    (fixed_wall_s /. Float.max 1e-9 adaptive_wall_s)
    r.max_rate_dev;
  r

(* ---------- fast-forward vs full replay ---------- *)

type ff_cmp = {
  ff_trials : int;
  ff_freq_mhz : float;
  ff_elided : int;
  ff_restores : int;
  full_wall_s : float;
  ff_wall_s : float;
}

(* The snapshot fast-forward payoff, measured where it matters: a
   model-C k-means point just past the provable no-fault region, where
   most trials are fault-free and full replay burns its time proving
   that one ISS run at a time. The analytic first-fault sampler elides
   those trials outright; the rest restore a snapshot and simulate only
   the suffix. Bit-identity is asserted through the same sfi-point/1
   rendering the golden tests use; recording and reference-cycle costs
   are warmed out of the timed region (they are one-time and cached). *)
let fastforward_compare () =
  let flow = Flow.create ~config:{ Flow.default_config with Flow.char_cycles = 400 } () in
  let bench =
    match Sfi_kernels.Registry.by_name "kmeans" with
    | Some b -> b
    | None -> failwith "fastforward compare: kmeans not in registry"
  in
  let fsta = Flow.sta_limit_mhz flow ~vdd:0.7 in
  let model = Flow.model_c flow ~vdd:0.7 ~sigma:0.010 () in
  let ref_cycles = Sfi_fi.Campaign.reference_cycles bench in
  (* warm the snapshot trace out of the timed region (one-time, cached) *)
  (match
     Sfi_fi.Fastforward.trace_for ~bench
       ~stride:(Sfi_fi.Fastforward.stride_for ~ref_cycles)
   with
  | Some _ -> ()
  | None -> failwith "fastforward compare: kmeans reference run did not exit");
  (* The rare-fault operating point: just past the injector's provable
     no-fault boundary, which bisection pins to a fraction of a MHz.
     kmeans fires tens of thousands of hooks per run, so even here only
     ~3 in 4 trials stay fault-free — any higher and nearly every trial
     faults, erasing the regime this comparison is about. *)
  let freq_mhz =
    let cannot f =
      Sfi_fi.Injector.cannot_inject
        (Sfi_fi.Injector.create ~count_obs:false ~model ~freq_mhz:f
           ~rng:(Sfi_util.Rng.of_int 1) ())
    in
    let lo = ref (fsta *. 0.9) and hi = ref (fsta *. 1.1) in
    for _ = 1 to 40 do
      let mid = 0.5 *. (!lo +. !hi) in
      if cannot mid then lo := mid else hi := mid
    done;
    !hi *. 1.0002
  in
  let trials = 24 in
  let module Spec = Sfi_fi.Campaign.Spec in
  (* One worker on both sides: this compares elision against full
     replay, and domain-scheduling overhead on small hosts would only
     add the same noise to both walls (the pool has its own smoke). *)
  let spec mode =
    Spec.(
      default |> with_trials trials |> with_seed 2 |> with_jobs 1
      |> with_fastforward mode)
  in
  let run mode =
    let t0 = Unix.gettimeofday () in
    let p = Sfi_fi.Campaign.run (spec mode) ~bench ~model ~freq_mhz in
    (p, Unix.gettimeofday () -. t0)
  in
  (* Best-of-3 walls, like the ISS compare: runs are deterministic, so
     any rep disagreeing is a hard failure and the work counters divide
     exactly by the rep count. *)
  Gc.compact ();
  let reps = 3 in
  let best mode =
    let p = ref None and best = ref infinity in
    for _ = 1 to reps do
      let q, w = run mode in
      (match !p with
      | None -> p := Some q
      | Some p0 ->
        if not (points_equal [ p0 ] [ q ]) then
          failwith "fastforward compare: repeated run diverged");
      if w < !best then best := w
    done;
    (Option.get !p, !best)
  in
  let c_elided = Sfi_obs.Counter.make ~det:false "fastforward.trials_elided" in
  let c_restores = Sfi_obs.Counter.make ~det:false "fastforward.restores" in
  let e0 = Sfi_obs.Counter.value c_elided in
  let r0 = Sfi_obs.Counter.value c_restores in
  let p_full, full_wall_s = best Spec.Off in
  let p_ff, ff_wall_s = best Spec.On in
  if not (points_equal [ p_full ] [ p_ff ]) then
    failwith "fastforward compare: fast-forwarded point differs from full replay";
  let r =
    {
      ff_trials = trials;
      ff_freq_mhz = freq_mhz;
      ff_elided = (Sfi_obs.Counter.value c_elided - e0) / reps;
      ff_restores = (Sfi_obs.Counter.value c_restores - r0) / reps;
      full_wall_s;
      ff_wall_s;
    }
  in
  Printf.printf
    "fastforward compare: kmeans x %d trials at %.0f MHz, full replay %.2f s, \
     fast-forward %.2f s (%.2fx; %d elided, %d suffix restores), results \
     bit-identical\n%!"
    r.ff_trials r.ff_freq_mhz full_wall_s ff_wall_s
    (full_wall_s /. Float.max 1e-9 ff_wall_s)
    r.ff_elided r.ff_restores;
  r

(* ---------- cache round-trip: cold vs warm characterization ---------- *)

type cache_rt = {
  cache_entries : int;
  cold_wall_s : float;
  warm_wall_s : float;
}

(* Cold-vs-warm wall time of the persistent characterization cache: two
   identical flows time [Flow.char_db] against an empty and then a
   populated cache directory. The warm run must load instead of
   recompute — a collapse of the speedup here means the content
   fingerprint went unstable between identical runs. *)
let cache_roundtrip () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sfi-bench-cache.%d" (Unix.getpid ()))
  in
  Sfi_cache.set_dir (Some dir);
  let time_char () =
    (* A fresh flow each time: the in-memory memo must not serve the
       warm run — only the disk store may. *)
    let flow = Flow.create ~config:{ Flow.default_config with Flow.char_cycles = 1500 } () in
    let t0 = Unix.gettimeofday () in
    ignore (Flow.char_db flow ~vdd:0.7);
    Unix.gettimeofday () -. t0
  in
  let cold_wall_s = time_char () in
  let warm_wall_s = time_char () in
  let cache_entries = List.length (Sfi_cache.scan ~dir) in
  ignore (Sfi_cache.prune ~all:true ~dir () : int);
  (try Unix.rmdir dir with Unix.Unix_error _ -> () | Sys_error _ -> ());
  Sfi_cache.set_dir None;
  Printf.printf
    "cache roundtrip: cold %.2f s, warm %.2f s (%.1fx), %d entr%s\n%!"
    cold_wall_s warm_wall_s
    (cold_wall_s /. Float.max 1e-9 warm_wall_s)
    cache_entries
    (if cache_entries = 1 then "y" else "ies");
  { cache_entries; cold_wall_s; warm_wall_s }

(* ---------- BENCH.json ---------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_bench_json ~path ~scale_label ~experiments ~bechamel ~smoke ~perf ~cache
    ~adaptive ~kernels ~iss ~fastforward =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"sfi-bench/8\",\n";
  add "  \"generated_unix\": %.0f,\n" (Unix.time ());
  add "  \"jobs\": %d,\n" (Pool.default_jobs ());
  add "  \"recommended_domains\": %d,\n" (Domain.recommended_domain_count ());
  add "  \"scale\": \"%s\",\n" (json_escape scale_label);
  (* Full observability snapshot (schema sfi-obs/1 entries) so the
     trajectory tracker can diff work counts, not just wall times. *)
  add "  \"obs\": %s,\n" (Sfi_obs.Json.to_string (Sfi_obs.json_of_snapshot ()));
  add "  \"experiments\": [";
  List.iteri
    (fun i (id, dt) ->
      add "%s\n    {\"id\": \"%s\", \"wall_s\": %.3f}" (if i = 0 then "" else ",")
        (json_escape id) dt)
    experiments;
  add "%s],\n" (if experiments = [] then "" else "\n  ");
  add "  \"bechamel_ns_per_run\": [";
  List.iteri
    (fun i (name, ns) ->
      add "%s\n    {\"name\": \"%s\", \"ns\": %.1f}" (if i = 0 then "" else ",")
        (json_escape name) ns)
    bechamel;
  add "%s],\n" (if bechamel = [] then "" else "\n  ");
  (match perf with
  | None -> add "  \"perf\": null,\n"
  | Some p ->
    (* sfi-bench/7: the old, misleadingly named "insns_per_sec" (it
       timed injector hook calls, not retired instructions) is now
       "injector_hook_calls_per_sec"; real ISS throughput lives in the
       "iss" object below. *)
    add
      "  \"perf\": {\"events_per_sec\": %.0f, \"injector_hook_calls_per_sec\": %.0f, \
       \"characterize_wall_s\": %.3f, \"campaign_wall_s\": %.3f},\n"
      p.events_per_sec p.injector_hook_calls_per_sec p.characterize_wall_s
      p.campaign_wall_s);
  (match iss with
  | None -> add "  \"iss\": null,\n"
  | Some i ->
    add
      "  \"iss\": {\"insns_per_run\": %d, \"interp_wall_s\": %.6f, \
       \"compiled_wall_s\": %.6f, \"interp_insns_per_sec\": %.0f, \
       \"compiled_insns_per_sec\": %.0f, \"speedup\": %.2f, \"identical_stats\": true},\n"
      i.iss_insns i.interp_wall_s i.compiled_wall_s i.interp_insns_per_sec
      i.compiled_insns_per_sec i.iss_speedup);
  (match cache with
  | None -> add "  \"cache\": null,\n"
  | Some c ->
    add
      "  \"cache\": {\"entries\": %d, \"cold_wall_s\": %.3f, \"warm_wall_s\": %.3f, \
       \"speedup\": %.2f},\n"
      c.cache_entries c.cold_wall_s c.warm_wall_s
      (c.cold_wall_s /. Float.max 1e-9 c.warm_wall_s));
  (match kernels with
  | None -> add "  \"kernels\": null,\n"
  | Some k ->
    add
      "  \"kernels\": {\"cycles\": %d, \"scalar_wall_s\": %.3f, \"packed_wall_s\": %.3f, \
       \"scalar_events_per_sec\": %.0f, \"packed_events_per_sec\": %.0f, \
       \"speedup\": %.2f, \"identical_db\": true},\n"
      k.kernel_cycles k.scalar_wall_s k.packed_wall_s k.scalar_events_per_sec
      k.packed_events_per_sec k.kernel_speedup);
  (match adaptive with
  | None -> add "  \"adaptive\": null,\n"
  | Some a ->
    add
      "  \"adaptive\": {\"points\": %d, \"ci_target\": %.3f, \"fixed_trials\": %d, \
       \"adaptive_trials\": %d, \"trials_ratio\": %.3f, \"fixed_wall_s\": %.3f, \
       \"adaptive_wall_s\": %.3f, \"wall_speedup\": %.2f, \"max_rate_dev\": %.4f},\n"
      a.cmp_points a.cmp_ci_target a.fixed_trials_total a.adaptive_trials_total
      (float_of_int a.adaptive_trials_total
      /. Float.max 1. (float_of_int a.fixed_trials_total))
      a.fixed_wall_s a.adaptive_wall_s
      (a.fixed_wall_s /. Float.max 1e-9 a.adaptive_wall_s)
      a.max_rate_dev);
  (* sfi-bench/8: the fast-forward comparison object *)
  (match fastforward with
  | None -> add "  \"fastforward\": null,\n"
  | Some (f : ff_cmp) ->
    add
      "  \"fastforward\": {\"bench\": \"kmeans\", \"trials\": %d, \"freq_mhz\": %.1f, \
       \"elided\": %d, \"restores\": %d, \"full_wall_s\": %.3f, \
       \"fastforward_wall_s\": %.3f, \"speedup\": %.2f, \"identical_results\": true},\n"
      f.ff_trials f.ff_freq_mhz f.ff_elided f.ff_restores f.full_wall_s f.ff_wall_s
      (f.full_wall_s /. Float.max 1e-9 f.ff_wall_s));
  (match smoke with
  | None -> add "  \"parallel_smoke\": null\n"
  | Some s ->
    add
      "  \"parallel_smoke\": {\"points\": %d, \"trials\": %d, \"jobs\": %d, \
       \"serial_wall_s\": %.3f, \"parallel_wall_s\": %.3f, \"speedup\": %.2f, \
       \"identical_results\": true}\n"
      s.smoke_points s.smoke_trials s.smoke_jobs s.serial_wall_s s.parallel_wall_s
      (s.serial_wall_s /. Float.max 1e-9 s.parallel_wall_s));
  add "}\n";
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Buffer.contents buf));
  Printf.printf "wrote %s\n%!" path

(* ---------- driver ---------- *)

let () =
  (* --jobs N / --jobs=N is consumed here; everything else flows through. *)
  let rec parse = function
    | [] -> []
    | ("--jobs" | "-j") :: v :: rest -> (
      match int_of_string_opt v with
      | Some n when n >= 1 ->
        Pool.set_default_jobs n;
        parse rest
      | _ ->
        prerr_endline "bad --jobs value";
        exit 2)
    | a :: rest when String.length a > 7 && String.sub a 0 7 = "--jobs=" -> (
      match int_of_string_opt (String.sub a 7 (String.length a - 7)) with
      | Some n when n >= 1 ->
        Pool.set_default_jobs n;
        parse rest
      | _ ->
        prerr_endline "bad --jobs value";
        exit 2)
    | a :: rest -> a :: parse rest
  in
  let args = parse (List.tl (Array.to_list Sys.argv)) in
  let paper = List.mem "--paper" args in
  let bechamel_only = List.mem "--bechamel" args in
  let skip_bechamel = List.mem "--no-bechamel" args in
  let smoke_only = List.mem "--smoke" args in
  let ids = List.filter (fun a -> String.length a > 0 && a.[0] <> '-') args in
  (* The whole harness runs instrumented: work counters cost a few int
     increments per hot loop and feed the "obs" object in BENCH.json. *)
  Sfi_obs.set_enabled true;
  Printf.printf "parallel engine: %d job(s) (of %d recommended domains)\n%!"
    (Pool.default_jobs ())
    (Domain.recommended_domain_count ());
  if smoke_only then begin
    let kernels = kernel_compare ~cycles:600 () in
    (match kernels with
    | Some k when k.kernel_speedup < 1.0 ->
      failwith "kernel compare: packed engine slower than scalar"
    | _ -> ());
    let iss = iss_compare () in
    if iss.iss_speedup < 1.0 then
      failwith "iss compare: compiled engine slower than the interpreter";
    let smoke = parallel_smoke () in
    let adaptive = adaptive_vs_fixed () in
    let ff = fastforward_compare () in
    if ff.full_wall_s /. Float.max 1e-9 ff.ff_wall_s < 2.0 then
      failwith "fastforward compare: less than 2x faster than full replay";
    write_bench_json ~path:"BENCH.json" ~scale_label:"smoke" ~experiments:[] ~bechamel:[]
      ~smoke:(Some smoke) ~perf:None ~cache:None ~adaptive:(Some adaptive) ~kernels
      ~iss:(Some iss) ~fastforward:(Some ff)
  end
  else begin
    let scale = if paper then Experiments.paper else Experiments.fast in
    (* Kernels first: the scalar-vs-packed ratio is measured on a fresh
       process heap, before experiment fixtures accumulate. *)
    let kernels = if bechamel_only then None else kernel_compare ~cycles:2000 () in
    let timings =
      if bechamel_only then []
      else begin
        Printf.printf "regenerating %s at %s scale\n\n%!"
          (if ids = [] then "all tables and figures" else String.concat ", " ids)
          scale.Experiments.label;
        let ctx = Experiments.make_ctx scale in
        Experiments.run ctx ids
      end
    in
    let bech_rows = if not skip_bechamel then bechamel_suite () else [] in
    let perf = if bechamel_only then None else Some (perf_metrics ()) in
    let iss = if bechamel_only then None else Some (iss_compare ()) in
    let cache = if bechamel_only then None else Some (cache_roundtrip ()) in
    let smoke = parallel_smoke () in
    let adaptive = if bechamel_only then None else Some (adaptive_vs_fixed ()) in
    let fastforward = if bechamel_only then None else Some (fastforward_compare ()) in
    (match perf with
    | Some p -> p.campaign_wall_s <- smoke.serial_wall_s
    | None -> ());
    write_bench_json ~path:"BENCH.json"
      ~scale_label:(if bechamel_only then "bechamel" else scale.Experiments.label)
      ~experiments:timings ~bechamel:bech_rows ~smoke:(Some smoke) ~perf ~cache ~adaptive
      ~kernels ~iss ~fastforward
  end
