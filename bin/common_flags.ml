(* Command-line options shared by the sfi subcommands, so that
   campaign/experiments/flow/stats parse -j/--jobs, --seed, --cache-dir,
   --obs and the adaptive-campaign flags identically. *)

open Cmdliner
module Spec = Sfi_fi.Campaign.Spec

(* --jobs: overrides the process-wide default job count (otherwise
   SFI_JOBS or all cores) before any pool is created. *)
let jobs_arg =
  Arg.(value
       & opt (some int) None
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains for Monte-Carlo and characterization fan-out \
                 (default: \\$SFI_JOBS or all cores).")

let apply_jobs jobs =
  Option.iter
    (fun n ->
      if n < 1 then (
        Printf.eprintf "sfi: --jobs must be >= 1 (got %d)\n" n;
        exit 2);
      Sfi_util.Pool.set_default_jobs n)
    jobs;
  Printf.printf "parallel engine: %d job(s) (of %d recommended domains)\n%!"
    (Sfi_util.Pool.default_jobs ())
    (Domain.recommended_domain_count ())

(* --obs: enables the observability registry for the run and writes the
   merged counter/histogram/span snapshot as JSONL on completion. *)
let obs_arg =
  Arg.(value
       & opt (some string) None
       & info [ "obs" ] ~docv:"FILE"
           ~doc:"Record observability counters during the run and write the merged \
                 snapshot to $(docv) as JSONL (schema sfi-obs/1).")

let with_obs obs f =
  (match obs with Some _ -> Sfi_obs.set_enabled true | None -> ());
  let r = f () in
  (match obs with
  | None -> ()
  | Some path ->
    Sfi_obs.write_jsonl
      ~meta:
        [
          ("jobs", Sfi_obs.Json.Int (Sfi_util.Pool.default_jobs ()));
          ("generated_unix", Sfi_obs.Json.Int (int_of_float (Unix.time ())));
        ]
      path;
    Printf.printf "wrote %s\n" path);
  r

(* --cache-dir: enables the persistent on-disk cache for characterization
   databases and reference cycle counts. Off unless given here or through
   SFI_CACHE_DIR. *)
let cache_dir_arg =
  Arg.(value
       & opt (some string) None
       & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Persist characterization databases and benchmark reference cycle \
                 counts under $(docv) and reuse matching entries on later runs \
                 (default: \\$SFI_CACHE_DIR, else disabled).")

let apply_cache_dir dir = Option.iter (fun d -> Sfi_cache.set_dir (Some d)) dir

(* --engine: selects the characterization kernel. Results are
   bit-identical either way (pinned by the differential tests), so this
   is purely a performance knob; it does not enter cache fingerprints. *)
let engine_arg =
  let module C = Sfi_timing.Characterize in
  Arg.(value
       & opt (some (enum [ ("auto", C.Auto); ("scalar", C.Scalar); ("packed", C.Packed) ]))
           None
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Characterization kernel: $(b,packed) evaluates 63 trials per \
                 gate operation bit-parallel, $(b,scalar) runs one DTA cycle \
                 per trial, $(b,auto) picks packed when the platform supports \
                 it. Databases are bit-identical across engines (default: \
                 \\$SFI_ENGINE, else auto).")

let apply_engine engine =
  Option.iter Sfi_timing.Characterize.set_default_engine engine

(* --cpu-engine: selects the ISS engine. The compiled engine is
   cycle-for-cycle bit-identical to the interpreter (pinned by the
   engine-parity tests), so like --engine this is purely a performance
   knob; it does not enter cache fingerprints or checkpoints. *)
let cpu_engine_arg =
  let module C = Sfi_sim.Cpu in
  Arg.(value
       & opt (some (enum [ ("auto", C.Auto); ("interp", C.Interp); ("compiled", C.Compiled) ]))
           None
       & info [ "cpu-engine" ] ~docv:"ENGINE"
           ~doc:"ISS engine: $(b,compiled) executes basic blocks as cached \
                 threaded code, $(b,interp) decodes and dispatches one \
                 instruction at a time, $(b,auto) picks compiled. Cycle \
                 counts, outcomes and injected-fault streams are bit-identical \
                 across engines (default: \\$SFI_CPU_ENGINE, else auto).")

let apply_cpu_engine engine = Option.iter Sfi_sim.Cpu.set_default_engine engine

(* ---------- campaign spec flags ---------- *)

let seed_arg =
  Arg.(value
       & opt int Spec.default.Spec.seed
       & info [ "seed" ] ~docv:"N"
           ~doc:"Root RNG seed; per-trial streams are split from it deterministically.")

let adaptive_arg =
  Arg.(value
       & flag
       & info [ "adaptive" ]
           ~doc:"Adaptive-precision sampling: run trials in batches and stop each \
                 point as soon as its 95% confidence intervals reach --ci-target, \
                 escalating up to the trial ceiling otherwise.")

let batch_arg =
  Arg.(value
       & opt int 16
       & info [ "batch" ] ~docv:"N"
           ~doc:"Trials per adaptive batch (stopping decisions happen between \
                 batches; results do not depend on the batch size only via \
                 where a point stops).")

let max_trials_arg =
  Arg.(value
       & opt (some int) None
       & info [ "max-trials" ] ~docv:"N"
           ~doc:"Adaptive trial ceiling per point (default: the nominal trial \
                 count of the sweep or figure).")

let ci_target_arg =
  Arg.(value
       & opt float 0.05
       & info [ "ci-target" ] ~docv:"W"
           ~doc:"Adaptive precision target: maximum half-width of the finished/\
                 correct-rate 95% Wilson intervals (and relative standard error \
                 of the mean metrics).")

let checkpoint_arg =
  Arg.(value
       & opt (some string) None
       & info [ "checkpoint" ] ~docv:"FILE"
           ~doc:"Stream completed trial batches to $(docv) (CRC-validated JSONL, \
                 schema sfi-ckpt/1); a killed run restarted with the same \
                 parameters resumes from it bit-identically.")

let fastforward_arg =
  Arg.(value
       & opt (enum [ ("auto", Spec.Auto); ("off", Spec.Off); ("on", Spec.On) ])
           Spec.Auto
       & info [ "fastforward" ] ~docv:"MODE"
           ~doc:"Snapshot fast-forward: $(b,on) records sparse snapshots of the \
                 fault-free reference run (cached as sfi-snap/1), resolves \
                 provably fault-free trials analytically and simulates only \
                 the post-first-fault suffix of the rest; $(b,off) fully \
                 replays every trial. Results, det signatures and checkpoints \
                 are bit-identical across modes, so like the engine knobs this \
                 is purely a performance switch ($(b,auto): \
                 \\$SFI_FASTFORWARD, else off).")

(* Builds the campaign spec from the shared flags. [fixed_trials] is the
   sweep's nominal per-point count (e.g. the campaign --trials value);
   when absent the policy template keeps Spec.default's count and the
   caller scales per figure with [Spec.with_nominal_trials].

   Adaptive ceiling: an explicit --max-trials wins; otherwise the
   nominal count itself is the ceiling (so the adaptive engine can only
   save trials relative to a fixed run, never spend more). Without a
   nominal count the template ceiling starts at the batch size and
   [with_nominal_trials] lifts it to each figure's count. *)
let make_spec ?fixed_trials ~seed ~adaptive ~batch ~max_trials ~ci_target ~checkpoint
    ~fastforward () =
  let spec = Spec.default |> Spec.with_seed seed |> Spec.with_fastforward fastforward in
  let spec =
    if adaptive then begin
      let ceiling =
        match (max_trials, fixed_trials) with
        | Some m, _ -> m
        | None, Some n -> n
        | None, None -> batch
      in
      Spec.with_adaptive ~batch ~max_trials:(max batch ceiling) ~ci_target spec
    end
    else
      match fixed_trials with
      | Some n -> Spec.with_trials n spec
      | None -> spec
  in
  match checkpoint with
  | Some path -> Spec.with_checkpoint path spec
  | None -> spec

(* The spec flags as one cmdliner bundle. Evaluates to a closure so each
   subcommand can feed in its own nominal trial count (campaign's
   --trials value; experiments leave it to the per-figure scaling).
   Invalid combinations (non-positive counts or targets) exit 2 with the
   validation message. *)
let spec_flags =
  let build seed adaptive batch max_trials ci_target checkpoint fastforward
      ?fixed_trials () =
    try
      make_spec ?fixed_trials ~seed ~adaptive ~batch ~max_trials ~ci_target ~checkpoint
        ~fastforward ()
    with Invalid_argument msg ->
      Printf.eprintf "sfi: %s\n" msg;
      exit 2
  in
  Term.(const build $ seed_arg $ adaptive_arg $ batch_arg $ max_trials_arg
        $ ci_target_arg $ checkpoint_arg $ fastforward_arg)

(* ---------- fault-model flags ---------- *)

(* --model: any key in the Fi.Model registry (case-insensitive), looked
   up at run time so externally registered models parse too. *)
let model_arg =
  Arg.(value
       & opt string "C"
       & info [ "model" ] ~docv:"KEY"
           ~doc:"Fault model by registry key (see $(b,sfi models)): the paper's \
                 A, B, B+, C, C-corr, or an attack family (glitch, skip, \
                 opcode, state). Case-insensitive.")

(* --model-param: repeatable NAME=VALUE overrides for the model's
   registered parameters; values parse as int, then float, then bool,
   else string, and the registry validates names and types. *)
let model_param_arg =
  Arg.(value
       & opt_all string []
       & info [ "model-param" ] ~docv:"NAME=VALUE"
           ~doc:"Override one model parameter (repeatable), e.g. \
                 --model glitch --model-param start=200 --model-param \
                 drop_mv=150. Names and types are validated against the \
                 model's registry entry.")

let parse_model_params specs =
  let parse_value v =
    match int_of_string_opt v with
    | Some i -> Sfi_obs.Json.Int i
    | None -> (
      match float_of_string_opt v with
      | Some f -> Sfi_obs.Json.Float f
      | None -> (
        match v with
        | "true" -> Sfi_obs.Json.Bool true
        | "false" -> Sfi_obs.Json.Bool false
        | s -> Sfi_obs.Json.String s))
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | spec :: rest -> (
      match String.index_opt spec '=' with
      | Some i when i > 0 ->
        let name = String.sub spec 0 i in
        let v = String.sub spec (i + 1) (String.length spec - i - 1) in
        go ((name, parse_value v) :: acc) rest
      | _ -> Error (Printf.sprintf "bad --model-param %S (expected NAME=VALUE)" spec))
  in
  go [] specs
