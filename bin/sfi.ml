(* Command-line interface to the statistical fault injection toolkit. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The flags shared across subcommands (-j/--jobs, --seed, --obs,
   --cache-dir, --adaptive/--ci-target/--checkpoint, ...) live in
   Common_flags so every subcommand parses them identically. *)
let jobs_arg = Common_flags.jobs_arg

let apply_jobs = Common_flags.apply_jobs

let obs_arg = Common_flags.obs_arg

let with_obs = Common_flags.with_obs

let cache_dir_arg = Common_flags.cache_dir_arg

let apply_cache_dir = Common_flags.apply_cache_dir

let engine_arg = Common_flags.engine_arg

let apply_engine = Common_flags.apply_engine

let cpu_engine_arg = Common_flags.cpu_engine_arg

let apply_cpu_engine = Common_flags.apply_cpu_engine

(* ---------- sfi experiments ---------- *)

let experiments_cmd =
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (default: all).")
  in
  let paper =
    Arg.(value & flag & info [ "paper" ] ~doc:"Paper-scale Monte-Carlo settings (slow).")
  in
  let list_only = Arg.(value & flag & info [ "list" ] ~doc:"List experiment ids and exit.") in
  let run ids paper list_only jobs obs cache_dir engine cpu_engine
      (spec_flags : ?fixed_trials:int -> unit -> Sfi_fi.Campaign.Spec.t) =
    if list_only then
      List.iter
        (fun (id, desc) -> Printf.printf "%-18s %s\n" id desc)
        Sfi_core.Experiments.all
    else begin
      apply_jobs jobs;
      apply_cache_dir cache_dir;
      apply_engine engine;
      apply_cpu_engine cpu_engine;
      with_obs obs @@ fun () ->
      let scale = if paper then Sfi_core.Experiments.paper else Sfi_core.Experiments.fast in
      (* No nominal count here: each figure scales the policy template to
         its own trial count (an adaptive template's ceiling follows). *)
      let spec = spec_flags () in
      let ctx = Sfi_core.Experiments.make_ctx ~spec scale in
      ignore (Sfi_core.Experiments.run ctx ids)
    end
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Regenerate the paper's tables and figures.")
    Term.(const run $ ids $ paper $ list_only $ jobs_arg $ obs_arg $ cache_dir_arg
          $ engine_arg $ cpu_engine_arg $ Common_flags.spec_flags)

(* ---------- sfi flow ---------- *)

let flow_cmd =
  let char_cycles =
    Arg.(value & opt int 2000 & info [ "cycles" ] ~doc:"DTA characterization cycles.")
  in
  let vdd = Arg.(value & opt float 0.7 & info [ "vdd" ] ~doc:"Characterization voltage.") in
  let seed =
    Arg.(value
         & opt int Sfi_core.Flow.default_config.Sfi_core.Flow.char_seed
         & info [ "seed" ] ~docv:"N" ~doc:"Characterization RNG seed.")
  in
  let run char_cycles vdd seed jobs obs cache_dir engine =
    apply_jobs jobs;
    apply_cache_dir cache_dir;
    apply_engine engine;
    with_obs obs @@ fun () ->
    let config =
      {
        Sfi_core.Flow.default_config with
        Sfi_core.Flow.char_cycles;
        Sfi_core.Flow.char_seed = seed;
      }
    in
    let flow = Sfi_core.Flow.create ~config () in
    ignore (Sfi_core.Flow.char_db flow ~vdd);
    print_string (Sfi_core.Flow.summary flow);
    Printf.printf "per-class dynamic first-failure frequency [MHz] at %.2f V:\n" vdd;
    let db = Sfi_core.Flow.char_db flow ~vdd in
    List.iter
      (fun cls ->
        Printf.printf "  %-4s %8.1f\n" (Sfi_util.Op_class.name cls)
          (Sfi_timing.Characterize.class_first_failure_mhz db cls ~scale:1.0))
      Sfi_util.Op_class.all
  in
  Cmd.v
    (Cmd.info "flow" ~doc:"Build the gate-level flow and print its timing summary.")
    Term.(const run $ char_cycles $ vdd $ seed $ jobs_arg $ obs_arg $ cache_dir_arg
          $ engine_arg)

(* ---------- sfi asm ---------- *)

let asm_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let run file =
    match Sfi_isa.Asm.assemble (read_file file) with
    | Error e ->
      Printf.eprintf "%s:%d: %s\n" file e.Sfi_isa.Asm.line e.Sfi_isa.Asm.message;
      exit 1
    | Ok program ->
      print_string (Sfi_isa.Program.disassemble program);
      Printf.printf "# entry 0x%x, image limit 0x%x, %d initialized words\n"
        program.Sfi_isa.Program.entry program.Sfi_isa.Program.limit
        (Array.length program.Sfi_isa.Program.words)
  in
  Cmd.v
    (Cmd.info "asm" ~doc:"Assemble an OR1K-subset source file and print the listing.")
    Term.(const run $ file)

(* ---------- sfi run ---------- *)

let run_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let max_cycles =
    Arg.(value & opt int 50_000_000 & info [ "max-cycles" ] ~doc:"Watchdog budget.")
  in
  let mem_size =
    Arg.(value & opt int 65536 & info [ "mem" ] ~doc:"Memory size in bytes (power of two).")
  in
  let dump =
    Arg.(value & opt (some string) None
         & info [ "dump" ] ~docv:"ADDR:COUNT" ~doc:"Dump COUNT words from ADDR after the run.")
  in
  let run file max_cycles mem_size dump cpu_engine =
    apply_cpu_engine cpu_engine;
    let program = Sfi_isa.Asm.assemble_exn (read_file file) in
    let mem = Sfi_sim.Memory.create ~size:mem_size in
    Sfi_sim.Memory.load_program mem program;
    let config = { Sfi_sim.Cpu.default_config with Sfi_sim.Cpu.max_cycles } in
    let stats = Sfi_sim.Cpu.run ~config mem ~entry:program.Sfi_isa.Program.entry in
    let outcome =
      match stats.Sfi_sim.Cpu.outcome with
      | Sfi_sim.Cpu.Exited -> "exited"
      | Sfi_sim.Cpu.Watchdog -> "watchdog"
      | Sfi_sim.Cpu.Trapped m -> "trapped: " ^ m
    in
    Printf.printf "outcome: %s\ncycles: %d\ninstret: %d\nipc: %.3f\nkernel cycles: %d\n"
      outcome stats.Sfi_sim.Cpu.cycles stats.Sfi_sim.Cpu.instret
      (Sfi_sim.Cpu.ipc stats) stats.Sfi_sim.Cpu.kernel_cycles;
    match dump with
    | None -> ()
    | Some spec -> begin
      match String.split_on_char ':' spec with
      | [ a; c ] -> begin
        match (int_of_string_opt a, int_of_string_opt c) with
        | Some addr, Some count ->
          Array.iteri
            (fun i w -> Printf.printf "%08x: %s\n" (addr + (4 * i)) (Sfi_util.U32.to_hex w))
            (Sfi_sim.Memory.read_u32_array mem ~addr ~count)
        | _ -> prerr_endline "bad --dump spec"
      end
      | _ -> prerr_endline "bad --dump spec"
    end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Assemble and execute a program on the cycle-accurate ISS.")
    Term.(const run $ file $ max_cycles $ mem_size $ dump $ cpu_engine_arg)

(* ---------- sfi campaign ---------- *)

let campaign_cmd =
  let bench_name =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"BENCH" ~doc:"median, mat_mult_8bit, mat_mult_16bit, kmeans, dijkstra.")
  in
  let vdd = Arg.(value & opt float 0.7 & info [ "vdd" ]) in
  let sigma_mv = Arg.(value & opt float 10. & info [ "sigma" ] ~doc:"Noise sigma in mV.") in
  let trials = Arg.(value & opt int 50 & info [ "trials" ]) in
  let lo = Arg.(value & opt float 650. & info [ "from" ] ~doc:"Sweep start, MHz.") in
  let hi = Arg.(value & opt float 1000. & info [ "to" ] ~doc:"Sweep end, MHz.") in
  let step = Arg.(value & opt float 25. & info [ "step" ] ~doc:"Sweep step, MHz.") in
  let prob =
    Arg.(value & opt float 1e-6 & info [ "prob" ] ~doc:"Bit-flip probability for model A.")
  in
  let char_cycles = Arg.(value & opt int 2000 & info [ "cycles" ]) in
  let csv =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the sweep as CSV.")
  in
  let json =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Also write the sweep as JSON (schema sfi-point/1).")
  in
  let run bench_name model_name model_params vdd sigma_mv trials lo hi step prob
      char_cycles csv json jobs obs cache_dir engine cpu_engine
      (spec_flags : ?fixed_trials:int -> unit -> Sfi_fi.Campaign.Spec.t) =
    apply_jobs jobs;
    apply_cache_dir cache_dir;
    apply_engine engine;
    apply_cpu_engine cpu_engine;
    with_obs obs @@ fun () ->
    match Sfi_kernels.Registry.by_name bench_name with
    | None ->
      Printf.eprintf "unknown benchmark %s (try: %s)\n" bench_name
        (String.concat ", " Sfi_kernels.Registry.names);
      exit 1
    | Some bench ->
      let config = { Sfi_core.Flow.default_config with Sfi_core.Flow.char_cycles } in
      let flow = Sfi_core.Flow.create ~config () in
      let sigma = sigma_mv /. 1000. in
      let params =
        match Common_flags.parse_model_params model_params with
        | Ok ps -> ps
        | Error e ->
          Printf.eprintf "sfi: %s\n" e;
          exit 1
      in
      (* --prob keeps its historic meaning as model A's parameter; an
         explicit --model-param p=... wins. *)
      let params =
        if String.uppercase_ascii model_name = "A" && not (List.mem_assoc "p" params)
        then ("p", Sfi_obs.Json.Float prob) :: params
        else params
      in
      let model =
        match Sfi_core.Flow.model_by_key ~params flow ~key:model_name ~vdd ~sigma with
        | Ok m -> m
        | Error e ->
          Printf.eprintf "sfi: %s\n" e;
          exit 1
      in
      let spec = spec_flags ~fixed_trials:trials () in
      let rec freqs f = if f > hi +. 1e-9 then [] else f :: freqs (f +. step) in
      let points = Sfi_fi.Campaign.run_sweep spec ~bench ~model ~freqs_mhz:(freqs lo) in
      let t =
        Sfi_util.Table.create
          ~title:
            (Printf.sprintf "%s under model %s at %.2f V, sigma %.0f mV (%s)" bench_name
               (Sfi_fi.Model.key model) vdd sigma_mv
               (Sfi_fi.Campaign.Spec.policy_to_string spec.Sfi_fi.Campaign.Spec.trials))
          [
            ("f [MHz]", Sfi_util.Table.Right);
            ("trials", Sfi_util.Table.Right);
            ("finished", Sfi_util.Table.Right);
            ("correct", Sfi_util.Table.Right);
            ("95% CI", Sfi_util.Table.Right);
            ("FI/kCycle", Sfi_util.Table.Right);
            (bench.Sfi_kernels.Bench.metric_name, Sfi_util.Table.Right);
          ]
      in
      List.iter
        (fun (p : Sfi_fi.Campaign.point) ->
          Sfi_util.Table.add_row t
            [
              Printf.sprintf "%.1f" p.Sfi_fi.Campaign.freq_mhz;
              string_of_int p.Sfi_fi.Campaign.trials;
              Sfi_util.Table.fmt_pct p.Sfi_fi.Campaign.finished_rate;
              Sfi_util.Table.fmt_pct p.Sfi_fi.Campaign.correct_rate;
              Printf.sprintf "[%.2f,%.2f]" p.Sfi_fi.Campaign.ci_low
                p.Sfi_fi.Campaign.ci_high;
              (if p.Sfi_fi.Campaign.any_fault_possible then
                 Printf.sprintf "%.3g" p.Sfi_fi.Campaign.fi_per_kcycle
               else "n/a");
              Sfi_util.Table.fmt_float p.Sfi_fi.Campaign.mean_error;
            ])
        points;
      Sfi_util.Table.print t;
      (match json with
      | None -> ()
      | Some path ->
        let doc =
          Sfi_fi.Campaign.Point_json.of_sweep
            ~meta:
              [
                ("bench", Sfi_obs.Json.String bench_name);
                ("model", Sfi_obs.Json.String (Sfi_fi.Model.to_string model));
                ("vdd", Sfi_obs.Json.Float vdd);
                ("sigma_mv", Sfi_obs.Json.Float sigma_mv);
                ( "policy",
                  Sfi_obs.Json.String
                    (Sfi_fi.Campaign.Spec.policy_to_string
                       spec.Sfi_fi.Campaign.Spec.trials) );
              ]
            points
        in
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc (Sfi_fi.Campaign.Point_json.to_string doc);
            output_char oc '\n');
        Printf.printf "wrote %s\n" path);
      match csv with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc (Sfi_util.Table.to_csv t));
        Printf.printf "wrote %s\n" path
  in
  Cmd.v
    (Cmd.info "campaign" ~doc:"Run a Monte-Carlo fault-injection frequency sweep.")
    Term.(const run $ bench_name $ Common_flags.model_arg $ Common_flags.model_param_arg
          $ vdd $ sigma_mv $ trials $ lo $ hi $ step
          $ prob $ char_cycles $ csv $ json $ jobs_arg $ obs_arg $ cache_dir_arg
          $ engine_arg $ cpu_engine_arg $ Common_flags.spec_flags)

(* ---------- sfi stats ---------- *)

let stats_cmd =
  let file =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"Observability snapshot (JSONL, schema sfi-obs/1) \
                                      written by --obs.")
  in
  let run file =
    let open Sfi_obs.Json in
    let lines =
      String.split_on_char '\n' (read_file file)
      |> List.filter (fun l -> String.trim l <> "")
    in
    let parsed =
      List.filter_map
        (fun l ->
          match parse l with
          | v -> Some v
          | exception Parse_error msg ->
            Printf.eprintf "sfi stats: skipping malformed line (%s)\n" msg;
            None)
        lines
    in
    (match List.find_opt (fun v -> member "schema" v <> None) parsed with
    | Some header ->
      let schema =
        Option.value ~default:"?" (Option.bind (member "schema" header) to_string_opt)
      in
      let jobs = Option.bind (member "jobs" header) to_int in
      Printf.printf "snapshot %s (schema %s%s)\n" file schema
        (match jobs with Some j -> Printf.sprintf ", %d jobs" j | None -> "")
    | None -> Printf.printf "snapshot %s (no header line)\n" file);
    let typed t =
      List.filter
        (fun v -> Option.bind (member "type" v) to_string_opt = Some t)
        parsed
    in
    let name_of v =
      Option.value ~default:"?" (Option.bind (member "name" v) to_string_opt)
    in
    let int_of key v = Option.value ~default:0 (Option.bind (member key v) to_int) in
    let counters = typed "counter" and hists = typed "hist" and spans = typed "span" in
    let ct =
      Sfi_util.Table.create ~title:"counters"
        [ ("name", Sfi_util.Table.Left); ("det", Sfi_util.Table.Left);
          ("value", Sfi_util.Table.Right) ]
    in
    List.iter
      (fun v ->
        let det = Option.value ~default:true (Option.bind (member "det" v) to_bool) in
        Sfi_util.Table.add_row ct
          [ name_of v; (if det then "yes" else "no"); string_of_int (int_of "value" v) ])
      counters;
    Sfi_util.Table.print ct;
    if hists <> [] then begin
      let ht =
        Sfi_util.Table.create ~title:"log2 histograms"
          [ ("name", Sfi_util.Table.Left); ("count", Sfi_util.Table.Right);
            ("sum", Sfi_util.Table.Right); ("mean", Sfi_util.Table.Right);
            ("~p50", Sfi_util.Table.Right); ("max bucket", Sfi_util.Table.Right) ]
      in
      List.iter
        (fun v ->
          let count = int_of "count" v and sum = int_of "sum" v in
          let buckets =
            match member "buckets" v with
            | Some (List bs) ->
              List.filter_map
                (function
                  | List [ b; c ] -> (
                    match (to_int b, to_int c) with
                    | Some b, Some c -> Some (b, c)
                    | _ -> None)
                  | _ -> None)
                bs
            | _ -> []
          in
          (* Approximate p50: the lower bound of the bucket where the
             cumulative count crosses half. *)
          let p50 =
            let half = (count + 1) / 2 in
            let rec walk acc = function
              | [] -> "n/a"
              | (b, c) :: rest ->
                if acc + c >= half && count > 0 then
                  Printf.sprintf ">=%d" (Sfi_obs.Hist.lo_of_bucket b)
                else walk (acc + c) rest
            in
            walk 0 buckets
          in
          let max_bucket =
            match List.rev buckets with
            | (b, _) :: _ -> Printf.sprintf ">=%d" (Sfi_obs.Hist.lo_of_bucket b)
            | [] -> "n/a"
          in
          let mean =
            if count = 0 then nan else float_of_int sum /. float_of_int count
          in
          Sfi_util.Table.add_row ht
            [ name_of v; string_of_int count; string_of_int sum;
              Sfi_util.Table.fmt_float ~decimals:1 mean; p50; max_bucket ])
        hists;
      Sfi_util.Table.print ht
    end;
    if spans <> [] then begin
      let st =
        Sfi_util.Table.create ~title:"wall-time spans"
          [ ("name", Sfi_util.Table.Left); ("count", Sfi_util.Table.Right);
            ("total [s]", Sfi_util.Table.Right); ("mean [ms]", Sfi_util.Table.Right) ]
      in
      List.iter
        (fun v ->
          let count = int_of "count" v and ns = int_of "total_ns" v in
          let mean_ms =
            if count = 0 then nan
            else float_of_int ns /. 1e6 /. float_of_int count
          in
          Sfi_util.Table.add_row st
            [ name_of v; string_of_int count;
              Sfi_util.Table.fmt_float ~decimals:3 (float_of_int ns /. 1e9);
              Sfi_util.Table.fmt_float ~decimals:3 mean_ms ])
        spans;
      Sfi_util.Table.print st
    end;
    (* Degenerate-input-safe summary: all of these are total functions
       even when the snapshot carries no counters at all. *)
    let values =
      Array.of_list (List.map (fun v -> float_of_int (int_of "value" v)) counters)
    in
    Printf.printf
      "%d counters, %d histograms, %d spans; counter median %s, p95 %s\n"
      (List.length counters) (List.length hists) (List.length spans)
      (Sfi_util.Table.fmt_float ~decimals:1 (Sfi_util.Stats.median values))
      (Sfi_util.Table.fmt_float ~decimals:1 (Sfi_util.Stats.percentile values 95.))
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Summarize an observability snapshot written by campaign/experiments --obs.")
    Term.(const run $ file)

(* ---------- sfi cache ---------- *)

let cache_cmds =
  let resolve dir =
    match (match dir with Some _ -> dir | None -> Sfi_cache.dir ()) with
    | Some d -> d
    | None ->
      prerr_endline "sfi cache: no cache directory (use --cache-dir or set SFI_CACHE_DIR)";
      exit 2
  in
  let dir_arg =
    Arg.(value
         & opt (some string) None
         & info [ "cache-dir" ] ~docv:"DIR"
             ~doc:"Cache directory to operate on (default: \\$SFI_CACHE_DIR).")
  in
  let ls_cmd =
    let run dir =
      let dir = resolve dir in
      let entries = Sfi_cache.scan ~dir in
      (* namespace -> payload codec, matching each producer's
         fingerprint label *)
      let codec_of = function
        | "refcycles" -> "sfi-refcycles/1"
        | "snap" -> "sfi-snap/1"
        | "chardb" -> "sfi-chardb/1"
        | _ -> "?"
      in
      let t =
        Sfi_util.Table.create ~title:(Printf.sprintf "cache %s" dir)
          [ ("namespace", Sfi_util.Table.Left); ("codec", Sfi_util.Table.Left);
            ("key", Sfi_util.Table.Left); ("bytes", Sfi_util.Table.Right);
            ("status", Sfi_util.Table.Left) ]
      in
      List.iter
        (fun (e : Sfi_cache.entry_info) ->
          Sfi_util.Table.add_row t
            [ (if e.Sfi_cache.namespace = "" then "?" else e.Sfi_cache.namespace);
              codec_of e.Sfi_cache.namespace;
              (if e.Sfi_cache.key = "" then e.Sfi_cache.file else e.Sfi_cache.key);
              string_of_int e.Sfi_cache.bytes;
              (if e.Sfi_cache.valid then "ok" else "INVALID: " ^ e.Sfi_cache.reason) ])
        entries;
      Sfi_util.Table.print t;
      Printf.printf "%d entries, %d invalid\n" (List.length entries)
        (List.length (List.filter (fun e -> not e.Sfi_cache.valid) entries))
    in
    Cmd.v (Cmd.info "ls" ~doc:"List cache entries and their validation status.")
      Term.(const run $ dir_arg)
  in
  let verify_cmd =
    let run dir =
      let dir = resolve dir in
      let entries = Sfi_cache.scan ~dir in
      let bad = List.filter (fun (e : Sfi_cache.entry_info) -> not e.Sfi_cache.valid) entries in
      List.iter
        (fun (e : Sfi_cache.entry_info) ->
          Printf.printf "INVALID %s: %s\n" e.Sfi_cache.file e.Sfi_cache.reason)
        bad;
      Printf.printf "%d entries checked, %d invalid\n" (List.length entries) (List.length bad);
      if bad <> [] then exit 1
    in
    Cmd.v
      (Cmd.info "verify"
         ~doc:"Validate every entry (magic, version, CRC-32); exit 1 if any is corrupt.")
      Term.(const run $ dir_arg)
  in
  let prune_cmd =
    let all = Arg.(value & flag & info [ "all" ] ~doc:"Remove every entry.") in
    let max_age =
      Arg.(value
           & opt (some float) None
           & info [ "max-age-days" ] ~docv:"DAYS" ~doc:"Also remove entries older than $(docv).")
    in
    let run dir all max_age =
      let dir = resolve dir in
      let removed = Sfi_cache.prune ?max_age_days:max_age ~all ~dir () in
      Printf.printf "pruned %d entr%s from %s\n" removed
        (if removed = 1 then "y" else "ies")
        dir
    in
    Cmd.v
      (Cmd.info "prune"
         ~doc:"Remove invalid entries, stale temp files, and optionally old or all entries.")
      Term.(const run $ dir_arg $ all $ max_age)
  in
  Cmd.group
    (Cmd.info "cache" ~doc:"Inspect and maintain the persistent characterization cache.")
    [ ls_cmd; verify_cmd; prune_cmd ]

(* ---------- sfi verilog ---------- *)

let verilog_cmd =
  let out =
    Arg.(value & opt (some string) None & info [ "o" ] ~docv:"FILE" ~doc:"Output path.")
  in
  let sized = Arg.(value & flag & info [ "sized" ] ~doc:"Apply the virtual-synthesis sizing first.") in
  let run out sized =
    let alu = Sfi_netlist.Alu.build () in
    if sized then begin
      Sfi_timing.Sizing.apply_process_variation ~sigma:0.03 ~seed:1
        alu.Sfi_netlist.Alu.circuit;
      Sfi_timing.Sizing.size_to_clock ~clock_mhz:707. alu.Sfi_netlist.Alu.circuit
    end;
    match out with
    | Some path ->
      Sfi_netlist.Verilog.write_file ~module_name:"sfi_alu" ~path alu.Sfi_netlist.Alu.circuit;
      Printf.printf "wrote %s (%d gates)\n" path
        (Sfi_netlist.Circuit.gate_count alu.Sfi_netlist.Alu.circuit)
    | None ->
      print_string Sfi_netlist.Verilog.cell_definitions;
      print_string (Sfi_netlist.Verilog.to_string ~module_name:"sfi_alu" alu.Sfi_netlist.Alu.circuit)
  in
  Cmd.v
    (Cmd.info "verilog" ~doc:"Export the EX-stage ALU netlist as structural Verilog.")
    Term.(const run $ out $ sized)

(* ---------- sfi paths ---------- *)

let paths_cmd =
  let count = Arg.(value & opt int 5 & info [ "count" ] ~doc:"Endpoints to report.") in
  let vdd = Arg.(value & opt float 0.7 & info [ "vdd" ]) in
  let run count vdd =
    let alu = Sfi_netlist.Alu.build () in
    Sfi_timing.Sizing.apply_process_variation ~sigma:0.03 ~seed:1 alu.Sfi_netlist.Alu.circuit;
    Sfi_timing.Sizing.size_to_clock ~clock_mhz:707. alu.Sfi_netlist.Alu.circuit;
    List.iter
      (fun p -> print_string (Sfi_timing.Path_report.pp p))
      (Sfi_timing.Path_report.worst_paths ~vdd ~count alu.Sfi_netlist.Alu.circuit)
  in
  Cmd.v
    (Cmd.info "paths" ~doc:"Report the critical paths of the sized ALU netlist.")
    Term.(const run $ count $ vdd)

(* ---------- sfi trace ---------- *)

let trace_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let limit = Arg.(value & opt int 50 & info [ "n" ] ~doc:"Instructions to trace.") in
  let run file limit cpu_engine =
    apply_cpu_engine cpu_engine;
    let program = Sfi_isa.Asm.assemble_exn (read_file file) in
    let mem = Sfi_sim.Memory.create ~size:65536 in
    Sfi_sim.Memory.load_program mem program;
    let remaining = ref limit in
    let trace ~pc insn =
      if !remaining > 0 then begin
        decr remaining;
        Printf.printf "%08x:  %s\n" pc (Sfi_isa.Insn.to_string insn)
      end
    in
    let config =
      { Sfi_sim.Cpu.default_config with Sfi_sim.Cpu.trace = Some trace;
        Sfi_sim.Cpu.max_cycles = 10_000_000 }
    in
    let stats = Sfi_sim.Cpu.run ~config mem ~entry:program.Sfi_isa.Program.entry in
    Printf.printf "... %d instructions retired in %d cycles\n" stats.Sfi_sim.Cpu.instret
      stats.Sfi_sim.Cpu.cycles
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Execute a program and print the first N retired instructions.")
    Term.(const run $ file $ limit $ cpu_engine_arg)

(* ---------- sfi models ---------- *)

let models_cmd =
  let run () =
    let yn b = if b then "yes" else "no" in
    let t =
      Sfi_util.Table.create ~title:"registered fault models"
        [
          ("key", Sfi_util.Table.Left);
          ("description", Sfi_util.Table.Left);
          ("technique", Sfi_util.Table.Left);
          ("timing data", Sfi_util.Table.Left);
          ("cycle-dep", Sfi_util.Table.Left);
          ("params (defaults)", Sfi_util.Table.Left);
        ]
    in
    List.iter
      (fun (e : Sfi_fi.Model.Registry.entry) ->
        let params =
          match e.Sfi_fi.Model.Registry.default_params with
          | [] -> "-"
          | ps ->
            let value = function
              (* %g, not the JSON codec's round-trip form: 1e-06 reads
                 better than 9.9999999999999995e-07 in a listing. *)
              | Sfi_obs.Json.Float f -> Printf.sprintf "%g" f
              | v -> Sfi_obs.Json.to_string v
            in
            String.concat " "
              (List.map (fun (n, v) -> Printf.sprintf "%s=%s" n (value v)) ps)
        in
        Sfi_util.Table.add_row t
          [
            e.Sfi_fi.Model.Registry.key;
            e.Sfi_fi.Model.Registry.doc;
            e.Sfi_fi.Model.Registry.features.Sfi_fi.Model.technique;
            e.Sfi_fi.Model.Registry.features.Sfi_fi.Model.timing_data;
            yn e.Sfi_fi.Model.Registry.cycle_dependent;
            params;
          ])
      (Sfi_fi.Model.Registry.entries ());
    Sfi_util.Table.print t
  in
  Cmd.v
    (Cmd.info "models"
       ~doc:
         "List the registered fault models: the paper's timing-error models and \
          the adversarial attack families, with their default parameters.")
    Term.(const run $ const ())

let main =
  Cmd.group
    (Cmd.info "sfi" ~version:"1.0.0"
       ~doc:
         "Statistical fault injection for impact-evaluation of timing errors (DAC'16 \
          reproduction).")
    [ experiments_cmd; flow_cmd; asm_cmd; run_cmd; campaign_cmd; models_cmd; stats_cmd;
      cache_cmds; verilog_cmd; paths_cmd; trace_cmd ]

let () = exit (Cmd.eval main)
