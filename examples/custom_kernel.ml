(* Bring your own kernel: write an OR1K-subset assembly program, run it on
   the cycle-accurate ISS under statistical fault injection, and measure
   its resilience — the workflow a user of this library follows for a new
   workload.

   The kernel below computes a 32-term dot product and a checksum. The
   FI window markers (l.nop 0x10 / 0x11) delimit the studied region and
   l.nop 0x1 exits, mirroring the or1ksim conventions the paper uses.

     dune exec examples/custom_kernel.exe *)

open Sfi_util
open Sfi_core

let kernel_source ~xs ~ys =
  Printf.sprintf
    {|# dot product of two 32-element vectors
        .entry start
start:
        l.movhi r2, hi(vec_x)
        l.ori   r2, r2, lo(vec_x)
        l.movhi r3, hi(vec_y)
        l.ori   r3, r3, lo(vec_y)
        l.addi  r4, r0, 32          # elements
        l.addi  r5, r0, 0           # accumulator
        l.nop   0x10                # FI window opens
loop:
        l.sfeqi r4, 0
        l.bf    done
        l.lwz   r6, 0(r2)
        l.lwz   r7, 0(r3)
        l.mul   r8, r6, r7
        l.add   r5, r5, r8
        l.addi  r2, r2, 4
        l.addi  r3, r3, 4
        l.addi  r4, r4, -1
        l.j     loop
done:
        l.movhi r9, hi(result)
        l.ori   r9, r9, lo(result)
        l.sw    0(r9), r5
        l.nop   0x11                # FI window closes
        l.nop   0x1
result: .word 0
vec_x:
%svec_y:
%s|}
    (Sfi_kernels.Bench.format_word_data xs)
    (Sfi_kernels.Bench.format_word_data ys)

let () =
  (* Inputs and the expected result, computed with the same wrap-around
     semantics the core uses. *)
  let rng = Rng.of_int 2024 in
  let xs = Array.init 32 (fun _ -> Rng.bits32 rng land 0xFFFF) in
  let ys = Array.init 32 (fun _ -> Rng.bits32 rng land 0xFFFF) in
  let expected =
    Array.fold_left (fun acc (x, y) -> U32.add acc (U32.mul x y)) 0
      (Array.map2 (fun x y -> (x, y)) xs ys)
  in
  let program = Sfi_isa.Asm.assemble_exn (kernel_source ~xs ~ys) in
  let result_addr = Sfi_isa.Program.symbol program "result" in

  (* Fault-free sanity run. *)
  let mem = Sfi_sim.Memory.create ~size:65536 in
  Sfi_sim.Memory.load_program mem program;
  let stats = Sfi_sim.Cpu.run mem ~entry:program.Sfi_isa.Program.entry in
  assert (stats.Sfi_sim.Cpu.outcome = Sfi_sim.Cpu.Exited);
  assert (Sfi_sim.Memory.read_u32 mem result_addr = expected);
  Printf.printf "fault-free: %d cycles, result %s (correct)\n%!" stats.Sfi_sim.Cpu.cycles
    (U32.to_hex expected);

  (* Under model C: how often is the dot product still exact, and how far
     off is it otherwise? The kernel is mul-heavy, so it degrades near the
     multiplier's dynamic limit, well before an add-only kernel would. *)
  let flow = Flow.create ~config:{ Flow.default_config with Flow.char_cycles = 1500 } () in
  let model = Flow.model_c flow ~vdd:0.7 ~sigma:0.010 () in
  Printf.printf "\n%-9s %-9s %-9s %s\n" "f [MHz]" "exited" "exact" "mean |error| of exits";
  List.iter
    (fun freq_mhz ->
      let trials = 60 in
      let root = Rng.of_int 99 in
      let exits = ref 0 and exact = ref 0 and errs = ref [] in
      for _ = 1 to trials do
        let rng = Rng.split root in
        let injector = Sfi_fi.Injector.create ~model ~freq_mhz ~rng () in
        let mem = Sfi_sim.Memory.create ~size:65536 in
        Sfi_sim.Memory.load_program mem program;
        let config =
          {
            Sfi_sim.Cpu.default_config with
            Sfi_sim.Cpu.fault_hook = Some (Sfi_fi.Injector.hook injector);
            Sfi_sim.Cpu.max_cycles = 100_000;
          }
        in
        let stats = Sfi_sim.Cpu.run ~config mem ~entry:program.Sfi_isa.Program.entry in
        if stats.Sfi_sim.Cpu.outcome = Sfi_sim.Cpu.Exited then begin
          incr exits;
          let got = Sfi_sim.Memory.read_u32 mem result_addr in
          if got = expected then incr exact
          else errs := abs_float (float_of_int got -. float_of_int expected) :: !errs
        end
      done;
      let mean_err =
        match !errs with
        | [] -> 0.
        | e -> List.fold_left ( +. ) 0. e /. float_of_int (List.length e)
      in
      Printf.printf "%-9.0f %-9s %-9s %.3g\n%!" freq_mhz
        (Printf.sprintf "%d/%d" !exits trials)
        (Printf.sprintf "%d/%d" !exact trials)
        mean_err)
    [ 690.; 710.; 730.; 750.; 780.; 820.; 880. ]
