(* Power vs output-quality trade-off (the paper's Fig. 7 workflow).

   The system keeps running at the nominal 707 MHz while the supply is
   scaled below 0.7 V; model C (characterized at 0.7 V, rescaled through
   the fitted Vdd-delay curve) predicts the resulting output quality, and
   the paper's power model translates each voltage into normalized core
   power. The interesting question for approximate computing: how much
   power can be saved before quality collapses, and how does supply noise
   eat into that margin?

     dune exec examples/power_quality_tradeoff.exe *)

open Sfi_core

let () =
  let flow = Flow.create ~config:{ Flow.default_config with Flow.char_cycles = 1500 } () in
  let freq = Flow.sta_limit_mhz flow ~vdd:0.7 in
  let bench = Sfi_kernels.Median.create ~n:65 () in
  Printf.printf "median kernel at fixed f = %.0f MHz, supply scaled below nominal\n\n" freq;
  List.iter
    (fun sigma_mv ->
      Printf.printf "sigma = %.0f mV:\n" sigma_mv;
      Printf.printf "  %-8s %-12s %-10s %-10s %s\n" "Vdd [V]" "norm.power" "finished"
        "correct" "avg rel.err% (finished)";
      let stop = ref false in
      List.iter
        (fun mv ->
          if not !stop then begin
            let vdd = 0.7 -. (float_of_int mv /. 1000.) in
            let model =
              Flow.model_c ~operating_vdd:vdd flow ~vdd:0.7
                ~sigma:(sigma_mv /. 1000.) ()
            in
            let p =
              Sfi_fi.Campaign.run
                Sfi_fi.Campaign.Spec.(default |> with_trials 30)
                ~bench ~model ~freq_mhz:freq
            in
            Printf.printf "  %-8.3f %-12.3f %-10.0f %-10.0f %.1f\n%!" vdd
              (Power.normalized ~vdd)
              (100. *. p.Sfi_fi.Campaign.finished_rate)
              (100. *. p.Sfi_fi.Campaign.correct_rate)
              p.Sfi_fi.Campaign.mean_error;
            (* Past total collapse there is nothing more to learn. *)
            if p.Sfi_fi.Campaign.finished_rate = 0. then stop := true
          end)
        [ 0; 5; 10; 15; 20; 25; 30; 35; 40; 45; 50; 55; 60 ];
      print_newline ())
    [ 0.; 10.; 25. ];
  print_endline "Compare with Fig. 7: without noise, ~9-10% of core power is available";
  print_endline "before the point of first failure; 25 mV of supply noise erases the margin."
