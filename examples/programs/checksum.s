# Standalone assembly example for the sfi command-line tools:
#
#   dune exec bin/sfi.exe -- asm   examples/programs/checksum.s
#   dune exec bin/sfi.exe -- run   examples/programs/checksum.s --dump 0x100:2
#   dune exec bin/sfi.exe -- trace examples/programs/checksum.s -n 20
#
# Computes the sum and xor-checksum of a table of words; results are
# stored at 0x100 and 0x104.

        .entry start
start:
        l.movhi r2, hi(table)
        l.ori   r2, r2, lo(table)
        l.addi  r3, r0, 8           # element count
        l.addi  r4, r0, 0           # running sum
        l.addi  r5, r0, 0           # running xor
        l.nop   0x10                # FI window opens (for `sfi campaign`-style studies)
loop:
        l.sfeqi r3, 0
        l.bf    done
        l.lwz   r6, 0(r2)
        l.add   r4, r4, r6
        l.xor   r5, r5, r6
        l.addi  r2, r2, 4
        l.addi  r3, r3, -1
        l.j     loop
done:
        l.sw    0x100(r0), r4
        l.sw    0x104(r0), r5
        l.nop   0x11                # FI window closes
        l.nop   0x1                 # exit

table:
        .word 0x1001, 0x2002, 0x3003, 0x4004
        .word 0xdead, 0xbeef, 0xcafe, 0xf00d
