(* Quickstart: the whole statistical-FI flow in ~40 lines.

   Build the gate-level flow once, characterize at 0.7 V, then ask a
   simple question: how does the median kernel behave when the clock is
   over-scaled beyond the 707 MHz STA limit, with 10 mV of supply noise?

     dune exec examples/quickstart.exe *)

open Sfi_core

let () =
  (* 1. Design-time: netlist -> virtual synthesis -> STA. A short
     characterization kernel keeps this example snappy; use 8000 cycles
     (the paper's setting) for real studies. *)
  let config = { Flow.default_config with Flow.char_cycles = 1500 } in
  let flow = Flow.create ~config () in
  Printf.printf "STA limit at 0.7 V: %.1f MHz\n%!" (Flow.sta_limit_mhz flow ~vdd:0.7);

  (* 2. Model C: instruction-aware statistical FI with supply noise.
     The first use triggers the gate-level DTA characterization. *)
  let model = Flow.model_c flow ~vdd:0.7 ~sigma:0.010 () in

  (* 3. Application side: a benchmark kernel running on the cycle-accurate
     ISS. A reduced median instance keeps each Monte-Carlo trial cheap. *)
  let bench = Sfi_kernels.Median.create ~n:65 () in

  (* 4. Sweep frequency across the transition region. The spec holds the
     whole Monte-Carlo policy: swap [with_trials] for
     [with_adaptive ~ci_target:...] to let each point stop as soon as
     its confidence intervals are tight enough. *)
  let spec = Sfi_fi.Campaign.Spec.(default |> with_trials 40) in
  let freqs = [ 680.; 720.; 760.; 800.; 840.; 880.; 920. ] in
  Printf.printf "\n%-10s %-10s %-10s %-12s %s\n" "f [MHz]" "finished" "correct"
    "FI/kCycle" "rel. error of finished runs [%]";
  List.iter
    (fun freq_mhz ->
      let p = Sfi_fi.Campaign.run spec ~bench ~model ~freq_mhz in
      Printf.printf "%-10.0f %-10.0f %-10.0f %-12.3g %.1f\n%!" freq_mhz
        (100. *. p.Sfi_fi.Campaign.finished_rate)
        (100. *. p.Sfi_fi.Campaign.correct_rate)
        p.Sfi_fi.Campaign.fi_per_kcycle p.Sfi_fi.Campaign.mean_error)
    freqs;
  print_endline "\nCompare with Fig. 5(b) of the paper: a gradual transition region";
  print_endline "instead of the hard cliff that static-timing FI (model B+) predicts."
