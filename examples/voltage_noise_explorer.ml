(* Voltage/noise explorer: a parameterized study of any benchmark kernel
   under model C — benchmark, supply, noise level and frequency window as
   command-line flags.

     dune exec examples/voltage_noise_explorer.exe -- --bench dijkstra --sigma 25
     dune exec examples/voltage_noise_explorer.exe -- --bench mat_mult_8bit --vdd 0.8 *)

open Cmdliner
open Sfi_util
open Sfi_core

let explore bench_name vdd sigma_mv trials points =
  match Sfi_kernels.Registry.by_name bench_name with
  | None ->
    Printf.eprintf "unknown benchmark %S; available: %s\n" bench_name
      (String.concat ", " Sfi_kernels.Registry.names);
    exit 1
  | Some bench ->
    let config = { Flow.default_config with Flow.char_cycles = 2000 } in
    let flow = Flow.create ~config () in
    let sigma = sigma_mv /. 1000. in
    let fsta = Flow.sta_limit_mhz flow ~vdd in
    let model = Flow.model_c flow ~vdd ~sigma () in
    (* Window the sweep around the transition region: from well inside the
       safe zone to deep over-scaling. *)
    let freqs =
      List.init points (fun i ->
          fsta *. (0.88 +. (0.50 *. float_of_int i /. float_of_int (points - 1))))
    in
    let spec = Sfi_fi.Campaign.Spec.(default |> with_trials trials) in
    let results = Sfi_fi.Campaign.run_sweep spec ~bench ~model ~freqs_mhz:freqs in
    let t =
      Table.create
        ~title:
          (Printf.sprintf "%s under model C: Vdd %.2f V (STA %.0f MHz), sigma %.0f mV, %d trials"
             bench_name vdd fsta sigma_mv trials)
        [
          ("f [MHz]", Table.Right);
          ("f/fSTA", Table.Right);
          ("finished", Table.Right);
          ("correct", Table.Right);
          ("FI/kCycle", Table.Right);
          (bench.Sfi_kernels.Bench.metric_name, Table.Right);
        ]
    in
    List.iter
      (fun (p : Sfi_fi.Campaign.point) ->
        Table.add_row t
          [
            Printf.sprintf "%.1f" p.Sfi_fi.Campaign.freq_mhz;
            Printf.sprintf "%.3f" (p.Sfi_fi.Campaign.freq_mhz /. fsta);
            Table.fmt_pct p.Sfi_fi.Campaign.finished_rate;
            Table.fmt_pct p.Sfi_fi.Campaign.correct_rate;
            (if p.Sfi_fi.Campaign.any_fault_possible then
               Printf.sprintf "%.3g" p.Sfi_fi.Campaign.fi_per_kcycle
             else "n/a");
            Table.fmt_float p.Sfi_fi.Campaign.mean_error;
          ])
      results;
    Table.print t;
    match Sfi_fi.Campaign.point_of_first_failure results with
    | Some poff ->
      Printf.printf "point of first failure: %.1f MHz (%+.1f%% vs STA)\n" poff
        (100. *. (poff -. fsta) /. fsta)
    | None -> print_endline "no failures in the swept window"

let cmd =
  let bench =
    Arg.(value & opt string "median" & info [ "bench" ] ~doc:"Benchmark kernel name.")
  in
  let vdd = Arg.(value & opt float 0.7 & info [ "vdd" ] ~doc:"Supply voltage [V].") in
  let sigma = Arg.(value & opt float 10. & info [ "sigma" ] ~doc:"Noise sigma [mV].") in
  let trials = Arg.(value & opt int 30 & info [ "trials" ]) in
  let points = Arg.(value & opt int 16 & info [ "points" ] ~doc:"Frequency points.") in
  Cmd.v
    (Cmd.info "voltage_noise_explorer"
       ~doc:"Explore a kernel's failure behaviour across frequency under model C.")
    Term.(const explore $ bench $ vdd $ sigma $ trials $ points)

let () = exit (Cmd.eval cmd)
