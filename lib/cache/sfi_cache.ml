let schema_version = 1

(* ---------- configuration ---------- *)

(* The CLI override sits above the environment so `--cache-dir` wins
   even when SFI_CACHE_DIR is exported. *)
let override : string option option Atomic.t = Atomic.make None

let set_dir d = Atomic.set override (match d with None -> None | Some _ -> Some d)

let dir () =
  match Atomic.get override with
  | Some d -> d
  | None -> (
    match Sys.getenv_opt "SFI_CACHE_DIR" with
    | Some d when d <> "" -> Some d
    | _ -> None)

let enabled () = dir () <> None

(* ---------- observability ---------- *)

(* All ~det:false: hit/miss/corruption counts depend on the state of the
   cache directory, not on the requested work, so they must not enter
   the deterministic signature (a warm rerun must fingerprint-match its
   cold run). *)
let obs_hits = Sfi_obs.Counter.make ~det:false "cache.hits"

let obs_misses = Sfi_obs.Counter.make ~det:false "cache.misses"

let obs_stores = Sfi_obs.Counter.make ~det:false "cache.stores"

let obs_corrupt = Sfi_obs.Counter.make ~det:false "cache.corrupt_rejected"

let obs_evictions = Sfi_obs.Counter.make ~det:false "cache.evictions"

(* ---------- CRC-32 integrity trailer ---------- *)

(* Table-driven version of the bitwise reflected CRC-32 the crc32
   benchmark kernel runs on the simulated core (Crc32.reference); the
   test suite pins the two against each other. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 1 to 8 do
           c := if !c land 1 = 1 then 0xEDB8_8320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFF_FFFF in
  String.iter (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8)) s;
  !c lxor 0xFFFF_FFFF

(* ---------- fingerprints ---------- *)

module Fingerprint = struct
  type t = { mutable h : int64 }

  let fnv_offset = 0xCBF29CE484222325L

  let fnv_prime = 0x100000001B3L

  let add_byte t b =
    t.h <- Int64.mul (Int64.logxor t.h (Int64.of_int (b land 0xFF))) fnv_prime

  let add_int64 t v =
    for i = 0 to 7 do
      add_byte t (Int64.to_int (Int64.shift_right_logical v (8 * i)))
    done

  let add_int t v = add_int64 t (Int64.of_int v)

  let add_float t v = add_int64 t (Int64.bits_of_float v)

  let add_string t s =
    add_int t (String.length s);
    String.iter (fun c -> add_byte t (Char.code c)) s

  let add_int_array t a =
    add_int t (Array.length a);
    Array.iter (add_int t) a

  let add_float_array t a =
    add_int t (Array.length a);
    Array.iter (add_float t) a

  let create label =
    let t = { h = fnv_offset } in
    add_string t label;
    t

  let hex t = Printf.sprintf "%016Lx" t.h
end

(* ---------- entry encoding ---------- *)

(* Layout (all integers big-endian u32):
     magic "SFIC" | version | ns_len ns | key_len key | pay_len payload | crc
   The CRC covers every byte before it. *)
let magic = "SFIC"

let add_u32 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let get_u32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let encode_entry ~namespace ~key payload =
  let buf = Buffer.create (String.length payload + 64) in
  Buffer.add_string buf magic;
  add_u32 buf schema_version;
  add_u32 buf (String.length namespace);
  Buffer.add_string buf namespace;
  add_u32 buf (String.length key);
  Buffer.add_string buf key;
  add_u32 buf (String.length payload);
  Buffer.add_string buf payload;
  let body = Buffer.contents buf in
  let crc = Buffer.create 4 in
  add_u32 crc (crc32 body);
  body ^ Buffer.contents crc

(* Structural parse shared by [load] and [scan]: returns the entry's
   own (namespace, key, payload) or the first validation failure. Field
   reads are bounds-checked before every access so truncation at any
   byte is a clean [Error]. *)
let parse_entry content =
  let len = String.length content in
  let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v in
  let need off n what = if off + n > len then Error ("truncated " ^ what) else Ok () in
  let* () = need 0 8 "header" in
  if String.sub content 0 4 <> magic then Error "bad magic"
  else
    let version = get_u32 content 4 in
    if version <> schema_version then
      Error (Printf.sprintf "schema version %d (want %d)" version schema_version)
    else
      let* () = need 8 4 "namespace length" in
      let ns_len = get_u32 content 8 in
      let* () = need 12 ns_len "namespace" in
      let namespace = String.sub content 12 ns_len in
      let koff = 12 + ns_len in
      let* () = need koff 4 "key length" in
      let key_len = get_u32 content koff in
      let* () = need (koff + 4) key_len "key" in
      let key = String.sub content (koff + 4) key_len in
      let poff = koff + 4 + key_len in
      let* () = need poff 4 "payload length" in
      let pay_len = get_u32 content poff in
      let* () = need (poff + 4) pay_len "payload" in
      let payload = String.sub content (poff + 4) pay_len in
      let crc_off = poff + 4 + pay_len in
      let* () = need crc_off 4 "CRC trailer" in
      if crc_off + 4 <> len then Error "trailing garbage"
      else if get_u32 content crc_off <> crc32 (String.sub content 0 crc_off) then
        Error "CRC mismatch"
      else Ok (namespace, key, payload)

let decode_entry ~namespace ~key content =
  match parse_entry content with
  | Error _ as e -> e
  | Ok (ns, k, payload) ->
    if ns <> namespace then Error "namespace mismatch"
    else if k <> key then Error "key mismatch"
    else Ok payload

(* ---------- file I/O ---------- *)

let entry_file ~namespace ~key = namespace ^ "-" ^ key ^ ".sfic"

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (in_channel_length ic) with
        | s -> Some s
        | exception End_of_file -> None)

let rec mkdirs d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdirs (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let store ~namespace ~key v =
  match dir () with
  | None -> ()
  | Some d ->
    let payload = Marshal.to_string v [] in
    let content = encode_entry ~namespace ~key payload in
    let final = Filename.concat d (entry_file ~namespace ~key) in
    (* Temp file in the destination directory so the rename is atomic
       (same filesystem); the pid suffix keeps concurrent processes off
       each other's temp files. *)
    let tmp = Printf.sprintf "%s.tmp.%d" final (Unix.getpid ()) in
    (try
       mkdirs d;
       let oc = open_out_bin tmp in
       Fun.protect
         ~finally:(fun () -> close_out_noerr oc)
         (fun () -> output_string oc content);
       Sys.rename tmp final;
       Sfi_obs.Counter.incr obs_stores
     with Sys_error _ | Unix.Unix_error _ -> ( try Sys.remove tmp with Sys_error _ -> ()))

let reject_corrupt path =
  Sfi_obs.Counter.incr obs_corrupt;
  try Sys.remove path with Sys_error _ -> ()

let load ~namespace ~key =
  match dir () with
  | None -> None
  | Some d ->
    let path = Filename.concat d (entry_file ~namespace ~key) in
    let result =
      match read_file path with
      | None -> None
      | Some content -> (
        match decode_entry ~namespace ~key content with
        | Error _ ->
          reject_corrupt path;
          None
        | Ok payload -> (
          (* The CRC already vouches for the bytes; this catches only a
             payload written by an incompatible runtime. *)
          match Marshal.from_string payload 0 with
          | v -> Some v
          | exception (Failure _ | Invalid_argument _) ->
            reject_corrupt path;
            None))
    in
    Sfi_obs.Counter.incr (match result with Some _ -> obs_hits | None -> obs_misses);
    result

let memo ~namespace ~key f =
  match load ~namespace ~key with
  | Some v -> v
  | None ->
    let v = f () in
    store ~namespace ~key v;
    v

(* ---------- maintenance (sfi cache ls / verify / prune) ---------- *)

type entry_info = {
  file : string;
  namespace : string;
  key : string;
  bytes : int;
  mtime : float;
  valid : bool;
  reason : string;
}

let is_entry_file f = Filename.check_suffix f ".sfic"

let is_temp_file f =
  (* "<name>.sfic.tmp.<pid>" — an interrupted writer's leftovers. *)
  let rec has_sfic_part = function
    | [] -> false
    | "sfic" :: _ :: _ -> true
    | _ :: rest -> has_sfic_part rest
  in
  (not (is_entry_file f)) && has_sfic_part (String.split_on_char '.' f)

let scan ~dir:d =
  match Sys.readdir d with
  | exception Sys_error _ -> []
  | files ->
    Array.sort compare files;
    Array.to_list files
    |> List.filter is_entry_file
    |> List.map (fun f ->
           let path = Filename.concat d f in
           let bytes, mtime =
             match Unix.stat path with
             | st -> (st.Unix.st_size, st.Unix.st_mtime)
             | exception Unix.Unix_error _ -> (0, 0.)
           in
           let namespace, key, valid, reason =
             match read_file path with
             | None -> ("", "", false, "unreadable")
             | Some content -> (
               match parse_entry content with
               | Ok (ns, k, _) -> (ns, k, true, "")
               | Error reason -> ("", "", false, reason))
           in
           { file = f; namespace; key; bytes; mtime; valid; reason })

let prune ?max_age_days ?(all = false) ~dir:d () =
  let now = Unix.time () in
  let stale e =
    match max_age_days with
    | Some days -> now -. e.mtime > days *. 86400.
    | None -> false
  in
  let victims = List.filter (fun e -> all || (not e.valid) || stale e) (scan ~dir:d) in
  let removed =
    List.fold_left
      (fun n e ->
        match Sys.remove (Filename.concat d e.file) with
        | () -> n + 1
        | exception Sys_error _ -> n)
      0 victims
  in
  (* Interrupted writers may leave temp files behind; sweep them too
     (not counted as evictions — they were never entries). *)
  (match Sys.readdir d with
  | exception Sys_error _ -> ()
  | files ->
    Array.iter
      (fun f ->
        if is_temp_file f then
          try Sys.remove (Filename.concat d f) with Sys_error _ -> ())
      files);
  Sfi_obs.Counter.add obs_evictions removed;
  removed
