(** Persistent, content-addressed cache for the expensive pure phases.

    DTA characterization — Monte-Carlo gate-level simulation per
    instruction class per voltage point — is a pure function of
    (sized netlist, cell library, Vdd model, voltage, trial count, RNG
    seed, operand profiles). So is a benchmark's fault-free reference
    cycle count. This store memoizes those results on disk across
    process invocations:

    - {b content-addressed}: the entry key is a 64-bit FNV-1a
      fingerprint of every input the result depends on, plus a schema
      label. Any change to the netlist, sizing, voltage grid, trial
      count or seed produces a different key — stale entries are never
      returned, they are simply never looked up again.
    - {b atomic}: entries are written to a temp file in the cache
      directory and [rename]d into place, so concurrent writers (or a
      crash mid-write) can never publish a half-written entry.
    - {b validated}: each entry carries a magic/version header, its
      namespace and key, and a CRC-32 trailer (the same reflected
      CRC-32 the [crc32] benchmark kernel computes, applied host-side).
      A truncated, corrupted or version-mismatched entry is discarded
      and recomputed, never trusted — corruption is observable via the
      [cache.corrupt_rejected] counter.

    Caching is {b off by default}: it activates only when a directory
    is configured through {!set_dir} (the CLI's [--cache-dir]) or the
    [SFI_CACHE_DIR] environment variable, so the tier-1 determinism
    tests run the real computation unless a test opts in.

    The obs counters ([cache.hits], [cache.misses], [cache.stores],
    [cache.corrupt_rejected], [cache.evictions]) are registered
    [~det:false]: they depend on what happens to be on disk, not on the
    requested work, and are therefore excluded from
    {!Sfi_obs.det_signature} — a warm and a cold run of the same work
    keep identical deterministic signatures. *)

val schema_version : int
(** Bump when the entry encoding or any cached value's layout changes;
    entries written by other versions are rejected on load. *)

val set_dir : string option -> unit
(** [set_dir (Some d)] enables caching in directory [d] (created on
    first store), overriding the environment. [set_dir None] removes
    the override, restoring the [SFI_CACHE_DIR] fallback. *)

val dir : unit -> string option
(** The active cache directory: the {!set_dir} override if any, else a
    non-empty [SFI_CACHE_DIR], else [None] (caching disabled). *)

val enabled : unit -> bool

val crc32 : string -> int
(** Reflected CRC-32 (polynomial [0xEDB88320], init/xorout
    [0xFFFFFFFF]) — bit-identical to the host reference of the [crc32]
    benchmark kernel ([Sfi_kernels.Crc32.reference]); pinned against it
    by the test suite. *)

(** Accumulates a canonical byte stream of the inputs a cached result
    depends on and hashes it with 64-bit FNV-1a. Strings and arrays are
    length-prefixed, floats are hashed by their IEEE-754 bits, so
    distinct input sequences cannot collide by concatenation. *)
module Fingerprint : sig
  type t

  val create : string -> t
  (** [create label] seeds the fingerprint with a schema label (e.g.
      ["sfi-chardb/1"]); bumping the label invalidates all old keys. *)

  val add_int : t -> int -> unit
  val add_float : t -> float -> unit
  val add_string : t -> string -> unit
  val add_int_array : t -> int array -> unit
  val add_float_array : t -> float array -> unit

  val hex : t -> string
  (** The current 64-bit digest as 16 lowercase hex digits. *)
end

val store : namespace:string -> key:string -> 'a -> unit
(** Marshals the value into [<dir>/<namespace>-<key>.sfic] atomically.
    A no-op when caching is disabled; I/O errors (read-only directory,
    disk full) are swallowed — the cache is an accelerator, never a
    correctness dependency. *)

val load : namespace:string -> key:string -> 'a option
(** Loads and validates an entry. Returns [None] (counted as a miss)
    when caching is disabled, the entry is absent, or it fails
    validation (also counted as [cache.corrupt_rejected]; the bad file
    is removed best-effort). The ['a] is trusted from the namespace +
    fingerprint + schema version — callers must give each value type
    its own namespace and re-check cheap invariants after load. *)

val memo : namespace:string -> key:string -> (unit -> 'a) -> 'a
(** [load] on hit; otherwise computes, [store]s and returns. *)

type entry_info = {
  file : string;       (** basename within the cache directory *)
  namespace : string;  (** parsed from the entry, [""] if unreadable *)
  key : string;
  bytes : int;         (** file size *)
  mtime : float;
  valid : bool;
  reason : string;     (** why invalid; [""] when valid *)
}

val scan : dir:string -> entry_info list
(** Validates every [*.sfic] file in [dir] (non-recursive), sorted by
    file name. A missing directory scans as empty. *)

val prune : ?max_age_days:float -> ?all:bool -> dir:string -> unit -> int
(** Removes invalid entries, entries older than [max_age_days] (if
    given), every entry when [all], and any leftover temp files.
    Returns the number of entries removed (counted as
    [cache.evictions]). *)
