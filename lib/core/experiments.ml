open Sfi_util
open Sfi_timing
open Sfi_kernels
open Sfi_fi

type scale = {
  label : string;
  trials_fig5 : int;
  trials : int;
  char_cycles : int;
  fig4_ops : int;
  dense_step : float;
}

let fast =
  {
    label = "fast";
    trials_fig5 = 30;
    trials = 25;
    char_cycles = 2000;
    fig4_ops = 8000;
    dense_step = 0.025;
  }

let paper =
  {
    label = "paper";
    trials_fig5 = 200;
    trials = 100;
    char_cycles = 8000;
    fig4_ops = 40000;
    dense_step = 0.008;
  }

type ctx = {
  scale : scale;
  flow : Flow.t;
  benches : Bench.t list;
  spec : Campaign.Spec.t;
}

let make_ctx ?(spec = Campaign.Spec.default) scale =
  let config = { Flow.default_config with Flow.char_cycles = scale.char_cycles } in
  {
    scale;
    flow = Flow.create ~config ();
    benches = Registry.paper_suite ();
    spec = Campaign.Spec.validate spec;
  }

(* Each figure scales the user's policy template to its own nominal
   trial count: a Fixed spec runs exactly that count (bit-identical to
   the historic per-figure defaults), an Adaptive one keeps its batch
   size and precision target but may stop earlier or escalate to at
   least that count. *)
let spec_for ctx nominal = Campaign.Spec.with_nominal_trials nominal ctx.spec

let flow ctx = ctx.flow

let bench ctx name =
  List.find (fun (b : Bench.t) -> b.Bench.name = name) ctx.benches

(* ---------- small helpers ---------- *)

let grid lo hi step =
  let rec go acc f = if f > hi +. 1e-9 then List.rev acc else go (f :: acc) (f +. step) in
  go [] lo

let transition_grid ~fsta ~rel_lo ~rel_hi ~rel_step =
  grid (fsta *. rel_lo) (fsta *. rel_hi) (fsta *. rel_step)

let fmt_mhz f = Printf.sprintf "%.1f" f

let fmt_rate = Table.fmt_pct ~decimals:1

let fmt_fi p =
  if not p.Campaign.any_fault_possible then "n/a"
  else Printf.sprintf "%.3g" p.Campaign.fi_per_kcycle

let point_rows points =
  List.map
    (fun (p : Campaign.point) ->
      [
        fmt_mhz p.Campaign.freq_mhz;
        fmt_rate p.Campaign.finished_rate;
        fmt_rate p.Campaign.correct_rate;
        fmt_fi p;
        Table.fmt_float ~decimals:3 p.Campaign.mean_error;
      ])
    points

let sweep_table ~title ~metric_name points =
  let t =
    Table.create ~title
      [
        ("f [MHz]", Table.Right);
        ("finished", Table.Right);
        ("correct", Table.Right);
        ("FI/kCycle", Table.Right);
        (metric_name, Table.Right);
      ]
  in
  Table.add_rows t (point_rows points);
  Table.print t

let poff_summary ~fsta points =
  match Campaign.point_of_first_failure points with
  | None -> Printf.printf "PoFF: none within the swept range (STA limit %.1f MHz)\n" fsta
  | Some poff ->
    Printf.printf "STA limit %.1f MHz; PoFF %.1f MHz (gain %+.1f%%)\n" fsta poff
      (100. *. (poff -. fsta) /. fsta)

(* ---------- Table 1 ---------- *)

(* Cycle counts the paper reports, for side-by-side comparison. *)
let paper_cycles = function
  | "median" -> "216 k"
  | "mat_mult_8bit" | "mat_mult_16bit" -> "60 k"
  | "kmeans" -> "351 k"
  | "dijkstra" -> "984 k"
  | _ -> "-"

let table1 ctx =
  let t =
    Table.create ~title:"Table 1: benchmark properties (measured on this ISS)"
      [
        ("benchmark", Table.Left);
        ("type", Table.Left);
        ("compute", Table.Right);
        ("control", Table.Right);
        ("size", Table.Left);
        ("cycles", Table.Right);
        ("paper", Table.Right);
        ("IPC", Table.Right);
        ("ALU%", Table.Right);
        ("ctrl%", Table.Right);
        ("mem%", Table.Right);
        ("output error", Table.Left);
      ]
  in
  List.iter
    (fun (b : Bench.t) ->
      let stats = Bench.validate b in
      let ki = float_of_int (max 1 stats.Sfi_sim.Cpu.kernel_instret) in
      let pct v = Printf.sprintf "%.0f%%" (100. *. float_of_int v /. ki) in
      Table.add_row t
        [
          b.Bench.name;
          b.Bench.bench_type;
          b.Bench.compute_rating;
          b.Bench.control_rating;
          b.Bench.size_desc;
          Printf.sprintf "%d k" (stats.Sfi_sim.Cpu.cycles / 1000);
          paper_cycles b.Bench.name;
          Printf.sprintf "%.2f" (Sfi_sim.Cpu.ipc stats);
          pct stats.Sfi_sim.Cpu.alu_retired;
          pct stats.Sfi_sim.Cpu.control_retired;
          pct stats.Sfi_sim.Cpu.memory_retired;
          b.Bench.metric_name;
        ])
    ctx.benches;
  Table.print t

(* ---------- Table 2 ---------- *)

let table2 _ctx =
  let t =
    Table.create ~title:"Table 2: timing error models & features"
      [
        ("model", Table.Left);
        ("fault injection technique", Table.Left);
        ("timing data", Table.Left);
        ("multi-Vdd", Table.Left);
        ("Vdd noise", Table.Left);
        ("gate-level aware", Table.Left);
        ("instruction aware", Table.Left);
      ]
  in
  List.iter
    (fun (name, (f : Model.features)) ->
      let yn b = if b then "yes" else "no" in
      Table.add_row t
        [
          name;
          f.Model.technique;
          f.Model.timing_data;
          yn f.Model.multi_vdd;
          yn f.Model.vdd_noise;
          f.Model.gate_level_aware;
          yn f.Model.instruction_aware;
        ])
    (Model.feature_rows ());
  Table.print t

(* ---------- Fig 1: models B and B+ on the median benchmark ---------- *)

let fig1 ctx =
  let b = bench ctx "median" in
  let vdd = 0.7 in
  let fsta = Flow.sta_limit_mhz ctx.flow ~vdd in
  let panel title model center =
    (* The B/B+ cliffs are narrow: sweep +-4 MHz around the first-fault
       frequency in 0.5 MHz steps, as the paper's Fig. 1 does. *)
    let freqs = grid (center -. 3.) (center +. 4.) 0.5 in
    let points =
      Campaign.run_sweep (spec_for ctx ctx.scale.trials) ~bench:b ~model ~freqs_mhz:freqs
    in
    sweep_table ~title ~metric_name:"rel.err" points
  in
  let vm = (Flow.config ctx.flow).Flow.vdd_model in
  let onset sigma = fsta /. Vdd_model.scale_factor vm ~vdd ~noise:(-2. *. sigma) in
  Printf.printf "STA limit at %.1f V: %.1f MHz\n\n" vdd fsta;
  panel "(a) model B, sigma = 0 mV" (Flow.model_b ctx.flow ~vdd) fsta;
  panel "(b) model B+, sigma = 10 mV" (Flow.model_bplus ctx.flow ~vdd ~sigma:0.010)
    (onset 0.010);
  panel "(c) model B+, sigma = 25 mV" (Flow.model_bplus ctx.flow ~vdd ~sigma:0.025)
    (onset 0.025);
  Printf.printf
    "first-fault frequencies: B %.1f MHz; B+ s10 %.1f MHz; B+ s25 %.1f MHz (paper: 707 / 661 / 588)\n"
    fsta (onset 0.010) (onset 0.025)

(* ---------- Fig 2: DTA timing-error CDFs ---------- *)

let fig2 ctx =
  let freqs = grid 800. 2000. (if ctx.scale.label = "paper" then 25. else 50.) in
  let t =
    Table.create
      ~title:
        "Fig 2: timing error probability CDFs from DTA (per instruction, endpoint bit, Vdd)"
      ([ ("f [MHz]", Table.Right) ]
      @ List.concat_map
          (fun (cls, b) ->
            List.map
              (fun v -> (Printf.sprintf "%s b%d@%.1fV" (Op_class.name cls) b v, Table.Right))
              [ 0.7; 0.8 ])
          [ (Op_class.Mul, 3); (Op_class.Mul, 24); (Op_class.Add, 3); (Op_class.Add, 24) ])
  in
  let dbs = [ (0.7, Flow.char_db ctx.flow ~vdd:0.7); (0.8, Flow.char_db ctx.flow ~vdd:0.8) ] in
  List.iter
    (fun f ->
      let period = Sta.period_ps_of_mhz f in
      let cells =
        List.concat_map
          (fun (cls, bit) ->
            List.map
              (fun (_, db) ->
                Table.fmt_pct ~decimals:1
                  (Characterize.error_probability db cls ~endpoint:bit ~period_ps:period
                     ~scale:1.0))
              dbs)
          [ (Op_class.Mul, 3); (Op_class.Mul, 24); (Op_class.Add, 3); (Op_class.Add, 24) ]
      in
      Table.add_row t (fmt_mhz f :: cells))
    freqs;
  Table.print t

(* ---------- Fig 3: the simulation flow itself ---------- *)

let fig3 ctx = print_string (Flow.summary ctx.flow)

(* ---------- Fig 4: MSE vs frequency for individual instructions ---------- *)

let fig4 ctx =
  let vdd = 0.7 and sigma = 0.010 in
  let configs =
    [
      ("l.add 16-bit", Op_class.Add, Characterize.uniform16, 0xFFFF);
      ("l.add 32-bit", Op_class.Add, Characterize.uniform32, U32.mask);
      ("l.mul 32-bit", Op_class.Mul, Characterize.uniform16, U32.mask);
    ]
  in
  let freqs = grid 640. 1250. (if ctx.scale.label = "paper" then 10. else 20.) in
  let t =
    Table.create
      ~title:
        (Printf.sprintf "Fig 4: MSE vs frequency, Vdd = %.1f V, sigma = %.0f mV (model C)"
           vdd (1000. *. sigma))
      (("f [MHz]", Table.Right)
      :: List.map (fun (name, _, _, _) -> (name, Table.Right)) configs)
  in
  let mse_of (_, cls, profile, result_mask) f =
    let model = Flow.model_c ~profile ctx.flow ~vdd ~sigma () in
    let rng = Rng.of_int (0xF14 + int_of_float f) in
    let injector = Injector.create ~model ~freq_mhz:f ~rng () in
    if Injector.cannot_inject injector then 0.
    else begin
      let hook = Injector.hook injector in
      let gen = Rng.split rng in
      let acc = ref 0. in
      let n = ctx.scale.fig4_ops in
      for i = 1 to n do
        let a, b = profile.Characterize.sample gen in
        let clean = Op_class.apply cls a b in
        let mask = hook ~cycle:i ~cls ~a ~b ~result:clean in
        let faulty = clean lxor mask in
        let d =
          float_of_int (faulty land result_mask) -. float_of_int (clean land result_mask)
        in
        acc := !acc +. (d *. d)
      done;
      !acc /. float_of_int n
    end
  in
  let poffs = List.map (fun _ -> ref None) configs in
  List.iter
    (fun f ->
      let cells =
        List.map2
          (fun cfg poff ->
            let mse = mse_of cfg f in
            if mse > 0. && !poff = None then poff := Some f;
            if mse = 0. then "0" else Table.fmt_sci mse)
          configs poffs
      in
      Table.add_row t (fmt_mhz f :: cells))
    freqs;
  Table.print t;
  List.iter2
    (fun (name, _, _, _) poff ->
      match !poff with
      | Some f -> Printf.printf "first errors for %s at ~%.0f MHz\n" name f
      | None -> Printf.printf "no errors observed for %s in the swept range\n" name)
    configs poffs;
  print_endline "(paper: 877 / 746 / 685 MHz)"

(* ---------- Fig 5: median benchmark across Vdd and noise ---------- *)

let fig5 ctx =
  let b = bench ctx "median" in
  List.iter
    (fun vdd ->
      let fsta = Flow.sta_limit_mhz ctx.flow ~vdd in
      List.iter
        (fun sigma ->
          let model = Flow.model_c ctx.flow ~vdd ~sigma () in
          let freqs =
            transition_grid ~fsta ~rel_lo:0.80 ~rel_hi:1.45 ~rel_step:ctx.scale.dense_step
          in
          let points =
            Campaign.run_sweep (spec_for ctx ctx.scale.trials_fig5) ~bench:b ~model
              ~freqs_mhz:freqs
          in
          sweep_table
            ~title:
              (Printf.sprintf "Fig 5: median, Vdd = %.1f V, noise sigma = %.0f mV (model C)"
                 vdd (1000. *. sigma))
            ~metric_name:"rel.err%" points;
          poff_summary ~fsta points;
          print_newline ())
        [ 0.0; 0.010; 0.025 ])
    [ 0.7; 0.8 ]

(* ---------- Fig 6: benchmark comparison at 0.7 V, sigma 10 mV ---------- *)

let fig6 ctx =
  let vdd = 0.7 and sigma = 0.010 in
  let fsta = Flow.sta_limit_mhz ctx.flow ~vdd in
  let vm = (Flow.config ctx.flow).Flow.vdd_model in
  let bplus_cliff = fsta /. Vdd_model.scale_factor vm ~vdd ~noise:(-2. *. sigma) in
  let model = Flow.model_c ctx.flow ~vdd ~sigma () in
  List.iter
    (fun name ->
      let b = bench ctx name in
      let freqs =
        transition_grid ~fsta ~rel_lo:0.90 ~rel_hi:1.35 ~rel_step:ctx.scale.dense_step
      in
      let points =
        Campaign.run_sweep (spec_for ctx ctx.scale.trials) ~bench:b ~model ~freqs_mhz:freqs
      in
      sweep_table
        ~title:(Printf.sprintf "Fig 6: %s, Vdd = %.1f V, sigma = %.0f mV (model C)" name vdd
                  (1000. *. sigma))
        ~metric_name:b.Bench.metric_name points;
      poff_summary ~fsta points;
      Printf.printf "model B+ hard-failure threshold: %.1f MHz (all benchmarks alike)\n\n"
        bplus_cliff)
    [ "mat_mult_8bit"; "mat_mult_16bit"; "kmeans"; "dijkstra" ]

(* ---------- Fig 7: error vs power trade-off ---------- *)

let fig7 ctx =
  let b = bench ctx "median" in
  let freq = Flow.sta_limit_mhz ctx.flow ~vdd:0.7 in
  let step = if ctx.scale.label = "paper" then 0.0025 else 0.005 in
  let vdds =
    grid 0.625 0.700 step |> List.rev (* descend from nominal *)
  in
  List.iter
    (fun sigma ->
      let t =
        Table.create
          ~title:
            (Printf.sprintf
               "Fig 7: median @ %.0f MHz, voltage-overscaling, sigma = %.0f mV (model C)"
               freq (1000. *. sigma))
          [
            ("Vdd [V]", Table.Right);
            ("norm. power", Table.Right);
            ("finished", Table.Right);
            ("correct", Table.Right);
            ("avg rel.err%", Table.Right);
          ]
      in
      let poff = ref None in
      List.iter
        (fun vdd ->
          let model = Flow.model_c ~operating_vdd:vdd ctx.flow ~vdd:0.7 ~sigma () in
          let p = Campaign.run (spec_for ctx ctx.scale.trials) ~bench:b ~model ~freq_mhz:freq in
          if p.Campaign.correct_rate < 1.0 && !poff = None then poff := Some vdd;
          Table.add_row t
            [
              Printf.sprintf "%.4f" vdd;
              Table.fmt_float ~decimals:3 (Power.normalized ~vdd);
              fmt_rate p.Campaign.finished_rate;
              fmt_rate p.Campaign.correct_rate;
              Table.fmt_float ~decimals:2 p.Campaign.mean_error;
            ])
        vdds;
      Table.print t;
      (match !poff with
      | Some v ->
        Printf.printf "PoFF at %.3f V, normalized power %.3f (paper: 0.667 V, 0.93x)\n\n" v
          (Power.normalized ~vdd:v)
      | None -> Printf.printf "no failures down to %.3f V\n\n" (List.nth vdds (List.length vdds - 1))))
    [ 0.0; 0.010; 0.025 ]

(* ---------- ablations and extensions ---------- *)

let ablation_sampling ctx =
  let b = bench ctx "median" in
  let vdd = 0.7 and sigma = 0.010 in
  let fsta = Flow.sta_limit_mhz ctx.flow ~vdd in
  let freqs = transition_grid ~fsta ~rel_lo:0.95 ~rel_hi:1.35 ~rel_step:0.04 in
  let run sampling =
    Campaign.run_sweep (spec_for ctx ctx.scale.trials) ~bench:b
      ~model:(Flow.model_c ~sampling ctx.flow ~vdd ~sigma ())
      ~freqs_mhz:freqs
  in
  let ind = run Model.Independent and corr = run Model.Vector_correlated in
  let t =
    Table.create
      ~title:
        "Ablation: independent vs vector-correlated endpoint sampling (median, 0.7 V, s10)"
      [
        ("f [MHz]", Table.Right);
        ("corr. indep", Table.Right);
        ("corr. vector", Table.Right);
        ("FI/kCyc indep", Table.Right);
        ("FI/kCyc vector", Table.Right);
        ("err% indep", Table.Right);
        ("err% vector", Table.Right);
      ]
  in
  List.iter2
    (fun (i : Campaign.point) (c : Campaign.point) ->
      Table.add_row t
        [
          fmt_mhz i.Campaign.freq_mhz;
          fmt_rate i.Campaign.correct_rate;
          fmt_rate c.Campaign.correct_rate;
          fmt_fi i;
          fmt_fi c;
          Table.fmt_float ~decimals:2 i.Campaign.mean_error;
          Table.fmt_float ~decimals:2 c.Campaign.mean_error;
        ])
    ind corr;
  Table.print t

let class_onsets_table ~title dbs =
  let t =
    Table.create ~title
      (("class", Table.Left)
      :: List.map (fun (label, _) -> (label, Table.Right)) dbs)
  in
  List.iter
    (fun cls ->
      Table.add_row t
        (Op_class.name cls
        :: List.map
             (fun (_, db) ->
               fmt_mhz (Characterize.class_first_failure_mhz db cls ~scale:1.0))
             dbs))
    Op_class.all;
  Table.print t

let ablation_sizing ctx =
  (* Rebuild the flow with slack redistribution disabled to expose what
     the virtual-synthesis compression contributes. *)
  let no_compress =
    List.map (fun t -> { t with Sizing.compression = 0.0 }) Sizing.default_targets
  in
  let config =
    {
      Flow.default_config with
      Flow.char_cycles = min ctx.scale.char_cycles 2000;
      Flow.targets = no_compress;
    }
  in
  let flow_nc = Flow.create ~config () in
  class_onsets_table
    ~title:
      "Ablation: per-class dynamic first-failure frequency [MHz] with and without \
       area-recovery slack redistribution"
    [
      ("sized (default)", Flow.char_db ctx.flow ~vdd:0.7);
      ("no compression", Flow.char_db flow_nc ~vdd:0.7);
    ]

let corners ctx =
  let mk factor =
    let config =
      {
        Flow.default_config with
        Flow.char_cycles = min ctx.scale.char_cycles 2000;
        Flow.corner_factor = factor;
      }
    in
    Flow.create ~config ()
  in
  let slow = mk 1.08 and fastc = mk 0.93 in
  Printf.printf "STA limits [MHz] @0.7V: slow %.1f / typical %.1f / fast %.1f\n"
    (Flow.sta_limit_mhz slow ~vdd:0.7)
    (Flow.sta_limit_mhz ctx.flow ~vdd:0.7)
    (Flow.sta_limit_mhz fastc ~vdd:0.7);
  class_onsets_table
    ~title:"Corners: per-class dynamic first-failure frequency [MHz] @ 0.7 V"
    [
      ("slow (+8%)", Flow.char_db slow ~vdd:0.7);
      ("typical", Flow.char_db ctx.flow ~vdd:0.7);
      ("fast (-7%)", Flow.char_db fastc ~vdd:0.7);
    ]

let model_a_demo ctx =
  (* Model A has no frequency axis at all: show that a fixed bit-flip
     probability produces the same behaviour regardless of the operating
     point — the core criticism of Sec. 3.1. *)
  let b = bench ctx "median" in
  let t =
    Table.create ~title:"Model A: fixed-probability FI is blind to the operating point"
      [
        ("bit-flip prob", Table.Right);
        ("finished", Table.Right);
        ("correct", Table.Right);
        ("FI/kCycle", Table.Right);
        ("rel.err%", Table.Right);
      ]
  in
  List.iter
    (fun prob ->
      let p =
        Campaign.run (spec_for ctx ctx.scale.trials) ~bench:b
          ~model:(Flow.model_a ~bit_flip_prob:prob) ~freq_mhz:707.
      in
      Table.add_row t
        [
          Table.fmt_sci prob;
          fmt_rate p.Campaign.finished_rate;
          fmt_rate p.Campaign.correct_rate;
          fmt_fi p;
          Table.fmt_float ~decimals:2 p.Campaign.mean_error;
        ])
    [ 0.; 1e-8; 1e-7; 1e-6; 1e-5; 1e-4 ];
  Table.print t

let extension_kernels ctx =
  (* Two workloads beyond the paper's set. The instruction-aware model
     predicts crc32 (shift/xor dominated) survives over-scaling further
     than any paper kernel, while fir (streaming MAC) tracks matmul's
     early multiplier-driven failure — class-level timing really does
     translate into application-level resilience ordering. *)
  let vdd = 0.7 and sigma = 0.010 in
  let fsta = Flow.sta_limit_mhz ctx.flow ~vdd in
  let model = Flow.model_c ctx.flow ~vdd ~sigma () in
  List.iter
    (fun (b : Bench.t) ->
      ignore (Bench.validate b);
      let freqs =
        transition_grid ~fsta ~rel_lo:0.92 ~rel_hi:1.45 ~rel_step:ctx.scale.dense_step
      in
      let points =
        Campaign.run_sweep (spec_for ctx ctx.scale.trials) ~bench:b ~model ~freqs_mhz:freqs
      in
      sweep_table
        ~title:
          (Printf.sprintf "Extension kernel %s at %.1f V, sigma %.0f mV (model C)"
             b.Bench.name vdd (1000. *. sigma))
        ~metric_name:b.Bench.metric_name points;
      poff_summary ~fsta points;
      (* Which instruction classes actually carry the faults, probed just
         past the transition onset. *)
      let probe_freq = fsta *. 1.18 in
      let rng = Rng.of_int 4242 in
      let injector = Injector.create ~model ~freq_mhz:probe_freq ~rng () in
      let config =
        {
          Sfi_sim.Cpu.default_config with
          Sfi_sim.Cpu.fault_hook = Some (Injector.hook injector);
          Sfi_sim.Cpu.max_cycles = 10_000_000;
        }
      in
      let mem = Bench.fresh_memory b in
      ignore (Sfi_sim.Cpu.run ~config mem ~entry:b.Bench.program.Sfi_isa.Program.entry);
      let by_class = Injector.fault_bits_by_class injector in
      let total = Array.fold_left ( + ) 0 by_class in
      if total > 0 then begin
        Printf.printf "fault class mix at %.0f MHz:" probe_freq;
        List.iter
          (fun cls ->
            let n = by_class.(Op_class.index cls) in
            if n > 0 then
              Printf.printf "  %s %.0f%%" (Op_class.name cls)
                (100. *. float_of_int n /. float_of_int total))
          Op_class.all;
        print_newline ()
      end;
      print_newline ())
    (Registry.extension_suite ())

let attack ctx =
  (* Adversarial campaign on the checksum-guarded AES kernel: every trial
     is classified the way the fault-attack literature scores an attempt
     (correct / detected by a guard / attack success = flag clear with
     exactly one ciphertext word corrupted / silent data corruption /
     crash). The clock stays inside the STA-safe region so the only
     faults are the attack's own. *)
  let b = Aes.create () in
  ignore (Bench.validate b);
  let vdd = 0.7 in
  let fsta = Flow.sta_limit_mhz ctx.flow ~vdd in
  let freq = fsta *. 0.98 in
  let model key params =
    match Flow.model_by_key ~params ctx.flow ~key ~vdd ~sigma:0. with
    | Ok m -> m
    | Error e -> failwith ("attack experiment: " ^ e)
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Attack campaign on the guarded AES kernel at %.0f MHz (STA %.0f MHz, %.1f V)"
           freq fsta vdd)
      [
        ("attack", Table.Left);
        ("trials", Table.Right);
        ("correct", Table.Right);
        ("detected", Table.Right);
        ("success", Table.Right);
        ("SDC", Table.Right);
        ("crash", Table.Right);
      ]
  in
  let classify (tr : Campaign.trial) =
    if not tr.Campaign.finished then 4
    else if tr.Campaign.error = Aes.class_correct then 0
    else if tr.Campaign.error = Aes.class_detected then 1
    else if tr.Campaign.error = Aes.class_attack_success then 2
    else 3
  in
  (* Each row pools the trials of one or more model instances — the
     glitch row scans the trigger offset the way a bench attacker does,
     since a given window is deterministic (no RNG draws). *)
  let row ~label ~trials models =
    let counts = Array.make 5 0 in
    let total = ref 0 in
    List.iter
      (fun m ->
        let _, trs =
          Campaign.run_detailed (spec_for ctx trials) ~bench:b ~model:m ~freq_mhz:freq
        in
        Array.iter (fun tr -> counts.(classify tr) <- counts.(classify tr) + 1) trs;
        total := !total + Array.length trs)
      models;
    let pct n = fmt_rate (float_of_int n /. float_of_int (max 1 !total)) in
    Table.add_row t
      [
        label;
        string_of_int !total;
        pct counts.(0);
        pct counts.(1);
        pct counts.(2);
        pct counts.(3);
        pct counts.(4);
      ]
  in
  let open Sfi_obs.Json in
  (* Trigger offsets spanning the whole run — checksum, both encryptions
     and the compare/output tail — like an attacker sweeping the glitch
     delay against a trigger. *)
  let ref_cycles = Campaign.reference_cycles b in
  let scan = 16 in
  let glitch_starts =
    List.init scan (fun i -> ref_cycles * (2 + (6 * i)) / (6 * scan))
  in
  row ~label:"glitch (offset scan)" ~trials:1
    (List.map
       (fun s ->
         model "glitch"
           [ ("start", Int s); ("len", Int 2); ("drop_mv", Float 60.) ])
       glitch_starts);
  row ~label:"skip (p=5e-4)" ~trials:ctx.scale.trials
    [ model "skip" [ ("p", Float 5e-4) ] ];
  row ~label:"opcode (p=5e-4)" ~trials:ctx.scale.trials
    [ model "opcode" [ ("p", Float 5e-4) ] ];
  let lo, hi = Aes.data_word_range b in
  row ~label:"state (2 flips, data)" ~trials:ctx.scale.trials
    [ model "state" [ ("flips", Int 2); ("word_lo", Int lo); ("word_hi", Int hi) ] ];
  Table.print t

let quality_margins ctx =
  (* The paper's conclusion: the tool can "determine the timing margins
     required to achieve a desired quality metric". For each kernel, find
     the highest over-scaled frequency that still keeps the application
     inside a quality envelope. *)
  let vdd = 0.7 and sigma = 0.010 in
  let fsta = Flow.sta_limit_mhz ctx.flow ~vdd in
  let model = Flow.model_c ctx.flow ~vdd ~sigma () in
  let freqs = transition_grid ~fsta ~rel_lo:0.90 ~rel_hi:1.35 ~rel_step:0.02 in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Quality margins at %.1f V, sigma %.0f mV: highest frequency meeting each \
            envelope (STA %.0f MHz)"
           vdd (1000. *. sigma) fsta)
      [
        ("benchmark", Table.Left);
        ("always correct", Table.Right);
        ("err <= 1%, finishes", Table.Right);
        ("err <= 10%, finishes", Table.Right);
      ]
  in
  List.iter
    (fun (b : Bench.t) ->
      let points =
        Campaign.run_sweep (spec_for ctx ctx.scale.trials) ~bench:b ~model ~freqs_mhz:freqs
      in
      (* Highest frequency such that every point at or below it satisfies
         the predicate (conservative margin). *)
      let margin pred =
        let rec go best = function
          | [] -> best
          | (p : Campaign.point) :: rest ->
            if pred p then go (Some p.Campaign.freq_mhz) rest else best
        in
        match go None points with
        | None -> "none"
        | Some f -> Printf.sprintf "%.0f MHz (%+.1f%%)" f (100. *. (f -. fsta) /. fsta)
      in
      (* The MSE benchmarks use a relative envelope on their own scale:
         error as a fraction of the fault-saturated plateau is not
         comparable across metrics, so envelopes are % metrics for
         median/kmeans/dijkstra and exactness elsewhere. *)
      let pct_ok limit (p : Campaign.point) =
        p.Campaign.finished_rate >= 0.999
        && (not (Float.is_nan p.Campaign.mean_error))
        && p.Campaign.mean_error <= limit
      in
      let is_pct_metric =
        b.Bench.metric_name <> "mean squared error (MSE)"
      in
      Table.add_row t
        [
          b.Bench.name;
          margin (fun p -> p.Campaign.correct_rate >= 0.999);
          (if is_pct_metric then margin (pct_ok 1.0) else "n/a (MSE metric)");
          (if is_pct_metric then margin (pct_ok 10.0) else "n/a (MSE metric)");
        ])
    ctx.benches;
  Table.print t

let bottlenecks ctx =
  (* The paper's introduction: the tool can "identify and mitigate
     reliability bottlenecks ... (e.g., by pointing out structures that
     lead to timing walls)". Report the per-endpoint onset profile of each
     class and the gate-level critical paths of the slowest endpoints. *)
  let db = Flow.char_db ctx.flow ~vdd:0.7 in
  let setup = db.Characterize.setup_ps in
  let t =
    Table.create
      ~title:
        "Reliability bottlenecks: per-endpoint dynamic onset [MHz] profile per class \
         (wall = endpoints within 5% of the class onset)"
      [
        ("class", Table.Left);
        ("bit0", Table.Right);
        ("bit7", Table.Right);
        ("bit15", Table.Right);
        ("bit23", Table.Right);
        ("bit31", Table.Right);
        ("worst bit", Table.Right);
        ("wall width", Table.Right);
      ]
  in
  List.iter
    (fun cls ->
      let cdb = Characterize.class_db db cls in
      let onset e =
        let mx = Cdf.max_value cdb.Characterize.endpoint_cdfs.(e) in
        if mx <= 0. then infinity else 1e6 /. (mx +. setup)
      in
      let onsets = Array.init 32 onset in
      let worst = ref 0 in
      Array.iteri (fun e f -> if f < onsets.(!worst) then worst := e) onsets;
      let wall =
        Array.fold_left
          (fun acc f -> if f <= onsets.(!worst) *. 1.05 then acc + 1 else acc)
          0 onsets
      in
      let cell e = if onsets.(e) = infinity then "safe" else Printf.sprintf "%.0f" onsets.(e) in
      Table.add_row t
        [
          Op_class.name cls;
          cell 0; cell 7; cell 15; cell 23; cell 31;
          Printf.sprintf "b%d (%.0f)" !worst onsets.(!worst);
          Printf.sprintf "%d/32" wall;
        ])
    Op_class.all;
  Table.print t;
  print_endline "critical paths of the three slowest endpoints (STA, 0.7 V):";
  List.iter
    (fun p -> print_string (Path_report.pp p))
    (Path_report.worst_paths ~count:3 (Flow.alu ctx.flow).Sfi_netlist.Alu.circuit)

(* ---------- registry ---------- *)

let all =
  [
    ("table1", "benchmark properties (measured)");
    ("table2", "timing error models & features");
    ("fig1", "models B / B+ cliffs on the median benchmark");
    ("fig2", "DTA timing-error probability CDFs");
    ("fig3", "the realized simulation flow");
    ("fig4", "MSE vs frequency for add16/add32/mul32 (model C)");
    ("fig5", "median benchmark across Vdd and noise (model C)");
    ("fig6", "benchmark comparison at 0.7 V, sigma 10 mV (model C)");
    ("fig7", "error vs core-power trade-off (model C)");
    ("model-a", "fixed-probability FI baseline (Sec. 3.1)");
    ("ablation-sampling", "independent vs vector-correlated sampling");
    ("ablation-sizing", "effect of slack redistribution on class onsets");
    ("corners", "process/temperature corner characterizations");
    ("quality-margins", "timing margins required per quality envelope");
    ("bottlenecks", "reliability bottlenecks: onset profiles & critical paths");
    ("extension-kernels", "crc32 and fir beyond the paper's benchmark set");
    ("attack", "adversarial fault-attack campaign on the guarded AES kernel");
  ]

let run_one ctx = function
  | "table1" -> table1 ctx; true
  | "table2" -> table2 ctx; true
  | "fig1" -> fig1 ctx; true
  | "fig2" -> fig2 ctx; true
  | "fig3" -> fig3 ctx; true
  | "fig4" -> fig4 ctx; true
  | "fig5" -> fig5 ctx; true
  | "fig6" -> fig6 ctx; true
  | "fig7" -> fig7 ctx; true
  | "model-a" -> model_a_demo ctx; true
  | "ablation-sampling" -> ablation_sampling ctx; true
  | "ablation-sizing" -> ablation_sizing ctx; true
  | "corners" -> corners ctx; true
  | "quality-margins" -> quality_margins ctx; true
  | "bottlenecks" -> bottlenecks ctx; true
  | "extension-kernels" -> extension_kernels ctx; true
  | "attack" -> attack ctx; true
  | _ -> false

let run ctx ids =
  let ids = if ids = [] then List.map fst all else ids in
  List.filter_map
    (fun id ->
      Printf.printf "==== %s (%s scale, %d job%s) ====\n%!" id ctx.scale.label
        (Pool.default_jobs ())
        (if Pool.default_jobs () = 1 then "" else "s");
      (* Wall clock, not [Sys.time]: CPU time sums over all domains and
         would hide any parallel speedup. *)
      let t0 = Unix.gettimeofday () in
      let known =
        Sfi_obs.Span.time (Sfi_obs.Span.make ("experiment." ^ id)) (fun () ->
            run_one ctx id)
      in
      if known then begin
        let dt = Unix.gettimeofday () -. t0 in
        Printf.printf "---- %s done in %.1f s ----\n\n%!" id dt;
        Some (id, dt)
      end
      else begin
        Printf.printf "unknown experiment id %S\n\n" id;
        None
      end)
    ids
