(** Regenerators for every table and figure in the paper's evaluation.

    Each experiment prints the rows/series the paper reports (as text
    tables) to stdout, at one of two scales:

    - [fast]: reduced Monte-Carlo trial counts, coarser frequency grids
      and a shorter characterization kernel — minutes for the full set;
    - [paper]: the paper's settings (at least 100-200 trials per point,
      8 kCycle characterization, fine grids).

    The mapping from experiment ids to the paper's artifacts is in
    DESIGN.md's per-experiment index; EXPERIMENTS.md records the
    paper-vs-measured comparison. *)

type scale = {
  label : string;
  trials_fig5 : int;     (** Monte-Carlo trials for Fig. 5 (paper: 200) *)
  trials : int;          (** trials elsewhere (paper: >= 100) *)
  char_cycles : int;     (** DTA characterization kernel (paper: 8000) *)
  fig4_ops : int;        (** instruction stream length per Fig. 4 point *)
  dense_step : float;    (** relative frequency step in transition regions *)
}

val fast : scale
val paper : scale

type ctx

val make_ctx : ?spec:Sfi_fi.Campaign.Spec.t -> scale -> ctx
(** Builds the flow (netlist, sizing, STA) once; DTA characterizations
    are performed lazily as experiments need them.

    [spec] (default {!Sfi_fi.Campaign.Spec.default}) is the campaign
    policy template: every figure scales it to its own nominal trial
    count with [Spec.with_nominal_trials], so a [Fixed] template
    reproduces the historic per-figure counts bit-for-bit while an
    [Adaptive] one lets each point stop at the requested precision (or
    escalate to at least the figure's count). The template's seed, job
    count and checkpoint file apply to every campaign the experiments
    run. Raises [Invalid_argument] on an invalid spec. *)

val flow : ctx -> Flow.t

val all : (string * string) list
(** (experiment id, one-line description), in run order. *)

val run_one : ctx -> string -> bool
(** Runs one experiment by id; [false] for unknown ids. *)

val run : ctx -> string list -> (string * float) list
(** Runs the given ids (or everything when the list is empty), printing a
    header per experiment. Returns [(id, wall_seconds)] for every id that
    ran, in run order — the raw material of BENCH.json. *)
