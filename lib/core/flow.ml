open Sfi_netlist
open Sfi_timing

type config = {
  clock_mhz : float;
  char_cycles : int;
  char_seed : int;
  process_sigma : float;
  die_seed : int;
  corner_factor : float;
  lib : Cell_lib.t;
  vdd_model : Vdd_model.t;
  targets : Sizing.unit_target list;
}

let default_config =
  {
    clock_mhz = 707.;
    char_cycles = 8000;
    char_seed = 0xD7A;
    process_sigma = 0.03;
    die_seed = 1;
    corner_factor = 1.0;
    lib = Cell_lib.default;
    vdd_model = Vdd_model.default;
    targets = Sizing.default_targets;
  }

type t = {
  config : config;
  alu : Alu.t;
  sta : Sta.report;
  dbs : (float * string, Characterize.t) Hashtbl.t;
  (* [dbs] is a memo table reachable from campaign code running on any
     domain; [dbs_lock] makes lookups compute-once and race-free. *)
  dbs_lock : Mutex.t;
}

let create ?(config = default_config) () =
  let alu = Alu.build ~lib:config.lib () in
  (* Variation first, sizing second: the sizing pass normalizes each unit's
     worst path against the clock on the varied die, so the STA limit lands
     exactly on the constraint; the corner factor then shifts the whole die. *)
  Sizing.apply_process_variation ~sigma:config.process_sigma ~seed:config.die_seed
    alu.Alu.circuit;
  Sizing.size_to_clock ~targets:config.targets ~clock_mhz:config.clock_mhz alu.Alu.circuit;
  if config.corner_factor <> 1.0 then
    Circuit.scale_gate_delays alu.Alu.circuit (fun _ -> config.corner_factor);
  let sta = Sta.analyze ~lib:config.lib ~vdd_model:config.vdd_model alu.Alu.circuit in
  { config; alu; sta; dbs = Hashtbl.create 8; dbs_lock = Mutex.create () }

let config t = t.config

let alu t = t.alu

let sta t = t.sta

let sta_limit_mhz t ~vdd =
  let report =
    if vdd = Vdd_model.nominal_voltage then t.sta
    else Sta.analyze ~vdd ~lib:t.config.lib ~vdd_model:t.config.vdd_model t.alu.Alu.circuit
  in
  Sta.max_frequency_mhz report

let char_db ?(profile = Characterize.uniform32) t ~vdd =
  let key = (vdd, profile.Characterize.profile_name) in
  (* Compute-once under the lock: a second domain asking for the same
     database blocks until the first has characterized and cached it.
     Characterize.run may itself fan out on the pool; its submitter helps
     drain the queue, so holding the lock here cannot deadlock. *)
  Mutex.protect t.dbs_lock (fun () ->
      match Hashtbl.find_opt t.dbs key with
      | Some db -> db
      | None ->
        let db =
          Characterize.run ~cycles:t.config.char_cycles ~seed:t.config.char_seed
            ~vdd_model:t.config.vdd_model ~lib:t.config.lib
            ~profile_for:(fun _ -> profile)
            ~vdd t.alu
        in
        Hashtbl.replace t.dbs key db;
        db)

(* The [model_*] helpers go through the registry; a build error here is
   a programming error (the built-in entries exist and their resource
   requirements are satisfied by construction), so unwrap loudly. *)
let ok_model = function Ok m -> m | Error e -> invalid_arg ("Flow: " ^ e)

let model_a ~bit_flip_prob =
  ok_model
    (Sfi_fi.Model.of_key "A"
       ~params:[ ("p", Sfi_obs.Json.Float bit_flip_prob) ]
       ~resources:Sfi_fi.Model.default_resources)

let endpoint_arrivals_at t ~vdd =
  let report =
    if vdd = Vdd_model.nominal_voltage then t.sta
    else Sta.analyze ~vdd ~lib:t.config.lib ~vdd_model:t.config.vdd_model t.alu.Alu.circuit
  in
  Array.map snd report.Sta.endpoints

let static_resources t ~vdd ~noise =
  {
    Sfi_fi.Model.default_resources with
    Sfi_fi.Model.vdd;
    noise;
    vdd_model = t.config.vdd_model;
    setup_ps = Sta.default_setup_ps;
    endpoint_arrivals = Some (endpoint_arrivals_at t ~vdd);
  }

let model_b t ~vdd =
  ok_model (Sfi_fi.Model.of_key "B" ~resources:(static_resources t ~vdd ~noise:Noise.none))

let model_bplus t ~vdd ~sigma =
  (* sigma = 0 degenerates to model B — same key (and so the same obs
     counter labels and printable form) the variant-era [Model.name]
     produced; the fingerprint bytes are identical either way. *)
  let key = if sigma = 0. then "B" else "B+" in
  ok_model
    (Sfi_fi.Model.of_key key
       ~resources:(static_resources t ~vdd ~noise:(Noise.create ~sigma ())))

let model_c ?(sampling = Sfi_fi.Model.Independent) ?(profile = Characterize.uniform32)
    ?operating_vdd t ~vdd ~sigma () =
  let key =
    match sampling with
    | Sfi_fi.Model.Independent -> "C"
    | Sfi_fi.Model.Vector_correlated -> "C-corr"
  in
  ok_model
    (Sfi_fi.Model.of_key key
       ~resources:
         {
           Sfi_fi.Model.default_resources with
           Sfi_fi.Model.vdd = Option.value operating_vdd ~default:vdd;
           noise = Noise.create ~sigma ();
           vdd_model = t.config.vdd_model;
           db = Some (char_db ~profile t ~vdd);
         })

let model_by_key ?(params = []) ?(profile = Characterize.uniform32) t ~key ~vdd ~sigma =
  match Sfi_fi.Model.Registry.find key with
  | None ->
    Error
      (Printf.sprintf "unknown model %S (registered: %s)" key
         (String.concat ", " (Sfi_fi.Model.Registry.keys ())))
  | Some entry ->
    let resources =
      {
        Sfi_fi.Model.vdd;
        noise = Noise.create ~sigma ();
        vdd_model = t.config.vdd_model;
        setup_ps = Sta.default_setup_ps;
        endpoint_arrivals =
          (if entry.Sfi_fi.Model.Registry.wants_arrivals then
             Some (endpoint_arrivals_at t ~vdd)
           else None);
        db =
          (if entry.Sfi_fi.Model.Registry.wants_db then Some (char_db ~profile t ~vdd)
           else None);
      }
    in
    Sfi_fi.Model.Registry.make ~params entry resources

let summary t =
  let buf = Buffer.create 512 in
  let circuit = t.alu.Alu.circuit in
  Buffer.add_string buf "statistical fault injection flow (cf. paper Fig. 3)\n";
  Buffer.add_string buf
    (Printf.sprintf "  gate-level netlist : %d gates, depth %d, area %.0f units\n"
       (Circuit.gate_count circuit) (Circuit.logic_depth circuit)
       (Circuit.total_area circuit ~lib:t.config.lib));
  List.iter
    (fun (kind, count) ->
      Buffer.add_string buf
        (Printf.sprintf "      %-6s x %d\n" (Sfi_netlist.Cell.name kind) count))
    (Circuit.count_by_kind circuit);
  Buffer.add_string buf "  virtual synthesis  : worst path per unit (ps @ 0.7 V)\n";
  List.iter
    (fun (tag, worst) ->
      Buffer.add_string buf (Printf.sprintf "      %-8s %7.1f\n" tag worst))
    (Sizing.report circuit);
  Buffer.add_string buf
    (Printf.sprintf "  STA                : worst %.1f ps -> limit %.1f MHz @ 0.7 V\n"
       t.sta.Sta.worst
       (Sta.max_frequency_mhz t.sta));
  Mutex.protect t.dbs_lock (fun () ->
      Buffer.add_string buf
        (Printf.sprintf "  DTA characterization cache: %d database(s), %d cycles each\n"
           (Hashtbl.length t.dbs) t.config.char_cycles);
      Hashtbl.iter
        (fun (vdd, profile) (db : Characterize.t) ->
          Buffer.add_string buf
            (Printf.sprintf "      vdd=%.2f V profile=%s max settle %.1f ps\n" vdd profile
               db.Characterize.max_settle))
        t.dbs);
  Buffer.contents buf
