(** The end-to-end statistical fault injection flow (Fig. 3 of the paper).

    [create] performs the design-time part once:

    + generate the EX-stage ALU gate-level netlist;
    + apply die-specific process variation;
    + virtual synthesis: size every datapath unit against the clock
      constraint (STA limit calibrated to 707 MHz at 0.7 V, as in the
      case study) with area-recovery slack redistribution;
    + static timing analysis per endpoint (for models B and B+).

    Dynamic timing characterization (for model C) is performed lazily per
    (supply voltage, operand profile) and cached: each characterization
    runs the gate-level kernel with randomized operands and extracts the
    per-instruction, per-endpoint arrival-time distributions.

    The [model_*] constructors then package everything into the
    {!Sfi_fi.Model.t} values the simulator's injector consumes. *)

open Sfi_netlist
open Sfi_timing

type config = {
  clock_mhz : float;        (** STA limit at 0.7 V; the paper's 707 MHz *)
  char_cycles : int;        (** characterization kernel length; paper: 8000 *)
  char_seed : int;
  process_sigma : float;    (** per-gate random variation; 0.03 default *)
  die_seed : int;
  corner_factor : float;    (** global post-sizing delay multiplier for
                                process/temperature corners: 1.0 typical,
                                >1 slow, <1 fast *)
  lib : Cell_lib.t;
  vdd_model : Vdd_model.t;
  targets : Sizing.unit_target list;
}

val default_config : config

type t

val create : ?config:config -> unit -> t

val config : t -> config

val alu : t -> Alu.t

val sta : t -> Sta.report
(** At the nominal 0.7 V. *)

val sta_limit_mhz : t -> vdd:float -> float
(** The STA frequency limit at a supply voltage (the "STA" line of the
    paper's figures). *)

val char_db :
  ?profile:Characterize.operand_profile -> t -> vdd:float -> Characterize.t
(** Cached DTA characterization at [vdd] with the given operand profile
    (default uniform 32-bit). *)

val model_a : bit_flip_prob:float -> Sfi_fi.Model.t

val model_b : t -> vdd:float -> Sfi_fi.Model.t

val model_bplus : t -> vdd:float -> sigma:float -> Sfi_fi.Model.t

val model_c :
  ?sampling:Sfi_fi.Model.sampling ->
  ?profile:Characterize.operand_profile ->
  ?operating_vdd:float ->
  t ->
  vdd:float ->
  sigma:float ->
  unit ->
  Sfi_fi.Model.t
(** Model C with CDFs characterized at [vdd]. [operating_vdd] (default
    [vdd]) rescales the CDFs through the Vdd-delay curve when the system
    operates away from the characterization voltage — the mechanism of
    the voltage-scaling study (Fig. 7). *)

val model_by_key :
  ?params:(string * Sfi_obs.Json.t) list ->
  ?profile:Characterize.operand_profile ->
  t ->
  key:string ->
  vdd:float ->
  sigma:float ->
  (Sfi_fi.Model.t, string) result
(** Builds {e any} registered model by key, provisioning exactly the
    flow resources its registry entry declares: STA endpoint arrivals
    at [vdd] for [wants_arrivals] entries (B, B+, glitch), the cached
    DTA characterization for [wants_db] entries (C, C-corr). [sigma]
    feeds the supply-noise model where the entry uses one; [params]
    override the entry's defaults (e.g. the glitch window). This is the
    CLI's [--model]/[--model-param] entry point — unknown keys and bad
    parameters come back as [Error] with the registered keys listed. *)

val summary : t -> string
(** Human-readable description of the realized flow: netlist size,
    sizing report, STA limit, characterization state (the textual
    counterpart of the paper's Fig. 3 block diagram). *)
