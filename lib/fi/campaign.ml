open Sfi_util
open Sfi_sim
open Sfi_kernels

(* Observability. Trial and point counts, the reference-cycle cache
   hit/miss split and the per-trial kernel-cycles histogram are pure
   functions of the requested work (deterministic); the per-benchmark
   wall spans are not and are excluded from the determinism signature by
   construction. *)
let obs_trials = Sfi_obs.Counter.make "campaign.trials"

let obs_points = Sfi_obs.Counter.make "campaign.points"

let obs_ref_hits = Sfi_obs.Counter.make "campaign.reference_cycles.hits"

let obs_ref_misses = Sfi_obs.Counter.make "campaign.reference_cycles.misses"

let obs_trial_cycles = Sfi_obs.Hist.make "campaign.trial_kernel_cycles"

let obs_bench_span name = Sfi_obs.Span.make ("campaign.bench." ^ name)

type trial = {
  finished : bool;
  correct : bool;
  fault_bits : int;
  fault_events : int;
  kernel_cycles : int;
  error : float;
}

type point = {
  freq_mhz : float;
  trials : int;
  finished_rate : float;
  correct_rate : float;
  fi_per_kcycle : float;
  mean_error : float;
  any_fault_possible : bool;
}

(* Fault-free cycle counts, cached per benchmark so watchdog budgets do
   not require a reference run per trial. Trials of one point run on
   several domains, so the cache is mutex-guarded — but with a
   per-benchmark once-cell, not one global lock held across the whole
   fault-free run: the short table lock only allocates the benchmark's
   cell, and the reference run itself is computed under that benchmark's
   own lock, so concurrent first uses of *distinct* benchmarks proceed in
   parallel while concurrent callers for the *same* benchmark still block
   until the first one has filled the cell. *)
(* Disk key for a benchmark's fault-free cycle count: the loaded image,
   memory geometry and the pipeline's penalty constants fully determine
   it. The benchmark name is deliberately not part of the key — two
   benchmarks with identical images share a cycle count. *)
let reference_fingerprint (bench : Bench.t) =
  let fp = Sfi_cache.Fingerprint.create "sfi-refcycles/1" in
  let open Sfi_cache.Fingerprint in
  add_int fp bench.Bench.mem_size;
  let p = bench.Bench.program in
  add_int fp p.Sfi_isa.Program.entry;
  add_int fp p.Sfi_isa.Program.limit;
  Array.iter
    (fun (addr, v) ->
      add_int fp addr;
      add_int fp v)
    p.Sfi_isa.Program.words;
  add_int fp Cpu.branch_penalty;
  add_int fp Cpu.load_use_penalty;
  hex fp

let reference_cycles =
  let cells : (string, Mutex.t * int option ref) Hashtbl.t = Hashtbl.create 8 in
  let table_lock = Mutex.create () in
  fun (bench : Bench.t) ->
    let lock, cell =
      Mutex.protect table_lock (fun () ->
          match Hashtbl.find_opt cells bench.Bench.name with
          | Some c -> c
          | None ->
            let c = (Mutex.create (), ref None) in
            Hashtbl.replace cells bench.Bench.name c;
            c)
    in
    Mutex.protect lock (fun () ->
        match !cell with
        | Some cycles ->
          Sfi_obs.Counter.incr obs_ref_hits;
          cycles
        | None ->
          Sfi_obs.Counter.incr obs_ref_misses;
          let key =
            if Sfi_cache.enabled () then Some (reference_fingerprint bench) else None
          in
          let cached =
            match key with
            | None -> None
            | Some key -> (
                match (Sfi_cache.load ~namespace:"refcycles" ~key : int option) with
                | Some cycles when cycles > 0 -> Some cycles
                | _ -> None)
          in
          let cycles =
            match cached with
            | Some cycles -> cycles
            | None ->
              let stats, _ = Bench.run_fault_free bench in
              (match key with
              | Some key -> Sfi_cache.store ~namespace:"refcycles" ~key stats.Cpu.cycles
              | None -> ());
              stats.Cpu.cycles
          in
          cell := Some cycles;
          cycles)

let run_trial_with ~bench ~model ~freq_mhz ~rng =
  let injector = Injector.create ~model ~freq_mhz ~rng in
  let budget = (3 * reference_cycles bench) + 65536 in
  let config =
    {
      Cpu.default_config with
      Cpu.max_cycles = budget;
      Cpu.fault_hook = Some (Injector.hook injector);
    }
  in
  let mem = Bench.fresh_memory bench in
  let stats = Cpu.run ~config mem ~entry:bench.Bench.program.Sfi_isa.Program.entry in
  let finished = stats.Cpu.outcome = Cpu.Exited in
  let actual = if finished then Bench.read_output bench mem else [||] in
  let correct = finished && actual = bench.Bench.golden in
  let error =
    if finished then bench.Bench.metric ~expected:bench.Bench.golden ~actual else nan
  in
  let kernel_cycles = max 1 stats.Cpu.kernel_cycles in
  Sfi_obs.Counter.incr obs_trials;
  Sfi_obs.Hist.observe obs_trial_cycles kernel_cycles;
  {
    finished;
    correct;
    fault_bits = Injector.fault_bits injector;
    fault_events = Injector.fault_events injector;
    kernel_cycles;
    error;
  }

let run_trial ~bench ~model ~freq_mhz ~seed =
  run_trial_with ~bench ~model ~freq_mhz ~rng:(Rng.of_int seed)

(* One pass over the trials accumulates every aggregate the point
   reports; folding in trial order keeps the float sums identical for any
   job count. *)
let aggregate ~freq_mhz ~any_fault_possible trials_list =
  let n, n_finished, n_correct, fi_sum, err_sum =
    List.fold_left
      (fun (n, nf, nc, fi, es) t ->
        ( n + 1,
          (if t.finished then nf + 1 else nf),
          (if t.correct then nc + 1 else nc),
          fi +. (1000. *. float_of_int t.fault_bits /. float_of_int t.kernel_cycles),
          if t.finished then es +. t.error else es ))
      (0, 0, 0, 0., 0.) trials_list
  in
  let fn = float_of_int n in
  {
    freq_mhz;
    trials = n;
    finished_rate = float_of_int n_finished /. fn;
    correct_rate = float_of_int n_correct /. fn;
    fi_per_kcycle = fi_sum /. fn;
    mean_error = (if n_finished = 0 then nan else err_sum /. float_of_int n_finished);
    any_fault_possible;
  }

(* Determinism contract: the per-trial RNGs are split from the root seed
   in index order *before* any trial is dispatched, and the results come
   back from the pool in the same index order — so a point is
   bit-identical for every job count. *)
let run_point_in pool ?(trials = 100) ?(seed = 1) ~bench ~model ~freq_mhz () =
  if trials < 1 then invalid_arg "Campaign.run_point: trials must be positive";
  Sfi_obs.Counter.incr obs_points;
  Sfi_obs.Span.time (obs_bench_span bench.Bench.name) @@ fun () ->
  let root = Rng.of_int (seed lxor 0x0F1) in
  let probe = Injector.create ~model ~freq_mhz ~rng:(Rng.copy root) in
  if Injector.cannot_inject probe then begin
    (* Deterministic fault-free region: one run represents all trials. *)
    let t = run_trial_with ~bench ~model ~freq_mhz ~rng:(Rng.copy root) in
    aggregate ~freq_mhz ~any_fault_possible:false [ t ]
  end
  else begin
    ignore (reference_cycles bench);
    let rngs = Array.make trials root in
    for i = 0 to trials - 1 do
      rngs.(i) <- Rng.split root
    done;
    let results =
      Pool.map pool (fun rng -> run_trial_with ~bench ~model ~freq_mhz ~rng) rngs
    in
    aggregate ~freq_mhz ~any_fault_possible:true (Array.to_list results)
  end

let run_point ?trials ?seed ?jobs ~bench ~model ~freq_mhz () =
  Pool.using ?jobs (fun pool -> run_point_in pool ?trials ?seed ~bench ~model ~freq_mhz ())

let sweep ?trials ?seed ?jobs ~bench ~model ~freqs_mhz () =
  (* One pool serves both levels: frequency points pipeline through it
     while each point fans its trials out on the same executors. *)
  Pool.using ?jobs (fun pool ->
      Pool.map_list pool
        (fun freq_mhz -> run_point_in pool ?trials ?seed ~bench ~model ~freq_mhz ())
        freqs_mhz)

let point_of_first_failure points =
  points
  |> List.filter (fun p -> p.correct_rate < 1.0)
  |> List.fold_left
       (fun acc p ->
         match acc with
         | None -> Some p.freq_mhz
         | Some f -> Some (Float.min f p.freq_mhz))
       None
