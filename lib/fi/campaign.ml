open Sfi_util
open Sfi_sim
open Sfi_kernels
module Spec = Sfi_util.Spec
module Json = Sfi_obs.Json

(* Observability. Trial, batch and point counts, the early-stop count,
   the reference-cycle cache hit/miss split and the per-trial
   kernel-cycles histogram are pure functions of the requested work
   (deterministic); the per-benchmark wall spans are not and are
   excluded from the determinism signature by construction. The
   resumed-trials counter depends on what a checkpoint file happens to
   hold, so it is ~det:false like the cache counters — note that under a
   checkpoint resume the executed-work counters (campaign.trials and the
   dta/injector families) legitimately shrink by the resumed amount; the
   determinism contract is "equal across job counts", not "equal across
   resume states". *)
let obs_trials = Sfi_obs.Counter.make "campaign.trials"

let obs_points = Sfi_obs.Counter.make "campaign.points"

let obs_batches = Sfi_obs.Counter.make "campaign.batches"

let obs_early_stops = Sfi_obs.Counter.make "campaign.early_stops"

let obs_resumed = Sfi_obs.Counter.make ~det:false "campaign.resumed_trials"

let obs_ref_hits = Sfi_obs.Counter.make "campaign.reference_cycles.hits"

let obs_ref_misses = Sfi_obs.Counter.make "campaign.reference_cycles.misses"

let obs_trial_cycles = Sfi_obs.Hist.make "campaign.trial_kernel_cycles"

let obs_bench_span name = Sfi_obs.Span.make ("campaign.bench." ^ name)

type trial = {
  finished : bool;
  correct : bool;
  fault_bits : int;
  fault_events : int;
  kernel_cycles : int;
  error : float;
}

type point = {
  freq_mhz : float;
  trials : int;
  trials_requested : int;
  finished_rate : float;
  correct_rate : float;
  ci_low : float;
  ci_high : float;
  fi_per_kcycle : float;
  mean_error : float;
  any_fault_possible : bool;
}

(* Fault-free cycle counts, cached per benchmark so watchdog budgets do
   not require a reference run per trial. Trials of one point run on
   several domains, so the cache is mutex-guarded — but with a
   per-benchmark once-cell, not one global lock held across the whole
   fault-free run: the short table lock only allocates the benchmark's
   cell, and the reference run itself is computed under that benchmark's
   own lock, so concurrent first uses of *distinct* benchmarks proceed in
   parallel while concurrent callers for the *same* benchmark still block
   until the first one has filled the cell. *)
(* Disk key for a benchmark's fault-free cycle count: the loaded image,
   memory geometry and the pipeline's penalty constants fully determine
   it. The benchmark name is deliberately not part of the key — two
   benchmarks with identical images share a cycle count. *)
let add_bench_inputs fp (bench : Bench.t) =
  let open Sfi_cache.Fingerprint in
  add_int fp bench.Bench.mem_size;
  let p = bench.Bench.program in
  add_int fp p.Sfi_isa.Program.entry;
  add_int fp p.Sfi_isa.Program.limit;
  Array.iter
    (fun (addr, v) ->
      add_int fp addr;
      add_int fp v)
    p.Sfi_isa.Program.words;
  add_int fp Cpu.branch_penalty;
  add_int fp Cpu.load_use_penalty

let reference_fingerprint (bench : Bench.t) =
  let fp = Sfi_cache.Fingerprint.create "sfi-refcycles/1" in
  add_bench_inputs fp bench;
  Sfi_cache.Fingerprint.hex fp

let reference_cycles =
  let cells : (string, Mutex.t * int option ref) Hashtbl.t = Hashtbl.create 8 in
  let table_lock = Mutex.create () in
  fun (bench : Bench.t) ->
    let lock, cell =
      Mutex.protect table_lock (fun () ->
          match Hashtbl.find_opt cells bench.Bench.name with
          | Some c -> c
          | None ->
            let c = (Mutex.create (), ref None) in
            Hashtbl.replace cells bench.Bench.name c;
            c)
    in
    Mutex.protect lock (fun () ->
        match !cell with
        | Some cycles ->
          Sfi_obs.Counter.incr obs_ref_hits;
          cycles
        | None ->
          Sfi_obs.Counter.incr obs_ref_misses;
          let key =
            if Sfi_cache.enabled () then Some (reference_fingerprint bench) else None
          in
          let cached =
            match key with
            | None -> None
            | Some key -> (
                match (Sfi_cache.load ~namespace:"refcycles" ~key : int option) with
                | Some cycles when cycles > 0 -> Some cycles
                | _ -> None)
          in
          let cycles =
            match cached with
            | Some cycles -> cycles
            | None ->
              let stats, _ = Bench.run_fault_free bench in
              (match key with
              | Some key -> Sfi_cache.store ~namespace:"refcycles" ~key stats.Cpu.cycles
              | None -> ());
              stats.Cpu.cycles
          in
          cell := Some cycles;
          cycles)

let run_trial_with ~bench ~model ~freq_mhz ~rng =
  let injector = Injector.create ~model ~freq_mhz ~rng () in
  let budget = (3 * reference_cycles bench) + 65536 in
  let config =
    {
      Cpu.default_config with
      Cpu.max_cycles = budget;
      Cpu.fault_hook = Some (Injector.hook injector);
    }
  in
  let mem = Bench.fresh_memory bench in
  (* Per-trial state hook: architectural-state attack models flip bits
     in the freshly loaded image here; every built-in is a no-op that
     draws nothing, so the RNG stream (and thus every historic result)
     is unchanged. *)
  let (_ : int) = Injector.trial_start injector mem in
  let stats = Cpu.run ~config mem ~entry:bench.Bench.program.Sfi_isa.Program.entry in
  let finished = stats.Cpu.outcome = Cpu.Exited in
  let actual = if finished then Bench.read_output bench mem else [||] in
  let correct = finished && actual = bench.Bench.golden in
  let error =
    if finished then bench.Bench.metric ~expected:bench.Bench.golden ~actual else nan
  in
  let kernel_cycles = max 1 stats.Cpu.kernel_cycles in
  Sfi_obs.Counter.incr obs_trials;
  Sfi_obs.Hist.observe obs_trial_cycles kernel_cycles;
  {
    finished;
    correct;
    fault_bits = Injector.fault_bits injector;
    fault_events = Injector.fault_events injector;
    kernel_cycles;
    error;
  }

let run_trial ~bench ~model ~freq_mhz ~seed =
  run_trial_with ~bench ~model ~freq_mhz ~rng:(Rng.of_int seed)

(* ---------- aggregation and the adaptive stopping rule ---------- *)

(* One pass over the trials accumulates every aggregate the point
   reports; folding in trial order keeps the float sums identical for any
   job count. *)
let aggregate ~freq_mhz ~any_fault_possible ~trials_requested trials_list =
  let n, n_finished, n_correct, fi_sum, err_sum =
    List.fold_left
      (fun (n, nf, nc, fi, es) t ->
        ( n + 1,
          (if t.finished then nf + 1 else nf),
          (if t.correct then nc + 1 else nc),
          fi +. (1000. *. float_of_int t.fault_bits /. float_of_int t.kernel_cycles),
          if t.finished then es +. t.error else es ))
      (0, 0, 0, 0., 0.) trials_list
  in
  let fn = float_of_int n in
  let correct_rate = float_of_int n_correct /. fn in
  let ci_low, ci_high =
    (* A proven fault-free point is deterministic: its single
       representative run stands for every trial, so the interval
       degenerates to the exact rate instead of the (misleadingly wide)
       one-sample Wilson bound. *)
    if any_fault_possible then Stats.wilson_interval ~successes:n_correct ~trials:n ()
    else (correct_rate, correct_rate)
  in
  {
    freq_mhz;
    trials = n;
    trials_requested;
    finished_rate = float_of_int n_finished /. fn;
    correct_rate;
    ci_low;
    ci_high;
    fi_per_kcycle = fi_sum /. fn;
    mean_error = (if n_finished = 0 then nan else err_sum /. float_of_int n_finished);
    any_fault_possible;
  }

(* The stopping rule, evaluated after each completed batch on all trials
   accumulated so far. A point is converged when

   - the 95% Wilson intervals of both [finished_rate] and
     [correct_rate] have half-width <= ci_target, and
   - the standard errors of the mean of [fi_per_kcycle] and (over the
     finished trials) of [error] are within ci_target relative to the
     magnitude of their means (with a floor of 1.0 so near-zero means do
     not demand infinite precision).

   The rule is a pure function of the accumulated trial results in
   order, so the adaptive engine inherits the campaign's determinism
   contract: identical for every job count, and identical when batches
   are replayed from a checkpoint instead of recomputed. *)
let converged ~ci_target trials_list =
  let n = List.length trials_list in
  let n_finished = List.length (List.filter (fun t -> t.finished) trials_list) in
  let n_correct = List.length (List.filter (fun t -> t.correct) trials_list) in
  let halfwidth successes =
    let lo, hi = Stats.wilson_interval ~successes ~trials:n () in
    (hi -. lo) /. 2.
  in
  let se_ok samples =
    let k = Array.length samples in
    k < 2
    ||
    let m = Stats.mean samples in
    let se = Stats.stddev samples /. sqrt (float_of_int k) in
    se <= ci_target *. Float.max 1.0 (Float.abs m)
  in
  let fi_samples =
    Array.of_list
      (List.map
         (fun t -> 1000. *. float_of_int t.fault_bits /. float_of_int t.kernel_cycles)
         trials_list)
  in
  let err_samples =
    Array.of_list
      (List.filter_map (fun t -> if t.finished then Some t.error else None) trials_list)
  in
  halfwidth n_finished <= ci_target
  && halfwidth n_correct <= ci_target
  && se_ok fi_samples && se_ok err_samples

(* ---------- checkpoint codec and content keys ---------- *)

(* [error] round-trips through its IEEE-754 bit pattern (not a decimal
   rendering) so a resumed aggregate is bit-identical to the
   uninterrupted one, nan included. *)
let json_of_trial t =
  Json.List
    [
      Json.Bool t.finished;
      Json.Bool t.correct;
      Json.Int t.fault_bits;
      Json.Int t.fault_events;
      Json.Int t.kernel_cycles;
      Json.String (Printf.sprintf "%016Lx" (Int64.bits_of_float t.error));
    ]

let trial_of_json = function
  | Json.List
      [
        Json.Bool finished;
        Json.Bool correct;
        Json.Int fault_bits;
        Json.Int fault_events;
        Json.Int kernel_cycles;
        Json.String error_bits;
      ]
    when fault_bits >= 0 && fault_events >= 0 && kernel_cycles >= 1 -> (
    match Int64.of_string_opt ("0x" ^ error_bits) with
    | Some bits ->
      Some
        {
          finished;
          correct;
          fault_bits;
          fault_events;
          kernel_cycles;
          error = Int64.float_of_bits bits;
        }
    | None -> None)
  | _ -> None

let json_of_batch trials = Json.List (Array.to_list (Array.map json_of_trial trials))

(* A batch record is only usable if every trial decodes and the batch
   has exactly the length this run would compute — anything else is
   treated like a missing record and recomputed. *)
let batch_of_json ~expect = function
  | Json.List items when List.length items = expect ->
    let ts = List.filter_map trial_of_json items in
    if List.length ts = expect then Some (Array.of_list ts) else None
  | _ -> None

(* Content key of a point's trial stream: every input that determines
   the per-trial results — benchmark image, the full fault model, the
   operating frequency, the root seed and the batch size (which fixes
   the record layout). The adaptive ceiling and precision target are
   deliberately excluded: they only decide how many batches run, so a
   resume with a raised [max_trials] or a tightened [ci_target] still
   reuses every batch already on disk. *)
let add_model_inputs fp model = Model.add_fingerprint model fp

(* The expensive model/bench part is hashed once per run/sweep; the
   per-point key only appends the frequency to that prefix. *)
let checkpoint_prefix (spec : Spec.t) ~bench ~model =
  let fp = Sfi_cache.Fingerprint.create "sfi-point-ckpt/1" in
  add_bench_inputs fp bench;
  add_model_inputs fp model;
  Sfi_cache.Fingerprint.add_int fp spec.Spec.seed;
  Sfi_cache.Fingerprint.add_int fp (Spec.batch_size spec);
  Sfi_cache.Fingerprint.hex fp

let point_key ~prefix ~freq_mhz =
  let fp = Sfi_cache.Fingerprint.create "sfi-point-ckpt/1" in
  Sfi_cache.Fingerprint.add_string fp prefix;
  Sfi_cache.Fingerprint.add_float fp freq_mhz;
  Sfi_cache.Fingerprint.hex fp

(* ---------- the adaptive batch engine ---------- *)

(* Determinism contract: the per-trial RNGs are split from the root seed
   in index order *before* any batch is dispatched (all [max_trials] of
   them, whether or not the point stops early), batches dispatch in
   index order, and the results come back from the pool in input order —
   so a point is bit-identical for every job count, and [Fixed n]
   reproduces the historic single-batch engine exactly. *)
let run_point_full pool (spec : Spec.t) ~ckpt ~bench ~model ~freq_mhz =
  Sfi_obs.Counter.incr obs_points;
  Sfi_obs.Span.time (obs_bench_span bench.Bench.name) @@ fun () ->
  let root = Rng.of_int (spec.Spec.seed lxor 0x0F1) in
  let probe = Injector.create ~model ~freq_mhz ~rng:(Rng.copy root) () in
  let trials_requested = Spec.max_trials spec in
  if Injector.cannot_inject probe then begin
    (* Deterministic fault-free region: one run represents all trials. *)
    let t = run_trial_with ~bench ~model ~freq_mhz ~rng:(Rng.copy root) in
    Sfi_obs.Counter.incr obs_batches;
    (aggregate ~freq_mhz ~any_fault_possible:false ~trials_requested [ t ], [| t |])
  end
  else begin
    let ref_cycles = reference_cycles bench in
    (* Fast-forward: one engine-neutral snapshot trace per benchmark,
       shared by every trial of every point. A reference run that does
       not exit cleanly yields no trace and the point silently falls
       back to full replay — same results either way by contract. A
       cycle-dependent model (the attack families) also yields no trace,
       with a counted fallback, because the probe's schedule replay
       would be unsound for it. *)
    let ff_trace =
      if Spec.resolve_fastforward spec.Spec.fastforward then
        Fastforward.trace_for_model ~bench ~model
          ~stride:(Fastforward.stride_for ~ref_cycles)
      else None
    in
    let run_one rng =
      match ff_trace with
      | None -> run_trial_with ~bench ~model ~freq_mhz ~rng
      | Some trace ->
        (* Mirror [run_trial_with]'s det:true accounting exactly: one
           [reference_cycles] call (budget), one trials bump, one
           cycle-histogram observation per trial. *)
        let budget = (3 * reference_cycles bench) + 65536 in
        let r = Fastforward.run_trial ~bench ~model ~freq_mhz ~budget ~trace ~rng in
        Sfi_obs.Counter.incr obs_trials;
        Sfi_obs.Hist.observe obs_trial_cycles r.Fastforward.kernel_cycles;
        {
          finished = r.Fastforward.finished;
          correct = r.Fastforward.correct;
          fault_bits = r.Fastforward.fault_bits;
          fault_events = r.Fastforward.fault_events;
          kernel_cycles = r.Fastforward.kernel_cycles;
          error = r.Fastforward.error;
        }
    in
    let max_trials = trials_requested in
    let batch = Spec.batch_size spec in
    let rngs = Array.make max_trials root in
    for i = 0 to max_trials - 1 do
      rngs.(i) <- Rng.split root
    done;
    let key =
      match ckpt with
      | None -> ""
      | Some (_, prefix, _) -> point_key ~prefix ~freq_mhz
    in
    let batches = ref [] (* completed batches, newest first *) in
    let n_done = ref 0 and batch_idx = ref 0 and stop = ref false in
    while (not !stop) && !n_done < max_trials do
      let len = min batch (max_trials - !n_done) in
      let resumed =
        match ckpt with
        | None -> None
        | Some (_, _, index) ->
          Option.bind (Checkpoint.find index ~key ~batch:!batch_idx)
            (batch_of_json ~expect:len)
      in
      let computed =
        match resumed with
        | Some ts ->
          Sfi_obs.Counter.add obs_resumed len;
          ts
        | None ->
          let ts = Pool.map pool run_one (Array.sub rngs !n_done len) in
          (match ckpt with
          | Some (path, _, _) ->
            Checkpoint.append ~path ~key ~batch:!batch_idx (json_of_batch ts)
          | None -> ());
          ts
      in
      batches := computed :: !batches;
      n_done := !n_done + len;
      incr batch_idx;
      Sfi_obs.Counter.incr obs_batches;
      match Spec.ci_target spec with
      | Some ci_target when !n_done < max_trials ->
        if
          converged ~ci_target
            (List.concat_map Array.to_list (List.rev !batches))
        then begin
          stop := true;
          Sfi_obs.Counter.incr obs_early_stops
        end
      | _ -> ()
    done;
    let all = List.concat_map Array.to_list (List.rev !batches) in
    ( aggregate ~freq_mhz ~any_fault_possible:true ~trials_requested all,
      Array.of_list all )
  end

let run_point_in pool spec ~ckpt ~bench ~model ~freq_mhz =
  fst (run_point_full pool spec ~ckpt ~bench ~model ~freq_mhz)

(* The checkpoint handle: (path, key prefix, index of valid on-disk
   records). Loaded once per run/sweep; the index is read-only
   afterwards, so concurrent points of a sweep may consult it without
   locking while appending fresh batches line-atomically. *)
let open_checkpoint (spec : Spec.t) ~bench ~model =
  match spec.Spec.checkpoint with
  | None -> None
  | Some path ->
    Some (path, checkpoint_prefix spec ~bench ~model, Checkpoint.load ~path)

let run spec ~bench ~model ~freq_mhz =
  let spec = Spec.validate spec in
  let ckpt = open_checkpoint spec ~bench ~model in
  Pool.using ?jobs:spec.Spec.jobs (fun pool ->
      run_point_in pool spec ~ckpt ~bench ~model ~freq_mhz)

let run_detailed spec ~bench ~model ~freq_mhz =
  let spec = Spec.validate spec in
  let ckpt = open_checkpoint spec ~bench ~model in
  Pool.using ?jobs:spec.Spec.jobs (fun pool ->
      run_point_full pool spec ~ckpt ~bench ~model ~freq_mhz)

let run_sweep spec ~bench ~model ~freqs_mhz =
  let spec = Spec.validate spec in
  let ckpt = open_checkpoint spec ~bench ~model in
  (* One pool serves both levels: frequency points pipeline through it
     while each point fans its trial batches out on the same executors. *)
  Pool.using ?jobs:spec.Spec.jobs (fun pool ->
      Pool.map_list pool
        (fun freq_mhz -> run_point_in pool spec ~ckpt ~bench ~model ~freq_mhz)
        freqs_mhz)

let point_of_first_failure points =
  points
  |> List.filter (fun p -> p.correct_rate < 1.0)
  |> List.fold_left
       (fun acc p ->
         match acc with
         | None -> Some p.freq_mhz
         | Some f -> Some (Float.min f p.freq_mhz))
       None

(* ---------- the sfi-point/1 JSON codec ---------- *)

module Point_json = struct
  let schema = "sfi-point/1"

  let num f = if Float.is_nan f then Json.Null else Json.Float f

  let of_point p =
    Json.Obj
      [
        ("freq_mhz", num p.freq_mhz);
        ("trials", Json.Int p.trials);
        ("trials_requested", Json.Int p.trials_requested);
        ("finished_rate", num p.finished_rate);
        ("correct_rate", num p.correct_rate);
        ("ci_low", num p.ci_low);
        ("ci_high", num p.ci_high);
        ("fi_per_kcycle", num p.fi_per_kcycle);
        ("mean_error", num p.mean_error);
        ("any_fault_possible", Json.Bool p.any_fault_possible);
      ]

  let float_field name j =
    match Json.member name j with
    | Some Json.Null -> nan
    | Some v -> (
      match Json.to_float v with
      | Some f -> f
      | None -> invalid_arg (Printf.sprintf "Point_json: field %s is not a number" name))
    | None -> invalid_arg (Printf.sprintf "Point_json: missing field %s" name)

  let int_field name j =
    match Option.bind (Json.member name j) Json.to_int with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Point_json: missing int field %s" name)

  let to_point j =
    let any_fault_possible =
      match Option.bind (Json.member "any_fault_possible" j) Json.to_bool with
      | Some b -> b
      | None -> invalid_arg "Point_json: missing field any_fault_possible"
    in
    {
      freq_mhz = float_field "freq_mhz" j;
      trials = int_field "trials" j;
      trials_requested = int_field "trials_requested" j;
      finished_rate = float_field "finished_rate" j;
      correct_rate = float_field "correct_rate" j;
      ci_low = float_field "ci_low" j;
      ci_high = float_field "ci_high" j;
      fi_per_kcycle = float_field "fi_per_kcycle" j;
      mean_error = float_field "mean_error" j;
      any_fault_possible;
    }

  let of_sweep ?(meta = []) points =
    Json.Obj
      (("schema", Json.String schema)
      :: (meta @ [ ("points", Json.List (List.map of_point points)) ]))

  let to_sweep j =
    (match Option.bind (Json.member "schema" j) Json.to_string_opt with
    | Some s when s = schema -> ()
    | Some s -> invalid_arg (Printf.sprintf "Point_json: unsupported schema %s" s)
    | None -> invalid_arg "Point_json: missing schema");
    match Json.member "points" j with
    | Some (Json.List ps) -> List.map to_point ps
    | _ -> invalid_arg "Point_json: missing points list"

  let to_string j = Json.to_string j
end
