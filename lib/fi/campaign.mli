(** Monte-Carlo fault-injection campaigns over a benchmark kernel.

    One {e point} is a (benchmark, model, frequency) triple evaluated with
    [trials] independent simulations (different RNG streams split from one
    seed). The four application-level metrics of Fig. 5/6 are aggregated:
    probability to finish, probability of a fully correct result, fault
    injection rate in FIs per 1000 kernel cycles, and the benchmark's
    output-error metric averaged over the runs that finished.

    When the injector proves that no fault can occur at the operating
    point (the grayed-out "n/a" regions of the paper's figures), a single
    fault-free run stands in for all trials.

    Points and sweeps execute on a {!Sfi_util.Pool} of [jobs] domains
    (default: [Pool.default_jobs ()], i.e. the [SFI_JOBS] environment
    variable or all cores). Results are bit-identical for every job
    count: the per-trial RNG streams are split from the root seed in a
    fixed order before dispatch, and aggregation folds the trials in that
    same order. *)

open Sfi_kernels

type trial = {
  finished : bool;
  correct : bool;
  fault_bits : int;
  fault_events : int;
  kernel_cycles : int;
  error : float;  (** output metric; [nan] when the run did not finish *)
}

type point = {
  freq_mhz : float;
  trials : int;
  finished_rate : float;
  correct_rate : float;
  fi_per_kcycle : float;   (** mean bit flips per 1000 kernel cycles *)
  mean_error : float;      (** mean metric over finished runs; [nan] if none *)
  any_fault_possible : bool;
}

val reference_cycles : Bench.t -> int
(** The benchmark's fault-free cycle count, used for watchdog budgets.
    Memoized per benchmark name for the process lifetime; when the
    persistent cache is enabled ({!Sfi_cache.set_dir} or
    [SFI_CACHE_DIR]), the count is additionally stored on disk in the
    ["refcycles"] namespace, keyed by the program image, memory
    geometry and pipeline penalty constants (not the name — identical
    images share an entry). *)

val run_trial :
  bench:Bench.t -> model:Model.t -> freq_mhz:float -> seed:int -> trial
(** One simulation with its own RNG stream; watchdog set to 3x the
    fault-free cycle count (+64k slack). *)

val run_point :
  ?trials:int ->
  ?seed:int ->
  ?jobs:int ->
  bench:Bench.t ->
  model:Model.t ->
  freq_mhz:float ->
  unit ->
  point
(** Default 100 trials (the paper's minimum per data point), fanned out
    over [jobs] domains. The returned point does not depend on [jobs]. *)

val sweep :
  ?trials:int ->
  ?seed:int ->
  ?jobs:int ->
  bench:Bench.t ->
  model:Model.t ->
  freqs_mhz:float list ->
  unit ->
  point list
(** Frequency points pipeline through the same [jobs]-domain pool their
    trials fan out on. *)

val point_of_first_failure : point list -> float option
(** Lowest swept frequency at which the correct-rate drops below 100%
    (the PoFF of the paper: where the application first does not finish
    with a fully correct result). *)
