(** Monte-Carlo fault-injection campaigns over a benchmark kernel.

    One {e point} is a (benchmark, model, frequency) triple evaluated with
    independent simulations (different RNG streams split from one seed).
    The four application-level metrics of Fig. 5/6 are aggregated:
    probability to finish, probability of a fully correct result, fault
    injection rate in FIs per 1000 kernel cycles, and the benchmark's
    output-error metric averaged over the runs that finished.

    How a point spends its trial budget is described by a
    {!Sfi_util.Spec.t} (re-exported here as {!Spec}): either a fixed
    trial count — bit-identical to the historic engine — or an adaptive
    policy that runs trials in deterministic batches and stops as soon
    as the point's 95% Wilson intervals and standard errors reach the
    requested precision, escalating up to [max_trials] otherwise.

    When the injector proves that no fault can occur at the operating
    point (the grayed-out "n/a" regions of the paper's figures), a single
    fault-free run stands in for all trials.

    Points and sweeps execute on a {!Sfi_util.Pool} of [jobs] domains
    (default: [Pool.default_jobs ()], i.e. the [SFI_JOBS] environment
    variable or all cores). Results are bit-identical for every job
    count: the per-trial RNG streams are split from the root seed in a
    fixed order before dispatch, batches dispatch in index order, the
    adaptive stopping rule is a pure function of the in-order results so
    far, and aggregation folds the trials in that same order.

    With [Spec.with_checkpoint path] every completed batch is appended
    to a CRC-validated JSONL log ({!Checkpoint}); a killed campaign
    rerun with the same spec reloads the finished batches instead of
    recomputing them and produces a bit-identical point — the stopping
    decisions replay on the loaded data. Records are keyed by a content
    fingerprint of the benchmark image, the fault model, the frequency,
    the seed and the batch size, so one file can safely serve many
    sweeps; stale or foreign records are simply never matched. *)

open Sfi_kernels

module Spec = Sfi_util.Spec

type trial = {
  finished : bool;
  correct : bool;
  fault_bits : int;
  fault_events : int;
  kernel_cycles : int;
  error : float;  (** output metric; [nan] when the run did not finish *)
}

type point = {
  freq_mhz : float;
  trials : int;            (** trials actually executed (or resumed) *)
  trials_requested : int;  (** the spec's per-point ceiling *)
  finished_rate : float;
  correct_rate : float;
  ci_low : float;   (** 95% Wilson lower bound on [correct_rate] *)
  ci_high : float;  (** 95% Wilson upper bound on [correct_rate] *)
  fi_per_kcycle : float;   (** mean bit flips per 1000 kernel cycles *)
  mean_error : float;      (** mean metric over finished runs; [nan] if none *)
  any_fault_possible : bool;
}

val reference_cycles : Bench.t -> int
(** The benchmark's fault-free cycle count, used for watchdog budgets.
    Memoized per benchmark name for the process lifetime; when the
    persistent cache is enabled ({!Sfi_cache.set_dir} or
    [SFI_CACHE_DIR]), the count is additionally stored on disk in the
    ["refcycles"] namespace, keyed by the program image, memory
    geometry and pipeline penalty constants (not the name — identical
    images share an entry). *)

val run_trial :
  bench:Bench.t -> model:Model.t -> freq_mhz:float -> seed:int -> trial
(** One simulation with its own RNG stream; watchdog set to 3x the
    fault-free cycle count (+64k slack). *)

val run : Spec.t -> bench:Bench.t -> model:Model.t -> freq_mhz:float -> point
(** Evaluates one point under the spec's trial policy, seed, job count
    and (optional) checkpoint. [Fixed n] reproduces the historic
    [run_point ~trials:n] bit-for-bit. Raises [Invalid_argument] on an
    invalid spec. *)

val run_detailed :
  Spec.t -> bench:Bench.t -> model:Model.t -> freq_mhz:float -> point * trial array
(** {!run}, plus the individual trials behind the aggregate, in the
    deterministic trial order (so any per-trial classification derived
    from them — e.g. the attack experiment's success/SDC/detected
    split — inherits the point's bit-identical-across-jobs-and-resumes
    contract). The array holds the single representative run when the
    point is proven fault-free. *)

val run_sweep :
  Spec.t -> bench:Bench.t -> model:Model.t -> freqs_mhz:float list -> point list
(** Frequency points pipeline through the same [jobs]-domain pool their
    trial batches fan out on; all points share the spec (and its
    checkpoint file — records are keyed per frequency). *)

val point_of_first_failure : point list -> float option
(** Lowest swept frequency at which the correct-rate drops below 100%
    (the PoFF of the paper: where the application first does not finish
    with a fully correct result). *)

(** Versioned JSON codec for points and sweeps — the one serialization
    used by the CLI, the golden tests and the bench harness. Floats are
    written with {!Sfi_obs.Json}'s round-tripping writer; [nan] fields
    (e.g. [mean_error] when nothing finished) encode as [null]. *)
module Point_json : sig
  val schema : string
  (** ["sfi-point/1"]. *)

  val of_point : point -> Sfi_obs.Json.t

  val to_point : Sfi_obs.Json.t -> point
  (** Raises [Invalid_argument] on missing or mistyped fields. *)

  val of_sweep : ?meta:(string * Sfi_obs.Json.t) list -> point list -> Sfi_obs.Json.t
  (** [{"schema": "sfi-point/1", <meta...>, "points": [...]}]. *)

  val to_sweep : Sfi_obs.Json.t -> point list
  (** Raises [Invalid_argument] on a missing or unsupported schema. *)

  val to_string : Sfi_obs.Json.t -> string
end
