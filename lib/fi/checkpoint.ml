module Json = Sfi_obs.Json

(* All three counters depend on what happens to be on disk, not on the
   requested work, so they are excluded from the determinism signature —
   an interrupted-and-resumed run and an uninterrupted one report the
   same deterministic counters (see Sfi_cache for the same contract). *)
let obs_written = Sfi_obs.Counter.make ~det:false "checkpoint.records_written"

let obs_loaded = Sfi_obs.Counter.make ~det:false "checkpoint.records_loaded"

let obs_corrupt = Sfi_obs.Counter.make ~det:false "checkpoint.corrupt_rejected"

let version = "sfi-ckpt/1"

let crc_hex s = Printf.sprintf "%08x" (Sfi_cache.crc32 s)

let encode ~key ~batch data =
  let payload =
    Json.Obj
      [
        ("v", Json.String version);
        ("key", Json.String key);
        ("batch", Json.Int batch);
        ("data", data);
      ]
  in
  let body = Json.to_string payload in
  Json.to_string (Json.Obj [ ("p", payload); ("crc", Json.String (crc_hex body)) ])

(* A record survives only if it parses, its CRC trailer matches the
   re-serialized payload (the writer and reader share one canonical JSON
   printer, so the bytes are reproducible), and it carries the current
   format version. Anything else — torn tail line from a kill, flipped
   bytes, stale format — is rejected and counted, never trusted. *)
let decode line =
  match Json.parse line with
  | exception Json.Parse_error _ -> None
  | v -> (
    match (Json.member "p" v, Option.bind (Json.member "crc" v) Json.to_string_opt) with
    | Some payload, Some crc when crc_hex (Json.to_string payload) = crc -> (
      match
        ( Option.bind (Json.member "v" payload) Json.to_string_opt,
          Option.bind (Json.member "key" payload) Json.to_string_opt,
          Option.bind (Json.member "batch" payload) Json.to_int,
          Json.member "data" payload )
      with
      | Some v, Some key, Some batch, Some data when v = version && batch >= 0 ->
        Some (key, batch, data)
      | _ -> None)
    | _ -> None)

let append ~path ~key ~batch data =
  let line = encode ~key ~batch data ^ "\n" in
  (* O_APPEND keeps concurrent writers line-atomic in practice; a torn
     line from a crash mid-write fails CRC validation on the next read.
     I/O errors are swallowed: the checkpoint accelerates resume, it is
     never a correctness dependency. *)
  match open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path with
  | exception Sys_error _ -> ()
  | oc ->
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc line;
        Sfi_obs.Counter.incr obs_written)

let read ~path =
  match open_in_bin path with
  | exception Sys_error _ -> []
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec loop acc =
          match input_line ic with
          | exception End_of_file -> List.rev acc
          | "" -> loop acc
          | line -> (
            match decode line with
            | Some rec_ ->
              Sfi_obs.Counter.incr obs_loaded;
              loop (rec_ :: acc)
            | None ->
              Sfi_obs.Counter.incr obs_corrupt;
              loop acc)
        in
        loop [])

type index = (string * int, Json.t) Hashtbl.t

let index records =
  let tbl : index = Hashtbl.create 64 in
  (* Later duplicates win: a resume may legitimately re-append a batch
     that an earlier corrupt record forced it to recompute. *)
  List.iter (fun (key, batch, data) -> Hashtbl.replace tbl (key, batch) data) records;
  tbl

let load ~path = index (read ~path)

let find tbl ~key ~batch = Hashtbl.find_opt tbl (key, batch)
