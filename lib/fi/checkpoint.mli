(** Append-only CRC-validated JSONL record log for campaign checkpoints.

    Each line is one record: [{"p": payload, "crc": "xxxxxxxx"}] where
    [payload = {"v": "sfi-ckpt/1", "key": K, "batch": B, "data": D}] and
    the trailer is the CRC-32 (the {!Sfi_cache.crc32} reflected variant)
    of the canonically serialized payload. [key] is a content
    fingerprint of every input that determines the record's data — the
    {!Sfi_cache.Fingerprint} style — so a checkpoint file can be shared
    between runs and across points of a sweep: a record is only ever
    consumed by a run that would recompute bit-identical data.

    Robustness contract: a record that fails to parse, fails CRC
    validation (torn tail line after a kill, flipped bytes) or carries
    another format version is skipped and counted in the
    [checkpoint.corrupt_rejected] observability counter — the
    corresponding batch is simply recomputed. All checkpoint counters
    are registered [~det:false]: they depend on disk state, so resumed
    and uninterrupted runs keep identical deterministic signatures. *)

val version : string
(** ["sfi-ckpt/1"]; records of other versions are rejected on read. *)

val append : path:string -> key:string -> batch:int -> Sfi_obs.Json.t -> unit
(** Appends one record ([O_APPEND], one [write]). I/O errors are
    swallowed — checkpointing accelerates resume, it is never a
    correctness dependency. *)

val read : path:string -> (string * int * Sfi_obs.Json.t) list
(** All valid records in file order ([(key, batch, data)]); invalid
    lines are skipped (counted) and a missing file reads as empty. *)

type index = (string * int, Sfi_obs.Json.t) Hashtbl.t

val index : (string * int * Sfi_obs.Json.t) list -> index
(** Later records win over earlier ones with the same (key, batch). *)

val load : path:string -> index
(** [index (read ~path)]. *)

val find : index -> key:string -> batch:int -> Sfi_obs.Json.t option
