open Sfi_util
open Sfi_sim
open Sfi_kernels

(* ZOFI-style fault-free fast-forward (DESIGN.md §13).

   A trial's execution is deterministic and identical to the fault-free
   reference run until its first injected fault: the fault-model hooks
   depend only on the instruction class and the trial's private RNG
   stream, never on operand values, so the whole fault decision sequence
   of a trial is a pure function of (reference hook-call schedule, trial
   RNG stream). That makes two eliminations sound:

   - {e analytic trials}: replay the recorded schedule against the
     trial's RNG (the "probe"); if no hook returns a nonzero mask, the
     trial is provably the reference run and its result is assembled
     from the cached reference stats and outputs without touching the
     ISS at all;
   - {e suffix trials}: otherwise, restore the sparse snapshot nearest
     before the first-fault cycle and simulate only the suffix, with the
     real injector seeded from the RNG state captured at that snapshot
     boundary, so the suffix re-fires the boundary-to-fault hooks with
     the same draws (masks 0), injects the same first fault, and then
     diverges exactly as the full run would.

   Bit-identity hinges on draw accounting: the probe consumes exactly
   the draws the full run would, and a snapshot boundary at cycle [s]
   partitions the hook schedule exactly — each instruction fires at most
   one hook at its post-stall EX cycle and the cycle counter is strictly
   increasing across instructions, so hooks of instructions executed
   before the (pre-instruction) snapshot have cycle < s and all later
   ones have cycle >= s. *)

(* Work accounting. Everything here measures elided or replayed work,
   not results — det:false like the cache/cpu/injector work families, so
   fast-forward On and Off keep identical det signatures. *)
let obs_elided = Sfi_obs.Counter.make ~det:false "fastforward.trials_elided"

let obs_restores = Sfi_obs.Counter.make ~det:false "fastforward.restores"

let obs_suffix_cycles = Sfi_obs.Counter.make ~det:false "fastforward.suffix_cycles"

let obs_cycles_elided = Sfi_obs.Counter.make ~det:false "fastforward.cycles_elided"

let obs_traces = Sfi_obs.Counter.make ~det:false "fastforward.traces_recorded"

let obs_snapshots = Sfi_obs.Counter.make ~det:false "fastforward.snapshots"

(* Memory deltas are tracked at this granularity: small enough that a
   kernel's working set stays sparse against a 64 KiB image, large
   enough that the per-snapshot diff is a handful of memcmps. *)
let page_size = 256

type snap = {
  state : Cpu.snapshot;
  pages : (int * string) array;
      (* pages changed since the previous snapshot, ascending index *)
}

type trace = {
  stride : int;
  trace_page_size : int;
  snaps : snap array; (* strictly increasing snapshot cycles, snaps.(0) at cycle 0 *)
  sched_cycle : int array; (* hook-call cycles, strictly increasing *)
  sched_cls : int array; (* Op_class.index per hook call *)
  ref_stats : Cpu.stats;
  ref_output : U32.t array;
}

(* The snapshot stride knob: finer strides shrink the replayed
   prefix-to-fault window of suffix trials but grow the trace (and its
   recording cost); the default aims at ~128 snapshots per program,
   which keeps the average replayed window under 0.5 % of the program
   while a 64 KiB image yields traces of at most a few MiB. *)
let stride_for ~ref_cycles =
  match Option.bind (Sys.getenv_opt "SFI_SNAP_STRIDE") int_of_string_opt with
  | Some s when s > 0 -> s
  | _ -> max 64 (ref_cycles / 128)

(* Dense class list for decoding [sched_cls] (Op_class has index/all but
   no inverse). *)
let class_of_index = Array.of_list Op_class.all

(* growable int buffer for the hook schedule *)
type ibuf = { mutable buf : int array; mutable len : int }

let ibuf () = { buf = Array.make 4096 0; len = 0 }

let ipush b v =
  if b.len = Array.length b.buf then begin
    let bigger = Array.make (2 * b.len) 0 in
    Array.blit b.buf 0 bigger 0 b.len;
    b.buf <- bigger
  end;
  b.buf.(b.len) <- v;
  b.len <- b.len + 1

let icontents b = Array.sub b.buf 0 b.len

(* ---------- recording ---------- *)

(* One interpreter pass over the fault-free reference run, capturing a
   snapshot + dirty-page delta at every stride boundary and the full
   hook-call schedule (the recording hook returns mask 0, so the run IS
   the reference run). Always interpreted: the trace is engine-neutral
   data, and keying it off the recording engine would split cache
   entries for bit-identical contents. Returns [None] when the
   reference run does not exit cleanly — fast-forward then falls back
   to full replay for this benchmark. *)
let record ~bench ~stride =
  let mem = Bench.fresh_memory bench in
  let shadow = Memory.copy mem in
  let n_pages = (Memory.size mem + page_size - 1) / page_size in
  let snaps = ref [] in
  let n_snaps = ref 0 in
  let cycles = ibuf () and classes = ibuf () in
  let hook ~cycle ~cls ~a:_ ~b:_ ~result:_ =
    ipush cycles cycle;
    ipush classes (Op_class.index cls);
    0
  in
  let on_snapshot state =
    let dirty = ref [] in
    for p = n_pages - 1 downto 0 do
      let pos = p * page_size in
      if not (Memory.equal_range mem shadow ~pos ~len:page_size) then begin
        let s = Memory.sub_string mem ~pos ~len:page_size in
        Memory.blit_from_string shadow ~pos s;
        dirty := (p, s) :: !dirty
      end
    done;
    snaps := { state; pages = Array.of_list !dirty } :: !snaps;
    incr n_snaps
  in
  let config = { Cpu.default_config with Cpu.fault_hook = Some hook } in
  let stats =
    Cpu.run_recording ~config ~stride ~on_snapshot mem
      ~entry:bench.Bench.program.Sfi_isa.Program.entry
  in
  Sfi_obs.Counter.incr obs_traces;
  Sfi_obs.Counter.add obs_snapshots !n_snaps;
  if stats.Cpu.outcome <> Cpu.Exited then None
  else
    Some
      {
        stride;
        trace_page_size = page_size;
        snaps = Array.of_list (List.rev !snaps);
        sched_cycle = icontents cycles;
        sched_cls = icontents classes;
        ref_stats = stats;
        ref_output = Bench.read_output bench mem;
      }

(* ---------- the sfi-snap/1 cache codec ---------- *)

(* Content key of a snapshot trace: the benchmark image and pipeline
   constants (the same inputs that determine reference cycles) plus the
   stride and page geometry. Deliberately engine-free. *)
let trace_fingerprint (bench : Bench.t) ~stride =
  let fp = Sfi_cache.Fingerprint.create "sfi-snap/1" in
  let open Sfi_cache.Fingerprint in
  add_int fp bench.Bench.mem_size;
  let p = bench.Bench.program in
  add_int fp p.Sfi_isa.Program.entry;
  add_int fp p.Sfi_isa.Program.limit;
  Array.iter
    (fun (addr, v) ->
      add_int fp addr;
      add_int fp v)
    p.Sfi_isa.Program.words;
  add_int fp Cpu.branch_penalty;
  add_int fp Cpu.load_use_penalty;
  add_int fp stride;
  add_int fp page_size;
  hex fp

(* Cheap post-load invariants per the cache contract (the namespace and
   fingerprint already bind the contents; this guards decode of a
   foreign value marshalled under the same key by accident). *)
let plausible t =
  t.stride > 0
  && t.trace_page_size = page_size
  && Array.length t.snaps > 0
  && Array.length t.sched_cycle = Array.length t.sched_cls
  && t.ref_stats.Cpu.outcome = Cpu.Exited

(* Per-(benchmark, stride) in-process memo, mutex-guarded like
   [Campaign.reference_cycles]: concurrent first uses of distinct
   benchmarks record in parallel, same-benchmark callers block until
   the first recording lands. *)
let trace_for =
  let cells : (string * int, Mutex.t * trace option option ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let table_lock = Mutex.create () in
  fun ~(bench : Bench.t) ~stride ->
    let id = (bench.Bench.name, stride) in
    let lock, cell =
      Mutex.protect table_lock (fun () ->
          match Hashtbl.find_opt cells id with
          | Some c -> c
          | None ->
            let c = (Mutex.create (), ref None) in
            Hashtbl.replace cells id c;
            c)
    in
    Mutex.protect lock (fun () ->
        match !cell with
        | Some t -> t
        | None ->
          let key =
            if Sfi_cache.enabled () then Some (trace_fingerprint bench ~stride)
            else None
          in
          let cached =
            match key with
            | None -> None
            | Some key -> (
              match (Sfi_cache.load ~namespace:"snap" ~key : trace option) with
              | Some t when plausible t -> Some t
              | _ -> None)
          in
          let t =
            match cached with
            | Some t -> Some t
            | None ->
              let t = record ~bench ~stride in
              (match (key, t) with
              | Some key, Some t -> Sfi_cache.store ~namespace:"snap" ~key t
              | _ -> ());
              t
          in
          cell := Some t;
          t)

(* Counted fallback for models the probe cannot soundly replay: how the
   trace was (not) obtained is elided-work metadata, det:false like the
   rest of the family. *)
let obs_model_unsupported =
  Sfi_obs.Counter.make ~det:false "fastforward.model_unsupported"

let trace_for_model ~bench ~model ~stride =
  if Model.cycle_dependent model then begin
    Sfi_obs.Counter.incr obs_model_unsupported;
    None
  end
  else trace_for ~bench ~stride

(* ---------- the fast-forwarded trial ---------- *)

type result = {
  finished : bool;
  correct : bool;
  fault_bits : int;
  fault_events : int;
  kernel_cycles : int;
  error : float;
}

(* Assembles the trial result exactly like [Campaign.run_trial_with]
   does from a simulated run. *)
let wrap_up ~(bench : Bench.t) ~stats ~output ~fault_bits ~fault_events =
  let finished = stats.Cpu.outcome = Cpu.Exited in
  let correct = finished && output = bench.Bench.golden in
  let error =
    if finished then bench.Bench.metric ~expected:bench.Bench.golden ~actual:output
    else nan
  in
  {
    finished;
    correct;
    fault_bits;
    fault_events;
    kernel_cycles = max 1 stats.Cpu.kernel_cycles;
    error;
  }

(* Per-class-index gaussian-skip table for a probe injector: [k >= 0]
   means a hook call for that class is a provable no-op consuming
   exactly [k] gaussians, [-1] means it must actually run. Consecutive
   skippable schedule entries are batched into one
   [Rng.skip_gaussians] jump — draw-for-draw equivalent, minus the
   per-call threshold math and transcendentals. *)
let skip_table probe =
  Array.map
    (fun cls ->
      match Injector.skippable_gaussians probe cls with Some k -> k | None -> -1)
    class_of_index

(* The bare probe, for statistical validation: where (and in which
   class) would this trial's first fault land? Walks a copy of the
   stream, so the caller's [rng] is untouched. *)
let first_fault ~model ~freq_mhz ~trace ~rng =
  let probe_rng = Rng.copy rng in
  let probe = Injector.create ~count_obs:false ~model ~freq_mhz ~rng:probe_rng () in
  let hook = Injector.hook probe in
  let skip_tab = skip_table probe in
  let pending = ref 0 in
  let flush () =
    if !pending > 0 then begin
      Rng.skip_gaussians probe_rng !pending;
      pending := 0
    end
  in
  let n = Array.length trace.sched_cycle in
  let rec go i =
    if i >= n then None
    else begin
      let ci = trace.sched_cls.(i) in
      let k = Array.unsafe_get skip_tab ci in
      if k >= 0 then begin
        pending := !pending + k;
        go (i + 1)
      end
      else begin
        flush ();
        let c = trace.sched_cycle.(i) in
        let cls = class_of_index.(ci) in
        if hook ~cycle:c ~cls ~a:0 ~b:0 ~result:0 <> 0 then Some (c, cls)
        else go (i + 1)
      end
    end
  in
  go 0

let run_trial ~(bench : Bench.t) ~model ~freq_mhz ~budget ~trace ~rng =
  (* The probe: a silent injector walking the recorded schedule against
     a copy of the trial stream. Every hook call consumes exactly the
     draws the full run's corresponding call would (the models ignore
     cycle and operands), so the first nonzero mask found here IS the
     trial's first fault, and the RNG copies taken at snapshot
     boundaries are exactly the stream states a full run would carry
     into those cycles. *)
  let probe_rng = Rng.copy rng in
  let probe = Injector.create ~count_obs:false ~model ~freq_mhz ~rng:probe_rng () in
  let hook = Injector.hook probe in
  let skip_tab = skip_table probe in
  let pending = ref 0 in
  let flush () =
    if !pending > 0 then begin
      Rng.skip_gaussians probe_rng !pending;
      pending := 0
    end
  in
  let n = Array.length trace.sched_cycle in
  let snaps = trace.snaps in
  let n_snaps = Array.length snaps in
  let boundary = Array.make n_snaps rng in
  (* filled up to [next_snap) *)
  let next_snap = ref 0 in
  let fault_at = ref (-1) in
  let i = ref 0 in
  while !fault_at < 0 && !i < n do
    let c = Array.unsafe_get trace.sched_cycle !i in
    (* Schedule cycles are strictly increasing, so every boundary with
       snapshot cycle <= c is crossed before this entry's draws: save
       the stream state there. Boundaries are checked for every entry
       before it can join the pending batch, so a boundary crossed here
       was crossed by no earlier entry — everything pending has cycle
       below the boundary and must be consumed before the copy. *)
    while
      !next_snap < n_snaps
      && Cpu.snapshot_cycle (Array.unsafe_get snaps !next_snap).state <= c
    do
      flush ();
      boundary.(!next_snap) <- Rng.copy probe_rng;
      incr next_snap
    done;
    let ci = Array.unsafe_get trace.sched_cls !i in
    let k = Array.unsafe_get skip_tab ci in
    if k >= 0 then begin
      pending := !pending + k;
      incr i
    end
    else begin
      flush ();
      let cls = Array.unsafe_get class_of_index ci in
      if hook ~cycle:c ~cls ~a:0 ~b:0 ~result:0 <> 0 then fault_at := !i else incr i
    end
  done;
  if !fault_at < 0 then begin
    (* Provably fault-free: the trial is the reference run. *)
    Sfi_obs.Counter.incr obs_elided;
    Sfi_obs.Counter.add obs_cycles_elided trace.ref_stats.Cpu.cycles;
    wrap_up ~bench ~stats:trace.ref_stats ~output:trace.ref_output ~fault_bits:0
      ~fault_events:0
  end
  else begin
    (* First fault at schedule entry [!fault_at]: restore the nearest
       preceding snapshot — [snaps.(0)] sits at cycle 0, so [j >= 0] —
       and simulate the suffix with a real injector seeded from the
       boundary stream state. The replayed window between the snapshot
       and the fault re-fires its hooks with the same draws (all mask
       0, all under the re-armed fi_on window the snapshot carries),
       then injects the same first fault and runs the divergent tail
       under the same absolute cycle budget as a full run. *)
    let j = !next_snap - 1 in
    let restore_cycle = Cpu.snapshot_cycle snaps.(j).state in
    let mem = Bench.fresh_memory bench in
    for k = 0 to j do
      Array.iter
        (fun (p, s) -> Memory.blit_from_string mem ~pos:(p * trace.trace_page_size) s)
        snaps.(k).pages
    done;
    let injector = Injector.create ~model ~freq_mhz ~rng:boundary.(j) () in
    let config =
      {
        Cpu.default_config with
        Cpu.max_cycles = budget;
        Cpu.fault_hook = Some (Injector.hook injector);
      }
    in
    let stats =
      Cpu.run ~config ~resume:snaps.(j).state mem
        ~entry:bench.Bench.program.Sfi_isa.Program.entry
    in
    Sfi_obs.Counter.incr obs_restores;
    Sfi_obs.Counter.add obs_suffix_cycles (stats.Cpu.cycles - restore_cycle);
    Sfi_obs.Counter.add obs_cycles_elided restore_cycle;
    let output = if stats.Cpu.outcome = Cpu.Exited then Bench.read_output bench mem else [||] in
    wrap_up ~bench ~stats ~output ~fault_bits:(Injector.fault_bits injector)
      ~fault_events:(Injector.fault_events injector)
  end
