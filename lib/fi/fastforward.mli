(** Snapshot fast-forward for campaign trials (DESIGN.md §13).

    A trial is bit-identical to the fault-free reference run until its
    first injected fault: the fault-model hooks depend only on the
    instruction class and the trial's private RNG stream. Recording the
    reference run's hook-call schedule plus sparse architectural
    snapshots therefore lets a campaign

    - resolve provably fault-free trials analytically (no simulation),
    - and start every faulty trial from the snapshot nearest before its
      first fault, simulating only the suffix —

    while consuming exactly the RNG draws a full run would, so results,
    det signatures and checkpoint records are bit-identical to full
    replay. Traces persist in {!Sfi_cache} (namespace ["snap"], codec
    ["sfi-snap/1"]) keyed by benchmark content + stride, independent of
    the CPU engine. *)

open Sfi_util
open Sfi_kernels

type trace

val page_size : int
(** Granularity of the per-snapshot memory deltas, in bytes. *)

val stride_for : ref_cycles:int -> int
(** Snapshot stride for a program of [ref_cycles] fault-free cycles:
    [max 64 (ref_cycles / 128)], overridable via [SFI_SNAP_STRIDE].
    Finer strides shrink the replayed snapshot-to-fault window; coarser
    ones shrink the trace. *)

val trace_for : bench:Bench.t -> stride:int -> trace option
(** The benchmark's snapshot trace, recorded on first use (one
    interpreter pass over the reference run) and memoized both
    in-process and in {!Sfi_cache}. [None] when the reference run does
    not exit cleanly — callers fall back to full replay. *)

val trace_for_model : bench:Bench.t -> model:Model.t -> stride:int -> trace option
(** {!trace_for}, gated on the model's fast-forward contract: a
    {!Model.cycle_dependent} model (every attack family) gets [None] —
    bumping the det:false [fastforward.model_unsupported] counter — so
    the campaign falls back to full replay instead of an unsound probe,
    whether fast-forward was requested via [Auto] or an explicit [On].
    Never silently diverges: the probe's schedule replay assumes masks
    ignore cycle numbers, operand values and pre-run state. *)

type result = {
  finished : bool;
  correct : bool;
  fault_bits : int;
  fault_events : int;
  kernel_cycles : int;
  error : float;
}
(** Field-for-field what [Campaign]'s full-replay trial produces. *)

val first_fault :
  model:Model.t ->
  freq_mhz:float ->
  trace:trace ->
  rng:Rng.t ->
  (int * Op_class.t) option
(** The analytic first-fault sampler on its own, for statistical
    validation: the cycle and instruction class of the trial's first
    injected fault, or [None] for a provably fault-free trial. Walks a
    copy of [rng]; the caller's stream is untouched. By the
    draw-accounting contract this equals the first fault a full-replay
    run of the same stream would inject. *)

val run_trial :
  bench:Bench.t ->
  model:Model.t ->
  freq_mhz:float ->
  budget:int ->
  trace:trace ->
  rng:Rng.t ->
  result
(** One fast-forwarded trial on the trial's pre-split [rng] stream.
    [budget] is the same absolute cycle watchdog a full-replay trial
    would use; resumed suffixes inherit the snapshot's cycle counter, so
    the watchdog trips at the identical absolute cycle. *)
