open Sfi_util
open Sfi_timing

type t = {
  hook : Sfi_sim.Cpu.fault_hook;
  mutable bits : int;
  mutable events : int;
  by_class : int array;
  cannot : bool;
  skippable : Op_class.t -> int option;
  obs_on : bool; (* report to the obs registry (off for probe replays) *)
  fault_counter : Sfi_obs.Counter.t; (* faults committed, per model name *)
}

(* Observability. The injector's *outcome* — faults committed and their
   bit widths — is a pure function of the requested work and stays
   deterministic ([injector.faults.<model>], [fault_bits_per_event]).
   The *work* counters below measure how the outcome was computed: how
   many hook calls actually ran the per-call math and which fast path
   short-circuited them. Fast-forward elides fault-free work entirely
   (the hook never runs for skipped prefixes/trials), so these are
   registered [~det:false] like the other elided-work families
   (the cache, cpu and bitsim counters) — identical campaign results
   keep identical det signatures whether the work was performed or
   skipped.
   [attempts.<class>] counts hook invocations per operation class;
   [skip_table_hits] the quantized noise-table fast path returning a
   provably-empty mask; [class_cannot_hits] the per-class worst-case
   short-circuit; [sta_mask_prunes] static-timing binary searches that
   resolved to an empty mask. *)
let obs_attempts =
  Array.of_list
    (List.map
       (fun c -> Sfi_obs.Counter.make ~det:false ("injector.attempts." ^ Op_class.name c))
       Op_class.all)

let obs_skip_table = Sfi_obs.Counter.make ~det:false "injector.skip_table_hits"

let obs_class_cannot = Sfi_obs.Counter.make ~det:false "injector.class_cannot_hits"

let obs_sta_prune = Sfi_obs.Counter.make ~det:false "injector.sta_mask_prunes"

let obs_fault_bits = Sfi_obs.Hist.make "injector.fault_bits_per_event"

let fault_counter_for model =
  Sfi_obs.Counter.make ("injector.faults." ^ Model.name model)

let obs_attempt cls =
  if Sfi_obs.enabled () then
    Sfi_obs.Counter.incr (Array.unsafe_get obs_attempts (Op_class.index cls))

let record t cls mask =
  if mask <> 0 then begin
    let n = U32.popcount mask in
    t.bits <- t.bits + n;
    t.events <- t.events + 1;
    let i = Op_class.index cls in
    t.by_class.(i) <- t.by_class.(i) + n;
    if t.obs_on && Sfi_obs.enabled () then begin
      Sfi_obs.Counter.add t.fault_counter n;
      Sfi_obs.Hist.observe obs_fault_bits n
    end
  end;
  mask

(* Worst-case (slowest) delay modulation this noise model can produce at
   this operating voltage, relative to the voltage the timing data was
   taken at. *)
let worst_scale ~vdd_model ~vdd ~ref_vdd ~noise =
  Vdd_model.derate vdd_model (vdd -. Noise.max_excursion noise)
  /. Vdd_model.derate vdd_model ref_vdd

(* Safety margin (ps) for the precomputed conservative thresholds below.
   The alpha-power derate is monotone in exact arithmetic but only
   ulp-level monotone through [**]; anything within [slack_ps] of a
   precomputed bound falls through to the exact computation, so the fast
   paths can only skip work that provably produces an empty mask. *)
let slack_ps = 1e-6

(* Quantized noise-excursion -> fault-threshold table. Bucket [i] stores
   the threshold (period /. scale, in characterization-time picoseconds)
   evaluated at the bucket's lower edge; since delay scale decreases — and
   the threshold therefore increases — with rising instantaneous supply,
   that entry is a lower bound on the exact threshold for every noise
   value in the bucket. A path set whose worst arrival sits below the
   bound (minus {!slack_ps}) cannot fault, and the per-call [**]
   evaluations are skipped; otherwise the exact threshold is computed as
   before, so injected masks are bit-identical to the direct
   implementation. *)
type noise_table = { lo : float; inv_step : float; thr : float array }

let noise_buckets = 256

let make_noise_table ~vdd_model ~vdd ~denom ~period ~max_exc ~offset =
  let step = 2. *. max_exc /. float_of_int noise_buckets in
  let thr =
    Array.init (noise_buckets + 1) (fun i ->
        let nv = -.max_exc +. (step *. float_of_int i) in
        let scale = Vdd_model.derate vdd_model (vdd +. nv) /. denom in
        (period /. scale) -. offset)
  in
  { lo = -.max_exc; inv_step = 1. /. step; thr }

(* Conservative threshold lower bound for noise value [nv]. *)
let table_threshold tbl nv =
  let i = int_of_float ((nv -. tbl.lo) *. tbl.inv_step) in
  let i = if i < 0 then 0 else if i > noise_buckets then noise_buckets else i in
  tbl.thr.(i) -. slack_ps

let create ?(count_obs = true) ~model ~freq_mhz ~rng () =
  let obs = count_obs in
  let period = Sta.period_ps_of_mhz freq_mhz in
  let fault_counter = fault_counter_for model in
  match model with
  | Model.Fixed_probability { bit_flip_prob } ->
    let cannot = bit_flip_prob <= 0. in
    let rec t =
      {
        hook =
          (fun ~cycle:_ ~cls ~a:_ ~b:_ ~result:_ ->
            if obs then obs_attempt cls;
            if cannot then 0
            else begin
              let mask = ref 0 in
              for e = 0 to 31 do
                if Rng.bernoulli rng bit_flip_prob then mask := !mask lor (1 lsl e)
              done;
              record t cls !mask
            end);
        bits = 0;
        events = 0;
        by_class = Array.make Op_class.count 0;
        cannot;
        skippable = (if cannot then fun _ -> Some 0 else fun _ -> None);
        obs_on = obs;
        fault_counter;
      }
    in
    t
  | Model.Static_timing { endpoint_arrivals; setup_ps; vdd; noise; vdd_model } ->
    let with_setup = Array.map (fun a -> a +. setup_ps) endpoint_arrivals in
    let max_arrival = Array.fold_left Float.max 0. with_setup in
    let cannot =
      max_arrival *. worst_scale ~vdd_model ~vdd ~ref_vdd:vdd ~noise <= period
    in
    (* Endpoints sorted by decreasing arrival with cumulative-OR prefix
       masks: the mask at a threshold is the prefix covering exactly the
       arrivals strictly above it, found by binary search instead of a
       32-endpoint scan. *)
    let order =
      let o = Array.init (Array.length with_setup) Fun.id in
      Array.sort (fun i j -> compare with_setup.(j) with_setup.(i)) o;
      o
    in
    let sorted_arrivals = Array.map (fun e -> with_setup.(e)) order in
    let prefix_masks =
      let n = Array.length order in
      let pm = Array.make (n + 1) 0 in
      for k = 0 to n - 1 do
        pm.(k + 1) <- pm.(k) lor (1 lsl order.(k))
      done;
      pm
    in
    let mask_at threshold =
      (* threshold = period / scale; endpoint faults iff arrival+setup
         exceeds it. Find how many sorted arrivals are > threshold. *)
      let n = Array.length sorted_arrivals in
      if n = 0 || sorted_arrivals.(0) <= threshold then 0
      else begin
        (* Invariant: arrivals.(lo) > threshold >= arrivals.(hi). *)
        let lo = ref 0 and hi = ref n in
        while !hi - !lo > 1 do
          let mid = (!lo + !hi) / 2 in
          if mid < n && sorted_arrivals.(mid) > threshold then lo := mid
          else hi := mid
        done;
        prefix_masks.(!hi)
      end
    in
    let static_mask = mask_at period in
    let has_noise = Noise.sigma noise > 0. in
    let denom = Vdd_model.derate vdd_model vdd in
    let tbl =
      if (not has_noise) || cannot then None
      else
        Some
          (make_noise_table ~vdd_model ~vdd ~denom ~period
             ~max_exc:(Noise.max_excursion noise) ~offset:0.)
    in
    let rec t =
      {
        hook =
          (fun ~cycle:_ ~cls ~a:_ ~b:_ ~result:_ ->
            if obs then obs_attempt cls;
            if cannot then 0
            else if not has_noise then record t cls static_mask
            else begin
              let nv = Noise.draw noise rng in
              match tbl with
              | Some tbl when max_arrival <= table_threshold tbl nv ->
                (* Even the bucket's most pessimistic threshold clears the
                   slowest endpoint: the mask is provably 0. *)
                if obs then Sfi_obs.Counter.incr obs_skip_table;
                0
              | _ ->
                let scale = Vdd_model.derate vdd_model (vdd +. nv) /. denom in
                let mask = mask_at (period /. scale) in
                if obs && mask = 0 then Sfi_obs.Counter.incr obs_sta_prune;
                record t cls mask
            end);
        bits = 0;
        events = 0;
        by_class = Array.make Op_class.count 0;
        cannot;
        skippable =
          (if cannot || ((not has_noise) && static_mask = 0) then fun _ -> Some 0
           else fun _ -> None);
        obs_on = obs;
        fault_counter;
      }
    in
    t
  | Model.Statistical { db; vdd; noise; vdd_model; sampling } ->
    let ref_vdd = db.Characterize.vdd in
    let setup = db.Characterize.setup_ps in
    let denom = Vdd_model.derate vdd_model ref_vdd in
    let ws = Vdd_model.derate vdd_model (vdd -. Noise.max_excursion noise) /. denom in
    let cannot = (db.Characterize.max_settle +. setup) *. ws <= period in
    let classes = db.Characterize.classes in
    (* Per class: even the worst-case noise excursion leaves the class's
       slowest characterized path inside the period, so its instructions
       can never fault and the per-call scale/threshold math is skipped.
       (Same algebra as the per-call check at the worst-case threshold,
       with a slack so [**] rounding cannot flip the verdict.) *)
    let class_cannot =
      Array.map
        (fun (c : Characterize.class_db) ->
          c.Characterize.max_settle <= (period /. ws) -. setup -. slack_ps)
        classes
    in
    (* Per class: per-endpoint maximum settle, for cheap skipping. *)
    let class_caps =
      Array.map
        (fun (c : Characterize.class_db) ->
          Array.map Cdf.max_value c.Characterize.endpoint_cdfs)
        classes
    in
    let has_noise = Noise.sigma noise > 0. in
    (* With sigma = 0 every draw is exactly 0, so the threshold is a
       constant; precompute it once. *)
    let static_threshold =
      (period /. (Vdd_model.derate vdd_model (vdd +. 0.) /. denom)) -. setup
    in
    let tbl =
      if (not has_noise) || cannot then None
      else
        Some
          (make_noise_table ~vdd_model ~vdd ~denom ~period
             ~max_exc:(Noise.max_excursion noise) ~offset:setup)
    in
    let rec t =
      {
        hook =
          (fun ~cycle:_ ~cls ~a:_ ~b:_ ~result:_ ->
            if obs then obs_attempt cls;
            if cannot then 0
            else begin
              let ci = Op_class.index cls in
              if Array.unsafe_get class_cannot ci then begin
                (* A sigma = 0 draw consumes no randomness and a positive
                   sigma draw is consumed here, so skipping the rest of the
                   hook leaves the RNG stream identical. *)
                if has_noise then ignore (Noise.draw noise rng : float);
                if obs then Sfi_obs.Counter.incr obs_class_cannot;
                0
              end
              else begin
                let nv = if has_noise then Noise.draw noise rng else 0. in
                let cdb = classes.(ci) in
                let skip =
                  match tbl with
                  | Some tbl -> cdb.Characterize.max_settle <= table_threshold tbl nv
                  | None -> false
                in
                if skip then begin
                  if obs then Sfi_obs.Counter.incr obs_skip_table;
                  0
                end
                else begin
                  let threshold =
                    if has_noise then
                      let scale = Vdd_model.derate vdd_model (vdd +. nv) /. denom in
                      (period /. scale) -. setup
                    else static_threshold
                  in
                  if cdb.Characterize.max_settle <= threshold then 0
                  else begin
                    match sampling with
                    | Model.Vector_correlated ->
                      let k = Rng.int rng db.Characterize.cycles in
                      let row = cdb.Characterize.cycle_arrivals.(k) in
                      let mask = ref 0 in
                      Array.iteri
                        (fun e s -> if s > threshold then mask := !mask lor (1 lsl e))
                        row;
                      record t cls !mask
                    | Model.Independent ->
                      let caps = class_caps.(ci) in
                      let mask = ref 0 in
                      for e = 0 to Array.length caps - 1 do
                        if caps.(e) > threshold then begin
                          let p =
                            Cdf.prob_greater cdb.Characterize.endpoint_cdfs.(e) threshold
                          in
                          if Rng.bernoulli rng p then mask := !mask lor (1 lsl e)
                        end
                      done;
                      record t cls !mask
                  end
                end
              end
            end);
        bits = 0;
        events = 0;
        by_class = Array.make Op_class.count 0;
        cannot;
        skippable =
          (if cannot then fun _ -> Some 0
           else
             fun cls ->
               if Array.unsafe_get class_cannot (Op_class.index cls) then
                 Some (if has_noise then 1 else 0)
               else None);
        obs_on = obs;
        fault_counter;
      }
    in
    t

let hook t = t.hook

let skippable_gaussians t cls = t.skippable cls

let fault_bits t = t.bits

let fault_events t = t.events

let fault_bits_by_class t = Array.copy t.by_class

let cannot_inject t = t.cannot
