open Sfi_util

type t = {
  inst : Model.instance;
  mutable bits : int;
  mutable events : int;
  by_class : int array;
  obs_on : bool; (* report to the obs registry (off for probe replays) *)
  fault_counter : Sfi_obs.Counter.t; (* faults committed, per model key *)
}

(* Observability. The injector's *outcome* — faults committed and their
   bit widths — is a pure function of the requested work and stays
   deterministic ([injector.faults.<key>], [fault_bits_per_event]).
   [attempts.<class>] counts hook invocations per operation class; it is
   [~det:false] because fast-forward elides fault-free work entirely
   (the hook never runs for skipped prefixes/trials) — identical
   campaign results keep identical det signatures whether the work was
   performed or skipped. The models' own work counters
   ([injector.skip_table_hits] and friends) live in {!Model}. *)
let obs_attempts =
  Array.of_list
    (List.map
       (fun c -> Sfi_obs.Counter.make ~det:false ("injector.attempts." ^ Op_class.name c))
       Op_class.all)

let obs_fault_bits = Sfi_obs.Hist.make "injector.fault_bits_per_event"

let fault_counter_for model =
  Sfi_obs.Counter.make ("injector.faults." ^ Model.key model)

let obs_attempt cls =
  if Sfi_obs.enabled () then
    Sfi_obs.Counter.incr (Array.unsafe_get obs_attempts (Op_class.index cls))

let record t cls n =
  if n > 0 then begin
    t.bits <- t.bits + n;
    t.events <- t.events + 1;
    (match cls with
    | Some c ->
      let i = Op_class.index c in
      t.by_class.(i) <- t.by_class.(i) + n
    | None -> ());
    if t.obs_on && Sfi_obs.enabled () then begin
      Sfi_obs.Counter.add t.fault_counter n;
      Sfi_obs.Hist.observe obs_fault_bits n
    end
  end

let create ?(count_obs = true) ~model ~freq_mhz ~rng () =
  {
    inst = Model.instantiate model ~count_obs ~freq_mhz ~rng;
    bits = 0;
    events = 0;
    by_class = Array.make Op_class.count 0;
    obs_on = count_obs;
    fault_counter = fault_counter_for model;
  }

let hook t : Sfi_sim.Cpu.fault_hook =
 fun ~cycle ~cls ~a ~b ~result ->
  if t.obs_on then obs_attempt cls;
  let mask = t.inst.Model.sample ~cycle ~cls ~a ~b ~result in
  if mask <> 0 then record t (Some cls) (U32.popcount mask);
  mask

let trial_start t mem =
  let n = t.inst.Model.trial_start mem in
  if n > 0 then record t None n;
  n

let skippable_gaussians t cls = t.inst.Model.skippable_gaussians cls

let fault_bits t = t.bits

let fault_events t = t.events

let fault_bits_by_class t = Array.copy t.by_class

let cannot_inject t = t.inst.Model.cannot_inject
