(** Per-cycle fault injection: turns a {!Model.t} and an operating
    frequency into the {!Sfi_sim.Cpu.fault_hook} the simulator calls at
    every ALU execution, and counts the injected bit flips (the paper's
    "FIs per kCycle" numerator).

    The injector draws one supply-noise sample per ALU execution cycle.
    The paper draws one per clock cycle, but noise samples are i.i.d. and
    only the cycles with an ALU instruction in EX can inject, so the fault
    statistics are identical and the bubble-cycle draws are skipped.

    A fast path makes the "no errors possible" region cheap: when even the
    worst clipped noise excursion cannot make any characterized path (or
    static endpoint) violate the period, the hook is a constant zero. *)

open Sfi_util

type t

val create : ?count_obs:bool -> model:Model.t -> freq_mhz:float -> rng:Rng.t -> unit -> t
(** [count_obs] (default [true]) controls whether this injector reports
    to the obs registry. Fast-forward's first-fault probe replays the
    recorded hook schedule against a throwaway RNG copy purely to find
    where a trial diverges; it passes [~count_obs:false] so the probe's
    hook calls and provisional faults are invisible — the real injector
    then reports the suffix exactly once. RNG consumption is identical
    either way. *)

val hook : t -> Sfi_sim.Cpu.fault_hook

val trial_start : t -> Sfi_sim.Memory.t -> int
(** Drives the model's per-trial state hook (architectural-state attack
    models flip bits in the freshly loaded image here) and folds the
    flips into the fault counts. Call once per trial, after the
    benchmark image is loaded and before the first simulated cycle.
    Returns the number of bits flipped — 0 for every built-in model,
    which also draws nothing from the RNG. *)

val fault_bits : t -> int
(** Total bits flipped so far. *)

val fault_events : t -> int
(** ALU executions in which at least one bit flipped. *)

val fault_bits_by_class : t -> int array
(** Bit flips per {!Sfi_util.Op_class.index}: which instruction classes
    actually drive a workload's faults. *)

val cannot_inject : t -> bool
(** [true] when the fast path proves no fault can ever be injected at this
    operating point: the whole Monte-Carlo trial set is then a single
    deterministic fault-free run. *)

val skippable_gaussians : t -> Op_class.t -> int option
(** [skippable_gaussians t cls] is [Some k] when a hook call for [cls] is
    provably a no-op that consumes exactly [k] standard-normal draws (and
    nothing else) from the trial RNG — e.g. the statistical model's
    per-class worst-case short-circuit, which burns one noise sample when
    sigma is positive. [None] means the call's outcome or draw count
    depends on the drawn values, so it must actually run. Fast-forward's
    probe batches consecutive [Some] entries of the recorded schedule into
    a single {!Sfi_util.Rng.skip_gaussians} jump instead of replaying the
    per-call math. *)
