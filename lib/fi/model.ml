open Sfi_util
open Sfi_timing
module Json = Sfi_obs.Json

type sampling = Independent | Vector_correlated

type features = {
  technique : string;
  timing_data : string;
  multi_vdd : bool;
  vdd_noise : bool;
  gate_level_aware : string;
  instruction_aware : bool;
}

type instance = {
  sample : cycle:int -> cls:Op_class.t -> a:U32.t -> b:U32.t -> result:U32.t -> U32.t;
  trial_start : Sfi_sim.Memory.t -> int;
  cannot_inject : bool;
  skippable_gaussians : Op_class.t -> int option;
}

type t = {
  key : string;
  features : features;
  cycle_dependent : bool;
  params : (string * Json.t) list;
  fingerprint : Sfi_cache.Fingerprint.t -> unit;
  instantiate : count_obs:bool -> freq_mhz:float -> rng:Rng.t -> instance;
}

let key t = t.key

let features t = t.features

let cycle_dependent t = t.cycle_dependent

let params t = t.params

let to_string t =
  if t.params = [] then t.key else t.key ^ Json.to_string (Json.Obj t.params)

let add_fingerprint t fp = t.fingerprint fp

let instantiate t ~count_obs ~freq_mhz ~rng = t.instantiate ~count_obs ~freq_mhz ~rng

(* Observability. These measure how a sample was computed, not what it
   was: which fast path short-circuited the per-call math. Fast-forward
   elides fault-free work entirely, so they are ~det:false like the
   other elided-work families; the names predate the registry (the
   logic lived in {!Injector}) and are kept stable for obs consumers.
   [skip_table_hits]: the quantized noise-table fast path returned a
   provably-empty mask; [class_cannot_hits]: the per-class worst-case
   short-circuit; [sta_mask_prunes]: static-timing binary searches that
   resolved to an empty mask. *)
let obs_skip_table = Sfi_obs.Counter.make ~det:false "injector.skip_table_hits"

let obs_class_cannot = Sfi_obs.Counter.make ~det:false "injector.class_cannot_hits"

let obs_sta_prune = Sfi_obs.Counter.make ~det:false "injector.sta_mask_prunes"

let no_trial_start _ = 0

(* ---------- shared timing machinery (models B/B+/C/C-corr/glitch) ---------- *)

(* Worst-case (slowest) delay modulation this noise model can produce at
   this operating voltage, relative to the voltage the timing data was
   taken at. *)
let worst_scale ~vdd_model ~vdd ~ref_vdd ~noise =
  Vdd_model.derate vdd_model (vdd -. Noise.max_excursion noise)
  /. Vdd_model.derate vdd_model ref_vdd

(* Safety margin (ps) for the precomputed conservative thresholds below.
   The alpha-power derate is monotone in exact arithmetic but only
   ulp-level monotone through [**]; anything within [slack_ps] of a
   precomputed bound falls through to the exact computation, so the fast
   paths can only skip work that provably produces an empty mask. *)
let slack_ps = 1e-6

(* Quantized noise-excursion -> fault-threshold table. Bucket [i] stores
   the threshold (period /. scale, in characterization-time picoseconds)
   evaluated at the bucket's lower edge; since delay scale decreases — and
   the threshold therefore increases — with rising instantaneous supply,
   that entry is a lower bound on the exact threshold for every noise
   value in the bucket. A path set whose worst arrival sits below the
   bound (minus {!slack_ps}) cannot fault, and the per-call [**]
   evaluations are skipped; otherwise the exact threshold is computed as
   before, so injected masks are bit-identical to the direct
   implementation. *)
type noise_table = { lo : float; inv_step : float; thr : float array }

let noise_buckets = 256

let make_noise_table ~vdd_model ~vdd ~denom ~period ~max_exc ~offset =
  let step = 2. *. max_exc /. float_of_int noise_buckets in
  let thr =
    Array.init (noise_buckets + 1) (fun i ->
        let nv = -.max_exc +. (step *. float_of_int i) in
        let scale = Vdd_model.derate vdd_model (vdd +. nv) /. denom in
        (period /. scale) -. offset)
  in
  { lo = -.max_exc; inv_step = 1. /. step; thr }

(* Conservative threshold lower bound for noise value [nv]. *)
let table_threshold tbl nv =
  let i = int_of_float ((nv -. tbl.lo) *. tbl.inv_step) in
  let i = if i < 0 then 0 else if i > noise_buckets then noise_buckets else i in
  tbl.thr.(i) -. slack_ps

(* Endpoints sorted by decreasing arrival with cumulative-OR prefix
   masks: the mask at a threshold is the prefix covering exactly the
   arrivals strictly above it, found by binary search instead of a
   32-endpoint scan. *)
type sorted_endpoints = { sorted_arrivals : float array; prefix_masks : int array }

let sort_endpoints with_setup =
  let order =
    let o = Array.init (Array.length with_setup) Fun.id in
    Array.sort (fun i j -> compare with_setup.(j) with_setup.(i)) o;
    o
  in
  let sorted_arrivals = Array.map (fun e -> with_setup.(e)) order in
  let prefix_masks =
    let n = Array.length order in
    let pm = Array.make (n + 1) 0 in
    for k = 0 to n - 1 do
      pm.(k + 1) <- pm.(k) lor (1 lsl order.(k))
    done;
    pm
  in
  { sorted_arrivals; prefix_masks }

let mask_at { sorted_arrivals; prefix_masks } threshold =
  (* threshold = period / scale; endpoint faults iff arrival+setup
     exceeds it. Find how many sorted arrivals are > threshold. *)
  let n = Array.length sorted_arrivals in
  if n = 0 || sorted_arrivals.(0) <= threshold then 0
  else begin
    (* Invariant: arrivals.(lo) > threshold >= arrivals.(hi). *)
    let lo = ref 0 and hi = ref n in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if mid < n && sorted_arrivals.(mid) > threshold then lo := mid
      else hi := mid
    done;
    prefix_masks.(!hi)
  end

(* ---------- fingerprint helpers ---------- *)

let fp_noise fp noise =
  Sfi_cache.Fingerprint.add_float fp (Noise.sigma noise);
  Sfi_cache.Fingerprint.add_float fp (Noise.clip noise)

let fp_vdd_model fp vm =
  List.iter
    (fun (v, d) ->
      Sfi_cache.Fingerprint.add_float fp v;
      Sfi_cache.Fingerprint.add_float fp d)
    (Vdd_model.anchors vm)

(* Key + codec version + canonical parameters: the fingerprint prefix of
   every post-variant model (the built-ins keep their historic byte
   sequences instead, so existing checkpoints and goldens stay valid). *)
let fp_keyed ~key ~version ~params fp =
  let open Sfi_cache.Fingerprint in
  add_string fp key;
  add_int fp version;
  List.iter
    (fun (name, v) ->
      add_string fp name;
      match v with
      | Json.Int i -> add_int fp i
      | Json.Float f -> add_float fp f
      | Json.Bool b -> add_int fp (if b then 1 else 0)
      | Json.String s -> add_string fp s
      | Json.Null | Json.List _ | Json.Obj _ ->
        add_string fp (Json.to_string v))
    params

(* ---------- Table 2 features ---------- *)

let features_a =
  {
    technique = "fixed probability";
    timing_data = "none";
    multi_vdd = false;
    vdd_noise = false;
    gate_level_aware = "no";
    instruction_aware = false;
  }

let features_b =
  {
    technique = "fixed period violation";
    timing_data = "STA";
    multi_vdd = true;
    vdd_noise = false;
    gate_level_aware = "partially";
    instruction_aware = false;
  }

let features_bplus =
  {
    technique = "modulated period violation";
    timing_data = "STA";
    multi_vdd = true;
    vdd_noise = true;
    gate_level_aware = "partially";
    instruction_aware = false;
  }

let features_c =
  {
    technique = "probabilistic period violation (using CDFs)";
    timing_data = "DTA";
    multi_vdd = true;
    vdd_noise = true;
    gate_level_aware = "yes";
    instruction_aware = true;
  }

let features_glitch =
  {
    technique = "voltage glitch in attacker-chosen cycle windows";
    timing_data = "STA";
    multi_vdd = true;
    vdd_noise = false;
    gate_level_aware = "partially";
    instruction_aware = false;
  }

let features_skip =
  {
    technique = "instruction skip (EX result latch suppressed)";
    timing_data = "none";
    multi_vdd = false;
    vdd_noise = false;
    gate_level_aware = "no";
    instruction_aware = true;
  }

let features_opcode =
  {
    technique = "opcode corruption (ALU class substitution)";
    timing_data = "none";
    multi_vdd = false;
    vdd_noise = false;
    gate_level_aware = "no";
    instruction_aware = true;
  }

let features_state =
  {
    technique = "architectural-state bit flips at trial start";
    timing_data = "none";
    multi_vdd = false;
    vdd_noise = false;
    gate_level_aware = "no";
    instruction_aware = false;
  }

let feature_rows () =
  [ ("A", features_a); ("B", features_b); ("B+", features_bplus); ("C", features_c) ]

(* ---------- model A ---------- *)

let make_a ~bit_flip_prob =
  {
    key = "A";
    features = features_a;
    cycle_dependent = false;
    params = [ ("p", Json.Float bit_flip_prob) ];
    fingerprint =
      (fun fp ->
        Sfi_cache.Fingerprint.add_string fp "A";
        Sfi_cache.Fingerprint.add_float fp bit_flip_prob);
    instantiate =
      (fun ~count_obs:_ ~freq_mhz:_ ~rng ->
        let cannot = bit_flip_prob <= 0. in
        {
          sample =
            (fun ~cycle:_ ~cls:_ ~a:_ ~b:_ ~result:_ ->
              if cannot then 0
              else begin
                let mask = ref 0 in
                for e = 0 to 31 do
                  if Rng.bernoulli rng bit_flip_prob then mask := !mask lor (1 lsl e)
                done;
                !mask
              end);
          trial_start = no_trial_start;
          cannot_inject = cannot;
          skippable_gaussians = (if cannot then fun _ -> Some 0 else fun _ -> None);
        });
  }

(* ---------- models B / B+ ---------- *)

let make_static_timing ~key ~features ~endpoint_arrivals ~setup_ps ~vdd ~noise
    ~vdd_model =
  let with_setup = Array.map (fun a -> a +. setup_ps) endpoint_arrivals in
  let max_arrival = Array.fold_left Float.max 0. with_setup in
  let sorted = sort_endpoints with_setup in
  let has_noise = Noise.sigma noise > 0. in
  let denom = Vdd_model.derate vdd_model vdd in
  let ws = worst_scale ~vdd_model ~vdd ~ref_vdd:vdd ~noise in
  {
    key;
    features;
    cycle_dependent = false;
    params = [];
    fingerprint =
      (fun fp ->
        (* Historic bytes: B and B+ share the "B" tag; the noise sigma
           inside the hashed noise parameters is what separates them. *)
        let open Sfi_cache.Fingerprint in
        add_string fp "B";
        add_float_array fp endpoint_arrivals;
        add_float fp setup_ps;
        add_float fp vdd;
        fp_noise fp noise;
        fp_vdd_model fp vdd_model);
    instantiate =
      (fun ~count_obs ~freq_mhz ~rng ->
        let period = Sta.period_ps_of_mhz freq_mhz in
        let cannot = max_arrival *. ws <= period in
        let static_mask = mask_at sorted period in
        let tbl =
          if (not has_noise) || cannot then None
          else
            Some
              (make_noise_table ~vdd_model ~vdd ~denom ~period
                 ~max_exc:(Noise.max_excursion noise) ~offset:0.)
        in
        {
          sample =
            (fun ~cycle:_ ~cls:_ ~a:_ ~b:_ ~result:_ ->
              if cannot then 0
              else if not has_noise then static_mask
              else begin
                let nv = Noise.draw noise rng in
                match tbl with
                | Some tbl when max_arrival <= table_threshold tbl nv ->
                  (* Even the bucket's most pessimistic threshold clears
                     the slowest endpoint: the mask is provably 0. *)
                  if count_obs then Sfi_obs.Counter.incr obs_skip_table;
                  0
                | _ ->
                  let scale = Vdd_model.derate vdd_model (vdd +. nv) /. denom in
                  let mask = mask_at sorted (period /. scale) in
                  if count_obs && mask = 0 then Sfi_obs.Counter.incr obs_sta_prune;
                  mask
              end);
          trial_start = no_trial_start;
          cannot_inject = cannot;
          skippable_gaussians =
            (if cannot || ((not has_noise) && static_mask = 0) then fun _ -> Some 0
             else fun _ -> None);
        });
  }

(* ---------- models C / C-corr ---------- *)

let make_statistical ~key ~db ~vdd ~noise ~vdd_model ~sampling =
  let ref_vdd = db.Characterize.vdd in
  let setup = db.Characterize.setup_ps in
  let denom = Vdd_model.derate vdd_model ref_vdd in
  let ws = Vdd_model.derate vdd_model (vdd -. Noise.max_excursion noise) /. denom in
  let classes = db.Characterize.classes in
  (* Per class: per-endpoint maximum settle, for cheap skipping. *)
  let class_caps =
    Array.map
      (fun (c : Characterize.class_db) ->
        Array.map Cdf.max_value c.Characterize.endpoint_cdfs)
      classes
  in
  let has_noise = Noise.sigma noise > 0. in
  {
    key;
    features = features_c;
    cycle_dependent = false;
    params = [];
    fingerprint =
      (fun fp ->
        let open Sfi_cache.Fingerprint in
        add_string fp "C";
        add_float fp db.Characterize.vdd;
        add_float fp db.Characterize.setup_ps;
        add_int fp db.Characterize.cycles;
        Array.iter
          (fun (cdb : Characterize.class_db) ->
            add_string fp cdb.Characterize.profile_name;
            Array.iter (add_float_array fp) cdb.Characterize.cycle_arrivals)
          db.Characterize.classes;
        add_float fp vdd;
        fp_noise fp noise;
        fp_vdd_model fp vdd_model;
        add_string fp
          (match sampling with Independent -> "indep" | Vector_correlated -> "corr"));
    instantiate =
      (fun ~count_obs ~freq_mhz ~rng ->
        let period = Sta.period_ps_of_mhz freq_mhz in
        let cannot = (db.Characterize.max_settle +. setup) *. ws <= period in
        (* Per class: even the worst-case noise excursion leaves the
           class's slowest characterized path inside the period, so its
           instructions can never fault and the per-call scale/threshold
           math is skipped. (Same algebra as the per-call check at the
           worst-case threshold, with a slack so [**] rounding cannot
           flip the verdict.) *)
        let class_cannot =
          Array.map
            (fun (c : Characterize.class_db) ->
              c.Characterize.max_settle <= (period /. ws) -. setup -. slack_ps)
            classes
        in
        (* With sigma = 0 every draw is exactly 0, so the threshold is a
           constant; precompute it once. *)
        let static_threshold =
          (period /. (Vdd_model.derate vdd_model (vdd +. 0.) /. denom)) -. setup
        in
        let tbl =
          if (not has_noise) || cannot then None
          else
            Some
              (make_noise_table ~vdd_model ~vdd ~denom ~period
                 ~max_exc:(Noise.max_excursion noise) ~offset:setup)
        in
        {
          sample =
            (fun ~cycle:_ ~cls ~a:_ ~b:_ ~result:_ ->
              if cannot then 0
              else begin
                let ci = Op_class.index cls in
                if Array.unsafe_get class_cannot ci then begin
                  (* A sigma = 0 draw consumes no randomness and a
                     positive sigma draw is consumed here, so skipping
                     the rest of the hook leaves the RNG stream
                     identical. *)
                  if has_noise then ignore (Noise.draw noise rng : float);
                  if count_obs then Sfi_obs.Counter.incr obs_class_cannot;
                  0
                end
                else begin
                  let nv = if has_noise then Noise.draw noise rng else 0. in
                  let cdb = classes.(ci) in
                  let skip =
                    match tbl with
                    | Some tbl -> cdb.Characterize.max_settle <= table_threshold tbl nv
                    | None -> false
                  in
                  if skip then begin
                    if count_obs then Sfi_obs.Counter.incr obs_skip_table;
                    0
                  end
                  else begin
                    let threshold =
                      if has_noise then
                        let scale = Vdd_model.derate vdd_model (vdd +. nv) /. denom in
                        (period /. scale) -. setup
                      else static_threshold
                    in
                    if cdb.Characterize.max_settle <= threshold then 0
                    else begin
                      match sampling with
                      | Vector_correlated ->
                        let k = Rng.int rng db.Characterize.cycles in
                        let row = cdb.Characterize.cycle_arrivals.(k) in
                        let mask = ref 0 in
                        Array.iteri
                          (fun e s ->
                            if s > threshold then mask := !mask lor (1 lsl e))
                          row;
                        !mask
                      | Independent ->
                        let caps = class_caps.(ci) in
                        let mask = ref 0 in
                        for e = 0 to Array.length caps - 1 do
                          if caps.(e) > threshold then begin
                            let p =
                              Cdf.prob_greater cdb.Characterize.endpoint_cdfs.(e)
                                threshold
                            in
                            if Rng.bernoulli rng p then mask := !mask lor (1 lsl e)
                          end
                        done;
                        !mask
                    end
                  end
                end
              end);
          trial_start = no_trial_start;
          cannot_inject = cannot;
          skippable_gaussians =
            (if cannot then fun _ -> Some 0
             else
               fun cls ->
                 if Array.unsafe_get class_cannot (Op_class.index cls) then
                   Some (if has_noise then 1 else 0)
                 else None);
        });
  }

(* ---------- attack family: voltage glitch ---------- *)

let make_glitch ~params ~endpoint_arrivals ~setup_ps ~vdd ~vdd_model ~start ~len
    ~every ~drop_mv =
  let drop = drop_mv /. 1000. in
  let denom = Vdd_model.derate vdd_model vdd in
  let glitch_scale = Vdd_model.derate vdd_model (vdd -. drop) /. denom in
  if
    vdd -. drop <= Vdd_model.vth vdd_model +. 0.01
    || Float.is_nan glitch_scale || glitch_scale <= 0.
  then
    Error
      (Printf.sprintf
         "model glitch: drop_mv=%g pulls the supply to %.3f V, outside the \
          Vdd-delay model's validity"
         drop_mv (vdd -. drop))
  else begin
    let with_setup = Array.map (fun a -> a +. setup_ps) endpoint_arrivals in
    let sorted = sort_endpoints with_setup in
    Ok
      {
        key = "glitch";
        features = features_glitch;
        cycle_dependent = true;
        params;
        fingerprint =
          (fun fp ->
            fp_keyed ~key:"glitch" ~version:1 ~params fp;
            let open Sfi_cache.Fingerprint in
            add_float_array fp endpoint_arrivals;
            add_float fp setup_ps;
            add_float fp vdd;
            fp_vdd_model fp vdd_model);
        instantiate =
          (fun ~count_obs ~freq_mhz ~rng:_ ->
            let period = Sta.period_ps_of_mhz freq_mhz in
            (* Inside an attack window the instantaneous supply is
               [vdd - drop]: the derated threshold exposes every
               endpoint whose path no longer fits the period. Outside,
               plain model-B statics apply (empty below the STA limit). *)
            let glitch_mask = mask_at sorted (period /. glitch_scale) in
            let base_mask = mask_at sorted period in
            let cannot = glitch_mask = 0 && base_mask = 0 in
            let in_window cycle =
              cycle >= start && len > 0
              &&
              let off = cycle - start in
              if every > 0 then off mod every < len else off < len
            in
            {
              sample =
                (fun ~cycle ~cls:_ ~a:_ ~b:_ ~result:_ ->
                  if cannot then 0
                  else begin
                    let mask = if in_window cycle then glitch_mask else base_mask in
                    if count_obs && mask = 0 then
                      Sfi_obs.Counter.incr obs_sta_prune;
                    mask
                  end);
              trial_start = no_trial_start;
              cannot_inject = cannot;
              skippable_gaussians =
                (* The hook consumes no randomness, but its outcome
                   depends on the cycle number, which the fast-forward
                   probe does not model — [cycle_dependent] keeps the
                   probe away entirely. *)
                (if cannot then fun _ -> Some 0 else fun _ -> None);
            });
      }
  end

(* ---------- attack family: instruction skip ---------- *)

let make_skip ~params ~p =
  {
    key = "skip";
    features = features_skip;
    cycle_dependent = true;
    params;
    fingerprint = fp_keyed ~key:"skip" ~version:1 ~params;
    instantiate =
      (fun ~count_obs:_ ~freq_mhz:_ ~rng ->
        let cannot = p <= 0. in
        (* The EX result latch: a skipped instruction leaves the
           previously written value in place, so the architectural
           result becomes whatever the last ALU instruction produced
           (0 before the first one, matching a reset register). *)
        let last = ref 0 in
        {
          sample =
            (fun ~cycle:_ ~cls:_ ~a:_ ~b:_ ~result ->
              if cannot then 0
              else if Rng.bernoulli rng p then result lxor !last
              else begin
                last := result;
                0
              end);
          trial_start = no_trial_start;
          cannot_inject = cannot;
          skippable_gaussians = (if cannot then fun _ -> Some 0 else fun _ -> None);
        });
  }

(* ---------- attack family: opcode corruption ---------- *)

let opcode_classes = Array.of_list Op_class.all

let make_opcode ~params ~p =
  {
    key = "opcode";
    features = features_opcode;
    cycle_dependent = true;
    params;
    fingerprint = fp_keyed ~key:"opcode" ~version:1 ~params;
    instantiate =
      (fun ~count_obs:_ ~freq_mhz:_ ~rng ->
        let cannot = p <= 0. in
        {
          sample =
            (fun ~cycle:_ ~cls ~a ~b ~result ->
              if cannot then 0
              else if Rng.bernoulli rng p then begin
                (* Substitute a uniformly drawn *other* ALU class on the
                   same operands: the mask turns [result] into what the
                   corrupted opcode would have produced. *)
                let i = Rng.int rng (Op_class.count - 1) in
                let j = if i >= Op_class.index cls then i + 1 else i in
                result lxor Op_class.apply opcode_classes.(j) a b
              end
              else 0);
          trial_start = no_trial_start;
          cannot_inject = cannot;
          skippable_gaussians = (if cannot then fun _ -> Some 0 else fun _ -> None);
        });
  }

(* ---------- attack family: architectural-state flips ---------- *)

let make_state ~params ~flips ~word_lo ~word_hi =
  {
    key = "state";
    features = features_state;
    cycle_dependent = true;
    params;
    fingerprint = fp_keyed ~key:"state" ~version:1 ~params;
    instantiate =
      (fun ~count_obs:_ ~freq_mhz:_ ~rng ->
        {
          sample = (fun ~cycle:_ ~cls:_ ~a:_ ~b:_ ~result:_ -> 0);
          trial_start =
            (fun mem ->
              if flips <= 0 then 0
              else begin
                let words = Sfi_sim.Memory.size mem / 4 in
                let hi = if word_hi <= 0 then words else min word_hi words in
                let lo = min (max 0 word_lo) hi in
                let span = hi - lo in
                if span <= 0 then 0
                else begin
                  for _ = 1 to flips do
                    let addr = 4 * (lo + Rng.int rng span) in
                    let bit = Rng.int rng 32 in
                    Sfi_sim.Memory.write_u32 mem addr
                      (U32.flip_bits (Sfi_sim.Memory.read_u32 mem addr)
                         ~mask:(1 lsl bit))
                  done;
                  flips
                end
              end);
          cannot_inject = flips <= 0;
          skippable_gaussians = (fun _ -> Some 0);
        });
  }

(* ---------- resources ---------- *)

type resources = {
  vdd : float;
  noise : Noise.t;
  vdd_model : Vdd_model.t;
  setup_ps : float;
  endpoint_arrivals : float array option;
  db : Characterize.t option;
}

let default_resources =
  {
    vdd = Vdd_model.nominal_voltage;
    noise = Noise.none;
    vdd_model = Vdd_model.default;
    setup_ps = Sta.default_setup_ps;
    endpoint_arrivals = None;
    db = None;
  }

(* ---------- parameter codec ---------- *)

let json_kind = function
  | Json.Null -> "null"
  | Json.Bool _ -> "bool"
  | Json.Int _ -> "int"
  | Json.Float _ -> "float"
  | Json.String _ -> "string"
  | Json.List _ -> "list"
  | Json.Obj _ -> "object"

(* Overrides applied over the entry's defaults, in default order —
   the canonical form [params] reports and [to_string] prints. Unknown
   names and type mismatches are errors (ints coerce to float fields). *)
let merge_params ~key ~defaults ~params =
  let rec check = function
    | [] -> Ok ()
    | (name, v) :: rest -> (
      match List.assoc_opt name defaults with
      | None ->
        Error
          (Printf.sprintf "model %s: unknown parameter %S (expected: %s)" key name
             (String.concat ", " (List.map fst defaults)))
      | Some d -> (
        match (d, v) with
        | Json.Float _, (Json.Float _ | Json.Int _)
        | Json.Int _, Json.Int _
        | Json.Bool _, Json.Bool _
        | Json.String _, Json.String _ ->
          check rest
        | _ ->
          Error
            (Printf.sprintf "model %s: parameter %S must be a %s (got %s)" key name
               (json_kind d) (json_kind v))))
  in
  match check params with
  | Error _ as e -> e
  | Ok () ->
    Ok
      (List.map
         (fun (name, d) ->
           match (d, List.assoc_opt name params) with
           | Json.Float _, Some (Json.Int i) -> (name, Json.Float (float_of_int i))
           | _, Some v -> (name, v)
           | _, None -> (name, d))
         defaults)

let pfloat merged name =
  match List.assoc name merged with
  | Json.Float f -> f
  | Json.Int i -> float_of_int i
  | _ -> invalid_arg ("pfloat " ^ name)

let pint merged name =
  match List.assoc name merged with Json.Int i -> i | _ -> invalid_arg ("pint " ^ name)

(* ---------- the registry ---------- *)

module Registry = struct
  type entry = {
    key : string;
    doc : string;
    version : int;
    features : features;
    cycle_dependent : bool;
    wants_arrivals : bool;
    wants_db : bool;
    default_params : (string * Json.t) list;
    build :
      resources:resources -> params:(string * Json.t) list -> (t, string) result;
  }

  let table : entry list ref = ref []

  let canon k = String.lowercase_ascii k

  let find k =
    let k = canon k in
    List.find_opt (fun e -> canon e.key = k) !table

  let register e =
    if find e.key <> None then
      invalid_arg (Printf.sprintf "Model.Registry.register: duplicate key %S" e.key);
    table := !table @ [ e ]

  let keys () = List.map (fun e -> e.key) !table

  let entries () = !table

  let make ?(params = []) e resources =
    match merge_params ~key:e.key ~defaults:e.default_params ~params with
    | Error _ as err -> err
    | Ok merged -> e.build ~resources ~params:merged
end

let of_key ?(params = []) ~resources k =
  match Registry.find k with
  | Some e -> Registry.make ~params e resources
  | None ->
    Error
      (Printf.sprintf "unknown model %S (registered: %s)" k
         (String.concat ", " (Registry.keys ())))

let of_string ~resources s =
  match String.index_opt s '{' with
  | None -> of_key ~resources s
  | Some i -> (
    let k = String.sub s 0 i in
    let body = String.sub s i (String.length s - i) in
    match Json.parse body with
    | exception Json.Parse_error msg ->
      Error (Printf.sprintf "model %s: bad parameter JSON: %s" k msg)
    | Json.Obj fields -> of_key ~params:fields ~resources k
    | _ -> Error (Printf.sprintf "model %s: parameters must be a JSON object" k))

(* ---------- built-in registrations ---------- *)

let need_arrivals ~key resources k =
  match resources.endpoint_arrivals with
  | Some arr -> k arr
  | None -> Error (Printf.sprintf "model %s requires STA endpoint arrivals" key)

let need_db ~key resources k =
  match resources.db with
  | Some db -> k db
  | None -> Error (Printf.sprintf "model %s requires a DTA characterization database" key)

let () =
  Registry.register
    {
      Registry.key = "A";
      doc = "fixed-probability random bit flips (baseline)";
      version = 1;
      features = features_a;
      cycle_dependent = false;
      wants_arrivals = false;
      wants_db = false;
      default_params = [ ("p", Json.Float 1e-6) ];
      build = (fun ~resources:_ ~params -> Ok (make_a ~bit_flip_prob:(pfloat params "p")));
    };
  Registry.register
    {
      Registry.key = "B";
      doc = "static-timing period violation (no supply noise)";
      version = 1;
      features = features_b;
      cycle_dependent = false;
      wants_arrivals = true;
      wants_db = false;
      default_params = [];
      build =
        (fun ~resources:r ~params:_ ->
          need_arrivals ~key:"B" r (fun arr ->
              Ok
                (make_static_timing ~key:"B" ~features:features_b
                   ~endpoint_arrivals:arr ~setup_ps:r.setup_ps ~vdd:r.vdd
                   ~noise:Noise.none ~vdd_model:r.vdd_model)));
    };
  Registry.register
    {
      Registry.key = "B+";
      doc = "static timing with per-cycle supply-noise modulation";
      version = 1;
      features = features_bplus;
      cycle_dependent = false;
      wants_arrivals = true;
      wants_db = false;
      default_params = [];
      build =
        (fun ~resources:r ~params:_ ->
          need_arrivals ~key:"B+" r (fun arr ->
              Ok
                (make_static_timing ~key:"B+" ~features:features_bplus
                   ~endpoint_arrivals:arr ~setup_ps:r.setup_ps ~vdd:r.vdd
                   ~noise:r.noise ~vdd_model:r.vdd_model)));
    };
  Registry.register
    {
      Registry.key = "C";
      doc = "instruction-aware statistical injection (independent endpoints)";
      version = 1;
      features = features_c;
      cycle_dependent = false;
      wants_arrivals = false;
      wants_db = true;
      default_params = [];
      build =
        (fun ~resources:r ~params:_ ->
          need_db ~key:"C" r (fun db ->
              Ok
                (make_statistical ~key:"C" ~db ~vdd:r.vdd ~noise:r.noise
                   ~vdd_model:r.vdd_model ~sampling:Independent)));
    };
  Registry.register
    {
      Registry.key = "C-corr";
      doc = "statistical injection with vector-correlated endpoint sampling";
      version = 1;
      features = features_c;
      cycle_dependent = false;
      wants_arrivals = false;
      wants_db = true;
      default_params = [];
      build =
        (fun ~resources:r ~params:_ ->
          need_db ~key:"C-corr" r (fun db ->
              Ok
                (make_statistical ~key:"C-corr" ~db ~vdd:r.vdd ~noise:r.noise
                   ~vdd_model:r.vdd_model ~sampling:Vector_correlated)));
    };
  Registry.register
    {
      Registry.key = "glitch";
      doc = "voltage glitch in attacker-chosen cycle windows (attack)";
      version = 1;
      features = features_glitch;
      cycle_dependent = true;
      wants_arrivals = true;
      wants_db = false;
      default_params =
        [
          ("start", Json.Int 0);      (* first attacked cycle *)
          ("len", Json.Int 16);       (* window length, cycles *)
          ("every", Json.Int 0);      (* repeat interval; 0 = one-shot *)
          ("drop_mv", Json.Float 120.); (* supply droop inside the window *)
        ];
      build =
        (fun ~resources:r ~params ->
          need_arrivals ~key:"glitch" r (fun arr ->
              let start = pint params "start"
              and len = pint params "len"
              and every = pint params "every"
              and drop_mv = pfloat params "drop_mv" in
              if start < 0 || len < 0 || every < 0 || drop_mv < 0. then
                Error "model glitch: start/len/every/drop_mv must be non-negative"
              else
                make_glitch ~params ~endpoint_arrivals:arr ~setup_ps:r.setup_ps
                  ~vdd:r.vdd ~vdd_model:r.vdd_model ~start ~len ~every ~drop_mv));
    };
  Registry.register
    {
      Registry.key = "skip";
      doc = "InjectV-style instruction skip with probability p (attack)";
      version = 1;
      features = features_skip;
      cycle_dependent = true;
      wants_arrivals = false;
      wants_db = false;
      default_params = [ ("p", Json.Float 1e-4) ];
      build =
        (fun ~resources:_ ~params ->
          let p = pfloat params "p" in
          if p < 0. || p > 1. then Error "model skip: p must be in [0, 1]"
          else Ok (make_skip ~params ~p));
    };
  Registry.register
    {
      Registry.key = "opcode";
      doc = "InjectV-style opcode corruption with probability p (attack)";
      version = 1;
      features = features_opcode;
      cycle_dependent = true;
      wants_arrivals = false;
      wants_db = false;
      default_params = [ ("p", Json.Float 1e-4) ];
      build =
        (fun ~resources:_ ~params ->
          let p = pfloat params "p" in
          if p < 0. || p > 1. then Error "model opcode: p must be in [0, 1]"
          else Ok (make_opcode ~params ~p));
    };
  Registry.register
    {
      Registry.key = "state";
      doc = "random architectural-state bit flips at trial start (attack)";
      version = 1;
      features = features_state;
      cycle_dependent = true;
      wants_arrivals = false;
      wants_db = false;
      default_params =
        [
          ("flips", Json.Int 1);
          ("word_lo", Json.Int 0); (* word-address window, [lo, hi) *)
          ("word_hi", Json.Int 0); (* 0 = end of memory *)
        ];
      build =
        (fun ~resources:_ ~params ->
          let flips = pint params "flips"
          and word_lo = pint params "word_lo"
          and word_hi = pint params "word_hi" in
          if flips < 0 || word_lo < 0 || word_hi < 0 then
            Error "model state: flips/word_lo/word_hi must be non-negative"
          else Ok (make_state ~params ~flips ~word_lo ~word_hi));
    }

(* ---------- deprecated variant-era constructors ---------- *)

let fixed_probability ~bit_flip_prob = make_a ~bit_flip_prob

let static_timing ~endpoint_arrivals ~setup_ps ~vdd ~noise ~vdd_model =
  (* The historic [name] split: sigma = 0 was model B, anything else B+.
     The caller's noise value passes through either way so the hashed
     fingerprint bytes are unchanged. *)
  if Noise.sigma noise = 0. then
    make_static_timing ~key:"B" ~features:features_b ~endpoint_arrivals ~setup_ps ~vdd
      ~noise ~vdd_model
  else
    make_static_timing ~key:"B+" ~features:features_bplus ~endpoint_arrivals ~setup_ps
      ~vdd ~noise ~vdd_model

let statistical ~db ~vdd ~noise ~vdd_model ~sampling =
  let key = match sampling with Independent -> "C" | Vector_correlated -> "C-corr" in
  make_statistical ~key ~db ~vdd ~noise ~vdd_model ~sampling
