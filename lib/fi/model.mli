(** Pluggable fault-model registry.

    The paper's four timing-error models (Table 2) used to be a closed
    variant; they are now {e registered} models looked up by a stable
    string key, alongside adversarial attack families that inject faults
    into architectural state rather than datapath timing:

    - ["A"] — fixed-probability random bit flips, the conventional
      baseline: no link to timing, voltage, or the circuit.
    - ["B"] — static-timing based: a fault hits every endpoint whose
      worst static path exceeds the clock period, whenever any ALU
      instruction activates the stage.
    - ["B+"] — model B with per-cycle supply-voltage noise modulating
      all path delays through the fitted Vdd-delay curve.
    - ["C"] / ["C-corr"] — the paper's contribution: instruction-aware
      statistical injection using per-endpoint DTA distributions
      combined with the noise model, with independent or
      vector-correlated endpoint sampling.
    - ["glitch"] — attacker-chosen cycle windows in which the supply
      drops far below the noise band; the drop derates every STA
      endpoint through the Vdd-delay curve, so the paths that violate
      the period inside the window fault deterministically.
    - ["skip"] — InjectV-style instruction skip: with probability [p]
      an ALU instruction does not latch its result, so the EX result
      register keeps the previously written value.
    - ["opcode"] — InjectV-style opcode corruption: with probability
      [p] the instruction executes as a uniformly drawn {e other} ALU
      class on the same operands.
    - ["state"] — architectural-state attack: [flips] random single-bit
      upsets in a memory window, applied once at trial start.

    A model value is immutable and shareable across trials; per-trial
    mutable state (RNG use, the skip model's EX latch, the state
    model's flips) lives in the {!instance} returned by {!instantiate}.

    {b Determinism and fingerprints.} Each model contributes its exact
    identity to cache/checkpoint fingerprints ({!add_fingerprint}); the
    five built-ins reproduce the historic byte sequences, so existing
    checkpoints, goldens and det signatures remain valid. New models
    hash their registry key, codec version and canonical parameters, so
    mixed-model sweeps dedupe and resume correctly.

    {b Fast-forward contract.} [skippable_gaussians] declares, per
    instruction class, whether a hook call is a provable no-op
    consuming exactly [k] standard-normal draws ({!Fastforward}'s probe
    batches those into one RNG jump). Models whose masks depend on the
    cycle number or the operand values — every attack family — declare
    {!cycle_dependent}[ = true]; the fast-forward engine refuses to
    probe them (counted, never silent) and falls back to full replay. *)

open Sfi_util
open Sfi_timing

type sampling = Independent | Vector_correlated

type features = {
  technique : string;
  timing_data : string;
  multi_vdd : bool;
  vdd_noise : bool;
  gate_level_aware : string;
  instruction_aware : bool;
}

type t
(** An instantiable fault model. Obtain one from a {!Registry} entry
    ({!of_key}), from the {!Flow} helpers, or — deprecated — from the
    compat constructors below. *)

(** Per-trial instantiation: the inner sampling hook plus the per-trial
    state hooks the injector drives. *)
type instance = {
  sample : cycle:int -> cls:Op_class.t -> a:U32.t -> b:U32.t -> result:U32.t -> U32.t;
      (** XOR mask for one ALU execution; [0] = no fault. Consumes the
          trial RNG exactly as the model's draw contract declares. *)
  trial_start : Sfi_sim.Memory.t -> int;
      (** Per-trial state hook, called once after the benchmark image is
          loaded and before the first simulated cycle; returns the
          number of state bits it flipped (0 for all built-ins, which
          also draw nothing from the RNG). *)
  cannot_inject : bool;
      (** The fast path proved no fault can ever occur at this operating
          point: a single fault-free run stands for all trials. *)
  skippable_gaussians : Op_class.t -> int option;
      (** [Some k]: a hook call for this class is a provable no-op that
          consumes exactly [k] standard-normal draws (and nothing else).
          [None]: the call must actually run. *)
}

val key : t -> string
(** The registry key — the single source of truth for CLI parsing, JSON
    codecs and obs metric labels ("A", "B+", "glitch", ...). *)

val features : t -> features
(** The Table 2 row for the model. *)

val cycle_dependent : t -> bool
(** [true] when the mask depends on the cycle number or operand values,
    or the model perturbs pre-run state — i.e. the fast-forward probe's
    schedule replay would be unsound. All attack families are
    cycle-dependent; the built-ins are not. *)

val params : t -> (string * Sfi_obs.Json.t) list
(** Canonical parameter assoc (defaults merged in registration order).
    Empty for models fully determined by their resources. *)

val to_string : t -> string
(** ["key"] or ["key{...params json...}"] — the printable form
    {!of_string} parses back. *)

val add_fingerprint : t -> Sfi_cache.Fingerprint.t -> unit
(** Appends the model's full identity (key, codec version, parameters
    and resource inputs) to a cache/checkpoint fingerprint. Byte-exact
    with the historic encoding for the five built-ins. *)

val instantiate : t -> count_obs:bool -> freq_mhz:float -> rng:Rng.t -> instance
(** [count_obs = false] silences the model's work counters (fast-forward
    probe replays); RNG consumption is identical either way. *)

(** Everything a registered model may need from the design flow. Models
    declare what they use ({!Registry.entry}); building one with a
    required resource missing is an [Error]. *)
type resources = {
  vdd : float;              (** operating supply voltage *)
  noise : Noise.t;          (** supply-noise model ([Noise.none] for B) *)
  vdd_model : Vdd_model.t;
  setup_ps : float;
  endpoint_arrivals : float array option;
      (** per-endpoint worst STA arrival at [vdd] (models B/B+/glitch) *)
  db : Characterize.t option;  (** DTA characterization (models C/C-corr) *)
}

val default_resources : resources
(** 0.7 V, no noise, the default Vdd-delay curve, the default setup
    margin, no STA arrivals, no characterization database. *)

module Registry : sig
  type entry = {
    key : string;          (** stable, unique (case-insensitive) *)
    doc : string;          (** one-line description for listings *)
    version : int;         (** parameter-codec version, part of new-model fingerprints *)
    features : features;
    cycle_dependent : bool;
    wants_arrivals : bool; (** requires [resources.endpoint_arrivals] *)
    wants_db : bool;       (** requires [resources.db] *)
    default_params : (string * Sfi_obs.Json.t) list;
        (** canonical parameter names, defaults and types *)
    build :
      resources:resources ->
      params:(string * Sfi_obs.Json.t) list ->
      (t, string) result;
  }

  val register : entry -> unit
  (** Raises [Invalid_argument] on a duplicate key. The nine shipped
      models self-register at module initialization. *)

  val find : string -> entry option
  (** Case-insensitive key lookup. *)

  val keys : unit -> string list
  (** Registration order: A, B, B+, C, C-corr, glitch, skip, opcode,
      state, then any externally registered models. *)

  val entries : unit -> entry list

  val make :
    ?params:(string * Sfi_obs.Json.t) list -> entry -> resources -> (t, string) result
  (** Builds the model; [params] override the entry's defaults. Unknown
      or mistyped parameter names are an [Error]. *)
end

val of_key :
  ?params:(string * Sfi_obs.Json.t) list ->
  resources:resources ->
  string ->
  (t, string) result
(** [Registry.find key |> make params] with an "unknown model" error
    listing the registered keys. *)

val of_string : resources:resources -> string -> (t, string) result
(** Parses {!to_string}'s form: a bare key, or [key{json object}]. *)

val feature_rows : unit -> (string * features) list
(** The four rows of the paper's Table 2 (static metadata, independent
    of any instantiation). For the full registry use
    {!Registry.entries}. *)

(** {2 Deprecated variant-era constructors}

    The closed-variant constructors survive as thin functions so old
    call sites keep compiling (with a deprecation warning); new code
    goes through the registry or the {!Flow} helpers. *)

val fixed_probability : bit_flip_prob:float -> t
[@@deprecated "use Model.of_key \"A\" or Flow.model_a"]

val static_timing :
  endpoint_arrivals:float array ->
  setup_ps:float ->
  vdd:float ->
  noise:Noise.t ->
  vdd_model:Vdd_model.t ->
  t
[@@deprecated "use Model.of_key \"B\"/\"B+\" or Flow.model_b/model_bplus"]

val statistical :
  db:Characterize.t ->
  vdd:float ->
  noise:Noise.t ->
  vdd_model:Vdd_model.t ->
  sampling:sampling ->
  t
[@@deprecated "use Model.of_key \"C\"/\"C-corr\" or Flow.model_c"]
