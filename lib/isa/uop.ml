open Sfi_util

(* Pre-resolved micro-op form of the ISA, shared by the simulator's
   interpreter (as its unboxed decode cache) and by the compiled
   basic-block engine (as the source language blocks are copied from).

   Each instruction word of the SRAM image maps to one quad of native
   ints at [tab.(idx*4 .. idx*4+3)]: an opcode from the [u_*] space
   below plus three operands with all decode work already done —
   register indices extracted, immediates sign/zero-extended to
   canonical 32-bit values, jump/branch targets resolved to absolute
   byte addresses (legal because the table is indexed by the wrapped
   fetch pc, so the word's pc is [idx lsl 2]), and ALU opcodes fused
   with their {!Op_class.index}. Executing from the table therefore
   needs no [Insn.t] allocation and no variant dispatch.

   Slot 0 of a quad is [u_unfilled] until {!decode_into} runs for that
   word ([Array.make 0] gives a whole-table cold state for free), and
   becomes [u_illegal] when {!Encode.decode} would return [None]. A
   store into a word resets its slot to [u_unfilled]; the next fetch
   re-decodes, which is exactly the old boxed
   [Insn.t option option array] protocol without the option cells. *)

let u_unfilled = 0

let u_illegal = 1

(* ALU register-register: x = rD, y = rA, z = rB;
   class = op - u_alu_rr in {!Op_class.index} order. *)
let u_alu_rr = 2

(* ALU register-immediate: x = rD, y = rA, z = resolved 32-bit operand
   (sign-extended for addi/xori/muli, zero-extended for andi/ori, the
   shift amount for slli/srli/srai, the shifted constant for movhi —
   movhi becomes class Or_ with y = r0). *)
let u_alu_ri = 11

let u_sf = 20 (* x = cmp index, y = rA, z = rB *)

let u_sfi = 21 (* x = cmp index, y = rA, z = imm32 *)

let u_j = 22 (* x = absolute target *)

let u_j_self = 23 (* l.j 0: architectural infinite loop -> Watchdog *)

let u_jal = 24 (* x = absolute target, y = link value (pc + 4) *)

let u_jr = 25 (* x = rB *)

let u_jalr = 26 (* x = rB, y = link value (pc + 4) *)

let u_bf = 27 (* x = absolute target *)

let u_bnf = 28 (* x = absolute target *)

let u_lwz = 29 (* x = rD, y = imm32, z = rA *)

let u_lhz = 30

let u_lbz = 31

let u_sw = 32 (* x = imm32, y = rA, z = rB *)

let u_sh = 33

let u_sb = 34

let u_nop = 35

let u_nop_exit = 36

let u_nop_kernel_begin = 37

let u_nop_kernel_end = 38

let count = 39

(* Dense lookup tables closing the int-code <-> variant gap on the two
   paths where the executor still needs the variant (class application
   via Op_class, flag computation via Insn.cmp). Order is pinned to
   Op_class.index / Encode.cmp_code's declaration order. *)
let cls_table = Array.of_list Op_class.all

let cmp_table =
  [|
    Insn.Eq; Insn.Ne; Insn.Gtu; Insn.Geu; Insn.Ltu; Insn.Leu; Insn.Gts; Insn.Ges;
    Insn.Lts; Insn.Les;
  |]

let cmp_index = function
  | Insn.Eq -> 0
  | Insn.Ne -> 1
  | Insn.Gtu -> 2
  | Insn.Geu -> 3
  | Insn.Ltu -> 4
  | Insn.Leu -> 5
  | Insn.Gts -> 6
  | Insn.Ges -> 7
  | Insn.Lts -> 8
  | Insn.Les -> 9

(* OR1K l.sf* comparison codes (rD field), as Encode.cmp_of_code. *)
let cmp_index_of_code = function
  | 0x0 -> 0 (* eq *)
  | 0x1 -> 1 (* ne *)
  | 0x2 -> 2 (* gtu *)
  | 0x3 -> 3 (* geu *)
  | 0x4 -> 4 (* ltu *)
  | 0x5 -> 5 (* leu *)
  | 0xa -> 6 (* gts *)
  | 0xb -> 7 (* ges *)
  | 0xc -> 8 (* lts *)
  | 0xd -> 9 (* les *)
  | _ -> -1

let sext26 v = if v land (1 lsl 25) <> 0 then v - (1 lsl 26) else v

let[@inline] set tab base op x y z =
  Array.unsafe_set tab base op;
  Array.unsafe_set tab (base + 1) x;
  Array.unsafe_set tab (base + 2) y;
  Array.unsafe_set tab (base + 3) z

(* Local [@inline always] helpers instead of per-call closures: without
   flambda, closures binding this much context are heap-allocated on
   every call, which the decoder's allocation-pin test forbids. *)
let[@inline always] illegal tab base = set tab base u_illegal 0 0 0

let[@inline always] alu_rr tab base cls d a b =
  set tab base (u_alu_rr + Op_class.index cls) d a b

let[@inline always] alu_ri tab base cls d a imm32 =
  set tab base (u_alu_ri + Op_class.index cls) d a imm32

let[@inline always] imm_s w = U32.sext ~bits:16 (w land 0xFFFF)

(* Direct targets are wrapped with the SRAM decoder mask at decode
   time — the same wrap the fetch stage would apply — so taken
   branches land directly on a table index. *)
let[@inline always] target pc addr_mask w =
  (pc + (sext26 (w land 0x3FF_FFFF) lsl 2)) land addr_mask

(* Mirrors Encode.decode case by case (the differential property test
   pins the two against each other over random words), but writes int
   quads instead of allocating constructors, so a cold decode fill is
   allocation-free (pinned by a Gc.minor_words test). *)
let decode_into tab ~idx ~addr_mask w =
  let base = idx lsl 2 in
  let pc = idx lsl 2 in
  let op = (w lsr 26) land 0x3F in
  let d = (w lsr 21) land 0x1F in
  let a = (w lsr 16) land 0x1F in
  let b = (w lsr 11) land 0x1F in
  match op with
  | 0x00 ->
    if w land 0x3FF_FFFF = 0 then set tab base u_j_self 0 0 0
    else set tab base u_j (target pc addr_mask w) 0 0
  | 0x01 -> set tab base u_jal (target pc addr_mask w) (U32.of_int (pc + 4)) 0
  | 0x03 -> set tab base u_bnf (target pc addr_mask w) 0 0
  | 0x04 -> set tab base u_bf (target pc addr_mask w) 0 0
  | 0x05 ->
    if (w lsr 24) land 0x3 = 1 then begin
      let k = w land 0xFFFF in
      let o =
        if k = Insn.nop_exit then u_nop_exit
        else if k = Insn.nop_kernel_begin then u_nop_kernel_begin
        else if k = Insn.nop_kernel_end then u_nop_kernel_end
        else u_nop
      in
      set tab base o 0 0 0
    end
    else illegal tab base
  | 0x06 ->
    (* movhi: Or_ of r0 with the shifted constant, exactly the
       interpreter's [alu_result Or_ 0 ((k land 0xFFFF) lsl 16)]. *)
    if (w lsr 16) land 0x1 = 0 then
      set tab base (u_alu_ri + Op_class.index Op_class.Or_) d 0 ((w land 0xFFFF) lsl 16)
    else illegal tab base
  | 0x11 -> set tab base u_jr b 0 0
  | 0x12 -> set tab base u_jalr b (U32.of_int (pc + 4)) 0
  | 0x21 -> set tab base u_lwz d (imm_s w) a
  | 0x23 -> set tab base u_lbz d (imm_s w) a
  | 0x25 -> set tab base u_lhz d (imm_s w) a
  | 0x27 -> alu_ri tab base Op_class.Add d a (imm_s w)
  | 0x29 -> alu_ri tab base Op_class.And_ d a (w land 0xFFFF)
  | 0x2a -> alu_ri tab base Op_class.Or_ d a (w land 0xFFFF)
  | 0x2b -> alu_ri tab base Op_class.Xor_ d a (imm_s w)
  | 0x2c -> alu_ri tab base Op_class.Mul d a (imm_s w)
  | 0x2e ->
    let s = w land 0x3F in
    if s > 31 then illegal tab base
    else begin
      match (w lsr 6) land 0x3 with
      | 0b00 -> alu_ri tab base Op_class.Sll d a s
      | 0b01 -> alu_ri tab base Op_class.Srl d a s
      | 0b10 -> alu_ri tab base Op_class.Sra d a s
      | _ -> illegal tab base
    end
  | 0x2f ->
    let c = cmp_index_of_code d in
    if c < 0 then illegal tab base else set tab base u_sfi c a (imm_s w)
  | 0x35 | 0x36 | 0x37 ->
    let imm32 = U32.sext ~bits:16 ((d lsl 11) lor (w land 0x7FF)) in
    let o = if op = 0x35 then u_sw else if op = 0x36 then u_sb else u_sh in
    set tab base o imm32 a b
  | 0x38 -> begin
    match w land 0xF with
    | 0x0 when (w lsr 6) land 0xF = 0 -> alu_rr tab base Op_class.Add d a b
    | 0x2 when (w lsr 6) land 0xF = 0 -> alu_rr tab base Op_class.Sub d a b
    | 0x3 when (w lsr 6) land 0xF = 0 -> alu_rr tab base Op_class.And_ d a b
    | 0x4 when (w lsr 6) land 0xF = 0 -> alu_rr tab base Op_class.Or_ d a b
    | 0x5 when (w lsr 6) land 0xF = 0 -> alu_rr tab base Op_class.Xor_ d a b
    | 0x6 when (w lsr 8) land 0x3 = 0b11 -> alu_rr tab base Op_class.Mul d a b
    | 0x8 -> begin
      match (w lsr 6) land 0x3 with
      | 0b00 -> alu_rr tab base Op_class.Sll d a b
      | 0b01 -> alu_rr tab base Op_class.Srl d a b
      | 0b10 -> alu_rr tab base Op_class.Sra d a b
      | _ -> illegal tab base
    end
    | _ -> illegal tab base
  end
  | 0x39 ->
    let c = cmp_index_of_code d in
    if c < 0 then illegal tab base else set tab base u_sf c a b
  | _ -> illegal tab base
