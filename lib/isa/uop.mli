(** Pre-resolved micro-op form of the ISA.

    One instruction word decodes to one quad of native ints,
    [tab.(idx*4) .. tab.(idx*4+3)]: an opcode from the [u_*] space plus
    three operands with every piece of decode work already performed —
    register indices extracted, immediates sign/zero-extended to
    canonical 32-bit values, jump and branch targets resolved to
    absolute byte addresses (valid because the table is indexed by the
    {e wrapped} fetch pc, so a word's pc is [idx lsl 2]), link values
    precomputed, and ALU opcodes fused with their {!Op_class.index}.

    The simulator uses one such table as its decode cache (quads start
    [u_unfilled]; a store resets the written word's slot 0 back to
    [u_unfilled]) and the compiled basic-block engine copies runs of
    quads out of it, so both engines execute the identical pre-resolved
    operands. [decode_into] is allocation-free (pinned by a
    [Gc.minor_words] test) and mirrors {!Encode.decode} exactly,
    including every reject case (pinned by a differential property
    test). *)

open Sfi_util

(** {1 Opcode space} *)

val u_unfilled : int
(** 0 — slot not yet decoded ([Array.make _ 0] is an all-cold table). *)

val u_illegal : int
(** 1 — the word is not a valid encoding ({!Encode.decode} = [None]). *)

val u_alu_rr : int
(** 2..10: ALU reg-reg; [op - u_alu_rr] is the {!Op_class.index}.
    x = rD, y = rA, z = rB. *)

val u_alu_ri : int
(** 11..19: ALU reg-imm; [op - u_alu_ri] is the {!Op_class.index}.
    x = rD, y = rA, z = resolved 32-bit second operand (l.movhi decodes
    here as class [Or_] with y = r0 and z the shifted constant). *)

val u_sf : int
(** x = comparison index (see {!cmp_table}), y = rA, z = rB. *)

val u_sfi : int
(** x = comparison index, y = rA, z = sign-extended immediate. *)

val u_j : int
(** x = absolute byte target. *)

val u_j_self : int
(** [l.j 0]: architectural infinite loop, exits with [Watchdog]. *)

val u_jal : int
(** x = absolute byte target, y = link value ([pc + 4]). *)

val u_jr : int
(** x = rB. *)

val u_jalr : int
(** x = rB, y = link value ([pc + 4]). *)

val u_bf : int
(** x = absolute byte target. *)

val u_bnf : int
(** x = absolute byte target. *)

val u_lwz : int
(** x = rD, y = 32-bit displacement, z = rA base. Also the layout of
    [u_lhz] and [u_lbz]. *)

val u_lhz : int

val u_lbz : int

val u_sw : int
(** x = 32-bit displacement, y = rA base, z = rB source. Also the
    layout of [u_sh] and [u_sb]. *)

val u_sh : int

val u_sb : int

val u_nop : int

val u_nop_exit : int

val u_nop_kernel_begin : int

val u_nop_kernel_end : int

val count : int
(** Exclusive upper bound of the opcode space. *)

(** {1 Variant bridges} *)

val cls_table : Op_class.t array
(** [cls_table.(i)] is the class with {!Op_class.index} [i]. *)

val cmp_table : Insn.cmp array
(** Dense comparison table; indices are stable across runs. *)

val cmp_index : Insn.cmp -> int
(** Index of a comparison in {!cmp_table}. *)

val cmp_index_of_code : int -> int
(** From the OR1K l.sf* rD-field code; [-1] for invalid codes. *)

(** {1 Decoding} *)

val decode_into : int array -> idx:int -> addr_mask:int -> int -> unit
(** [decode_into tab ~idx ~addr_mask w] decodes instruction word [w]
    fetched from word index [idx] (wrapped pc [idx lsl 2]) into
    [tab.(idx*4 .. idx*4+3)]. [addr_mask] is the SRAM decoder mask
    (memory size - 1); direct jump/branch targets are wrapped with it
    at decode time, exactly as the fetch stage would. Allocation-free.
    [tab] must have at least [4 * (idx + 1)] elements. *)
