open Sfi_util

(* Checksum-guarded toy AES, the attack-campaign target kernel.

   A 128-bit (4-word) block cipher shaped like AES — whitening, then 6
   rounds of SubBytes (a random 8-bit S-box), a byte rotation, a word
   mixing layer and AddRoundKey — small enough to assemble for the OR1K
   subset yet diffusive enough that a single datapath fault reaches the
   ciphertext. Two countermeasures guard it, as a fault-attack target
   would be guarded in practice:

   - an additive checksum over the plaintext, round keys and S-box,
     verified against a stored constant before encrypting (catches
     pre-run architectural-state tampering, the "state" attack model);
   - double encryption (temporal redundancy): the block is encrypted
     twice from scratch and the two ciphertexts compared word-for-word
     (catches transient datapath faults that hit only one of the runs).

   Either check failing sets a detection flag. The output is
   [flag; c0; c1; c2; c3], and the metric classifies the trial the way
   the fault-attack literature does: 0 = correct, 1 = detected (flag
   raised), 2 = attack success (flag clear and exactly one ciphertext
   word corrupted — the differential-fault-analysis-usable case),
   3 = silent data corruption (flag clear, wider damage). *)

let rounds = 6

let rk_words = 4 * (rounds + 1)

let source ~pt ~rk ~sbox_words ~cksum =
  Printf.sprintf
    {|# checksum-guarded toy AES: 4-word block, %d rounds, double encryption
        .entry start
start:
        l.movhi r2, hi(pt)
        l.ori   r2, r2, lo(pt)
        l.movhi r3, hi(rk)
        l.ori   r3, r3, lo(rk)
        l.movhi r4, hi(sbox)
        l.ori   r4, r4, lo(sbox)
        l.movhi r5, hi(state)
        l.ori   r5, r5, lo(state)
        l.movhi r6, hi(save)
        l.ori   r6, r6, lo(save)
        l.movhi r7, hi(result)
        l.ori   r7, r7, lo(result)
        l.nop   0x10                # kernel begin
        # guard 1: additive checksum over pt, rk and sbox (96 words)
        l.addi  r12, r0, 96
        l.ori   r13, r2, 0
        l.addi  r14, r0, 0
ck_loop:
        l.lwz   r15, 0(r13)
        l.add   r14, r14, r15
        l.addi  r13, r13, 4
        l.addi  r12, r12, -1
        l.sfnei r12, 0
        l.bf    ck_loop
        l.movhi r16, hi(cksum)
        l.ori   r16, r16, lo(cksum)
        l.lwz   r15, 0(r16)
        l.addi  r20, r0, 0          # detection flag
        l.sfeq  r14, r15
        l.bf    ck_ok
        l.addi  r20, r0, 1
ck_ok:
        # guard 2: encrypt twice from scratch, compare ciphertexts
        l.jal   encrypt
        l.lwz   r15, 0(r5)
        l.sw    0(r6), r15
        l.lwz   r15, 4(r5)
        l.sw    4(r6), r15
        l.lwz   r15, 8(r5)
        l.sw    8(r6), r15
        l.lwz   r15, 12(r5)
        l.sw    12(r6), r15
        l.jal   encrypt
        l.addi  r12, r0, 4
        l.ori   r13, r5, 0
        l.ori   r14, r6, 0
cmp_loop:
        l.lwz   r15, 0(r13)
        l.lwz   r16, 0(r14)
        l.sfeq  r15, r16
        l.bf    cmp_ok
        l.addi  r20, r0, 1
cmp_ok:
        l.addi  r13, r13, 4
        l.addi  r14, r14, 4
        l.addi  r12, r12, -1
        l.sfnei r12, 0
        l.bf    cmp_loop
        # output: flag then the (second) ciphertext
        l.sw    0(r7), r20
        l.lwz   r15, 0(r5)
        l.sw    4(r7), r15
        l.lwz   r15, 4(r5)
        l.sw    8(r7), r15
        l.lwz   r15, 8(r5)
        l.sw    12(r7), r15
        l.lwz   r15, 12(r5)
        l.sw    16(r7), r15
        l.nop   0x11                # kernel end
        l.nop   0x1                 # exit

# encrypt pt into state (r2=pt, r3=rk, r4=sbox, r5=state; clobbers r12-r19,r21,r22)
encrypt:
        l.addi  r12, r0, 4          # whitening: state[i] = pt[i] ^ rk[i]
        l.ori   r13, r2, 0
        l.ori   r14, r3, 0
        l.ori   r15, r5, 0
wh_loop:
        l.lwz   r16, 0(r13)
        l.lwz   r17, 0(r14)
        l.xor   r16, r16, r17
        l.sw    0(r15), r16
        l.addi  r13, r13, 4
        l.addi  r14, r14, 4
        l.addi  r15, r15, 4
        l.addi  r12, r12, -1
        l.sfnei r12, 0
        l.bf    wh_loop
        l.addi  r21, r0, %d         # round counter
        l.addi  r22, r3, 16         # round-key pointer (past whitening keys)
round_loop:
        l.addi  r12, r0, 4          # per word: rotate left 8, substitute bytes
        l.ori   r13, r5, 0
word_loop:
        l.lwz   r16, 0(r13)
        l.slli  r17, r16, 8
        l.srli  r16, r16, 24
        l.or    r16, r17, r16
        l.addi  r17, r0, 4
        l.addi  r18, r0, 0
byte_loop:
        l.srli  r19, r16, 24
        l.add   r19, r4, r19
        l.lbz   r19, 0(r19)
        l.slli  r18, r18, 8
        l.or    r18, r18, r19
        l.slli  r16, r16, 8
        l.addi  r17, r17, -1
        l.sfnei r17, 0
        l.bf    byte_loop
        l.sw    0(r13), r18
        l.addi  r13, r13, 4
        l.addi  r12, r12, -1
        l.sfnei r12, 0
        l.bf    word_loop
        l.lwz   r16, 0(r5)          # mix: s0^=s1; s1^=s2; s2^=s3; s3^=s0
        l.lwz   r17, 4(r5)
        l.lwz   r18, 8(r5)
        l.lwz   r19, 12(r5)
        l.xor   r16, r16, r17
        l.xor   r17, r17, r18
        l.xor   r18, r18, r19
        l.xor   r19, r19, r16
        l.sw    0(r5), r16
        l.sw    4(r5), r17
        l.sw    8(r5), r18
        l.sw    12(r5), r19
        l.addi  r12, r0, 4          # AddRoundKey
        l.ori   r13, r5, 0
ark_loop:
        l.lwz   r16, 0(r13)
        l.lwz   r17, 0(r22)
        l.xor   r16, r16, r17
        l.sw    0(r13), r16
        l.addi  r13, r13, 4
        l.addi  r22, r22, 4
        l.addi  r12, r12, -1
        l.sfnei r12, 0
        l.bf    ark_loop
        l.addi  r21, r21, -1
        l.sfnei r21, 0
        l.bf    round_loop
        l.jr    r9

result: .word 0, 0, 0, 0, 0
pt:
%s
rk:
%s
sbox:
%s
cksum: .word %d
state: .space 16
save:  .space 16
|}
    rounds rounds
    (Bench.format_word_data pt)
    (Bench.format_word_data rk)
    (Bench.format_word_data sbox_words)
    cksum

(* ---------- the OCaml reference, mirroring the assembly exactly ---------- *)

let rotl8 w = ((w lsl 8) land U32.mask) lor (w lsr 24)

let sub_word sbox w =
  let b i = (w lsr (24 - (8 * i))) land 0xFF in
  (sbox.(b 0) lsl 24) lor (sbox.(b 1) lsl 16) lor (sbox.(b 2) lsl 8) lor sbox.(b 3)

let encrypt ~sbox ~rk pt =
  let s = Array.copy pt in
  for i = 0 to 3 do
    s.(i) <- s.(i) lxor rk.(i)
  done;
  for r = 1 to rounds do
    for i = 0 to 3 do
      s.(i) <- sub_word sbox (rotl8 s.(i))
    done;
    s.(0) <- s.(0) lxor s.(1);
    s.(1) <- s.(1) lxor s.(2);
    s.(2) <- s.(2) lxor s.(3);
    s.(3) <- s.(3) lxor s.(0);
    for i = 0 to 3 do
      s.(i) <- s.(i) lxor rk.((4 * r) + i)
    done
  done;
  s

(* Trial classification codes reported through the metric (the error
   field of a campaign trial): the attack experiment decodes them back
   into its success/SDC/detected buckets. *)
let class_correct = 0.

let class_detected = 1.

let class_attack_success = 2.

let class_sdc = 3.

let classify ~expected ~actual =
  if actual = expected then class_correct
  else if actual.(0) <> 0 then class_detected
  else begin
    let diffs = ref 0 in
    for i = 1 to 4 do
      if actual.(i) <> expected.(i) then incr diffs
    done;
    if !diffs = 1 then class_attack_success else class_sdc
  end

let create ?(seed = 1) () =
  let rng = Rng.of_int (seed lxor 0xAE5) in
  (* Random S-box permutation (Fisher-Yates), random keys and block. *)
  let sbox = Array.init 256 Fun.id in
  for i = 255 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = sbox.(i) in
    sbox.(i) <- sbox.(j);
    sbox.(j) <- t
  done;
  let pt = Array.init 4 (fun _ -> Rng.bits32 rng) in
  let rk = Array.init rk_words (fun _ -> Rng.bits32 rng) in
  (* Big-endian byte packing, like the l.lbz walk expects: byte [i] of
     word [w] is sbox byte [4w + i]. *)
  let sbox_words =
    Array.init 64 (fun w ->
        (sbox.(4 * w) lsl 24)
        lor (sbox.((4 * w) + 1) lsl 16)
        lor (sbox.((4 * w) + 2) lsl 8)
        lor sbox.((4 * w) + 3))
  in
  let cksum =
    let sum = ref 0 in
    Array.iter (fun w -> sum := U32.add !sum w) pt;
    Array.iter (fun w -> sum := U32.add !sum w) rk;
    Array.iter (fun w -> sum := U32.add !sum w) sbox_words;
    !sum
  in
  let program = Sfi_isa.Asm.assemble_exn (source ~pt ~rk ~sbox_words ~cksum) in
  let c = encrypt ~sbox ~rk pt in
  let golden = [| 0; c.(0); c.(1); c.(2); c.(3) |] in
  let metric ~expected ~actual = classify ~expected ~actual in
  {
    Bench.name = "aes";
    bench_type = "block cipher (guarded)";
    compute_rating = "+";
    control_rating = "+";
    size_desc = "128-bit block";
    program;
    mem_size = 65536;
    output_addr = Sfi_isa.Program.symbol program "result";
    output_count = 5;
    golden;
    metric_name = "attack class";
    metric;
  }

(* Word-address window of the kernel's sensitive data (pt..save), for
   pointing the "state" attack model at the image instead of empty
   memory. *)
let data_word_range bench =
  let program = bench.Bench.program in
  let lo = Sfi_isa.Program.symbol program "pt" / 4 in
  let hi = (Sfi_isa.Program.symbol program "save" / 4) + 4 in
  (lo, hi)
