(** Checksum-guarded toy AES — the attack-campaign target kernel
    (extension beyond the paper's four kernels).

    A 4-word (128-bit) block cipher with AES's shape: key whitening,
    then 6 rounds of byte rotation, S-box substitution (a random 8-bit
    permutation looked up with [l.lbz]), a word mixing layer and
    AddRoundKey. Two countermeasures guard it: an additive checksum over
    the plaintext, round keys and S-box verified before encrypting, and
    double encryption with a word-for-word ciphertext comparison. The
    output is [flag; c0..c3]; the metric returns an attack class, not an
    error magnitude. *)

val create : ?seed:int -> unit -> Bench.t

val class_correct : float
(** 0: finished with the golden output. *)

val class_detected : float
(** 1: a guard raised the detection flag. *)

val class_attack_success : float
(** 2: flag clear and exactly one ciphertext word corrupted — the
    differential-fault-analysis-usable outcome an attacker wants. *)

val class_sdc : float
(** 3: flag clear but the output is wrong more broadly (silent data
    corruption). *)

val encrypt : sbox:int array -> rk:int array -> int array -> int array
(** The OCaml reference cipher (exactly the assembly's arithmetic):
    [sbox] is a 256-entry byte permutation, [rk] the 28 round-key words,
    the block 4 words. *)

val data_word_range : Bench.t -> int * int
(** Word-address window [\[lo, hi)] covering the kernel's sensitive data
    (plaintext, round keys, S-box, checksum and cipher state) — where
    the ["state"] attack model's flips actually hit the computation
    rather than unused memory. *)
