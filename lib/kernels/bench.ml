open Sfi_util
open Sfi_sim

type t = {
  name : string;
  bench_type : string;
  compute_rating : string;
  control_rating : string;
  size_desc : string;
  program : Sfi_isa.Program.t;
  mem_size : int;
  output_addr : int;
  output_count : int;
  golden : U32.t array;
  metric_name : string;
  metric : expected:U32.t array -> actual:U32.t array -> float;
}

let fresh_memory t =
  let mem = Memory.create ~size:t.mem_size in
  Memory.load_program mem t.program;
  mem

let read_output t mem = Memory.read_u32_array mem ~addr:t.output_addr ~count:t.output_count

let run_fault_free ?(max_cycles = 50_000_000) ?engine t =
  let mem = fresh_memory t in
  let config = { Cpu.default_config with Cpu.max_cycles } in
  let stats = Cpu.run ~config ?engine mem ~entry:t.program.Sfi_isa.Program.entry in
  (stats, read_output t mem)

let validate t =
  let stats, out = run_fault_free t in
  (match stats.Cpu.outcome with
  | Cpu.Exited -> ()
  | Cpu.Watchdog -> failwith (t.name ^ ": fault-free run hit the watchdog")
  | Cpu.Trapped msg -> failwith (t.name ^ ": fault-free run trapped: " ^ msg));
  if out <> t.golden then failwith (t.name ^ ": fault-free output differs from golden");
  stats

let format_word_data values =
  let buf = Buffer.create (Array.length values * 12) in
  Array.iteri
    (fun i v ->
      if i mod 8 = 0 then begin
        if i > 0 then Buffer.add_char buf '\n';
        Buffer.add_string buf "        .word "
      end
      else Buffer.add_string buf ", ";
      Buffer.add_string buf (Printf.sprintf "0x%s" (U32.to_hex v)))
    values;
  Buffer.add_char buf '\n';
  Buffer.contents buf
