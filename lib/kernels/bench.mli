(** Benchmark kernel descriptor and common machinery.

    Each of the paper's four kernels (median, matrix multiplication in
    8- and 16-bit variants, k-means clustering, Dijkstra) is built by its
    module into this descriptor: an assembled program with the input data
    embedded, the golden output computed by an OCaml reference that mirrors
    the kernel's integer arithmetic exactly, and the output-error metric
    of Table 1. *)

open Sfi_util
open Sfi_sim

type t = {
  name : string;
  bench_type : string;        (** Table 1 "type" row *)
  compute_rating : string;    (** Table 1 compute row: "-", "+", "++" *)
  control_rating : string;
  size_desc : string;         (** e.g. ["129 values"] *)
  program : Sfi_isa.Program.t;
  mem_size : int;
  output_addr : int;          (** byte address of the output region *)
  output_count : int;         (** 32-bit words of output *)
  golden : U32.t array;
  metric_name : string;       (** Table 1 "output error" row *)
  metric : expected:U32.t array -> actual:U32.t array -> float;
      (** output-quality error; by convention a percentage-like metrics
          return values in [0, 100] and MSE returns the raw mean squared
          error *)
}

val fresh_memory : t -> Memory.t
(** A new memory with the program image loaded. *)

val read_output : t -> Memory.t -> U32.t array

val run_fault_free : ?max_cycles:int -> ?engine:Cpu.engine -> t -> Cpu.stats * U32.t array
(** Runs without fault injection and returns the stats and outputs. The
    golden outputs must match — checked by the test suite and asserted by
    {!validate}. [engine] selects the simulator engine (default: the
    process-wide {!Cpu.set_default_engine} value). *)

val validate : t -> Cpu.stats
(** Runs fault-free and raises [Failure] if the outcome is not [Exited]
    or the outputs differ from [golden]. Returns the stats. *)

val format_word_data : U32.t array -> string
(** Renders an array as [.word] directives, 8 per line (assembly-source
    helper for the kernel builders). *)
