let paper_suite ?(seed = 1) () =
  [
    Median.create ~seed ();
    Matmul.create ~bits:8 ~seed ();
    Matmul.create ~bits:16 ~seed ();
    Kmeans.create ~seed ();
    Dijkstra.create ~seed ();
  ]

let extension_suite ?(seed = 1) () =
  [ Crc32.create ~seed (); Fir.create ~seed (); Aes.create ~seed () ]

let names =
  [ "median"; "mat_mult_8bit"; "mat_mult_16bit"; "kmeans"; "dijkstra"; "crc32"; "fir";
    "aes" ]

let by_name ?(seed = 1) name =
  match name with
  | "median" -> Some (Median.create ~seed ())
  | "mat_mult_8bit" -> Some (Matmul.create ~bits:8 ~seed ())
  | "mat_mult_16bit" -> Some (Matmul.create ~bits:16 ~seed ())
  | "kmeans" -> Some (Kmeans.create ~seed ())
  | "dijkstra" -> Some (Dijkstra.create ~seed ())
  | "crc32" -> Some (Crc32.create ~seed ())
  | "fir" -> Some (Fir.create ~seed ())
  | "aes" -> Some (Aes.create ~seed ())
  | _ -> None
