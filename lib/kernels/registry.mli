(** Benchmark registry: the paper's suite by name. *)

val paper_suite : ?seed:int -> unit -> Bench.t list
(** median, mat_mult_8bit, mat_mult_16bit, kmeans, dijkstra — Table 1's
    rows — at the paper's problem sizes. *)

val extension_suite : ?seed:int -> unit -> Bench.t list
(** crc32, fir and aes: kernels beyond the paper's set — shifter /
    logic-unit classes, a streaming MAC profile, and the checksum-guarded
    toy-AES attack target respectively. *)

val names : string list

val by_name : ?seed:int -> string -> Bench.t option
