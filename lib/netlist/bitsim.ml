(* Bit-parallel (word-level) functional evaluation.

   One machine word per net holds [lanes] independent trials: bit [l] of
   [words.(net)] is net [net]'s Boolean value in lane [l]. Every gate
   then evaluates all lanes at once with one or two word operations
   (MUX decomposes into AND/OR masking at evaluation time), so a full
   functional pass costs [gate_count] word ops instead of
   [lanes * gate_count] Boolean ops.

   OCaml's native [int] has [Sys.int_size] usable bits (63 on 64-bit
   targets) and its bitwise operations are exact on all of them — words
   with bit 62 set are negative, which is fine, since no arithmetic is
   ever done on a word. [Int64] would be wider but boxes per operation
   on a non-flambda toolchain, so 63 lanes per sweep is the sweet spot.

   [eval_levels] walks the compiled (level, kind) schedule built by
   [Circuit.freeze]: one kind dispatch per segment, then a tight
   straight-line loop over flat int arrays, instead of re-interpreting
   the kind code gate by gate. *)

open Sfi_util

let lanes = Sys.int_size

(* The packed engines (and their bit-identity contract with the scalar
   kernels) are validated on 63-lane words; a narrower int — 32-bit or
   javascript targets — falls back to the scalar path instead. *)
let available () = Sys.int_size >= 63

(* All [lanes] bits set. [lnot 0] rather than [-1] to make the "bit
   mask, not number" reading explicit. *)
let full_mask = lnot 0

let lane_mask ~active =
  if active < 0 || active > lanes then invalid_arg "Bitsim.lane_mask";
  if active = lanes then full_mask else (1 lsl active) - 1

let make_words (c : Circuit.t) =
  let words = Array.make c.Circuit.n_nets 0 in
  (match c.Circuit.const_true with
  | Some n -> words.(n) <- full_mask
  | None -> ());
  words

(* One gate, all lanes: the word transcription of [Circuit.eval_gate]
   (for MUX2, fan-in order is [sel; taken-when-false; taken-when-true]). *)
let eval_gate_word (c : Circuit.t) words gi =
  let o = Array.unsafe_get c.Circuit.fanin_off gi in
  let ins = c.Circuit.fanin_net in
  match Array.unsafe_get c.Circuit.kind_code gi with
  | 0 (* Inv *) -> lnot (Array.unsafe_get words (Array.unsafe_get ins o))
  | 1 (* Buf *) -> Array.unsafe_get words (Array.unsafe_get ins o)
  | 2 (* Nand2 *) ->
    lnot
      (Array.unsafe_get words (Array.unsafe_get ins o)
      land Array.unsafe_get words (Array.unsafe_get ins (o + 1)))
  | 3 (* Nor2 *) ->
    lnot
      (Array.unsafe_get words (Array.unsafe_get ins o)
      lor Array.unsafe_get words (Array.unsafe_get ins (o + 1)))
  | 4 (* And2 *) ->
    Array.unsafe_get words (Array.unsafe_get ins o)
    land Array.unsafe_get words (Array.unsafe_get ins (o + 1))
  | 5 (* Or2 *) ->
    Array.unsafe_get words (Array.unsafe_get ins o)
    lor Array.unsafe_get words (Array.unsafe_get ins (o + 1))
  | 6 (* Xor2 *) ->
    Array.unsafe_get words (Array.unsafe_get ins o)
    lxor Array.unsafe_get words (Array.unsafe_get ins (o + 1))
  | 7 (* Xnor2 *) ->
    lnot
      (Array.unsafe_get words (Array.unsafe_get ins o)
      lxor Array.unsafe_get words (Array.unsafe_get ins (o + 1)))
  | 8 (* Mux2 *) ->
    let s = Array.unsafe_get words (Array.unsafe_get ins o) in
    (s land Array.unsafe_get words (Array.unsafe_get ins (o + 2)))
    lor (lnot s land Array.unsafe_get words (Array.unsafe_get ins (o + 1)))
  | 9 (* Aoi21 *) ->
    lnot
      ((Array.unsafe_get words (Array.unsafe_get ins o)
       land Array.unsafe_get words (Array.unsafe_get ins (o + 1)))
      lor Array.unsafe_get words (Array.unsafe_get ins (o + 2)))
  | _ (* Oai21 *) ->
    lnot
      ((Array.unsafe_get words (Array.unsafe_get ins o)
       lor Array.unsafe_get words (Array.unsafe_get ins (o + 1)))
      land Array.unsafe_get words (Array.unsafe_get ins (o + 2)))

(* The same word functions over explicit operand words, for callers that
   track input state locally instead of in a per-net array (the packed
   DTA's waveform walk). Unused operands are ignored. *)
let eval_code code a b c =
  match code with
  | 0 (* Inv *) -> lnot a
  | 1 (* Buf *) -> a
  | 2 (* Nand2 *) -> lnot (a land b)
  | 3 (* Nor2 *) -> lnot (a lor b)
  | 4 (* And2 *) -> a land b
  | 5 (* Or2 *) -> a lor b
  | 6 (* Xor2 *) -> a lxor b
  | 7 (* Xnor2 *) -> lnot (a lxor b)
  | 8 (* Mux2 *) -> (a land c) lor (lnot a land b)
  | 9 (* Aoi21 *) -> lnot ((a land b) lor c)
  | _ (* Oai21 *) -> lnot ((a lor b) land c)

(* Full functional pass over the compiled schedule. Each arm hoists the
   segment's kind out of the loop; the loop bodies index only flat int
   arrays, so ocamlopt keeps the base pointers in registers. *)
let eval_levels (c : Circuit.t) words =
  let sched = c.Circuit.sched_gate in
  let seg_off = c.Circuit.seg_off in
  let seg_kind = c.Circuit.seg_kind in
  let fo = c.Circuit.fanin_off in
  let ins = c.Circuit.fanin_net in
  let out = c.Circuit.gate_out in
  let in1 gi = Array.unsafe_get words (Array.unsafe_get ins (Array.unsafe_get fo gi)) in
  let in2 gi =
    Array.unsafe_get words (Array.unsafe_get ins (Array.unsafe_get fo gi + 1))
  in
  let in3 gi =
    Array.unsafe_get words (Array.unsafe_get ins (Array.unsafe_get fo gi + 2))
  in
  for s = 0 to Array.length seg_kind - 1 do
    let lo = Array.unsafe_get seg_off s in
    let hi = Array.unsafe_get seg_off (s + 1) - 1 in
    match Array.unsafe_get seg_kind s with
    | 0 ->
      for j = lo to hi do
        let gi = Array.unsafe_get sched j in
        Array.unsafe_set words (Array.unsafe_get out gi) (lnot (in1 gi))
      done
    | 1 ->
      for j = lo to hi do
        let gi = Array.unsafe_get sched j in
        Array.unsafe_set words (Array.unsafe_get out gi) (in1 gi)
      done
    | 2 ->
      for j = lo to hi do
        let gi = Array.unsafe_get sched j in
        Array.unsafe_set words (Array.unsafe_get out gi) (lnot (in1 gi land in2 gi))
      done
    | 3 ->
      for j = lo to hi do
        let gi = Array.unsafe_get sched j in
        Array.unsafe_set words (Array.unsafe_get out gi) (lnot (in1 gi lor in2 gi))
      done
    | 4 ->
      for j = lo to hi do
        let gi = Array.unsafe_get sched j in
        Array.unsafe_set words (Array.unsafe_get out gi) (in1 gi land in2 gi)
      done
    | 5 ->
      for j = lo to hi do
        let gi = Array.unsafe_get sched j in
        Array.unsafe_set words (Array.unsafe_get out gi) (in1 gi lor in2 gi)
      done
    | 6 ->
      for j = lo to hi do
        let gi = Array.unsafe_get sched j in
        Array.unsafe_set words (Array.unsafe_get out gi) (in1 gi lxor in2 gi)
      done
    | 7 ->
      for j = lo to hi do
        let gi = Array.unsafe_get sched j in
        Array.unsafe_set words (Array.unsafe_get out gi) (lnot (in1 gi lxor in2 gi))
      done
    | 8 ->
      for j = lo to hi do
        let gi = Array.unsafe_get sched j in
        let sel = in1 gi in
        Array.unsafe_set words (Array.unsafe_get out gi)
          ((sel land in3 gi) lor (lnot sel land in2 gi))
      done
    | 9 ->
      for j = lo to hi do
        let gi = Array.unsafe_get sched j in
        Array.unsafe_set words (Array.unsafe_get out gi)
          (lnot ((in1 gi land in2 gi) lor in3 gi))
      done
    | _ ->
      for j = lo to hi do
        let gi = Array.unsafe_get sched j in
        Array.unsafe_set words (Array.unsafe_get out gi)
          (lnot ((in1 gi lor in2 gi) land in3 gi))
      done
  done

(* ---------- lane packing ---------- *)

let pack words (nets : Circuit.net array) (vals : U32.t array) =
  let nv = Array.length vals in
  if nv > lanes then invalid_arg "Bitsim.pack: more values than lanes";
  for i = 0 to Array.length nets - 1 do
    let w = ref 0 in
    for l = 0 to nv - 1 do
      w := !w lor (((vals.(l) lsr i) land 1) lsl l)
    done;
    words.(nets.(i)) <- !w
  done

let read_lane words (nets : Circuit.net array) ~lane =
  if lane < 0 || lane >= lanes then invalid_arg "Bitsim.read_lane";
  let acc = ref 0 in
  for i = 0 to Array.length nets - 1 do
    acc := !acc lor (((words.(nets.(i)) lsr lane) land 1) lsl i)
  done;
  !acc

(* ---------- word bit utilities (used by the packed event engine) ---------- *)

(* 32-bit SWAR halves: every literal stays well inside the 63-bit int, and
   a 63-bit word splits exactly into a 31-bit and a 32-bit part. *)
let popcount32 x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F in
  (* The usual [lsr 24] alone relies on the multiply wrapping at 32 bits;
     OCaml ints are wider, so mask the byte the count lands in. *)
  ((x * 0x01010101) lsr 24) land 0xFF

let popcount w = popcount32 (w land 0x7FFFFFFF) + popcount32 ((w lsr 31) land 0xFFFFFFFF)

(* Count of trailing zeros of a nonzero word, by halving; allocation-free
   (no Int64, no float conversions) for the per-event settle loops. *)
let ctz w =
  if w = 0 then invalid_arg "Bitsim.ctz: zero";
  let n = ref 0 and w = ref w in
  if !w land 0xFFFFFFFF = 0 then begin
    n := !n + 32;
    w := !w lsr 32
  end;
  if !w land 0xFFFF = 0 then begin
    n := !n + 16;
    w := !w lsr 16
  end;
  if !w land 0xFF = 0 then begin
    n := !n + 8;
    w := !w lsr 8
  end;
  if !w land 0xF = 0 then begin
    n := !n + 4;
    w := !w lsr 4
  end;
  if !w land 0x3 = 0 then begin
    n := !n + 2;
    w := !w lsr 2
  end;
  if !w land 0x1 = 0 then incr n;
  !n
