(** Bit-parallel (word-level) functional evaluation.

    Packs {!lanes} independent trials into one native [int] per net —
    bit [l] of a net's word is that net's Boolean value in lane [l] —
    and evaluates every gate for all lanes with single word operations,
    walking the compiled [(level, kind)] schedule that
    {!Circuit.freeze} builds. The packed timing engine
    ([Sfi_timing.Dta_packed]) keeps its net state in exactly this
    representation, so the two share the pack/unpack and per-gate word
    evaluation defined here. *)

open Sfi_util

val lanes : int
(** Trials per word: [Sys.int_size], i.e. 63 on 64-bit native targets. *)

val available : unit -> bool
(** Whether this target carries the full 63 lanes per word. The packed
    engines are only validated (and only worth using) at that width;
    callers fall back to the scalar kernels when this is [false]. *)

val full_mask : int
(** All {!lanes} bits set. *)

val lane_mask : active:int -> int
(** The low [active] bits set ([active] in [0, lanes]]). *)

val make_words : Circuit.t -> int array
(** A fresh per-net word array: everything 0 except the constant-true
    net, which is all-ones. *)

val eval_code : int -> int -> int -> int -> int
(** [eval_code code a b c]: the word function of kind code [code] applied
    to explicit operand words (arguments beyond the kind's arity are
    ignored; for MUX2 [a] is the select). For callers that keep input
    state in locals rather than a per-net array. *)

val eval_gate_word : Circuit.t -> int array -> int -> int
(** [eval_gate_word c words gi] is gate [gi]'s output word over the
    current net [words] — all lanes at once, no allocation. The word
    transcription of {!Circuit.eval_gate}. *)

val eval_levels : Circuit.t -> int array -> unit
(** Full functional pass: propagates [words] through every gate via the
    compiled levelized schedule (one kind dispatch per segment,
    straight-line loops over flat int arrays). Equivalent to
    {!Circuit.eval_all_gates} applied to each lane. *)

val pack : int array -> Circuit.net array -> U32.t array -> unit
(** [pack words nets vals] stores [vals.(l)]'s bit [i] as lane [l] of
    [words.(nets.(i))] — the bit-plane transpose of up to {!lanes}
    operand values onto a net vector ([nets.(0)] is the LSB). Lanes
    beyond [Array.length vals] are cleared. *)

val read_lane : int array -> Circuit.net array -> lane:int -> U32.t
(** [read_lane words nets ~lane] reassembles lane [lane] of the net
    vector into an integer, bit [i] from [words.(nets.(i))] — the
    inverse of {!pack} for one lane. *)

val popcount : int -> int
(** Set bits in a word (all 63 bits counted). *)

val ctz : int -> int
(** Trailing zeros of a nonzero word (the lowest set lane index).
    Raises [Invalid_argument] on 0. *)
