type kind =
  | Inv
  | Buf
  | Nand2
  | Nor2
  | And2
  | Or2
  | Xor2
  | Xnor2
  | Mux2
  | Aoi21
  | Oai21

let all = [ Inv; Buf; Nand2; Nor2; And2; Or2; Xor2; Xnor2; Mux2; Aoi21; Oai21 ]

let code = function
  | Inv -> 0
  | Buf -> 1
  | Nand2 -> 2
  | Nor2 -> 3
  | And2 -> 4
  | Or2 -> 5
  | Xor2 -> 6
  | Xnor2 -> 7
  | Mux2 -> 8
  | Aoi21 -> 9
  | Oai21 -> 10

let code_count = 11

let arity = function
  | Inv | Buf -> 1
  | Nand2 | Nor2 | And2 | Or2 | Xor2 | Xnor2 -> 2
  | Mux2 | Aoi21 | Oai21 -> 3

let name = function
  | Inv -> "INV"
  | Buf -> "BUF"
  | Nand2 -> "NAND2"
  | Nor2 -> "NOR2"
  | And2 -> "AND2"
  | Or2 -> "OR2"
  | Xor2 -> "XOR2"
  | Xnor2 -> "XNOR2"
  | Mux2 -> "MUX2"
  | Aoi21 -> "AOI21"
  | Oai21 -> "OAI21"

let of_name s =
  let s = String.uppercase_ascii s in
  List.find_opt (fun k -> name k = s) all

let eval kind ins =
  assert (Array.length ins = arity kind);
  match kind with
  | Inv -> not ins.(0)
  | Buf -> ins.(0)
  | Nand2 -> not (ins.(0) && ins.(1))
  | Nor2 -> not (ins.(0) || ins.(1))
  | And2 -> ins.(0) && ins.(1)
  | Or2 -> ins.(0) || ins.(1)
  | Xor2 -> ins.(0) <> ins.(1)
  | Xnor2 -> ins.(0) = ins.(1)
  | Mux2 -> if ins.(0) then ins.(2) else ins.(1)
  | Aoi21 -> not ((ins.(0) && ins.(1)) || ins.(2))
  | Oai21 -> not ((ins.(0) || ins.(1)) && ins.(2))
