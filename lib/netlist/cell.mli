(** Primitive combinational cell kinds.

    The netlist is built from a small standard-cell-like set of primitives.
    Compound arithmetic blocks (full adders, multiplexer trees, ...) are
    expanded into these primitives by {!Datapath}, so static and dynamic
    timing analysis both operate at single-gate resolution. *)

type kind =
  | Inv
  | Buf
  | Nand2
  | Nor2
  | And2
  | Or2
  | Xor2
  | Xnor2
  | Mux2  (** inputs [s; a; b]: output is [a] when [s] is false, else [b]. *)
  | Aoi21 (** inputs [a; b; c]: output is [not ((a && b) || c)]. *)
  | Oai21 (** inputs [a; b; c]: output is [not ((a || b) && c)]. *)

val all : kind list

val code : kind -> int
(** Dense integer code of the kind (its position in {!all}); used by the
    flat structure-of-arrays circuit representation so hot evaluation
    loops can dispatch on an int instead of chasing a variant. *)

val code_count : int
(** Number of distinct kinds ([List.length all]). *)

val arity : kind -> int
(** Number of input pins. *)

val name : kind -> string
(** Canonical upper-case cell name, e.g. ["NAND2"]. *)

val of_name : string -> kind option
(** Inverse of {!name} (case-insensitive). *)

val eval : kind -> bool array -> bool
(** Boolean function of the cell. The array length must equal
    [arity kind]; this is checked with an assertion. *)
