type net = int

type proto_gate = { p_kind : Cell.kind; p_fan_in : net array; p_out : net; p_tag : int }

module Builder = struct
  type t = {
    mutable next_net : int;
    mutable gates_rev : proto_gate list;
    mutable n_gates : int;
    mutable pis_rev : (string * net) list;
    mutable pos_rev : (string * net) list;
    mutable cfalse : net option;
    mutable ctrue : net option;
    mutable tags : string list; (* reverse order; id = position from start *)
    mutable n_tags : int;
    mutable tag : int;
  }

  let create () =
    {
      next_net = 0;
      gates_rev = [];
      n_gates = 0;
      pis_rev = [];
      pos_rev = [];
      cfalse = None;
      ctrue = None;
      tags = [ "top" ];
      n_tags = 1;
      tag = 0;
    }

  let tag_index t name =
    let rec find i = function
      | [] -> None
      | n :: rest -> if n = name then Some (t.n_tags - 1 - i) else find (i + 1) rest
    in
    find 0 t.tags

  let set_tag t name =
    match tag_index t name with
    | Some id -> t.tag <- id
    | None ->
      t.tags <- name :: t.tags;
      t.tag <- t.n_tags;
      t.n_tags <- t.n_tags + 1

  let current_tag t = List.nth t.tags (t.n_tags - 1 - t.tag)

  let fresh_net t =
    let n = t.next_net in
    t.next_net <- n + 1;
    n

  let input t name =
    let n = fresh_net t in
    t.pis_rev <- (name, n) :: t.pis_rev;
    n

  let input_vec t name w =
    Array.init w (fun i -> input t (Printf.sprintf "%s.%d" name i))

  let gate t kind fan_in =
    if Array.length fan_in <> Cell.arity kind then
      invalid_arg "Circuit.Builder.gate: arity mismatch";
    Array.iter
      (fun n ->
        if n < 0 || n >= t.next_net then
          invalid_arg "Circuit.Builder.gate: unknown input net")
      fan_in;
    let out = fresh_net t in
    t.gates_rev <-
      { p_kind = kind; p_fan_in = Array.copy fan_in; p_out = out; p_tag = t.tag }
      :: t.gates_rev;
    t.n_gates <- t.n_gates + 1;
    out

  let const t v =
    if v then
      match t.ctrue with
      | Some n -> n
      | None ->
        let n = fresh_net t in
        t.ctrue <- Some n;
        n
    else
      match t.cfalse with
      | Some n -> n
      | None ->
        let n = fresh_net t in
        t.cfalse <- Some n;
        n

  let output t name n =
    if n < 0 || n >= t.next_net then invalid_arg "Circuit.Builder.output: unknown net";
    t.pos_rev <- (name, n) :: t.pos_rev
end

type gate = { kind : Cell.kind; fan_in : net array; out : net; tag : int }

type t = {
  n_nets : int;
  gates : gate array;
  base_delay : float array;
  pis : (string * net) array;
  pos : (string * net) array;
  const_false : net option;
  const_true : net option;
  driver : int array;
  tags : string array;
  (* Structure-of-arrays mirror of [gates], built once in [freeze]: flat
     int arrays with CSR-packed fan-in and reader adjacency. The hot
     evaluation loops (logic sim, DTA drain) walk these for cache locality
     and to avoid chasing the per-gate record/array pointers; the [gates]
     records remain the API for everything that is not hot. *)
  kind_code : int array;
  gate_out : int array;
  fanin_off : int array;
  fanin_net : int array;
  reader_off : int array;
  reader_gate : int array;
  (* Compiled levelized schedule, also built once in [freeze]: gates
     partitioned into topological levels (level of a gate = 1 + max level
     of its fan-in nets; primary inputs and constants are level 0) and,
     within each level, grouped by cell kind. [sched_gate] lists every
     gate exactly once, ordered by (level, kind, gate index); segment [s]
     covers [sched_gate.(seg_off.(s)) .. sched_gate.(seg_off.(s+1)-1)]
     and contains only gates of kind code [seg_kind.(s)]. A word-level
     evaluator can therefore run one tight loop per segment — a single
     kind dispatch amortized over the whole segment — while still seeing
     every fan-in already computed (segments are emitted level by
     level). *)
  n_levels : int;
  gate_level : int array;
  sched_gate : int array;
  seg_off : int array;
  seg_kind : int array;
}

let freeze (b : Builder.t) ~lib =
  let gates =
    b.Builder.gates_rev |> List.rev
    |> List.map (fun (p : proto_gate) ->
           { kind = p.p_kind; fan_in = p.p_fan_in; out = p.p_out; tag = p.p_tag })
    |> Array.of_list
  in
  let n_nets = b.Builder.next_net in
  let driver = Array.make n_nets (-1) in
  Array.iteri (fun i g -> driver.(g.out) <- i) gates;
  (* Check that every net is driven by a gate, a primary input, or a
     constant. *)
  let driven = Array.make n_nets false in
  Array.iteri (fun net d -> if d >= 0 then driven.(net) <- true) driver;
  List.iter (fun (_, n) -> driven.(n) <- true) b.Builder.pis_rev;
  (match b.Builder.cfalse with Some n -> driven.(n) <- true | None -> ());
  (match b.Builder.ctrue with Some n -> driven.(n) <- true | None -> ());
  Array.iteri
    (fun net ok ->
      if not ok then
        invalid_arg (Printf.sprintf "Circuit.freeze: net %d has no driver" net))
    driven;
  let n_gates = Array.length gates in
  let reader_counts = Array.make n_nets 0 in
  Array.iter
    (fun g ->
      Array.iter (fun n -> reader_counts.(n) <- reader_counts.(n) + 1) g.fan_in)
    gates;
  (* CSR reader adjacency: reader_off.(n) .. reader_off.(n+1) - 1 index the
     gates reading net n, in gate (= topological) order. *)
  let reader_off = Array.make (n_nets + 1) 0 in
  for n = 0 to n_nets - 1 do
    reader_off.(n + 1) <- reader_off.(n) + reader_counts.(n)
  done;
  let reader_gate = Array.make reader_off.(n_nets) (-1) in
  let fill = Array.copy reader_off in
  Array.iteri
    (fun i g ->
      Array.iter
        (fun n ->
          reader_gate.(fill.(n)) <- i;
          fill.(n) <- fill.(n) + 1)
        g.fan_in)
    gates;
  (* CSR fan-in plus flat per-gate kind/output arrays. *)
  let fanin_off = Array.make (n_gates + 1) 0 in
  Array.iteri
    (fun i g -> fanin_off.(i + 1) <- fanin_off.(i) + Array.length g.fan_in)
    gates;
  let fanin_net = Array.make fanin_off.(n_gates) (-1) in
  Array.iteri
    (fun i g ->
      Array.iteri (fun j n -> fanin_net.(fanin_off.(i) + j) <- n) g.fan_in)
    gates;
  let kind_code = Array.map (fun g -> Cell.code g.kind) gates in
  let gate_out = Array.map (fun g -> g.out) gates in
  let pos = Array.of_list (List.rev b.Builder.pos_rev) in
  let po_loads = Array.make n_nets 0 in
  Array.iter (fun (_, n) -> po_loads.(n) <- po_loads.(n) + 1) pos;
  let base_delay =
    Array.map
      (fun g ->
        let fanout = reader_counts.(g.out) + po_loads.(g.out) in
        Cell_lib.gate_delay lib g.kind ~fanout)
      gates
  in
  let tags =
    Array.of_list (List.rev b.Builder.tags)
  in
  (* Topological levels over nets, then the (level, kind)-segmented
     schedule via a counting sort: gate creation order is already
     topological, so one forward pass computes every level. *)
  let net_level = Array.make n_nets 0 in
  let gate_level = Array.make n_gates 0 in
  let n_levels = ref 0 in
  Array.iteri
    (fun i g ->
      let lvl =
        1 + Array.fold_left (fun acc n -> max acc net_level.(n)) 0 g.fan_in
      in
      gate_level.(i) <- lvl;
      net_level.(g.out) <- lvl;
      if lvl > !n_levels then n_levels := lvl)
    gates;
  let n_levels = !n_levels in
  let n_buckets = n_levels * Cell.code_count in
  let bucket i = ((gate_level.(i) - 1) * Cell.code_count) + kind_code.(i) in
  let bucket_count = Array.make (n_buckets + 1) 0 in
  Array.iteri
    (fun i _ -> bucket_count.(bucket i) <- bucket_count.(bucket i) + 1)
    gates;
  let bucket_off = Array.make (n_buckets + 1) 0 in
  for bk = 0 to n_buckets - 1 do
    bucket_off.(bk + 1) <- bucket_off.(bk) + bucket_count.(bk)
  done;
  let sched_gate = Array.make n_gates (-1) in
  let fill = Array.copy bucket_off in
  Array.iteri
    (fun i _ ->
      let bk = bucket i in
      sched_gate.(fill.(bk)) <- i;
      fill.(bk) <- fill.(bk) + 1)
    gates;
  let n_segs =
    Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 bucket_count
  in
  let seg_off = Array.make (n_segs + 1) 0 in
  let seg_kind = Array.make n_segs 0 in
  let s = ref 0 in
  for bk = 0 to n_buckets - 1 do
    if bucket_count.(bk) > 0 then begin
      seg_off.(!s) <- bucket_off.(bk);
      seg_kind.(!s) <- bk mod Cell.code_count;
      incr s
    end
  done;
  seg_off.(n_segs) <- n_gates;
  {
    n_nets;
    gates;
    base_delay;
    pis = Array.of_list (List.rev b.Builder.pis_rev);
    pos;
    const_false = b.Builder.cfalse;
    const_true = b.Builder.ctrue;
    driver;
    tags;
    kind_code;
    gate_out;
    fanin_off;
    fanin_net;
    reader_off;
    reader_gate;
    n_levels;
    gate_level;
    sched_gate;
    seg_off;
    seg_kind;
  }

let tag_id t name =
  let found = ref None in
  Array.iteri (fun i n -> if n = name then found := Some i) t.tags;
  !found

let scale_tag_delays t ~tag ~factor =
  match tag_id t tag with
  | None -> ()
  | Some id ->
    Array.iteri
      (fun i g -> if g.tag = id then t.base_delay.(i) <- t.base_delay.(i) *. factor)
      t.gates

let scale_gate_delays t f =
  Array.iteri (fun i _ -> t.base_delay.(i) <- t.base_delay.(i) *. f i) t.gates

(* Direct-indexing gate evaluation shared by the zero-delay simulator and
   the event-driven DTA; unlike [Cell.eval] it reads net values in place
   and allocates nothing. Dispatches on the flat SoA arrays — the int
   kind code and CSR fan-in — so one event touches three flat arrays
   instead of a gate record, a kind variant, and a fan-in array. The
   branches are written out longhand (no local helper closure) to keep
   the path allocation-free without relying on flambda. *)
let eval_gate t values gi =
  let o = Array.unsafe_get t.fanin_off gi in
  let ins = t.fanin_net in
  match Array.unsafe_get t.kind_code gi with
  | 0 (* Inv *) -> not (Array.unsafe_get values (Array.unsafe_get ins o))
  | 1 (* Buf *) -> Array.unsafe_get values (Array.unsafe_get ins o)
  | 2 (* Nand2 *) ->
    not
      (Array.unsafe_get values (Array.unsafe_get ins o)
      && Array.unsafe_get values (Array.unsafe_get ins (o + 1)))
  | 3 (* Nor2 *) ->
    not
      (Array.unsafe_get values (Array.unsafe_get ins o)
      || Array.unsafe_get values (Array.unsafe_get ins (o + 1)))
  | 4 (* And2 *) ->
    Array.unsafe_get values (Array.unsafe_get ins o)
    && Array.unsafe_get values (Array.unsafe_get ins (o + 1))
  | 5 (* Or2 *) ->
    Array.unsafe_get values (Array.unsafe_get ins o)
    || Array.unsafe_get values (Array.unsafe_get ins (o + 1))
  | 6 (* Xor2 *) ->
    Array.unsafe_get values (Array.unsafe_get ins o)
    <> Array.unsafe_get values (Array.unsafe_get ins (o + 1))
  | 7 (* Xnor2 *) ->
    Array.unsafe_get values (Array.unsafe_get ins o)
    = Array.unsafe_get values (Array.unsafe_get ins (o + 1))
  | 8 (* Mux2 *) ->
    if Array.unsafe_get values (Array.unsafe_get ins o) then
      Array.unsafe_get values (Array.unsafe_get ins (o + 2))
    else Array.unsafe_get values (Array.unsafe_get ins (o + 1))
  | 9 (* Aoi21 *) ->
    not
      ((Array.unsafe_get values (Array.unsafe_get ins o)
       && Array.unsafe_get values (Array.unsafe_get ins (o + 1)))
      || Array.unsafe_get values (Array.unsafe_get ins (o + 2)))
  | _ (* Oai21 *) ->
    not
      ((Array.unsafe_get values (Array.unsafe_get ins o)
       || Array.unsafe_get values (Array.unsafe_get ins (o + 1)))
      && Array.unsafe_get values (Array.unsafe_get ins (o + 2)))

let eval_all_gates t values =
  let out = t.gate_out in
  for gi = 0 to Array.length out - 1 do
    Array.unsafe_set values (Array.unsafe_get out gi) (eval_gate t values gi)
  done

let gate_count t = Array.length t.gates

let count_by_kind t =
  List.map
    (fun kind ->
      let c =
        Array.fold_left (fun acc g -> if g.kind = kind then acc + 1 else acc) 0 t.gates
      in
      (kind, c))
    Cell.all
  |> List.filter (fun (_, c) -> c > 0)

let count_by_tag t =
  Array.to_list t.tags
  |> List.mapi (fun id name ->
         let c =
           Array.fold_left (fun acc g -> if g.tag = id then acc + 1 else acc) 0 t.gates
         in
         (name, c))
  |> List.filter (fun (_, c) -> c > 0)

let total_area t ~lib =
  Array.fold_left (fun acc g -> acc +. (Cell_lib.entry lib g.kind).Cell_lib.area) 0. t.gates

let logic_depth t =
  let depth = Array.make t.n_nets 0 in
  Array.iter
    (fun g ->
      let d = Array.fold_left (fun acc n -> max acc depth.(n)) 0 g.fan_in in
      depth.(g.out) <- d + 1)
    t.gates;
  Array.fold_left (fun acc (_, n) -> max acc depth.(n)) 0 t.pos
