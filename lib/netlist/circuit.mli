(** Structural gate-level netlist.

    A circuit is a DAG of primitive gates over nets. Nets are dense integer
    ids; gate creation order is a topological order by construction (a gate
    may only read nets that already exist). Circuits are built imperatively
    through {!Builder} and then frozen into the array-based representation
    used by the logic simulator and the timing engines.

    Every gate carries a {e unit tag} (e.g. ["mul"], ["addsub"],
    ["select"]) recording which datapath unit it belongs to; the virtual
    synthesis sizing pass and the per-unit STA reports are driven by these
    tags. *)

type net = int

module Builder : sig
  type t

  val create : unit -> t

  val set_tag : t -> string -> unit
  (** Sets the unit tag applied to subsequently created gates. The initial
      tag is ["top"]. *)

  val current_tag : t -> string

  val input : t -> string -> net
  (** Declares a named primary input and returns its net. *)

  val input_vec : t -> string -> int -> net array
  (** [input_vec t name w] declares [w] inputs named [name.0 .. name.w-1],
      index 0 being the least-significant bit. *)

  val gate : t -> Cell.kind -> net array -> net
  (** Instantiates a gate reading the given nets (which must already
      exist) and returns its output net. Raises [Invalid_argument] on an
      arity mismatch or an unknown input net. *)

  val const : t -> bool -> net
  (** A constant net. Constants are modelled as dedicated always-stable
      nets, not gates; they contribute no delay. Repeated calls share the
      same two nets. *)

  val output : t -> string -> net -> unit
  (** Declares a named primary output. *)
end

type gate = {
  kind : Cell.kind;
  fan_in : net array;
  out : net;
  tag : int;         (** index into {!tags} *)
}

type t = {
  n_nets : int;
  gates : gate array;              (** in topological order *)
  base_delay : float array;        (** per gate, ps at nominal voltage; the
                                       sizing pass mutates this in place *)
  pis : (string * net) array;      (** primary inputs *)
  pos : (string * net) array;      (** primary outputs (timing endpoints) *)
  const_false : net option;
  const_true : net option;
  driver : int array;              (** net -> driving gate index, or -1 *)
  tags : string array;             (** tag id -> tag name *)
  kind_code : int array;           (** per gate, {!Cell.code} of its kind *)
  gate_out : int array;            (** per gate, its output net *)
  fanin_off : int array;           (** CSR offsets into [fanin_net],
                                       length [gate_count + 1] *)
  fanin_net : int array;           (** concatenated fan-in nets *)
  reader_off : int array;          (** CSR offsets into [reader_gate],
                                       length [n_nets + 1] *)
  reader_gate : int array;         (** concatenated reading gate indices:
                                       net [n]'s readers are entries
                                       [reader_off.(n)] to
                                       [reader_off.(n+1) - 1], in
                                       topological gate order *)
  n_levels : int;                  (** number of topological levels *)
  gate_level : int array;          (** per gate, 1 + max fan-in net level
                                       (primary inputs and constants are
                                       level 0) *)
  sched_gate : int array;          (** every gate exactly once, ordered by
                                       (level, kind, gate index) *)
  seg_off : int array;             (** segment offsets into [sched_gate],
                                       length [segments + 1] *)
  seg_kind : int array;            (** per segment, the {!Cell.code} all
                                       its gates share *)
}
(** The [kind_code ... reader_gate] fields are a flat structure-of-arrays
    mirror of [gates] built by {!freeze}; hot evaluation loops use them
    for cache locality, everything else uses the [gates] records.

    [n_levels ... seg_kind] are the compiled levelized schedule:
    segments are emitted level by level, so when a word-level evaluator
    processes them in order every fan-in of a segment's gates has
    already been written by an earlier segment (or is a primary
    input/constant), and each segment needs just one kind dispatch for
    a tight straight-line loop (see {!Bitsim}). *)

val freeze : Builder.t -> lib:Cell_lib.t -> t
(** Freezes the builder and annotates every gate with its nominal delay
    [intrinsic +. load_slope *. fanout] from [lib]. Primary outputs count
    as one additional (flip-flop) load. Raises [Invalid_argument] if any
    net other than a constant or primary input has no driver, or if a
    declared output net does not exist. *)

val tag_id : t -> string -> int option
(** Looks up a tag name. *)

val scale_tag_delays : t -> tag:string -> factor:float -> unit
(** Multiplies the base delay of every gate carrying [tag] by [factor]
    (the virtual-synthesis sizing primitive). Unknown tags are a no-op. *)

val scale_gate_delays : t -> (int -> float) -> unit
(** [scale_gate_delays t f] multiplies gate [i]'s delay by [f i]; used to
    apply per-gate process variation. *)

val eval_gate : t -> bool array -> int -> bool
(** [eval_gate t values gi] is the Boolean function of gate [gi] applied
    to the current net [values], without allocating. One shared match for
    the zero-delay simulator and the event-driven DTA. *)

val eval_all_gates : t -> bool array -> unit
(** [eval_all_gates t values] propagates [values] through every gate in
    topological order (a full zero-delay evaluation pass). *)

val gate_count : t -> int
val count_by_kind : t -> (Cell.kind * int) list
val count_by_tag : t -> (string * int) list
val total_area : t -> lib:Cell_lib.t -> float

val logic_depth : t -> int
(** Maximum number of gates on any input-to-output path. *)
