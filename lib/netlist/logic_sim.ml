type t = { circuit : Circuit.t; values : bool array; is_free : bool array }

let create (c : Circuit.t) =
  let is_free = Array.make c.Circuit.n_nets false in
  Array.iter (fun (_, n) -> is_free.(n) <- true) c.Circuit.pis;
  (match c.Circuit.const_false with Some n -> is_free.(n) <- true | None -> ());
  (match c.Circuit.const_true with Some n -> is_free.(n) <- true | None -> ());
  let values = Array.make c.Circuit.n_nets false in
  (match c.Circuit.const_true with Some n -> values.(n) <- true | None -> ());
  { circuit = c; values; is_free }

let set_input t net v =
  if net < 0 || net >= Array.length t.values || not t.is_free.(net) then
    invalid_arg "Logic_sim.set_input: not a primary input";
  (* Constants stay pinned. *)
  (match t.circuit.Circuit.const_false with
  | Some n when n = net -> invalid_arg "Logic_sim.set_input: constant net"
  | _ -> ());
  (match t.circuit.Circuit.const_true with
  | Some n when n = net -> invalid_arg "Logic_sim.set_input: constant net"
  | _ -> ());
  t.values.(net) <- v

let set_input_vec t nets word =
  Array.iteri (fun i n -> set_input t n ((word lsr i) land 1 = 1)) nets

let eval t = Circuit.eval_all_gates t.circuit t.values

let value t net = t.values.(net)

let read_vec t nets =
  let acc = ref 0 in
  Array.iteri (fun i n -> if t.values.(n) then acc := !acc lor (1 lsl i)) nets;
  !acc

let eval_fn c inputs =
  let t = create c in
  List.iter
    (fun (name, v) ->
      match Array.find_opt (fun (n, _) -> n = name) c.Circuit.pis with
      | Some (_, net) -> set_input t net v
      | None -> invalid_arg (Printf.sprintf "Logic_sim.eval_fn: no input %S" name))
    inputs;
  eval t;
  Array.to_list (Array.map (fun (name, net) -> (name, value t net)) c.Circuit.pos)
