(* Deterministic, near-zero-overhead observability.

   Design constraints, in priority order:

   1. Determinism: every metric that feeds the jobs=1 vs jobs=n
      comparison is an additive integer (counter increments, histogram
      bucket counts, histogram sums). Integer addition is associative
      and commutative, so summing per-domain shards yields the same
      totals for every work partition — the only scheduling-sensitive
      quantities are wall-time spans and the pool's own scheduling
      counters, which are tagged [det = false] and excluded from
      {!det_signature}.

   2. Overhead: an increment on the hot path is one mutable-bool load,
      one domain-local-storage load and one int-array read-modify-write;
      no allocation, no locking, no atomics. Disabled, it is the bool
      load and a branch.

   3. Sharding: each domain owns a plain [int array] shard registered in
      a global list. Only the owning domain writes its shard, so there
      are no data races between writers. Readers ({!snapshot}) sum the
      shards under the registry lock; shard values published before a
      synchronizing event (Domain.join, the pool's completion handshake)
      are visible, which covers every snapshot taken after a batch
      completes. A pool worker folds its shard into the retired base via
      {!retire_current_domain} just before it exits, so counts are never
      lost when domains die ("merge on pool join"). *)

(* ---------- minimal JSON (writer + parser, no dependencies) ---------- *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\t' -> Buffer.add_string buf "\\t"
        | '\r' -> Buffer.add_string buf "\\r"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_nan f then Buffer.add_string buf "null"
      else if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          write buf v)
        kvs;
      Buffer.add_char buf '}'

  let to_string v =
    let buf = Buffer.create 256 in
    write buf v;
    Buffer.contents buf

  exception Parse_error of string

  let parse s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then s.[!pos] else '\255' in
    let advance () = incr pos in
    let rec skip_ws () =
      if !pos < n then
        match s.[!pos] with
        | ' ' | '\t' | '\n' | '\r' ->
          advance ();
          skip_ws ()
        | _ -> ()
    in
    let expect c =
      if peek () = c then advance () else fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail ("expected " ^ word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> advance ()
          | '\\' ->
            advance ();
            (match peek () with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | 'r' -> Buffer.add_char buf '\r'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
              if !pos + 4 >= n then fail "bad \\u escape";
              let hex = String.sub s (!pos + 1) 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
              | Some _ -> Buffer.add_char buf '?' (* non-ASCII: placeholder *)
              | None -> fail "bad \\u escape");
              pos := !pos + 4
            | _ -> fail "bad escape");
            advance ();
            go ()
          | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while !pos < n && is_num_char s.[!pos] do
        advance ()
      done;
      let tok = String.sub s start (!pos - start) in
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail ("bad number " ^ tok))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | 'n' -> literal "null" Null
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | '"' -> String (parse_string ())
      | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
              advance ();
              items (v :: acc)
            | ']' ->
              advance ();
              List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
      | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
              advance ();
              members ((k, v) :: acc)
            | '}' ->
              advance ();
              List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
      | c when c = '-' || (c >= '0' && c <= '9') -> parse_number ()
      | _ -> fail "unexpected character"
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member key = function
    | Obj kvs -> List.assoc_opt key kvs
    | _ -> None

  let to_float = function
    | Int i -> Some (float_of_int i)
    | Float f -> Some f
    | _ -> None

  let to_int = function Int i -> Some i | _ -> None

  let to_bool = function Bool b -> Some b | _ -> None

  let to_string_opt = function String s -> Some s | _ -> None
end

(* ---------- registry ---------- *)

type kind = Counter_k | Hist_k | Span_k

type metric = {
  name : string;
  kind : kind;
  det : bool; (* participates in the jobs=1 vs jobs=n identity *)
  off : int; (* first cell in the shard cell space *)
  width : int;
}

(* Histogram layout: 64 log2 buckets, then count, then sum-of-values.
   Span layout: call count, then accumulated wall nanoseconds. *)
let hist_buckets = 64

let hist_width = hist_buckets + 2

let span_width = 2

let lock = Mutex.create ()

let metrics : metric list ref = ref [] (* reverse registration order *)

let index : (string, metric) Hashtbl.t = Hashtbl.create 64

let next_cell = ref 0

type shard = { mutable cells : int array }

(* Live per-domain shards plus the fold of retired ones. Only the owning
   domain mutates a live shard's cells; everything else is under [lock]. *)
let shards : shard list ref = ref []

let base = { cells = [||] }

let grow_cells s want =
  let len = Array.length s.cells in
  if want > len then begin
    let cells = Array.make (max want (max 64 (2 * len))) 0 in
    Array.blit s.cells 0 cells 0 len;
    s.cells <- cells
  end

let dls_key =
  Domain.DLS.new_key (fun () ->
      let s = { cells = Array.make (max 64 !next_cell) 0 } in
      Mutex.protect lock (fun () -> shards := s :: !shards);
      s)

let enabled_ref =
  ref
    (match Sys.getenv_opt "SFI_OBS" with
    | Some ("1" | "true" | "on" | "yes") -> true
    | _ -> false)

let enabled () = !enabled_ref

let set_enabled v = enabled_ref := v

let register name kind det width =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt index name with
      | Some m ->
        if m.kind <> kind then
          invalid_arg
            (Printf.sprintf "Sfi_obs: metric %s re-registered with a different kind" name);
        m
      | None ->
        let m = { name; kind; det; off = !next_cell; width } in
        next_cell := !next_cell + width;
        Hashtbl.replace index name m;
        metrics := m :: !metrics;
        m)

(* Owner-domain cell bump. The bounds check only fires when a metric was
   registered after this domain's shard was sized, i.e. never in a
   steady-state hot loop. *)
let bump m slot n =
  let s = Domain.DLS.get dls_key in
  let i = m.off + slot in
  if i >= Array.length s.cells then grow_cells s !next_cell;
  Array.unsafe_set s.cells i (Array.unsafe_get s.cells i + n)

let read_cells m =
  Mutex.protect lock (fun () ->
      let out = Array.make m.width 0 in
      let accum (s : shard) =
        let len = Array.length s.cells in
        for i = 0 to m.width - 1 do
          if m.off + i < len then out.(i) <- out.(i) + s.cells.(m.off + i)
        done
      in
      accum base;
      List.iter accum !shards;
      out)

let retire_current_domain () =
  let s = Domain.DLS.get dls_key in
  Mutex.protect lock (fun () ->
      (* The shard may exceed [next_cell]: [grow_cells] doubles, so size
         [base] to the shard itself, not the registry watermark. *)
      let len = Array.length s.cells in
      grow_cells base len;
      for i = 0 to len - 1 do
        base.cells.(i) <- base.cells.(i) + s.cells.(i)
      done;
      Array.fill s.cells 0 len 0;
      shards := List.filter (fun s' -> s' != s) !shards)

let reset () =
  Mutex.protect lock (fun () ->
      Array.fill base.cells 0 (Array.length base.cells) 0;
      List.iter (fun s -> Array.fill s.cells 0 (Array.length s.cells) 0) !shards)

let shard_count () = Mutex.protect lock (fun () -> List.length !shards)

(* ---------- metric front-ends ---------- *)

module Counter = struct
  type t = metric

  let make ?(det = true) name = register name Counter_k det 1

  let add t n = if !enabled_ref then bump t 0 n

  let incr t = add t 1

  let value t = (read_cells t).(0)
end

module Hist = struct
  type t = metric

  let make ?(det = true) name = register name Hist_k det hist_width

  (* Bucket = number of significant bits: 0 for v <= 0, else
     floor(log2 v) + 1, saturated to the last bucket. Values within
     [2^(b-1), 2^b) share bucket b. *)
  let bucket_of v =
    if v <= 0 then 0
    else begin
      let b = ref 0 and v = ref v in
      while !v > 0 do
        incr b;
        v := !v lsr 1
      done;
      if !b > hist_buckets - 1 then hist_buckets - 1 else !b
    end

  let lo_of_bucket b = if b = 0 then 0 else 1 lsl (b - 1)

  let observe t v =
    if !enabled_ref then begin
      bump t (bucket_of v) 1;
      bump t hist_buckets 1;
      bump t (hist_buckets + 1) v
    end

  let count t = (read_cells t).(hist_buckets)

  let sum t = (read_cells t).(hist_buckets + 1)

  let buckets t =
    let cells = read_cells t in
    let out = ref [] in
    for b = hist_buckets - 1 downto 0 do
      if cells.(b) <> 0 then out := (b, cells.(b)) :: !out
    done;
    !out
end

module Span = struct
  type t = metric

  let make name = register name Span_k false span_width

  let add_ns t ns =
    if !enabled_ref then begin
      bump t 0 1;
      bump t 1 ns
    end

  let time t f =
    if not !enabled_ref then f ()
    else begin
      let t0 = Unix.gettimeofday () in
      Fun.protect
        ~finally:(fun () ->
          add_ns t (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9)))
        f
    end

  let count t = (read_cells t).(0)

  let total_ns t = (read_cells t).(1)
end

(* ---------- snapshots ---------- *)

type value =
  | Counter_v of int
  | Hist_v of { count : int; sum : int; buckets : (int * int) list }
  | Span_v of { count : int; total_ns : int }

type entry = { entry_name : string; entry_det : bool; entry_value : value }

let snapshot () =
  let ms = Mutex.protect lock (fun () -> List.rev !metrics) in
  List.map
    (fun m ->
      let cells = read_cells m in
      let value =
        match m.kind with
        | Counter_k -> Counter_v cells.(0)
        | Hist_k ->
          let buckets = ref [] in
          for b = hist_buckets - 1 downto 0 do
            if cells.(b) <> 0 then buckets := (b, cells.(b)) :: !buckets
          done;
          Hist_v
            { count = cells.(hist_buckets); sum = cells.(hist_buckets + 1); buckets = !buckets }
        | Span_k -> Span_v { count = cells.(0); total_ns = cells.(1) }
      in
      { entry_name = m.name; entry_det = m.det; entry_value = value })
    ms

(* The deterministic fingerprint of a run: every [det] counter and
   histogram flattened to named int lists. Spans and scheduling-dependent
   counters are excluded, so two runs of the same work at different job
   counts must produce equal signatures. *)
let det_signature () =
  List.filter_map
    (fun e ->
      if not e.entry_det then None
      else
        match e.entry_value with
        | Counter_v v -> Some (e.entry_name, [ v ])
        | Hist_v { count; sum; buckets } ->
          Some
            ( e.entry_name,
              count :: sum :: List.concat_map (fun (b, c) -> [ b; c ]) buckets )
        | Span_v _ -> None)
    (snapshot ())

let json_of_entry e =
  let open Json in
  match e.entry_value with
  | Counter_v v ->
    Obj
      [
        ("type", String "counter");
        ("name", String e.entry_name);
        ("det", Bool e.entry_det);
        ("value", Int v);
      ]
  | Hist_v { count; sum; buckets } ->
    Obj
      [
        ("type", String "hist");
        ("name", String e.entry_name);
        ("det", Bool e.entry_det);
        ("count", Int count);
        ("sum", Int sum);
        ( "buckets",
          List (List.map (fun (b, c) -> List [ Int b; Int c ]) buckets) );
      ]
  | Span_v { count; total_ns } ->
    Obj
      [
        ("type", String "span");
        ("name", String e.entry_name);
        ("det", Bool false);
        ("count", Int count);
        ("total_ns", Int total_ns);
      ]

let json_of_snapshot () =
  Json.List (List.map json_of_entry (snapshot ()))

let jsonl_string ?(meta = []) () =
  let buf = Buffer.create 1024 in
  Json.write buf
    (Json.Obj ([ ("schema", Json.String "sfi-obs/1") ] @ meta));
  Buffer.add_char buf '\n';
  List.iter
    (fun e ->
      Json.write buf (json_of_entry e);
      Buffer.add_char buf '\n')
    (snapshot ());
  Buffer.contents buf

let write_jsonl ?meta path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (jsonl_string ?meta ()))
