(** Deterministic, near-zero-overhead observability.

    A global registry of integer counters, fixed-bucket log2 histograms
    and wall-time span accumulators. Each domain increments a private
    shard (plain [int array], no locking on the hot path); shards are
    summed on read and folded into a retained base when a pool worker
    exits ({!retire_current_domain}), so [jobs = n] produces the same
    merged totals as [jobs = 1] for every metric whose value is a pure
    function of the work done. Metrics whose value depends on scheduling
    (pool steal counts, wall-time spans) are tagged [det = false] and
    excluded from {!det_signature}.

    Disabled (the default unless [SFI_OBS=1]), every increment is a
    single flag test; enabled, it is an allocation-free int-array
    read-modify-write, safe inside the zero-allocation DTA drain. *)

(** Minimal JSON reader/writer (no dependencies) used for the JSONL
    snapshot format, BENCH.json embedding and the golden-file tests. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string

  exception Parse_error of string

  val parse : string -> t
  (** Parses one JSON value. Raises {!Parse_error} on malformed input.
      Non-ASCII [\u] escapes decode to ['?']. *)

  val member : string -> t -> t option
  val to_float : t -> float option
  val to_int : t -> int option
  val to_bool : t -> bool option
  val to_string_opt : t -> string option
end

val enabled : unit -> bool
(** Whether metrics are being recorded. Initially true iff the
    [SFI_OBS] environment variable is ["1"], ["true"], ["on"] or
    ["yes"]. *)

val set_enabled : bool -> unit

module Counter : sig
  type t

  val make : ?det:bool -> string -> t
  (** Registers (or finds) the counter [name]. [det] (default [true])
      declares the value a pure function of the work done, independent
      of job count; pass [~det:false] for scheduling-dependent counts.
      Raises [Invalid_argument] if [name] exists with another kind. *)

  val incr : t -> unit
  val add : t -> int -> unit

  val value : t -> int
  (** Merged total across all shards. *)
end

module Hist : sig
  type t

  val make : ?det:bool -> string -> t

  val observe : t -> int -> unit
  (** Records [v] in bucket [0] for [v <= 0], else bucket
      [floor(log2 v) + 1] (values in [2^(b-1), 2^b) share bucket [b]),
      saturating at the last bucket. *)

  val bucket_of : int -> int
  val lo_of_bucket : int -> int
  (** Smallest value the bucket covers (0 for bucket 0). *)

  val count : t -> int
  val sum : t -> int

  val buckets : t -> (int * int) list
  (** Non-empty buckets as [(bucket, count)], ascending. *)
end

module Span : sig
  type t

  val make : string -> t
  (** Spans are always [det = false]: wall time is scheduling-dependent
      by nature. The call {e count} of a span is still deterministic,
      but it is excluded from {!det_signature} with the rest of the
      span so the signature stays a pure function of the work. *)

  val time : t -> (unit -> 'a) -> 'a
  val add_ns : t -> int -> unit
  val count : t -> int
  val total_ns : t -> int
end

val retire_current_domain : unit -> unit
(** Folds the calling domain's shard into the retained base and drops
    it from the live list. Called by pool workers on exit; safe to call
    repeatedly. *)

val reset : unit -> unit
(** Zeroes every shard and the retained base (registrations remain). *)

val shard_count : unit -> int
(** Live (unretired) shards; for tests. *)

type value =
  | Counter_v of int
  | Hist_v of { count : int; sum : int; buckets : (int * int) list }
  | Span_v of { count : int; total_ns : int }

type entry = { entry_name : string; entry_det : bool; entry_value : value }

val snapshot : unit -> entry list
(** All registered metrics with merged values, in registration order.
    Take snapshots only at quiescent points (after a batch completed /
    pool joined); concurrent increments may be missed otherwise. *)

val det_signature : unit -> (string * int list) list
(** The deterministic fingerprint: every [det] counter/histogram
    flattened to int lists, spans and [~det:false] metrics excluded.
    Equal across job counts for identical work. *)

val json_of_snapshot : unit -> Json.t
(** The snapshot as a JSON array, for embedding (BENCH.json). *)

val jsonl_string : ?meta:(string * Json.t) list -> unit -> string
(** JSONL: a [{"schema":"sfi-obs/1", ...meta}] header line followed by
    one JSON object per metric. *)

val write_jsonl : ?meta:(string * Json.t) list -> string -> unit
