open Sfi_util
open Sfi_isa

let branch_penalty = 2

let load_use_penalty = 1

type fault_hook =
  cycle:int -> cls:Op_class.t -> a:U32.t -> b:U32.t -> result:U32.t -> U32.t

type config = {
  max_cycles : int;
  fault_hook : fault_hook option;
  fi_always_on : bool;
  trace : (pc:int -> Insn.t -> unit) option;
}

let default_config =
  { max_cycles = 50_000_000; fault_hook = None; fi_always_on = false; trace = None }

type outcome = Exited | Watchdog | Trapped of string

type stats = {
  outcome : outcome;
  cycles : int;
  instret : int;
  kernel_cycles : int;
  kernel_instret : int;
  alu_retired : int;
  class_counts : int array;
  control_retired : int;
  memory_retired : int;
  taken_branches : int;
}

type engine = Auto | Interp | Compiled

(* Process-wide default, following the Characterize.default_engine /
   Pool.set_default_jobs idiom so the CLI flag (and SFI_CPU_ENGINE, for
   harnesses without their own flag plumbing, e.g. the golden tests
   under CI's compiled leg) reaches every simulation in the process. *)
let default_engine =
  ref
    (match Option.map String.lowercase_ascii (Sys.getenv_opt "SFI_CPU_ENGINE") with
    | Some "interp" -> Interp
    | Some "compiled" -> Compiled
    | _ -> Auto)

let set_default_engine e = default_engine := e

let engine_name = function Auto -> "auto" | Interp -> "interp" | Compiled -> "compiled"

(* Engine-dependent work counters (how the result was computed, not
   what was computed), det:false like the bitsim.* family so cold/warm
   and interp/compiled runs keep identical det signatures. Accumulated
   in plain state fields during a run and flushed once at [finish] so
   the hot loops never touch the registry. *)
let obs_blocks_compiled = Sfi_obs.Counter.make ~det:false "cpu.blocks_compiled"

let obs_block_hits = Sfi_obs.Counter.make ~det:false "cpu.block_hits"

let obs_block_flushes = Sfi_obs.Counter.make ~det:false "cpu.block_flushes"

let obs_invalidations = Sfi_obs.Counter.make ~det:false "cpu.invalidations"

let obs_compiled_insns = Sfi_obs.Counter.make ~det:false "cpu.compiled_insns"

let obs_fallbacks = Sfi_obs.Counter.make ~det:false "cpu.fallbacks"

(* Flag logic sits behind the subtractor: equality and magnitude are
   derived from the (possibly faulted) 32-bit difference, with the
   operands' sign bits disambiguating the overflow cases. *)
let flag_of_cmp cmp a b diff =
  let eq = diff = 0 in
  let sign_r = diff land 0x8000_0000 <> 0 in
  let sa = a land 0x8000_0000 <> 0 and sb = b land 0x8000_0000 <> 0 in
  let lts = if sa <> sb then sa else sign_r in
  let ltu = if sa <> sb then sb else sign_r in
  match cmp with
  | Insn.Eq -> eq
  | Insn.Ne -> not eq
  | Insn.Lts -> lts
  | Insn.Ges -> not lts
  | Insn.Gts -> (not lts) && not eq
  | Insn.Les -> lts || eq
  | Insn.Ltu -> ltu
  | Insn.Geu -> not ltu
  | Insn.Gtu -> (not ltu) && not eq
  | Insn.Leu -> ltu || eq

type state = {
  mem : Memory.t;
  addr_mask : int; (* Memory.size - 1: SRAM decoder mask for pc and stores *)
  regs : int array;
  mutable pc : int;
  mutable flag : bool;
  mutable cycle : int;
  mutable instret : int;
  mutable fi_on : bool;
  mutable kernel_cycles : int;
  mutable kernel_instret : int;
  mutable alu_retired : int;
  class_counts : int array;
  mutable control_retired : int;
  mutable memory_retired : int;
  mutable taken_branches : int;
  (* load-use interlock: cycle at which each register's value can be
     consumed by EX (only loads set values in the future) *)
  ready : int array;
  (* unboxed decode cache: one Uop quad per instruction word, slot 0
     u_unfilled until first fetched and re-u_unfilled by stores *)
  utab : int array;
  (* compiled-engine block cache; [||] when interpreting *)
  compiled : bool;
  covered : int array; (* per word: number of cached blocks containing it *)
  block_of : int array; (* entry word index -> block id, -1 for none *)
  mutable blocks : int array array;
  (* threaded code: blocks.(bid) describes the block, threads.(bid) is
     the head closure of its compiled closure chain *)
  mutable threads : (int -> unit) array;
  mutable n_blocks : int;
  mutable aborted : bool; (* a store flushed the cache mid-block *)
  (* context of the block currently executing, for the exact trap/exit
     patch-up and the per-block specialization (fields, not locals: the
     closures and the exception handler must see the values at raise
     time without boxing a ref per block) *)
  mutable blk_i : int;
  mutable blk_before : int;
  mutable blk_fi0 : bool; (* st.fi_on at block entry *)
  mutable blk_c0 : int; (* st.cycle at block entry *)
  mutable blk_code : int array; (* descriptor of the block executing *)
  (* obs accumulators, flushed once per run *)
  mutable n_blocks_compiled : int;
  mutable n_block_hits : int;
  mutable n_block_flushes : int;
  mutable n_invalidations : int;
  mutable n_compiled_insns : int;
  mutable n_fallbacks : int;
}

let finish st outcome =
  if Sfi_obs.enabled () then begin
    Sfi_obs.Counter.add obs_invalidations st.n_invalidations;
    Sfi_obs.Counter.add obs_blocks_compiled st.n_blocks_compiled;
    Sfi_obs.Counter.add obs_block_hits st.n_block_hits;
    Sfi_obs.Counter.add obs_block_flushes st.n_block_flushes;
    Sfi_obs.Counter.add obs_compiled_insns st.n_compiled_insns;
    Sfi_obs.Counter.add obs_fallbacks st.n_fallbacks
  end;
  {
    outcome;
    cycles = st.cycle;
    instret = st.instret;
    kernel_cycles = st.kernel_cycles;
    kernel_instret = st.kernel_instret;
    alu_retired = st.alu_retired;
    class_counts = st.class_counts;
    control_retired = st.control_retired;
    memory_retired = st.memory_retired;
    taken_branches = st.taken_branches;
  }

exception Exit_sim of outcome

(* Register indices come from 5-bit decode fields and comparison
   indices from Uop's dense tables, so the unsafe accesses below are
   bounds-checked by construction. *)

let[@inline] reg st r = if r = 0 then 0 else Array.unsafe_get st.regs r

let[@inline] set_reg st r v = if r <> 0 then Array.unsafe_set st.regs r v

let[@inline] wait st r =
  if r <> 0 && Array.unsafe_get st.ready r > st.cycle then
    st.cycle <- Array.unsafe_get st.ready r

let[@inline] count_control st =
  if st.fi_on then st.control_retired <- st.control_retired + 1

let[@inline] count_memory st =
  if st.fi_on then st.memory_retired <- st.memory_retired + 1

(* The compiled executor dispatches on literal micro-opcodes (a dense
   match compiles to one jump table); pin the literals to Uop's layout
   and the inlined class indices to Op_class's order. *)
let () =
  assert (
    Uop.u_alu_rr = 2 && Uop.u_alu_ri = 11 && Uop.u_sf = 20 && Uop.u_sfi = 21
    && Uop.u_j = 22 && Uop.u_j_self = 23 && Uop.u_jal = 24 && Uop.u_jr = 25
    && Uop.u_jalr = 26 && Uop.u_bf = 27 && Uop.u_bnf = 28 && Uop.u_lwz = 29
    && Uop.u_lhz = 30 && Uop.u_lbz = 31 && Uop.u_sw = 32 && Uop.u_sh = 33
    && Uop.u_sb = 34 && Uop.u_nop = 35 && Uop.u_nop_exit = 36
    && Uop.u_nop_kernel_begin = 37 && Uop.u_nop_kernel_end = 38);
  assert (
    Op_class.index Op_class.Add = 0
    && Op_class.index Op_class.Sub = 1
    && Op_class.index Op_class.Mul = 2
    && Op_class.index Op_class.Sll = 3
    && Op_class.index Op_class.Srl = 4
    && Op_class.index Op_class.Sra = 5
    && Op_class.index Op_class.And_ = 6
    && Op_class.index Op_class.Or_ = 7
    && Op_class.index Op_class.Xor_ = 8)

let alu_result st config cls a b =
  let clean = Op_class.apply cls a b in
  let faulted =
    if st.fi_on then
      match config.fault_hook with
      | Some hook ->
        let mask = hook ~cycle:st.cycle ~cls ~a ~b ~result:clean in
        if mask = 0 then clean else clean lxor mask
      | None -> clean
    else clean
  in
  if st.fi_on then begin
    st.alu_retired <- st.alu_retired + 1;
    let i = Op_class.index cls in
    st.class_counts.(i) <- st.class_counts.(i) + 1
  end;
  faulted

let[@inline] jump_to st target =
  st.taken_branches <- st.taken_branches + 1;
  st.cycle <- st.cycle + branch_penalty;
  st.pc <- target

let invalidate st addr =
  (* Wrap with the SRAM decoder mask exactly like the data path: a
     store through a fault-corrupted high-bit pointer clobbers the
     same wrapped location [Memory.write_u32] wrote, so its cached
     decode must be dropped, not skipped as "out of range". *)
  let idx = (addr land st.addr_mask) lsr 2 in
  Array.unsafe_set st.utab (idx lsl 2) Uop.u_unfilled;
  st.n_invalidations <- st.n_invalidations + 1;
  if st.compiled && Array.unsafe_get st.covered idx > 0 then begin
    (* The store rewrote a word some cached block decoded. Drop the
       whole cache and abort the block being executed; the dispatcher
       resumes at the next pc and recompiles from current memory. *)
    Array.fill st.block_of 0 (Array.length st.block_of) (-1);
    Array.fill st.covered 0 (Array.length st.covered) 0;
    st.n_blocks <- 0;
    st.aborted <- true;
    st.n_block_flushes <- st.n_block_flushes + 1
  end

(* One instruction in interpreter semantics: operands from the Uop
   quad, pc updated in place. Every arm mirrors the historic Insn.t
   interpreter line for line (same wait/count/hook order, so fault-hook
   streams and cycle counts are bit-identical). *)
let exec_uop st config op x y z =
  if op < Uop.u_sf then begin
    (if op < Uop.u_alu_ri then begin
       (* ALU reg-reg: x=rD y=rA z=rB *)
       wait st y;
       wait st z;
       set_reg st x
         (alu_result st config
            (Array.unsafe_get Uop.cls_table (op - Uop.u_alu_rr))
            (reg st y) (reg st z))
     end
     else begin
       (* ALU reg-imm: x=rD y=rA z=imm32 *)
       wait st y;
       set_reg st x
         (alu_result st config
            (Array.unsafe_get Uop.cls_table (op - Uop.u_alu_ri))
            (reg st y) z)
     end);
    st.pc <- st.pc + 4
  end
  else if op <= Uop.u_sfi then begin
    (* compares: the subtractor computes the difference, but the flag
       flip-flop is not an ALU endpoint, so no fault is injected here
       (paper Sec. 2.1: only the 32 EX result-register endpoints can
       fail). Corrupted branching still happens indirectly, through
       previously faulted values and indices reaching a compare. *)
    (if op = Uop.u_sf then begin
       wait st y;
       wait st z;
       let va = reg st y and vb = reg st z in
       st.flag <- flag_of_cmp (Array.unsafe_get Uop.cmp_table x) va vb (U32.sub va vb)
     end
     else begin
       wait st y;
       let va = reg st y in
       st.flag <- flag_of_cmp (Array.unsafe_get Uop.cmp_table x) va z (U32.sub va z)
     end);
    st.pc <- st.pc + 4
  end
  else if op <= Uop.u_bnf then begin
    count_control st;
    if op = Uop.u_j then jump_to st x
    else if op = Uop.u_j_self then
      raise (Exit_sim Watchdog) (* jump-to-self: infinite loop *)
    else if op = Uop.u_jal then begin
      set_reg st Insn.link_register y;
      jump_to st x
    end
    else if op = Uop.u_jr then begin
      wait st x;
      jump_to st (reg st x)
    end
    else if op = Uop.u_jalr then begin
      wait st x;
      let target = reg st x in
      set_reg st Insn.link_register y;
      jump_to st target
    end
    else if op = Uop.u_bf then begin
      if st.flag then jump_to st x else st.pc <- st.pc + 4
    end
    else begin
      (* u_bnf *)
      if not st.flag then jump_to st x else st.pc <- st.pc + 4
    end
  end
  else if op <= Uop.u_lbz then begin
    count_memory st;
    wait st z;
    let addr = U32.add (reg st z) y in
    let v =
      if op = Uop.u_lwz then Memory.read_u32 st.mem addr
      else if op = Uop.u_lhz then Memory.read_u16 st.mem addr
      else Memory.read_u8 st.mem addr
    in
    set_reg st x v;
    if x <> 0 then Array.unsafe_set st.ready x (st.cycle + 1 + load_use_penalty);
    st.pc <- st.pc + 4
  end
  else if op <= Uop.u_sb then begin
    count_memory st;
    wait st y;
    wait st z;
    let addr = U32.add (reg st y) x in
    (if op = Uop.u_sw then Memory.write_u32 st.mem addr (reg st z)
     else if op = Uop.u_sh then Memory.write_u16 st.mem addr (reg st z)
     else Memory.write_u8 st.mem addr (reg st z));
    invalidate st addr;
    st.pc <- st.pc + 4
  end
  else begin
    (* nops *)
    if op = Uop.u_nop_exit then raise (Exit_sim Exited)
    else if op = Uop.u_nop_kernel_begin then st.fi_on <- true
    else if op = Uop.u_nop_kernel_end then
      st.fi_on <- (if config.fi_always_on then true else false);
    st.pc <- st.pc + 4
  end;
  st.cycle <- st.cycle + 1;
  st.instret <- st.instret + 1

(* One full fetch-decode-execute step with every architectural check.
   This IS the interpreter engine; the compiled engine drops to it near
   the watchdog, where per-instruction budget checks matter. *)
let step st config =
  if st.cycle >= config.max_cycles then raise (Exit_sim Watchdog);
  if st.pc land 3 <> 0 then
    raise (Exit_sim (Trapped (Printf.sprintf "misaligned pc 0x%x" st.pc)));
  (* The fetch address wraps with the SRAM decoder, like data
     accesses: a corrupted jump lands somewhere in memory and the
     core executes whatever it finds (often an illegal encoding). *)
  st.pc <- st.pc land st.addr_mask;
  let u = st.utab in
  let idx = st.pc lsr 2 in
  let base = idx lsl 2 in
  if Array.unsafe_get u base = Uop.u_unfilled then
    Uop.decode_into u ~idx ~addr_mask:st.addr_mask (Memory.read_u32 st.mem st.pc);
  let op = Array.unsafe_get u base in
  if op = Uop.u_illegal then
    raise (Exit_sim (Trapped (Printf.sprintf "illegal instruction at 0x%x" st.pc)));
  (match config.trace with
  | Some f -> (
    (* the boxed form is materialized on demand; tracing is a
       debugging aid and stays off the hot path *)
    match Encode.decode (Memory.read_u32 st.mem st.pc) with
    | Some insn -> f ~pc:st.pc insn
    | None -> ())
  | None -> ());
  let was_on = st.fi_on in
  let before = st.cycle in
  exec_uop st config op
    (Array.unsafe_get u (base + 1))
    (Array.unsafe_get u (base + 2))
    (Array.unsafe_get u (base + 3));
  if was_on || st.fi_on then begin
    st.kernel_cycles <- st.kernel_cycles + (st.cycle - before);
    st.kernel_instret <- st.kernel_instret + 1
  end

let run_interp st config =
  while true do
    step st config
  done

(* ---------- compiled basic-block engine ---------- *)

(* Blocks are straight-line runs of quads copied out of the decode
   table. Layout: [| len; entry_pc; terminated; quads...; counter
   totals |] where [terminated] is 1 when the last quad is a
   control-flow or marker instruction (which sets pc itself) and 0 when
   the block falls through (length cap or end of memory), in which case
   the epilogue sets pc to entry_pc + 4*len after the last quad. The
   descriptor array is the compiler's input and the patch-up paths'
   metadata; what actually executes is the closure chain built from it
   by [thread_of_block]. *)

let max_block_insns = 256

(* Conservative per-instruction cycle ceiling inside a block: +1 for
   the instruction, at most +1 interlock stall (a load schedules
   ready = cycle + 2 and only the immediately following instruction
   can consume earlier than that), +2 taken-branch penalty. Blocks
   whose worst case could reach the watchdog are stepped one
   instruction at a time instead. *)
let max_cycles_per_insn = 4

(* Bit 6 set on a block-local opcode marks a quad that must probe the
   load-use interlock at run time (see compile_block); Uop codes stay
   below it. *)
let wait_flag = 64

let[@inline] is_terminator op =
  op = Uop.u_illegal || (op >= Uop.u_j && op <= Uop.u_bnf) || op >= Uop.u_nop_exit

(* Adds a completed block's static fi-window counter totals (appended
   after the quads by [compile_block]). Only called when the block ran
   with fi on; the interpreter bumps the same counters per
   instruction. *)
let book_block_counters st code len =
  let cb = 3 + (len lsl 2) in
  st.alu_retired <- st.alu_retired + Array.unsafe_get code cb;
  st.control_retired <- st.control_retired + Array.unsafe_get code (cb + 1);
  st.memory_retired <- st.memory_retired + Array.unsafe_get code (cb + 2);
  let n = Array.unsafe_get code (cb + 3) in
  for k = 0 to n - 1 do
    let idx = Array.unsafe_get code (cb + 4 + (k lsl 1)) in
    st.class_counts.(idx) <-
      st.class_counts.(idx) + Array.unsafe_get code (cb + 5 + (k lsl 1))
  done

(* Exact counters for the first [retired] quads of a partially executed
   block — the trap/exit/abort fix-up paths recompute what the batched
   epilogue would have booked. Caller gates on the block's fi flag. *)
let book_partial_counters st code retired =
  for i = 0 to retired - 1 do
    let op = Array.unsafe_get code (3 + (i lsl 2)) land (wait_flag - 1) in
    if op >= Uop.u_alu_rr && op <= Uop.u_alu_ri + 8 then begin
      st.alu_retired <- st.alu_retired + 1;
      let k = if op < Uop.u_alu_ri then op - Uop.u_alu_rr else op - Uop.u_alu_ri in
      st.class_counts.(k) <- st.class_counts.(k) + 1
    end
    else if op >= Uop.u_j && op <= Uop.u_bnf then
      st.control_retired <- st.control_retired + 1
    else if op >= Uop.u_lwz && op <= Uop.u_sb then
      st.memory_retired <- st.memory_retired + 1
  done

(* Interlock check against a live cycle value: returns the (possibly
   stalled) cycle instead of mutating st.cycle. *)
let[@inline] waitc st r cyc =
  if r <> 0 && Array.unsafe_get st.ready r > cyc then Array.unsafe_get st.ready r
  else cyc

exception Block_aborted

(* A store rewrote a word of a cached block: the remaining closures of
   the chain would execute stale code, so book the [i + 1] instructions
   that completed (including the store, whose cycle is [cyc_done]) and
   resume exact fetch at the next address. Escapes the chain by
   exception; the constant constructor allocates nothing. *)
let abort_block st code entry_pc cyc_done i =
  let retired = i + 1 in
  st.cycle <- cyc_done;
  st.pc <- entry_pc + (retired lsl 2);
  st.instret <- st.instret + retired;
  if st.blk_fi0 then begin
    st.kernel_cycles <- st.kernel_cycles + (cyc_done - st.blk_c0);
    st.kernel_instret <- st.kernel_instret + retired;
    (* [retired] includes the store that flushed the cache, so the quad
       walk books its memory_retired along with its predecessors'. *)
    book_partial_counters st code retired
  end;
  st.n_compiled_insns <- st.n_compiled_insns + retired;
  raise_notrace Block_aborted

(* Fault-injection slow path of an ALU micro-op: same hook signature,
   argument values and call stream as [alu_result]. [cyc] is the live
   cycle count the closure chain threads through its argument
   (st.cycle is stale inside a block). The retired-class counters are
   NOT bumped here — they are booked per block from the static
   totals. *)
let hooked h cls a b clean cyc =
  let mask = h ~cycle:cyc ~cls ~a ~b ~result:clean in
  if mask = 0 then clean else clean lxor mask

(* Compiles a block descriptor into threaded code: one closure per
   instruction, each ending with a tail call to its successor's
   closure; the last one calls the block epilogue. This is the point of
   the engine. The interpreter — and a quad-loop executor — dispatches
   every instruction through one shared match whose indirect jump
   mispredicts on nearly every instruction (the opcode sequence is
   effectively random to a BTB keyed by branch address), while the
   chain gives every instruction its own call site with exactly one
   ever-observed target, which predicts perfectly after the first
   iteration.

   The builder also specializes on everything fixed for the lifetime of
   the block cache (one [Cpu.run]):

   - [config.fault_hook]: absent, and the ALU closures are the bare
     operation; present, and the hook call gates on [st.blk_fi0], the
     fi-window flag at block entry (constant across a block because
     kernel markers terminate blocks);
   - [config.trace]: absent, no per-instruction check at all; present,
     the decoded [Insn.t] is captured at build time (sound because any
     store into a covered word flushes the whole cache, so a live
     block's words cannot have changed since compile);
   - the static interlock verdict (bit [wait_flag], see
     [compile_block]) becomes a captured boolean, so non-stalling
     instructions skip the ready-table probes;
   - comparison variants, trap message strings and link values are
     pre-resolved into the closure environments.

   The cycle counter is threaded through the [int] parameter (a
   register); [st.cycle] is synced only where an exception could
   surface it (before a memory access, before an exit/trap raise) and
   in the epilogue. Single-argument closures are deliberate: OCaml
   compiles an unknown 1-ary application to a direct indirect call,
   while higher arities funnel through the shared caml_applyN
   dispatchers, whose indirect jumps would reintroduce the
   misprediction this design removes. The chain allocates once at
   compile time; executing it allocates nothing. *)
let thread_of_block st config code =
  let len = Array.unsafe_get code 0 in
  let entry_pc = Array.unsafe_get code 1 in
  let terminated = Array.unsafe_get code 2 = 1 in
  let fall_pc = entry_pc + (len lsl 2) in
  let max_cycles = config.max_cycles in
  (* All [len] instructions completed: batched bookkeeping, then
     chaining — if the successor address already has a compiled block
     and that block provably fits under the watchdog budget, enter its
     chain directly, skipping the dispatcher and the exec_block
     prologue. A self-looping terminator (the shape of every tight
     kernel loop) chains to this block's own head, so the call site
     below stays monomorphic on the hot path. *)
  let epilogue cyc =
    st.cycle <- cyc;
    st.instret <- st.instret + len;
    if st.blk_fi0 then begin
      st.kernel_cycles <- st.kernel_cycles + (cyc - st.blk_c0);
      st.kernel_instret <- st.kernel_instret + len;
      book_block_counters st code len
    end
    else if st.fi_on then begin
      (* fi was off and is now on: the only instruction that flips it
         is a trailing kernel_begin marker, which the interpreter
         counts (one cycle, no stall) *)
      st.kernel_cycles <- st.kernel_cycles + 1;
      st.kernel_instret <- st.kernel_instret + 1
    end;
    if not terminated then st.pc <- fall_pc;
    st.n_compiled_insns <- st.n_compiled_insns + len;
    let pc = st.pc in
    if pc land 3 = 0 then begin
      let idx = (pc land st.addr_mask) lsr 2 in
      let bid = Array.unsafe_get st.block_of idx in
      if bid >= 0 then begin
        let ncode = Array.unsafe_get st.blocks bid in
        if cyc + (max_cycles_per_insn * Array.unsafe_get ncode 0) < max_cycles
        then begin
          st.pc <- pc land st.addr_mask;
          st.n_block_hits <- st.n_block_hits + 1;
          st.blk_fi0 <- st.fi_on;
          st.blk_c0 <- cyc;
          st.blk_code <- ncode;
          (Array.unsafe_get st.threads bid) cyc
        end
      end
    end
    (* otherwise fall back to the dispatcher: misaligned pc (trap),
       uncompiled successor, or too close to the watchdog *)
  in
  let next = ref epilogue in
  for i = len - 1 downto 0 do
    let base = 3 + (i lsl 2) in
    let fop = Array.unsafe_get code base in
    let wf = fop >= wait_flag in
    let op = fop land (wait_flag - 1) in
    let x = Array.unsafe_get code (base + 1) in
    let y = Array.unsafe_get code (base + 2) in
    let z = Array.unsafe_get code (base + 3) in
    let pc = entry_pc + (i lsl 2) in
    let k = !next in
    let body =
      match op with
      (* --- ALU register-register: x=rD y=rA z=rB --- *)
      | 2 -> (
        match config.fault_hook with
        | None ->
          fun cyc ->
            let cyc = if wf then waitc st z (waitc st y cyc) else cyc in
            set_reg st x (U32.add (reg st y) (reg st z));
            k (cyc + 1)
        | Some h ->
          fun cyc ->
            let cyc = if wf then waitc st z (waitc st y cyc) else cyc in
            let a = reg st y and b = reg st z in
            let r = U32.add a b in
            set_reg st x (if st.blk_fi0 then hooked h Op_class.Add a b r cyc else r);
            k (cyc + 1))
      | 3 -> (
        match config.fault_hook with
        | None ->
          fun cyc ->
            let cyc = if wf then waitc st z (waitc st y cyc) else cyc in
            set_reg st x (U32.sub (reg st y) (reg st z));
            k (cyc + 1)
        | Some h ->
          fun cyc ->
            let cyc = if wf then waitc st z (waitc st y cyc) else cyc in
            let a = reg st y and b = reg st z in
            let r = U32.sub a b in
            set_reg st x (if st.blk_fi0 then hooked h Op_class.Sub a b r cyc else r);
            k (cyc + 1))
      | 4 -> (
        match config.fault_hook with
        | None ->
          fun cyc ->
            let cyc = if wf then waitc st z (waitc st y cyc) else cyc in
            set_reg st x (U32.mul (reg st y) (reg st z));
            k (cyc + 1)
        | Some h ->
          fun cyc ->
            let cyc = if wf then waitc st z (waitc st y cyc) else cyc in
            let a = reg st y and b = reg st z in
            let r = U32.mul a b in
            set_reg st x (if st.blk_fi0 then hooked h Op_class.Mul a b r cyc else r);
            k (cyc + 1))
      | 5 -> (
        match config.fault_hook with
        | None ->
          fun cyc ->
            let cyc = if wf then waitc st z (waitc st y cyc) else cyc in
            set_reg st x (U32.shift_left (reg st y) (reg st z land 31));
            k (cyc + 1)
        | Some h ->
          fun cyc ->
            let cyc = if wf then waitc st z (waitc st y cyc) else cyc in
            let a = reg st y and b = reg st z in
            let r = U32.shift_left a (b land 31) in
            set_reg st x (if st.blk_fi0 then hooked h Op_class.Sll a b r cyc else r);
            k (cyc + 1))
      | 6 -> (
        match config.fault_hook with
        | None ->
          fun cyc ->
            let cyc = if wf then waitc st z (waitc st y cyc) else cyc in
            set_reg st x (U32.shift_right_logical (reg st y) (reg st z land 31));
            k (cyc + 1)
        | Some h ->
          fun cyc ->
            let cyc = if wf then waitc st z (waitc st y cyc) else cyc in
            let a = reg st y and b = reg st z in
            let r = U32.shift_right_logical a (b land 31) in
            set_reg st x (if st.blk_fi0 then hooked h Op_class.Srl a b r cyc else r);
            k (cyc + 1))
      | 7 -> (
        match config.fault_hook with
        | None ->
          fun cyc ->
            let cyc = if wf then waitc st z (waitc st y cyc) else cyc in
            set_reg st x (U32.shift_right_arith (reg st y) (reg st z land 31));
            k (cyc + 1)
        | Some h ->
          fun cyc ->
            let cyc = if wf then waitc st z (waitc st y cyc) else cyc in
            let a = reg st y and b = reg st z in
            let r = U32.shift_right_arith a (b land 31) in
            set_reg st x (if st.blk_fi0 then hooked h Op_class.Sra a b r cyc else r);
            k (cyc + 1))
      | 8 -> (
        match config.fault_hook with
        | None ->
          fun cyc ->
            let cyc = if wf then waitc st z (waitc st y cyc) else cyc in
            set_reg st x (U32.logand (reg st y) (reg st z));
            k (cyc + 1)
        | Some h ->
          fun cyc ->
            let cyc = if wf then waitc st z (waitc st y cyc) else cyc in
            let a = reg st y and b = reg st z in
            let r = U32.logand a b in
            set_reg st x (if st.blk_fi0 then hooked h Op_class.And_ a b r cyc else r);
            k (cyc + 1))
      | 9 -> (
        match config.fault_hook with
        | None ->
          fun cyc ->
            let cyc = if wf then waitc st z (waitc st y cyc) else cyc in
            set_reg st x (U32.logor (reg st y) (reg st z));
            k (cyc + 1)
        | Some h ->
          fun cyc ->
            let cyc = if wf then waitc st z (waitc st y cyc) else cyc in
            let a = reg st y and b = reg st z in
            let r = U32.logor a b in
            set_reg st x (if st.blk_fi0 then hooked h Op_class.Or_ a b r cyc else r);
            k (cyc + 1))
      | 10 -> (
        match config.fault_hook with
        | None ->
          fun cyc ->
            let cyc = if wf then waitc st z (waitc st y cyc) else cyc in
            set_reg st x (U32.logxor (reg st y) (reg st z));
            k (cyc + 1)
        | Some h ->
          fun cyc ->
            let cyc = if wf then waitc st z (waitc st y cyc) else cyc in
            let a = reg st y and b = reg st z in
            let r = U32.logxor a b in
            set_reg st x (if st.blk_fi0 then hooked h Op_class.Xor_ a b r cyc else r);
            k (cyc + 1))
      (* --- ALU register-immediate: x=rD y=rA z=imm32 --- *)
      | 11 -> (
        match config.fault_hook with
        | None ->
          fun cyc ->
            let cyc = if wf then waitc st y cyc else cyc in
            set_reg st x (U32.add (reg st y) z);
            k (cyc + 1)
        | Some h ->
          fun cyc ->
            let cyc = if wf then waitc st y cyc else cyc in
            let a = reg st y in
            let r = U32.add a z in
            set_reg st x (if st.blk_fi0 then hooked h Op_class.Add a z r cyc else r);
            k (cyc + 1))
      | 12 -> (
        match config.fault_hook with
        | None ->
          fun cyc ->
            let cyc = if wf then waitc st y cyc else cyc in
            set_reg st x (U32.sub (reg st y) z);
            k (cyc + 1)
        | Some h ->
          fun cyc ->
            let cyc = if wf then waitc st y cyc else cyc in
            let a = reg st y in
            let r = U32.sub a z in
            set_reg st x (if st.blk_fi0 then hooked h Op_class.Sub a z r cyc else r);
            k (cyc + 1))
      | 13 -> (
        match config.fault_hook with
        | None ->
          fun cyc ->
            let cyc = if wf then waitc st y cyc else cyc in
            set_reg st x (U32.mul (reg st y) z);
            k (cyc + 1)
        | Some h ->
          fun cyc ->
            let cyc = if wf then waitc st y cyc else cyc in
            let a = reg st y in
            let r = U32.mul a z in
            set_reg st x (if st.blk_fi0 then hooked h Op_class.Mul a z r cyc else r);
            k (cyc + 1))
      | 14 -> (
        match config.fault_hook with
        | None ->
          fun cyc ->
            let cyc = if wf then waitc st y cyc else cyc in
            set_reg st x (U32.shift_left (reg st y) (z land 31));
            k (cyc + 1)
        | Some h ->
          fun cyc ->
            let cyc = if wf then waitc st y cyc else cyc in
            let a = reg st y in
            let r = U32.shift_left a (z land 31) in
            set_reg st x (if st.blk_fi0 then hooked h Op_class.Sll a z r cyc else r);
            k (cyc + 1))
      | 15 -> (
        match config.fault_hook with
        | None ->
          fun cyc ->
            let cyc = if wf then waitc st y cyc else cyc in
            set_reg st x (U32.shift_right_logical (reg st y) (z land 31));
            k (cyc + 1)
        | Some h ->
          fun cyc ->
            let cyc = if wf then waitc st y cyc else cyc in
            let a = reg st y in
            let r = U32.shift_right_logical a (z land 31) in
            set_reg st x (if st.blk_fi0 then hooked h Op_class.Srl a z r cyc else r);
            k (cyc + 1))
      | 16 -> (
        match config.fault_hook with
        | None ->
          fun cyc ->
            let cyc = if wf then waitc st y cyc else cyc in
            set_reg st x (U32.shift_right_arith (reg st y) (z land 31));
            k (cyc + 1)
        | Some h ->
          fun cyc ->
            let cyc = if wf then waitc st y cyc else cyc in
            let a = reg st y in
            let r = U32.shift_right_arith a (z land 31) in
            set_reg st x (if st.blk_fi0 then hooked h Op_class.Sra a z r cyc else r);
            k (cyc + 1))
      | 17 -> (
        match config.fault_hook with
        | None ->
          fun cyc ->
            let cyc = if wf then waitc st y cyc else cyc in
            set_reg st x (U32.logand (reg st y) z);
            k (cyc + 1)
        | Some h ->
          fun cyc ->
            let cyc = if wf then waitc st y cyc else cyc in
            let a = reg st y in
            let r = U32.logand a z in
            set_reg st x (if st.blk_fi0 then hooked h Op_class.And_ a z r cyc else r);
            k (cyc + 1))
      | 18 -> (
        match config.fault_hook with
        | None ->
          fun cyc ->
            let cyc = if wf then waitc st y cyc else cyc in
            set_reg st x (U32.logor (reg st y) z);
            k (cyc + 1)
        | Some h ->
          fun cyc ->
            let cyc = if wf then waitc st y cyc else cyc in
            let a = reg st y in
            let r = U32.logor a z in
            set_reg st x (if st.blk_fi0 then hooked h Op_class.Or_ a z r cyc else r);
            k (cyc + 1))
      | 19 -> (
        match config.fault_hook with
        | None ->
          fun cyc ->
            let cyc = if wf then waitc st y cyc else cyc in
            set_reg st x (U32.logxor (reg st y) z);
            k (cyc + 1)
        | Some h ->
          fun cyc ->
            let cyc = if wf then waitc st y cyc else cyc in
            let a = reg st y in
            let r = U32.logxor a z in
            set_reg st x (if st.blk_fi0 then hooked h Op_class.Xor_ a z r cyc else r);
            k (cyc + 1))
      (* --- compares (not ALU endpoints: no fault injection) --- *)
      | 20 ->
        let cmp = Array.unsafe_get Uop.cmp_table x in
        fun cyc ->
          let cyc = if wf then waitc st z (waitc st y cyc) else cyc in
          let va = reg st y and vb = reg st z in
          st.flag <- flag_of_cmp cmp va vb (U32.sub va vb);
          k (cyc + 1)
      | 21 ->
        let cmp = Array.unsafe_get Uop.cmp_table x in
        fun cyc ->
          let cyc = if wf then waitc st y cyc else cyc in
          let va = reg st y in
          st.flag <- flag_of_cmp cmp va z (U32.sub va z);
          k (cyc + 1)
      (* --- control flow (always the last quad of a block) --- *)
      | 22 ->
        fun cyc ->
          st.taken_branches <- st.taken_branches + 1;
          st.pc <- x;
          k (cyc + 1 + branch_penalty)
      | 23 ->
        fun cyc ->
          st.blk_i <- i;
          st.blk_before <- cyc;
          st.cycle <- cyc;
          raise (Exit_sim Watchdog) (* jump-to-self: infinite loop *)
      | 24 ->
        fun cyc ->
          set_reg st Insn.link_register y;
          st.taken_branches <- st.taken_branches + 1;
          st.pc <- x;
          k (cyc + 1 + branch_penalty)
      | 25 ->
        fun cyc ->
          let cyc = if wf then waitc st x cyc else cyc in
          st.taken_branches <- st.taken_branches + 1;
          st.pc <- reg st x;
          k (cyc + 1 + branch_penalty)
      | 26 ->
        fun cyc ->
          let cyc = if wf then waitc st x cyc else cyc in
          let target = reg st x in
          set_reg st Insn.link_register y;
          st.taken_branches <- st.taken_branches + 1;
          st.pc <- target;
          k (cyc + 1 + branch_penalty)
      | 27 ->
        fun cyc ->
          if st.flag then begin
            st.taken_branches <- st.taken_branches + 1;
            st.pc <- x;
            k (cyc + 1 + branch_penalty)
          end
          else begin
            st.pc <- fall_pc;
            k (cyc + 1)
          end
      | 28 ->
        fun cyc ->
          if not st.flag then begin
            st.taken_branches <- st.taken_branches + 1;
            st.pc <- x;
            k (cyc + 1 + branch_penalty)
          end
          else begin
            st.pc <- fall_pc;
            k (cyc + 1)
          end
      (* --- loads: x=rD y=imm32 z=rA ---
         [blk_i]/[blk_before] record progress before the access in case
         it traps on misalignment; [blk_before] is pre-stall and
         [st.cycle] is synced post-stall, so a trap leaves exactly the
         interpreter's accounting: stall cycles in [cycles], none of
         the instruction in the kernel window *)
      | 29 ->
        fun cyc ->
          st.blk_i <- i;
          st.blk_before <- cyc;
          let cyc = if wf then waitc st z cyc else cyc in
          st.cycle <- cyc;
          set_reg st x (Memory.read_u32 st.mem (U32.add (reg st z) y));
          if x <> 0 then Array.unsafe_set st.ready x (cyc + 1 + load_use_penalty);
          k (cyc + 1)
      | 30 ->
        fun cyc ->
          st.blk_i <- i;
          st.blk_before <- cyc;
          let cyc = if wf then waitc st z cyc else cyc in
          st.cycle <- cyc;
          set_reg st x (Memory.read_u16 st.mem (U32.add (reg st z) y));
          if x <> 0 then Array.unsafe_set st.ready x (cyc + 1 + load_use_penalty);
          k (cyc + 1)
      | 31 ->
        fun cyc ->
          st.blk_i <- i;
          st.blk_before <- cyc;
          let cyc = if wf then waitc st z cyc else cyc in
          st.cycle <- cyc;
          set_reg st x (Memory.read_u8 st.mem (U32.add (reg st z) y));
          if x <> 0 then Array.unsafe_set st.ready x (cyc + 1 + load_use_penalty);
          k (cyc + 1)
      (* --- stores: x=imm32 y=rA z=rB --- *)
      | 32 ->
        fun cyc ->
          st.blk_i <- i;
          st.blk_before <- cyc;
          let cyc = if wf then waitc st z (waitc st y cyc) else cyc in
          st.cycle <- cyc;
          let addr = U32.add (reg st y) x in
          Memory.write_u32 st.mem addr (reg st z);
          invalidate st addr;
          if st.aborted then abort_block st code entry_pc (cyc + 1) i;
          k (cyc + 1)
      | 33 ->
        fun cyc ->
          st.blk_i <- i;
          st.blk_before <- cyc;
          let cyc = if wf then waitc st z (waitc st y cyc) else cyc in
          st.cycle <- cyc;
          let addr = U32.add (reg st y) x in
          Memory.write_u16 st.mem addr (reg st z);
          invalidate st addr;
          if st.aborted then abort_block st code entry_pc (cyc + 1) i;
          k (cyc + 1)
      | 34 ->
        fun cyc ->
          st.blk_i <- i;
          st.blk_before <- cyc;
          let cyc = if wf then waitc st z (waitc st y cyc) else cyc in
          st.cycle <- cyc;
          let addr = U32.add (reg st y) x in
          Memory.write_u8 st.mem addr (reg st z);
          invalidate st addr;
          if st.aborted then abort_block st code entry_pc (cyc + 1) i;
          k (cyc + 1)
      (* --- nops --- *)
      | 35 -> fun cyc -> k (cyc + 1)
      | 36 ->
        fun cyc ->
          st.blk_i <- i;
          st.blk_before <- cyc;
          st.cycle <- cyc;
          raise (Exit_sim Exited)
      | 37 ->
        fun cyc ->
          st.fi_on <- true;
          st.pc <- fall_pc;
          k (cyc + 1)
      | 38 ->
        let fa = config.fi_always_on in
        fun cyc ->
          st.fi_on <- fa;
          st.pc <- fall_pc;
          k (cyc + 1)
      | _ ->
        (* u_illegal (or, unreachably, u_unfilled): traps at fetch,
           exactly like the interpreter, before the trace hook runs *)
        let msg = Printf.sprintf "illegal instruction at 0x%x" pc in
        fun cyc ->
          st.blk_i <- i;
          st.blk_before <- cyc;
          st.cycle <- cyc;
          raise (Exit_sim (Trapped msg))
    in
    let body =
      match config.trace with
      | None -> body
      | Some f ->
        if op = Uop.u_illegal then body
        else (
          match Encode.decode (Memory.read_u32 st.mem pc) with
          | Some insn ->
            fun cyc ->
              f ~pc insn;
              body cyc
          | None -> body)
    in
    next := body
  done;
  !next

let compile_block st config entry_idx =
  let u = st.utab in
  let n_words = Array.length st.block_of in
  let len = ref 0 in
  let stop = ref false in
  let terminated = ref false in
  while not !stop do
    let w = entry_idx + !len in
    if w >= n_words || !len >= max_block_insns then stop := true
    else begin
      if Array.unsafe_get u (w lsl 2) = Uop.u_unfilled then
        Uop.decode_into u ~idx:w ~addr_mask:st.addr_mask (Memory.read_u32 st.mem (w lsl 2));
      incr len;
      if is_terminator (Array.unsafe_get u (w lsl 2)) then begin
        stop := true;
        terminated := true
      end
    end
  done;
  let len = !len in
  (* Static fi-window counter totals: retired-class counters are gated
     on [fi_on], which is constant across a block, so a completed block
     can book them in one step instead of per instruction. The totals
     live after the quads: [alu; control; memory; n_pairs; (class_idx,
     count) pairs for the nonzero ALU classes]. *)
  let class_totals = Array.make Op_class.count 0 in
  let alu_total = ref 0 and ctl_total = ref 0 and mem_total = ref 0 in
  for i = 0 to len - 1 do
    let op = Array.unsafe_get u ((entry_idx + i) lsl 2) in
    if op >= Uop.u_alu_rr && op <= Uop.u_alu_ri + 8 then begin
      incr alu_total;
      let k = if op < Uop.u_alu_ri then op - Uop.u_alu_rr else op - Uop.u_alu_ri in
      class_totals.(k) <- class_totals.(k) + 1
    end
    else if op >= Uop.u_j && op <= Uop.u_bnf then incr ctl_total
    else if op >= Uop.u_lwz && op <= Uop.u_sb then incr mem_total
  done;
  let n_pairs = Array.fold_left (fun n c -> if c > 0 then n + 1 else n) 0 class_totals in
  let cb = 3 + (len lsl 2) in
  let code = Array.make (cb + 4 + (n_pairs lsl 1)) 0 in
  code.(0) <- len;
  code.(1) <- entry_idx lsl 2;
  code.(2) <- (if !terminated then 1 else 0);
  Array.blit u (entry_idx lsl 2) code 3 (len lsl 2);
  code.(cb) <- !alu_total;
  code.(cb + 1) <- !ctl_total;
  code.(cb + 2) <- !mem_total;
  code.(cb + 3) <- n_pairs;
  let p = ref (cb + 4) in
  Array.iteri
    (fun k c ->
      if c > 0 then begin
        code.(!p) <- k;
        code.(!p + 1) <- c;
        p := !p + 2
      end)
    class_totals;
  (* Static interlock elision: a load schedules ready = cycle + 2, so
     only the instruction immediately after it can ever stall. Mark the
     quads that must probe the ready table at run time — the first quad
     of the block (its dynamic predecessor is unknown: a fall-through
     or single-stepped path can end in a load) and any quad whose
     in-block predecessor is a load to a register it reads — by setting
     [wait_flag] on the block-local copy of the opcode. The shared
     [utab] is never flagged: the interpreter probes unconditionally. *)
  for i = 0 to len - 1 do
    let base = 3 + (i lsl 2) in
    let op = Array.unsafe_get code base in
    (* register read set per opcode layout (Uop): rr/sf/stores read
       y and z, ri/sfi read y, jr/jalr read x, loads read z *)
    let reads_regs =
      (op >= Uop.u_alu_rr && op <= Uop.u_sfi)
      || op = Uop.u_jr || op = Uop.u_jalr
      || (op >= Uop.u_lwz && op <= Uop.u_sb)
    in
    if reads_regs then begin
      let needs_wait =
        if i = 0 then true
        else begin
          let pbase = base - 4 in
          (* the predecessor may already carry wait_flag (set when it
             was processed, e.g. as the first quad): strip it *)
          let pop = Array.unsafe_get code pbase land (wait_flag - 1) in
          if pop >= Uop.u_lwz && pop <= Uop.u_lbz then begin
            let d = Array.unsafe_get code (pbase + 1) in
            d <> 0
            &&
            if op >= Uop.u_alu_rr && op < Uop.u_alu_ri then
              Array.unsafe_get code (base + 2) = d
              || Array.unsafe_get code (base + 3) = d
            else if op < Uop.u_sf || op = Uop.u_sfi then
              Array.unsafe_get code (base + 2) = d
            else if op = Uop.u_sf || (op >= Uop.u_sw && op <= Uop.u_sb) then
              Array.unsafe_get code (base + 2) = d
              || Array.unsafe_get code (base + 3) = d
            else if op = Uop.u_jr || op = Uop.u_jalr then
              Array.unsafe_get code (base + 1) = d
            else (* loads: base register in z *)
              Array.unsafe_get code (base + 3) = d
          end
          else false
        end
      in
      if needs_wait then Array.unsafe_set code base (op lor wait_flag)
    end
  done;
  for i = 0 to len - 1 do
    let w = entry_idx + i in
    Array.unsafe_set st.covered w (Array.unsafe_get st.covered w + 1)
  done;
  if st.n_blocks = Array.length st.blocks then begin
    let cap = 2 * Array.length st.blocks in
    let bigger = Array.make cap [||] in
    Array.blit st.blocks 0 bigger 0 st.n_blocks;
    st.blocks <- bigger;
    let bigger_t = Array.make cap (fun (_ : int) -> ()) in
    Array.blit st.threads 0 bigger_t 0 st.n_blocks;
    st.threads <- bigger_t
  end;
  let bid = st.n_blocks in
  st.blocks.(bid) <- code;
  st.threads.(bid) <- thread_of_block st config code;
  st.block_of.(entry_idx) <- bid;
  st.n_blocks <- bid + 1;
  st.n_blocks_compiled <- st.n_blocks_compiled + 1;
  bid

(* Runs one cached block by entering its closure chain. Architecturally
   identical to running [step] over each instruction — the chain
   preserves the interpreter's cycle accounting, hook streams and trap
   points exactly; see thread_of_block. The handler performs the exact
   per-instruction patch-up for the [st.blk_i] completed predecessors
   of a raising instruction: the raising instruction itself retires
   nothing, exactly like the interpreter, and its kernel window ends at
   [st.blk_before] — the cycle at its fetch — because a trapping
   load/store may have stalled on the interlock first, and those cycles
   count toward [cycles] but not toward the kernel window. *)
let exec_block st code head =
  st.blk_fi0 <- st.fi_on;
  st.blk_c0 <- st.cycle;
  st.blk_code <- code;
  st.aborted <- false;
  try head st.cycle with
  | Block_aborted -> ()
  | (Exit_sim _ | Memory.Trap _) as e ->
    (* [st.blk_code] rather than [code]: the chain may have crossed
       into other blocks since this dispatch. *)
    let code = st.blk_code in
    let retired = st.blk_i in
    st.instret <- st.instret + retired;
    if st.blk_fi0 then begin
      st.kernel_cycles <- st.kernel_cycles + (st.blk_before - st.blk_c0);
      st.kernel_instret <- st.kernel_instret + retired;
      book_partial_counters st code retired;
      (* The interpreter counts a load/store toward [memory_retired]
         before the access that traps, and jump-to-self toward
         [control_retired] before raising Watchdog (exit markers and
         illegal words count nothing), so the raising quad needs the
         same classification on top of its completed predecessors. *)
      let rop = Array.unsafe_get code (3 + (retired lsl 2)) land (wait_flag - 1) in
      if rop >= Uop.u_lwz && rop <= Uop.u_sb then
        st.memory_retired <- st.memory_retired + 1
      else if rop = Uop.u_j_self then st.control_retired <- st.control_retired + 1
    end;
    st.n_compiled_insns <- st.n_compiled_insns + retired;
    raise e

let run_compiled st config =
  let max_cycles = config.max_cycles in
  while true do
    if st.cycle >= max_cycles then raise (Exit_sim Watchdog);
    if st.pc land 3 <> 0 then
      raise (Exit_sim (Trapped (Printf.sprintf "misaligned pc 0x%x" st.pc)));
    st.pc <- st.pc land st.addr_mask;
    let idx = st.pc lsr 2 in
    let bid = Array.unsafe_get st.block_of idx in
    let bid =
      if bid >= 0 then begin
        st.n_block_hits <- st.n_block_hits + 1;
        bid
      end
      else compile_block st config idx
    in
    let code = Array.unsafe_get st.blocks bid in
    if st.cycle + (max_cycles_per_insn * Array.unsafe_get code 0) >= max_cycles
    then begin
      (* close enough to the watchdog that an instruction inside the
         block could cross the budget: take the exact per-insn path *)
      st.n_fallbacks <- st.n_fallbacks + 1;
      step st config
    end
    else exec_block st code (Array.unsafe_get st.threads bid)
  done

(* ---------- snapshot / restore ---------- *)

(* Everything [run] needs to continue mid-program except memory (the
   caller restores memory separately — it dwarfs the rest and diffs
   well) and the decode/block caches, which are derived state rebuilt
   lazily from memory on the first fetch of each word. Arrays are
   copied on capture AND on restore: [finish] returns [st.class_counts]
   aliased, and callers keep snapshots across many runs. *)
type snapshot = {
  snap_pc : int;
  snap_flag : bool;
  snap_cycle : int;
  snap_instret : int;
  snap_fi_on : bool;
  snap_kernel_cycles : int;
  snap_kernel_instret : int;
  snap_alu_retired : int;
  snap_class_counts : int array;
  snap_control_retired : int;
  snap_memory_retired : int;
  snap_taken_branches : int;
  snap_regs : int array;
  snap_ready : int array;
}

let capture st =
  {
    snap_pc = st.pc;
    snap_flag = st.flag;
    snap_cycle = st.cycle;
    snap_instret = st.instret;
    snap_fi_on = st.fi_on;
    snap_kernel_cycles = st.kernel_cycles;
    snap_kernel_instret = st.kernel_instret;
    snap_alu_retired = st.alu_retired;
    snap_class_counts = Array.copy st.class_counts;
    snap_control_retired = st.control_retired;
    snap_memory_retired = st.memory_retired;
    snap_taken_branches = st.taken_branches;
    snap_regs = Array.copy st.regs;
    snap_ready = Array.copy st.ready;
  }

let restore st (s : snapshot) =
  st.pc <- s.snap_pc;
  st.flag <- s.snap_flag;
  st.cycle <- s.snap_cycle;
  st.instret <- s.snap_instret;
  st.fi_on <- s.snap_fi_on;
  st.kernel_cycles <- s.snap_kernel_cycles;
  st.kernel_instret <- s.snap_kernel_instret;
  st.alu_retired <- s.snap_alu_retired;
  Array.blit s.snap_class_counts 0 st.class_counts 0 (Array.length st.class_counts);
  st.control_retired <- s.snap_control_retired;
  st.memory_retired <- s.snap_memory_retired;
  st.taken_branches <- s.snap_taken_branches;
  Array.blit s.snap_regs 0 st.regs 0 32;
  Array.blit s.snap_ready 0 st.ready 0 32

let snapshot_cycle (s : snapshot) = s.snap_cycle

let run ?(config = default_config) ?engine ?resume mem ~entry =
  let engine = match engine with Some e -> e | None -> !default_engine in
  let compiled = match engine with Interp -> false | Auto | Compiled -> true in
  let size = Memory.size mem in
  (* Memory.create already rejects these; re-checked here because the
     fetch wrap and invalidate mask silently alias wrong addresses on a
     non-power-of-two size. *)
  if size <= 0 || size land (size - 1) <> 0 then
    invalid_arg "Cpu.run: memory size must be a positive power of two";
  let n_words = size / 4 in
  let st =
    {
      mem;
      addr_mask = size - 1;
      regs = Array.make 32 0;
      pc = entry;
      flag = false;
      cycle = 0;
      instret = 0;
      fi_on = config.fi_always_on;
      kernel_cycles = 0;
      kernel_instret = 0;
      alu_retired = 0;
      class_counts = Array.make Op_class.count 0;
      control_retired = 0;
      memory_retired = 0;
      taken_branches = 0;
      ready = Array.make 32 0;
      utab = Array.make (n_words * 4) Uop.u_unfilled;
      compiled;
      covered = (if compiled then Array.make n_words 0 else [||]);
      block_of = (if compiled then Array.make n_words (-1) else [||]);
      blocks = (if compiled then Array.make 64 [||] else [||]);
      threads = (if compiled then Array.make 64 (fun (_ : int) -> ()) else [||]);
      n_blocks = 0;
      aborted = false;
      blk_i = 0;
      blk_before = 0;
      blk_fi0 = false;
      blk_c0 = 0;
      blk_code = [||];
      n_blocks_compiled = 0;
      n_block_hits = 0;
      n_block_flushes = 0;
      n_invalidations = 0;
      n_compiled_insns = 0;
      n_fallbacks = 0;
    }
  in
  (match resume with None -> () | Some s -> restore st s);
  try
    if compiled then run_compiled st config else run_interp st config;
    assert false
  with
  | Exit_sim outcome -> finish st outcome
  | Memory.Trap msg -> finish st (Trapped msg)

(* Interpreter-only run that hands a snapshot of the pre-instruction
   state to [on_snapshot] at every [stride]-cycle boundary (cycle 0
   included, so there is always a snapshot at or before any target
   cycle). A boundary falling inside a multi-cycle instruction (stalls,
   branch penalty) is captured at the next instruction fetch — the
   first point where the architectural state is well-defined — so a
   snapshot's cycle can exceed its nominal boundary; consumers must
   select by [snapshot_cycle], not by index arithmetic. *)
let run_recording ?(config = default_config) ~stride ~on_snapshot mem ~entry =
  if stride <= 0 then invalid_arg "Cpu.run_recording: stride must be positive";
  let size = Memory.size mem in
  if size <= 0 || size land (size - 1) <> 0 then
    invalid_arg "Cpu.run_recording: memory size must be a positive power of two";
  let n_words = size / 4 in
  let st =
    {
      mem;
      addr_mask = size - 1;
      regs = Array.make 32 0;
      pc = entry;
      flag = false;
      cycle = 0;
      instret = 0;
      fi_on = config.fi_always_on;
      kernel_cycles = 0;
      kernel_instret = 0;
      alu_retired = 0;
      class_counts = Array.make Op_class.count 0;
      control_retired = 0;
      memory_retired = 0;
      taken_branches = 0;
      ready = Array.make 32 0;
      utab = Array.make (n_words * 4) Uop.u_unfilled;
      compiled = false;
      covered = [||];
      block_of = [||];
      blocks = [||];
      threads = [||];
      n_blocks = 0;
      aborted = false;
      blk_i = 0;
      blk_before = 0;
      blk_fi0 = false;
      blk_c0 = 0;
      blk_code = [||];
      n_blocks_compiled = 0;
      n_block_hits = 0;
      n_block_flushes = 0;
      n_invalidations = 0;
      n_compiled_insns = 0;
      n_fallbacks = 0;
    }
  in
  let next = ref 0 in
  try
    while true do
      if st.cycle >= !next then begin
        on_snapshot (capture st);
        next := ((st.cycle / stride) + 1) * stride
      end;
      step st config
    done;
    assert false
  with
  | Exit_sim outcome -> finish st outcome
  | Memory.Trap msg -> finish st (Trapped msg)

let ipc stats =
  if stats.cycles = 0 then 0. else float_of_int stats.instret /. float_of_int stats.cycles
