open Sfi_util
open Sfi_isa

let branch_penalty = 2

let load_use_penalty = 1

type fault_hook =
  cycle:int -> cls:Op_class.t -> a:U32.t -> b:U32.t -> result:U32.t -> U32.t

type config = {
  max_cycles : int;
  fault_hook : fault_hook option;
  fi_always_on : bool;
  trace : (pc:int -> Insn.t -> unit) option;
}

let default_config =
  { max_cycles = 50_000_000; fault_hook = None; fi_always_on = false; trace = None }

type outcome = Exited | Watchdog | Trapped of string

type stats = {
  outcome : outcome;
  cycles : int;
  instret : int;
  kernel_cycles : int;
  kernel_instret : int;
  alu_retired : int;
  class_counts : int array;
  control_retired : int;
  memory_retired : int;
  taken_branches : int;
}

(* Flag logic sits behind the subtractor: equality and magnitude are
   derived from the (possibly faulted) 32-bit difference, with the
   operands' sign bits disambiguating the overflow cases. *)
let flag_of_cmp cmp a b diff =
  let eq = diff = 0 in
  let sign_r = diff land 0x8000_0000 <> 0 in
  let sa = a land 0x8000_0000 <> 0 and sb = b land 0x8000_0000 <> 0 in
  let lts = if sa <> sb then sa else sign_r in
  let ltu = if sa <> sb then sb else sign_r in
  match cmp with
  | Insn.Eq -> eq
  | Insn.Ne -> not eq
  | Insn.Lts -> lts
  | Insn.Ges -> not lts
  | Insn.Gts -> (not lts) && not eq
  | Insn.Les -> lts || eq
  | Insn.Ltu -> ltu
  | Insn.Geu -> not ltu
  | Insn.Gtu -> (not ltu) && not eq
  | Insn.Leu -> ltu || eq

type state = {
  mem : Memory.t;
  regs : int array;
  mutable pc : int;
  mutable flag : bool;
  mutable cycle : int;
  mutable instret : int;
  mutable fi_on : bool;
  mutable kernel_cycles : int;
  mutable kernel_instret : int;
  mutable alu_retired : int;
  class_counts : int array;
  mutable control_retired : int;
  mutable memory_retired : int;
  mutable taken_branches : int;
  (* load-use interlock: cycle at which each register's value can be
     consumed by EX (only loads set values in the future) *)
  ready : int array;
  decode_cache : Insn.t option option array;
}

let finish st outcome =
  {
    outcome;
    cycles = st.cycle;
    instret = st.instret;
    kernel_cycles = st.kernel_cycles;
    kernel_instret = st.kernel_instret;
    alu_retired = st.alu_retired;
    class_counts = st.class_counts;
    control_retired = st.control_retired;
    memory_retired = st.memory_retired;
    taken_branches = st.taken_branches;
  }

let run ?(config = default_config) mem ~entry =
  let st =
    {
      mem;
      regs = Array.make 32 0;
      pc = entry;
      flag = false;
      cycle = 0;
      instret = 0;
      fi_on = config.fi_always_on;
      kernel_cycles = 0;
      kernel_instret = 0;
      alu_retired = 0;
      class_counts = Array.make Op_class.count 0;
      control_retired = 0;
      memory_retired = 0;
      taken_branches = 0;
      ready = Array.make 32 0;
      decode_cache = Array.make (Memory.size mem / 4) None;
    }
  in
  let reg r = if r = 0 then 0 else st.regs.(r) in
  let set_reg r v = if r <> 0 then st.regs.(r) <- v in
  let wait r = if r <> 0 && st.ready.(r) > st.cycle then st.cycle <- st.ready.(r) in
  let decode_at pc =
    let idx = pc lsr 2 in
    match st.decode_cache.(idx) with
    | Some cached -> cached
    | None ->
      let d = Encode.decode (Memory.read_u32 st.mem pc) in
      st.decode_cache.(idx) <- Some d;
      d
  in
  let invalidate addr =
    (* Wrap with the SRAM decoder mask exactly like the data path: a
       store through a fault-corrupted high-bit pointer clobbers the
       same wrapped location [Memory.write_u32] wrote, so its cached
       decode must be dropped, not skipped as "out of range". *)
    let idx = (addr land (Memory.size st.mem - 1)) lsr 2 in
    st.decode_cache.(idx) <- None
  in
  let alu_result cls a b =
    let clean = Op_class.apply cls a b in
    let faulted =
      if st.fi_on then
        match config.fault_hook with
        | Some hook ->
          let mask = hook ~cycle:st.cycle ~cls ~a ~b ~result:clean in
          if mask = 0 then clean else clean lxor mask
        | None -> clean
      else clean
    in
    st.alu_retired <- st.alu_retired + (if st.fi_on then 1 else 0);
    if st.fi_on then begin
      let i = Op_class.index cls in
      st.class_counts.(i) <- st.class_counts.(i) + 1
    end;
    faulted
  in
  let exception Exit_sim of outcome in
  let run_insn insn =
    let next = st.pc + 4 in
    let jump_to target =
      st.taken_branches <- st.taken_branches + 1;
      st.cycle <- st.cycle + branch_penalty;
      st.pc <- target
    in
    let branch_target n = st.pc + (n lsl 2) in
    let count_control () =
      if st.fi_on then st.control_retired <- st.control_retired + 1
    in
    let count_memory () =
      if st.fi_on then st.memory_retired <- st.memory_retired + 1
    in
    (match insn with
    (* --- ALU register-register --- *)
    | Insn.Add (d, a, b) ->
      wait a; wait b;
      set_reg d (alu_result Op_class.Add (reg a) (reg b));
      st.pc <- next
    | Insn.Sub (d, a, b) ->
      wait a; wait b;
      set_reg d (alu_result Op_class.Sub (reg a) (reg b));
      st.pc <- next
    | Insn.And (d, a, b) ->
      wait a; wait b;
      set_reg d (alu_result Op_class.And_ (reg a) (reg b));
      st.pc <- next
    | Insn.Or (d, a, b) ->
      wait a; wait b;
      set_reg d (alu_result Op_class.Or_ (reg a) (reg b));
      st.pc <- next
    | Insn.Xor (d, a, b) ->
      wait a; wait b;
      set_reg d (alu_result Op_class.Xor_ (reg a) (reg b));
      st.pc <- next
    | Insn.Mul (d, a, b) ->
      wait a; wait b;
      set_reg d (alu_result Op_class.Mul (reg a) (reg b));
      st.pc <- next
    | Insn.Sll (d, a, b) ->
      wait a; wait b;
      set_reg d (alu_result Op_class.Sll (reg a) (reg b));
      st.pc <- next
    | Insn.Srl (d, a, b) ->
      wait a; wait b;
      set_reg d (alu_result Op_class.Srl (reg a) (reg b));
      st.pc <- next
    | Insn.Sra (d, a, b) ->
      wait a; wait b;
      set_reg d (alu_result Op_class.Sra (reg a) (reg b));
      st.pc <- next
    (* --- ALU register-immediate --- *)
    | Insn.Addi (d, a, i) ->
      wait a;
      set_reg d (alu_result Op_class.Add (reg a) (U32.of_signed i));
      st.pc <- next
    | Insn.Andi (d, a, i) ->
      wait a;
      set_reg d (alu_result Op_class.And_ (reg a) (i land 0xFFFF));
      st.pc <- next
    | Insn.Ori (d, a, i) ->
      wait a;
      set_reg d (alu_result Op_class.Or_ (reg a) (i land 0xFFFF));
      st.pc <- next
    | Insn.Xori (d, a, i) ->
      wait a;
      set_reg d (alu_result Op_class.Xor_ (reg a) (U32.of_signed i));
      st.pc <- next
    | Insn.Muli (d, a, i) ->
      wait a;
      set_reg d (alu_result Op_class.Mul (reg a) (U32.of_signed i));
      st.pc <- next
    | Insn.Slli (d, a, s) ->
      wait a;
      set_reg d (alu_result Op_class.Sll (reg a) s);
      st.pc <- next
    | Insn.Srli (d, a, s) ->
      wait a;
      set_reg d (alu_result Op_class.Srl (reg a) s);
      st.pc <- next
    | Insn.Srai (d, a, s) ->
      wait a;
      set_reg d (alu_result Op_class.Sra (reg a) s);
      st.pc <- next
    | Insn.Movhi (d, k) ->
      set_reg d (alu_result Op_class.Or_ 0 ((k land 0xFFFF) lsl 16));
      st.pc <- next
    (* --- compares: the subtractor computes the difference, but the flag
       flip-flop is not an ALU endpoint, so no fault is injected here
       (paper Sec. 2.1: only the 32 EX result-register endpoints can
       fail). Corrupted branching still happens indirectly, through
       previously faulted values and indices reaching a compare. --- *)
    | Insn.Sf (c, a, b) ->
      wait a; wait b;
      let va = reg a and vb = reg b in
      st.flag <- flag_of_cmp c va vb (U32.sub va vb);
      st.pc <- next
    | Insn.Sfi (c, a, i) ->
      wait a;
      let va = reg a and vb = U32.of_signed i in
      st.flag <- flag_of_cmp c va vb (U32.sub va vb);
      st.pc <- next
    (* --- control flow --- *)
    | Insn.J n ->
      count_control ();
      if n = 0 then raise (Exit_sim Watchdog) (* jump-to-self: infinite loop *)
      else jump_to (branch_target n)
    | Insn.Jal n ->
      count_control ();
      set_reg Insn.link_register (U32.of_int (st.pc + 4));
      jump_to (branch_target n)
    | Insn.Jr r ->
      count_control ();
      wait r;
      jump_to (reg r)
    | Insn.Jalr r ->
      count_control ();
      wait r;
      let target = reg r in
      set_reg Insn.link_register (U32.of_int (st.pc + 4));
      jump_to target
    | Insn.Bf n ->
      count_control ();
      if st.flag then jump_to (branch_target n) else st.pc <- next
    | Insn.Bnf n ->
      count_control ();
      if not st.flag then jump_to (branch_target n) else st.pc <- next
    (* --- memory --- *)
    | Insn.Lwz (d, i, a) ->
      count_memory ();
      wait a;
      set_reg d (Memory.read_u32 st.mem (U32.add (reg a) (U32.of_signed i)));
      if d <> 0 then st.ready.(d) <- st.cycle + 1 + load_use_penalty;
      st.pc <- next
    | Insn.Lhz (d, i, a) ->
      count_memory ();
      wait a;
      set_reg d (Memory.read_u16 st.mem (U32.add (reg a) (U32.of_signed i)));
      if d <> 0 then st.ready.(d) <- st.cycle + 1 + load_use_penalty;
      st.pc <- next
    | Insn.Lbz (d, i, a) ->
      count_memory ();
      wait a;
      set_reg d (Memory.read_u8 st.mem (U32.add (reg a) (U32.of_signed i)));
      if d <> 0 then st.ready.(d) <- st.cycle + 1 + load_use_penalty;
      st.pc <- next
    | Insn.Sw (i, a, b) ->
      count_memory ();
      wait a; wait b;
      let addr = U32.add (reg a) (U32.of_signed i) in
      Memory.write_u32 st.mem addr (reg b);
      invalidate addr;
      st.pc <- next
    | Insn.Sh (i, a, b) ->
      count_memory ();
      wait a; wait b;
      let addr = U32.add (reg a) (U32.of_signed i) in
      Memory.write_u16 st.mem addr (reg b);
      invalidate addr;
      st.pc <- next
    | Insn.Sb (i, a, b) ->
      count_memory ();
      wait a; wait b;
      let addr = U32.add (reg a) (U32.of_signed i) in
      Memory.write_u8 st.mem addr (reg b);
      invalidate addr;
      st.pc <- next
    | Insn.Nop k ->
      if k = Insn.nop_exit then raise (Exit_sim Exited)
      else if k = Insn.nop_kernel_begin then st.fi_on <- true
      else if k = Insn.nop_kernel_end then st.fi_on <- (if config.fi_always_on then true else false);
      st.pc <- next);
    st.cycle <- st.cycle + 1;
    st.instret <- st.instret + 1
  in
  try
    while true do
      if st.cycle >= config.max_cycles then raise (Exit_sim Watchdog);
      if st.pc land 3 <> 0 then
        raise (Exit_sim (Trapped (Printf.sprintf "misaligned pc 0x%x" st.pc)));
      (* The fetch address wraps with the SRAM decoder, like data
         accesses: a corrupted jump lands somewhere in memory and the
         core executes whatever it finds (often an illegal encoding). *)
      st.pc <- st.pc land (Memory.size st.mem - 1);
      match decode_at st.pc with
      | None ->
        raise (Exit_sim (Trapped (Printf.sprintf "illegal instruction at 0x%x" st.pc)))
      | Some insn ->
        (match config.trace with
        | Some f -> f ~pc:st.pc insn
        | None -> ());
        let was_on = st.fi_on in
        let before = st.cycle in
        run_insn insn;
        if was_on || st.fi_on then begin
          st.kernel_cycles <- st.kernel_cycles + (st.cycle - before);
          st.kernel_instret <- st.kernel_instret + 1
        end
    done;
    assert false
  with
  | Exit_sim outcome -> finish st outcome
  | Memory.Trap msg -> finish st (Trapped msg)

let ipc stats =
  if stats.cycles = 0 then 0. else float_of_int stats.instret /. float_of_int stats.cycles
