(** Cycle-accurate simulator of the 6-stage in-order OpenRISC-style core.

    The modelled micro-architecture is the case study's: a single-issue
    6-stage pipeline (IF1/IF2/ID/EX/MEM/WB) with full forwarding, a
    single-cycle 32-bit multiplier, single-cycle SRAMs, no branch
    prediction and no branch delay slot. Under these rules an in-order
    core's EX-stage operand values equal the architectural register state
    immediately before the instruction, so the simulator executes each
    instruction atomically at its EX cycle and accounts for the pipeline
    through its two timing hazards:

    - taken control flow resolved in EX flushes the front end:
      {!branch_penalty} bubble cycles;
    - a load's result leaves MEM one cycle after EX, so a dependent
      instruction immediately following a load stalls one cycle
      (load-use interlock).

    This yields close to one instruction per cycle, as the paper states,
    and gives every instruction a definite EX-stage cycle number — the
    cycle at which the fault-injection hook fires for ALU instructions.

    Fault injection follows the paper's case study exactly: only the 32
    EX-stage ALU result endpoints can be corrupted; loads, stores,
    branches and jumps are timing-safe. Compare instructions run through
    the adder in subtract mode and derive the flag from the (possibly
    faulted) difference, so timing errors can redirect branches — the
    dominant cause of crashes and infinite loops. FI is gated to the
    benchmark kernel by [l.nop 0x10] / [l.nop 0x11] markers, and
    [l.nop 0x1] exits the simulation (or1ksim conventions).

    Two execution engines produce bit-identical results (same
    {!stats}, same fault-hook call sequence, pinned by differential
    tests): the {e interpreter} fetches one pre-resolved micro-op
    ({!Sfi_isa.Uop}) per cycle from an unboxed decode table, and the
    {e compiled} engine groups straight-line runs into cached basic
    blocks executed without per-instruction fetch/decode/watchdog
    overhead, with store-driven invalidation for self-modifying code.
    See DESIGN.md §12 for the cycle-exactness argument. *)

open Sfi_util

val branch_penalty : int
(** 2: front-end bubbles after taken control flow resolved in EX. *)

val load_use_penalty : int
(** 1: stall between a load and an immediately dependent consumer. *)

type fault_hook =
  cycle:int -> cls:Op_class.t -> a:U32.t -> b:U32.t -> result:U32.t -> U32.t
(** Called at the EX cycle of every ALU instruction while FI is active;
    returns the 32-bit fault mask XORed into the result register (0 for
    no fault). *)

type config = {
  max_cycles : int;        (** watchdog: exceeded -> [Watchdog] outcome *)
  fault_hook : fault_hook option;
  fi_always_on : bool;     (** inject outside kernel markers too *)
  trace : (pc:int -> Sfi_isa.Insn.t -> unit) option;
      (** called before every retired instruction (debugging aid) *)
}

val default_config : config
(** 50M-cycle watchdog, no fault hook, no trace. *)

type outcome =
  | Exited                 (** reached [l.nop 0x1] *)
  | Watchdog               (** cycle budget exhausted or jump-to-self *)
  | Trapped of string      (** illegal instruction, bad memory access... *)

type stats = {
  outcome : outcome;
  cycles : int;            (** total cycles including stalls and flushes *)
  instret : int;           (** retired instructions *)
  kernel_cycles : int;     (** cycles spent inside the FI window *)
  kernel_instret : int;
  alu_retired : int;       (** ALU-class instructions inside the window *)
  class_counts : int array;(** per {!Op_class.index}, inside the window *)
  control_retired : int;   (** branches/jumps inside the window *)
  memory_retired : int;    (** loads/stores inside the window *)
  taken_branches : int;
}

type engine =
  | Auto      (** resolves to [Compiled] *)
  | Interp    (** per-instruction micro-op interpreter *)
  | Compiled  (** threaded-code basic-block trace cache *)

val set_default_engine : engine -> unit
(** Sets the process-wide engine used when {!run} gets no [?engine]
    (the [--cpu-engine] flag lands here). The initial default is
    [Auto], overridable by the [SFI_CPU_ENGINE] environment variable
    ("interp" or "compiled"). *)

val engine_name : engine -> string

type snapshot
(** Full architectural state of the core at an instruction boundary —
    pc, flag, registers, interlock table, cycle/retire counters and the
    FI-window flag — excluding memory (restored separately by the
    caller) and the decode/block caches, which are derived state
    rebuilt lazily from memory. Snapshots are plain data (marshalable)
    and safe to keep across runs: both capture and restore copy the
    embedded arrays. *)

val snapshot_cycle : snapshot -> int
(** The cycle count at which the snapshot was taken. *)

val run :
  ?config:config -> ?engine:engine -> ?resume:snapshot -> Memory.t -> entry:int -> stats
(** Executes until exit, watchdog, or trap. The memory is mutated in
    place (reload or {!Memory.copy} a pristine image between trials).
    [engine] (default: the {!set_default_engine} value) picks the
    execution engine; both produce bit-identical stats and fault-hook
    streams, so this is purely a performance knob.

    [resume] starts from a {!snapshot} instead of the reset state
    ([entry] is then ignored): given the same memory contents the
    snapshot was taken against, the suffix executes cycle-for-cycle
    identically to the run that produced it — including the absolute
    [max_cycles] watchdog, since the snapshot carries its cycle
    count — under either engine. *)

val run_recording :
  ?config:config ->
  stride:int ->
  on_snapshot:(snapshot -> unit) ->
  Memory.t ->
  entry:int ->
  stats
(** Like [run] with the interpreter engine, additionally calling
    [on_snapshot] with the pre-instruction state at the first
    instruction boundary at or after every [stride]-cycle mark
    (cycle 0 included). The callback must copy any memory pages it
    wants to pair with the snapshot before returning — the simulation
    keeps mutating the same {!Memory.t}. *)

val ipc : stats -> float
(** Retired instructions per cycle. *)
