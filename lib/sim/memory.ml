exception Trap of string

type t = Bytes.t

let trap fmt = Printf.ksprintf (fun m -> raise (Trap m)) fmt

let create ~size =
  if size <= 0 || size land (size - 1) <> 0 then
    invalid_arg "Memory.create: size must be a positive power of two";
  Bytes.make size '\000'

let size t = Bytes.length t

let copy t = Bytes.copy t

(* The SRAM address decoder ignores address bits above the macro's width:
   accesses wrap, they do not fault. This matters under fault injection,
   where corrupted pointers routinely carry flipped high bits — on the
   real core such an access reads or clobbers *some* location and the
   program often limps on, which is exactly the behaviour behind the
   paper's gradual finish/correct transitions. Misalignment, by contrast,
   raises a real OR1K alignment exception. *)
let check t addr bytes what =
  ignore t;
  if addr land (bytes - 1) <> 0 then trap "misaligned %s at 0x%x" what addr

let wrap t addr = addr land (Bytes.length t - 1)

let read_u32 t addr =
  check t addr 4 "word read";
  let addr = wrap t addr in
  (Char.code (Bytes.unsafe_get t addr) lsl 24)
  lor (Char.code (Bytes.unsafe_get t (addr + 1)) lsl 16)
  lor (Char.code (Bytes.unsafe_get t (addr + 2)) lsl 8)
  lor Char.code (Bytes.unsafe_get t (addr + 3))

let read_u16 t addr =
  check t addr 2 "halfword read";
  let addr = wrap t addr in
  (Char.code (Bytes.unsafe_get t addr) lsl 8) lor Char.code (Bytes.unsafe_get t (addr + 1))

let read_u8 t addr =
  let addr = wrap t addr in
  Char.code (Bytes.unsafe_get t addr)

let write_u32 t addr v =
  check t addr 4 "word write";
  let addr = wrap t addr in
  Bytes.unsafe_set t addr (Char.unsafe_chr ((v lsr 24) land 0xFF));
  Bytes.unsafe_set t (addr + 1) (Char.unsafe_chr ((v lsr 16) land 0xFF));
  Bytes.unsafe_set t (addr + 2) (Char.unsafe_chr ((v lsr 8) land 0xFF));
  Bytes.unsafe_set t (addr + 3) (Char.unsafe_chr (v land 0xFF))

let write_u16 t addr v =
  check t addr 2 "halfword write";
  let addr = wrap t addr in
  Bytes.unsafe_set t addr (Char.unsafe_chr ((v lsr 8) land 0xFF));
  Bytes.unsafe_set t (addr + 1) (Char.unsafe_chr (v land 0xFF))

let write_u8 t addr v =
  let addr = wrap t addr in
  Bytes.unsafe_set t addr (Char.unsafe_chr (v land 0xFF))

let load_program t (p : Sfi_isa.Program.t) =
  Array.iter (fun (addr, w) -> write_u32 t addr w) p.Sfi_isa.Program.words

let sub_string t ~pos ~len = Bytes.sub_string t pos len

let blit_from_string t ~pos s = Bytes.blit_string s 0 t pos (String.length s)

let equal_range a b ~pos ~len =
  let rec go i = i >= len || (Bytes.unsafe_get a (pos + i) = Bytes.unsafe_get b (pos + i) && go (i + 1)) in
  go 0

let read_u32_array t ~addr ~count = Array.init count (fun i -> read_u32 t (addr + (4 * i)))

let write_u32_array t ~addr values =
  Array.iteri (fun i v -> write_u32 t (addr + (4 * i)) v) values
