(** Unified instruction/data memory (single-cycle SRAM model).

    Big-endian, as OR1K. The address decoder ignores bits above the SRAM
    width, so out-of-range accesses {e wrap} instead of faulting — on the
    real core a fault-corrupted pointer reads or clobbers some location
    and execution continues, which is what gives the paper its gradual
    finish/correct transition regions. Misaligned word or halfword
    accesses raise {!Trap} (the OR1K alignment exception). *)

open Sfi_util

exception Trap of string

type t

val create : size:int -> t
(** [size] in bytes, zero-initialized, must be a positive power of two. *)

val size : t -> int

val copy : t -> t
(** Snapshot; used to reset state between Monte-Carlo trials. *)

val load_program : t -> Sfi_isa.Program.t -> unit
(** Writes all initialized words of the image. Raises {!Trap} if the image
    does not fit. *)

val read_u32 : t -> int -> U32.t
val read_u16 : t -> int -> int
val read_u8 : t -> int -> int

val write_u32 : t -> int -> U32.t -> unit
val write_u16 : t -> int -> int -> unit
val write_u8 : t -> int -> int -> unit

val sub_string : t -> pos:int -> len:int -> string
(** Raw byte extraction (page granularity, for sparse snapshots). *)

val blit_from_string : t -> pos:int -> string -> unit
(** Overwrites [String.length s] bytes at [pos] (page restore). *)

val equal_range : t -> t -> pos:int -> len:int -> bool
(** Byte equality of one range of two same-sized memories (dirty-page
    detection against a shadow copy). *)

val read_u32_array : t -> addr:int -> count:int -> U32.t array
(** Bulk read of consecutive words (for collecting benchmark outputs). *)

val write_u32_array : t -> addr:int -> U32.t array -> unit
