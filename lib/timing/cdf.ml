type t = float array (* sorted ascending *)

(* A NaN sample would sort to an arbitrary position under any
   comparator and silently poison every quantile/probability query
   downstream; fail loudly instead. *)
let of_samples_owned ys =
  if Array.length ys = 0 then invalid_arg "Cdf.of_samples: empty";
  Array.iter (fun x -> if Float.is_nan x then invalid_arg "Cdf.of_samples: NaN sample") ys;
  Array.sort Float.compare ys;
  ys

let of_samples xs = of_samples_owned (Array.copy xs)

let n t = Array.length t

let min_value t = t.(0)

let max_value t = t.(Array.length t - 1)

(* Number of samples <= x. *)
let count_leq t x =
  let lo = ref 0 and hi = ref (Array.length t) in
  while !hi > !lo do
    let mid = (!lo + !hi) / 2 in
    if t.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let prob_greater t x =
  float_of_int (Array.length t - count_leq t x) /. float_of_int (Array.length t)

let prob_leq t x = 1. -. prob_greater t x

let quantile t q =
  if q <= 0. then t.(0)
  else if q >= 1. then t.(Array.length t - 1)
  else begin
    let n = Array.length t in
    let k = int_of_float (Float.ceil (q *. float_of_int n)) - 1 in
    t.(max 0 (min (n - 1) k))
  end

let mean t = Array.fold_left ( +. ) 0. t /. float_of_int (Array.length t)

let samples t = t
