(** Empirical cumulative distributions of arrival times.

    Backed by a sorted sample array; evaluation is a binary search. The
    paper's per-instruction, per-endpoint timing-error probability
    [P_{E,V,I}(f)] is exactly [prob_greater] of such a distribution at the
    (noise-scaled) clock period. *)

type t

val of_samples : float array -> t
(** Copies and sorts. Raises [Invalid_argument] on an empty array. *)

val of_samples_owned : float array -> t
(** Takes ownership of the array and sorts it in place (no copy): for
    callers that build the sample array expressly for the CDF, e.g. the
    characterization kernel's per-endpoint columns. Same validation and
    resulting distribution as {!of_samples}. *)

val n : t -> int

val min_value : t -> float
val max_value : t -> float

val prob_greater : t -> float -> float
(** [prob_greater t x] is the fraction of samples strictly greater
    than [x]. *)

val prob_leq : t -> float -> float
(** [1. -. prob_greater t x]. *)

val quantile : t -> float -> float
(** [quantile t q] with [q] in [\[0,1\]]: the smallest sample [s] such that
    at least a fraction [q] of samples are [<= s]. *)

val mean : t -> float

val samples : t -> float array
(** The sorted samples (not a copy; treat as read-only). *)
