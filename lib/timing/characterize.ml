open Sfi_util
open Sfi_netlist

type operand_profile = {
  profile_name : string;
  sample : Rng.t -> U32.t * U32.t;
}

let uniform32 =
  {
    profile_name = "uniform32";
    sample = (fun rng -> (Rng.bits32 rng, Rng.bits32 rng));
  }

let uniform16 =
  {
    profile_name = "uniform16";
    sample = (fun rng -> (Rng.bits32 rng land 0xFFFF, Rng.bits32 rng land 0xFFFF));
  }

let uniform8 =
  {
    profile_name = "uniform8";
    sample = (fun rng -> (Rng.bits32 rng land 0xFF, Rng.bits32 rng land 0xFF));
  }

let obs_runs = Sfi_obs.Counter.make "characterize.runs"

(* One trial = one randomized-operand DTA cycle. [classes] and [trials]
   count the gate-level Monte-Carlo work actually performed, so a run
   served whole from the persistent cache leaves both at zero — they
   depend on disk state, hence ~det:false (excluded from the
   determinism signature, which must match between cold and warm runs).
   [runs] counts requests and stays deterministic. *)
let obs_classes = Sfi_obs.Counter.make ~det:false "characterize.classes"

let obs_trials = Sfi_obs.Counter.make ~det:false "characterize.trials"

let obs_wall = Sfi_obs.Span.make "characterize.wall"

type class_db = {
  cls : Op_class.t;
  profile_name : string;
  endpoint_cdfs : Cdf.t array;
  cycle_arrivals : float array array;
  max_settle : float;
}

type t = {
  vdd : float;
  setup_ps : float;
  cycles : int;
  classes : class_db array;
  max_settle : float;
}

let characterize_class ~cycles ~rng ~vdd ~vdd_model ~lib ~profile (alu : Alu.t) cls =
  Sfi_obs.Counter.incr obs_classes;
  Sfi_obs.Counter.add obs_trials cycles;
  let dta = Dta.create ~vdd ~vdd_model ~lib alu.Alu.circuit in
  (* Select the class once; the select settling cycle is not recorded. *)
  Array.iter
    (fun (c', net) -> Dta.set_input dta net (c' = cls))
    alu.Alu.selects;
  Dta.cycle dta;
  let width = Alu.width in
  let endpoints = alu.Alu.result in
  let cycle_arrivals = Array.make_matrix cycles width 0. in
  let max_settle = ref 0. in
  for k = 0 to cycles - 1 do
    let a, b = profile.sample rng in
    Dta.set_input_vec dta alu.Alu.a a;
    Dta.set_input_vec dta alu.Alu.b b;
    Dta.cycle dta;
    let got = Dta.read_vec dta endpoints in
    let expect = Op_class.apply cls a b in
    if got <> expect then
      failwith
        (Printf.sprintf
           "Characterize: DTA functional mismatch for %s a=%08x b=%08x: got %08x expected %08x"
           (Op_class.name cls) a b got expect);
    let row = cycle_arrivals.(k) in
    for e = 0 to width - 1 do
      let s = Dta.settle_time dta endpoints.(e) in
      row.(e) <- s;
      if s > !max_settle then max_settle := s
    done
  done;
  let endpoint_cdfs =
    Array.init width (fun e -> Cdf.of_samples (Array.init cycles (fun k -> cycle_arrivals.(k).(e))))
  in
  {
    cls;
    profile_name = profile.profile_name;
    endpoint_cdfs;
    cycle_arrivals;
    max_settle = !max_settle;
  }

(* Content fingerprint of everything the characterization result depends
   on. The circuit's [base_delay] array already folds in sizing, process
   variation and corner scaling, so the netlist structure plus delays
   plus the run parameters determine the database bit-for-bit. *)
let fingerprint ~cycles ~seed ~setup_ps ~vdd_model ~lib
    ~(profile_for : Op_class.t -> operand_profile) ~vdd (alu : Alu.t) =
  let c = alu.Alu.circuit in
  let fp = Sfi_cache.Fingerprint.create "sfi-chardb/1" in
  let open Sfi_cache.Fingerprint in
  add_int fp c.Circuit.n_nets;
  add_int_array fp c.Circuit.kind_code;
  add_int_array fp c.Circuit.gate_out;
  add_int_array fp c.Circuit.fanin_off;
  add_int_array fp c.Circuit.fanin_net;
  add_float_array fp c.Circuit.base_delay;
  Array.iter
    (fun (name, net) ->
      add_string fp name;
      add_int fp net)
    c.Circuit.pis;
  Array.iter
    (fun (name, net) ->
      add_string fp name;
      add_int fp net)
    c.Circuit.pos;
  add_string fp (Cell_lib.to_text lib);
  List.iter
    (fun (v, d) ->
      add_float fp v;
      add_float fp d)
    (Vdd_model.anchors vdd_model);
  add_float fp vdd;
  add_float fp setup_ps;
  add_int fp cycles;
  add_int fp seed;
  List.iter (fun cls -> add_string fp (profile_for cls).profile_name) Op_class.all;
  hex fp

let compute ~cycles ~seed ~vdd_model ~lib ~profile_for ?jobs ~vdd ~setup_ps alu =
  let root = Rng.of_int seed in
  (* Split the per-class RNGs from the root seed in class order before
     dispatch; each class then runs on its own Dta.t instance, so the
     characterization is bit-identical for every job count. *)
  let tagged =
    List.rev (List.fold_left (fun acc cls -> (cls, Rng.split root) :: acc) [] Op_class.all)
  in
  let classes =
    Pool.using ?jobs (fun pool ->
        Pool.map pool
          (fun (cls, rng) ->
            characterize_class ~cycles ~rng ~vdd ~vdd_model ~lib
              ~profile:(profile_for cls) alu cls)
          (Array.of_list tagged))
  in
  let max_settle =
    Array.fold_left (fun acc (c : class_db) -> Float.max acc c.max_settle) 0. classes
  in
  { vdd; setup_ps; cycles; classes; max_settle }

let run ?(cycles = 8000) ?(seed = 0xD7A) ?(setup_ps = Sta.default_setup_ps)
    ?(vdd_model = Vdd_model.default) ?(lib = Cell_lib.default)
    ?(profile_for = fun _ -> uniform32) ?jobs ?spec ~vdd (alu : Alu.t) =
  if cycles <= 0 then invalid_arg "Characterize.run: cycles must be positive";
  (* A spec's job count wins over the legacy [?jobs] knob; its other
     fields (trial policy, seed, checkpoint) describe Monte-Carlo
     campaigns and do not apply to characterization — in particular the
     characterization seed stays [?seed], keeping chardb cache
     fingerprints stable across campaign-spec changes. *)
  let jobs =
    match spec with Some (s : Spec.t) -> s.Spec.jobs | None -> jobs
  in
  Sfi_obs.Counter.incr obs_runs;
  Sfi_obs.Span.time obs_wall @@ fun () ->
  let key =
    if Sfi_cache.enabled () then
      Some (fingerprint ~cycles ~seed ~setup_ps ~vdd_model ~lib ~profile_for ~vdd alu)
    else None
  in
  let cached =
    match key with
    | None -> None
    | Some key -> (
        match (Sfi_cache.load ~namespace:"chardb" ~key : t option) with
        | Some t
          when t.vdd = vdd && t.cycles = cycles
               && Array.length t.classes = List.length Op_class.all ->
            Some t
        | _ -> None)
  in
  match cached with
  | Some t -> t
  | None ->
      let t = compute ~cycles ~seed ~vdd_model ~lib ~profile_for ?jobs ~vdd ~setup_ps alu in
      (match key with
      | Some key -> Sfi_cache.store ~namespace:"chardb" ~key t
      | None -> ());
      t

let class_db t cls = t.classes.(Op_class.index cls)

(* The violation condition is (settle + setup) * scale > period, i.e.
   settle > period / scale - setup. *)
let threshold t ~period_ps ~scale = (period_ps /. scale) -. t.setup_ps

let error_probability t cls ~endpoint ~period_ps ~scale =
  let db = class_db t cls in
  Cdf.prob_greater db.endpoint_cdfs.(endpoint) (threshold t ~period_ps ~scale)

let class_first_failure_mhz t cls ~scale =
  let db = class_db t cls in
  (* Zero error probability iff period/scale - setup >= max settle. *)
  let period = (db.max_settle +. t.setup_ps) *. scale in
  1e6 /. period

let violation_mask t cls ~cycle ~period_ps ~scale =
  let db = class_db t cls in
  let row = db.cycle_arrivals.(cycle) in
  let thr = threshold t ~period_ps ~scale in
  let mask = ref 0 in
  Array.iteri (fun e s -> if s > thr then mask := !mask lor (1 lsl e)) row;
  !mask
