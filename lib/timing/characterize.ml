open Sfi_util
open Sfi_netlist

type operand_profile = {
  profile_name : string;
  sample : Rng.t -> U32.t * U32.t;
}

let uniform32 =
  {
    profile_name = "uniform32";
    sample = (fun rng -> (Rng.bits32 rng, Rng.bits32 rng));
  }

let uniform16 =
  {
    profile_name = "uniform16";
    sample = (fun rng -> (Rng.bits32 rng land 0xFFFF, Rng.bits32 rng land 0xFFFF));
  }

let uniform8 =
  {
    profile_name = "uniform8";
    sample = (fun rng -> (Rng.bits32 rng land 0xFF, Rng.bits32 rng land 0xFF));
  }

type engine = Auto | Scalar | Packed

(* Process-wide default, following the Pool.set_default_jobs /
   Sfi_cache.set_dir idiom so CLI flags (and the SFI_ENGINE variable,
   for harnesses without their own flag plumbing, e.g. the golden tests
   under CI's packed leg) reach every characterization in the
   process. *)
let default_engine =
  ref
    (match Option.map String.lowercase_ascii (Sys.getenv_opt "SFI_ENGINE") with
    | Some "scalar" -> Scalar
    | Some "packed" -> Packed
    | _ -> Auto)

let set_default_engine e = default_engine := e

let engine_name = function Auto -> "auto" | Scalar -> "scalar" | Packed -> "packed"

let obs_runs = Sfi_obs.Counter.make "characterize.runs"

(* One trial = one randomized-operand DTA cycle. [classes] and [trials]
   count the gate-level Monte-Carlo work actually performed, so a run
   served whole from the persistent cache leaves both at zero — they
   depend on disk state, hence ~det:false (excluded from the
   determinism signature, which must match between cold and warm runs).
   [runs] counts requests and stays deterministic. *)
let obs_classes = Sfi_obs.Counter.make ~det:false "characterize.classes"

let obs_trials = Sfi_obs.Counter.make ~det:false "characterize.trials"

let obs_wall = Sfi_obs.Span.make "characterize.wall"

(* Packed-kernel utilization: [bitsim.lanes] sums the active lanes over
   [bitsim.batches] packed sweeps (their ratio against Bitsim.lanes is
   the fill factor; only the final partial batch of a class dilutes it).
   [bitsim.fallbacks] counts packed requests served by the scalar
   kernel because the target lacks 63-bit words. All cache-dependent
   work counts, hence ~det:false like the dta.* family. *)
let obs_batches = Sfi_obs.Counter.make ~det:false "bitsim.batches"

let obs_lanes = Sfi_obs.Counter.make ~det:false "bitsim.lanes"

let obs_fallbacks = Sfi_obs.Counter.make ~det:false "bitsim.fallbacks"

type class_db = {
  cls : Op_class.t;
  profile_name : string;
  endpoint_cdfs : Cdf.t array;
  cycle_arrivals : float array array;
  max_settle : float;
}

type t = {
  vdd : float;
  setup_ps : float;
  cycles : int;
  classes : class_db array;
  max_settle : float;
}

let functional_mismatch cls a b got expect =
  failwith
    (Printf.sprintf
       "Characterize: DTA functional mismatch for %s a=%08x b=%08x: got %08x expected %08x"
       (Op_class.name cls) a b got expect)

(* Shared tail of both kernels: one transpose pass over [cycle_arrivals]
   fills every endpoint's sample column, and [Cdf.of_samples_owned]
   sorts each column in place — instead of allocating (and then copying
   again) a fresh cycles-long array per endpoint. *)
let finish ~(profile : operand_profile) cls cycle_arrivals max_settle =
  let cycles = Array.length cycle_arrivals in
  let width = Alu.width in
  let cols = Array.init width (fun _ -> Array.make cycles 0.) in
  for k = 0 to cycles - 1 do
    let row = cycle_arrivals.(k) in
    for e = 0 to width - 1 do
      cols.(e).(k) <- row.(e)
    done
  done;
  {
    cls;
    profile_name = profile.profile_name;
    endpoint_cdfs = Array.map Cdf.of_samples_owned cols;
    cycle_arrivals;
    max_settle;
  }

let characterize_class_scalar ~cycles ~rng ~vdd ~vdd_model ~lib ~profile (alu : Alu.t)
    cls =
  let dta = Dta.create ~vdd ~vdd_model ~lib alu.Alu.circuit in
  (* Select the class once; the select settling cycle is not recorded. *)
  Array.iter
    (fun (c', net) -> Dta.set_input dta net (c' = cls))
    alu.Alu.selects;
  Dta.cycle dta;
  let width = Alu.width in
  let endpoints = alu.Alu.result in
  let cycle_arrivals = Array.make_matrix cycles width 0. in
  let max_settle = ref 0. in
  for k = 0 to cycles - 1 do
    let a, b = profile.sample rng in
    Dta.set_input_vec dta alu.Alu.a a;
    Dta.set_input_vec dta alu.Alu.b b;
    Dta.cycle dta;
    let got = Dta.read_vec dta endpoints in
    let expect = Op_class.apply cls a b in
    if got <> expect then functional_mismatch cls a b got expect;
    let row = cycle_arrivals.(k) in
    for e = 0 to width - 1 do
      let s = Dta.settle_time dta endpoints.(e) in
      row.(e) <- s;
      if s > !max_settle then max_settle := s
    done
  done;
  finish ~profile cls cycle_arrivals !max_settle

(* The packed kernel: ⌈cycles/lanes⌉ sweeps of [Bitsim.lanes] trials.

   The scalar kernel is a *chain* — trial [k]'s events are launched by
   the operand transition from trial [k-1]'s settled state. To replicate
   that chain lane-parallel, each sweep (1) samples its lane operands in
   plain index order, so the RNG stream is identical to the scalar
   loop's, (2) stages every lane's *predecessor* operands (lane l gets
   lane l-1's pair; lane 0 continues from the previous sweep) and
   settles them with one functional [prime] pass — valid because the
   settled state of an acyclic circuit is a pure function of its inputs
   — and (3) stages the new operands and runs one masked-event [cycle],
   which plays out every lane's transition bit-identically to its
   scalar counterpart. Inactive lanes of the final partial sweep carry
   a = b = 0 on both sides of the transition and stay inert. *)
let characterize_class_packed ~cycles ~rng ~vdd ~vdd_model ~lib ~profile (alu : Alu.t)
    cls =
  let lanes = Bitsim.lanes in
  let width = Alu.width in
  let endpoints = alu.Alu.result in
  let dta =
    Dta_packed.create ~vdd ~vdd_model ~lib ~watch:endpoints alu.Alu.circuit
  in
  (* Selects are constant across trials: stage once (all lanes), applied
     by the first [prime]. The scalar kernel's select settling cycle is
     likewise unrecorded. *)
  Array.iter
    (fun (c', net) ->
      Dta_packed.set_input_word dta net (if c' = cls then Bitsim.full_mask else 0))
    alu.Alu.selects;
  let cycle_arrivals = Array.make_matrix cycles width 0. in
  let max_settle = ref 0. in
  let a_ops = Array.make lanes 0 and b_ops = Array.make lanes 0 in
  let new_a = Array.make width 0 and new_b = Array.make width 0 in
  let carry_a = ref 0 and carry_b = ref 0 in
  let k = ref 0 in
  while !k < cycles do
    let active = min lanes (cycles - !k) in
    Sfi_obs.Counter.incr obs_batches;
    Sfi_obs.Counter.add obs_lanes active;
    for l = 0 to active - 1 do
      let a, b = profile.sample rng in
      a_ops.(l) <- a;
      b_ops.(l) <- b
    done;
    let mask = Bitsim.lane_mask ~active in
    (* Bit-plane words of the new operands, and — as their lane-shift
       plus the previous sweep's carry — of each lane's predecessor
       operands. *)
    for i = 0 to width - 1 do
      let wa = ref 0 and wb = ref 0 in
      for l = 0 to active - 1 do
        wa := !wa lor (((a_ops.(l) lsr i) land 1) lsl l);
        wb := !wb lor (((b_ops.(l) lsr i) land 1) lsl l)
      done;
      new_a.(i) <- !wa;
      new_b.(i) <- !wb;
      Dta_packed.set_input_word dta alu.Alu.a.(i)
        (((!wa lsl 1) lor ((!carry_a lsr i) land 1)) land mask);
      Dta_packed.set_input_word dta alu.Alu.b.(i)
        (((!wb lsl 1) lor ((!carry_b lsr i) land 1)) land mask)
    done;
    Dta_packed.prime dta;
    for i = 0 to width - 1 do
      Dta_packed.set_input_word dta alu.Alu.a.(i) new_a.(i);
      Dta_packed.set_input_word dta alu.Alu.b.(i) new_b.(i)
    done;
    Dta_packed.cycle dta;
    for l = 0 to active - 1 do
      let got = Dta_packed.read_lane_vec dta endpoints ~lane:l in
      let expect = Op_class.apply cls a_ops.(l) b_ops.(l) in
      if got <> expect then functional_mismatch cls a_ops.(l) b_ops.(l) got expect;
      let row = cycle_arrivals.(!k + l) in
      for e = 0 to width - 1 do
        let s = Dta_packed.settle_time dta endpoints.(e) ~lane:l in
        row.(e) <- s;
        if s > !max_settle then max_settle := s
      done
    done;
    carry_a := a_ops.(active - 1);
    carry_b := b_ops.(active - 1);
    k := !k + active
  done;
  finish ~profile cls cycle_arrivals !max_settle

let characterize_class ~engine ~cycles ~rng ~vdd ~vdd_model ~lib ~profile alu cls =
  Sfi_obs.Counter.incr obs_classes;
  Sfi_obs.Counter.add obs_trials cycles;
  let kernel =
    match engine with
    | Scalar -> characterize_class_scalar
    | Auto | Packed ->
      if Bitsim.available () then characterize_class_packed
      else begin
        (* Narrow native ints (32-bit / javascript targets): the packed
           word layout is not validated there, serve scalar instead. *)
        Sfi_obs.Counter.incr obs_fallbacks;
        characterize_class_scalar
      end
  in
  kernel ~cycles ~rng ~vdd ~vdd_model ~lib ~profile alu cls

(* Content fingerprint of everything the characterization result depends
   on. The circuit's [base_delay] array already folds in sizing, process
   variation and corner scaling, so the netlist structure plus delays
   plus the run parameters determine the database bit-for-bit. *)
let fingerprint ~cycles ~seed ~setup_ps ~vdd_model ~lib
    ~(profile_for : Op_class.t -> operand_profile) ~vdd (alu : Alu.t) =
  let c = alu.Alu.circuit in
  let fp = Sfi_cache.Fingerprint.create "sfi-chardb/1" in
  let open Sfi_cache.Fingerprint in
  add_int fp c.Circuit.n_nets;
  add_int_array fp c.Circuit.kind_code;
  add_int_array fp c.Circuit.gate_out;
  add_int_array fp c.Circuit.fanin_off;
  add_int_array fp c.Circuit.fanin_net;
  add_float_array fp c.Circuit.base_delay;
  Array.iter
    (fun (name, net) ->
      add_string fp name;
      add_int fp net)
    c.Circuit.pis;
  Array.iter
    (fun (name, net) ->
      add_string fp name;
      add_int fp net)
    c.Circuit.pos;
  add_string fp (Cell_lib.to_text lib);
  List.iter
    (fun (v, d) ->
      add_float fp v;
      add_float fp d)
    (Vdd_model.anchors vdd_model);
  add_float fp vdd;
  add_float fp setup_ps;
  add_int fp cycles;
  add_int fp seed;
  List.iter (fun cls -> add_string fp (profile_for cls).profile_name) Op_class.all;
  hex fp

let compute ~engine ~cycles ~seed ~vdd_model ~lib ~profile_for ?jobs ~vdd ~setup_ps alu
    =
  let root = Rng.of_int seed in
  (* Split the per-class RNGs from the root seed in class order before
     dispatch; each class then runs on its own DTA instance, so the
     characterization is bit-identical for every job count. *)
  let tagged =
    List.rev (List.fold_left (fun acc cls -> (cls, Rng.split root) :: acc) [] Op_class.all)
  in
  let classes =
    Pool.using ?jobs (fun pool ->
        Pool.map pool
          (fun (cls, rng) ->
            characterize_class ~engine ~cycles ~rng ~vdd ~vdd_model ~lib
              ~profile:(profile_for cls) alu cls)
          (Array.of_list tagged))
  in
  let max_settle =
    Array.fold_left (fun acc (c : class_db) -> Float.max acc c.max_settle) 0. classes
  in
  { vdd; setup_ps; cycles; classes; max_settle }

let run ?(cycles = 8000) ?(seed = 0xD7A) ?(setup_ps = Sta.default_setup_ps)
    ?(vdd_model = Vdd_model.default) ?(lib = Cell_lib.default)
    ?(profile_for = fun _ -> uniform32) ?jobs ?spec ?engine ~vdd (alu : Alu.t) =
  if cycles <= 0 then invalid_arg "Characterize.run: cycles must be positive";
  (* Resolved at call time so set_default_engine between runs takes
     effect; the engine deliberately stays OUT of the cache fingerprint
     below — both kernels produce bit-identical databases, so an entry
     written under one engine must be served to the other. *)
  let engine = match engine with Some e -> e | None -> !default_engine in
  (* A spec's job count wins over the legacy [?jobs] knob; its other
     fields (trial policy, seed, checkpoint) describe Monte-Carlo
     campaigns and do not apply to characterization — in particular the
     characterization seed stays [?seed], keeping chardb cache
     fingerprints stable across campaign-spec changes. *)
  let jobs =
    match spec with Some (s : Spec.t) -> s.Spec.jobs | None -> jobs
  in
  Sfi_obs.Counter.incr obs_runs;
  Sfi_obs.Span.time obs_wall @@ fun () ->
  let key =
    if Sfi_cache.enabled () then
      Some (fingerprint ~cycles ~seed ~setup_ps ~vdd_model ~lib ~profile_for ~vdd alu)
    else None
  in
  let cached =
    match key with
    | None -> None
    | Some key -> (
        match (Sfi_cache.load ~namespace:"chardb" ~key : t option) with
        | Some t
          when t.vdd = vdd && t.cycles = cycles
               && Array.length t.classes = List.length Op_class.all ->
            Some t
        | _ -> None)
  in
  match cached with
  | Some t -> t
  | None ->
      let t =
        compute ~engine ~cycles ~seed ~vdd_model ~lib ~profile_for ?jobs ~vdd
          ~setup_ps alu
      in
      (match key with
      | Some key -> Sfi_cache.store ~namespace:"chardb" ~key t
      | None -> ());
      t

let class_db t cls = t.classes.(Op_class.index cls)

(* The violation condition is (settle + setup) * scale > period, i.e.
   settle > period / scale - setup. *)
let threshold t ~period_ps ~scale = (period_ps /. scale) -. t.setup_ps

let error_probability t cls ~endpoint ~period_ps ~scale =
  let db = class_db t cls in
  Cdf.prob_greater db.endpoint_cdfs.(endpoint) (threshold t ~period_ps ~scale)

let class_first_failure_mhz t cls ~scale =
  let db = class_db t cls in
  (* Zero error probability iff period/scale - setup >= max settle. *)
  let period = (db.max_settle +. t.setup_ps) *. scale in
  1e6 /. period

(* Campaign per-cycle hot path: a plain for loop (the closure an
   Array.iteri would allocate is per call here, not per element). *)
let violation_mask t cls ~cycle ~period_ps ~scale =
  let db = class_db t cls in
  let row = db.cycle_arrivals.(cycle) in
  let thr = threshold t ~period_ps ~scale in
  let mask = ref 0 in
  for e = 0 to Array.length row - 1 do
    if Array.unsafe_get row e > thr then mask := !mask lor (1 lsl e)
  done;
  !mask
