(** Instruction-aware statistical timing characterization (the core of the
    paper's model C).

    Runs the gate-level characterization kernel: for each ALU operation
    class, the DTA simulator executes [cycles] back-to-back operations with
    randomized operands (the paper uses an 8 kCycle kernel) and records the
    settle time of every endpoint in every cycle. The resulting empirical
    distributions give the timing-error probability
    [P_{E,V,I}(f) = v_f /. n_I] of paper §3.4: the fraction of
    characterization cycles in which the dynamic path delay to endpoint
    [E] (plus setup) exceeds the clock period [1/f].

    Characterization is conditioned on an operand profile per class;
    besides the default uniform 32-bit profile, a 16-bit-range profile
    reproduces the paper's 16-bit addition / multiplication experiments
    (Fig. 4). *)

open Sfi_util
open Sfi_netlist

type operand_profile = {
  profile_name : string;
  sample : Rng.t -> U32.t * U32.t;  (** draws one (a, b) operand pair *)
}

val uniform32 : operand_profile
(** Both operands uniform over the full 32-bit range. *)

val uniform16 : operand_profile
(** Both operands uniform over a 16-bit value range (paper's "16-bit"
    instruction variants). *)

val uniform8 : operand_profile

type engine =
  | Auto  (** {!Packed} when {!Sfi_netlist.Bitsim.available}, else scalar *)
  | Scalar  (** one {!Dta} cycle per trial *)
  | Packed
      (** {!Dta_packed}: ⌈cycles/lanes⌉ bit-parallel sweeps; produces a
          bit-identical database (same RNG stream — lane operands are
          sampled in trial order — and per-lane event times equal to the
          scalar kernel's). Falls back to scalar, counted in the
          [bitsim.fallbacks] counter, on targets without 63-bit words. *)

val set_default_engine : engine -> unit
(** Sets the process-wide engine used when {!run} gets no [?engine]
    (the [--engine] flag lands here). The initial default is [Auto],
    overridable by the [SFI_ENGINE] environment variable ([scalar],
    [packed], anything else [Auto]). *)

val engine_name : engine -> string

type class_db = {
  cls : Op_class.t;
  profile_name : string;
  endpoint_cdfs : Cdf.t array;
      (** per endpoint bit: distribution of raw settle times (ps, at the
          characterization voltage, without setup) *)
  cycle_arrivals : float array array;
      (** [cycle_arrivals.(k).(e)]: settle time of endpoint [e] in
          characterization cycle [k]; kept for vector-correlated fault
          sampling *)
  max_settle : float;  (** max settle over all endpoints and cycles *)
}

type t = {
  vdd : float;            (** characterization supply voltage *)
  setup_ps : float;
  cycles : int;
  classes : class_db array;  (** dense, indexed by [Op_class.index] *)
  max_settle : float;        (** max over all classes *)
}

val run :
  ?cycles:int ->
  ?seed:int ->
  ?setup_ps:float ->
  ?vdd_model:Vdd_model.t ->
  ?lib:Cell_lib.t ->
  ?profile_for:(Op_class.t -> operand_profile) ->
  ?jobs:int ->
  ?spec:Spec.t ->
  ?engine:engine ->
  vdd:float ->
  Alu.t ->
  t
(** [run ~vdd alu] characterizes every class with [cycles] (default 8000)
    random-operand cycles at supply [vdd]. [profile_for] (default
    [uniform32] for every class) selects the operand distribution per
    class. During characterization the DTA's functional results are
    checked against [Op_class.apply]; a mismatch raises [Failure] (it
    would indicate a broken netlist or simulator).

    Classes are characterized in parallel on a domain pool, each on its
    own DTA instance with a pre-split RNG stream — the database is
    bit-identical for every job count. The worker count comes from
    [spec]'s [jobs] field when a {!Sfi_util.Spec.t} is given (its other
    fields are ignored here: the characterization seed stays [seed], so
    chardb cache fingerprints do not depend on campaign specs);
    otherwise from the deprecated [jobs] argument; otherwise
    [Sfi_util.Pool.default_jobs ()]. Prefer [spec] — [jobs] remains only
    for source compatibility.

    [engine] (default: the {!set_default_engine} value) picks the
    characterization kernel. Both engines produce bit-identical
    databases, so the persistent-cache fingerprint does NOT include the
    engine: a database written under one engine is a cache hit for the
    other. *)

val class_db : t -> Op_class.t -> class_db

val error_probability :
  t -> Op_class.t -> endpoint:int -> period_ps:float -> scale:float -> float
(** [error_probability t cls ~endpoint ~period_ps ~scale] is
    [P((settle +. setup) *. scale > period)] — the probability that this
    endpoint latches a wrong value when instruction class [cls] executes
    with clock period [period_ps] while all delays are modulated by
    [scale] (the supply-noise CDF scaling factor; 1.0 = no noise). *)

val class_first_failure_mhz : t -> Op_class.t -> scale:float -> float
(** The highest frequency (MHz) at which this class still has zero error
    probability on every endpoint under delay modulation [scale] — the
    class's dynamic-timing limit. *)

val violation_mask : t -> Op_class.t -> cycle:int -> period_ps:float -> scale:float -> int
(** For vector-correlated sampling: the 32-bit mask of endpoints whose
    settle time in characterization cycle [cycle] violates the (scaled)
    period. *)
