open Sfi_util
open Sfi_netlist

(* Hot-path representation notes.

   Event times live in a scaled domain: every gate delay is multiplied by
   the exact power of two 2^-32 once at [create], and all event-time sums
   are computed on the scaled values. Because scaling by a power of two
   only shifts the exponent, scaled sums round exactly like the unscaled
   sums would, so settle times (descaled on read) are bit-identical to
   computing in plain picoseconds. Scaled times are < 2.0 for any
   realistic circuit (up to 2^33 ps), so their IEEE-754 bit patterns fit
   OCaml's 63-bit int and order like the floats themselves — that int is
   the heap key, making the whole push/pop/drain loop allocation-free.

   Per-cycle state (settle times, scheduled-event stamps) is invalidated
   with generation counters instead of O(n_nets) clears, so cycle cost
   tracks the event count, not the circuit size. *)

type t = {
  circuit : Circuit.t;
  delay : float array; (* per gate, ps at the chosen voltage, × 2^-32 *)
  values : bool array; (* per net *)
  settle : float array; (* per net, scaled; valid iff settle_gen matches *)
  settle_gen : int array; (* per net, generation of last settle write *)
  sched_key : int array; (* per gate, key of last scheduled evaluation *)
  sched_gen : int array; (* per gate, generation of that key *)
  mutable gen : int; (* current cycle generation *)
  heap : Min_heap.t;
  mutable staged : int array; (* packed (net lsl 1) lor bit *)
  mutable staged_n : int;
  mutable events : int;
  mutable settles : int; (* value-changing events (all cycles) *)
  mutable coalesced : int; (* same-instant evaluations deduped *)
  is_input : bool array;
}

(* Observability: the hot loops accumulate into the plain int fields
   above (one predictable add, no flag test); [cycle] flushes the deltas
   to the registry once per generation bump. All four counts are pure
   functions of the stimulus — but how much stimulus the DTA sees at all
   depends on whether the persistent characterization cache served the
   caller from disk, so they count work performed, not work requested:
   [~det:false], excluded from the determinism signature. *)
let obs_events = Sfi_obs.Counter.make ~det:false "dta.events"

let obs_settles = Sfi_obs.Counter.make ~det:false "dta.settles"

let obs_coalesced = Sfi_obs.Counter.make ~det:false "dta.coalesced"

let obs_cycles = Sfi_obs.Counter.make ~det:false "dta.cycles"

let obs_events_per_cycle = Sfi_obs.Hist.make ~det:false "dta.events_per_cycle"

let create ?(vdd = Vdd_model.nominal_voltage) ?(vdd_model = Vdd_model.default)
    ?(lib = Cell_lib.default) (c : Circuit.t) =
  let kind_factor =
    let table = List.map (fun k -> (k, Vdd_model.derate_kind vdd_model lib k vdd)) Cell.all in
    fun kind -> List.assq kind table
  in
  let delay =
    Array.mapi
      (fun i (g : Circuit.gate) ->
        c.Circuit.base_delay.(i) *. kind_factor g.Circuit.kind *. 0x1p-32)
      c.Circuit.gates
  in
  let values = Array.make c.Circuit.n_nets false in
  (match c.Circuit.const_true with Some n -> values.(n) <- true | None -> ());
  (* Settle the circuit for the all-low input state using a zero-delay
     pass; subsequent cycles start from this stable state. *)
  Circuit.eval_all_gates c values;
  let is_input = Array.make c.Circuit.n_nets false in
  Array.iter (fun (_, n) -> is_input.(n) <- true) c.Circuit.pis;
  {
    circuit = c;
    delay;
    values;
    settle = Array.make c.Circuit.n_nets 0.;
    settle_gen = Array.make c.Circuit.n_nets 0;
    sched_key = Array.make (Array.length c.Circuit.gates) 0;
    sched_gen = Array.make (Array.length c.Circuit.gates) 0;
    gen = 0;
    heap = Min_heap.create ~capacity:1024 ();
    staged = Array.make 64 0;
    staged_n = 0;
    events = 0;
    settles = 0;
    coalesced = 0;
    is_input;
  }

let set_input t net v =
  if net < 0 || net >= Array.length t.values || not t.is_input.(net) then
    invalid_arg "Dta.set_input: not a primary input";
  if t.staged_n = Array.length t.staged then begin
    let ns = Array.make (2 * Array.length t.staged) 0 in
    Array.blit t.staged 0 ns 0 t.staged_n;
    t.staged <- ns
  end;
  t.staged.(t.staged_n) <- (net lsl 1) lor (if v then 1 else 0);
  t.staged_n <- t.staged_n + 1

let set_input_vec t nets word =
  for i = 0 to Array.length nets - 1 do
    set_input t nets.(i) ((word lsr i) land 1 = 1)
  done

(* Schedule an evaluation of every reader of [net] at (trigger time +
   reader delay), where [time_key] is the trigger time's heap key. A
   per-gate (generation, key) stamp coalesces duplicate same-time
   evaluations: a gate whose k inputs toggle at the same instant is
   evaluated once, not k times. Per gate the scheduled keys are
   nondecreasing over a cycle (trigger times pop in order and the delay is
   constant), so comparing against the last stamp catches every
   duplicate. *)
let schedule_readers t net time_key =
  let c = t.circuit in
  let off = c.Circuit.reader_off in
  let rg = c.Circuit.reader_gate in
  let time = Int64.float_of_bits (Int64.of_int time_key) in
  let hi = Array.unsafe_get off (net + 1) in
  for j = Array.unsafe_get off net to hi - 1 do
    let gi = Array.unsafe_get rg j in
    let key =
      Int64.to_int (Int64.bits_of_float (time +. Array.unsafe_get t.delay gi))
    in
    if
      not
        (Array.unsafe_get t.sched_gen gi = t.gen
        && Array.unsafe_get t.sched_key gi = key)
    then begin
      Array.unsafe_set t.sched_gen gi t.gen;
      Array.unsafe_set t.sched_key gi key;
      Min_heap.push_key t.heap key gi
    end
    else t.coalesced <- t.coalesced + 1
  done

let rec drain t =
  let gi = Min_heap.pop_unsafe t.heap in
  if gi >= 0 then begin
    t.events <- t.events + 1;
    let key = Min_heap.popped_key t.heap in
    let out_net = Array.unsafe_get t.circuit.Circuit.gate_out gi in
    let v = Circuit.eval_gate t.circuit t.values gi in
    if Array.unsafe_get t.values out_net <> v then begin
      t.settles <- t.settles + 1;
      Array.unsafe_set t.values out_net v;
      Array.unsafe_set t.settle out_net
        (Int64.float_of_bits (Int64.of_int key));
      Array.unsafe_set t.settle_gen out_net t.gen;
      schedule_readers t out_net key
    end;
    drain t
  end

let cycle t =
  t.gen <- t.gen + 1;
  let events0 = t.events and settles0 = t.settles and coalesced0 = t.coalesced in
  (* Launch staged input transitions at t = 0 (heap key 0 = bits of 0.0). *)
  for i = 0 to t.staged_n - 1 do
    let s = Array.unsafe_get t.staged i in
    let net = s lsr 1 in
    let v = s land 1 = 1 in
    if Array.unsafe_get t.values net <> v then begin
      Array.unsafe_set t.values net v;
      schedule_readers t net 0
    end
  done;
  t.staged_n <- 0;
  drain t;
  if Sfi_obs.enabled () then begin
    Sfi_obs.Counter.incr obs_cycles;
    Sfi_obs.Counter.add obs_events (t.events - events0);
    Sfi_obs.Counter.add obs_settles (t.settles - settles0);
    Sfi_obs.Counter.add obs_coalesced (t.coalesced - coalesced0);
    Sfi_obs.Hist.observe obs_events_per_cycle (t.events - events0)
  end

let value t net = t.values.(net)

let read_vec t nets =
  let acc = ref 0 in
  for i = 0 to Array.length nets - 1 do
    if t.values.(nets.(i)) then acc := !acc lor (1 lsl i)
  done;
  !acc

let settle_time t net =
  if t.settle_gen.(net) = t.gen then t.settle.(net) *. 0x1p32 else 0.

let events_processed t = t.events

let settles_count t = t.settles

let coalesced_count t = t.coalesced

let check_against t logic nets =
  Array.for_all (fun n -> value t n = Logic_sim.value logic n) nets
