(** Dynamic timing analysis: event-driven, delay-annotated gate-level
    simulation.

    Unlike STA, which reports the structural worst case, DTA simulates the
    circuit cycle by cycle with its annotated gate delays and records when
    each net {e actually} settles given the applied operands — the "dynamic
    timing slack" of the paper's reference [14]. A net that does not toggle
    in a cycle settles at t = 0 (it cannot cause a timing violation).

    The simulator uses the standard event-driven algorithm with
    evaluate-at-pop semantics, which gives inertial-delay behaviour:
    pulses shorter than a gate's delay are filtered. This keeps settle
    times physical and the event count bounded.

    The event kernel is allocation-free in steady state: event times are
    held as order-preserving integer encodings of their float values (see
    {!Sfi_util.Min_heap}), per-cycle state is invalidated with generation
    stamps rather than O(n_nets) clears, and same-time evaluations of a
    gate whose several inputs toggle together are coalesced into one
    event. Settle times are bit-identical to the straightforward
    float-keyed implementation. *)

open Sfi_netlist

type t

val create :
  ?vdd:float -> ?vdd_model:Vdd_model.t -> ?lib:Cell_lib.t -> Circuit.t -> t
(** Builds a simulator whose gate delays are the circuit's base delays
    derated to [vdd] (default nominal 0.7 V). The circuit is initialised
    stable with all primary inputs low. *)

val set_input : t -> Circuit.net -> bool -> unit
(** Stages a primary-input value for the next {!cycle}. *)

val set_input_vec : t -> Circuit.net array -> int -> unit

val cycle : t -> unit
(** Launches the staged input values at t = 0 and propagates events until
    quiescence. After the call, {!settle_time} reports per-net settle
    times for this cycle. *)

val value : t -> Circuit.net -> bool
(** Current logical value of a net. *)

val read_vec : t -> Circuit.net array -> int

val settle_time : t -> Circuit.net -> float
(** Time (ps) of the net's last transition during the most recent
    {!cycle}; [0.] if it did not toggle. *)

val events_processed : t -> int
(** Total events evaluated since creation (performance diagnostics).
    Same-time evaluations of one gate are coalesced and count once. *)

val settles_count : t -> int
(** Events that changed a net's value since creation. *)

val coalesced_count : t -> int
(** Same-instant gate evaluations deduplicated by the scheduling stamp
    since creation. *)

val check_against : t -> Logic_sim.t -> Circuit.net array -> bool
(** Debug helper: [true] when the DTA net values of the given nets agree
    with a zero-delay simulation that was driven with the same inputs. *)
