open Sfi_netlist

(* Bit-parallel dynamic timing analysis by levelized waveform walking.

   Net state lives in [Bitsim] words — bit [l] of [words.(net)] is the
   net's value in lane [l] — and each cycle builds, per net, the net's
   *transition waveform*: the sorted list of (event key, lane mask)
   pairs saying which lanes toggled at which instant. Because the
   circuit is acyclic, a gate's output waveform is a pure function of
   its input waveforms, so one pass over the compiled (level, kind)
   schedule of [Circuit.freeze] computes every waveform with plain
   linear merges — no global event heap at all. For each gate the walk
   performs exactly the distinct (gate, time) evaluations the scalar
   event-driven [Dta] performs across all lanes, merged into one word
   op each; gates whose inputs never toggle (the vast majority, under
   operand-dependent switching) are skipped with a few array loads.

   Per trigger instant [u] (an input transition in some lanes), the
   gate evaluates at [tau = u + delay] on the input values *at* [tau] —
   input transitions with key <= tau are folded into local operand
   words first — and commits [(new lxor current) land trigger_mask]:
   lanes outside the trigger mask keep their own event chains. This is
   the evaluate-at-pop inertial-delay semantics of the scalar engine
   (a pulse shorter than the gate delay evaluates to no net change and
   is filtered), restated per waveform instead of per heap pop.

   Time arithmetic is copied verbatim from [Dta] (delays pre-scaled by
   2^-32 at [create], event keys are the IEEE-754 bit patterns of the
   scaled sums — nonnegative, so integer compares order them), so every
   lane's event times and settle times are bit-identical to the scalar
   engine's. The one caveat is evaluation order among *equal* keys: a
   dependent same-instant pair could resolve in a different order than
   a scalar run's heap tie. Such ties require two distinct delay-path
   sums to be float-equal, which the per-gate process variation applied
   to every production netlist makes unobservable; the differential
   tests pin bit-identity on exactly those sized netlists.

   Settle times are tracked per lane only for a [watch] subset of nets
   (default: the primary outputs — the only timing endpoints), read off
   the watched nets' completed waveforms. *)

type t = {
  circuit : Circuit.t;
  delay : float array; (* per gate, ps at the chosen voltage, × 2^-32 *)
  words : int array;
      (* per net, one value bit per lane; during [cycle] this holds the
         cycle-START state (commits are deferred to the end of the
         pass so every gate walk starts from a consistent snapshot) *)
  (* Per-cycle waveform arena: net [n]'s transitions are the contiguous
     entries [net_off.(n) .. net_off.(n) + net_len.(n) - 1] of
     [tr_key]/[tr_mask] (valid iff [net_gen.(n)] is current), sorted by
     key. Contiguity holds because a net's transitions are appended
     only while its single driver gate (or the input-staging loop) is
     being processed. *)
  mutable tr_key : float array; (* scaled times, like [delay] *)
  mutable tr_mask : int array;
  mutable tr_n : int;
  net_off : int array;
  net_len : int array;
  net_gen : int array;
  mutable touched : int array; (* nets with transitions this cycle *)
  mutable touched_n : int;
  mutable gen : int;
  (* Per-lane settle times for watched nets: [watch_ix] maps a net to a
     dense index or -1; watched net [w]'s lane [l] settle lives at
     [w_time.(w * lanes + l)], valid iff [w_gen.(w)] is current and bit
     [l] of [w_mask.(w)] is set. *)
  watch_ix : int array;
  w_gen : int array;
  w_mask : int array;
  w_time : float array; (* scaled, like [delay] *)
  is_input : bool array;
  mutable staged_net : int array;
  mutable staged_word : int array;
  mutable staged_n : int;
  mutable words_evaled : int; (* packed gate evaluations *)
  mutable lane_events : int; (* scalar-equivalent events: trigger-mask bits *)
}

(* Work counters for the packed kernel, mirroring the dta.* family: how
   much packed work ran depends on the characterization cache, so both
   are ~det:false (excluded from the determinism signature). The
   [bitsim.words] / [dta.events] ratio is the measured lane merge
   factor. *)
let obs_words = Sfi_obs.Counter.make ~det:false "bitsim.words"

let obs_lane_events = Sfi_obs.Counter.make ~det:false "bitsim.lane_events"

let create ?(vdd = Vdd_model.nominal_voltage) ?(vdd_model = Vdd_model.default)
    ?(lib = Cell_lib.default) ?watch (c : Circuit.t) =
  let kind_factor =
    let table = List.map (fun k -> (k, Vdd_model.derate_kind vdd_model lib k vdd)) Cell.all in
    fun kind -> List.assq kind table
  in
  let delay =
    Array.mapi
      (fun i (g : Circuit.gate) ->
        c.Circuit.base_delay.(i) *. kind_factor g.Circuit.kind *. 0x1p-32)
      c.Circuit.gates
  in
  let words = Bitsim.make_words c in
  (* Same starting point as [Dta.create]: the stable all-low state, here
     established in every lane at once by one functional pass. *)
  Bitsim.eval_levels c words;
  let is_input = Array.make c.Circuit.n_nets false in
  Array.iter (fun (_, n) -> is_input.(n) <- true) c.Circuit.pis;
  let watch_nets =
    match watch with Some nets -> nets | None -> Array.map snd c.Circuit.pos
  in
  let watch_ix = Array.make c.Circuit.n_nets (-1) in
  Array.iteri (fun w net -> watch_ix.(net) <- w) watch_nets;
  let n_watch = Array.length watch_nets in
  {
    circuit = c;
    delay;
    words;
    tr_key = Array.make 4096 0.;
    tr_mask = Array.make 4096 0;
    tr_n = 0;
    net_off = Array.make c.Circuit.n_nets 0;
    net_len = Array.make c.Circuit.n_nets 0;
    net_gen = Array.make c.Circuit.n_nets 0;
    touched = Array.make 1024 0;
    touched_n = 0;
    gen = 0;
    watch_ix;
    w_gen = Array.make (max 1 n_watch) 0;
    w_mask = Array.make (max 1 n_watch) 0;
    w_time = Array.make (max 1 (n_watch * Bitsim.lanes)) 0.;
    is_input;
    staged_net = Array.make 64 0;
    staged_word = Array.make 64 0;
    staged_n = 0;
    words_evaled = 0;
    lane_events = 0;
  }

let set_input_word t net word =
  if net < 0 || net >= Array.length t.words || not t.is_input.(net) then
    invalid_arg "Dta_packed.set_input_word: not a primary input";
  if t.staged_n = Array.length t.staged_net then begin
    let n = Array.length t.staged_net in
    let nn = Array.make (2 * n) 0 and nw = Array.make (2 * n) 0 in
    Array.blit t.staged_net 0 nn 0 n;
    Array.blit t.staged_word 0 nw 0 n;
    t.staged_net <- nn;
    t.staged_word <- nw
  end;
  t.staged_net.(t.staged_n) <- net;
  t.staged_word.(t.staged_n) <- word;
  t.staged_n <- t.staged_n + 1

(* Apply staged words and settle all lanes functionally, without
   timing: one levelized pass instead of an event cascade. Used to
   (re)establish each lane's pre-cycle state — the fixpoint an acyclic
   circuit's event simulation converges to — before a timed [cycle]. *)
let prime t =
  for i = 0 to t.staged_n - 1 do
    t.words.(t.staged_net.(i)) <- t.staged_word.(i)
  done;
  t.staged_n <- 0;
  Bitsim.eval_levels t.circuit t.words

(* Appends one transition to [net]'s waveform. Input-region readers may
   cache the arena arrays across a growth here: the old arrays keep
   their contents, and a net's region is fully written before any
   consumer gate runs (topological order). *)
let append_transition t net key mask =
  (if t.tr_n = Array.length t.tr_key then begin
     let n = t.tr_n in
     let nk = Array.make (2 * n) 0. and nm = Array.make (2 * n) 0 in
     Array.blit t.tr_key 0 nk 0 n;
     Array.blit t.tr_mask 0 nm 0 n;
     t.tr_key <- nk;
     t.tr_mask <- nm
   end);
  t.tr_key.(t.tr_n) <- key;
  t.tr_mask.(t.tr_n) <- mask;
  if t.net_gen.(net) = t.gen then t.net_len.(net) <- t.net_len.(net) + 1
  else begin
    t.net_gen.(net) <- t.gen;
    t.net_off.(net) <- t.tr_n;
    t.net_len.(net) <- 1;
    if t.touched_n = Array.length t.touched then begin
      let n = t.touched_n in
      let nt = Array.make (2 * n) 0 in
      Array.blit t.touched 0 nt 0 n;
      t.touched <- nt
    end;
    t.touched.(t.touched_n) <- net;
    t.touched_n <- t.touched_n + 1
  end;
  t.tr_n <- t.tr_n + 1

(* The per-gate waveform walks, specialized by arity (a segment's kind
   fixes the arity, so [cycle] picks the walker once per segment):
   merge the input waveform regions in key order; at each distinct
   trigger key [u], evaluate at [tau = u + delay] — with identical
   arithmetic to [Dta.schedule_readers] — after folding input
   transitions with key <= tau into the local operand words, and
   commit the masked difference. Sentinel [max_int] exceeds every real
   key (bit patterns of nonnegative doubles stay below 2^62). *)

let walk1 t code gi n1 o1 e1 =
  let tk = t.tr_key and tm = t.tr_mask in
  let d = Array.unsafe_get t.delay gi in
  let out_net = Array.unsafe_get t.circuit.Circuit.gate_out gi in
  let a = ref (Array.unsafe_get t.words n1) in
  let out = ref (Array.unsafe_get t.words out_net) in
  let q = ref o1 in
  let evals = ref 0 and lanes_hit = ref 0 in
  for p = o1 to e1 - 1 do
    let u = Array.unsafe_get tk p in
    let tmask = Array.unsafe_get tm p in
    let tau = u +. d in
    while !q < e1 && Array.unsafe_get tk !q <= tau do
      a := !a lxor Array.unsafe_get tm !q;
      incr q
    done;
    incr evals;
    let m = ref tmask in
    while !m <> 0 do
      incr lanes_hit;
      m := !m land (!m - 1)
    done;
    let nw = if code = 0 then lnot !a else !a in
    let diff = (nw lxor !out) land tmask in
    if diff <> 0 then begin
      out := !out lxor diff;
      append_transition t out_net tau diff
    end
  done;
  t.words_evaled <- t.words_evaled + !evals;
  t.lane_events <- t.lane_events + !lanes_hit

let walk2 t code gi n1 o1 e1 n2 o2 e2 =
  let tk = t.tr_key and tm = t.tr_mask in
  let d = Array.unsafe_get t.delay gi in
  let out_net = Array.unsafe_get t.circuit.Circuit.gate_out gi in
  let a = ref (Array.unsafe_get t.words n1)
  and b = ref (Array.unsafe_get t.words n2) in
  let out = ref (Array.unsafe_get t.words out_net) in
  let p1 = ref o1 and p2 = ref o2 in
  let q1 = ref o1 and q2 = ref o2 in
  let evals = ref 0 and lanes_hit = ref 0 in
  while !p1 < e1 || !p2 < e2 do
    let k1 = if !p1 < e1 then Array.unsafe_get tk !p1 else infinity in
    let k2 = if !p2 < e2 then Array.unsafe_get tk !p2 else infinity in
    let u = if k1 < k2 then k1 else k2 in
    let tmask = ref 0 in
    if k1 = u then begin
      tmask := Array.unsafe_get tm !p1;
      incr p1
    end;
    if k2 = u then begin
      tmask := !tmask lor Array.unsafe_get tm !p2;
      incr p2
    end;
    let tau = u +. d in
    while !q1 < e1 && Array.unsafe_get tk !q1 <= tau do
      a := !a lxor Array.unsafe_get tm !q1;
      incr q1
    done;
    while !q2 < e2 && Array.unsafe_get tk !q2 <= tau do
      b := !b lxor Array.unsafe_get tm !q2;
      incr q2
    done;
    incr evals;
    let m = ref !tmask in
    while !m <> 0 do
      incr lanes_hit;
      m := !m land (!m - 1)
    done;
    let nw =
      match code with
      | 2 -> lnot (!a land !b)
      | 3 -> lnot (!a lor !b)
      | 4 -> !a land !b
      | 5 -> !a lor !b
      | 6 -> !a lxor !b
      | _ -> lnot (!a lxor !b)
    in
    let diff = (nw lxor !out) land !tmask in
    if diff <> 0 then begin
      out := !out lxor diff;
      append_transition t out_net tau diff
    end
  done;
  t.words_evaled <- t.words_evaled + !evals;
  t.lane_events <- t.lane_events + !lanes_hit

let walk3 t code gi n1 o1 e1 n2 o2 e2 n3 o3 e3 =
  let tk = t.tr_key and tm = t.tr_mask in
  let d = Array.unsafe_get t.delay gi in
  let out_net = Array.unsafe_get t.circuit.Circuit.gate_out gi in
  let a = ref (Array.unsafe_get t.words n1)
  and b = ref (Array.unsafe_get t.words n2)
  and cv = ref (Array.unsafe_get t.words n3) in
  let out = ref (Array.unsafe_get t.words out_net) in
  let p1 = ref o1 and p2 = ref o2 and p3 = ref o3 in
  let q1 = ref o1 and q2 = ref o2 and q3 = ref o3 in
  let evals = ref 0 and lanes_hit = ref 0 in
  while !p1 < e1 || !p2 < e2 || !p3 < e3 do
    let k1 = if !p1 < e1 then Array.unsafe_get tk !p1 else infinity in
    let k2 = if !p2 < e2 then Array.unsafe_get tk !p2 else infinity in
    let k3 = if !p3 < e3 then Array.unsafe_get tk !p3 else infinity in
    let u = if k1 < k2 then (if k1 < k3 then k1 else k3)
            else if k2 < k3 then k2 else k3 in
    let tmask = ref 0 in
    if k1 = u then begin
      tmask := Array.unsafe_get tm !p1;
      incr p1
    end;
    if k2 = u then begin
      tmask := !tmask lor Array.unsafe_get tm !p2;
      incr p2
    end;
    if k3 = u then begin
      tmask := !tmask lor Array.unsafe_get tm !p3;
      incr p3
    end;
    let tau = u +. d in
    while !q1 < e1 && Array.unsafe_get tk !q1 <= tau do
      a := !a lxor Array.unsafe_get tm !q1;
      incr q1
    done;
    while !q2 < e2 && Array.unsafe_get tk !q2 <= tau do
      b := !b lxor Array.unsafe_get tm !q2;
      incr q2
    done;
    while !q3 < e3 && Array.unsafe_get tk !q3 <= tau do
      cv := !cv lxor Array.unsafe_get tm !q3;
      incr q3
    done;
    incr evals;
    let m = ref !tmask in
    while !m <> 0 do
      incr lanes_hit;
      m := !m land (!m - 1)
    done;
    let nw =
      match code with
      | 8 -> (!a land !cv) lor (lnot !a land !b)
      | 9 -> lnot ((!a land !b) lor !cv)
      | _ -> lnot ((!a lor !b) land !cv)
    in
    let diff = (nw lxor !out) land !tmask in
    if diff <> 0 then begin
      out := !out lxor diff;
      append_transition t out_net tau diff
    end
  done;
  t.words_evaled <- t.words_evaled + !evals;
  t.lane_events <- t.lane_events + !lanes_hit

(* After a watched net's waveform is complete: the settle time of every
   lane that toggled is its last toggle time (a forward overwrite —
   entries are in increasing key order). *)
let record_settles t wi off len =
  if t.w_gen.(wi) <> t.gen then begin
    t.w_gen.(wi) <- t.gen;
    t.w_mask.(wi) <- 0
  end;
  let tk = t.tr_key and tm = t.tr_mask in
  let base = wi * Bitsim.lanes in
  for j = off to off + len - 1 do
    let mask = Array.unsafe_get tm j in
    t.w_mask.(wi) <- t.w_mask.(wi) lor mask;
    let time = Array.unsafe_get tk j in
    let d = ref mask in
    while !d <> 0 do
      let l = Bitsim.ctz !d in
      Array.unsafe_set t.w_time (base + l) time;
      d := !d land (!d - 1)
    done
  done

let cycle t =
  t.gen <- t.gen + 1;
  t.tr_n <- 0;
  t.touched_n <- 0;
  let words0 = t.words_evaled and lanes0 = t.lane_events in
  (* Primary-input transitions launch at t = 0 (key 0 = bits of 0.0),
     each lane exactly where its staged word differs from its current
     value. The commit to [words] is deferred with all the others. *)
  for i = 0 to t.staged_n - 1 do
    let net = Array.unsafe_get t.staged_net i in
    let diff = Array.unsafe_get t.staged_word i lxor Array.unsafe_get t.words net in
    if diff <> 0 then append_transition t net 0. diff
  done;
  t.staged_n <- 0;
  (* One pass over the compiled schedule; a segment's kind fixes both
     the gate function and the arity, so each segment runs the matching
     walker with the quiet-gate skip inlined. *)
  let c = t.circuit in
  let sched = c.Circuit.sched_gate in
  let seg_off = c.Circuit.seg_off in
  let seg_kind = c.Circuit.seg_kind in
  let fo = c.Circuit.fanin_off in
  let ins = c.Circuit.fanin_net in
  let net_gen = t.net_gen and net_off = t.net_off and net_len = t.net_len in
  let gen = t.gen in
  for s = 0 to Array.length seg_kind - 1 do
    let code = Array.unsafe_get seg_kind s in
    let lo = Array.unsafe_get seg_off s in
    let hi = Array.unsafe_get seg_off (s + 1) - 1 in
    if code <= 1 then
      for j = lo to hi do
        let gi = Array.unsafe_get sched j in
        let n1 = Array.unsafe_get ins (Array.unsafe_get fo gi) in
        if Array.unsafe_get net_gen n1 = gen then begin
          let o1 = Array.unsafe_get net_off n1 in
          walk1 t code gi n1 o1 (o1 + Array.unsafe_get net_len n1)
        end
      done
    else if code <= 7 then
      for j = lo to hi do
        let gi = Array.unsafe_get sched j in
        let f = Array.unsafe_get fo gi in
        let n1 = Array.unsafe_get ins f in
        let n2 = Array.unsafe_get ins (f + 1) in
        let l1 = if Array.unsafe_get net_gen n1 = gen then Array.unsafe_get net_len n1 else 0 in
        let l2 = if Array.unsafe_get net_gen n2 = gen then Array.unsafe_get net_len n2 else 0 in
        if l1 lor l2 <> 0 then begin
          let o1 = if l1 > 0 then Array.unsafe_get net_off n1 else 0 in
          let o2 = if l2 > 0 then Array.unsafe_get net_off n2 else 0 in
          walk2 t code gi n1 o1 (o1 + l1) n2 o2 (o2 + l2)
        end
      done
    else
      for j = lo to hi do
        let gi = Array.unsafe_get sched j in
        let f = Array.unsafe_get fo gi in
        let n1 = Array.unsafe_get ins f in
        let n2 = Array.unsafe_get ins (f + 1) in
        let n3 = Array.unsafe_get ins (f + 2) in
        let l1 = if Array.unsafe_get net_gen n1 = gen then Array.unsafe_get net_len n1 else 0 in
        let l2 = if Array.unsafe_get net_gen n2 = gen then Array.unsafe_get net_len n2 else 0 in
        let l3 = if Array.unsafe_get net_gen n3 = gen then Array.unsafe_get net_len n3 else 0 in
        if l1 lor l2 lor l3 <> 0 then begin
          let o1 = if l1 > 0 then Array.unsafe_get net_off n1 else 0 in
          let o2 = if l2 > 0 then Array.unsafe_get net_off n2 else 0 in
          let o3 = if l3 > 0 then Array.unsafe_get net_off n3 else 0 in
          walk3 t code gi n1 o1 (o1 + l1) n2 o2 (o2 + l2) n3 o3 (o3 + l3)
        end
      done
  done;
  (* Commit: each touched net's final value is its start value XOR all
     its toggles; watched nets also record per-lane settle times. *)
  for i = 0 to t.touched_n - 1 do
    let n = Array.unsafe_get t.touched i in
    let off = Array.unsafe_get t.net_off n in
    let len = Array.unsafe_get t.net_len n in
    let acc = ref 0 in
    for j = off to off + len - 1 do
      acc := !acc lxor Array.unsafe_get t.tr_mask j
    done;
    Array.unsafe_set t.words n (Array.unsafe_get t.words n lxor !acc);
    let wi = Array.unsafe_get t.watch_ix n in
    if wi >= 0 then record_settles t wi off len
  done;
  if Sfi_obs.enabled () then begin
    Sfi_obs.Counter.add obs_words (t.words_evaled - words0);
    Sfi_obs.Counter.add obs_lane_events (t.lane_events - lanes0)
  end

let value t net ~lane = (t.words.(net) lsr lane) land 1 = 1

let value_word t net = t.words.(net)

let read_lane_vec t nets ~lane = Bitsim.read_lane t.words nets ~lane

let settle_time t net ~lane =
  match t.watch_ix.(net) with
  | -1 -> invalid_arg "Dta_packed.settle_time: net is not watched"
  | wi ->
    if t.w_gen.(wi) = t.gen && (t.w_mask.(wi) lsr lane) land 1 = 1 then
      t.w_time.((wi * Bitsim.lanes) + lane) *. 0x1p32
    else 0.

let words_evaluated t = t.words_evaled

let lane_events t = t.lane_events
