(** Bit-parallel dynamic timing analysis by levelized waveform walking.

    The packed counterpart of {!Dta}: one native word per net carries
    {!Sfi_netlist.Bitsim.lanes} independent trials, and instead of a
    global event heap each {!cycle} computes every net's per-cycle
    transition waveform — its sorted [(time, lane mask)] toggle list —
    in one pass over the compiled [(level, kind)] schedule, evaluating
    each gate once per distinct trigger time for all lanes at once.
    Per lane, event times and settle times are bit-identical to a
    scalar {!Dta} run fed the same stimulus (same pre-scaled delay
    arithmetic; see the determinism discussion in DESIGN.md §11 — the
    contract assumes the tie-free event schedules that per-gate process
    variation guarantees on production netlists).

    Usage per packed sweep: stage each lane's {e previous} input state
    with {!set_input_word}, call {!prime} to settle it functionally,
    stage the new inputs, then {!cycle} to run the timed transition. *)

open Sfi_netlist

type t

val create :
  ?vdd:float ->
  ?vdd_model:Vdd_model.t ->
  ?lib:Cell_lib.t ->
  ?watch:Circuit.net array ->
  Circuit.t ->
  t
(** Like {!Dta.create} (same delay model, same stable all-low starting
    state in every lane). [watch] selects the nets whose per-lane
    settle times are recorded (default: the primary outputs). *)

val set_input_word : t -> Circuit.net -> int -> unit
(** Stages a full word (one bit per lane) for a primary input; applied
    by the next {!prime} or {!cycle}. Raises [Invalid_argument] for a
    non-input net. *)

val prime : t -> unit
(** Applies staged inputs and settles every lane functionally (one
    levelized pass, no events, no settle times) — the state an event
    simulation of this acyclic circuit would converge to. *)

val cycle : t -> unit
(** Applies staged inputs as t = 0 transitions in exactly the lanes
    whose staged bit differs, then walks the compiled schedule to
    completion. *)

val value : t -> Circuit.net -> lane:int -> bool

val value_word : t -> Circuit.net -> int

val read_lane_vec : t -> Circuit.net array -> lane:int -> int
(** Lane [lane] of a net vector as an integer, LSB first. *)

val settle_time : t -> Circuit.net -> lane:int -> float
(** Last value-change time (ps) of a watched net in one lane during the
    most recent {!cycle}, 0. if it did not change — bit-identical to
    {!Dta.settle_time} of that lane's scalar run. Raises
    [Invalid_argument] if the net is not watched. *)

val words_evaluated : t -> int
(** Packed gate evaluations (distinct (gate, trigger time) pairs)
    since [create]. *)

val lane_events : t -> int
(** Scalar-equivalent events: total lane bits across trigger masks.
    Matches {!Dta.events_processed} summed over per-lane scalar runs of
    the same stimulus. *)
