(* Binary min-heap over int keys and int payloads.

   The int keys are order-preserving encodings of non-negative floats
   (IEEE-754 bit patterns of non-negative doubles compare like the doubles
   themselves), so the comparison outcomes — and therefore the heap layout
   and pop order, ties included — are identical to the former float-keyed
   implementation.  Keeping keys and payloads in two parallel int arrays
   makes push/pop allocation-free.

   The sift loops live inline in [push_key]/[pop_unsafe] as while loops
   over local refs (which ocamlopt compiles to register mutables): hoisting
   them into recursive helper functions costs 2x+ on this non-flambda
   toolchain, because the per-level helper/swap calls stop the array base
   pointers from staying in registers across levels. *)

type t = {
  mutable keys : int array;
  mutable payloads : int array;
  mutable size : int;
}

let no_event = -1

(* The 2^-32 pre-scale is exact (power of two) and keeps any time below
   2^33 ps under 2.0, whose bit pattern fits OCaml's 63-bit int.  Scaling
   is undone on decode, so round-tripping is the identity and the encoding
   is strictly monotone on [0, 2^33). *)
let key_of_float f = Int64.to_int (Int64.bits_of_float (f *. 0x1p-32))
let float_of_key k = Int64.float_of_bits (Int64.of_int k) *. 0x1p32

let create ?(capacity = 64) () =
  let capacity = max 1 capacity in
  { keys = Array.make capacity 0; payloads = Array.make capacity 0; size = 0 }

let grow t =
  let n = Array.length t.keys in
  let keys = Array.make (2 * n) 0 and payloads = Array.make (2 * n) 0 in
  Array.blit t.keys 0 keys 0 n;
  Array.blit t.payloads 0 payloads 0 n;
  t.keys <- keys;
  t.payloads <- payloads

let push_key t key payload =
  if t.size = Array.length t.keys then grow t;
  let keys = t.keys and payloads = t.payloads in
  keys.(t.size) <- key;
  payloads.(t.size) <- payload;
  let i = ref t.size in
  t.size <- t.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if keys.(!i) < keys.(parent) then begin
      let k = keys.(!i) and p = payloads.(!i) in
      keys.(!i) <- keys.(parent);
      payloads.(!i) <- payloads.(parent);
      keys.(parent) <- k;
      payloads.(parent) <- p;
      i := parent
    end
    else continue := false
  done

(* Pops the minimum element and returns its payload, or [no_event] when
   empty.  The popped key is parked at [keys.(size)] — a slot outside the
   live heap — where [popped_key] can read it without allocating; it stays
   valid until the next [push_key]. *)
let pop_unsafe t =
  if t.size = 0 then no_event
  else begin
    let keys = t.keys and payloads = t.payloads in
    let key = keys.(0) and payload = payloads.(0) in
    let size = t.size - 1 in
    t.size <- size;
    if size > 0 then begin
      keys.(0) <- keys.(size);
      payloads.(0) <- payloads.(size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < size && keys.(l) < keys.(!smallest) then smallest := l;
        if r < size && keys.(r) < keys.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let k = keys.(!i) and p = payloads.(!i) in
          keys.(!i) <- keys.(!smallest);
          payloads.(!i) <- payloads.(!smallest);
          keys.(!smallest) <- k;
          payloads.(!smallest) <- p;
          i := !smallest
        end
        else continue := false
      done
    end;
    keys.(size) <- key;
    payload
  end

let popped_key t = t.keys.(t.size)

let push t key payload =
  if not (key >= 0.) then invalid_arg "Min_heap.push: negative or NaN key";
  push_key t (key_of_float key) payload

let pop t =
  if t.size = 0 then None
  else begin
    let payload = pop_unsafe t in
    Some (float_of_key (popped_key t), payload)
  end

let peek_key t = if t.size = 0 then None else Some (float_of_key t.keys.(0))

let peek_key_int t = if t.size = 0 then min_int else t.keys.(0)

let size t = t.size

let is_empty t = t.size = 0

let clear t = t.size <- 0
