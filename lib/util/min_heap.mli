(** Binary min-heap with integer keys and integer payloads.

    Used as the event queue of the dynamic timing simulator; payloads are
    gate ids. Ties are popped in unspecified (but deterministic) order.

    The primary API is integer-keyed and allocation-free on both push and
    pop. Keys are typically order-preserving encodings of non-negative
    floats obtained via {!key_of_float}: the IEEE-754 bit pattern of a
    non-negative double compares exactly like the double itself, so int
    comparisons reproduce float comparisons, ties included. The encoding
    pre-scales by an exact power of two (2^-32) so that any key below
    2^33 fits OCaml's 63-bit int; the round-trip through
    {!float_of_key} is exact. A float-keyed convenience API
    ({!push}/{!pop}) is layered on top for non-hot-path users. *)

type t

val create : ?capacity:int -> unit -> t

val no_event : int
(** Sentinel (-1) returned by {!pop_unsafe} on an empty heap. Payloads
    must therefore be non-negative. *)

val key_of_float : float -> int
(** Order-preserving encoding of a non-negative float < 2^33. *)

val float_of_key : int -> float
(** Inverse of {!key_of_float}. *)

val push_key : t -> int -> int -> unit
(** [push_key t key payload] inserts without allocating. *)

val pop_unsafe : t -> int
(** Removes the minimum element and returns its payload, or {!no_event}
    when empty. Allocation-free; read the popped element's key with
    {!popped_key} before the next [push_key]. *)

val popped_key : t -> int
(** Key of the element last removed by {!pop_unsafe}. Valid only between
    a successful [pop_unsafe] and the next [push_key]. *)

val peek_key_int : t -> int
(** Minimum key, or [min_int] when empty. Allocation-free. *)

val push : t -> float -> int -> unit
(** Float-keyed convenience wrapper; the key must be non-negative and
    < 2^33. *)

val pop : t -> (float * int) option
(** Removes and returns the minimum-key element. Allocates; hot paths use
    {!pop_unsafe}. *)

val peek_key : t -> float option

val size : t -> int

val is_empty : t -> bool

val clear : t -> unit
