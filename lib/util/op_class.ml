type t = Add | Sub | Mul | Sll | Srl | Sra | And_ | Or_ | Xor_

let all = [ Add; Sub; Mul; Sll; Srl; Sra; And_; Or_; Xor_ ]

let name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Sll -> "sll"
  | Srl -> "srl"
  | Sra -> "sra"
  | And_ -> "and"
  | Or_ -> "or"
  | Xor_ -> "xor"

let of_name s = List.find_opt (fun c -> name c = s) all

let apply c a b =
  match c with
  | Add -> U32.add a b
  | Sub -> U32.sub a b
  | Mul -> U32.mul a b
  | Sll -> U32.shift_left a (b land 31)
  | Srl -> U32.shift_right_logical a (b land 31)
  | Sra -> U32.shift_right_arith a (b land 31)
  | And_ -> U32.logand a b
  | Or_ -> U32.logor a b
  | Xor_ -> U32.logxor a b

(* Direct match, in [all]'s order: the list-walking version allocated
   its recursive closure on every call, and this sits on the decoder's
   allocation-free path. *)
let index = function
  | Add -> 0
  | Sub -> 1
  | Mul -> 2
  | Sll -> 3
  | Srl -> 4
  | Sra -> 5
  | And_ -> 6
  | Or_ -> 7
  | Xor_ -> 8

let count = List.length all
