(* Scheduling observability. Which executor runs a task — and therefore
   every count below except [map_items] — depends on timing, so those
   counters are registered [~det:false]: they never participate in the
   jobs=1 vs jobs=n determinism signature. *)
let obs_domains = Sfi_obs.Counter.make ~det:false "pool.domains_spawned"

let obs_batches = Sfi_obs.Counter.make ~det:false "pool.batches"

let obs_tasks = Sfi_obs.Counter.make ~det:false "pool.tasks"

let obs_caller_drained = Sfi_obs.Counter.make ~det:false "pool.caller_drained"

(* Item counts are independent of the job count, but phases served from
   the persistent result cache (Sfi_cache) skip their pool fan-out
   entirely, so the count reflects work performed, not requested. *)
let obs_map_items = Sfi_obs.Counter.make ~det:false "pool.map_items"

type t = {
  jobs : int;
  lock : Mutex.t;
  work : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

(* Workers drain the queue; when it is empty they sleep on [work] until
   either new tasks arrive or the pool is shut down. A worker only exits
   on an empty queue, so shutdown never abandons queued tasks. *)
let worker_loop pool =
  let rec loop () =
    Mutex.lock pool.lock;
    next ()
  and next () =
    match Queue.take_opt pool.queue with
    | Some task ->
      Mutex.unlock pool.lock;
      task ();
      loop ()
    | None ->
      if pool.stop then begin
        Mutex.unlock pool.lock;
        (* Fold this worker's observability shard into the retained base
           before the domain dies, so pool join merges the counts. *)
        Sfi_obs.retire_current_domain ()
      end
      else begin
        Condition.wait pool.work pool.lock;
        next ()
      end
  in
  loop ()

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let pool =
    {
      jobs;
      lock = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      stop = false;
      workers = [];
    }
  in
  (* The caller participates in every map, so [jobs] executors means
     [jobs - 1] spawned domains; [jobs = 1] is pure serial execution. *)
  pool.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  Sfi_obs.Counter.add obs_domains (jobs - 1);
  pool

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Enqueue [tasks] and block until all have run. The caller helps drain
   the queue while waiting, which both uses its core and makes nested
   calls (a pool task that itself submits a batch) deadlock-free: every
   waiter makes progress on whatever work is pending. Exceptions are
   collected per task and the lowest-index one is re-raised once the
   whole batch has finished. *)
let run_all t tasks =
  let n = Array.length tasks in
  if n > 0 then begin
    let remaining = Atomic.make n in
    let exns = Array.make n None in
    Sfi_obs.Counter.incr obs_batches;
    let wrap i () =
      Sfi_obs.Counter.incr obs_tasks;
      (try tasks.(i) () with e -> exns.(i) <- Some e);
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        (* Last task of the batch: wake the waiting submitter. *)
        Mutex.lock t.lock;
        Condition.broadcast t.work;
        Mutex.unlock t.lock
      end
    in
    Mutex.lock t.lock;
    for i = 0 to n - 1 do
      Queue.add (wrap i) t.queue
    done;
    Condition.broadcast t.work;
    let rec help () =
      if Atomic.get remaining > 0 then begin
        match Queue.take_opt t.queue with
        | Some task ->
          Mutex.unlock t.lock;
          Sfi_obs.Counter.incr obs_caller_drained;
          task ();
          Mutex.lock t.lock;
          help ()
        | None ->
          Condition.wait t.work t.lock;
          help ()
      end
    in
    help ();
    Mutex.unlock t.lock;
    Array.iter (function Some e -> raise e | None -> ()) exns
  end

let map t f xs =
  let n = Array.length xs in
  Sfi_obs.Counter.add obs_map_items n;
  if n = 0 then [||]
  else if t.jobs = 1 || n = 1 then begin
    (* Strict left-to-right serial evaluation, no queue overhead. *)
    let out = Array.make n (f xs.(0)) in
    for i = 1 to n - 1 do
      out.(i) <- f xs.(i)
    done;
    out
  end
  else begin
    let out = Array.make n None in
    run_all t (Array.init n (fun i () -> out.(i) <- Some (f xs.(i))));
    Array.map (function Some v -> v | None -> assert false) out
  end

let map_list t f xs = Array.to_list (map t f (Array.of_list xs))

let parallel_init t n f =
  if n < 0 then invalid_arg "Pool.parallel_init: negative length";
  map t f (Array.init n Fun.id)

(* ---------- default job count & shared global pool ---------- *)

let override = Atomic.make 0 (* 0 = no override *)

let env_jobs () =
  match Sys.getenv_opt "SFI_JOBS" with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | _ -> None)

let default_jobs () =
  let o = Atomic.get override in
  if o >= 1 then o
  else
    match env_jobs () with
    | Some n -> n
    | None -> Domain.recommended_domain_count ()

let set_default_jobs n =
  if n < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  Atomic.set override n

let global_lock = Mutex.create ()

let global_pool = ref None

let () =
  at_exit (fun () ->
      Mutex.protect global_lock (fun () ->
          match !global_pool with
          | Some p ->
            global_pool := None;
            shutdown p
          | None -> ()))

let global () =
  Mutex.protect global_lock (fun () ->
      let j = default_jobs () in
      match !global_pool with
      | Some p when p.jobs = j -> p
      | prev ->
        (match prev with Some p -> shutdown p | None -> ());
        let p = create ~jobs:j in
        global_pool := Some p;
        p)

let using ?jobs f =
  match jobs with
  | None -> f (global ())
  | Some j ->
    let reusable =
      Mutex.protect global_lock (fun () ->
          match !global_pool with
          | Some p when p.jobs = j -> Some p
          | _ -> None)
    in
    (match reusable with
    | Some p -> f p
    | None -> with_pool ~jobs:j f)
