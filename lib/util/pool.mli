(** Fixed-size domain pool for data-parallel fan-out.

    OCaml 5 [Domain]s with a mutex/condition work queue — no external
    dependencies. A pool of [jobs] executors consists of [jobs - 1]
    spawned domains plus the submitting caller, which helps drain the
    queue while waiting; nested submissions (a pool task that itself
    calls {!map} on the same pool) are therefore deadlock-free.
    [jobs = 1] degenerates to strict left-to-right serial execution.

    Determinism contract: {!map} and {!parallel_init} return results in
    input order regardless of the execution interleaving, so any
    computation whose per-item inputs are fixed before submission (e.g.
    pre-split RNG streams) produces bit-identical results for every job
    count. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains. [jobs] must be
    positive. *)

val jobs : t -> int

val shutdown : t -> unit
(** Finishes all queued work, terminates and joins the workers. The pool
    must not be used afterwards. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down
    afterwards (also on exception). *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map], results in input order. If any application
    raises, the whole batch still runs to completion and the exception of
    the lowest failing index is re-raised in the caller. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map], results in input order. *)

val parallel_init : t -> int -> (int -> 'a) -> 'a array
(** Parallel [Array.init]. *)

(** {1 Default job count and the shared global pool} *)

val default_jobs : unit -> int
(** Job count used when no explicit [~jobs] is given: the
    {!set_default_jobs} override if set, else the [SFI_JOBS] environment
    variable, else [Domain.recommended_domain_count ()]. *)

val set_default_jobs : int -> unit
(** Process-wide override of {!default_jobs} (e.g. from a [--jobs] CLI
    flag). Must be positive. *)

val global : unit -> t
(** The shared lazily-created pool of {!default_jobs} executors. It is
    rebuilt if the default changed since creation and shut down at
    process exit. *)

val using : ?jobs:int -> (t -> 'a) -> 'a
(** [using ?jobs f]: runs [f] with the global pool when [jobs] is absent
    or matches its size, else with a fresh temporary pool of [jobs]
    executors. *)
