type t = { mutable state : int64; mutable spare : float option }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed; spare = None }

let of_int seed = create (Int64.of_int seed)

let copy t = { state = t.state; spare = t.spare }

(* SplitMix64 finalizer (variant 13 of Stafford's mix). *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = int64 t in
  create seed

let bits32 t = Int64.to_int (Int64.shift_right_logical (int64 t) 32)

let float t =
  (* 53 random bits scaled to [0,1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int bits *. 0x1p-53

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* 62 uniform bits; the modulo bias is at most bound / 2^62 and is
     irrelevant at the bounds used here. *)
  let r = Int64.to_int (int64 t) land max_int in
  r mod bound

let bool t = Int64.compare (int64 t) 0L < 0

let bernoulli t p = if p <= 0. then false else if p >= 1. then true else float t < p

let gaussian t =
  match t.spare with
  | Some g ->
    t.spare <- None;
    g
  | None ->
    (* Box-Muller on two fresh uniforms; guard against log 0. *)
    let rec u1 () =
      let u = float t in
      if u > 0. then u else u1 ()
    in
    let u = u1 () and v = float t in
    let r = sqrt (-2. *. log u) and theta = 2. *. Float.pi *. v in
    t.spare <- Some (r *. sin theta);
    r *. cos theta

let skip_gaussians t k =
  (* Advance the stream exactly as [k] calls to [gaussian] would, without
     paying for the transcendentals. A pending spare absorbs one call for
     free; each further pair of calls consumes one Box-Muller uniform pair
     (including the [u > 0] retry, which depends only on the raw stream);
     an odd leftover call must run the real Box-Muller so the spare it
     plants holds the same *value* a genuine call would produce. *)
  let k = ref k in
  if !k > 0 then (
    match t.spare with
    | Some _ ->
      t.spare <- None;
      decr k
    | None -> ());
  while !k >= 2 do
    let rec u1 () =
      let u = float t in
      if u > 0. then u else u1 ()
    in
    ignore (u1 () : float);
    ignore (float t : float);
    k := !k - 2
  done;
  if !k = 1 then ignore (gaussian t : float)

let gaussian_clipped t ~sigma ~clip =
  if sigma = 0. then 0.
  else
    let g = gaussian t *. sigma in
    let lim = clip *. sigma in
    Float.max (-.lim) (Float.min lim g)
