(** Deterministic, splittable pseudo-random number generator.

    The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny,
    fast, high-quality 64-bit generator whose [split] operation yields
    statistically independent streams.  Every stochastic component of the
    library (supply-voltage noise, fault sampling, operand generation,
    Monte-Carlo trial seeds) draws from an explicit [Rng.t] so that whole
    experiments are reproducible from a single root seed. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator. Generators created from the
    same seed produce identical streams. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val copy : t -> t
(** [copy t] duplicates the current state; both copies then produce the
    same stream. Useful for replaying a decision sequence. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits32 : t -> int
(** 32 uniform random bits as an [int] in [\[0, 2{^32})]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val gaussian : t -> float
(** Standard normal deviate (Box-Muller; one fresh pair per two calls). *)

val skip_gaussians : t -> int -> unit
(** [skip_gaussians t k] advances the stream exactly as [k] calls to
    [gaussian] would — same raw draws consumed, same spare left pending
    with the same value — but skips the transcendental math for whole
    Box-Muller pairs. Used by the fast-forward probe to jump the stream
    over hook calls whose draws provably cannot matter. *)

val gaussian_clipped : t -> sigma:float -> clip:float -> float
(** [gaussian_clipped t ~sigma ~clip] draws [N(0, sigma^2)] saturated to
    [\[-clip*sigma, +clip*sigma\]], the paper's supply-noise model with
    [clip = 2.0]. [sigma = 0.] yields exactly [0.]. *)
