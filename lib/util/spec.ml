type trials_policy =
  | Fixed of int
  | Adaptive of { batch : int; max_trials : int; ci_target : float }

type fastforward = Auto | Off | On

type t = {
  trials : trials_policy;
  seed : int;
  jobs : int option;
  checkpoint : string option;
  fastforward : fastforward;
}

let default =
  { trials = Fixed 100; seed = 1; jobs = None; checkpoint = None; fastforward = Auto }

(* [Auto] defers to the environment (the golden corpus and CI's
   fast-forward leg run whole harnesses under SFI_FASTFORWARD=1 without
   per-call plumbing) and conservatively resolves to [Off] when unset:
   fast-forward is bit-identical by contract, but full replay remains
   the reference semantics. *)
let resolve_fastforward = function
  | Off -> false
  | On -> true
  | Auto -> (
    match Option.map String.lowercase_ascii (Sys.getenv_opt "SFI_FASTFORWARD") with
    | Some ("1" | "on" | "true" | "yes") -> true
    | _ -> false)

let validate t =
  (match t.trials with
  | Fixed n -> if n < 1 then invalid_arg "Spec: Fixed trials must be positive"
  | Adaptive { batch; max_trials; ci_target } ->
    if batch < 1 then invalid_arg "Spec: Adaptive batch must be positive";
    if max_trials < batch then invalid_arg "Spec: Adaptive max_trials must be >= batch";
    if not (ci_target > 0.) then invalid_arg "Spec: Adaptive ci_target must be positive");
  (match t.jobs with
  | Some j when j < 1 -> invalid_arg "Spec: jobs must be positive"
  | _ -> ());
  t

let with_trials n t = validate { t with trials = Fixed n }

let with_adaptive ?(batch = 16) ?(max_trials = 1000) ?(ci_target = 0.05) t =
  validate { t with trials = Adaptive { batch; max_trials; ci_target } }

let with_seed seed t = { t with seed }

let with_jobs jobs t = validate { t with jobs = Some jobs }

let with_checkpoint path t = { t with checkpoint = Some path }

let without_checkpoint t = { t with checkpoint = None }

let with_fastforward fastforward t = { t with fastforward }

let fastforward_name = function Auto -> "auto" | Off -> "off" | On -> "on"

(* Retarget the nominal per-point budget while keeping the policy kind:
   a driver that historically asked for "n trials here" keeps doing so
   under [Fixed], and under [Adaptive] raises the escalation ceiling to
   at least [n] without touching batch size or the precision target. *)
let with_nominal_trials n t =
  match t.trials with
  | Fixed _ -> validate { t with trials = Fixed n }
  | Adaptive a ->
    validate { t with trials = Adaptive { a with max_trials = max a.max_trials n } }

let max_trials t = match t.trials with Fixed n -> n | Adaptive a -> a.max_trials

let batch_size t =
  match t.trials with Fixed n -> n | Adaptive a -> min a.batch a.max_trials

let ci_target t = match t.trials with Fixed _ -> None | Adaptive a -> Some a.ci_target

let policy_to_string = function
  | Fixed n -> Printf.sprintf "fixed:%d" n
  | Adaptive { batch; max_trials; ci_target } ->
    Printf.sprintf "adaptive:batch=%d,max=%d,ci=%g" batch max_trials ci_target
