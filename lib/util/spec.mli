(** Execution specification for Monte-Carlo runs.

    One value describes how a campaign (or any embarrassingly parallel
    sampling run) spends its budget: the trial policy, the root RNG seed,
    the worker-domain count and an optional checkpoint file. It replaces
    the [?trials ?seed ?jobs ... unit] optional-argument soup that used
    to be repeated on every entry point; build one with {!default} and
    the [with_*] combinators and thread it through.

    The type lives in [Sfi_util] (rather than next to the campaign
    engine) so lower layers — e.g. {!Characterize.run} — can accept the
    same record without a dependency cycle; [Sfi_fi.Campaign.Spec] is an
    alias of this module. *)

type trials_policy =
  | Fixed of int
      (** Exactly [n] trials per point — the pre-adaptive behaviour,
          bit-identical to it. *)
  | Adaptive of { batch : int; max_trials : int; ci_target : float }
      (** Trials run in deterministic batches of [batch]; after each
          batch a Wilson-score interval on the finished/correct rates
          plus a standard-error bound on the mean metrics decides
          whether the point stops early or escalates, up to
          [max_trials]. [ci_target] is the half-width the rates' 95%
          intervals must reach. *)

type fastforward =
  | Auto  (** defer to [SFI_FASTFORWARD] ("1"/"on"/"true"/"yes"); else Off *)
  | Off   (** full replay: every trial simulates from cycle 0 *)
  | On
      (** snapshot fast-forward: trials restore the reference run's
          nearest snapshot before their first fault and simulate only
          the suffix; fault-free trials are resolved analytically.
          Bit-identical to [Off] by contract (results, det signatures
          and checkpoint records), so checkpoints and sweeps mix modes
          freely. *)

type t = {
  trials : trials_policy;
  seed : int;            (** root seed; per-trial streams are split from it *)
  jobs : int option;     (** worker domains; [None] = {!Pool.default_jobs} *)
  checkpoint : string option;
      (** completed batches stream to this JSONL file and are reloaded
          (CRC-validated) on the next run with an identical spec — the
          checkpoint key deliberately excludes {!field-fastforward}, so
          a sweep checkpointed under one mode resumes under the other *)
  fastforward : fastforward;
}

val default : t
(** [Fixed 100] trials (the paper's minimum per data point), seed 1, the
    pool's default job count, no checkpoint. *)

val with_trials : int -> t -> t
val with_adaptive : ?batch:int -> ?max_trials:int -> ?ci_target:float -> t -> t
(** Defaults: [batch = 16], [max_trials = 1000], [ci_target = 0.05]. *)

val with_seed : int -> t -> t
val with_jobs : int -> t -> t
val with_checkpoint : string -> t -> t
val without_checkpoint : t -> t
val with_fastforward : fastforward -> t -> t

val resolve_fastforward : fastforward -> bool
(** [true] when the mode (after [Auto]'s environment lookup) enables
    snapshot fast-forward. *)

val fastforward_name : fastforward -> string

val with_nominal_trials : int -> t -> t
(** [with_nominal_trials n t]: [Fixed _] becomes [Fixed n]; [Adaptive]
    keeps its batch and precision target but raises [max_trials] to at
    least [n]. Drivers with per-figure trial counts use this to scale a
    user-supplied policy template. *)

val validate : t -> t
(** Returns its argument; raises [Invalid_argument] on a non-positive
    trial count, batch, job count or precision target. All [with_*]
    builders validate already. *)

val max_trials : t -> int
(** The per-point ceiling: [n] for [Fixed n], [max_trials] otherwise. *)

val batch_size : t -> int
(** Trials per dispatch round: the whole point for [Fixed], the batch
    (clamped to [max_trials]) for [Adaptive]. *)

val ci_target : t -> float option
(** [None] for [Fixed]. *)

val policy_to_string : trials_policy -> string
(** Stable human-readable form, e.g. ["fixed:100"] or
    ["adaptive:batch=16,max=400,ci=0.05"]. *)
