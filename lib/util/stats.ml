let mean xs =
  let n = Array.length xs in
  if n = 0 then nan else Array.fold_left ( +. ) 0. xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = ref 0. in
    Array.iter (fun x -> acc := !acc +. ((x -. m) *. (x -. m))) xs;
    !acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let min_max xs =
  if Array.length xs = 0 then (nan, nan)
  else
    Array.fold_left
      (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
      (xs.(0), xs.(0)) xs

let sorted_copy xs =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let median xs =
  let n = Array.length xs in
  if n = 0 then nan
  else begin
    let ys = sorted_copy xs in
    if n land 1 = 1 then ys.(n / 2) else (ys.((n / 2) - 1) +. ys.(n / 2)) /. 2.
  end

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then nan
  else if n = 1 then xs.(0)
  else begin
    let ys = sorted_copy xs in
    let p = Float.max 0. (Float.min 100. p) in
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then ys.(lo)
    else begin
      let w = rank -. float_of_int lo in
      (ys.(lo) *. (1. -. w)) +. (ys.(hi) *. w)
    end
  end

let fraction pred xs =
  let n = Array.length xs in
  if n = 0 then 0.
  else begin
    let k = Array.fold_left (fun acc x -> if pred x then acc + 1 else acc) 0 xs in
    float_of_int k /. float_of_int n
  end

let mean_ci95 xs =
  let n = Array.length xs in
  let m = mean xs in
  if n < 2 then (m, 0.)
  else (m, 1.96 *. stddev xs /. sqrt (float_of_int n))

let wilson_interval ?(z = 1.96) ~successes ~trials () =
  if trials < 0 then invalid_arg "Stats.wilson_interval: negative trials";
  if successes < 0 || successes > trials then
    invalid_arg "Stats.wilson_interval: successes out of range";
  if trials = 0 then (0., 1.)
  else begin
    let n = float_of_int trials in
    let p = float_of_int successes /. n in
    let z2 = z *. z in
    let denom = 1. +. (z2 /. n) in
    let center = (p +. (z2 /. (2. *. n))) /. denom in
    let half =
      z /. denom *. sqrt (((p *. (1. -. p)) /. n) +. (z2 /. (4. *. n *. n)))
    in
    (Float.max 0. (center -. half), Float.min 1. (center +. half))
  end

type histogram = { lo : float; hi : float; counts : int array }

let histogram ~bins xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  if Array.length xs = 0 then { lo = 0.; hi = 0.; counts = Array.make bins 0 }
  else begin
  let lo, hi = min_max xs in
  let counts = Array.make bins 0 in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1. in
  let index x =
    let i = int_of_float ((x -. lo) /. width) in
    if i >= bins then bins - 1 else if i < 0 then 0 else i
  in
  Array.iter (fun x -> counts.(index x) <- counts.(index x) + 1) xs;
  { lo; hi; counts }
  end
