(** Descriptive statistics over float samples. *)

val mean : float array -> float
(** Arithmetic mean; [nan] on the empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); [0.] for fewer than two
    samples. *)

val stddev : float array -> float

val min_max : float array -> float * float
(** Smallest and largest sample; [(nan, nan)] on the empty array, so
    degenerate campaign summaries never raise. *)

val median : float array -> float
(** Median (average of the two middle elements for even sizes). Does not
    mutate its argument. [nan] on the empty array; the element itself on
    a singleton. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation between
    order statistics. [nan] on the empty array; the element itself on a
    singleton (for any [p]). *)

val fraction : ('a -> bool) -> 'a array -> float
(** Fraction of elements satisfying the predicate; [0.] on empty input. *)

val mean_ci95 : float array -> float * float
(** [(mean, halfwidth)] of the normal-approximation 95% confidence interval
    of the mean. Halfwidth is [0.] for fewer than two samples. *)

val wilson_interval : ?z:float -> successes:int -> trials:int -> unit -> float * float
(** [(low, high)] Wilson score interval for a binomial proportion at
    confidence [z] (default 1.96, i.e. 95%). Unlike the normal
    approximation it stays inside [\[0,1\]] and behaves at the extremes
    ([successes = 0] or [= trials]), which is exactly where fault
    campaigns live. [trials = 0] yields the vacuous [(0., 1.)]. Raises
    [Invalid_argument] on negative counts or [successes > trials]. *)

type histogram = { lo : float; hi : float; counts : int array }

val histogram : bins:int -> float array -> histogram
(** Equal-width histogram spanning [min, max] of the samples. Values equal
    to the maximum land in the last bin. [bins] must be positive. The
    empty array yields all-zero counts over [lo = hi = 0.]. *)
