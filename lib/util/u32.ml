type t = int

let mask = 0xFFFF_FFFF

let of_int x = x land mask

let to_signed x = if x land 0x8000_0000 <> 0 then x - 0x1_0000_0000 else x

let of_signed x = x land mask

let add a b = (a + b) land mask

let sub a b = (a - b) land mask

let mul a b =
  (* Split 32x32 into 16-bit halves so the intermediate products stay well
     inside the 63-bit native range. *)
  let al = a land 0xFFFF and ah = a lsr 16 in
  let bl = b land 0xFFFF and bh = b lsr 16 in
  let low = al * bl in
  let mid = ((al * bh) + (ah * bl)) land 0xFFFF in
  (low + (mid lsl 16)) land mask

let logand a b = a land b

let logor a b = a lor b

let logxor a b = a lxor b

let lognot a = lnot a land mask

let shift_left a n = (a lsl (n land 31)) land mask

let shift_right_logical a n = a lsr (n land 31)

let shift_right_arith a n =
  let n = n land 31 in
  (to_signed a asr n) land mask

let bit x i = (x lsr i) land 1 = 1

(* Both must mask their result: an index >= 32 or a mask wider than 32
   bits would otherwise escape the [0, 2^32) domain and break the
   to_signed/comparison invariants every other operation maintains. *)
let set_bit x i v =
  if v then (x lor (1 lsl i)) land mask else x land lnot (1 lsl i) land mask

let flip_bits x ~mask:m = x lxor (m land mask)

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
  go 0 x

let sext ~bits v =
  if bits <= 0 || bits > 32 then invalid_arg "U32.sext: bits out of range";
  let v = v land ((1 lsl bits) - 1) in
  if bits < 32 && v land (1 lsl (bits - 1)) <> 0 then (v - (1 lsl bits)) land mask
  else v

let lt_u a b = a < b

let lt_s a b = to_signed a < to_signed b

let to_hex x = Printf.sprintf "%08x" x
