(** 32-bit unsigned word arithmetic on native [int].

    Words are represented as OCaml [int]s in the canonical range
    [\[0, 2{^32})]. All operations return canonical values. This avoids
    [Int32] boxing in the simulator's hot loop. *)

type t = int
(** Invariant: [0 <= t < 0x1_0000_0000]. *)

val mask : int
(** [0xFFFF_FFFF]. *)

val of_int : int -> t
(** Truncate a native int to its low 32 bits. *)

val to_signed : t -> int
(** Reinterpret as a two's-complement signed 32-bit value in
    [\[-2{^31}, 2{^31})]. *)

val of_signed : int -> t
(** Inverse of [to_signed] (truncates to 32 bits first). *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
(** Low 32 bits of the product (the single-cycle multiplier's result). *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

val shift_left : t -> int -> t
val shift_right_logical : t -> int -> t
val shift_right_arith : t -> int -> t
(** Shift amounts are taken modulo 32, as the OR1K barrel shifter does. *)

val bit : t -> int -> bool
(** [bit x i] is bit [i] (0 = LSB). *)

val set_bit : t -> int -> bool -> t
(** Bit indices [>= 32] address outside the word and leave it
    unchanged (the result is always canonical). *)

val flip_bits : t -> mask:t -> t
(** XOR with a fault mask. The mask is truncated to 32 bits first, so
    the result stays canonical even for an over-wide mask. *)

val popcount : t -> int

val sext : bits:int -> int -> t
(** [sext ~bits v] sign-extends the low [bits] bits of [v] to 32 bits. *)

val lt_u : t -> t -> bool
val lt_s : t -> t -> bool

val to_hex : t -> string
(** 8-digit lowercase hex, e.g. ["0000beef"]. *)
