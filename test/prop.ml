(* Minimal seeded property-based testing helper.

   No new dependencies: generators are plain functions over
   [Sfi_util.Rng], and [check] derives one reproducible generator per
   case from (seed, index), so any falsified case can be replayed from
   the numbers in the failure message alone. QCheck stays in use for
   shrinking-heavy properties; this helper covers the common case of
   "N random inputs through a boolean oracle" without pulling operand
   distributions away from the library's own RNG. *)

open Sfi_util

type 'a gen = Rng.t -> 'a

let const x _ = x
let int ~lo ~hi rng = lo + Rng.int rng (hi - lo + 1)
let u32 rng = Rng.bits32 rng
let float ~lo ~hi rng = lo +. (Rng.float rng *. (hi -. lo))
let bool rng = Rng.bool rng

let pair ga gb rng =
  let a = ga rng in
  let b = gb rng in
  (a, b)

let triple ga gb gc rng =
  let a = ga rng in
  let b = gb rng in
  let c = gc rng in
  (a, b, c)

let one_of xs rng = List.nth xs (Rng.int rng (List.length xs))

let array ~min_len ~max_len g rng =
  let n = int ~lo:min_len ~hi:max_len rng in
  Array.init n (fun _ -> g rng)

let list ~min_len ~max_len g rng = Array.to_list (array ~min_len ~max_len g rng)

(* Per-case generator: the golden-ratio multiplier decorrelates
   consecutive case indices the same way SplitMix64's own increment
   does, so cases are independent streams, not shifted copies. *)
let case_rng seed i =
  Rng.create Int64.(logxor (of_int seed) (mul (of_int (i + 1)) 0x9E3779B97F4A7C15L))

let check ?(cases = 200) ?(seed = 0xC0FFEE) ?show name gen prop =
  for i = 0 to cases - 1 do
    let x = gen (case_rng seed i) in
    let ok =
      try prop x
      with e ->
        Alcotest.failf "property %s raised %s at case %d/%d (seed %#x)" name
          (Printexc.to_string e) i cases seed
    in
    if not ok then
      Alcotest.failf "property %s falsified at case %d/%d (seed %#x)%s" name i cases
        seed
        (match show with None -> "" | Some f -> ": " ^ f x)
  done

let test ?cases ?seed ?show name gen prop =
  Alcotest.test_case name `Quick (fun () -> check ?cases ?seed ?show name gen prop)
