(* Tests for the adaptive-precision campaign engine and its
   checkpoint/resume machinery:

   - [Fixed n] specs are pinned deterministic (points and obs
     signatures stable across repeated runs and job counts);
   - adaptive stopping is bit-identical for jobs=1 vs jobs=4;
   - a campaign killed after N batches and rerun from its checkpoint is
     bit-identical to the uninterrupted run, with the resumed trial
     count asserted on the [campaign.resumed_trials] counter;
   - corrupt and truncated checkpoint records are rejected (counted on
     [checkpoint.corrupt_rejected]) and recomputed, still bit-identically. *)

open Sfi_kernels
open Sfi_fi
module Spec = Campaign.Spec

let () = Sfi_obs.set_enabled true

let counter ?det name = Sfi_obs.Counter.make ?det name

let c_trials = counter "campaign.trials"

let c_batches = counter "campaign.batches"

let c_early_stops = counter "campaign.early_stops"

let c_resumed = counter ~det:false "campaign.resumed_trials"

let c_corrupt = counter ~det:false "checkpoint.corrupt_rejected"

let value = Sfi_obs.Counter.value

let with_obs f =
  Sfi_obs.reset ();
  let r = f () in
  (r, Sfi_obs.det_signature ())

let bench = lazy (Median.create ~n:11 ~seed:2 ())

(* Model A needs no netlist or characterization, so these tests stay
   fast; p = 1 makes every trial identical (all 32 bits flip on every
   op), p in (0,1) exercises genuinely stochastic streams. *)
let model_a p = Model.fixed_probability ~bit_flip_prob:p [@@warning "-3"]

let point_equal (p : Campaign.point) (q : Campaign.point) =
  Campaign.Point_json.(to_string (of_point p) = to_string (of_point q))
  && p.Campaign.trials = q.Campaign.trials

let points_equal ps qs =
  List.length ps = List.length qs && List.for_all2 point_equal ps qs

(* ---------- Fixed specs are deterministic ---------- *)

let test_fixed_pins_deterministic () =
  let bench = Lazy.force bench in
  let model = model_a 0.01 in
  ignore (Campaign.reference_cycles bench : int);
  let spec = Spec.(default |> with_trials 12 |> with_seed 9 |> with_jobs 2) in
  let first, sig_first =
    with_obs (fun () -> Campaign.run spec ~bench ~model ~freq_mhz:707.)
  in
  let again, sig_again =
    with_obs (fun () -> Campaign.run spec ~bench ~model ~freq_mhz:707.)
  in
  Alcotest.(check bool) "points equal" true (point_equal first again);
  Alcotest.(check bool) "det signatures equal" true (sig_first = sig_again);
  let freqs = [ 650.; 707.; 800. ] in
  let spec = Spec.(default |> with_trials 6 |> with_seed 4) in
  let sweep_a, sig_a =
    with_obs (fun () -> Campaign.run_sweep spec ~bench ~model ~freqs_mhz:freqs)
  in
  let sweep_b, sig_b =
    with_obs (fun () ->
        Campaign.run_sweep (Spec.with_jobs 4 spec) ~bench ~model ~freqs_mhz:freqs)
  in
  Alcotest.(check bool) "sweeps equal across job counts" true
    (points_equal sweep_a sweep_b);
  Alcotest.(check bool) "sweep det signatures equal" true (sig_a = sig_b)

let test_fixed_fills_ceiling () =
  let p =
    Campaign.run
      Spec.(default |> with_trials 7)
      ~bench:(Lazy.force bench) ~model:(model_a 0.01) ~freq_mhz:707.
  in
  Alcotest.(check int) "trials" 7 p.Campaign.trials;
  Alcotest.(check int) "trials_requested" 7 p.Campaign.trials_requested;
  Alcotest.(check bool) "interval brackets the rate" true
    (p.Campaign.ci_low <= p.Campaign.correct_rate
    && p.Campaign.correct_rate <= p.Campaign.ci_high)

(* ---------- adaptive stopping ---------- *)

(* p = 1 makes all trials identical, so the Wilson half-widths after one
   8-trial batch (~0.16 for a degenerate rate) decide the outcome alone:
   a 0.3 target stops after the first batch, a 0.01 target escalates to
   the ceiling. *)
let test_adaptive_early_stop () =
  let bench = Lazy.force bench in
  ignore (Campaign.reference_cycles bench : int);
  Sfi_obs.reset ();
  let spec =
    Spec.(default |> with_adaptive ~batch:8 ~max_trials:64 ~ci_target:0.3)
  in
  let p = Campaign.run spec ~bench ~model:(model_a 1.0) ~freq_mhz:707. in
  Alcotest.(check int) "stopped after one batch" 8 p.Campaign.trials;
  Alcotest.(check int) "ceiling recorded" 64 p.Campaign.trials_requested;
  Alcotest.(check int) "early stop counted" 1 (value c_early_stops);
  Alcotest.(check int) "one batch" 1 (value c_batches)

let test_adaptive_escalates_to_ceiling () =
  let bench = Lazy.force bench in
  ignore (Campaign.reference_cycles bench : int);
  Sfi_obs.reset ();
  let spec =
    Spec.(default |> with_adaptive ~batch:8 ~max_trials:24 ~ci_target:0.01)
  in
  let p = Campaign.run spec ~bench ~model:(model_a 1.0) ~freq_mhz:707. in
  Alcotest.(check int) "ran to the ceiling" 24 p.Campaign.trials;
  Alcotest.(check int) "no early stop" 0 (value c_early_stops);
  Alcotest.(check int) "three batches" 3 (value c_batches);
  Alcotest.(check int) "all trials executed" 24 (value c_trials)

let test_adaptive_jobs_determinism () =
  let bench = Lazy.force bench in
  let model = model_a 0.01 in
  ignore (Campaign.reference_cycles bench : int);
  List.iter
    (fun seed ->
      let spec jobs =
        Spec.(
          default
          |> with_adaptive ~batch:4 ~max_trials:32 ~ci_target:0.1
          |> with_seed seed |> with_jobs jobs)
      in
      let serial, sig1 =
        with_obs (fun () -> Campaign.run (spec 1) ~bench ~model ~freq_mhz:707.)
      in
      let pooled, sig4 =
        with_obs (fun () -> Campaign.run (spec 4) ~bench ~model ~freq_mhz:707.)
      in
      if not (point_equal serial pooled) then
        Alcotest.failf "adaptive jobs=1 vs jobs=4 differ at seed %d" seed;
      (* Batch and early-stop counts are in the deterministic signature:
         the pooled run must take the same stopping decisions, not just
         reach the same aggregates. *)
      Alcotest.(check bool)
        (Printf.sprintf "det signatures equal at seed %d" seed)
        true (sig1 = sig4))
    [ 1; 7; 42 ]

(* ---------- checkpoint / resume ---------- *)

let with_ckpt f =
  let path = Filename.temp_file "sfi-ckpt" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc s)

(* Keeps only the first [k] lines — the on-disk state of a run killed
   after its k-th batch record was written. *)
let truncate_to_lines path k =
  let lines = String.split_on_char '\n' (read_file path) in
  let kept = List.filteri (fun i _ -> i < k) lines in
  write_file path (String.concat "\n" kept ^ "\n")

(* An adaptive spec whose 0.01 target never converges, so the batch
   schedule is fixed: 4 batches of 8. Stochastic model so batches carry
   distinct data. *)
let ckpt_spec path =
  Spec.(
    default
    |> with_adaptive ~batch:8 ~max_trials:32 ~ci_target:0.01
    |> with_seed 5 |> with_checkpoint path)

let test_checkpoint_kill_and_resume () =
  let bench = Lazy.force bench in
  let model = model_a 0.01 in
  ignore (Campaign.reference_cycles bench : int);
  with_ckpt @@ fun path ->
  Sfi_obs.reset ();
  let full = Campaign.run (ckpt_spec path) ~bench ~model ~freq_mhz:707. in
  Alcotest.(check int) "uninterrupted run computed everything" 32 (value c_trials);
  Alcotest.(check int) "nothing resumed" 0 (value c_resumed);
  (* Simulate a kill after two completed batches. *)
  truncate_to_lines path 2;
  Sfi_obs.reset ();
  let resumed = Campaign.run (ckpt_spec path) ~bench ~model ~freq_mhz:707. in
  Alcotest.(check bool) "resumed point bit-identical" true (point_equal full resumed);
  Alcotest.(check int) "two batches resumed" 16 (value c_resumed);
  Alcotest.(check int) "two batches recomputed" 16 (value c_trials);
  (* The rerun re-appended the missing batches: a third run resumes
     everything and executes zero trials. *)
  Sfi_obs.reset ();
  let warm = Campaign.run (ckpt_spec path) ~bench ~model ~freq_mhz:707. in
  Alcotest.(check bool) "warm point bit-identical" true (point_equal full warm);
  Alcotest.(check int) "everything resumed" 32 (value c_resumed);
  Alcotest.(check int) "zero trials executed" 0 (value c_trials)

let test_checkpoint_corrupt_record_recomputed () =
  let bench = Lazy.force bench in
  let model = model_a 0.01 in
  ignore (Campaign.reference_cycles bench : int);
  with_ckpt @@ fun path ->
  let full = Campaign.run (ckpt_spec path) ~bench ~model ~freq_mhz:707. in
  (* Flip one byte in the middle of the first record: the CRC trailer
     (or the JSON parse) must reject the line. *)
  let content = read_file path in
  let first_nl = String.index content '\n' in
  let b = Bytes.of_string content in
  Bytes.set b (first_nl / 2) (Char.chr (Char.code (Bytes.get b (first_nl / 2)) lxor 0x20));
  write_file path (Bytes.to_string b);
  Sfi_obs.reset ();
  let resumed = Campaign.run (ckpt_spec path) ~bench ~model ~freq_mhz:707. in
  Alcotest.(check bool) "corruption detected" true (value c_corrupt >= 1);
  Alcotest.(check bool) "corrupt batch recomputed" true (value c_trials >= 8);
  Alcotest.(check int) "intact batches resumed" 24 (value c_resumed);
  Alcotest.(check bool) "point still bit-identical" true (point_equal full resumed)

let test_checkpoint_torn_tail_recomputed () =
  let bench = Lazy.force bench in
  let model = model_a 0.01 in
  ignore (Campaign.reference_cycles bench : int);
  with_ckpt @@ fun path ->
  let full = Campaign.run (ckpt_spec path) ~bench ~model ~freq_mhz:707. in
  (* A kill mid-write leaves a torn final line: cut the file in the
     middle of the last record. *)
  let content = read_file path in
  write_file path (String.sub content 0 (String.length content - 10));
  Sfi_obs.reset ();
  let resumed = Campaign.run (ckpt_spec path) ~bench ~model ~freq_mhz:707. in
  Alcotest.(check bool) "torn line counted" true (value c_corrupt >= 1);
  Alcotest.(check int) "three intact batches resumed" 24 (value c_resumed);
  Alcotest.(check bool) "point still bit-identical" true (point_equal full resumed)

let test_checkpoint_sweep_resume () =
  let bench = Lazy.force bench in
  let model = model_a 0.01 in
  let freqs = [ 650.; 707.; 800. ] in
  ignore (Campaign.reference_cycles bench : int);
  with_ckpt @@ fun path ->
  let full = Campaign.run_sweep (ckpt_spec path) ~bench ~model ~freqs_mhz:freqs in
  (* Kill mid-sweep: keep roughly the first half of the records (which
     may interleave frequencies — records are keyed, not ordered). *)
  truncate_to_lines path 5;
  Sfi_obs.reset ();
  let resumed = Campaign.run_sweep (ckpt_spec path) ~bench ~model ~freqs_mhz:freqs in
  Alcotest.(check bool) "sweep resumes bit-identically" true
    (points_equal full resumed);
  Alcotest.(check int) "five batches resumed" 40 (value c_resumed)

(* A checkpoint written under one seed must never be consumed by a run
   with another: the content key includes the seed. *)
let test_checkpoint_keyed_by_seed () =
  let bench = Lazy.force bench in
  let model = model_a 0.01 in
  ignore (Campaign.reference_cycles bench : int);
  with_ckpt @@ fun path ->
  ignore (Campaign.run (ckpt_spec path) ~bench ~model ~freq_mhz:707.);
  Sfi_obs.reset ();
  let other = Spec.with_seed 6 (ckpt_spec path) in
  let clean = Campaign.run (Spec.without_checkpoint other) ~bench ~model ~freq_mhz:707. in
  let with_foreign = Campaign.run other ~bench ~model ~freq_mhz:707. in
  Alcotest.(check int) "no foreign record consumed" 0 (value c_resumed);
  Alcotest.(check bool) "result unaffected by foreign records" true
    (point_equal clean with_foreign)

let () =
  Alcotest.run "sfi_adaptive"
    [
      ( "spec",
        [
          Alcotest.test_case "fixed specs deterministic" `Quick test_fixed_pins_deterministic;
          Alcotest.test_case "fixed fills ceiling" `Quick test_fixed_fills_ceiling;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "early stop" `Quick test_adaptive_early_stop;
          Alcotest.test_case "escalates to ceiling" `Quick
            test_adaptive_escalates_to_ceiling;
          Alcotest.test_case "jobs determinism" `Quick test_adaptive_jobs_determinism;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "kill and resume" `Quick test_checkpoint_kill_and_resume;
          Alcotest.test_case "corrupt record recomputed" `Quick
            test_checkpoint_corrupt_record_recomputed;
          Alcotest.test_case "torn tail recomputed" `Quick
            test_checkpoint_torn_tail_recomputed;
          Alcotest.test_case "sweep resume" `Quick test_checkpoint_sweep_resume;
          Alcotest.test_case "keyed by seed" `Quick test_checkpoint_keyed_by_seed;
        ] );
    ]
