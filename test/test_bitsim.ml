(* Bit-parallel engine tests: the compiled levelized schedule, the word
   evaluator, lane packing, the packed event-driven DTA, and the
   seed-replica differential contract — the packed characterization
   kernel must produce a class database bit-identical to the scalar
   kernel's, across every op class and operand profile. *)

open Sfi_util
open Sfi_netlist
open Sfi_timing
module B = Circuit.Builder

(* Tests must exercise both engines for real: make sure no persistent
   cache (engine-independent keys!) can serve one engine the other's
   database. *)
let () = Sfi_cache.set_dir None

(* ---------- compiled levelized schedule ---------- *)

let random_circuit rng ~inputs ~gates =
  let b = B.create () in
  let ins = Array.init inputs (fun i -> B.input b (Printf.sprintf "i%d" i)) in
  let nets = ref (Array.to_list ins) in
  let pick () =
    let l = !nets in
    List.nth l (Rng.int rng (List.length l))
  in
  let kinds = Array.of_list Cell.all in
  for _ = 1 to gates do
    let kind = kinds.(Rng.int rng (Array.length kinds)) in
    let fan_in = Array.init (Cell.arity kind) (fun _ -> pick ()) in
    nets := B.gate b kind fan_in :: !nets
  done;
  let outs = List.filteri (fun i _ -> i < 4) !nets in
  List.iteri (fun i n -> B.output b (Printf.sprintf "o%d" i) n) outs;
  (Circuit.freeze b ~lib:Cell_lib.default, ins, Array.of_list outs)

let test_schedule_well_formed () =
  let rng = Rng.of_int 11 in
  let c, _, _ = random_circuit rng ~inputs:8 ~gates:120 in
  let n_gates = Circuit.gate_count c in
  Alcotest.(check int) "schedule covers every gate" n_gates
    (Array.length c.Circuit.sched_gate);
  let seen = Array.make n_gates false in
  Array.iter
    (fun gi ->
      Alcotest.(check bool) "gate scheduled once" false seen.(gi);
      seen.(gi) <- true)
    c.Circuit.sched_gate;
  (* Every gate strictly above its fan-in drivers, segments uniform in
     kind and nondecreasing in level. *)
  Array.iteri
    (fun gi (g : Circuit.gate) ->
      Array.iter
        (fun n ->
          let d = c.Circuit.driver.(n) in
          if d >= 0 then
            Alcotest.(check bool) "level above fan-in" true
              (c.Circuit.gate_level.(gi) > c.Circuit.gate_level.(d)))
        g.Circuit.fan_in;
      Alcotest.(check bool) "level within bounds" true
        (c.Circuit.gate_level.(gi) >= 1 && c.Circuit.gate_level.(gi) <= c.Circuit.n_levels))
    c.Circuit.gates;
  let last_level = ref 0 in
  Array.iteri
    (fun s kind ->
      let lo = c.Circuit.seg_off.(s) and hi = c.Circuit.seg_off.(s + 1) in
      Alcotest.(check bool) "segment non-empty" true (hi > lo);
      let lvl = c.Circuit.gate_level.(c.Circuit.sched_gate.(lo)) in
      Alcotest.(check bool) "segments level-ordered" true (lvl >= !last_level);
      last_level := lvl;
      for j = lo to hi - 1 do
        let gi = c.Circuit.sched_gate.(j) in
        Alcotest.(check int) "segment kind uniform" kind c.Circuit.kind_code.(gi);
        Alcotest.(check int) "segment level uniform" lvl c.Circuit.gate_level.(gi)
      done)
    c.Circuit.seg_kind;
  Alcotest.(check int) "n_levels is the max gate level" c.Circuit.n_levels
    (Array.fold_left max 0 c.Circuit.gate_level)

(* ---------- word evaluator vs scalar evaluation ---------- *)

let prop_eval_levels_matches_scalar =
  QCheck.Test.make ~name:"Bitsim.eval_levels equals per-lane scalar evaluation"
    ~count:60 QCheck.small_nat
    (fun seed ->
      let rng = Rng.of_int (seed + 31) in
      let c, ins, outs = random_circuit rng ~inputs:7 ~gates:60 in
      let words = Bitsim.make_words c in
      (* Random word per input: every lane is an independent vector. *)
      let in_words =
        Array.map
          (fun _ ->
            Int64.to_int
              (Int64.logand (Rng.int64 rng) (Int64.of_int Bitsim.full_mask)))
          ins
      in
      Array.iteri (fun i n -> words.(n) <- in_words.(i)) ins;
      Bitsim.eval_levels c words;
      let ok = ref true in
      for lane = 0 to Bitsim.lanes - 1 do
        let values = Array.make c.Circuit.n_nets false in
        (match c.Circuit.const_true with Some n -> values.(n) <- true | None -> ());
        Array.iteri
          (fun i n -> values.(n) <- (in_words.(i) lsr lane) land 1 = 1)
          ins;
        Circuit.eval_all_gates c values;
        Array.iter
          (fun n -> if values.(n) <> ((words.(n) lsr lane) land 1 = 1) then ok := false)
          outs
      done;
      !ok)

(* ---------- lane packing round-trip ---------- *)

let prop_pack_roundtrip =
  QCheck.Test.make ~name:"lane pack/read_lane round-trips random trial vectors"
    ~count:200
    QCheck.(pair (int_range 1 63) small_nat)
    (fun (nvals, seed) ->
      let rng = Rng.of_int (seed + 7) in
      let vals = Array.init nvals (fun _ -> Rng.bits32 rng) in
      let nets = Array.init 32 (fun i -> i) in
      let words = Array.make 32 0 in
      Bitsim.pack words nets vals;
      let ok = ref true in
      for l = 0 to nvals - 1 do
        if Bitsim.read_lane words nets ~lane:l <> vals.(l) then ok := false
      done;
      (* Lanes beyond the packed values read back as zero. *)
      for l = nvals to Bitsim.lanes - 1 do
        if Bitsim.read_lane words nets ~lane:l <> 0 then ok := false
      done;
      !ok)

let test_popcount_ctz () =
  Alcotest.(check int) "popcount full" Bitsim.lanes (Bitsim.popcount Bitsim.full_mask);
  Alcotest.(check int) "popcount zero" 0 (Bitsim.popcount 0);
  for l = 0 to Bitsim.lanes - 1 do
    Alcotest.(check int) "ctz of single bit" l (Bitsim.ctz (1 lsl l));
    Alcotest.(check int) "popcount single bit" 1 (Bitsim.popcount (1 lsl l))
  done;
  Alcotest.(check int) "ctz picks lowest bit" 3 (Bitsim.ctz (0b11010_1000))

(* ---------- packed DTA vs per-lane scalar DTA ---------- *)

(* Jitter every gate delay by a random factor: distinct delay-path sums
   then never collide in float, so the packed engine's event merging
   cannot hit the dependent same-instant ties that are the one
   documented divergence risk — matching the process variation every
   production netlist carries. *)
let jitter_delays rng c =
  Circuit.scale_gate_delays c (fun _ -> 0.8 +. (0.4 *. Rng.float rng))

let prop_packed_dta_matches_scalar =
  QCheck.Test.make ~name:"packed DTA settle times bit-equal per-lane scalar DTA"
    ~count:25 QCheck.small_nat
    (fun seed ->
      let rng = Rng.of_int (seed + 211) in
      let c, ins, outs = random_circuit rng ~inputs:6 ~gates:80 in
      jitter_delays rng c;
      let packed = Dta_packed.create ~watch:outs c in
      (* One word per input; lane l of the packed cycle must equal a
         fresh scalar DTA driven with lane l's bits. *)
      let in_words =
        Array.map
          (fun _ ->
            Int64.to_int
              (Int64.logand (Rng.int64 rng) (Int64.of_int Bitsim.full_mask)))
          ins
      in
      Array.iteri (fun i n -> Dta_packed.set_input_word packed n in_words.(i)) ins;
      Dta_packed.cycle packed;
      let ok = ref true in
      for lane = 0 to Bitsim.lanes - 1 do
        let scalar = Dta.create c in
        Array.iteri
          (fun i n -> Dta.set_input scalar n ((in_words.(i) lsr lane) land 1 = 1))
          ins;
        Dta.cycle scalar;
        Array.iter
          (fun n ->
            if Dta.value scalar n <> Dta_packed.value packed n ~lane then ok := false;
            (* Bit-identical, not approximately equal. *)
            if Dta.settle_time scalar n <> Dta_packed.settle_time packed n ~lane then
              ok := false)
          outs
      done;
      !ok)

(* ---------- seed-replica differential: packed vs scalar class_db ---------- *)

let sized_alu =
  lazy
    (let alu = Alu.build () in
     Sizing.apply_process_variation ~sigma:0.03 ~seed:1 alu.Alu.circuit;
     Sizing.size_to_clock ~clock_mhz:707. alu.Alu.circuit;
     alu)

(* Mixed operand profiles so the differential covers uniform32/16/8. *)
let profile_for cls =
  match Op_class.index cls mod 3 with
  | 0 -> Characterize.uniform32
  | 1 -> Characterize.uniform16
  | _ -> Characterize.uniform8

let db_bytes (db : Characterize.t) = Marshal.to_string db []

let test_packed_db_bit_identical () =
  if not (Bitsim.available ()) then ()
  else begin
    let alu = Lazy.force sized_alu in
    let run engine =
      Characterize.run ~cycles:150 ~seed:97 ~profile_for ~engine ~vdd:0.7 alu
    in
    let scalar = run Characterize.Scalar in
    let packed = run Characterize.Packed in
    (* Bit-identity of the full database: every per-class CDF, the raw
       cycle_arrivals matrices and the settle maxima, via the marshalled
       bytes (floats compared representation-exact). *)
    Alcotest.(check bool) "class_db bit-identical across engines" true
      (db_bytes scalar = db_bytes packed);
    (* And spot-check semantics, so a Marshal quirk could not hide a
       real difference. *)
    List.iter
      (fun cls ->
        let s = Characterize.class_db scalar cls in
        let p = Characterize.class_db packed cls in
        Alcotest.(check string) "profile" s.Characterize.profile_name
          p.Characterize.profile_name;
        Alcotest.(check bool) "max_settle" true
          (Float.equal s.Characterize.max_settle p.Characterize.max_settle);
        Alcotest.(check bool) "cycle_arrivals" true
          (s.Characterize.cycle_arrivals = p.Characterize.cycle_arrivals))
      Op_class.all
  end

(* The packed kernel must survive a partial final sweep (cycles not a
   multiple of lanes is the common case) and a single-trial run. *)
let test_packed_partial_batches () =
  if not (Bitsim.available ()) then ()
  else begin
    let alu = Lazy.force sized_alu in
    List.iter
      (fun cycles ->
        let run engine = Characterize.run ~cycles ~seed:5 ~engine ~vdd:0.7 alu in
        Alcotest.(check bool)
          (Printf.sprintf "bit-identical at %d cycles" cycles)
          true
          (db_bytes (run Characterize.Scalar) = db_bytes (run Characterize.Packed)))
      [ 1; Bitsim.lanes; Bitsim.lanes + 1 ]
  end

(* Auto must behave exactly like the resolved engine (packed here). *)
let test_auto_resolves () =
  let alu = Lazy.force sized_alu in
  let auto = Characterize.run ~cycles:80 ~seed:12 ~engine:Characterize.Auto ~vdd:0.7 alu in
  let explicit =
    Characterize.run ~cycles:80 ~seed:12 ~vdd:0.7 alu
      ~engine:(if Bitsim.available () then Characterize.Packed else Characterize.Scalar)
  in
  Alcotest.(check bool) "auto equals resolved engine" true
    (db_bytes auto = db_bytes explicit)

let () =
  Alcotest.run "sfi_bitsim"
    [
      ( "schedule",
        [ Alcotest.test_case "levelized schedule well-formed" `Quick test_schedule_well_formed ] );
      ( "words",
        [
          QCheck_alcotest.to_alcotest prop_eval_levels_matches_scalar;
          QCheck_alcotest.to_alcotest prop_pack_roundtrip;
          Alcotest.test_case "popcount and ctz" `Quick test_popcount_ctz;
        ] );
      ( "packed-dta",
        [ QCheck_alcotest.to_alcotest prop_packed_dta_matches_scalar ] );
      ( "differential",
        [
          Alcotest.test_case "packed class_db bit-identical" `Quick
            test_packed_db_bit_identical;
          Alcotest.test_case "partial final sweep" `Quick test_packed_partial_batches;
          Alcotest.test_case "auto engine resolution" `Quick test_auto_resolves;
        ] );
    ]
