(* Tests for the persistent content-addressed cache (Sfi_cache): CRC
   pinning against the benchmark kernel's reference, fingerprint
   injectivity properties, entry round-trips, corruption/truncation
   rejection, maintenance (scan/prune), and the end-to-end acceptance
   criterion — a warm-cache rerun of characterization and a Monte-Carlo
   campaign is bit-identical to the cold run with zero characterization
   trials performed and an unchanged deterministic obs signature. *)

open Sfi_timing
open Sfi_core

(* Isolate from any ambient SFI_CACHE_DIR and record counters. *)
let () = Unix.putenv "SFI_CACHE_DIR" ""

let () = Sfi_obs.set_enabled true

let counter name = Sfi_obs.Counter.make ~det:false name

let c_hits = counter "cache.hits"

let c_misses = counter "cache.misses"

let c_stores = counter "cache.stores"

let c_corrupt = counter "cache.corrupt_rejected"

let c_trials = counter "characterize.trials"

let value = Sfi_obs.Counter.value

(* Each test gets a private directory; the cache is always disabled
   again afterwards so test order cannot matter. *)
let seq = ref 0

let with_temp_cache f =
  incr seq;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sfi-test-cache.%d.%d" (Unix.getpid ()) !seq)
  in
  Sfi_cache.set_dir (Some dir);
  Fun.protect
    ~finally:(fun () ->
      ignore (Sfi_cache.prune ~all:true ~dir () : int);
      (try Unix.rmdir dir with Unix.Unix_error _ -> () | Sys_error _ -> ());
      Sfi_cache.set_dir None)
    (fun () -> f dir)

let the_entry dir =
  match Sfi_cache.scan ~dir with
  | [ e ] -> e
  | es -> Alcotest.failf "expected exactly one entry, scan found %d" (List.length es)

let corrupt_byte path pos =
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let pos = if pos < String.length content then pos else String.length content / 2 in
  let b = Bytes.of_string content in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xFF));
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_bytes oc b);
  String.length content

(* ---------- CRC-32 pinned to the benchmark kernel's reference ---------- *)

let test_crc_pin () =
  (* The host-side CRC must be bit-identical to the algorithm the crc32
     benchmark kernel runs on the simulated core. *)
  let cases =
    [ ""; "a"; "123456789"; "The quick brown fox jumps over the lazy dog";
      String.init 256 Char.chr ]
  in
  List.iter
    (fun s ->
      let bytes = Array.init (String.length s) (fun i -> Char.code s.[i]) in
      Alcotest.(check int)
        (Printf.sprintf "crc of %d bytes" (String.length s))
        (Sfi_kernels.Crc32.reference bytes) (Sfi_cache.crc32 s))
    cases;
  (* The catalogue check value of the reflected CRC-32. *)
  Alcotest.(check int) "check value" 0xCBF43926 (Sfi_cache.crc32 "123456789")

(* ---------- fingerprints ---------- *)

let test_fingerprint_properties () =
  let open Sfi_cache.Fingerprint in
  let digest adds =
    let fp = create "test/1" in
    List.iter (fun f -> f fp) adds;
    hex fp
  in
  Alcotest.(check string) "deterministic"
    (digest [ (fun fp -> add_int fp 42); (fun fp -> add_string fp "x") ])
    (digest [ (fun fp -> add_int fp 42); (fun fp -> add_string fp "x") ]);
  Alcotest.(check bool) "label separates" false
    (hex (create "a/1") = hex (create "b/1"));
  Alcotest.(check bool) "string boundaries hashed" false
    (digest [ (fun fp -> add_string fp "ab"); (fun fp -> add_string fp "c") ]
    = digest [ (fun fp -> add_string fp "a"); (fun fp -> add_string fp "bc") ]);
  Alcotest.(check bool) "array boundaries hashed" false
    (digest [ (fun fp -> add_int_array fp [| 1; 2 |]); (fun fp -> add_int_array fp [| 3 |]) ]
    = digest [ (fun fp -> add_int_array fp [| 1 |]); (fun fp -> add_int_array fp [| 2; 3 |]) ]);
  Alcotest.(check bool) "float hashed by bits" false
    (digest [ (fun fp -> add_float fp 0.) ] = digest [ (fun fp -> add_float fp (-0.)) ]);
  Alcotest.(check int) "hex is 16 digits" 16 (String.length (hex (create "x")))

(* ---------- store / load round-trip ---------- *)

let test_roundtrip () =
  with_temp_cache @@ fun dir ->
  let v = ("payload", [| 1.5; -2.25 |], [ 1; 2; 3 ]) in
  let h0 = value c_hits and m0 = value c_misses and s0 = value c_stores in
  Sfi_cache.store ~namespace:"ns" ~key:"k1" v;
  Alcotest.(check int) "store counted" (s0 + 1) (value c_stores);
  (match (Sfi_cache.load ~namespace:"ns" ~key:"k1" : (string * float array * int list) option) with
  | Some v' -> Alcotest.(check bool) "value round-trips" true (v = v')
  | None -> Alcotest.fail "load returned None after store");
  Alcotest.(check int) "hit counted" (h0 + 1) (value c_hits);
  Alcotest.(check bool) "absent key misses" true
    ((Sfi_cache.load ~namespace:"ns" ~key:"k2" : unit option) = None);
  Alcotest.(check bool) "other namespace misses" true
    ((Sfi_cache.load ~namespace:"other" ~key:"k1" : unit option) = None);
  Alcotest.(check int) "misses counted" (m0 + 2) (value c_misses);
  let e = the_entry dir in
  Alcotest.(check string) "entry namespace" "ns" e.Sfi_cache.namespace;
  Alcotest.(check string) "entry key" "k1" e.Sfi_cache.key;
  Alcotest.(check bool) "entry valid" true e.Sfi_cache.valid

let test_disabled_noop () =
  Sfi_cache.set_dir None;
  Alcotest.(check bool) "disabled" false (Sfi_cache.enabled ());
  Sfi_cache.store ~namespace:"ns" ~key:"k" 42;
  Alcotest.(check bool) "load disabled" true
    ((Sfi_cache.load ~namespace:"ns" ~key:"k" : int option) = None);
  let calls = ref 0 in
  let v =
    Sfi_cache.memo ~namespace:"ns" ~key:"k" (fun () ->
        incr calls;
        7)
  in
  Alcotest.(check int) "memo computes" 7 v;
  Alcotest.(check int) "compute ran" 1 !calls

(* ---------- corruption and truncation rejection ---------- *)

let test_corruption_rejected () =
  with_temp_cache @@ fun dir ->
  Sfi_cache.store ~namespace:"ns" ~key:"k" [| 3; 1; 4; 1; 5 |];
  let path = Filename.concat dir (the_entry dir).Sfi_cache.file in
  ignore (corrupt_byte path 40 : int);
  let r0 = value c_corrupt in
  Alcotest.(check bool) "corrupt entry not loaded" true
    ((Sfi_cache.load ~namespace:"ns" ~key:"k" : int array option) = None);
  Alcotest.(check int) "rejection counted" (r0 + 1) (value c_corrupt);
  Alcotest.(check bool) "bad file removed" false (Sys.file_exists path);
  (* memo recomputes and repopulates *)
  let v = Sfi_cache.memo ~namespace:"ns" ~key:"k" (fun () -> [| 9 |]) in
  Alcotest.(check bool) "recomputed" true (v = [| 9 |]);
  Alcotest.(check bool) "repopulated" true
    ((Sfi_cache.load ~namespace:"ns" ~key:"k" : int array option) = Some [| 9 |])

let test_truncation_rejected () =
  with_temp_cache @@ fun dir ->
  Sfi_cache.store ~namespace:"ns" ~key:"k" (String.make 64 'x');
  let path = Filename.concat dir (the_entry dir).Sfi_cache.file in
  (* Truncate at several byte counts, covering every header field. *)
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  List.iter
    (fun keep ->
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (String.sub content 0 keep));
      Alcotest.(check bool)
        (Printf.sprintf "truncated to %d bytes rejected" keep)
        true
        ((Sfi_cache.load ~namespace:"ns" ~key:"k" : string option) = None))
    [ 0; 4; 11; 20; String.length content - 1 ]

let test_version_mismatch_rejected () =
  with_temp_cache @@ fun dir ->
  Sfi_cache.store ~namespace:"ns" ~key:"k" 1;
  let path = Filename.concat dir (the_entry dir).Sfi_cache.file in
  (* Byte 7 is the low byte of the big-endian schema version. *)
  ignore (corrupt_byte path 7 : int);
  Alcotest.(check bool) "other version not loaded" true
    ((Sfi_cache.load ~namespace:"ns" ~key:"k" : int option) = None)

(* ---------- scan and prune ---------- *)

let test_scan_and_prune () =
  with_temp_cache @@ fun dir ->
  Sfi_cache.store ~namespace:"a" ~key:"k1" 1;
  Sfi_cache.store ~namespace:"b" ~key:"k2" 2;
  (let entries = Sfi_cache.scan ~dir in
   Alcotest.(check int) "two entries" 2 (List.length entries);
   Alcotest.(check bool) "all valid" true
     (List.for_all (fun e -> e.Sfi_cache.valid) entries));
  (* Corrupt one; prune must evict exactly that one. *)
  let victim =
    match
      List.find_opt (fun e -> e.Sfi_cache.namespace = "a") (Sfi_cache.scan ~dir)
    with
    | Some e -> Filename.concat dir e.Sfi_cache.file
    | None -> Alcotest.fail "entry for namespace a not found"
  in
  ignore (corrupt_byte victim 30 : int);
  (* A leftover temp file from an interrupted writer is swept too. *)
  let tmp = Filename.concat dir "b-k2.sfic.tmp.99999" in
  let oc = open_out_bin tmp in
  output_string oc "partial";
  close_out oc;
  Alcotest.(check int) "prune removes the invalid entry" 1
    (Sfi_cache.prune ~dir ());
  Alcotest.(check bool) "temp file swept" false (Sys.file_exists tmp);
  Alcotest.(check int) "valid entry survives" 1 (List.length (Sfi_cache.scan ~dir));
  Alcotest.(check int) "prune --all clears" 1 (Sfi_cache.prune ~all:true ~dir ());
  Alcotest.(check int) "empty after prune --all" 0 (List.length (Sfi_cache.scan ~dir))

(* ---------- characterization: cold vs warm bit-identity ---------- *)

let test_characterize_cold_warm () =
  with_temp_cache @@ fun dir ->
  let alu = Sfi_netlist.Alu.build () in
  let run () = Characterize.run ~cycles:40 ~seed:11 ~jobs:1 ~vdd:0.7 alu in
  Sfi_obs.reset ();
  let cold = run () in
  let sig_cold = Sfi_obs.det_signature () in
  let trials_cold = value c_trials in
  Alcotest.(check bool) "cold run performed trials" true (trials_cold > 0);
  Alcotest.(check int) "one chardb entry on disk" 1 (List.length (Sfi_cache.scan ~dir));
  Sfi_obs.reset ();
  let warm = run () in
  let sig_warm = Sfi_obs.det_signature () in
  Alcotest.(check bool) "warm db bit-identical" true (compare cold warm = 0);
  Alcotest.(check int) "warm run performed zero trials" 0 (value c_trials);
  Alcotest.(check int) "warm run hit the cache" 1 (value c_hits);
  Alcotest.(check bool) "det signature unchanged" true (sig_cold = sig_warm)

let test_characterize_corrupt_recompute () =
  with_temp_cache @@ fun dir ->
  let alu = Sfi_netlist.Alu.build () in
  let run () = Characterize.run ~cycles:40 ~seed:11 ~jobs:1 ~vdd:0.7 alu in
  let cold = run () in
  let path = Filename.concat dir (the_entry dir).Sfi_cache.file in
  ignore (corrupt_byte path 4096 : int);
  Sfi_obs.reset ();
  let recomputed = run () in
  Alcotest.(check bool) "recomputed db bit-identical" true (compare cold recomputed = 0);
  Alcotest.(check int) "corruption detected" 1 (value c_corrupt);
  Alcotest.(check bool) "recompute performed trials" true (value c_trials > 0);
  (* The recompute re-stored a valid entry. *)
  Alcotest.(check bool) "entry rewritten valid" true (the_entry dir).Sfi_cache.valid

(* ---------- end-to-end: flow + campaign, cold vs warm ---------- *)

let test_campaign_cold_warm () =
  let bench = Sfi_kernels.Median.create ~n:9 () in
  let config = { Flow.default_config with Flow.char_cycles = 250 } in
  let phase () =
    (* A fresh flow per phase: its in-memory char_db memo must not leak
       between phases — only the disk store may. *)
    let flow = Flow.create ~config () in
    let fsta = Flow.sta_limit_mhz flow ~vdd:0.7 in
    let model = Flow.model_c flow ~vdd:0.7 ~sigma:0.010 () in
    let spec =
      Sfi_fi.Campaign.Spec.(
        default |> with_trials 4 |> with_seed 3 |> with_jobs 1)
    in
    let p = Sfi_fi.Campaign.run spec ~bench ~model ~freq_mhz:(fsta *. 1.15) in
    (p, Flow.char_db flow ~vdd:0.7)
  in
  (* Fill the in-process reference-cycles memo before the measured
     phases so both phases see identical (det) hit/miss counts. *)
  ignore (Sfi_fi.Campaign.reference_cycles bench : int);
  with_temp_cache @@ fun dir ->
  Sfi_obs.reset ();
  let p_cold, db_cold = phase () in
  let sig_cold = Sfi_obs.det_signature () in
  Alcotest.(check bool) "cold phase characterized" true (value c_trials > 0);
  Sfi_obs.reset ();
  let p_warm, db_warm = phase () in
  let sig_warm = Sfi_obs.det_signature () in
  Alcotest.(check bool) "campaign point bit-identical" true (compare p_cold p_warm = 0);
  Alcotest.(check bool) "char db bit-identical" true (compare db_cold db_warm = 0);
  Alcotest.(check int) "warm phase ran zero characterization trials" 0 (value c_trials);
  Alcotest.(check bool) "det signature unchanged between phases" true
    (sig_cold = sig_warm);
  ignore dir

let test_reference_cycles_disk () =
  with_temp_cache @@ fun dir ->
  (* Fresh names throughout: the in-process memo is keyed by name and
     shared with the other tests in this binary, so reusing "median"
     would never reach the disk path. *)
  let bench =
    { (Sfi_kernels.Median.create ~n:9 ()) with Sfi_kernels.Bench.name = "median-disk" }
  in
  let n1 = Sfi_fi.Campaign.reference_cycles bench in
  Alcotest.(check bool) "positive cycle count" true (n1 > 0);
  let on_disk =
    List.filter (fun e -> e.Sfi_cache.namespace = "refcycles") (Sfi_cache.scan ~dir)
  in
  Alcotest.(check int) "refcycles entry stored" 1 (List.length on_disk);
  (* An alias with a different name misses the per-name memo but shares
     the content-addressed disk entry: same count, no reference run. *)
  let h0 = value c_hits in
  let alias = { bench with Sfi_kernels.Bench.name = "median-alias" } in
  let n2 = Sfi_fi.Campaign.reference_cycles alias in
  Alcotest.(check int) "alias served from disk" n1 n2;
  Alcotest.(check int) "disk hit counted" (h0 + 1) (value c_hits)

let () =
  Alcotest.run "sfi_cache"
    [
      ( "integrity",
        [
          Alcotest.test_case "crc32 pinned to kernel reference" `Quick test_crc_pin;
          Alcotest.test_case "fingerprint properties" `Quick test_fingerprint_properties;
        ] );
      ( "entries",
        [
          Alcotest.test_case "store/load round-trip" `Quick test_roundtrip;
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
          Alcotest.test_case "corruption rejected" `Quick test_corruption_rejected;
          Alcotest.test_case "truncation rejected" `Quick test_truncation_rejected;
          Alcotest.test_case "version mismatch rejected" `Quick
            test_version_mismatch_rejected;
          Alcotest.test_case "scan and prune" `Quick test_scan_and_prune;
        ] );
      ( "warm runs",
        [
          Alcotest.test_case "characterize cold/warm bit-identical" `Quick
            test_characterize_cold_warm;
          Alcotest.test_case "characterize corrupt entry recomputed" `Quick
            test_characterize_corrupt_recompute;
          Alcotest.test_case "campaign cold/warm bit-identical" `Quick
            test_campaign_cold_warm;
          Alcotest.test_case "reference cycles shared on disk" `Quick
            test_reference_cycles_disk;
        ] );
    ]
