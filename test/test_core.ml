open Sfi_timing
open Sfi_core

let check_float = Alcotest.(check (float 1e-6))

(* One shared flow with a small characterization kernel. *)
let ctx = lazy (Experiments.make_ctx { Experiments.fast with Experiments.char_cycles = 400 })

let flow = lazy (Experiments.flow (Lazy.force ctx))

(* ---------- Flow ---------- *)

let test_flow_sta_limit_calibrated () =
  let fsta = Flow.sta_limit_mhz (Lazy.force flow) ~vdd:0.7 in
  Alcotest.(check bool) (Printf.sprintf "707 calibration (%.2f)" fsta) true
    (abs_float (fsta -. 707.) < 1.0)

let test_flow_sta_limit_scales_with_vdd () =
  let f = Lazy.force flow in
  let f07 = Flow.sta_limit_mhz f ~vdd:0.7 and f08 = Flow.sta_limit_mhz f ~vdd:0.8 in
  Alcotest.(check bool) "faster at 0.8 V" true (f08 > f07 *. 1.2);
  Alcotest.(check bool) "below 1.4x" true (f08 < f07 *. 1.4)

let test_flow_char_db_cached () =
  let f = Lazy.force flow in
  let db1 = Flow.char_db f ~vdd:0.7 in
  let db2 = Flow.char_db f ~vdd:0.7 in
  Alcotest.(check bool) "physically equal" true (db1 == db2)

let test_flow_models_constructible () =
  let f = Lazy.force flow in
  Alcotest.(check string) "B" "B" (Sfi_fi.Model.key (Flow.model_b f ~vdd:0.7));
  Alcotest.(check string) "B+" "B+"
    (Sfi_fi.Model.key (Flow.model_bplus f ~vdd:0.7 ~sigma:0.01));
  Alcotest.(check string) "C" "C" (Sfi_fi.Model.key (Flow.model_c f ~vdd:0.7 ~sigma:0.01 ()));
  Alcotest.(check string) "A" "A" (Sfi_fi.Model.key (Flow.model_a ~bit_flip_prob:0.1))

let test_flow_summary_mentions_stages () =
  let s = Flow.summary (Lazy.force flow) in
  List.iter
    (fun word ->
      let contains =
        let n = String.length word in
        let rec go i = i + n <= String.length s && (String.sub s i n = word || go (i + 1)) in
        go 0
      in
      if not contains then Alcotest.failf "summary lacks %S" word)
    [ "netlist"; "virtual synthesis"; "STA"; "DTA"; "mul"; "addsub" ]

let test_flow_operating_vdd_rescales () =
  (* Model C characterized at 0.7 V but operated at a reduced supply must
     start injecting at lower frequencies. *)
  let f = Lazy.force flow in
  let open Sfi_util in
  let onset model =
    (* Bisect the injector's fast-path boundary. *)
    let can freq =
      let rng = Rng.of_int 1 in
      not (Sfi_fi.Injector.cannot_inject (Sfi_fi.Injector.create ~model ~freq_mhz:freq ~rng ()))
    in
    let lo = ref 300. and hi = ref 2000. in
    for _ = 1 to 40 do
      let mid = (!lo +. !hi) /. 2. in
      if can mid then hi := mid else lo := mid
    done;
    !hi
  in
  let nominal = onset (Flow.model_c f ~vdd:0.7 ~sigma:0. ()) in
  let scaled = onset (Flow.model_c ~operating_vdd:0.66 f ~vdd:0.7 ~sigma:0. ()) in
  Alcotest.(check bool)
    (Printf.sprintf "onset %.0f at 0.66 V < %.0f at 0.7 V" scaled nominal)
    true
    (scaled < nominal -. 20.)

let test_flow_corner_shifts_sta () =
  let config =
    { Flow.default_config with Flow.char_cycles = 100; Flow.corner_factor = 1.1 }
  in
  let slow = Flow.create ~config () in
  Alcotest.(check bool) "slow corner lowers fmax" true
    (Flow.sta_limit_mhz slow ~vdd:0.7 < 660.)

(* ---------- Power ---------- *)

let test_power_reference_points () =
  (* The paper's two post-layout reference points. *)
  let p06 = Power.active_uw_per_mhz ~vdd:0.6 and p07 = Power.active_uw_per_mhz ~vdd:0.7 in
  Alcotest.(check bool) (Printf.sprintf "10.9 at 0.6 (got %.2f)" p06) true
    (abs_float (p06 -. 10.9) < 0.3);
  Alcotest.(check bool) (Printf.sprintf "15.0 at 0.7 (got %.2f)" p07) true
    (abs_float (p07 -. 15.0) < 0.3)

let test_power_normalized () =
  check_float "unity at nominal" 1.0 (Power.normalized ~vdd:0.7);
  let p = Power.normalized ~vdd:0.667 in
  Alcotest.(check bool) (Printf.sprintf "0.667 V ~ 0.91x (got %.3f)" p) true
    (p > 0.88 && p < 0.94)

let test_power_leakage_fraction () =
  check_float "3% at 0.7" 0.03 (Power.leakage_fraction ~vdd:0.7);
  check_float "2% at 0.6" 0.02 (Power.leakage_fraction ~vdd:0.6)

let test_power_equivalent_vdd () =
  let vm = Vdd_model.default in
  let v = Power.equivalent_vdd vm ~headroom_ratio:1.0 in
  Alcotest.(check bool) "ratio 1 -> nominal" true (abs_float (v -. 0.7) < 0.002);
  let v10 = Power.equivalent_vdd vm ~headroom_ratio:1.1 in
  Alcotest.(check bool) (Printf.sprintf "10%% headroom -> %.3f V" v10) true
    (v10 < 0.7 && v10 > 0.6);
  Alcotest.(check (float 1e-3)) "roundtrip through derate" 1.1 (Vdd_model.derate vm v10)

let test_power_rejects_bad_ratio () =
  Alcotest.(check bool) "ratio < 1" true
    (try ignore (Power.equivalent_vdd Vdd_model.default ~headroom_ratio:0.9); false
     with Invalid_argument _ -> true)

(* ---------- Experiments registry ---------- *)

let test_experiments_registry_complete () =
  let ids = List.map fst Experiments.all in
  List.iter
    (fun required ->
      if not (List.mem required ids) then Alcotest.failf "missing experiment %s" required)
    [ "table1"; "table2"; "fig1"; "fig2"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7" ]

let test_experiments_unknown_id () =
  Alcotest.(check bool) "unknown rejected" false
    (Experiments.run_one (Lazy.force ctx) "nonsense")

let test_experiments_cheap_ones_run () =
  (* table2/fig3 exercise the registry and flow summary quickly. *)
  List.iter
    (fun id -> Alcotest.(check bool) id true (Experiments.run_one (Lazy.force ctx) id))
    [ "table2"; "fig3" ]

let () =
  Alcotest.run "sfi_core"
    [
      ( "flow",
        [
          Alcotest.test_case "STA calibrated to 707" `Quick test_flow_sta_limit_calibrated;
          Alcotest.test_case "STA scales with vdd" `Quick test_flow_sta_limit_scales_with_vdd;
          Alcotest.test_case "char db cached" `Quick test_flow_char_db_cached;
          Alcotest.test_case "models constructible" `Quick test_flow_models_constructible;
          Alcotest.test_case "operating vdd rescales" `Quick test_flow_operating_vdd_rescales;
          Alcotest.test_case "summary stages" `Quick test_flow_summary_mentions_stages;
          Alcotest.test_case "corner shifts STA" `Quick test_flow_corner_shifts_sta;
        ] );
      ( "power",
        [
          Alcotest.test_case "reference points" `Quick test_power_reference_points;
          Alcotest.test_case "normalized" `Quick test_power_normalized;
          Alcotest.test_case "leakage fraction" `Quick test_power_leakage_fraction;
          Alcotest.test_case "equivalent vdd" `Quick test_power_equivalent_vdd;
          Alcotest.test_case "rejects bad ratio" `Quick test_power_rejects_bad_ratio;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "registry complete" `Quick test_experiments_registry_complete;
          Alcotest.test_case "unknown id" `Quick test_experiments_unknown_id;
          Alcotest.test_case "cheap experiments run" `Quick test_experiments_cheap_ones_run;
        ] );
    ]
