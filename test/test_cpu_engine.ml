open Sfi_util
open Sfi_isa
open Sfi_sim

(* Differential tests pinning the compiled basic-block engine to the
   interpreter: same cycles, same stats, same fault-hook call stream,
   same trace ordering, same outcomes — on the paths where the two
   implementations genuinely diverge in mechanism (block caching,
   batched accounting, threaded-code chaining). *)

(* ---------- helpers ---------- *)

let run_insns engine ?(size = 4096) ?(config = Cpu.default_config) insns =
  let program = Program.of_insns insns in
  let mem = Memory.create ~size in
  Memory.load_program mem program;
  let stats = Cpu.run ~config ~engine mem ~entry:0 in
  (stats, mem)

let run_asm engine ?(size = 4096) ?(config = Cpu.default_config) src =
  let program = Asm.assemble_exn src in
  let mem = Memory.create ~size in
  Memory.load_program mem program;
  let stats = Cpu.run ~config ~engine mem ~entry:program.Program.entry in
  (stats, mem)

let check_stats_equal what (a : Cpu.stats) (b : Cpu.stats) =
  if a <> b then
    Alcotest.failf "%s: interp and compiled stats differ (%d vs %d cycles, %d vs %d instret)"
      what a.Cpu.cycles b.Cpu.cycles a.Cpu.instret b.Cpu.instret

(* Runs the same program under both engines and checks full stats
   equality plus an optional memory-word probe. *)
let parity ?(probe = []) ?size ?config what insns =
  let si, mi = run_insns Cpu.Interp ?size ?config insns in
  let sc, mc = run_insns Cpu.Compiled ?size ?config insns in
  check_stats_equal what si sc;
  List.iter
    (fun addr ->
      Alcotest.(check int)
        (Printf.sprintf "%s: word 0x%x" what addr)
        (Memory.read_u32 mi addr) (Memory.read_u32 mc addr))
    probe

let parity_asm ?(probe = []) ?size ?config what src =
  let si, mi = run_asm Cpu.Interp ?size ?config src in
  let sc, mc = run_asm Cpu.Compiled ?size ?config src in
  check_stats_equal what si sc;
  List.iter
    (fun addr ->
      Alcotest.(check int)
        (Printf.sprintf "%s: word 0x%x" what addr)
        (Memory.read_u32 mi addr) (Memory.read_u32 mc addr))
    probe

(* ---------- kernel parity: full benchmarks, fault-free ---------- *)

let test_kernel_parity () =
  List.iter
    (fun name ->
      match Sfi_kernels.Registry.by_name name with
      | None -> Alcotest.failf "unknown bench %s" name
      | Some bench ->
        let si, oi = Sfi_kernels.Bench.run_fault_free ~engine:Cpu.Interp bench in
        let sc, oc = Sfi_kernels.Bench.run_fault_free ~engine:Cpu.Compiled bench in
        check_stats_equal name si sc;
        if oi <> oc then Alcotest.failf "%s: outputs differ between engines" name;
        if oc <> bench.Sfi_kernels.Bench.golden then
          Alcotest.failf "%s: compiled output differs from golden" name)
    Sfi_kernels.Registry.names

(* ---------- fault-hook stream parity ---------- *)

(* The hook's observable inputs (cycle, class, operands, clean result)
   and its injected masks must line up call for call: the compiled
   engine pre-resolves operands at block-build time and gates the call
   on a block-entry fi flag, both of which would skew this stream if
   wrong. The mask depends on every argument, so a single misaligned
   call derails the rest of the run — divergence cannot cancel out. *)
let test_hook_stream_parity () =
  let run engine =
    let calls = ref [] in
    let hook ~cycle ~cls ~a ~b ~result =
      calls := (cycle, Op_class.index cls, a, b, result) :: !calls;
      (cycle lxor a lxor b lxor result) land 0xFF
    in
    let config = { Cpu.default_config with Cpu.fault_hook = Some hook } in
    let stats, mem =
      run_asm engine ~config
        {|
        l.addi r1, r0, 40
        l.nop  0x10
loop:   l.add  r2, r2, r1
        l.mul  r3, r2, r1
        l.sw   0x200(r0), r3
        l.lwz  r4, 0x200(r0)
        l.xor  r5, r4, r2
        l.addi r1, r1, -1
        l.sfnei r1, 0
        l.bf   loop
        l.nop  0x11
        l.sw   0x100(r0), r5
        l.nop  0x1
      |}
    in
    (stats, List.rev !calls, Memory.read_u32 mem 0x100)
  in
  let si, ci, wi = run Cpu.Interp in
  let sc, cc, wc = run Cpu.Compiled in
  check_stats_equal "hook stream" si sc;
  Alcotest.(check int) "call count" (List.length ci) (List.length cc);
  if ci <> cc then Alcotest.fail "hook stream: call sequences differ";
  Alcotest.(check int) "faulted result" wi wc

(* ---------- self-modifying stores ---------- *)

let test_selfmod_parity () =
  (* A store patches an instruction of the loop it executes from; the
     compiled engine must flush the block cache and re-enter through
     the dispatcher with identical cycle accounting. *)
  let patched = Encode.encode (Insn.Addi (3, 3, 10)) in
  parity_asm ~probe:[ 0x100 ] "self-modifying loop"
    (Printf.sprintf
       {|
        l.movhi r1, hi(target)
        l.ori   r1, r1, lo(target)
        l.movhi r2, hi(0x%08x)
        l.ori   r2, r2, lo(0x%08x)
        l.addi  r4, r0, 0
loop:
target: l.addi  r3, r3, 1
        l.sw    0(r1), r2
        l.sfeqi r4, 0
        l.addi  r4, r4, 1
        l.bf    loop
        l.sw    0x100(r0), r3
        l.nop   0x1
      |}
       patched patched)

let test_selfmod_store_into_own_block () =
  (* The store lands on the instruction directly after itself — inside
     the currently-executing block. The compiled engine must abort the
     block at the store, retire exactly the instructions up to and
     including it, and re-decode before the patched word executes. *)
  let exit_word = Encode.encode (Insn.Nop Insn.nop_exit) in
  parity_asm ~probe:[ 0x100 ] "store into own block"
    (Printf.sprintf
       {|
        l.movhi r1, hi(target)
        l.ori   r1, r1, lo(target)
        l.movhi r2, hi(0x%08x)
        l.ori   r2, r2, lo(0x%08x)
        l.addi  r3, r0, 7
        l.sw    0x100(r0), r3
        l.sw    0(r1), r2
target: .word 0xffffffff
      |}
       exit_word exit_word)

(* ---------- trace-hook ordering ---------- *)

let test_trace_order_parity () =
  let run engine =
    let traced = ref [] in
    let config =
      {
        Cpu.default_config with
        Cpu.trace = Some (fun ~pc insn -> traced := (pc, Insn.to_string insn) :: !traced);
      }
    in
    let stats, _ =
      run_asm engine ~config
        {|
        l.addi r1, r0, 5
loop:   l.addi r2, r2, 1
        l.addi r1, r1, -1
        l.sfnei r1, 0
        l.bf   loop
        l.jal  sub
        l.nop  0x1
sub:    l.addi r3, r0, 9
        l.jr   r9
      |}
    in
    (stats, List.rev !traced)
  in
  let si, ti = run Cpu.Interp in
  let sc, tc = run Cpu.Compiled in
  check_stats_equal "trace order" si sc;
  if ti <> tc then Alcotest.fail "trace order: per-instruction (pc, insn) streams differ"

let test_trace_illegal_not_traced () =
  (* An illegal word traps at fetch; neither engine may call the trace
     hook for it (the compiled engine captures decoded insns at block
     build time, so the skip must be deliberate there). *)
  let run engine =
    let traced = ref [] in
    let config =
      { Cpu.default_config with Cpu.trace = Some (fun ~pc _ -> traced := pc :: !traced) }
    in
    let program = Program.of_insns [ Insn.Addi (1, 0, 1); Insn.Nop 0 ] in
    let mem = Memory.create ~size:4096 in
    Memory.load_program mem program;
    Memory.write_u32 mem 8 0xFFFF_FFFF;
    let stats = Cpu.run ~config ~engine mem ~entry:0 in
    (stats, List.rev !traced)
  in
  let si, ti = run Cpu.Interp in
  let sc, tc = run Cpu.Compiled in
  check_stats_equal "illegal trace" si sc;
  (match si.Cpu.outcome with
  | Cpu.Trapped _ -> ()
  | _ -> Alcotest.fail "expected trap");
  Alcotest.(check (list int)) "traced pcs" ti tc;
  Alcotest.(check bool) "illegal pc not traced" false (List.mem 8 ti)

(* ---------- outcomes ---------- *)

let test_watchdog_parity () =
  let config = { Cpu.default_config with Cpu.max_cycles = 1000 } in
  parity ~config "watchdog budget" [ Insn.Addi (1, 0, 1); Insn.J (-1) ];
  (* Jump-to-self is recognized as an architectural hang without
     burning the budget — in both engines. *)
  parity "jump to self" [ Insn.Addi (1, 0, 1); Insn.J 0 ]

let test_watchdog_mid_block () =
  (* Budgets that expire mid-block force the compiled engine onto its
     per-instruction fallback path near the limit; every budget value
     must still produce the interpreter's exact cycle count. *)
  let insns =
    [
      Insn.Addi (1, 0, 1); Insn.Addi (2, 0, 2); Insn.Mul (3, 1, 2);
      Insn.Lwz (4, 0x100, 0); Insn.Add (5, 4, 3); Insn.J (-5);
    ]
  in
  for budget = 1 to 40 do
    let config = { Cpu.default_config with Cpu.max_cycles = budget } in
    parity ~config (Printf.sprintf "budget %d" budget) insns
  done

let test_trap_parity () =
  parity "misaligned load"
    [ Insn.Addi (1, 0, 2); Insn.Lwz (2, 0, 1); Insn.Nop Insn.nop_exit ];
  parity "misaligned store"
    [ Insn.Addi (1, 0, 6); Insn.Sw (0, 1, 1); Insn.Nop Insn.nop_exit ];
  parity "misaligned jump target"
    [ Insn.Addi (1, 0, 2); Insn.Jr 1; Insn.Nop Insn.nop_exit ];
  let illegal engine =
    let program = Program.of_insns [ Insn.Addi (1, 0, 1) ] in
    let mem = Memory.create ~size:4096 in
    Memory.load_program mem program;
    Memory.write_u32 mem 4 0xFFFF_FFFF;
    Cpu.run ~engine mem ~entry:0
  in
  check_stats_equal "illegal instruction" (illegal Cpu.Interp) (illegal Cpu.Compiled)

(* ---------- kernel markers mid-block ---------- *)

let test_fi_toggle_mid_block () =
  (* Markers in the middle of straight-line code: the compiled engine
     terminates blocks at markers so the fi window stays constant
     within a block; the hook-call count and windowed counters must
     match the interpreter exactly, including a window that opens and
     closes twice. *)
  let run engine =
    let calls = ref 0 in
    let hook ~cycle:_ ~cls:_ ~a:_ ~b:_ ~result:_ =
      incr calls;
      0
    in
    let config = { Cpu.default_config with Cpu.fault_hook = Some hook } in
    let stats, _ =
      run_insns engine ~config
        [
          Insn.Addi (1, 0, 1);
          Insn.Nop Insn.nop_kernel_begin;
          Insn.Addi (2, 0, 2);
          Insn.Lwz (3, 0x100, 0);
          Insn.Nop Insn.nop_kernel_end;
          Insn.Addi (4, 0, 4);
          Insn.Nop Insn.nop_kernel_begin;
          Insn.Mul (5, 2, 4);
          Insn.Nop Insn.nop_kernel_end;
          Insn.Nop Insn.nop_exit;
        ]
    in
    (stats, !calls)
  in
  let si, ci = run Cpu.Interp in
  let sc, cc = run Cpu.Compiled in
  check_stats_equal "fi toggle" si sc;
  Alcotest.(check int) "hook calls" ci cc;
  (* Each window retires its begin marker, its body and its end marker
     inside the fi accounting: (1+2+1) + (1+1+1). *)
  Alcotest.(check int) "two windows counted" 7 si.Cpu.kernel_instret

(* ---------- campaign point parity ---------- *)

let test_campaign_point_parity () =
  (* A full Monte-Carlo point through the default-engine switch: same
     point (all rates, CIs, trial counts) and the same deterministic
     observability signature. Model A needs no netlist, so this runs
     the whole campaign stack quickly; the fault masks perturb control
     flow enough that some trials watchdog or trap. *)
  let bench = Sfi_kernels.Median.create ~n:17 () in
  let model = Sfi_fi.Model.fixed_probability ~bit_flip_prob:5e-4 [@warning "-3"] in
  let spec =
    Sfi_fi.Campaign.Spec.(default |> with_trials 12 |> with_jobs 1 |> with_seed 42)
  in
  ignore (Sfi_fi.Campaign.reference_cycles bench) (* warm the memo for both runs *);
  let run_with engine =
    Cpu.set_default_engine engine;
    Sfi_obs.reset ();
    Sfi_obs.set_enabled true;
    let p = Sfi_fi.Campaign.run spec ~bench ~model ~freq_mhz:800. in
    let s = Sfi_obs.det_signature () in
    Sfi_obs.set_enabled false;
    (Sfi_fi.Campaign.Point_json.to_string (Sfi_fi.Campaign.Point_json.of_sweep [ p ]), s)
  in
  Fun.protect
    ~finally:(fun () -> Cpu.set_default_engine Cpu.Auto)
    (fun () ->
      let pi, sigi = run_with Cpu.Interp in
      let pc, sigc = run_with Cpu.Compiled in
      Alcotest.(check string) "point JSON" pi pc;
      if sigi <> sigc then
        Alcotest.fail "campaign point: det_signature differs between engines")

(* ---------- allocation pins ---------- *)

(* Steady-state execution must not allocate per instruction in either
   engine: all compiled-engine allocation (blocks, closures, decode
   table) happens at block-build time. Measured as the growth between a
   short and a long run of the same loop — setup and compile cost
   cancels, leaving the per-instruction rate. *)
let test_steady_state_allocation () =
  let loop iters =
    Printf.sprintf
      {|
        l.movhi r1, hi(%d)
        l.ori   r1, r1, lo(%d)
loop:   l.add   r2, r2, r1
        l.lwz   r3, 0x200(r0)
        l.xor   r4, r3, r2
        l.sw    0x200(r0), r4
        l.addi  r1, r1, -1
        l.sfnei r1, 0
        l.bf    loop
        l.nop   0x1
      |}
      iters iters
  in
  List.iter
    (fun engine ->
      let measure iters =
        let program = Asm.assemble_exn (loop iters) in
        let mem = Memory.create ~size:4096 in
        Memory.load_program mem program;
        let w0 = Gc.minor_words () in
        let stats = Cpu.run ~engine mem ~entry:program.Program.entry in
        let dw = Gc.minor_words () -. w0 in
        (dw, stats.Cpu.instret)
      in
      ignore (measure 100) (* warm boxing of the Gc counter itself *);
      let dw_small, n_small = measure 1_000 in
      let dw_big, n_big = measure 50_000 in
      let per_insn = (dw_big -. dw_small) /. float_of_int (n_big - n_small) in
      if per_insn > 0.01 then
        Alcotest.failf "%s engine allocates %.3f words/insn in steady state"
          (Cpu.engine_name engine) per_insn)
    [ Cpu.Interp; Cpu.Compiled ]

let test_decode_into_allocation_free () =
  (* A cold decode fill allocates nothing (the point of the unboxed
     sentinel-coded table): decode a mix of legal and illegal words
     repeatedly and pin the minor-heap growth to zero. *)
  let words =
    Array.init 64 (fun i ->
        if i land 3 = 0 then 0xFFFF_FFFF (* illegal *)
        else Encode.encode (Insn.Addi (1, 2, i)))
  in
  let tab = Array.make (Array.length words * 4) Sfi_isa.Uop.u_unfilled in
  (* A plain for loop: Array.iteri would allocate its closure on every
     call and charge it to the decoder. *)
  let fill () =
    for idx = 0 to Array.length words - 1 do
      Sfi_isa.Uop.decode_into tab ~idx ~addr_mask:4095 (Array.unsafe_get words idx)
    done
  in
  fill () (* warm *);
  let w0 = Gc.minor_words () in
  for _ = 1 to 100 do fill () done;
  let dw = Gc.minor_words () -. w0 in
  (* The first Gc.minor_words call boxes its float result; everything
     after must be flat. *)
  if dw > 16. then Alcotest.failf "decode_into allocated %.0f minor words" dw

(* ---------- uop decode vs Encode.decode ---------- *)

(* Reference quad for a decoded instruction, written against the
   documented uop layout. Together with the random-word legality check
   below this pins [Uop.decode_into] to [Encode.decode] case by case. *)
let expected_quad ~pc ~addr_mask insn =
  let module U = Sfi_isa.Uop in
  let open Insn in
  let cls c = Op_class.index c in
  let target off = (pc + (off * 4)) land addr_mask in
  let u32 v = v land 0xFFFF_FFFF in
  match insn with
  | Add (d, a, b) -> (U.u_alu_rr + cls Op_class.Add, d, a, b)
  | Sub (d, a, b) -> (U.u_alu_rr + cls Op_class.Sub, d, a, b)
  | Mul (d, a, b) -> (U.u_alu_rr + cls Op_class.Mul, d, a, b)
  | Sll (d, a, b) -> (U.u_alu_rr + cls Op_class.Sll, d, a, b)
  | Srl (d, a, b) -> (U.u_alu_rr + cls Op_class.Srl, d, a, b)
  | Sra (d, a, b) -> (U.u_alu_rr + cls Op_class.Sra, d, a, b)
  | And (d, a, b) -> (U.u_alu_rr + cls Op_class.And_, d, a, b)
  | Or (d, a, b) -> (U.u_alu_rr + cls Op_class.Or_, d, a, b)
  | Xor (d, a, b) -> (U.u_alu_rr + cls Op_class.Xor_, d, a, b)
  | Addi (d, a, i) -> (U.u_alu_ri + cls Op_class.Add, d, a, u32 i)
  | Muli (d, a, i) -> (U.u_alu_ri + cls Op_class.Mul, d, a, u32 i)
  | Andi (d, a, i) -> (U.u_alu_ri + cls Op_class.And_, d, a, u32 i)
  | Ori (d, a, i) -> (U.u_alu_ri + cls Op_class.Or_, d, a, u32 i)
  | Xori (d, a, i) -> (U.u_alu_ri + cls Op_class.Xor_, d, a, u32 i)
  | Slli (d, a, s) -> (U.u_alu_ri + cls Op_class.Sll, d, a, s)
  | Srli (d, a, s) -> (U.u_alu_ri + cls Op_class.Srl, d, a, s)
  | Srai (d, a, s) -> (U.u_alu_ri + cls Op_class.Sra, d, a, s)
  | Movhi (d, k) -> (U.u_alu_ri + cls Op_class.Or_, d, 0, k lsl 16)
  | Sf (c, a, b) -> (U.u_sf, U.cmp_index c, a, b)
  | Sfi (c, a, i) -> (U.u_sfi, U.cmp_index c, a, u32 i)
  | J 0 -> (U.u_j_self, 0, 0, 0)
  | J off -> (U.u_j, target off, 0, 0)
  | Jal off -> (U.u_jal, target off, u32 (pc + 4), 0)
  | Jr b -> (U.u_jr, b, 0, 0)
  | Jalr b -> (U.u_jalr, b, u32 (pc + 4), 0)
  | Bf off -> (U.u_bf, target off, 0, 0)
  | Bnf off -> (U.u_bnf, target off, 0, 0)
  | Lwz (d, i, a) -> (U.u_lwz, d, u32 i, a)
  | Lhz (d, i, a) -> (U.u_lhz, d, u32 i, a)
  | Lbz (d, i, a) -> (U.u_lbz, d, u32 i, a)
  | Sw (i, a, b) -> (U.u_sw, u32 i, a, b)
  | Sh (i, a, b) -> (U.u_sh, u32 i, a, b)
  | Sb (i, a, b) -> (U.u_sb, u32 i, a, b)
  | Nop k ->
    let o =
      if k = nop_exit then U.u_nop_exit
      else if k = nop_kernel_begin then U.u_nop_kernel_begin
      else if k = nop_kernel_end then U.u_nop_kernel_end
      else U.u_nop
    in
    (o, 0, 0, 0)

let quad_of tab idx = (tab.(idx * 4), tab.((idx * 4) + 1), tab.((idx * 4) + 2), tab.((idx * 4) + 3))

let prop_uop_matches_encode =
  (* Uniform random words exercise the reject cases (most words are
     illegal); the addr_mask and idx vary so target wrapping is hit. *)
  Prop.test ~cases:2000 "decode_into mirrors Encode.decode on random words"
    (Prop.pair Prop.u32 (Prop.int ~lo:0 ~hi:255))
    (fun (w, idx) ->
      let addr_mask = 4095 in
      let tab = Array.make ((idx + 1) * 4) Sfi_isa.Uop.u_unfilled in
      Sfi_isa.Uop.decode_into tab ~idx ~addr_mask w;
      match Encode.decode w with
      | None -> quad_of tab idx = (Sfi_isa.Uop.u_illegal, 0, 0, 0)
      | Some insn -> quad_of tab idx = expected_quad ~pc:(idx * 4) ~addr_mask insn)

let prop_uop_matches_encode_legal =
  (* Encoded legal instructions cover the accept cases densely (random
     words alone hit them rarely). *)
  let gen rng =
    let r () = Prop.int ~lo:0 ~hi:31 rng in
    let i16s () = Prop.int ~lo:(-32768) ~hi:32767 rng in
    let i16u () = Prop.int ~lo:0 ~hi:65535 rng in
    let off () = Prop.int ~lo:(-64) ~hi:64 rng in
    let cmp () =
      Prop.one_of
        [ Insn.Eq; Insn.Ne; Insn.Gtu; Insn.Geu; Insn.Ltu; Insn.Leu; Insn.Gts;
          Insn.Ges; Insn.Lts; Insn.Les ]
        rng
    in
    let insn =
      match Prop.int ~lo:0 ~hi:20 rng with
      | 0 -> Insn.Add (r (), r (), r ())
      | 1 -> Insn.Sub (r (), r (), r ())
      | 2 -> Insn.Mul (r (), r (), r ())
      | 3 -> Insn.Sll (r (), r (), r ())
      | 4 -> Insn.Sra (r (), r (), r ())
      | 5 -> Insn.Addi (r (), r (), i16s ())
      | 6 -> Insn.Andi (r (), r (), i16u ())
      | 7 -> Insn.Xori (r (), r (), i16s ())
      | 8 -> Insn.Slli (r (), r (), Prop.int ~lo:0 ~hi:31 rng)
      | 9 -> Insn.Movhi (r (), i16u ())
      | 10 -> Insn.Sf (cmp (), r (), r ())
      | 11 -> Insn.Sfi (cmp (), r (), i16s ())
      | 12 -> Insn.J (off ())
      | 13 -> Insn.Jal (off ())
      | 14 -> Insn.Jr (r ())
      | 15 -> Insn.Jalr (r ())
      | 16 -> Insn.Bf (off ())
      | 17 -> Insn.Bnf (off ())
      | 18 -> Insn.Lwz (r (), i16s (), r ())
      | 19 -> Insn.Sw (i16s (), r (), r ())
      | _ -> Insn.Nop (Prop.one_of [ 0x0; 0x1; 0x10; 0x11; 0x7 ] rng)
    in
    (insn, Prop.int ~lo:0 ~hi:255 rng)
  in
  Prop.test ~cases:1000 "decode_into mirrors Encode.decode on legal encodings" gen
    (fun (insn, idx) ->
      let addr_mask = 4095 in
      let w = Encode.encode insn in
      let tab = Array.make ((idx + 1) * 4) Sfi_isa.Uop.u_unfilled in
      Sfi_isa.Uop.decode_into tab ~idx ~addr_mask w;
      match Encode.decode w with
      | None -> false (* the encoder only emits decodable words *)
      | Some insn' -> quad_of tab idx = expected_quad ~pc:(idx * 4) ~addr_mask insn')

(* ---------- random program parity sweep ---------- *)

let prop_random_program_parity =
  (* Random short programs (ALU, memory, short forward branches, an
     exit marker at the end) must retire identically. Branch targets
     stay inside the program so most runs exit; the rest watchdog —
     both outcomes must still match cycle for cycle. *)
  let gen rng =
    let n = Prop.int ~lo:3 ~hi:40 rng in
    List.init n (fun i ->
        let r () = Prop.int ~lo:0 ~hi:7 rng in
        match Prop.int ~lo:0 ~hi:9 rng with
        | 0 -> Insn.Add (r (), r (), r ())
        | 1 -> Insn.Mul (r (), r (), r ())
        | 2 -> Insn.Addi (r (), r (), Prop.int ~lo:(-8) ~hi:8 rng)
        | 3 -> Insn.Lwz (r (), 0x200, 0)
        | 4 -> Insn.Sw (0x200, 0, r ())
        | 5 -> Insn.Sfi (Insn.Ltu, r (), Prop.int ~lo:0 ~hi:8 rng)
        | 6 -> Insn.Bf (Prop.int ~lo:1 ~hi:(max 1 (n - i)) rng)
        | 7 -> Insn.Xor (r (), r (), r ())
        | 8 -> Insn.Lbz (r (), 0x201, 0)
        | _ -> Insn.Sh (0x202, 0, r ()))
    @ [ Insn.Nop Insn.nop_exit ]
  in
  Prop.test ~cases:300 "random programs retire identically" gen (fun insns ->
      let config = { Cpu.default_config with Cpu.max_cycles = 5_000 } in
      let si, _ = run_insns Cpu.Interp ~config insns in
      let sc, _ = run_insns Cpu.Compiled ~config insns in
      si = sc)

let () =
  Alcotest.run "cpu_engine"
    [
      ( "parity",
        [
          Alcotest.test_case "kernels fault-free" `Quick test_kernel_parity;
          Alcotest.test_case "fault-hook stream" `Quick test_hook_stream_parity;
          Alcotest.test_case "self-modifying loop" `Quick test_selfmod_parity;
          Alcotest.test_case "store into own block" `Quick test_selfmod_store_into_own_block;
          Alcotest.test_case "trace ordering" `Quick test_trace_order_parity;
          Alcotest.test_case "illegal not traced" `Quick test_trace_illegal_not_traced;
          Alcotest.test_case "watchdog outcomes" `Quick test_watchdog_parity;
          Alcotest.test_case "watchdog mid-block" `Quick test_watchdog_mid_block;
          Alcotest.test_case "trap outcomes" `Quick test_trap_parity;
          Alcotest.test_case "fi toggle mid-block" `Quick test_fi_toggle_mid_block;
          Alcotest.test_case "campaign point" `Quick test_campaign_point_parity;
          prop_random_program_parity;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "steady state" `Quick test_steady_state_allocation;
          Alcotest.test_case "decode_into" `Quick test_decode_into_allocation_free;
        ] );
      ( "uop decoder",
        [ prop_uop_matches_encode; prop_uop_matches_encode_legal ] );
    ]
