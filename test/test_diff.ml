(* Cross-model differential tests: models B, B+ and C built from the
   same sized circuit, exercised with identical seeds, checked against
   each other's conservatism ordering.

   The load-bearing invariant is the STA/DTA relation: a static-timing
   arrival is the worst case over all input vectors, so per endpoint
   STA arrival >= any dynamically characterized settle time. Hence at
   nominal voltage (sigma = 0) every fault mask model C can produce is
   a subset of model B's static mask, and C's fault onset frequency is
   at least B's. Overscaling monotonicity holds per characterized
   cycle: a shorter period can only grow the violation mask. *)

open Sfi_util
open Sfi_netlist
open Sfi_timing
open Sfi_fi

(* Shared fixture, mirroring test_fi: one sized ALU, characterized once. *)
let flow_alu =
  lazy
    (let alu = Alu.build () in
     Sizing.apply_process_variation ~sigma:0.03 ~seed:2 alu.Alu.circuit;
     Sizing.size_to_clock ~clock_mhz:707. alu.Alu.circuit;
     alu)

let char_db = lazy (Characterize.run ~cycles:400 ~seed:21 ~vdd:0.7 (Lazy.force flow_alu))

let sta_with_setup =
  lazy
    (let alu = Lazy.force flow_alu in
     let arr = Array.map snd (Sta.analyze alu.Alu.circuit).Sta.endpoints in
     Array.map (fun a -> a +. Sta.default_setup_ps) arr)

let sta_arrivals = lazy (Array.map snd (Sta.analyze (Lazy.force flow_alu).Alu.circuit).Sta.endpoints)

(* Built through the deprecated compat constructors on purpose: these
   tests also pin that the variant-era entry points still produce the
   registry models bit-identically. *)
let model_b ?(sigma = 0.) () =
  Model.static_timing ~endpoint_arrivals:(Lazy.force sta_arrivals)
    ~setup_ps:Sta.default_setup_ps ~vdd:0.7
    ~noise:(if sigma = 0. then Noise.none else Noise.create ~sigma ())
    ~vdd_model:Vdd_model.default
[@@warning "-3"]

let model_c ?(sampling = Model.Independent) ?(sigma = 0.) () =
  Model.statistical ~db:(Lazy.force char_db) ~vdd:0.7
    ~noise:(if sigma = 0. then Noise.none else Noise.create ~sigma ())
    ~vdd_model:Vdd_model.default ~sampling
[@@warning "-3"]

(* B's fault onset: period = slowest STA arrival incl. setup. *)
let onset_b_mhz () =
  let max_arrival = Array.fold_left Float.max 0. (Lazy.force sta_with_setup) in
  1e6 /. max_arrival

let subset ~small ~big = small land lnot big = 0

(* ---------- STA dominates DTA per endpoint ---------- *)

let test_sta_dominates_dta_settles () =
  let db = Lazy.force char_db in
  let sta = Lazy.force sta_arrivals in
  Array.iter
    (fun (cdb : Characterize.class_db) ->
      Array.iteri
        (fun e cdf ->
          let settle = Cdf.max_value cdf in
          if settle > sta.(e) +. 1e-9 then
            Alcotest.failf "class %s endpoint %d: DTA settle %.1f > STA arrival %.1f"
              (Op_class.name cdb.Characterize.cls) e settle sta.(e))
        cdb.Characterize.endpoint_cdfs)
    db.Characterize.classes

(* ---------- C's masks are subsets of B's static mask ---------- *)

let test_c_masks_subset_of_b_static () =
  List.iter
    (fun rel ->
      let freq = onset_b_mhz () *. rel in
      let inj_b = Injector.create ~model:(model_b ()) ~freq_mhz:freq ~rng:(Rng.of_int 9) () in
      let inj_c = Injector.create ~model:(model_c ()) ~freq_mhz:freq ~rng:(Rng.of_int 9) () in
      let hb = Injector.hook inj_b and hc = Injector.hook inj_c in
      let rng = Rng.of_int 31 in
      for cycle = 1 to 400 do
        List.iter
          (fun cls ->
            let a = Rng.bits32 rng and b = Rng.bits32 rng in
            let result = Op_class.apply cls a b in
            let mb = hb ~cycle ~cls ~a ~b ~result in
            let mc = hc ~cycle ~cls ~a ~b ~result in
            if not (subset ~small:mc ~big:mb) then
              Alcotest.failf
                "at %.0f MHz (%.2fx onset), class %s: C mask %08x not in B mask %08x"
                freq rel (Op_class.name cls) mc mb)
          [ Op_class.Add; Op_class.Mul; Op_class.Xor_ ]
      done;
      Alcotest.(check bool)
        (Printf.sprintf "C injects no more bits than B at %.2fx onset" rel)
        true
        (Injector.fault_bits inj_c <= Injector.fault_bits inj_b))
    [ 0.95; 1.05; 1.20; 1.40 ]

let test_c_onset_not_below_b () =
  (* Below B's static onset, C must also be unable to inject. *)
  let freq = onset_b_mhz () *. 0.98 in
  let inj_b = Injector.create ~model:(model_b ()) ~freq_mhz:freq ~rng:(Rng.of_int 4) () in
  let inj_c = Injector.create ~model:(model_c ()) ~freq_mhz:freq ~rng:(Rng.of_int 4) () in
  Alcotest.(check bool) "B cannot inject below onset" true (Injector.cannot_inject inj_b);
  Alcotest.(check bool) "C cannot inject below B's onset" true
    (Injector.cannot_inject inj_c)

(* ---------- B+ reaches below B's static onset ---------- *)

let test_bplus_faults_below_static_onset () =
  let freq = onset_b_mhz () *. 0.99 in
  let inj_b = Injector.create ~model:(model_b ()) ~freq_mhz:freq ~rng:(Rng.of_int 5) () in
  let inj_bplus =
    Injector.create ~model:(model_b ~sigma:0.025 ()) ~freq_mhz:freq ~rng:(Rng.of_int 5) ()
  in
  Alcotest.(check bool) "B silent just below onset" true (Injector.cannot_inject inj_b);
  Alcotest.(check bool) "B+ worst-case noise can violate" false
    (Injector.cannot_inject inj_bplus)

(* ---------- overscaling monotonicity (per characterized cycle) ---------- *)

let test_violation_mask_monotone_in_overscaling () =
  let db = Lazy.force char_db in
  let base_period = 1e6 /. onset_b_mhz () in
  List.iter
    (fun cls ->
      for cycle = 0 to 99 do
        let masks =
          List.map
            (fun rel ->
              Characterize.violation_mask db cls ~cycle ~period_ps:(base_period /. rel)
                ~scale:1.)
            [ 1.0; 1.1; 1.2; 1.35; 1.5 ]
        in
        (* Masks at increasing overscaling form a chain of supersets. *)
        ignore
          (List.fold_left
             (fun prev mask ->
               if not (subset ~small:prev ~big:mask) then
                 Alcotest.failf "class %s cycle %d: mask %08x lost bits vs %08x"
                   (Op_class.name cls) cycle mask prev;
               mask)
             0 masks)
      done)
    [ Op_class.Add; Op_class.Mul; Op_class.Srl ]

let test_error_probability_monotone () =
  let db = Lazy.force char_db in
  let base_period = 1e6 /. onset_b_mhz () in
  List.iter
    (fun cls ->
      for endpoint = 0 to 31 do
        let ps =
          List.map
            (fun rel ->
              Characterize.error_probability db cls ~endpoint
                ~period_ps:(base_period /. rel) ~scale:1.)
            [ 1.0; 1.15; 1.3; 1.5 ]
        in
        ignore
          (List.fold_left
             (fun prev p ->
               if p < prev -. 1e-12 then
                 Alcotest.failf "class %s endpoint %d: P dropped %.6f -> %.6f"
                   (Op_class.name cls) endpoint prev p;
               p)
             0. ps)
      done)
    [ Op_class.Add; Op_class.Mul ]

(* ---------- fault counts monotone in frequency (aligned streams) ---------- *)

let test_fault_bits_monotone_in_frequency () =
  (* Vector-correlated sampling at sigma = 0 draws exactly one cycle
     sample per non-skipped call. Restricting to the slowest class at
     frequencies where its early exits never fire keeps the RNG streams
     aligned across frequencies, so per-call masks nest and the total
     bit count is monotone. *)
  let db = Lazy.force char_db in
  let slowest =
    let best = ref (db.Characterize.classes.(0)) in
    Array.iter
      (fun (c : Characterize.class_db) ->
        if c.Characterize.max_settle > !best.Characterize.max_settle then best := c)
      db.Characterize.classes;
    !best.Characterize.cls
  in
  let f_class =
    1e6 /. (Characterize.(class_db db slowest).Characterize.max_settle
            +. db.Characterize.setup_ps)
  in
  let bits_at rel =
    let inj =
      Injector.create
        ~model:(model_c ~sampling:Model.Vector_correlated ())
        ~freq_mhz:(f_class *. rel) ~rng:(Rng.of_int 123) ()
    in
    let hook = Injector.hook inj in
    for cycle = 1 to 500 do
      ignore (hook ~cycle ~cls:slowest ~a:1 ~b:2 ~result:3 : int)
    done;
    Injector.fault_bits inj
  in
  let counts = List.map bits_at [ 1.02; 1.1; 1.2; 1.35 ] in
  ignore
    (List.fold_left
       (fun prev n ->
         if n < prev then
           Alcotest.failf "fault bits dropped with rising frequency: %d -> %d" prev n;
         n)
       0 counts);
  Alcotest.(check bool) "some faults at deep overscaling" true
    (List.nth counts 3 > 0)

(* ---------- model A is timing-blind ---------- *)

let test_model_a_frequency_invariant () =
  (* Fixed-probability injection ignores the clock entirely: identical
     seeds give identical fault streams at any frequency — the opposite
     of B/B+/C, whose masks are functions of the period. *)
  let masks_at freq =
    let inj =
      Injector.create
        ~model:(Model.fixed_probability ~bit_flip_prob:0.01 [@warning "-3"])
        ~freq_mhz:freq ~rng:(Rng.of_int 55) ()
    in
    let hook = Injector.hook inj in
    List.init 300 (fun cycle -> hook ~cycle ~cls:Op_class.Add ~a:1 ~b:2 ~result:3)
  in
  let slow = masks_at 500. in
  Alcotest.(check (list int)) "masks independent of frequency" slow (masks_at 1500.);
  Alcotest.(check bool) "some faults at p=0.01 over 300 calls" true
    (List.exists (fun m -> m <> 0) slow)

(* ---------- obs counters as cross-model oracle ---------- *)

let test_obs_counters_match_injector_accounting () =
  Sfi_obs.reset ();
  Sfi_obs.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Sfi_obs.set_enabled false)
    (fun () ->
      let freq = onset_b_mhz () *. 1.25 in
      let value name =
        match
          List.find_opt (fun e -> e.Sfi_obs.entry_name = name) (Sfi_obs.snapshot ())
        with
        | Some { Sfi_obs.entry_value = Sfi_obs.Counter_v v; _ } -> v
        | _ -> 0
      in
      let run model =
        let inj = Injector.create ~model ~freq_mhz:freq ~rng:(Rng.of_int 77) () in
        let hook = Injector.hook inj in
        let rng = Rng.of_int 88 in
        for cycle = 1 to 300 do
          let a = Rng.bits32 rng and b = Rng.bits32 rng in
          ignore (hook ~cycle ~cls:Op_class.Mul ~a ~b ~result:(U32.mul a b) : int)
        done;
        inj
      in
      let attempts0 = value "injector.attempts.mul" in
      let inj_b = run (model_b ()) in
      let inj_c = run (model_c ()) in
      Alcotest.(check int) "attempts counted per call" (attempts0 + 600)
        (value "injector.attempts.mul");
      Alcotest.(check int) "faults.B matches fault_bits"
        (Injector.fault_bits inj_b) (value "injector.faults.B");
      Alcotest.(check int) "faults.C matches fault_bits"
        (Injector.fault_bits inj_c) (value "injector.faults.C");
      Alcotest.(check bool) "oracle agrees with conservatism order" true
        (value "injector.faults.C" <= value "injector.faults.B"))

let () =
  Alcotest.run "sfi_diff"
    [
      ( "sta_vs_dta",
        [
          Alcotest.test_case "STA arrival dominates DTA settle" `Quick
            test_sta_dominates_dta_settles;
          Alcotest.test_case "C masks subset of B static mask" `Quick
            test_c_masks_subset_of_b_static;
          Alcotest.test_case "C onset not below B onset" `Quick test_c_onset_not_below_b;
          Alcotest.test_case "B+ faults below static onset" `Quick
            test_bplus_faults_below_static_onset;
          Alcotest.test_case "A is frequency-blind" `Quick
            test_model_a_frequency_invariant;
        ] );
      ( "overscaling",
        [
          Alcotest.test_case "violation mask monotone" `Quick
            test_violation_mask_monotone_in_overscaling;
          Alcotest.test_case "error probability monotone" `Quick
            test_error_probability_monotone;
          Alcotest.test_case "fault bits monotone in frequency" `Quick
            test_fault_bits_monotone_in_frequency;
        ] );
      ( "obs_oracle",
        [
          Alcotest.test_case "counters match injector accounting" `Quick
            test_obs_counters_match_injector_accounting;
        ] );
    ]
