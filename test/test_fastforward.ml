(* Snapshot fast-forward: the bit-identity contract and the sfi-snap/1
   cache codec.

   - every registry kernel, under both CPU engines, produces the same
     campaign point (sfi-point/1 JSON) and deterministic obs signature
     with fast-forward Off and On;
   - mostly-fault-free operating points actually elide trials
     (fastforward.trials_elided) and still match full replay;
   - jobs=1 and jobs=4 agree under fast-forward;
   - checkpoint records are mode-independent: Off and On write
     byte-identical files, and a sweep checkpointed under Off resumes
     under On bit-identically;
   - sfi-snap/1 entries survive round-trips and reject corruption,
     truncation and version bumps (counted on cache.corrupt_rejected),
     falling back to re-recording; cold and warm runs keep identical
     det signatures. *)

open Sfi_sim
open Sfi_kernels
open Sfi_fi
module Spec = Campaign.Spec

(* Isolate from any ambient cache/fast-forward environment. *)
let () = Unix.putenv "SFI_CACHE_DIR" ""

let () = Unix.putenv "SFI_FASTFORWARD" ""

let () = Sfi_obs.set_enabled true

let c_elided = Sfi_obs.Counter.make ~det:false "fastforward.trials_elided"

let c_restores = Sfi_obs.Counter.make ~det:false "fastforward.restores"

let c_resumed = Sfi_obs.Counter.make ~det:false "campaign.resumed_trials"

let c_corrupt = Sfi_obs.Counter.make ~det:false "cache.corrupt_rejected"

let value = Sfi_obs.Counter.value

let with_obs f =
  Sfi_obs.reset ();
  let r = f () in
  (r, Sfi_obs.det_signature ())

let model_a p = Model.fixed_probability ~bit_flip_prob:p [@@warning "-3"]

let point_equal (p : Campaign.point) (q : Campaign.point) =
  Campaign.Point_json.(to_string (of_point p) = to_string (of_point q))
  && p.Campaign.trials = q.Campaign.trials

let points_equal ps qs =
  List.length ps = List.length qs && List.for_all2 point_equal ps qs

let spec_mode mode = Spec.(default |> with_fastforward mode)

(* ---------- Off vs On across kernels and engines ---------- *)

let test_parity_all_kernels () =
  Fun.protect
    ~finally:(fun () -> Cpu.set_default_engine Cpu.Auto)
    (fun () ->
      List.iter
        (fun engine ->
          Cpu.set_default_engine engine;
          List.iter
            (fun name ->
              let bench =
                match Registry.by_name name with
                | Some b -> b
                | None -> Alcotest.failf "unknown bench %s" name
              in
              (* warm the in-process reference-cycles memo so both runs
                 see the same hit/miss counts *)
              ignore (Campaign.reference_cycles bench : int);
              let spec mode =
                Spec.(spec_mode mode |> with_trials 6 |> with_seed 11 |> with_jobs 2)
              in
              let model = model_a 0.008 in
              let off, sig_off =
                with_obs (fun () ->
                    Campaign.run (spec Spec.Off) ~bench ~model ~freq_mhz:700.)
              in
              let on, sig_on =
                with_obs (fun () ->
                    Campaign.run (spec Spec.On) ~bench ~model ~freq_mhz:700.)
              in
              let what =
                Printf.sprintf "%s/%s" name (Cpu.engine_name engine)
              in
              Alcotest.(check bool) (what ^ ": points equal") true (point_equal off on);
              Alcotest.(check bool)
                (what ^ ": det signatures equal")
                true (sig_off = sig_on))
            Registry.names)
        [ Cpu.Interp; Cpu.Compiled ])

(* At a rare-fault operating point most trials are provably fault-free:
   fast-forward must elide them (no simulation at all) and still agree
   with full replay bit for bit. *)
let test_elision_parity () =
  let bench = Option.get (Registry.by_name "median") in
  let model = model_a 2e-7 in
  let spec mode = Spec.(spec_mode mode |> with_trials 24 |> with_seed 3) in
  let off, sig_off =
    with_obs (fun () -> Campaign.run (spec Spec.Off) ~bench ~model ~freq_mhz:700.)
  in
  Sfi_obs.reset ();
  let on = Campaign.run (spec Spec.On) ~bench ~model ~freq_mhz:700. in
  let sig_on = Sfi_obs.det_signature () in
  let elided = value c_elided and restores = value c_restores in
  Alcotest.(check bool) "points equal" true (point_equal off on);
  Alcotest.(check bool) "det signatures equal" true (sig_off = sig_on);
  Alcotest.(check bool) "some trials elided" true (elided > 0);
  Alcotest.(check int) "elided + restored = trials" 24 (elided + restores)

(* Model C drives the probe's draw-batching fast path: classes proved
   fault-free by the per-class worst-case bound are jumped over with
   [Rng.skip_gaussians] instead of replayed draw by draw. Just below
   the STA limit faults are possible only through noise, so the
   schedule is dominated by skippable entries — exactly the regime the
   batching must leave bit-identical. *)
let test_model_c_parity () =
  let flow =
    Sfi_core.Flow.create
      ~config:{ Sfi_core.Flow.default_config with Sfi_core.Flow.char_cycles = 400 }
      ()
  in
  let model = Sfi_core.Flow.model_c flow ~vdd:0.7 ~sigma:0.010 () in
  let freq = Sfi_core.Flow.sta_limit_mhz flow ~vdd:0.7 *. 0.999 in
  let bench = Option.get (Registry.by_name "median") in
  ignore (Campaign.reference_cycles bench : int);
  let spec mode = Spec.(spec_mode mode |> with_trials 12 |> with_seed 17) in
  let off, sig_off =
    with_obs (fun () -> Campaign.run (spec Spec.Off) ~bench ~model ~freq_mhz:freq)
  in
  Sfi_obs.reset ();
  let on = Campaign.run (spec Spec.On) ~bench ~model ~freq_mhz:freq in
  let sig_on = Sfi_obs.det_signature () in
  let elided = value c_elided and restores = value c_restores in
  Alcotest.(check bool) "model C points equal" true (point_equal off on);
  Alcotest.(check bool) "model C det signatures equal" true (sig_off = sig_on);
  Alcotest.(check int) "every trial elided or restored" 12 (elided + restores)

let test_jobs_parity () =
  let bench = Option.get (Registry.by_name "median") in
  let model = model_a 0.004 in
  let spec jobs =
    Spec.(spec_mode Spec.On |> with_trials 16 |> with_seed 7 |> with_jobs jobs)
  in
  let p1, sig1 =
    with_obs (fun () -> Campaign.run (spec 1) ~bench ~model ~freq_mhz:720.)
  in
  let p4, sig4 =
    with_obs (fun () -> Campaign.run (spec 4) ~bench ~model ~freq_mhz:720.)
  in
  Alcotest.(check bool) "jobs=1 vs jobs=4 points equal" true (point_equal p1 p4);
  Alcotest.(check bool) "jobs=1 vs jobs=4 det signatures equal" true (sig1 = sig4)

(* ---------- checkpoints are mode-independent ---------- *)

let with_ckpt f =
  let path = Filename.temp_file "sfi-ff-ckpt" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc s)

let truncate_to_lines path k =
  let lines = String.split_on_char '\n' (read_file path) in
  let kept = List.filteri (fun i _ -> i < k) lines in
  write_file path (String.concat "\n" kept ^ "\n")

(* A non-converging adaptive spec: the batch schedule is fixed at 4
   batches of 6, so truncation points are predictable. *)
let ckpt_spec mode path =
  Spec.(
    spec_mode mode
    |> with_adaptive ~batch:6 ~max_trials:24 ~ci_target:0.01
    |> with_seed 5 |> with_checkpoint path)

let test_checkpoint_records_identical () =
  let bench = Option.get (Registry.by_name "median") in
  let model = model_a 0.004 in
  let freqs = [ 680.; 740. ] in
  let run mode path =
    Campaign.run_sweep (ckpt_spec mode path) ~bench ~model ~freqs_mhz:freqs
  in
  let ps_off, file_off = with_ckpt (fun p -> (run Spec.Off p, read_file p)) in
  let ps_on, file_on = with_ckpt (fun p -> (run Spec.On p, read_file p)) in
  Alcotest.(check bool) "sweeps equal" true (points_equal ps_off ps_on);
  Alcotest.(check string) "checkpoint files byte-identical" file_off file_on

let test_checkpoint_off_resumes_under_on () =
  let bench = Option.get (Registry.by_name "median") in
  let model = model_a 0.004 in
  let freqs = [ 680.; 740. ] in
  let clean =
    with_ckpt (fun p ->
        Campaign.run_sweep (ckpt_spec Spec.Off p) ~bench ~model ~freqs_mhz:freqs)
  in
  with_ckpt @@ fun path ->
  ignore
    (Campaign.run_sweep (ckpt_spec Spec.Off path) ~bench ~model ~freqs_mhz:freqs
      : Campaign.point list);
  (* the on-disk state of a full-replay sweep killed after 3 batches *)
  truncate_to_lines path 3;
  Sfi_obs.reset ();
  let resumed =
    Campaign.run_sweep (ckpt_spec Spec.On path) ~bench ~model ~freqs_mhz:freqs
  in
  Alcotest.(check int) "3 batches of 6 resumed" 18 (value c_resumed);
  Alcotest.(check bool) "resumed-under-On equals clean full replay" true
    (points_equal clean resumed)

(* ---------- sfi-snap/1 cache robustness ---------- *)

let seq = ref 0

let with_temp_cache f =
  incr seq;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sfi-ff-cache.%d.%d" (Unix.getpid ()) !seq)
  in
  Sfi_cache.set_dir (Some dir);
  Fun.protect
    ~finally:(fun () ->
      ignore (Sfi_cache.prune ~all:true ~dir () : int);
      (try Unix.rmdir dir with Unix.Unix_error _ -> () | Sys_error _ -> ());
      Sfi_cache.set_dir None)
    (fun () -> f dir)

let the_entry dir =
  match Sfi_cache.scan ~dir with
  | [ e ] -> e
  | es -> Alcotest.failf "expected exactly one entry, scan found %d" (List.length es)

let corrupt_byte path pos =
  let content = read_file path in
  let pos = if pos < String.length content then pos else String.length content / 2 in
  let b = Bytes.of_string content in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xFF));
  write_file path (Bytes.to_string b)

(* Strides are distinct per test: the in-process memo is keyed by
   (bench, stride), so a fresh stride forces a fresh recording (and a
   fresh disk entry) regardless of test order. *)
let bench_for_cache = lazy (Option.get (Registry.by_name "median"))

let load_trace ~key = (Sfi_cache.load ~namespace:"snap" ~key : Fastforward.trace option)

let test_snap_corruption_rejected () =
  with_temp_cache @@ fun dir ->
  let bench = Lazy.force bench_for_cache in
  Alcotest.(check bool) "trace recorded" true
    (Fastforward.trace_for ~bench ~stride:37 <> None);
  let e = the_entry dir in
  Alcotest.(check string) "namespace" "snap" e.Sfi_cache.namespace;
  Alcotest.(check bool) "entry loads" true (load_trace ~key:e.Sfi_cache.key <> None);
  let path = Filename.concat dir e.Sfi_cache.file in
  corrupt_byte path 64;
  let r0 = value c_corrupt in
  Alcotest.(check bool) "corrupt entry rejected" true
    (load_trace ~key:e.Sfi_cache.key = None);
  Alcotest.(check int) "rejection counted" (r0 + 1) (value c_corrupt);
  Alcotest.(check bool) "bad file removed" false (Sys.file_exists path);
  (* a fresh stride re-records and repopulates the cache *)
  Alcotest.(check bool) "re-recorded" true
    (Fastforward.trace_for ~bench ~stride:41 <> None);
  Alcotest.(check bool) "repopulated" true
    (load_trace ~key:(the_entry dir).Sfi_cache.key <> None)

let test_snap_truncation_rejected () =
  with_temp_cache @@ fun dir ->
  let bench = Lazy.force bench_for_cache in
  ignore (Fastforward.trace_for ~bench ~stride:53 : Fastforward.trace option);
  let e = the_entry dir in
  let path = Filename.concat dir e.Sfi_cache.file in
  let content = read_file path in
  List.iter
    (fun keep ->
      write_file path (String.sub content 0 keep);
      Alcotest.(check bool)
        (Printf.sprintf "truncated to %d bytes rejected" keep)
        true
        (load_trace ~key:e.Sfi_cache.key = None);
      write_file path content)
    [ 0; 4; 11; 20; String.length content - 1 ]

let test_snap_version_bump_rejected () =
  with_temp_cache @@ fun dir ->
  let bench = Lazy.force bench_for_cache in
  ignore (Fastforward.trace_for ~bench ~stride:71 : Fastforward.trace option);
  let e = the_entry dir in
  (* byte 7 is the low byte of the big-endian schema version *)
  corrupt_byte (Filename.concat dir e.Sfi_cache.file) 7;
  Alcotest.(check bool) "bumped version rejected" true
    (load_trace ~key:e.Sfi_cache.key = None)

let test_cold_warm_det_signature () =
  with_temp_cache @@ fun _dir ->
  let bench = Option.get (Registry.by_name "mat_mult_8bit") in
  ignore (Campaign.reference_cycles bench : int);
  let model = model_a 0.006 in
  let spec = Spec.(spec_mode Spec.On |> with_trials 8 |> with_seed 13) in
  let cold, sig_cold =
    with_obs (fun () -> Campaign.run spec ~bench ~model ~freq_mhz:710.)
  in
  let warm, sig_warm =
    with_obs (fun () -> Campaign.run spec ~bench ~model ~freq_mhz:710.)
  in
  Alcotest.(check bool) "cold/warm points equal" true (point_equal cold warm);
  Alcotest.(check bool) "cold/warm det signatures equal" true (sig_cold = sig_warm)

let () =
  Alcotest.run "fastforward"
    [
      ( "parity",
        [
          Alcotest.test_case "all kernels, both engines" `Quick test_parity_all_kernels;
          Alcotest.test_case "rare faults elide trials" `Quick test_elision_parity;
          Alcotest.test_case "model C batched probe" `Quick test_model_c_parity;
          Alcotest.test_case "jobs=1 vs jobs=4" `Quick test_jobs_parity;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "records mode-independent" `Quick
            test_checkpoint_records_identical;
          Alcotest.test_case "Off checkpoint resumes under On" `Quick
            test_checkpoint_off_resumes_under_on;
        ] );
      ( "snap-cache",
        [
          Alcotest.test_case "corruption rejected" `Quick test_snap_corruption_rejected;
          Alcotest.test_case "truncation rejected" `Quick test_snap_truncation_rejected;
          Alcotest.test_case "version bump rejected" `Quick
            test_snap_version_bump_rejected;
          Alcotest.test_case "cold/warm det signature" `Quick
            test_cold_warm_det_signature;
        ] );
    ]
