open Sfi_util
open Sfi_netlist
open Sfi_timing
open Sfi_kernels
open Sfi_fi

(* Shared fixture: a sized ALU with a small characterization database. *)
let flow_alu =
  lazy
    (let alu = Alu.build () in
     Sizing.apply_process_variation ~sigma:0.03 ~seed:1 alu.Alu.circuit;
     Sizing.size_to_clock ~clock_mhz:707. alu.Alu.circuit;
     alu)

let char_db = lazy (Characterize.run ~cycles:500 ~seed:11 ~vdd:0.7 (Lazy.force flow_alu))

let sta_arrivals =
  lazy
    (let alu = Lazy.force flow_alu in
     Array.map snd (Sta.analyze alu.Alu.circuit).Sta.endpoints)

(* Built through the deprecated compat constructors on purpose: the
   variant-era entry points must keep producing the registry models. *)
let model_a p = Model.fixed_probability ~bit_flip_prob:p [@@warning "-3"]

let model_b () =
  Model.static_timing ~endpoint_arrivals:(Lazy.force sta_arrivals)
    ~setup_ps:Sta.default_setup_ps ~vdd:0.7 ~noise:Noise.none
    ~vdd_model:Vdd_model.default
[@@warning "-3"]

let model_bplus sigma =
  Model.static_timing ~endpoint_arrivals:(Lazy.force sta_arrivals)
    ~setup_ps:Sta.default_setup_ps ~vdd:0.7 ~noise:(Noise.create ~sigma ())
    ~vdd_model:Vdd_model.default
[@@warning "-3"]

let model_c ?(sampling = Model.Independent) ?(vdd = 0.7) sigma =
  Model.statistical ~db:(Lazy.force char_db) ~vdd ~noise:(Noise.create ~sigma ())
    ~vdd_model:Vdd_model.default ~sampling
[@@warning "-3"]

(* ---------- Model ---------- *)

let test_model_names () =
  Alcotest.(check string) "A" "A" (Model.key (model_a 0.1));
  Alcotest.(check string) "B" "B" (Model.key (model_b ()));
  Alcotest.(check string) "B+" "B+" (Model.key (model_bplus 0.01));
  Alcotest.(check string) "C" "C" (Model.key (model_c 0.01));
  Alcotest.(check string) "C-corr" "C-corr"
    (Model.key (model_c ~sampling:Model.Vector_correlated 0.01))

let test_model_feature_rows () =
  let rows = Model.feature_rows () in
  Alcotest.(check int) "four rows" 4 (List.length rows);
  let c = List.assoc "C" rows in
  Alcotest.(check bool) "C instruction-aware" true c.Model.instruction_aware;
  Alcotest.(check string) "C uses DTA" "DTA" c.Model.timing_data;
  let a = List.assoc "A" rows in
  Alcotest.(check bool) "A not instruction-aware" false a.Model.instruction_aware

(* ---------- Injector ---------- *)

let hook_call injector =
  Injector.hook injector ~cycle:0 ~cls:Op_class.Add ~a:1 ~b:2 ~result:3

let test_injector_a_zero_prob_never_fires () =
  let rng = Rng.of_int 1 in
  let injector =
    Injector.create ~model:(model_a 0.) ~freq_mhz:707.
      ~rng ()
  in
  Alcotest.(check bool) "cannot inject" true (Injector.cannot_inject injector);
  for _ = 1 to 100 do
    Alcotest.(check int) "mask 0" 0 (hook_call injector)
  done

let test_injector_a_prob_one_flips_everything () =
  let rng = Rng.of_int 2 in
  let injector =
    Injector.create ~model:(model_a 1.) ~freq_mhz:707.
      ~rng ()
  in
  Alcotest.(check int) "all 32 bits" 0xFFFF_FFFF (hook_call injector);
  Alcotest.(check int) "bits counted" 32 (Injector.fault_bits injector);
  Alcotest.(check int) "one event" 1 (Injector.fault_events injector)

let test_injector_b_below_sta_silent () =
  let rng = Rng.of_int 3 in
  let injector = Injector.create ~model:(model_b ()) ~freq_mhz:700. ~rng () in
  Alcotest.(check bool) "no faults possible at 700 MHz" true (Injector.cannot_inject injector)

let test_injector_b_above_sta_deterministic () =
  let rng = Rng.of_int 4 in
  let injector = Injector.create ~model:(model_b ()) ~freq_mhz:720. ~rng () in
  Alcotest.(check bool) "faults possible" false (Injector.cannot_inject injector);
  let m1 = hook_call injector in
  let m2 = hook_call injector in
  Alcotest.(check bool) "mask nonzero" true (m1 <> 0);
  Alcotest.(check int) "deterministic mask" m1 m2

let test_injector_bplus_noise_randomizes () =
  let rng = Rng.of_int 5 in
  (* Just below the static limit: only noisy cycles fault. *)
  let injector = Injector.create ~model:(model_bplus 0.010) ~freq_mhz:690. ~rng () in
  Alcotest.(check bool) "faults possible under noise" false (Injector.cannot_inject injector);
  let faulted = ref 0 and silent = ref 0 in
  for _ = 1 to 2000 do
    if hook_call injector <> 0 then incr faulted else incr silent
  done;
  Alcotest.(check bool)
    (Printf.sprintf "mixed outcomes (%d faulted, %d silent)" !faulted !silent)
    true
    (!faulted > 0 && !silent > 0)

let test_injector_bplus_onset_matches_scale () =
  (* Below fsta/scale(max excursion) nothing can fault. *)
  let vm = Vdd_model.default in
  let fsta =
    1e6 /. (Array.fold_left Float.max 0. (Lazy.force sta_arrivals) +. Sta.default_setup_ps)
  in
  let onset = fsta /. Vdd_model.scale_factor vm ~vdd:0.7 ~noise:(-0.020) in
  let rng = Rng.of_int 6 in
  let below = Injector.create ~model:(model_bplus 0.010) ~freq_mhz:(onset -. 2.) ~rng () in
  let above = Injector.create ~model:(model_bplus 0.010) ~freq_mhz:(onset +. 2.) ~rng () in
  Alcotest.(check bool) "below onset silent" true (Injector.cannot_inject below);
  Alcotest.(check bool) "above onset live" false (Injector.cannot_inject above)

let test_injector_c_class_dependence () =
  (* At a frequency between the mul and add onsets, mul ops must fault and
     add ops must not. *)
  let db = Lazy.force char_db in
  let f_mul = Characterize.class_first_failure_mhz db Op_class.Mul ~scale:1.0 in
  let f_add = Characterize.class_first_failure_mhz db Op_class.Add ~scale:1.0 in
  Alcotest.(check bool) "mul fails before add" true (f_mul < f_add);
  let f = (f_mul +. f_add) /. 2. in
  let rng = Rng.of_int 7 in
  let injector = Injector.create ~model:(model_c 0.) ~freq_mhz:f ~rng () in
  let hook = Injector.hook injector in
  let mul_faults = ref 0 in
  for _ = 1 to 3000 do
    if hook ~cycle:0 ~cls:Op_class.Mul ~a:0 ~b:0 ~result:0 <> 0 then incr mul_faults;
    Alcotest.(check int) "add never faults here" 0
      (hook ~cycle:0 ~cls:Op_class.Add ~a:0 ~b:0 ~result:0)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "mul faulted %d times" !mul_faults)
    true (!mul_faults > 0)

let test_injector_c_rate_grows_with_frequency () =
  let rate f =
    let rng = Rng.of_int 8 in
    let injector = Injector.create ~model:(model_c 0.010) ~freq_mhz:f ~rng () in
    let hook = Injector.hook injector in
    for _ = 1 to 3000 do
      ignore (hook ~cycle:0 ~cls:Op_class.Mul ~a:0 ~b:0 ~result:0)
    done;
    Injector.fault_bits injector
  in
  let r800 = rate 800. and r1000 = rate 1000. in
  Alcotest.(check bool)
    (Printf.sprintf "rate %d @800 < %d @1000" r800 r1000)
    true (r800 < r1000)

let test_injector_c_correlated_masks_from_characterization () =
  (* Vector-correlated masks must be violation masks of some
     characterization cycle. *)
  let db = Lazy.force char_db in
  let f = 1000. in
  let rng = Rng.of_int 9 in
  let injector =
    Injector.create ~model:(model_c ~sampling:Model.Vector_correlated 0.) ~freq_mhz:f ~rng ()
  in
  let hook = Injector.hook injector in
  let period = Sta.period_ps_of_mhz f in
  let valid_masks = Hashtbl.create 64 in
  for k = 0 to db.Characterize.cycles - 1 do
    Hashtbl.replace valid_masks
      (Characterize.violation_mask db Op_class.Mul ~cycle:k ~period_ps:period ~scale:1.0)
      ()
  done;
  for _ = 1 to 500 do
    let mask = hook ~cycle:0 ~cls:Op_class.Mul ~a:0 ~b:0 ~result:0 in
    if not (Hashtbl.mem valid_masks mask) then
      Alcotest.failf "mask %08x not a characterization violation mask" mask
  done

let test_injector_class_accounting () =
  let rng = Rng.of_int 12 in
  let injector = Injector.create ~model:(model_c 0.) ~freq_mhz:1000. ~rng () in
  let hook = Injector.hook injector in
  for _ = 1 to 2000 do
    ignore (hook ~cycle:0 ~cls:Op_class.Mul ~a:0 ~b:0 ~result:0)
  done;
  let by_class = Injector.fault_bits_by_class injector in
  Alcotest.(check int) "totals agree" (Injector.fault_bits injector)
    (Array.fold_left ( + ) 0 by_class);
  Alcotest.(check int) "all attributed to mul" (Injector.fault_bits injector)
    by_class.(Op_class.index Op_class.Mul);
  Alcotest.(check bool) "mul faulted" true (Injector.fault_bits injector > 0)

let test_injector_deterministic_in_rng () =
  let masks seed =
    let rng = Rng.of_int seed in
    let injector = Injector.create ~model:(model_c 0.010) ~freq_mhz:900. ~rng () in
    let hook = Injector.hook injector in
    List.init 200 (fun _ -> hook ~cycle:0 ~cls:Op_class.Mul ~a:0 ~b:0 ~result:0)
  in
  Alcotest.(check bool) "same seed same masks" true (masks 42 = masks 42);
  Alcotest.(check bool) "different seed differs" true (masks 42 <> masks 43)

(* ---------- Campaign ---------- *)

let small_median = lazy (Median.create ~n:21 ~seed:3 ())

(* Spec builder mirroring the old optional-argument surface, so the
   campaign tests keep reading in terms of per-call trial counts. *)
let spec ?(trials = 100) ?(seed = 1) ?jobs () =
  let s = Campaign.Spec.(default |> with_trials trials |> with_seed seed) in
  match jobs with Some j -> Campaign.Spec.with_jobs j s | None -> s

let test_campaign_fault_free_point () =
  let p =
    Campaign.run (spec ~trials:5 ()) ~bench:(Lazy.force small_median)
      ~model:(model_a 0.)
      ~freq_mhz:707.
  in
  Alcotest.(check (float 0.)) "finished" 1.0 p.Campaign.finished_rate;
  Alcotest.(check (float 0.)) "correct" 1.0 p.Campaign.correct_rate;
  Alcotest.(check bool) "marked n/a" false p.Campaign.any_fault_possible;
  Alcotest.(check (float 0.)) "no error" 0. p.Campaign.mean_error

let test_campaign_saturated_faults_break_everything () =
  let p =
    Campaign.run (spec ~trials:5 ()) ~bench:(Lazy.force small_median)
      ~model:(model_a 0.5)
      ~freq_mhz:707.
  in
  Alcotest.(check (float 0.)) "nothing correct" 0.0 p.Campaign.correct_rate;
  Alcotest.(check bool) "fi rate large" true (p.Campaign.fi_per_kcycle > 100.)

let test_campaign_below_onset_uses_fast_path () =
  let p =
    Campaign.run (spec ~trials:50 ()) ~bench:(Lazy.force small_median)
      ~model:(model_c 0.) ~freq_mhz:500.
  in
  Alcotest.(check bool) "fast path" false p.Campaign.any_fault_possible;
  Alcotest.(check int) "single representative trial" 1 p.Campaign.trials

let test_campaign_trial_determinism () =
  let run () =
    Campaign.run_trial ~bench:(Lazy.force small_median) ~model:(model_c 0.010)
      ~freq_mhz:950. ~seed:7
  in
  let t1 = run () and t2 = run () in
  Alcotest.(check bool) "same outcome" true
    (t1.Campaign.finished = t2.Campaign.finished
    && t1.Campaign.correct = t2.Campaign.correct
    && t1.Campaign.fault_bits = t2.Campaign.fault_bits
    && t1.Campaign.fault_events = t2.Campaign.fault_events
    && t1.Campaign.kernel_cycles = t2.Campaign.kernel_cycles);
  Alcotest.(check bool) "same error (nan-aware)" true
    (t1.Campaign.error = t2.Campaign.error
    || (Float.is_nan t1.Campaign.error && Float.is_nan t2.Campaign.error))

let test_campaign_poff_detection () =
  let mk freq correct =
    {
      Campaign.freq_mhz = freq;
      trials = 10;
      trials_requested = 10;
      finished_rate = 1.;
      correct_rate = correct;
      ci_low = correct;
      ci_high = correct;
      fi_per_kcycle = 0.;
      mean_error = 0.;
      any_fault_possible = true;
    }
  in
  Alcotest.(check (option (float 0.))) "first failing freq" (Some 800.)
    (Campaign.point_of_first_failure [ mk 700. 1.0; mk 800. 0.9; mk 900. 0.1 ]);
  Alcotest.(check (option (float 0.))) "none" None
    (Campaign.point_of_first_failure [ mk 700. 1.0 ])

(* Structural equality over [Campaign.point], except nan = nan for
   [mean_error] (no trial finished on both sides). *)
let point_equal (p : Campaign.point) (q : Campaign.point) =
  p.Campaign.freq_mhz = q.Campaign.freq_mhz
  && p.Campaign.trials = q.Campaign.trials
  && p.Campaign.trials_requested = q.Campaign.trials_requested
  && p.Campaign.finished_rate = q.Campaign.finished_rate
  && p.Campaign.correct_rate = q.Campaign.correct_rate
  && p.Campaign.ci_low = q.Campaign.ci_low
  && p.Campaign.ci_high = q.Campaign.ci_high
  && p.Campaign.fi_per_kcycle = q.Campaign.fi_per_kcycle
  && (p.Campaign.mean_error = q.Campaign.mean_error
     || (Float.is_nan p.Campaign.mean_error && Float.is_nan q.Campaign.mean_error))
  && p.Campaign.any_fault_possible = q.Campaign.any_fault_possible

(* Runs [f] with observability counters reset + enabled and returns
   (result, det signature of the work done). The first call warms the
   campaign's reference-cycle cache outside the measured region so the
   hit/miss counters are identical across compared runs. *)
let with_obs_signature f =
  Sfi_obs.reset ();
  Sfi_obs.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Sfi_obs.set_enabled false)
    (fun () ->
      let r = f () in
      (r, Sfi_obs.det_signature ()))

let test_campaign_jobs_determinism () =
  let bench = Lazy.force small_median in
  let model = model_c 0.010 in
  (* Warm the reference-cycle cache so both instrumented runs see the
     same cache hit/miss counts. *)
  ignore (Campaign.run (spec ~trials:1 ()) ~bench ~model ~freq_mhz:900.);
  List.iter
    (fun seed ->
      List.iter
        (fun freq_mhz ->
          let serial, sig1 =
            with_obs_signature (fun () ->
                Campaign.run (spec ~trials:10 ~seed ~jobs:1 ()) ~bench ~model ~freq_mhz)
          in
          let pooled, sig4 =
            with_obs_signature (fun () ->
                Campaign.run (spec ~trials:10 ~seed ~jobs:4 ()) ~bench ~model ~freq_mhz)
          in
          if not (point_equal serial pooled) then
            Alcotest.failf "jobs=1 vs jobs=4 differ at seed %d, %.0f MHz" seed freq_mhz;
          (* The merged observability counters must agree too: same
             events, settles, attempts, faults — only wall-clock spans
             and scheduling counters (both excluded from the signature)
             may differ. *)
          List.iter2
            (fun (n1, v1) (n4, v4) ->
              if n1 <> n4 || v1 <> v4 then
                Alcotest.failf "obs %s diverged at seed %d, %.0f MHz" n1 seed freq_mhz)
            sig1 sig4)
        [ 900.; 980. ])
    [ 1; 7; 42 ]

let test_campaign_sweep_jobs_determinism () =
  let bench = Lazy.force small_median in
  let model = model_c 0.010 in
  let freqs = [ 880.; 940.; 1000. ] in
  ignore (Campaign.run (spec ~trials:1 ()) ~bench ~model ~freq_mhz:880.);
  let serial, sig1 =
    with_obs_signature (fun () ->
        Campaign.run_sweep (spec ~trials:6 ~seed:5 ~jobs:1 ()) ~bench ~model
          ~freqs_mhz:freqs)
  in
  let pooled, sig4 =
    with_obs_signature (fun () ->
        Campaign.run_sweep (spec ~trials:6 ~seed:5 ~jobs:4 ()) ~bench ~model
          ~freqs_mhz:freqs)
  in
  Alcotest.(check int) "same length" (List.length serial) (List.length pooled);
  List.iter2
    (fun p q ->
      if not (point_equal p q) then
        Alcotest.failf "sweep points differ at %.0f MHz" p.Campaign.freq_mhz)
    serial pooled;
  Alcotest.(check bool) "merged obs signatures identical" true (sig1 = sig4)

let test_campaign_sweep_shape () =
  let points =
    Campaign.run_sweep (spec ~trials:8 ()) ~bench:(Lazy.force small_median)
      ~model:(model_c 0.010) ~freqs_mhz:[ 600.; 900.; 1100. ]
  in
  Alcotest.(check int) "three points" 3 (List.length points);
  let correct = List.map (fun p -> p.Campaign.correct_rate) points in
  (match correct with
  | [ a; _; c ] ->
    Alcotest.(check (float 0.)) "safe at 600" 1.0 a;
    Alcotest.(check bool) "degrades by 1100" true (c < 1.0)
  | _ -> Alcotest.fail "unexpected shape")

let () =
  Alcotest.run "sfi_fi"
    [
      ( "model",
        [
          Alcotest.test_case "names" `Quick test_model_names;
          Alcotest.test_case "feature rows" `Quick test_model_feature_rows;
        ] );
      ( "injector",
        [
          Alcotest.test_case "A p=0" `Quick test_injector_a_zero_prob_never_fires;
          Alcotest.test_case "A p=1" `Quick test_injector_a_prob_one_flips_everything;
          Alcotest.test_case "B below STA" `Quick test_injector_b_below_sta_silent;
          Alcotest.test_case "B deterministic" `Quick test_injector_b_above_sta_deterministic;
          Alcotest.test_case "B+ randomizes" `Quick test_injector_bplus_noise_randomizes;
          Alcotest.test_case "B+ onset" `Quick test_injector_bplus_onset_matches_scale;
          Alcotest.test_case "C class-dependent" `Quick test_injector_c_class_dependence;
          Alcotest.test_case "C rate grows with f" `Quick test_injector_c_rate_grows_with_frequency;
          Alcotest.test_case "C correlated masks" `Quick
            test_injector_c_correlated_masks_from_characterization;
          Alcotest.test_case "class accounting" `Quick test_injector_class_accounting;
          Alcotest.test_case "deterministic in rng" `Quick test_injector_deterministic_in_rng;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "fault-free point" `Quick test_campaign_fault_free_point;
          Alcotest.test_case "saturated faults" `Quick test_campaign_saturated_faults_break_everything;
          Alcotest.test_case "fast path below onset" `Quick test_campaign_below_onset_uses_fast_path;
          Alcotest.test_case "trial determinism" `Quick test_campaign_trial_determinism;
          Alcotest.test_case "jobs determinism" `Quick test_campaign_jobs_determinism;
          Alcotest.test_case "sweep jobs determinism" `Quick
            test_campaign_sweep_jobs_determinism;
          Alcotest.test_case "PoFF detection" `Quick test_campaign_poff_detection;
          Alcotest.test_case "sweep shape" `Quick test_campaign_sweep_shape;
        ] );
    ]
