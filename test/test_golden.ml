(* Golden-file regression tests for small-scale versions of the paper's
   fig. 2 (per-instruction error-probability curves), fig. 5 (median
   sweep) and fig. 6 (matmul sweep).

   The configurations are tiny but fully deterministic: fixed seeds,
   fixed characterization depth, serial-equivalent campaigns. The
   expected outputs live in test/golden/*.json; comparison is
   field-by-field with a relative float tolerance, so a change in the
   timing engine, the injector or the campaign aggregation that moves
   any reported number past noise shows up as a diff against a
   reviewable JSON file.

   To regenerate after an intentional change:

     SFI_GOLDEN_REGEN=1 dune exec test/test_golden.exe

   then review the git diff of test/golden/. *)

open Sfi_util
open Sfi_core
module Json = Sfi_obs.Json

let regen = Sys.getenv_opt "SFI_GOLDEN_REGEN" = Some "1"

(* Under `dune runtest` the cwd is the sandboxed test directory, where
   (deps (glob_files golden/*.json)) materializes the files; a regen run
   from the project root writes into the source tree. *)
let golden_dir = if Sys.file_exists "golden" then "golden" else "test/golden"

let flow =
  lazy (Flow.create ~config:{ Flow.default_config with Flow.char_cycles = 300 } ())

(* ---------- figure builders ---------- *)

let num f = if Float.is_nan f then Json.Null else Json.Float f

let fig2_small () =
  let db = Flow.char_db (Lazy.force flow) ~vdd:0.7 in
  let fsta = Flow.sta_limit_mhz (Lazy.force flow) ~vdd:0.7 in
  let freqs = List.init 9 (fun i -> fsta *. (0.95 +. (0.06 *. float_of_int i))) in
  let curve cls endpoint scale =
    Json.Obj
      [
        ("class", Json.String (Op_class.name cls));
        ("endpoint", Json.Int endpoint);
        ("scale", Json.Float scale);
        ( "probs",
          Json.List
            (List.map
               (fun f ->
                 num
                   (Sfi_timing.Characterize.error_probability db cls ~endpoint
                      ~period_ps:(1e6 /. f) ~scale))
               freqs) );
      ]
  in
  Json.Obj
    [
      ("figure", Json.String "fig2_small");
      ("freqs_mhz", Json.List (List.map num freqs));
      ( "curves",
        Json.List
          [
            curve Op_class.Mul 24 1.0;
            curve Op_class.Mul 3 1.0;
            curve Op_class.Add 24 1.0;
            curve Op_class.Add 3 1.05;
          ] );
    ]

(* The sweep figures serialize through the one versioned point codec
   (schema sfi-point/1) — the same renderer `sfi campaign --json` and the
   bench harness use — so a codec change shows up here as a golden diff. *)
let sweep_json ~figure ~bench ~sigma ~rels ~trials =
  let fl = Lazy.force flow in
  let fsta = Flow.sta_limit_mhz fl ~vdd:0.7 in
  let model = Flow.model_c fl ~vdd:0.7 ~sigma () in
  let freqs = List.map (fun r -> fsta *. r) rels in
  let spec = Sfi_fi.Campaign.Spec.(default |> with_trials trials |> with_seed 42) in
  let points = Sfi_fi.Campaign.run_sweep spec ~bench ~model ~freqs_mhz:freqs in
  Sfi_fi.Campaign.Point_json.of_sweep
    ~meta:[ ("figure", Json.String figure); ("trials", Json.Int trials) ]
    points

let fig5_small () =
  sweep_json ~figure:"fig5_small"
    ~bench:(Sfi_kernels.Median.create ~n:17 ~seed:3 ())
    ~sigma:0.010
    ~rels:[ 0.95; 1.05; 1.15; 1.30 ]
    ~trials:8

let fig6_small () =
  sweep_json ~figure:"fig6_small"
    ~bench:(Sfi_kernels.Matmul.create ~n:6 ~bits:8 ~seed:4 ())
    ~sigma:0.010
    ~rels:[ 1.0; 1.12; 1.28 ]
    ~trials:6

(* ---------- tolerant structural comparison ---------- *)

let tol = 1e-6

let rec diff path a b =
  let open Json in
  match (a, b) with
  | Null, Null -> None
  | Bool x, Bool y when x = y -> None
  | String x, String y when x = y -> None
  | (Int _ | Float _), (Int _ | Float _) -> (
    match (to_float a, to_float b) with
    | Some x, Some y when Float.abs (x -. y) <= tol *. Float.max 1. (Float.abs x) ->
      None
    | _ -> Some (Printf.sprintf "%s: %s <> %s" path (to_string a) (to_string b)))
  | List xs, List ys ->
    if List.length xs <> List.length ys then
      Some
        (Printf.sprintf "%s: list length %d <> %d" path (List.length xs)
           (List.length ys))
    else
      List.find_map Fun.id
        (List.mapi (fun i (x, y) -> diff (Printf.sprintf "%s[%d]" path i) x y)
           (List.combine xs ys))
  | Obj xs, Obj ys ->
    if List.map fst xs <> List.map fst ys then
      Some (Printf.sprintf "%s: object keys differ" path)
    else
      List.find_map
        (fun (k, x) -> diff (path ^ "." ^ k) x (List.assoc k ys))
        xs
  | _ -> Some (Printf.sprintf "%s: %s <> %s" path (to_string a) (to_string b))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_golden name build () =
  let path = Filename.concat golden_dir (name ^ ".json") in
  let actual = build () in
  if regen then begin
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (Json.to_string actual ^ "\n"));
    Printf.printf "regenerated %s\n" path
  end
  else begin
    let expected = Json.parse (read_file path) in
    match diff name expected actual with
    | None -> ()
    | Some msg ->
      Alcotest.failf "golden mismatch (SFI_GOLDEN_REGEN=1 to regenerate): %s" msg
  end

let () =
  Alcotest.run "sfi_golden"
    [
      ( "figures",
        [
          Alcotest.test_case "fig2 small grid" `Quick (check_golden "fig2_small" fig2_small);
          Alcotest.test_case "fig5 small sweep" `Quick (check_golden "fig5_small" fig5_small);
          Alcotest.test_case "fig6 small sweep" `Quick (check_golden "fig6_small" fig6_small);
        ] );
    ]
