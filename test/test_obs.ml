(* Unit tests for the observability subsystem: registry semantics,
   enable gating, per-domain shard merging through the pool, the
   deterministic signature, and the JSONL snapshot format. *)

open Sfi_util

(* Fresh counters per test run: alcotest executes cases sequentially in
   one process, so reset + enable around each body is race-free. *)
let with_obs f () =
  Sfi_obs.reset ();
  Sfi_obs.set_enabled true;
  Fun.protect ~finally:(fun () -> Sfi_obs.set_enabled false) f

(* ---------- counters ---------- *)

let test_counter_basic () =
  let c = Sfi_obs.Counter.make "test.basic" in
  Alcotest.(check int) "starts at 0" 0 (Sfi_obs.Counter.value c);
  Sfi_obs.Counter.incr c;
  Sfi_obs.Counter.add c 41;
  Alcotest.(check int) "accumulates" 42 (Sfi_obs.Counter.value c)

let test_counter_disabled_noop () =
  let c = Sfi_obs.Counter.make "test.disabled" in
  Sfi_obs.set_enabled false;
  Sfi_obs.Counter.add c 7;
  Sfi_obs.set_enabled true;
  Alcotest.(check int) "no count while disabled" 0 (Sfi_obs.Counter.value c);
  Sfi_obs.Counter.add c 7;
  Alcotest.(check int) "counts once re-enabled" 7 (Sfi_obs.Counter.value c)

let test_counter_find_or_create () =
  let a = Sfi_obs.Counter.make "test.shared" in
  let b = Sfi_obs.Counter.make "test.shared" in
  Sfi_obs.Counter.add a 3;
  Sfi_obs.Counter.add b 4;
  Alcotest.(check int) "same cell via a" 7 (Sfi_obs.Counter.value a);
  Alcotest.(check int) "same cell via b" 7 (Sfi_obs.Counter.value b)

let test_kind_mismatch_raises () =
  ignore (Sfi_obs.Counter.make "test.kind_clash");
  Alcotest.check_raises "hist over counter name"
    (Invalid_argument
       "Sfi_obs: metric test.kind_clash re-registered with a different kind")
    (fun () -> ignore (Sfi_obs.Hist.make "test.kind_clash"))

(* ---------- histograms ---------- *)

let test_hist_bucket_laws () =
  Alcotest.(check int) "bucket of 0" 0 (Sfi_obs.Hist.bucket_of 0);
  Alcotest.(check int) "bucket of -5" 0 (Sfi_obs.Hist.bucket_of (-5));
  Alcotest.(check int) "bucket of 1" 1 (Sfi_obs.Hist.bucket_of 1);
  List.iter
    (fun v ->
      let b = Sfi_obs.Hist.bucket_of v in
      let lo = Sfi_obs.Hist.lo_of_bucket b in
      if not (lo <= v) then Alcotest.failf "lo %d > v %d (bucket %d)" lo v b;
      (* The upper-bound law only applies while 2^b fits the native int:
         bucket 62 is the top bucket for 63-bit OCaml ints. *)
      if b < 62 && not (v < Sfi_obs.Hist.lo_of_bucket (b + 1)) then
        Alcotest.failf "v %d >= next bucket lo (bucket %d)" v b)
    [ 1; 2; 3; 4; 7; 8; 1023; 1024; 123_456_789; max_int ]

let test_hist_observe () =
  let h = Sfi_obs.Hist.make "test.hist" in
  List.iter (Sfi_obs.Hist.observe h) [ 1; 1; 2; 100; 0 ];
  Alcotest.(check int) "count" 5 (Sfi_obs.Hist.count h);
  Alcotest.(check int) "sum" 104 (Sfi_obs.Hist.sum h);
  Alcotest.(check (list (pair int int)))
    "sparse ascending buckets"
    [ (0, 1); (1, 2); (2, 1); (7, 1) ]
    (Sfi_obs.Hist.buckets h)

(* ---------- spans ---------- *)

let test_span_accumulates () =
  let s = Sfi_obs.Span.make "test.span" in
  Sfi_obs.Span.add_ns s 1500;
  let r = Sfi_obs.Span.time s (fun () -> 17) in
  Alcotest.(check int) "time returns the thunk's value" 17 r;
  Alcotest.(check int) "two entries" 2 (Sfi_obs.Span.count s);
  Alcotest.(check bool) "non-negative total" true (Sfi_obs.Span.total_ns s >= 1500)

(* ---------- det signature ---------- *)

let test_det_signature_contents () =
  let c = Sfi_obs.Counter.make "test.det_counter" in
  let nd = Sfi_obs.Counter.make ~det:false "test.sched_counter" in
  let s = Sfi_obs.Span.make "test.sig_span" in
  Sfi_obs.Counter.add c 5;
  Sfi_obs.Counter.add nd 9;
  Sfi_obs.Span.add_ns s 100;
  let names = List.map fst (Sfi_obs.det_signature ()) in
  Alcotest.(check bool) "det counter present" true
    (List.mem "test.det_counter" names);
  Alcotest.(check bool) "non-det counter excluded" false
    (List.mem "test.sched_counter" names);
  Alcotest.(check bool) "span excluded" false (List.mem "test.sig_span" names);
  Alcotest.(check (list int)) "counter value" [ 5 ]
    (List.assoc "test.det_counter" (Sfi_obs.det_signature ()))

(* ---------- pool shard merge ---------- *)

let test_pool_shard_merge () =
  let c = Sfi_obs.Counter.make "test.pool_merge" in
  let n = 200 in
  let out =
    Pool.with_pool ~jobs:4 (fun pool ->
        Pool.map pool
          (fun i ->
            Sfi_obs.Counter.incr c;
            i * 2)
          (Array.init n Fun.id))
  in
  Alcotest.(check int) "work done" (n * (n - 1)) (Array.fold_left ( + ) 0 out);
  (* Workers retired their shards on pool shutdown; the merged value
     must equal the task count no matter which domain ran what. *)
  Alcotest.(check int) "merged count" n (Sfi_obs.Counter.value c)

let test_pool_merge_survives_reuse () =
  let c = Sfi_obs.Counter.make "test.pool_reuse" in
  for _ = 1 to 3 do
    Pool.with_pool ~jobs:3 (fun pool ->
        ignore (Pool.map pool (fun i -> Sfi_obs.Counter.incr c; i) (Array.init 50 Fun.id)))
  done;
  Alcotest.(check int) "three pools of 50" 150 (Sfi_obs.Counter.value c)

(* ---------- reset ---------- *)

let test_reset_zeroes () =
  let c = Sfi_obs.Counter.make "test.reset" in
  Sfi_obs.Counter.add c 11;
  Sfi_obs.reset ();
  Alcotest.(check int) "zero after reset" 0 (Sfi_obs.Counter.value c);
  Sfi_obs.Counter.add c 2;
  Alcotest.(check int) "usable after reset" 2 (Sfi_obs.Counter.value c)

(* ---------- JSON / JSONL ---------- *)

let test_json_parse_roundtrip () =
  let open Sfi_obs.Json in
  let v =
    Obj
      [
        ("name", String "x\"y\\z");
        ("n", Int (-42));
        ("f", Float 1.5);
        ("ok", Bool true);
        ("null", Null);
        ("xs", List [ Int 1; Int 2 ]);
      ]
  in
  let v' = parse (to_string v) in
  Alcotest.(check (option string)) "string escapes" (Some "x\"y\\z")
    (Option.bind (member "name" v') to_string_opt);
  Alcotest.(check (option int)) "negative int" (Some (-42))
    (Option.bind (member "n" v') to_int);
  Alcotest.(check (option bool)) "bool" (Some true)
    (Option.bind (member "ok" v') to_bool);
  (match parse "{} x" with
  | exception Parse_error _ -> ()
  | _ -> Alcotest.fail "trailing garbage accepted")

let test_jsonl_snapshot_roundtrip () =
  let c = Sfi_obs.Counter.make "test.jsonl_counter" in
  let h = Sfi_obs.Hist.make "test.jsonl_hist" in
  Sfi_obs.Counter.add c 13;
  Sfi_obs.Hist.observe h 5;
  let path = Filename.temp_file "sfi_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Sfi_obs.write_jsonl ~meta:[ ("jobs", Sfi_obs.Json.Int 1) ] path;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let parsed = List.rev_map Sfi_obs.Json.parse !lines in
      let open Sfi_obs.Json in
      (match
         List.find_opt (fun v -> member "schema" v <> None) parsed
       with
      | Some header ->
        Alcotest.(check (option string)) "schema" (Some "sfi-obs/1")
          (Option.bind (member "schema" header) to_string_opt)
      | None -> Alcotest.fail "no header line");
      let entry name =
        List.find_opt
          (fun v -> Option.bind (member "name" v) to_string_opt = Some name)
          parsed
      in
      (match entry "test.jsonl_counter" with
      | Some v ->
        Alcotest.(check (option int)) "counter value" (Some 13)
          (Option.bind (member "value" v) to_int)
      | None -> Alcotest.fail "counter entry missing");
      match entry "test.jsonl_hist" with
      | Some v ->
        Alcotest.(check (option int)) "hist count" (Some 1)
          (Option.bind (member "count" v) to_int);
        Alcotest.(check (option int)) "hist sum" (Some 5)
          (Option.bind (member "sum" v) to_int)
      | None -> Alcotest.fail "hist entry missing")

(* ---------- allocation ---------- *)

let test_counter_add_allocation_free () =
  match Sys.backend_type with
  | Sys.Native ->
    let c = Sfi_obs.Counter.make "test.alloc" in
    let run () =
      for i = 1 to 10_000 do
        Sfi_obs.Counter.add c (i land 3)
      done
    in
    run () (* warm: sizes this domain's shard *);
    let w0 = Gc.minor_words () in
    run ();
    let dw = Gc.minor_words () -. w0 in
    Alcotest.(check bool)
      (Printf.sprintf "enabled Counter.add allocated %.0f minor words" dw)
      true (dw < 16.)
  | Sys.Bytecode | Sys.Other _ -> ()

let () =
  let t name f = Alcotest.test_case name `Quick (with_obs f) in
  Alcotest.run "sfi_obs"
    [
      ( "counter",
        [
          t "basic accumulation" test_counter_basic;
          t "disabled is a no-op" test_counter_disabled_noop;
          t "find-or-create shares the cell" test_counter_find_or_create;
          t "kind mismatch raises" test_kind_mismatch_raises;
          t "enabled add is allocation-free" test_counter_add_allocation_free;
        ] );
      ( "hist",
        [ t "bucket laws" test_hist_bucket_laws; t "observe" test_hist_observe ] );
      ("span", [ t "accumulates" test_span_accumulates ]);
      ("signature", [ t "det contents" test_det_signature_contents ]);
      ( "pool",
        [
          t "shard merge on join" test_pool_shard_merge;
          t "merge survives pool reuse" test_pool_merge_survives_reuse;
        ] );
      ("reset", [ t "zeroes and stays usable" test_reset_zeroes ]);
      ( "json",
        [
          t "parse roundtrip" test_json_parse_roundtrip;
          t "jsonl snapshot roundtrip" test_jsonl_snapshot_roundtrip;
        ] );
    ]
