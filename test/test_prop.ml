(* Property-based suites over the numeric substrate, driven by the
   minimal seeded helper in [Prop]. Each property states an oracle —
   a sorted reference, a monotonicity law, or Int64 arithmetic — and
   runs a few hundred random cases against it. *)

open Sfi_util

(* ---------- Min_heap: pop order vs sorted reference ---------- *)

let heap_keys = Prop.array ~min_len:0 ~max_len:300 (Prop.float ~lo:0. ~hi:1e6)

let drain_floats h =
  let out = ref [] in
  let rec go () =
    let p = Min_heap.pop_unsafe h in
    if p <> Min_heap.no_event then begin
      out := Min_heap.float_of_key (Min_heap.popped_key h) :: !out;
      go ()
    end
  in
  go ();
  Array.of_list (List.rev !out)

let prop_heap_pop_order =
  Prop.test "pop order matches sorted reference" heap_keys (fun xs ->
      let h = Min_heap.create () in
      Array.iteri (fun i x -> Min_heap.push_key h (Min_heap.key_of_float x) i) xs;
      let sorted = Array.copy xs in
      Array.sort compare sorted;
      drain_floats h = sorted)

let prop_heap_interleaved =
  (* Random push/pop interleaving never pops out of order w.r.t. the
     keys present at pop time, and ends empty after draining. *)
  Prop.test "interleaved push/pop stays ordered"
    (Prop.list ~min_len:1 ~max_len:200
       (Prop.pair Prop.bool (Prop.float ~lo:0. ~hi:1e6)))
    (fun ops ->
      let h = Min_heap.create () in
      let ok = ref true in
      let last_popped = ref neg_infinity in
      List.iter
        (fun (push, x) ->
          if push then begin
            Min_heap.push_key h (Min_heap.key_of_float x) 0;
            (* a push can only lower the minimum, never violate order *)
            last_popped := neg_infinity
          end
          else if Min_heap.pop_unsafe h <> Min_heap.no_event then begin
            let v = Min_heap.float_of_key (Min_heap.popped_key h) in
            if v < !last_popped then ok := false;
            last_popped := v
          end)
        ops;
      ignore (drain_floats h);
      !ok && Min_heap.is_empty h)

let prop_heap_peek =
  Prop.test "peek equals subsequent pop"
    (Prop.array ~min_len:1 ~max_len:64 (Prop.float ~lo:0. ~hi:1e6))
    (fun xs ->
      let h = Min_heap.create () in
      Array.iter (fun x -> Min_heap.push h x 0) xs;
      match Min_heap.peek_key h with
      | None -> false
      | Some k -> (
        match Min_heap.pop h with Some (k', _) -> k = k' | None -> false))

(* ---------- Cdf: monotonicity and quantile/probability roundtrip ---------- *)

let cdf_samples = Prop.array ~min_len:1 ~max_len:150 (Prop.float ~lo:0. ~hi:1000.)

let prop_cdf_monotone =
  Prop.test "prob_greater is non-increasing"
    (Prop.triple cdf_samples (Prop.float ~lo:(-10.) ~hi:1010.)
       (Prop.float ~lo:(-10.) ~hi:1010.))
    (fun (xs, x1, x2) ->
      let t = Sfi_timing.Cdf.of_samples xs in
      let lo = Float.min x1 x2 and hi = Float.max x1 x2 in
      Sfi_timing.Cdf.prob_greater t lo >= Sfi_timing.Cdf.prob_greater t hi)

let prop_cdf_quantile_roundtrip =
  Prop.test "prob_leq (quantile q) >= q"
    (Prop.pair cdf_samples (Prop.float ~lo:0. ~hi:1.))
    (fun (xs, q) ->
      let t = Sfi_timing.Cdf.of_samples xs in
      Sfi_timing.Cdf.prob_leq t (Sfi_timing.Cdf.quantile t q) >= q -. 1e-12)

let prop_cdf_quantile_monotone =
  Prop.test "quantile is non-decreasing in q"
    (Prop.triple cdf_samples (Prop.float ~lo:0. ~hi:1.) (Prop.float ~lo:0. ~hi:1.))
    (fun (xs, q1, q2) ->
      let t = Sfi_timing.Cdf.of_samples xs in
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      Sfi_timing.Cdf.quantile t lo <= Sfi_timing.Cdf.quantile t hi)

let prop_cdf_bounds =
  Prop.test "quantile stays within sample range" cdf_samples (fun xs ->
      let t = Sfi_timing.Cdf.of_samples xs in
      let q0 = Sfi_timing.Cdf.quantile t 0. and q1 = Sfi_timing.Cdf.quantile t 1. in
      Sfi_timing.Cdf.min_value t <= q0 && q1 <= Sfi_timing.Cdf.max_value t)

(* ---------- Interp: monotone curves invert exactly ---------- *)

(* Strictly increasing anchors with slopes bounded away from zero, so the
   inverse is well-conditioned and a tight tolerance is honest. *)
let mono_curve rng =
  let n = Prop.int ~lo:2 ~hi:12 rng in
  let x = ref (Prop.float ~lo:0. ~hi:5. rng) in
  let y = ref (Prop.float ~lo:0. ~hi:5. rng) in
  List.init n (fun _ ->
      let px = !x and py = !y in
      x := !x +. 0.5 +. Prop.float ~lo:0. ~hi:10. rng;
      y := !y +. 0.5 +. Prop.float ~lo:0. ~hi:10. rng;
      (px, py))

let prop_interp_monotone =
  Prop.test "eval preserves monotonicity"
    (Prop.triple mono_curve (Prop.float ~lo:0. ~hi:1.) (Prop.float ~lo:0. ~hi:1.))
    (fun (pts, u1, u2) ->
      let t = Interp.of_points pts in
      let x0 = fst (List.hd pts) and x1 = fst (List.nth pts (List.length pts - 1)) in
      let at u = x0 +. (u *. (x1 -. x0)) in
      let lo = Float.min u1 u2 and hi = Float.max u1 u2 in
      Interp.eval t (at lo) <= Interp.eval t (at hi) +. 1e-9)

let prop_interp_inverse_roundtrip =
  Prop.test "inverse_eval (eval x) = x"
    (Prop.pair mono_curve (Prop.float ~lo:0. ~hi:1.))
    (fun (pts, u) ->
      let t = Interp.of_points pts in
      let x0 = fst (List.hd pts) and x1 = fst (List.nth pts (List.length pts - 1)) in
      let x = x0 +. (u *. (x1 -. x0)) in
      Float.abs (Interp.inverse_eval t (Interp.eval t x) -. x) < 1e-6)

let prop_interp_anchors_exact =
  Prop.test "eval hits every anchor" mono_curve (fun pts ->
      let t = Interp.of_points pts in
      List.for_all (fun (x, y) -> Float.abs (Interp.eval t x -. y) < 1e-9) pts)

(* ---------- U32 vs Int64 oracle ---------- *)

let m32 = 0xFFFF_FFFFL
let to64 = Int64.of_int
let of64 v = Int64.to_int (Int64.logand v m32)
let ab = Prop.pair Prop.u32 Prop.u32

let prop_u32_add =
  Prop.test "add matches Int64" ab (fun (a, b) ->
      U32.add a b = of64 (Int64.add (to64 a) (to64 b)))

let prop_u32_sub =
  Prop.test "sub matches Int64" ab (fun (a, b) ->
      U32.sub a b = of64 (Int64.sub (to64 a) (to64 b)))

let prop_u32_mul =
  Prop.test "mul matches Int64" ab (fun (a, b) ->
      U32.mul a b = of64 (Int64.mul (to64 a) (to64 b)))

let prop_u32_logic =
  Prop.test "and/or/xor/not match Int64" ab (fun (a, b) ->
      U32.logand a b = of64 (Int64.logand (to64 a) (to64 b))
      && U32.logor a b = of64 (Int64.logor (to64 a) (to64 b))
      && U32.logxor a b = of64 (Int64.logxor (to64 a) (to64 b))
      && U32.lognot a = of64 (Int64.lognot (to64 a)))

let prop_u32_shifts =
  (* Shift amounts reduce modulo 32 (the OR1K barrel shifter). *)
  Prop.test "shifts match Int64 modulo 32"
    (Prop.pair Prop.u32 (Prop.int ~lo:0 ~hi:63))
    (fun (a, s) ->
      let s' = s land 31 in
      U32.shift_left a s = of64 (Int64.shift_left (to64 a) s')
      && U32.shift_right_logical a s = of64 (Int64.shift_right_logical (to64 a) s')
      && U32.shift_right_arith a s
         = of64 (Int64.shift_right (Int64.of_int32 (Int64.to_int32 (to64 a))) s'))

let prop_u32_signed_roundtrip =
  Prop.test "of_signed (to_signed x) = x" Prop.u32 (fun a ->
      U32.of_signed (U32.to_signed a) = a
      && U32.to_signed a = Int64.to_int (Int64.of_int32 (Int64.to_int32 (to64 a))))

let prop_u32_popcount =
  Prop.test "popcount matches bit fold" Prop.u32 (fun a ->
      let n = ref 0 in
      for i = 0 to 31 do
        if U32.bit a i then incr n
      done;
      U32.popcount a = !n)

(* ---------- U32 domain closure: every op stays in [0, 2^32) ---------- *)

let in_domain x = 0 <= x && x <= U32.mask

(* Masks up to 52 bits — well past the 32-bit boundary an injected
   address fault can push a mask computation over. *)
let wide_mask rng =
  let hi = Prop.u32 rng and lo = Prop.u32 rng in
  (hi lsl 20) lor lo

(* Adversarial bit indices (up to 62: the largest the native-int shift
   tolerates) and fault masks wider than 32 bits — the inputs an injected
   address fault actually produces. *)
let prop_u32_set_bit_domain =
  Prop.test "set_bit stays in domain; >=32 is identity"
    (Prop.triple Prop.u32 (Prop.int ~lo:0 ~hi:62) Prop.bool)
    (fun (a, i, v) ->
      let r = U32.set_bit a i v in
      in_domain r
      && (if i < 32 then
            r
            = of64
                (if v then Int64.logor (to64 a) (Int64.shift_left 1L i)
                 else Int64.logand (to64 a) (Int64.lognot (Int64.shift_left 1L i)))
          else r = a))

let prop_u32_flip_bits_domain =
  Prop.test "flip_bits with wide mask = xor with truncated mask"
    (Prop.pair Prop.u32 wide_mask)
    (fun (a, m) ->
      let r = U32.flip_bits a ~mask:m in
      in_domain r && r = U32.logxor a (U32.of_int m))

let prop_u32_closure =
  (* Every exported operation is closed over the canonical range, even
     under adversarial shift amounts, bit indices and masks. *)
  Prop.test "all ops closed over [0, 2^32)"
    (Prop.triple ab (Prop.int ~lo:0 ~hi:62) wide_mask)
    (fun ((a, b), s, m) ->
      List.for_all in_domain
        [
          U32.add a b; U32.sub a b; U32.mul a b; U32.logand a b; U32.logor a b;
          U32.logxor a b; U32.lognot a; U32.shift_left a s;
          U32.shift_right_logical a s; U32.shift_right_arith a s;
          U32.set_bit a s true; U32.set_bit a s false; U32.flip_bits a ~mask:m;
          U32.of_int m; U32.of_signed (U32.to_signed a); U32.sext ~bits:32 m;
        ])

(* ---------- fast-forward: snapshot restore and first-fault sampling ---------- *)

module Insn = Sfi_isa.Insn
module Cpu = Sfi_sim.Cpu
module Memory = Sfi_sim.Memory
module Bench = Sfi_kernels.Bench

(* Random short programs in the style of the cpu_engine parity sweep:
   ALU, memory, compares, short forward branches, an exit marker. *)
let gen_program rng =
  let n = Prop.int ~lo:3 ~hi:40 rng in
  List.init n (fun i ->
      let r () = Prop.int ~lo:0 ~hi:7 rng in
      match Prop.int ~lo:0 ~hi:9 rng with
      | 0 -> Insn.Add (r (), r (), r ())
      | 1 -> Insn.Mul (r (), r (), r ())
      | 2 -> Insn.Addi (r (), r (), Prop.int ~lo:(-8) ~hi:8 rng)
      | 3 -> Insn.Lwz (r (), 0x200, 0)
      | 4 -> Insn.Sw (0x200, 0, r ())
      | 5 -> Insn.Sfi (Insn.Ltu, r (), Prop.int ~lo:0 ~hi:8 rng)
      | 6 -> Insn.Bf (Prop.int ~lo:1 ~hi:(max 1 (n - i)) rng)
      | 7 -> Insn.Xor (r (), r (), r ())
      | 8 -> Insn.Lbz (r (), 0x201, 0)
      | _ -> Insn.Sh (0x202, 0, r ()))
  @ [ Insn.Nop Insn.nop_exit ]

let load_insns insns =
  let program = Sfi_isa.Program.of_insns insns in
  let mem = Memory.create ~size:4096 in
  Memory.load_program mem program;
  mem

(* Restoring any stride-boundary snapshot and rerunning the suffix must
   reproduce the full run cycle-for-cycle: identical final stats and an
   identical fault-hook call stream (cycle, class, operands, result)
   from the restore point on — under either engine. *)
let prop_snapshot_roundtrip =
  Prop.test ~cases:150 "restored suffix equals full run"
    (Prop.pair gen_program (Prop.int ~lo:5 ~hi:100))
    (fun (insns, stride) ->
      let calls = ref [] in
      let hook ~cycle ~cls ~a ~b ~result =
        calls := (cycle, Op_class.index cls, a, b, result) :: !calls;
        0
      in
      let config =
        { Cpu.default_config with Cpu.max_cycles = 5_000; Cpu.fault_hook = Some hook }
      in
      let snaps = ref [] in
      let full_mem = load_insns insns in
      let full_stats =
        Cpu.run_recording ~config ~stride
          ~on_snapshot:(fun s -> snaps := (s, Memory.copy full_mem) :: !snaps)
          full_mem ~entry:0
      in
      let full_calls = List.rev !calls in
      !snaps <> []
      && List.for_all
           (fun (snap, mem_at_snap) ->
             let from = Cpu.snapshot_cycle snap in
             let expect =
               List.filter (fun (c, _, _, _, _) -> c >= from) full_calls
             in
             List.for_all
               (fun engine ->
                 calls := [];
                 let mem = Memory.copy mem_at_snap in
                 let stats = Cpu.run ~config ~engine ~resume:snap mem ~entry:0 in
                 stats = full_stats && List.rev !calls = expect)
               [ Cpu.Interp; Cpu.Compiled ])
           !snaps)

(* --- analytic first-fault sampling vs full replay --- *)

let ff_bench = lazy (Option.get (Sfi_kernels.Registry.by_name "median"))

let ff_model = Sfi_fi.Model.fixed_probability ~bit_flip_prob:0.002 [@@warning "-3"]

let ff_trace =
  lazy
    (let bench = Lazy.force ff_bench in
     let ref_cycles = Sfi_fi.Campaign.reference_cycles bench in
     Option.get
       (Sfi_fi.Fastforward.trace_for ~bench
          ~stride:(Sfi_fi.Fastforward.stride_for ~ref_cycles)))

exception Found of int * int

(* First fault of a genuine full-replay trial: a real injector on the
   real ISS, stopped at the first nonzero mask. *)
let full_first_fault ~rng =
  let bench = Lazy.force ff_bench in
  let inj =
    Sfi_fi.Injector.create ~count_obs:false ~model:ff_model ~freq_mhz:700. ~rng ()
  in
  let h = Sfi_fi.Injector.hook inj in
  let hook ~cycle ~cls ~a ~b ~result =
    if h ~cycle ~cls ~a ~b ~result <> 0 then raise (Found (cycle, Op_class.index cls))
    else 0
  in
  let budget = (3 * Sfi_fi.Campaign.reference_cycles bench) + 65536 in
  let config =
    { Cpu.default_config with Cpu.max_cycles = budget; Cpu.fault_hook = Some hook }
  in
  let mem = Bench.fresh_memory bench in
  match
    Cpu.run ~config ~engine:Cpu.Interp mem
      ~entry:bench.Bench.program.Sfi_isa.Program.entry
  with
  | _ -> None
  | exception Found (c, k) -> Some (c, k)

let probe_first_fault ~rng =
  match
    Sfi_fi.Fastforward.first_fault ~model:ff_model ~freq_mhz:700.
      ~trace:(Lazy.force ff_trace) ~rng
  with
  | None -> None
  | Some (c, cls) -> Some (c, Op_class.index cls)

(* Draw-accounting exactness: on the same RNG stream the analytic probe
   and the full replay find the identical first fault. *)
let test_first_fault_exact () =
  for seed = 1 to 500 do
    let full = full_first_fault ~rng:(Rng.of_int seed) in
    let probe = probe_first_fault ~rng:(Rng.of_int seed) in
    if full <> probe then
      Alcotest.failf "seed %d: full replay and probe disagree" seed
  done

(* Two-sample Kolmogorov-Smirnov statistic over int samples. *)
let ks_stat a b =
  let a = Array.copy a and b = Array.copy b in
  Array.sort compare a;
  Array.sort compare b;
  let na = Array.length a and nb = Array.length b in
  let d = ref 0. and i = ref 0 and j = ref 0 in
  (* advance past every element equal to the current value on both
     sides before comparing — the samples are discrete and heavily
     tied, and the CDFs only jump at distinct values *)
  while !i < na && !j < nb do
    let v = if a.(!i) <= b.(!j) then a.(!i) else b.(!j) in
    while !i < na && a.(!i) = v do
      incr i
    done;
    while !j < nb && b.(!j) = v do
      incr j
    done;
    let fa = float_of_int !i /. float_of_int na in
    let fb = float_of_int !j /. float_of_int nb in
    d := Float.max !d (Float.abs (fa -. fb))
  done;
  !d

(* Distributional agreement on disjoint seed sets: 10k full-replay
   trials vs 10k analytically sampled ones. KS on the first-fault
   cycles (the 0.1% critical value at n=m=10k is ~0.028) and a
   two-sample chi-square on the per-class first-fault counts. *)
let test_first_fault_distribution () =
  let n = 10_000 in
  let collect f lo =
    Array.to_list (Array.init n (fun i -> f ~rng:(Rng.of_int (lo + i))))
    |> List.filter_map Fun.id
  in
  let full = collect full_first_fault 1 in
  let probe = collect probe_first_fault 20_001 in
  (* p = 0.002 faults nearly every trial; both sides must agree on the
     faulting fraction to within noise before the shape tests mean
     anything. *)
  let frac xs = float_of_int (List.length xs) /. float_of_int n in
  Alcotest.(check bool) "faulting fractions close" true
    (Float.abs (frac full -. frac probe) < 0.02);
  let cycles xs = Array.of_list (List.map fst xs) in
  let d = ks_stat (cycles full) (cycles probe) in
  if d > 0.035 then Alcotest.failf "KS statistic %.4f exceeds 0.035" d;
  let class_counts xs =
    let t = Array.make Op_class.count 0 in
    List.iter (fun (_, k) -> t.(k) <- t.(k) + 1) xs;
    t
  in
  let ca = class_counts full and cb = class_counts probe in
  let chi2 = ref 0. and df = ref (-1) in
  Array.iteri
    (fun k a ->
      let b = cb.(k) in
      if a + b >= 10 then begin
        incr df;
        let a = float_of_int a and b = float_of_int b in
        chi2 := !chi2 +. (((a -. b) ** 2.) /. (a +. b))
      end)
    ca;
  (* 0.1% critical values: df<=8 -> ~26; stay well under with margin *)
  if !chi2 > 30. then
    Alcotest.failf "per-class chi-square %.2f (df %d) exceeds 30" !chi2 !df

let () =
  Alcotest.run "sfi_prop"
    [
      ("min_heap", [ prop_heap_pop_order; prop_heap_interleaved; prop_heap_peek ]);
      ( "cdf",
        [
          prop_cdf_monotone; prop_cdf_quantile_roundtrip; prop_cdf_quantile_monotone;
          prop_cdf_bounds;
        ] );
      ( "interp",
        [ prop_interp_monotone; prop_interp_inverse_roundtrip; prop_interp_anchors_exact ]
      );
      ( "u32",
        [
          prop_u32_add; prop_u32_sub; prop_u32_mul; prop_u32_logic; prop_u32_shifts;
          prop_u32_signed_roundtrip; prop_u32_popcount; prop_u32_set_bit_domain;
          prop_u32_flip_bits_domain; prop_u32_closure;
        ] );
      ( "fastforward",
        [
          prop_snapshot_roundtrip;
          Alcotest.test_case "first fault exact on shared stream" `Quick
            test_first_fault_exact;
          Alcotest.test_case "first fault distribution (KS + chi-square)" `Quick
            test_first_fault_distribution;
        ] );
    ]
