(* Property-based suites over the numeric substrate, driven by the
   minimal seeded helper in [Prop]. Each property states an oracle —
   a sorted reference, a monotonicity law, or Int64 arithmetic — and
   runs a few hundred random cases against it. *)

open Sfi_util

(* ---------- Min_heap: pop order vs sorted reference ---------- *)

let heap_keys = Prop.array ~min_len:0 ~max_len:300 (Prop.float ~lo:0. ~hi:1e6)

let drain_floats h =
  let out = ref [] in
  let rec go () =
    let p = Min_heap.pop_unsafe h in
    if p <> Min_heap.no_event then begin
      out := Min_heap.float_of_key (Min_heap.popped_key h) :: !out;
      go ()
    end
  in
  go ();
  Array.of_list (List.rev !out)

let prop_heap_pop_order =
  Prop.test "pop order matches sorted reference" heap_keys (fun xs ->
      let h = Min_heap.create () in
      Array.iteri (fun i x -> Min_heap.push_key h (Min_heap.key_of_float x) i) xs;
      let sorted = Array.copy xs in
      Array.sort compare sorted;
      drain_floats h = sorted)

let prop_heap_interleaved =
  (* Random push/pop interleaving never pops out of order w.r.t. the
     keys present at pop time, and ends empty after draining. *)
  Prop.test "interleaved push/pop stays ordered"
    (Prop.list ~min_len:1 ~max_len:200
       (Prop.pair Prop.bool (Prop.float ~lo:0. ~hi:1e6)))
    (fun ops ->
      let h = Min_heap.create () in
      let ok = ref true in
      let last_popped = ref neg_infinity in
      List.iter
        (fun (push, x) ->
          if push then begin
            Min_heap.push_key h (Min_heap.key_of_float x) 0;
            (* a push can only lower the minimum, never violate order *)
            last_popped := neg_infinity
          end
          else if Min_heap.pop_unsafe h <> Min_heap.no_event then begin
            let v = Min_heap.float_of_key (Min_heap.popped_key h) in
            if v < !last_popped then ok := false;
            last_popped := v
          end)
        ops;
      ignore (drain_floats h);
      !ok && Min_heap.is_empty h)

let prop_heap_peek =
  Prop.test "peek equals subsequent pop"
    (Prop.array ~min_len:1 ~max_len:64 (Prop.float ~lo:0. ~hi:1e6))
    (fun xs ->
      let h = Min_heap.create () in
      Array.iter (fun x -> Min_heap.push h x 0) xs;
      match Min_heap.peek_key h with
      | None -> false
      | Some k -> (
        match Min_heap.pop h with Some (k', _) -> k = k' | None -> false))

(* ---------- Cdf: monotonicity and quantile/probability roundtrip ---------- *)

let cdf_samples = Prop.array ~min_len:1 ~max_len:150 (Prop.float ~lo:0. ~hi:1000.)

let prop_cdf_monotone =
  Prop.test "prob_greater is non-increasing"
    (Prop.triple cdf_samples (Prop.float ~lo:(-10.) ~hi:1010.)
       (Prop.float ~lo:(-10.) ~hi:1010.))
    (fun (xs, x1, x2) ->
      let t = Sfi_timing.Cdf.of_samples xs in
      let lo = Float.min x1 x2 and hi = Float.max x1 x2 in
      Sfi_timing.Cdf.prob_greater t lo >= Sfi_timing.Cdf.prob_greater t hi)

let prop_cdf_quantile_roundtrip =
  Prop.test "prob_leq (quantile q) >= q"
    (Prop.pair cdf_samples (Prop.float ~lo:0. ~hi:1.))
    (fun (xs, q) ->
      let t = Sfi_timing.Cdf.of_samples xs in
      Sfi_timing.Cdf.prob_leq t (Sfi_timing.Cdf.quantile t q) >= q -. 1e-12)

let prop_cdf_quantile_monotone =
  Prop.test "quantile is non-decreasing in q"
    (Prop.triple cdf_samples (Prop.float ~lo:0. ~hi:1.) (Prop.float ~lo:0. ~hi:1.))
    (fun (xs, q1, q2) ->
      let t = Sfi_timing.Cdf.of_samples xs in
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      Sfi_timing.Cdf.quantile t lo <= Sfi_timing.Cdf.quantile t hi)

let prop_cdf_bounds =
  Prop.test "quantile stays within sample range" cdf_samples (fun xs ->
      let t = Sfi_timing.Cdf.of_samples xs in
      let q0 = Sfi_timing.Cdf.quantile t 0. and q1 = Sfi_timing.Cdf.quantile t 1. in
      Sfi_timing.Cdf.min_value t <= q0 && q1 <= Sfi_timing.Cdf.max_value t)

(* ---------- Interp: monotone curves invert exactly ---------- *)

(* Strictly increasing anchors with slopes bounded away from zero, so the
   inverse is well-conditioned and a tight tolerance is honest. *)
let mono_curve rng =
  let n = Prop.int ~lo:2 ~hi:12 rng in
  let x = ref (Prop.float ~lo:0. ~hi:5. rng) in
  let y = ref (Prop.float ~lo:0. ~hi:5. rng) in
  List.init n (fun _ ->
      let px = !x and py = !y in
      x := !x +. 0.5 +. Prop.float ~lo:0. ~hi:10. rng;
      y := !y +. 0.5 +. Prop.float ~lo:0. ~hi:10. rng;
      (px, py))

let prop_interp_monotone =
  Prop.test "eval preserves monotonicity"
    (Prop.triple mono_curve (Prop.float ~lo:0. ~hi:1.) (Prop.float ~lo:0. ~hi:1.))
    (fun (pts, u1, u2) ->
      let t = Interp.of_points pts in
      let x0 = fst (List.hd pts) and x1 = fst (List.nth pts (List.length pts - 1)) in
      let at u = x0 +. (u *. (x1 -. x0)) in
      let lo = Float.min u1 u2 and hi = Float.max u1 u2 in
      Interp.eval t (at lo) <= Interp.eval t (at hi) +. 1e-9)

let prop_interp_inverse_roundtrip =
  Prop.test "inverse_eval (eval x) = x"
    (Prop.pair mono_curve (Prop.float ~lo:0. ~hi:1.))
    (fun (pts, u) ->
      let t = Interp.of_points pts in
      let x0 = fst (List.hd pts) and x1 = fst (List.nth pts (List.length pts - 1)) in
      let x = x0 +. (u *. (x1 -. x0)) in
      Float.abs (Interp.inverse_eval t (Interp.eval t x) -. x) < 1e-6)

let prop_interp_anchors_exact =
  Prop.test "eval hits every anchor" mono_curve (fun pts ->
      let t = Interp.of_points pts in
      List.for_all (fun (x, y) -> Float.abs (Interp.eval t x -. y) < 1e-9) pts)

(* ---------- U32 vs Int64 oracle ---------- *)

let m32 = 0xFFFF_FFFFL
let to64 = Int64.of_int
let of64 v = Int64.to_int (Int64.logand v m32)
let ab = Prop.pair Prop.u32 Prop.u32

let prop_u32_add =
  Prop.test "add matches Int64" ab (fun (a, b) ->
      U32.add a b = of64 (Int64.add (to64 a) (to64 b)))

let prop_u32_sub =
  Prop.test "sub matches Int64" ab (fun (a, b) ->
      U32.sub a b = of64 (Int64.sub (to64 a) (to64 b)))

let prop_u32_mul =
  Prop.test "mul matches Int64" ab (fun (a, b) ->
      U32.mul a b = of64 (Int64.mul (to64 a) (to64 b)))

let prop_u32_logic =
  Prop.test "and/or/xor/not match Int64" ab (fun (a, b) ->
      U32.logand a b = of64 (Int64.logand (to64 a) (to64 b))
      && U32.logor a b = of64 (Int64.logor (to64 a) (to64 b))
      && U32.logxor a b = of64 (Int64.logxor (to64 a) (to64 b))
      && U32.lognot a = of64 (Int64.lognot (to64 a)))

let prop_u32_shifts =
  (* Shift amounts reduce modulo 32 (the OR1K barrel shifter). *)
  Prop.test "shifts match Int64 modulo 32"
    (Prop.pair Prop.u32 (Prop.int ~lo:0 ~hi:63))
    (fun (a, s) ->
      let s' = s land 31 in
      U32.shift_left a s = of64 (Int64.shift_left (to64 a) s')
      && U32.shift_right_logical a s = of64 (Int64.shift_right_logical (to64 a) s')
      && U32.shift_right_arith a s
         = of64 (Int64.shift_right (Int64.of_int32 (Int64.to_int32 (to64 a))) s'))

let prop_u32_signed_roundtrip =
  Prop.test "of_signed (to_signed x) = x" Prop.u32 (fun a ->
      U32.of_signed (U32.to_signed a) = a
      && U32.to_signed a = Int64.to_int (Int64.of_int32 (Int64.to_int32 (to64 a))))

let prop_u32_popcount =
  Prop.test "popcount matches bit fold" Prop.u32 (fun a ->
      let n = ref 0 in
      for i = 0 to 31 do
        if U32.bit a i then incr n
      done;
      U32.popcount a = !n)

(* ---------- U32 domain closure: every op stays in [0, 2^32) ---------- *)

let in_domain x = 0 <= x && x <= U32.mask

(* Masks up to 52 bits — well past the 32-bit boundary an injected
   address fault can push a mask computation over. *)
let wide_mask rng =
  let hi = Prop.u32 rng and lo = Prop.u32 rng in
  (hi lsl 20) lor lo

(* Adversarial bit indices (up to 62: the largest the native-int shift
   tolerates) and fault masks wider than 32 bits — the inputs an injected
   address fault actually produces. *)
let prop_u32_set_bit_domain =
  Prop.test "set_bit stays in domain; >=32 is identity"
    (Prop.triple Prop.u32 (Prop.int ~lo:0 ~hi:62) Prop.bool)
    (fun (a, i, v) ->
      let r = U32.set_bit a i v in
      in_domain r
      && (if i < 32 then
            r
            = of64
                (if v then Int64.logor (to64 a) (Int64.shift_left 1L i)
                 else Int64.logand (to64 a) (Int64.lognot (Int64.shift_left 1L i)))
          else r = a))

let prop_u32_flip_bits_domain =
  Prop.test "flip_bits with wide mask = xor with truncated mask"
    (Prop.pair Prop.u32 wide_mask)
    (fun (a, m) ->
      let r = U32.flip_bits a ~mask:m in
      in_domain r && r = U32.logxor a (U32.of_int m))

let prop_u32_closure =
  (* Every exported operation is closed over the canonical range, even
     under adversarial shift amounts, bit indices and masks. *)
  Prop.test "all ops closed over [0, 2^32)"
    (Prop.triple ab (Prop.int ~lo:0 ~hi:62) wide_mask)
    (fun ((a, b), s, m) ->
      List.for_all in_domain
        [
          U32.add a b; U32.sub a b; U32.mul a b; U32.logand a b; U32.logor a b;
          U32.logxor a b; U32.lognot a; U32.shift_left a s;
          U32.shift_right_logical a s; U32.shift_right_arith a s;
          U32.set_bit a s true; U32.set_bit a s false; U32.flip_bits a ~mask:m;
          U32.of_int m; U32.of_signed (U32.to_signed a); U32.sext ~bits:32 m;
        ])

let () =
  Alcotest.run "sfi_prop"
    [
      ("min_heap", [ prop_heap_pop_order; prop_heap_interleaved; prop_heap_peek ]);
      ( "cdf",
        [
          prop_cdf_monotone; prop_cdf_quantile_roundtrip; prop_cdf_quantile_monotone;
          prop_cdf_bounds;
        ] );
      ( "interp",
        [ prop_interp_monotone; prop_interp_inverse_roundtrip; prop_interp_anchors_exact ]
      );
      ( "u32",
        [
          prop_u32_add; prop_u32_sub; prop_u32_mul; prop_u32_logic; prop_u32_shifts;
          prop_u32_signed_roundtrip; prop_u32_popcount; prop_u32_set_bit_domain;
          prop_u32_flip_bits_domain; prop_u32_closure;
        ] );
    ]
