(* The pluggable fault-model registry:

   - every shipped model is listed, case-insensitively findable, and
     round-trips through the [to_string]/[of_string] codec with its
     key, canonical parameters and cache fingerprint intact;
   - the parameter codec rejects unknown names, type mismatches and
     physically invalid values (a glitch below threshold voltage);
   - the declared draw-count contract holds: wherever an instance
     declares [skippable_gaussians = Some k], the hook really is a
     no-op consuming exactly [k] standard-normal draws (checked against
     [Rng.skip_gaussians] over hundreds of seeds);
   - cycle-dependent models never fast-forward: an explicit [On] run
     falls back to full replay (counted on
     [fastforward.model_unsupported]) and stays bit-identical to [Off];
   - a mixed built-in + attack campaign killed mid-run resumes from its
     shared checkpoint bit-identically (records are keyed by the model
     fingerprint, so the models never consume each other's batches);
   - the guarded-AES metric classifies correct / detected / attack
     success / SDC outcomes the way the attack experiment expects. *)

open Sfi_util
open Sfi_netlist
open Sfi_timing
open Sfi_kernels
open Sfi_fi
module Json = Sfi_obs.Json
module Spec = Campaign.Spec

(* Isolate from any ambient cache/fast-forward environment. *)
let () = Unix.putenv "SFI_CACHE_DIR" ""

let () = Unix.putenv "SFI_FASTFORWARD" ""

let () = Sfi_obs.set_enabled true

let c_unsupported = Sfi_obs.Counter.make ~det:false "fastforward.model_unsupported"

let c_resumed = Sfi_obs.Counter.make ~det:false "campaign.resumed_trials"

let value = Sfi_obs.Counter.value

(* Shared fixture: a sized ALU, its STA arrivals and a small DTA
   database — enough resources to build every registered model. *)
let flow_alu =
  lazy
    (let alu = Alu.build () in
     Sizing.apply_process_variation ~sigma:0.03 ~seed:1 alu.Alu.circuit;
     Sizing.size_to_clock ~clock_mhz:707. alu.Alu.circuit;
     alu)

let char_db = lazy (Characterize.run ~cycles:400 ~seed:31 ~vdd:0.7 (Lazy.force flow_alu))

let sta_arrivals =
  lazy (Array.map snd (Sta.analyze (Lazy.force flow_alu).Alu.circuit).Sta.endpoints)

let resources () =
  {
    Model.vdd = 0.7;
    noise = Noise.create ~sigma:0.010 ();
    vdd_model = Vdd_model.default;
    setup_ps = Sta.default_setup_ps;
    endpoint_arrivals = Some (Lazy.force sta_arrivals);
    db = Some (Lazy.force char_db);
  }

let ok what = function
  | Ok m -> m
  | Error e -> Alcotest.failf "%s: %s" what e

let model ?params key = ok key (Model.of_key ?params ~resources:(resources ()) key)

let fingerprint_hex m =
  let fp = Sfi_cache.Fingerprint.create "test" in
  Model.add_fingerprint m fp;
  Sfi_cache.Fingerprint.hex fp

(* ---------- listing and lookup ---------- *)

let test_registry_keys () =
  let keys = Model.Registry.keys () in
  List.iter
    (fun k -> Alcotest.(check bool) (k ^ " registered") true (List.mem k keys))
    [ "A"; "B"; "B+"; "C"; "C-corr"; "glitch"; "skip"; "opcode"; "state" ];
  Alcotest.(check bool) "case-insensitive find" true (Model.Registry.find "GLITCH" <> None);
  Alcotest.(check bool) "unknown key absent" true (Model.Registry.find "nope" = None)

(* ---------- codec round trip ---------- *)

let check_round_trip m =
  let s = Model.to_string m in
  let m' = ok (s ^ " reparse") (Model.of_string ~resources:(resources ()) s) in
  Alcotest.(check string) (s ^ ": key survives") (Model.key m) (Model.key m');
  Alcotest.(check string)
    (s ^ ": params survive")
    (Json.to_string (Json.Obj (Model.params m)))
    (Json.to_string (Json.Obj (Model.params m')));
  Alcotest.(check string)
    (s ^ ": fingerprint identical")
    (fingerprint_hex m) (fingerprint_hex m')

let test_round_trip_every_model () =
  List.iter
    (fun (e : Model.Registry.entry) ->
      check_round_trip
        (ok e.Model.Registry.key (Model.Registry.make e (resources ()))))
    (Model.Registry.entries ())

let test_round_trip_overridden_params () =
  check_round_trip
    (model "glitch"
       ~params:
         [
           ("start", Json.Int 37);
           ("len", Json.Int 3);
           ("every", Json.Int 120);
           ("drop_mv", Json.Float 85.);
         ]);
  check_round_trip (model "state" ~params:[ ("flips", Json.Int 4) ]);
  check_round_trip (model "A" ~params:[ ("p", Json.Float 0.25) ])

let test_param_codec_errors () =
  let r = resources () in
  let expect_error what = function
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: accepted" what
  in
  expect_error "unknown param"
    (Model.of_key "A" ~params:[ ("q", Json.Float 0.1) ] ~resources:r);
  expect_error "mistyped param"
    (Model.of_key "skip" ~params:[ ("p", Json.String "x") ] ~resources:r);
  expect_error "probability out of range"
    (Model.of_key "skip" ~params:[ ("p", Json.Float 1.5) ] ~resources:r);
  expect_error "negative window"
    (Model.of_key "glitch" ~params:[ ("len", Json.Int (-1)) ] ~resources:r);
  expect_error "glitch below threshold voltage"
    (Model.of_key "glitch" ~params:[ ("drop_mv", Json.Float 400.) ] ~resources:r);
  (match Model.of_key "nope" ~resources:r with
  | Error e ->
    Alcotest.(check bool) "unknown model error lists keys" true
      (String.length e > 0
      && String.split_on_char ',' e <> [ e ] (* several keys listed *))
  | Ok _ -> Alcotest.fail "unknown model accepted");
  (* Int literals coerce into Float-typed parameters (CLI convenience). *)
  ignore (ok "int coercion" (Model.of_key "A" ~params:[ ("p", Json.Int 0) ] ~resources:r))

(* ---------- the declared draw-count contract ---------- *)

(* Wherever an instance declares [skippable_gaussians cls = Some k],
   the hook must return 0 and consume exactly [k] standard-normal
   draws: advancing a twin RNG with [Rng.skip_gaussians] must keep the
   two streams in lockstep. Checked across 500 seeds per model at an
   operating point where both skippable and live classes exist. *)
let test_draw_count_contract () =
  let checked = ref 0 in
  List.iter
    (fun (e : Model.Registry.entry) ->
      let key = e.Model.Registry.key in
      let m = ok key (Model.Registry.make e (resources ())) in
      for seed = 1 to 500 do
        let r1 = Rng.of_int seed and r2 = Rng.of_int seed in
        let i1 = Model.instantiate m ~count_obs:false ~freq_mhz:750. ~rng:r1 in
        ignore (Model.instantiate m ~count_obs:false ~freq_mhz:750. ~rng:r2);
        List.iter
          (fun cls ->
            match i1.Model.skippable_gaussians cls with
            | None -> ()
            | Some k ->
              incr checked;
              let a = Rng.bits32 r1 and b = Rng.bits32 r1 in
              ignore (Rng.bits32 r2);
              ignore (Rng.bits32 r2);
              let mask = i1.Model.sample ~cycle:seed ~cls ~a ~b ~result:(a lxor b) in
              Rng.skip_gaussians r2 k;
              if mask <> 0 then
                Alcotest.failf "%s/%s: skippable hook returned mask %08x" key
                  (Op_class.name cls) mask;
              if Rng.bits32 r1 <> Rng.bits32 r2 then
                Alcotest.failf
                  "%s/%s seed %d: declared %d gaussian draw(s), stream diverged" key
                  (Op_class.name cls) seed k)
          Op_class.all
      done)
    (Model.Registry.entries ());
  Alcotest.(check bool)
    (Printf.sprintf "contract exercised (%d skippable hook calls)" !checked)
    true (!checked > 0)

(* ---------- fast-forward gating for cycle-dependent models ---------- *)

let test_attack_models_cycle_dependent () =
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " cycle-dependent") true
        (Model.cycle_dependent (model key)))
    [ "glitch"; "skip"; "opcode"; "state" ];
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " not cycle-dependent") false
        (Model.cycle_dependent (model key)))
    [ "A"; "B"; "B+"; "C"; "C-corr" ]

let point_equal (p : Campaign.point) (q : Campaign.point) =
  Campaign.Point_json.(to_string (of_point p) = to_string (of_point q))
  && p.Campaign.trials = q.Campaign.trials

let test_ff_unsupported_falls_back () =
  let bench = Option.get (Registry.by_name "median") in
  let m = model "skip" ~params:[ ("p", Json.Float 0.002) ] in
  ignore (Campaign.reference_cycles bench : int);
  let spec mode = Spec.(default |> with_fastforward mode |> with_trials 8 |> with_seed 13) in
  Sfi_obs.reset ();
  let off = Campaign.run (spec Spec.Off) ~bench ~model:m ~freq_mhz:700. in
  let sig_off = Sfi_obs.det_signature () in
  Alcotest.(check int) "Off never consults the gate" 0 (value c_unsupported);
  Sfi_obs.reset ();
  let on = Campaign.run (spec Spec.On) ~bench ~model:m ~freq_mhz:700. in
  let sig_on = Sfi_obs.det_signature () in
  Alcotest.(check bool) "explicit On counted as unsupported" true (value c_unsupported > 0);
  Alcotest.(check bool) "On falls back bit-identically" true (point_equal off on);
  Alcotest.(check bool) "det signatures equal" true (sig_off = sig_on)

(* ---------- mixed built-in + attack checkpoint resume ---------- *)

let with_ckpt f =
  let path = Filename.temp_file "sfi-ckpt" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc s)

let truncate_to_lines path k =
  let lines = String.split_on_char '\n' (read_file path) in
  let kept = List.filteri (fun i _ -> i < k) lines in
  write_file path (String.concat "\n" kept ^ "\n")

let test_mixed_checkpoint_resume () =
  let bench = Option.get (Registry.by_name "median") in
  ignore (Campaign.reference_cycles bench : int);
  (* One shared checkpoint file for a built-in and two attack models:
     records are keyed by the model fingerprint, so each sweep must
     find exactly its own batches. The 0.01 target never converges, so
     the schedule is fixed: 2 batches of 8 per model. *)
  let models =
    [
      model "C";
      model "skip" ~params:[ ("p", Json.Float 0.003) ];
      model "glitch" ~params:[ ("start", Json.Int 50); ("drop_mv", Json.Float 80.) ];
    ]
  in
  with_ckpt @@ fun path ->
  let spec =
    Spec.(
      default
      |> with_adaptive ~batch:8 ~max_trials:16 ~ci_target:0.01
      |> with_seed 9 |> with_checkpoint path)
  in
  let full =
    List.map (fun m -> Campaign.run spec ~bench ~model:m ~freq_mhz:760.) models
  in
  (* Kill mid-campaign: keep half the records (2 of 6 batches). *)
  truncate_to_lines path 2;
  Sfi_obs.reset ();
  let resumed =
    List.map (fun m -> Campaign.run spec ~bench ~model:m ~freq_mhz:760.) models
  in
  Alcotest.(check bool) "some batches resumed" true (value c_resumed > 0);
  List.iteri
    (fun i (p, q) ->
      Alcotest.(check bool)
        (Printf.sprintf "model %d resumes bit-identically" i)
        true (point_equal p q))
    (List.combine full resumed)

(* ---------- the guarded-AES attack classifier ---------- *)

let test_aes_classifier () =
  let b = Aes.create () in
  let expected = b.Bench.golden in
  let classify actual = b.Bench.metric ~expected ~actual in
  Alcotest.(check (float 0.)) "golden output is correct" Aes.class_correct
    (classify (Array.copy expected));
  let flagged = Array.copy expected in
  flagged.(0) <- 1;
  Alcotest.(check (float 0.)) "raised flag is detected" Aes.class_detected
    (classify flagged);
  let one_word = Array.copy expected in
  one_word.(2) <- one_word.(2) lxor 0x80;
  Alcotest.(check (float 0.)) "flag clear + one corrupt word is attack success"
    Aes.class_attack_success (classify one_word);
  let two_words = Array.copy expected in
  two_words.(1) <- two_words.(1) lxor 1;
  two_words.(3) <- two_words.(3) lxor 1;
  Alcotest.(check (float 0.)) "flag clear + wider damage is SDC" Aes.class_sdc
    (classify two_words);
  (* Detection dominates: a raised flag is detected even if the
     ciphertext also differs in exactly one word. *)
  let flagged_one = Array.copy one_word in
  flagged_one.(0) <- 1;
  Alcotest.(check (float 0.)) "flag dominates classification" Aes.class_detected
    (classify flagged_one)

let () =
  Alcotest.run "sfi_registry"
    [
      ( "registry",
        [
          Alcotest.test_case "keys and lookup" `Quick test_registry_keys;
          Alcotest.test_case "round trip, every model" `Quick test_round_trip_every_model;
          Alcotest.test_case "round trip, overridden params" `Quick
            test_round_trip_overridden_params;
          Alcotest.test_case "param codec errors" `Quick test_param_codec_errors;
        ] );
      ( "contract",
        [
          Alcotest.test_case "draw counts over 500 seeds" `Quick test_draw_count_contract;
          Alcotest.test_case "attack models cycle-dependent" `Quick
            test_attack_models_cycle_dependent;
          Alcotest.test_case "fast-forward falls back, counted" `Quick
            test_ff_unsupported_falls_back;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "mixed checkpoint resume" `Quick test_mixed_checkpoint_resume;
          Alcotest.test_case "guarded-AES classifier" `Quick test_aes_classifier;
        ] );
    ]
