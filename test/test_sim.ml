open Sfi_util
open Sfi_isa
open Sfi_sim

(* ---------- memory ---------- *)

let test_memory_endianness () =
  let m = Memory.create ~size:64 in
  Memory.write_u32 m 0 0x1122_3344;
  Alcotest.(check int) "big-endian byte 0" 0x11 (Memory.read_u8 m 0);
  Alcotest.(check int) "big-endian byte 3" 0x44 (Memory.read_u8 m 3);
  Alcotest.(check int) "halfword hi" 0x1122 (Memory.read_u16 m 0);
  Alcotest.(check int) "halfword lo" 0x3344 (Memory.read_u16 m 2);
  Alcotest.(check int) "word" 0x1122_3344 (Memory.read_u32 m 0)

let test_memory_wraps () =
  let m = Memory.create ~size:64 in
  Memory.write_u32 m 0 0xDEAD_BEEF;
  Alcotest.(check int) "read wraps" 0xDEAD_BEEF (Memory.read_u32 m 64);
  Alcotest.(check int) "read wraps high bits" 0xDEAD_BEEF (Memory.read_u32 m 0x1_0000_0040);
  Memory.write_u8 m (64 + 1) 0xAA;
  Alcotest.(check int) "write wraps" 0xAA (Memory.read_u8 m 1)

let test_memory_misalignment_traps () =
  let m = Memory.create ~size:64 in
  let raises f = try f (); false with Memory.Trap _ -> true in
  Alcotest.(check bool) "word read" true (raises (fun () -> ignore (Memory.read_u32 m 2)));
  Alcotest.(check bool) "word write" true (raises (fun () -> Memory.write_u32 m 1 0));
  Alcotest.(check bool) "half read" true (raises (fun () -> ignore (Memory.read_u16 m 1)))

let test_memory_rejects_bad_size () =
  (* The fetch wrap and the decode-cache invalidation mask are
     [addr land (size - 1)]: on a non-power-of-two size they silently
     alias wrong addresses, so creation must reject (Cpu.run re-checks
     the same invariant on its own entry path). *)
  let rejected size =
    try
      ignore (Memory.create ~size);
      false
    with Invalid_argument _ -> true
  in
  List.iter
    (fun size ->
      Alcotest.(check bool) (Printf.sprintf "size %d rejected" size) true (rejected size))
    [ 48; 0; -64; 3; 4095; 65537 ];
  List.iter
    (fun size ->
      Alcotest.(check bool)
        (Printf.sprintf "size %d accepted" size)
        false (rejected size))
    [ 4; 64; 4096; 65536 ]

let test_memory_copy_independent () =
  let m = Memory.create ~size:64 in
  Memory.write_u32 m 0 1;
  let m' = Memory.copy m in
  Memory.write_u32 m' 0 2;
  Alcotest.(check int) "original untouched" 1 (Memory.read_u32 m 0)

(* ---------- cpu helpers ---------- *)

let run_insns ?(size = 4096) ?config insns =
  let program = Program.of_insns insns in
  let mem = Memory.create ~size in
  Memory.load_program mem program;
  let stats = Cpu.run ?config mem ~entry:0 in
  (stats, mem)

let run_asm ?(size = 4096) ?config src =
  let program = Asm.assemble_exn src in
  let mem = Memory.create ~size in
  Memory.load_program mem program;
  let stats = Cpu.run ?config mem ~entry:program.Program.entry in
  (stats, mem, program)

(* ---------- basic execution ---------- *)

let test_cpu_arith_and_store () =
  let _, mem =
    run_insns
      [
        Insn.Addi (1, 0, 5);
        Insn.Addi (2, 0, 7);
        Insn.Add (3, 1, 2);
        Insn.Mul (4, 1, 2);
        Insn.Sub (5, 1, 2);
        Insn.Sw (0x100, 0, 3);
        Insn.Sw (0x104, 0, 4);
        Insn.Sw (0x108, 0, 5);
        Insn.Nop Insn.nop_exit;
      ]
  in
  Alcotest.(check int) "add" 12 (Memory.read_u32 mem 0x100);
  Alcotest.(check int) "mul" 35 (Memory.read_u32 mem 0x104);
  Alcotest.(check int) "sub wraps" 0xFFFF_FFFE (Memory.read_u32 mem 0x108)

let test_cpu_r0_is_zero () =
  let _, mem =
    run_insns
      [
        Insn.Addi (0, 0, 123); (* write to r0 discarded *)
        Insn.Sw (0x100, 0, 0);
        Insn.Nop Insn.nop_exit;
      ]
  in
  Alcotest.(check int) "r0 stays zero" 0 (Memory.read_u32 mem 0x100)

let test_cpu_movhi_ori () =
  let _, mem =
    run_insns
      [
        Insn.Movhi (1, 0xDEAD);
        Insn.Ori (1, 1, 0xBEEF);
        Insn.Sw (0x100, 0, 1);
        Insn.Nop Insn.nop_exit;
      ]
  in
  Alcotest.(check int) "constant" 0xDEAD_BEEF (Memory.read_u32 mem 0x100)

let test_cpu_shift_semantics () =
  let _, mem =
    run_insns
      [
        Insn.Movhi (1, 0x8000);
        Insn.Srai (2, 1, 4);
        Insn.Srli (3, 1, 4);
        Insn.Addi (4, 0, 33); (* shift amounts are mod 32 *)
        Insn.Sll (5, 1, 4);
        Insn.Sw (0x100, 0, 2);
        Insn.Sw (0x104, 0, 3);
        Insn.Sw (0x108, 0, 5);
        Insn.Nop Insn.nop_exit;
      ]
  in
  Alcotest.(check int) "sra" 0xF800_0000 (Memory.read_u32 mem 0x100);
  Alcotest.(check int) "srl" 0x0800_0000 (Memory.read_u32 mem 0x104);
  Alcotest.(check int) "sll mod 32" 0x0000_0000 (Memory.read_u32 mem 0x108)

let test_cpu_loads () =
  let _, mem, _ =
    run_asm
      {|
        l.movhi r2, hi(data)
        l.ori   r2, r2, lo(data)
        l.lwz   r3, 0(r2)
        l.lhz   r4, 0(r2)
        l.lhz   r5, 2(r2)
        l.lbz   r6, 1(r2)
        l.sw    0x100(r0), r3
        l.sw    0x104(r0), r4
        l.sw    0x108(r0), r5
        l.sw    0x10c(r0), r6
        l.nop   0x1
data:   .word 0xa1b2c3d4
      |}
  in
  Alcotest.(check int) "lwz" 0xA1B2_C3D4 (Memory.read_u32 mem 0x100);
  Alcotest.(check int) "lhz hi" 0xA1B2 (Memory.read_u32 mem 0x104);
  Alcotest.(check int) "lhz lo" 0xC3D4 (Memory.read_u32 mem 0x108);
  Alcotest.(check int) "lbz" 0xB2 (Memory.read_u32 mem 0x10C)

(* All compare conditions against an OCaml oracle over tricky operands. *)
let test_cpu_compare_oracle () =
  let operands =
    [ (0, 0); (1, 2); (2, 1); (0x7FFF_FFFF, 0x8000_0000); (0x8000_0000, 0x7FFF_FFFF);
      (0xFFFF_FFFF, 0); (0, 0xFFFF_FFFF); (0xFFFF_FFFF, 0xFFFF_FFFE); (5, 5) ]
  in
  let oracle cmp a b =
    let sa = U32.to_signed a and sb = U32.to_signed b in
    match cmp with
    | Insn.Eq -> a = b
    | Insn.Ne -> a <> b
    | Insn.Gtu -> a > b
    | Insn.Geu -> a >= b
    | Insn.Ltu -> a < b
    | Insn.Leu -> a <= b
    | Insn.Gts -> sa > sb
    | Insn.Ges -> sa >= sb
    | Insn.Lts -> sa < sb
    | Insn.Les -> sa <= sb
  in
  List.iter
    (fun cmp ->
      List.iter
        (fun (a, b) ->
          let _, mem =
            run_insns
              [
                Insn.Movhi (1, a lsr 16);
                Insn.Ori (1, 1, a land 0xFFFF);
                Insn.Movhi (2, b lsr 16);
                Insn.Ori (2, 2, b land 0xFFFF);
                Insn.Sf (cmp, 1, 2);
                Insn.Addi (3, 0, 0);
                Insn.Bf 2;                (* skip next if flag *)
                Insn.J 2;
                Insn.Addi (3, 0, 1);
                Insn.Sw (0x100, 0, 3);
                Insn.Nop Insn.nop_exit;
              ]
          in
          let got = Memory.read_u32 mem 0x100 = 1 in
          if got <> oracle cmp a b then
            Alcotest.failf "sf%s %08x %08x: got %b" (Insn.cmp_name cmp) a b got)
        operands)
    [ Insn.Eq; Insn.Ne; Insn.Gtu; Insn.Geu; Insn.Ltu; Insn.Leu; Insn.Gts; Insn.Ges;
      Insn.Lts; Insn.Les ]

let test_cpu_jal_jr () =
  let _, mem, _ =
    run_asm
      {|
        l.jal  sub
        l.sw   0x104(r0), r3    # executed after return
        l.nop  0x1
sub:    l.addi r3, r0, 42
        l.jr   r9
      |}
  in
  Alcotest.(check int) "returned and stored" 42 (Memory.read_u32 mem 0x104)

let test_cpu_loop_sum () =
  (* sum 1..10 *)
  let _, mem, _ =
    run_asm
      {|
        l.addi r1, r0, 10
        l.addi r2, r0, 0
loop:   l.add  r2, r2, r1
        l.addi r1, r1, -1
        l.sfnei r1, 0
        l.bf   loop
        l.sw   0x100(r0), r2
        l.nop  0x1
      |}
  in
  Alcotest.(check int) "sum" 55 (Memory.read_u32 mem 0x100)

(* ---------- pipeline timing ---------- *)

let test_cpu_straightline_cycles () =
  (* n independent ALU instructions plus exit: 1 cycle each. *)
  let stats, _ =
    run_insns
      [
        Insn.Addi (1, 0, 1);
        Insn.Addi (2, 0, 2);
        Insn.Addi (3, 0, 3);
        Insn.Nop Insn.nop_exit;
      ]
  in
  Alcotest.(check int) "3 cycles before exit" 3 stats.Cpu.cycles;
  Alcotest.(check int) "3 retired" 3 stats.Cpu.instret

let test_cpu_taken_branch_penalty () =
  let stats, _ =
    run_insns [ Insn.J 1; Insn.Nop Insn.nop_exit ]
  in
  (* jump: 1 cycle + 2 flush. *)
  Alcotest.(check int) "jump costs 3" 3 stats.Cpu.cycles

let test_cpu_untaken_branch_no_penalty () =
  let stats, _ =
    run_insns
      [ Insn.Sfi (Insn.Eq, 0, 1); Insn.Bf 1; Insn.Nop Insn.nop_exit ]
  in
  (* sfi + untaken bf = 2 cycles. *)
  Alcotest.(check int) "no flush" 2 stats.Cpu.cycles

let test_cpu_load_use_stall () =
  let base =
    let stats, _ =
      run_insns
        [
          Insn.Lwz (1, 0x100, 0);
          Insn.Addi (2, 0, 1); (* independent: no stall *)
          Insn.Nop Insn.nop_exit;
        ]
    in
    stats.Cpu.cycles
  in
  let stalled =
    let stats, _ =
      run_insns
        [
          Insn.Lwz (1, 0x100, 0);
          Insn.Addi (2, 1, 1); (* dependent: one-cycle interlock *)
          Insn.Nop Insn.nop_exit;
        ]
    in
    stats.Cpu.cycles
  in
  Alcotest.(check int) "one stall cycle" (base + 1) stalled

let test_cpu_load_use_gap_no_stall () =
  let stats, _ =
    run_insns
      [
        Insn.Lwz (1, 0x100, 0);
        Insn.Addi (3, 0, 7); (* filler covers the load latency *)
        Insn.Addi (2, 1, 1);
        Insn.Nop Insn.nop_exit;
      ]
  in
  Alcotest.(check int) "no stall with filler" 3 stats.Cpu.cycles

(* ---------- outcomes ---------- *)

let test_cpu_watchdog () =
  let config = { Cpu.default_config with Cpu.max_cycles = 1000 } in
  let stats, _ =
    run_insns ~config [ Insn.Addi (1, 0, 1); Insn.J (-1) ]
  in
  Alcotest.(check bool) "watchdog" true (stats.Cpu.outcome = Cpu.Watchdog)

let test_cpu_jump_to_self_fast_abort () =
  let stats, _ = run_insns [ Insn.J 0 ] in
  Alcotest.(check bool) "immediate watchdog" true (stats.Cpu.outcome = Cpu.Watchdog);
  Alcotest.(check bool) "did not burn the budget" true (stats.Cpu.cycles < 1000)

let test_cpu_illegal_instruction () =
  let program = Program.of_insns [ Insn.Nop 0 ] in
  let mem = Memory.create ~size:4096 in
  Memory.load_program mem program;
  Memory.write_u32 mem 4 0xFFFF_FFFF;
  let stats = Cpu.run mem ~entry:0 in
  (match stats.Cpu.outcome with
  | Cpu.Trapped _ -> ()
  | _ -> Alcotest.fail "expected trap")

let test_cpu_misaligned_load_traps () =
  let stats, _ =
    run_insns [ Insn.Addi (1, 0, 2); Insn.Lwz (2, 0, 1); Insn.Nop Insn.nop_exit ]
  in
  (match stats.Cpu.outcome with
  | Cpu.Trapped _ -> ()
  | _ -> Alcotest.fail "expected alignment trap")

(* ---------- kernel markers & fault hook ---------- *)

let test_cpu_kernel_markers_gate_fi () =
  let calls = ref 0 in
  let hook ~cycle:_ ~cls:_ ~a:_ ~b:_ ~result:_ =
    incr calls;
    0
  in
  let config = { Cpu.default_config with Cpu.fault_hook = Some hook } in
  let stats, _ =
    run_insns ~config
      [
        Insn.Addi (1, 0, 1); (* outside: no hook *)
        Insn.Nop Insn.nop_kernel_begin;
        Insn.Addi (2, 0, 2);
        Insn.Addi (3, 0, 3);
        Insn.Nop Insn.nop_kernel_end;
        Insn.Addi (4, 0, 4); (* outside again *)
        Insn.Nop Insn.nop_exit;
      ]
  in
  Alcotest.(check int) "hook called only in window" 2 !calls;
  Alcotest.(check int) "alu counted in window" 2 stats.Cpu.alu_retired

let test_cpu_fault_mask_applied () =
  let hook ~cycle:_ ~cls:_ ~a:_ ~b:_ ~result:_ = 0b100 in
  let config = { Cpu.default_config with Cpu.fault_hook = Some hook } in
  let _, mem =
    run_insns ~config
      [
        Insn.Nop Insn.nop_kernel_begin;
        Insn.Addi (1, 0, 1);
        Insn.Nop Insn.nop_kernel_end;
        Insn.Sw (0x100, 0, 1);
        Insn.Nop Insn.nop_exit;
      ]
  in
  Alcotest.(check int) "bit 2 flipped" 0b101 (Memory.read_u32 mem 0x100)

let test_cpu_compares_not_faulted () =
  (* Compares must not invoke the ALU fault hook (flag FF is safe). *)
  let calls = ref 0 in
  let hook ~cycle:_ ~cls:_ ~a:_ ~b:_ ~result:_ =
    incr calls;
    0
  in
  let config = { Cpu.default_config with Cpu.fault_hook = Some hook } in
  let _ =
    run_insns ~config
      [
        Insn.Nop Insn.nop_kernel_begin;
        Insn.Sfi (Insn.Eq, 0, 0);
        Insn.Sf (Insn.Ltu, 1, 2);
        Insn.Nop Insn.nop_kernel_end;
        Insn.Nop Insn.nop_exit;
      ]
  in
  Alcotest.(check int) "no hook calls" 0 !calls

let test_cpu_fi_always_on () =
  let calls = ref 0 in
  let hook ~cycle:_ ~cls:_ ~a:_ ~b:_ ~result:_ =
    incr calls;
    0
  in
  let config =
    { Cpu.default_config with Cpu.fault_hook = Some hook; Cpu.fi_always_on = true }
  in
  let _ = run_insns ~config [ Insn.Addi (1, 0, 1); Insn.Nop Insn.nop_exit ] in
  Alcotest.(check int) "hook without markers" 1 !calls

let test_cpu_wrapped_store_corrupts_code () =
  (* A store through a wrapped wild pointer lands inside the image: the
     self-modifying path must invalidate the decode cache. *)
  let _, mem, _ =
    run_asm
      {|
        l.movhi r1, hi(target)
        l.ori   r1, r1, lo(target)
        l.movhi r2, hi(0x15000001)   # l.nop 0x1 encoding
        l.ori   r2, r2, lo(0x15000001)
        l.sw    0(r1), r2            # overwrite the trap below with exit
target: .word 0xffffffff             # would trap if executed unmodified
      |}
  in
  ignore mem

let test_cpu_aliased_store_invalidates_decode () =
  (* Regression: the decode-cache invalidation must wrap the store
     address with the SRAM decoder mask exactly like the data path. A
     store through a pointer with a flipped high bit (the signature of
     an injected timing fault on an address computation) aliases a
     low address; if that address holds an instruction that has already
     executed — and is therefore decode-cached — the patched word must
     be re-decoded on the next fetch, not served stale. *)
  let patched = Encode.encode (Insn.Addi (3, 3, 10)) in
  let _, mem, _ =
    run_asm
      (Printf.sprintf
         {|
        l.movhi r8, 0x8000
        l.movhi r1, hi(target)
        l.ori   r1, r1, lo(target)
        l.add   r1, r1, r8           # target aliased through bit 31
        l.movhi r2, hi(0x%08x)
        l.ori   r2, r2, lo(0x%08x)
        l.addi  r4, r0, 0
loop:
target: l.addi  r3, r3, 1            # patched to +10 after first pass
        l.sw    0(r1), r2
        l.sfeqi r4, 0
        l.addi  r4, r4, 1
        l.bf    loop
        l.sw    0x100(r0), r3
        l.nop   0x1
      |}
         patched patched)
  in
  (* Pass 1 adds 1, pass 2 runs the patched +10: a stale decode cache
     would yield 2 instead. *)
  Alcotest.(check int) "patched insn executed on second pass" 11
    (Memory.read_u32 mem 0x100)

let test_cpu_trace_hook () =
  let traced = ref [] in
  let config =
    {
      Cpu.default_config with
      Cpu.trace = Some (fun ~pc insn -> traced := (pc, insn) :: !traced);
    }
  in
  let _ =
    run_insns ~config [ Insn.Addi (1, 0, 1); Insn.Addi (2, 0, 2); Insn.Nop Insn.nop_exit ]
  in
  let traced = List.rev !traced in
  Alcotest.(check int) "three instructions traced" 3 (List.length traced);
  (match traced with
  | (pc0, Insn.Addi (1, 0, 1)) :: (pc1, _) :: _ ->
    Alcotest.(check int) "first pc" 0 pc0;
    Alcotest.(check int) "second pc" 4 pc1
  | _ -> Alcotest.fail "unexpected trace")

let test_cpu_stats_class_counts () =
  let config = Cpu.default_config in
  let stats, _ =
    run_insns ~config
      [
        Insn.Nop Insn.nop_kernel_begin;
        Insn.Addi (1, 0, 1);
        Insn.Mul (2, 1, 1);
        Insn.Mul (3, 1, 1);
        Insn.Xor (4, 1, 1);
        Insn.Nop Insn.nop_kernel_end;
        Insn.Nop Insn.nop_exit;
      ]
  in
  Alcotest.(check int) "adds" 1 stats.Cpu.class_counts.(Op_class.index Op_class.Add);
  Alcotest.(check int) "muls" 2 stats.Cpu.class_counts.(Op_class.index Op_class.Mul);
  Alcotest.(check int) "xors" 1 stats.Cpu.class_counts.(Op_class.index Op_class.Xor_)

let () =
  Alcotest.run "sfi_sim"
    [
      ( "memory",
        [
          Alcotest.test_case "endianness" `Quick test_memory_endianness;
          Alcotest.test_case "address wrap" `Quick test_memory_wraps;
          Alcotest.test_case "misalignment traps" `Quick test_memory_misalignment_traps;
          Alcotest.test_case "rejects bad size" `Quick test_memory_rejects_bad_size;
          Alcotest.test_case "copy independent" `Quick test_memory_copy_independent;
        ] );
      ( "execute",
        [
          Alcotest.test_case "arith and store" `Quick test_cpu_arith_and_store;
          Alcotest.test_case "r0 hardwired" `Quick test_cpu_r0_is_zero;
          Alcotest.test_case "movhi/ori" `Quick test_cpu_movhi_ori;
          Alcotest.test_case "shifts" `Quick test_cpu_shift_semantics;
          Alcotest.test_case "loads" `Quick test_cpu_loads;
          Alcotest.test_case "compare oracle" `Quick test_cpu_compare_oracle;
          Alcotest.test_case "jal/jr" `Quick test_cpu_jal_jr;
          Alcotest.test_case "loop sum" `Quick test_cpu_loop_sum;
        ] );
      ( "timing",
        [
          Alcotest.test_case "straight-line" `Quick test_cpu_straightline_cycles;
          Alcotest.test_case "taken branch penalty" `Quick test_cpu_taken_branch_penalty;
          Alcotest.test_case "untaken branch free" `Quick test_cpu_untaken_branch_no_penalty;
          Alcotest.test_case "load-use stall" `Quick test_cpu_load_use_stall;
          Alcotest.test_case "load-use gap" `Quick test_cpu_load_use_gap_no_stall;
        ] );
      ( "outcomes",
        [
          Alcotest.test_case "watchdog" `Quick test_cpu_watchdog;
          Alcotest.test_case "jump-to-self" `Quick test_cpu_jump_to_self_fast_abort;
          Alcotest.test_case "illegal instruction" `Quick test_cpu_illegal_instruction;
          Alcotest.test_case "misaligned load" `Quick test_cpu_misaligned_load_traps;
        ] );
      ( "fault hook",
        [
          Alcotest.test_case "kernel markers" `Quick test_cpu_kernel_markers_gate_fi;
          Alcotest.test_case "mask applied" `Quick test_cpu_fault_mask_applied;
          Alcotest.test_case "compares not faulted" `Quick test_cpu_compares_not_faulted;
          Alcotest.test_case "fi always on" `Quick test_cpu_fi_always_on;
          Alcotest.test_case "self-modifying store" `Quick test_cpu_wrapped_store_corrupts_code;
          Alcotest.test_case "aliased store invalidates decode" `Quick
            test_cpu_aliased_store_invalidates_decode;
          Alcotest.test_case "trace hook" `Quick test_cpu_trace_hook;
          Alcotest.test_case "class counts" `Quick test_cpu_stats_class_counts;
        ] );
    ]
