open Sfi_util
open Sfi_netlist
open Sfi_timing
module B = Circuit.Builder

let check_float = Alcotest.(check (float 1e-6))

(* ---------- Min_heap ---------- *)

let test_heap_basic () =
  let h = Min_heap.create () in
  Alcotest.(check bool) "empty" true (Min_heap.is_empty h);
  Min_heap.push h 3. 30;
  Min_heap.push h 1. 10;
  Min_heap.push h 2. 20;
  Alcotest.(check int) "size" 3 (Min_heap.size h);
  Alcotest.(check (option (pair (float 0.) int))) "peek->pop" (Some (1., 10)) (Min_heap.pop h);
  Alcotest.(check (option (pair (float 0.) int))) "pop2" (Some (2., 20)) (Min_heap.pop h);
  Alcotest.(check (option (pair (float 0.) int))) "pop3" (Some (3., 30)) (Min_heap.pop h);
  Alcotest.(check (option (pair (float 0.) int))) "pop empty" None (Min_heap.pop h)

let test_heap_grows () =
  let h = Min_heap.create ~capacity:2 () in
  for i = 100 downto 1 do
    Min_heap.push h (float_of_int i) i
  done;
  for i = 1 to 100 do
    match Min_heap.pop h with
    | Some (k, p) ->
      check_float "key order" (float_of_int i) k;
      Alcotest.(check int) "payload" i p
    | None -> Alcotest.fail "premature empty"
  done

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops keys in ascending order" ~count:200
    QCheck.(list (float_range 0. 1000.))
    (fun keys ->
      let h = Min_heap.create () in
      List.iteri (fun i k -> Min_heap.push h k i) keys;
      let rec drain last =
        match Min_heap.pop h with
        | None -> true
        | Some (k, _) -> k >= last && drain k
      in
      drain neg_infinity)

(* Keys quantized to a small grid so duplicate keys are frequent: the pop
   sequence must be exactly the sorted input multiset, and every payload
   must identify a pushed element carrying that key. *)
let prop_heap_matches_sort =
  QCheck.Test.make ~name:"heap pop sequence equals List.sort (with duplicates)"
    ~count:300
    QCheck.(list (int_range 0 15))
    (fun ints ->
      let keys = List.map (fun i -> float_of_int i *. 12.5) ints in
      let arr = Array.of_list keys in
      let h = Min_heap.create () in
      List.iteri (fun i k -> Min_heap.push h k i) keys;
      let popped = ref [] in
      let payload_ok = ref true in
      let rec drain () =
        match Min_heap.pop h with
        | None -> ()
        | Some (k, p) ->
          if not (p >= 0 && p < Array.length arr && arr.(p) = k) then
            payload_ok := false;
          popped := k :: !popped;
          drain ()
      in
      drain ();
      !payload_ok && List.rev !popped = List.sort compare keys)

let test_heap_int_key_api () =
  (* key_of_float is a strictly monotone, exactly invertible encoding. *)
  let samples = [ 0.; 0.5; 1.; 3.25; 17.; 999.75; 1000.; 123456.789 ] in
  List.iter
    (fun f ->
      check_float "key roundtrip" f (Min_heap.float_of_key (Min_heap.key_of_float f)))
    samples;
  let rec pairs = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "key order preserved" true
        (Min_heap.key_of_float a < Min_heap.key_of_float b);
      pairs rest
    | _ -> ()
  in
  pairs samples;
  (* pop_unsafe drains in nondecreasing key order without options. *)
  let h = Min_heap.create ~capacity:2 () in
  let keys = [| 7.5; 1.25; 7.5; 0.; 3.; 1.25; 42. |] in
  Array.iteri (fun i k -> Min_heap.push_key h (Min_heap.key_of_float k) i) keys;
  Alcotest.(check int) "peek is min" (Min_heap.key_of_float 0.)
    (Min_heap.peek_key_int h);
  let last = ref min_int and n = ref 0 in
  let rec drain () =
    let p = Min_heap.pop_unsafe h in
    if p <> Min_heap.no_event then begin
      let k = Min_heap.popped_key h in
      Alcotest.(check bool) "nondecreasing" true (k >= !last);
      check_float "key matches pushed payload" keys.(p) (Min_heap.float_of_key k);
      last := k;
      incr n;
      drain ()
    end
  in
  drain ();
  Alcotest.(check int) "all popped" (Array.length keys) !n;
  Alcotest.(check int) "empty sentinel" Min_heap.no_event (Min_heap.pop_unsafe h)

(* ---------- Vdd_model ---------- *)

let test_vdd_nominal_is_unity () =
  check_float "derate(0.7)=1" 1.0 (Vdd_model.derate Vdd_model.default 0.7)

let test_vdd_monotone () =
  let m = Vdd_model.default in
  Alcotest.(check bool) "slower at 0.6" true (Vdd_model.derate m 0.6 > 1.0);
  Alcotest.(check bool) "faster at 0.8" true (Vdd_model.derate m 0.8 < 1.0);
  Alcotest.(check bool) "faster at 1.0 than 0.8" true
    (Vdd_model.derate m 1.0 < Vdd_model.derate m 0.8)

let test_vdd_scale_factor () =
  let m = Vdd_model.default in
  check_float "no noise" 1.0 (Vdd_model.scale_factor m ~vdd:0.7 ~noise:0.);
  (* The two anchor points that reproduce the paper's model B+ onsets:
     -20 mV (2 sigma at sigma=10 mV) and -50 mV (2 sigma at 25 mV). *)
  let s20 = Vdd_model.scale_factor m ~vdd:0.7 ~noise:(-0.020) in
  let s50 = Vdd_model.scale_factor m ~vdd:0.7 ~noise:(-0.050) in
  (* 707 MHz / s20 ~ 661 MHz and 707 / s50 ~ 588-590 MHz: the paper's
     model B+ first-fault frequencies for sigma = 10 mV and 25 mV. *)
  Alcotest.(check bool) (Printf.sprintf "s20=%.4f in [1.06,1.08]" s20) true
    (s20 > 1.06 && s20 < 1.08);
  Alcotest.(check bool) (Printf.sprintf "s50=%.4f in [1.18,1.22]" s50) true
    (s50 > 1.18 && s50 < 1.22);
  Alcotest.(check bool) "positive noise speeds up" true
    (Vdd_model.scale_factor m ~vdd:0.7 ~noise:0.02 < 1.0)

let test_vdd_anchors () =
  Alcotest.(check int) "5 anchors" 5 (List.length (Vdd_model.anchors Vdd_model.default));
  List.iter
    (fun (v, d) ->
      if v = 0.7 then check_float "anchor at nominal" 1.0 d)
    (Vdd_model.anchors Vdd_model.default)

let test_vdd_rejects_bad_anchor () =
  Alcotest.(check bool) "anchor below vth" true
    (try
       ignore (Vdd_model.create ~vth:0.5 ~anchors:[ 0.45; 0.7 ] ());
       false
     with Invalid_argument _ -> true)

let test_vdd_sensitivity_negative () =
  Alcotest.(check bool) "sensitivity < 0" true
    (Vdd_model.sensitivity Vdd_model.default 0.7 < 0.)

let test_vdd_kind_skew () =
  (* A cell kind with non-zero skew must deviate from the nominal curve at
     off-nominal voltage but match at nominal. *)
  let m = Vdd_model.default in
  let lib = Cell_lib.default in
  check_float "nominal unity" 1.0 (Vdd_model.derate_kind m lib Cell.Nor2 0.7);
  let plain = Vdd_model.derate m 0.6 in
  let skewed = Vdd_model.derate_kind m lib Cell.Nor2 0.6 in
  Alcotest.(check bool) "skewed cell slower at low vdd" true (skewed > plain)

(* ---------- Cdf ---------- *)

let test_cdf_basic () =
  let c = Cdf.of_samples [| 3.; 1.; 2.; 2. |] in
  Alcotest.(check int) "n" 4 (Cdf.n c);
  check_float "min" 1. (Cdf.min_value c);
  check_float "max" 3. (Cdf.max_value c);
  check_float "P(>0)" 1. (Cdf.prob_greater c 0.);
  check_float "P(>1)" 0.75 (Cdf.prob_greater c 1.);
  check_float "P(>2)" 0.25 (Cdf.prob_greater c 2.);
  check_float "P(>3)" 0. (Cdf.prob_greater c 3.);
  check_float "P(<=2)" 0.75 (Cdf.prob_leq c 2.);
  check_float "mean" 2. (Cdf.mean c)

let test_cdf_quantiles () =
  let c = Cdf.of_samples (Array.init 100 (fun i -> float_of_int (i + 1))) in
  check_float "q0" 1. (Cdf.quantile c 0.);
  check_float "q1" 100. (Cdf.quantile c 1.);
  check_float "median" 50. (Cdf.quantile c 0.5);
  check_float "q95" 95. (Cdf.quantile c 0.95)

let test_cdf_empty_rejected () =
  Alcotest.(check bool) "empty raises" true
    (try
       ignore (Cdf.of_samples [||]);
       false
     with Invalid_argument _ -> true)

let test_cdf_nan_rejected () =
  Alcotest.(check bool) "NaN raises" true
    (try
       ignore (Cdf.of_samples [| 1.; Float.nan; 3. |]);
       false
     with Invalid_argument _ -> true)

(* Float.compare is a total order over every non-NaN float, including
   negative zero and infinities — the sort must place them correctly. *)
let test_cdf_total_order () =
  let c = Cdf.of_samples [| 0.; -0.; Float.infinity; Float.neg_infinity; 1. |] in
  check_float "min is -inf" Float.neg_infinity (Cdf.min_value c);
  check_float "max is +inf" Float.infinity (Cdf.max_value c);
  check_float "P(>1) counts only +inf" 0.2 (Cdf.prob_greater c 1.)

let prop_cdf_monotone =
  QCheck.Test.make ~name:"prob_greater is non-increasing" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 40) (float_range 0. 100.))
              (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun (samples, (x, y)) ->
      let c = Cdf.of_samples (Array.of_list samples) in
      let lo = Float.min x y and hi = Float.max x y in
      Cdf.prob_greater c lo >= Cdf.prob_greater c hi)

(* ---------- Noise ---------- *)

let test_noise_zero_sigma () =
  let rng = Rng.of_int 1 in
  check_float "no noise" 0. (Noise.draw Noise.none rng)

let test_noise_clipping () =
  let n = Noise.create ~sigma:0.01 () in
  let rng = Rng.of_int 2 in
  check_float "max excursion" 0.02 (Noise.max_excursion n);
  for _ = 1 to 10_000 do
    let x = Noise.draw n rng in
    if abs_float x > 0.02 +. 1e-12 then Alcotest.failf "clip violated: %g" x
  done

let test_noise_rejects_negative () =
  Alcotest.(check bool) "negative sigma" true
    (try
       ignore (Noise.create ~sigma:(-1.) ());
       false
     with Invalid_argument _ -> true)

(* ---------- STA ---------- *)

let test_sta_inverter_chain () =
  (* Chain of 3 inverters: arrival should be the sum of the gate delays. *)
  let b = B.create () in
  let x = B.input b "x" in
  let n1 = B.gate b Cell.Inv [| x |] in
  let n2 = B.gate b Cell.Inv [| n1 |] in
  let n3 = B.gate b Cell.Inv [| n2 |] in
  B.output b "y" n3;
  let c = Circuit.freeze b ~lib:Cell_lib.default in
  let expected = Array.fold_left ( +. ) 0. c.Circuit.base_delay in
  let r = Sta.analyze c in
  check_float "worst = sum of delays" expected r.Sta.worst;
  Alcotest.(check int) "one endpoint" 1 (Array.length r.Sta.endpoints)

let test_sta_takes_max_path () =
  (* Two paths of different length converging on an OR gate. *)
  let b = B.create () in
  let x = B.input b "x" in
  let slow = B.gate b Cell.Inv [| B.gate b Cell.Inv [| x |] |] in
  let fast = x in
  let y = B.gate b Cell.Or2 [| slow; fast |] in
  B.output b "y" y;
  let c = Circuit.freeze b ~lib:Cell_lib.default in
  let r = Sta.analyze c in
  let d_inv1 = c.Circuit.base_delay.(0) and d_inv2 = c.Circuit.base_delay.(1) in
  let d_or = c.Circuit.base_delay.(2) in
  check_float "max path" (d_inv1 +. d_inv2 +. d_or) r.Sta.worst

let test_sta_vdd_derating () =
  let b = B.create () in
  let x = B.input b "x" in
  B.output b "y" (B.gate b Cell.Inv [| x |]);
  let c = Circuit.freeze b ~lib:Cell_lib.default in
  let at_07 = (Sta.analyze ~vdd:0.7 c).Sta.worst in
  let at_06 = (Sta.analyze ~vdd:0.6 c).Sta.worst in
  let at_08 = (Sta.analyze ~vdd:0.8 c).Sta.worst in
  Alcotest.(check bool) "slower at 0.6" true (at_06 > at_07);
  Alcotest.(check bool) "faster at 0.8" true (at_08 < at_07)

let test_sta_through_restriction () =
  let b = B.create () in
  let x = B.input b "x" in
  B.set_tag b "u1";
  let long = B.gate b Cell.Inv [| B.gate b Cell.Inv [| B.gate b Cell.Inv [| x |] |] |] in
  B.set_tag b "u2";
  let short = B.gate b Cell.Inv [| x |] in
  B.set_tag b "select";
  let y = B.gate b Cell.Or2 [| long; short |] in
  B.output b "y" y;
  let c = Circuit.freeze b ~lib:Cell_lib.default in
  let w1 = Sta.worst_through c ~tag:"u1" and w2 = Sta.worst_through c ~tag:"u2" in
  Alcotest.(check bool) "u1 slower than u2" true (w1 > w2);
  check_float "full = max of units" (Sta.analyze c).Sta.worst (Float.max w1 w2)

let test_sta_frequency_conversions () =
  check_float "period of 1000 MHz" 1000. (Sta.period_ps_of_mhz 1000.);
  let r = { Sta.net_arrival = [||]; endpoints = [||]; worst = 970. } in
  check_float "fmax with 30ps setup" 1000. (Sta.max_frequency_mhz r)

(* ---------- DTA ---------- *)

let test_dta_inverter_chain_settle () =
  let b = B.create () in
  let x = B.input b "x" in
  let n1 = B.gate b Cell.Inv [| x |] in
  let n2 = B.gate b Cell.Inv [| n1 |] in
  B.output b "y" n2;
  let c = Circuit.freeze b ~lib:Cell_lib.default in
  let dta = Dta.create c in
  Dta.set_input dta x true;
  Dta.cycle dta;
  let expected = c.Circuit.base_delay.(0) +. c.Circuit.base_delay.(1) in
  check_float "settle = path delay" expected (Dta.settle_time dta n2);
  Alcotest.(check bool) "value toggled" true (Dta.value dta n2)

let test_dta_no_toggle_no_settle () =
  let b = B.create () in
  let x = B.input b "x" and y = B.input b "y" in
  let z = B.gate b Cell.And2 [| x; y |] in
  B.output b "z" z;
  let c = Circuit.freeze b ~lib:Cell_lib.default in
  let dta = Dta.create c in
  (* x toggles but the AND output stays 0 because y is low: no settle. *)
  Dta.set_input dta x true;
  Dta.cycle dta;
  check_float "output did not toggle" 0. (Dta.settle_time dta z);
  Alcotest.(check bool) "value still low" false (Dta.value dta z)

let test_dta_rejects_non_input () =
  let b = B.create () in
  let x = B.input b "x" in
  let y = B.gate b Cell.Inv [| x |] in
  B.output b "y" y;
  let c = Circuit.freeze b ~lib:Cell_lib.default in
  let dta = Dta.create c in
  Alcotest.(check bool) "gate output rejected" true
    (try
       Dta.set_input dta y true;
       false
     with Invalid_argument _ -> true)

let test_dta_matches_logic_sim_on_alu () =
  (* Functional cross-check: after every DTA cycle the settled values must
     equal the zero-delay simulation of the same inputs. This is also
     enforced inside Characterize.run; here we check it directly. *)
  let alu = Alu.build () in
  let dta = Dta.create alu.Alu.circuit in
  let logic = Logic_sim.create alu.Alu.circuit in
  let rng = Rng.of_int 7 in
  List.iter
    (fun cls ->
      for _ = 1 to 10 do
        let a = Rng.bits32 rng and b = Rng.bits32 rng in
        Array.iter (fun (c', net) -> Dta.set_input dta net (c' = cls)) alu.Alu.selects;
        Dta.set_input_vec dta alu.Alu.a a;
        Dta.set_input_vec dta alu.Alu.b b;
        Dta.cycle dta;
        let expect = Op_class.apply cls a b in
        Alcotest.(check int)
          (Printf.sprintf "%s(%08x,%08x)" (Op_class.name cls) a b)
          expect
          (Dta.read_vec dta alu.Alu.result);
        ignore logic
      done)
    [ Op_class.Add; Op_class.Mul; Op_class.Srl; Op_class.Xor_ ]

let test_dta_settle_bounded_by_sta () =
  (* Dynamic settle times can never exceed the static worst arrival. *)
  let alu = Alu.build () in
  let sta = Sta.analyze alu.Alu.circuit in
  let dta = Dta.create alu.Alu.circuit in
  let rng = Rng.of_int 11 in
  Array.iter (fun (c', net) -> Dta.set_input dta net (c' = Op_class.Add)) alu.Alu.selects;
  Dta.cycle dta;
  for _ = 1 to 50 do
    Dta.set_input_vec dta alu.Alu.a (Rng.bits32 rng);
    Dta.set_input_vec dta alu.Alu.b (Rng.bits32 rng);
    Dta.cycle dta;
    Array.iter
      (fun (_, net) ->
        if Dta.settle_time dta net > sta.Sta.net_arrival.(net) +. 1e-6 then
          Alcotest.failf "settle %.2f exceeds STA %.2f" (Dta.settle_time dta net)
            sta.Sta.net_arrival.(net))
      alu.Alu.circuit.Circuit.pos
  done

(* ---------- Path_report ---------- *)

let test_path_report_inverter_chain () =
  let b = B.create () in
  let x = B.input b "x" in
  let n1 = B.gate b Cell.Inv [| x |] in
  let n2 = B.gate b Cell.Inv [| n1 |] in
  let n3 = B.gate b Cell.Inv [| n2 |] in
  B.output b "y" n3;
  let c = Circuit.freeze b ~lib:Cell_lib.default in
  let p = Path_report.critical_path c ~endpoint:"y" in
  Alcotest.(check int) "3 gates" 3 (List.length p.Path_report.steps);
  check_float "arrival matches STA" (Sta.analyze c).Sta.worst p.Path_report.arrival;
  (* Arrivals along the path are cumulative delays. *)
  let acc = ref 0. in
  List.iter
    (fun (s : Path_report.step) ->
      acc := !acc +. s.Path_report.delay;
      check_float "cumulative" !acc s.Path_report.arrival)
    p.Path_report.steps

let test_path_report_picks_longest_branch () =
  let b = B.create () in
  let x = B.input b "x" in
  let slow = B.gate b Cell.Inv [| B.gate b Cell.Inv [| x |] |] in
  let y = B.gate b Cell.Or2 [| slow; x |] in
  B.output b "y" y;
  let c = Circuit.freeze b ~lib:Cell_lib.default in
  let p = Path_report.critical_path c ~endpoint:"y" in
  Alcotest.(check int) "through the slow branch" 3 (List.length p.Path_report.steps)

let test_path_report_worst_sorted () =
  let b = B.create () in
  let x = B.input b "x" in
  let fast = B.gate b Cell.Inv [| x |] in
  let slow = B.gate b Cell.Inv [| B.gate b Cell.Inv [| fast |] |] in
  B.output b "fast" fast;
  B.output b "slow" slow;
  let c = Circuit.freeze b ~lib:Cell_lib.default in
  match Path_report.worst_paths ~count:2 c with
  | [ p1; p2 ] ->
    Alcotest.(check string) "slowest first" "slow" p1.Path_report.endpoint;
    Alcotest.(check bool) "ordering" true (p1.Path_report.arrival >= p2.Path_report.arrival)
  | _ -> Alcotest.fail "expected two paths"

let test_path_report_unknown_endpoint () =
  let b = B.create () in
  let x = B.input b "x" in
  B.output b "y" (B.gate b Cell.Inv [| x |]);
  let c = Circuit.freeze b ~lib:Cell_lib.default in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Path_report.critical_path c ~endpoint:"nope");
       false
     with Not_found -> true)

let test_path_report_pp_truncates () =
  let b = B.create () in
  let x = B.input b "x" in
  let n = ref x in
  for _ = 1 to 40 do
    n := B.gate b Cell.Inv [| !n |]
  done;
  B.output b "y" !n;
  let c = Circuit.freeze b ~lib:Cell_lib.default in
  let s = Path_report.pp (Path_report.critical_path c ~endpoint:"y") in
  Alcotest.(check bool) "mentions truncation" true
    (String.split_on_char '\n' s |> List.exists (fun l ->
         String.length l > 0 &&
         let rec has i = i + 4 <= String.length l && (String.sub l i 4 = "more" || has (i+1)) in
         has 0))

(* ---------- Sizing + Characterize (shared sized ALU fixture) ---------- *)

let sized_alu =
  lazy
    (let alu = Alu.build () in
     Sizing.apply_process_variation ~sigma:0.03 ~seed:1 alu.Alu.circuit;
     Sizing.size_to_clock ~clock_mhz:707. alu.Alu.circuit;
     alu)

let small_db =
  lazy (Characterize.run ~cycles:400 ~seed:42 ~vdd:0.7 (Lazy.force sized_alu))

let test_sizing_hits_sta_limit () =
  let alu = Lazy.force sized_alu in
  let fmax = Sta.max_frequency_mhz (Sta.analyze alu.Alu.circuit) in
  Alcotest.(check bool) (Printf.sprintf "fmax %.2f ~ 707" fmax) true
    (abs_float (fmax -. 707.) < 1.0)

let test_sizing_mul_is_critical () =
  let alu = Lazy.force sized_alu in
  let report = Sizing.report alu.Alu.circuit in
  let w tag = List.assoc tag report in
  Alcotest.(check bool) "mul slowest" true (w "mul" >= w "addsub");
  Alcotest.(check bool) "addsub above shifters" true (w "addsub" > w "sll");
  Alcotest.(check bool) "shifters above logic" true (w "sll" > w "and")

let test_sizing_preserves_function () =
  let alu = Lazy.force sized_alu in
  let sim = Logic_sim.create alu.Alu.circuit in
  let rng = Rng.of_int 3 in
  List.iter
    (fun cls ->
      for _ = 1 to 20 do
        let a = Rng.bits32 rng and b = Rng.bits32 rng in
        Alcotest.(check int) "sized alu function" (Op_class.apply cls a b)
          (Alu.simulate alu sim cls a b)
      done)
    Op_class.all

let test_redistribute_rejects_bad_compression () =
  let alu = Lazy.force sized_alu in
  Alcotest.(check bool) "compression out of range" true
    (try
       Sizing.redistribute_slack ~tag:"addsub" ~compression:1.5 alu.Alu.circuit;
       false
     with Invalid_argument _ -> true)

let test_characterize_probability_monotone_in_frequency () =
  let db = Lazy.force small_db in
  List.iter
    (fun cls ->
      let p_slow =
        Characterize.error_probability db cls ~endpoint:31
          ~period_ps:(Sta.period_ps_of_mhz 500.) ~scale:1.0
      in
      let p_mid =
        Characterize.error_probability db cls ~endpoint:31
          ~period_ps:(Sta.period_ps_of_mhz 900.) ~scale:1.0
      in
      let p_fast =
        Characterize.error_probability db cls ~endpoint:31
          ~period_ps:(Sta.period_ps_of_mhz 2500.) ~scale:1.0
      in
      check_float (Op_class.name cls ^ " safe at 500MHz") 0. p_slow;
      Alcotest.(check bool) "monotone" true (p_mid <= p_fast))
    [ Op_class.Add; Op_class.Mul ]

let test_characterize_class_ordering () =
  let db = Lazy.force small_db in
  let f cls = Characterize.class_first_failure_mhz db cls ~scale:1.0 in
  Alcotest.(check bool)
    (Printf.sprintf "mul %.0f fails before add %.0f" (f Op_class.Mul) (f Op_class.Add))
    true
    (f Op_class.Mul < f Op_class.Add);
  Alcotest.(check bool) "add fails before and" true (f Op_class.Add < f Op_class.And_);
  (* Everything must be safe at the STA limit without noise. *)
  List.iter
    (fun cls ->
      Alcotest.(check bool)
        (Printf.sprintf "%s safe at STA" (Op_class.name cls))
        true
        (f cls > 707.))
    Op_class.all

let test_characterize_noise_scale_shifts_down () =
  let db = Lazy.force small_db in
  let f scale = Characterize.class_first_failure_mhz db Op_class.Mul ~scale in
  Alcotest.(check bool) "slower under noise" true (f 1.1 < f 1.0)

let test_characterize_msb_fails_before_lsb () =
  let db = Lazy.force small_db in
  (* At a frequency where faults occur, higher-significance adder bits must
     have at least the error probability of low bits (longer carry paths). *)
  let period = Sta.period_ps_of_mhz 950. in
  let p e = Characterize.error_probability db Op_class.Add ~endpoint:e ~period_ps:period ~scale:1.0 in
  Alcotest.(check bool)
    (Printf.sprintf "P(bit24)=%.3f >= P(bit3)=%.3f" (p 24) (p 3))
    true
    (p 24 >= p 3)

let test_characterize_higher_vdd_shifts_right () =
  let alu = Lazy.force sized_alu in
  let db07 = Lazy.force small_db in
  let db08 = Characterize.run ~cycles:200 ~seed:42 ~vdd:0.8 alu in
  let f07 = Characterize.class_first_failure_mhz db07 Op_class.Mul ~scale:1.0 in
  let f08 = Characterize.class_first_failure_mhz db08 Op_class.Mul ~scale:1.0 in
  Alcotest.(check bool)
    (Printf.sprintf "0.8V limit %.0f > 0.7V limit %.0f" f08 f07)
    true (f08 > f07)

let test_characterize_16bit_profile_safer () =
  let alu = Lazy.force sized_alu in
  let db16 =
    Characterize.run ~cycles:300 ~seed:42 ~vdd:0.7
      ~profile_for:(fun _ -> Characterize.uniform16) alu
  in
  let db32 = Lazy.force small_db in
  let f16 = Characterize.class_first_failure_mhz db16 Op_class.Add ~scale:1.0 in
  let f32 = Characterize.class_first_failure_mhz db32 Op_class.Add ~scale:1.0 in
  Alcotest.(check bool)
    (Printf.sprintf "add16 %.0f fails later than add32 %.0f" f16 f32)
    true (f16 > f32)

let test_violation_mask_consistent () =
  let db = Lazy.force small_db in
  (* If the mask of some cycle has bit e set at period T, then the error
     probability of endpoint e at T must be positive. *)
  let period = Sta.period_ps_of_mhz 1000. in
  let any_bit = ref false in
  for k = 0 to db.Characterize.cycles - 1 do
    let mask = Characterize.violation_mask db Op_class.Mul ~cycle:k ~period_ps:period ~scale:1.0 in
    if mask <> 0 then begin
      any_bit := true;
      for e = 0 to 31 do
        if mask land (1 lsl e) <> 0 then begin
          let p =
            Characterize.error_probability db Op_class.Mul ~endpoint:e ~period_ps:period
              ~scale:1.0
          in
          Alcotest.(check bool) "P > 0 where mask set" true (p > 0.)
        end
      done
    end
  done;
  Alcotest.(check bool) "mul has violations at 1000 MHz" true !any_bit

let test_characterize_deterministic_in_seed () =
  let alu = Lazy.force sized_alu in
  let run () = Characterize.run ~cycles:120 ~seed:5 ~vdd:0.7 alu in
  let a = run () and b = run () in
  List.iter
    (fun cls ->
      let ca = Characterize.class_db a cls and cb = Characterize.class_db b cls in
      Alcotest.(check (float 1e-9))
        (Op_class.name cls ^ " max settle")
        ca.Characterize.max_settle cb.Characterize.max_settle)
    Op_class.all

let test_characterize_rejects_bad_cycles () =
  let alu = Lazy.force sized_alu in
  Alcotest.(check bool) "cycles=0 rejected" true
    (try
       ignore (Characterize.run ~cycles:0 ~vdd:0.7 alu);
       false
     with Invalid_argument _ -> true)

(* ---------- random-circuit properties ---------- *)

(* A generator of small random combinational circuits: validates that the
   delay-annotated simulator agrees with the zero-delay one and never
   settles later than STA, on structures far from the hand-written
   datapaths. *)
let random_circuit rng ~inputs ~gates =
  let b = B.create () in
  let ins = Array.init inputs (fun i -> B.input b (Printf.sprintf "i%d" i)) in
  let nets = ref (Array.to_list ins) in
  let pick () =
    let l = !nets in
    List.nth l (Rng.int rng (List.length l))
  in
  let kinds = Array.of_list Cell.all in
  for _ = 1 to gates do
    let kind = kinds.(Rng.int rng (Array.length kinds)) in
    let fan_in = Array.init (Cell.arity kind) (fun _ -> pick ()) in
    nets := B.gate b kind fan_in :: !nets
  done;
  (* Outputs: a handful of recent nets. *)
  let outs = List.filteri (fun i _ -> i < 4) !nets in
  List.iteri (fun i n -> B.output b (Printf.sprintf "o%d" i) n) outs;
  (Circuit.freeze b ~lib:Cell_lib.default, ins, Array.of_list outs)

let prop_dta_matches_logic_on_random_circuits =
  QCheck.Test.make ~name:"DTA values equal zero-delay simulation" ~count:60
    QCheck.(pair small_nat small_nat)
    (fun (seed, vectors) ->
      let rng = Rng.of_int (seed + 1) in
      let c, ins, outs = random_circuit rng ~inputs:6 ~gates:40 in
      let dta = Dta.create c in
      let logic = Logic_sim.create c in
      let ok = ref true in
      for _ = 0 to min vectors 20 do
        let v = Rng.int rng 64 in
        Dta.set_input_vec dta ins v;
        Logic_sim.set_input_vec logic ins v;
        Dta.cycle dta;
        Logic_sim.eval logic;
        Array.iter (fun n -> if Dta.value dta n <> Logic_sim.value logic n then ok := false) outs
      done;
      !ok)

let prop_dta_settle_within_sta_on_random_circuits =
  QCheck.Test.make ~name:"DTA settle times bounded by STA on random circuits" ~count:40
    QCheck.small_nat
    (fun seed ->
      let rng = Rng.of_int (seed + 101) in
      let c, ins, outs = random_circuit rng ~inputs:5 ~gates:30 in
      let sta = Sta.analyze c in
      let dta = Dta.create c in
      let ok = ref true in
      for _ = 1 to 10 do
        Dta.set_input_vec dta ins (Rng.int rng 32);
        Dta.cycle dta;
        Array.iter
          (fun n ->
            if Dta.settle_time dta n > sta.Sta.net_arrival.(n) +. 1e-6 then ok := false)
          outs
      done;
      !ok)

(* ---------- DTA vs. seed reference kernel ---------- *)

(* A line-for-line replica of the seed (pre-optimization) DTA: float event
   times, O(n_nets) settle reset per cycle, one event pushed per fan-out
   reader per transition, no coalescing. The production kernel must
   produce bit-identical settle times and values; this pins the int-key
   encoding, the generation-stamp reset and the same-time event dedup
   against the straightforward implementation. *)
module Ref_dta = struct
  type t = {
    circuit : Circuit.t;
    delay : float array;
    values : bool array;
    settle : float array;
    staged : (Circuit.net * bool) Queue.t;
    heap : Min_heap.t;
  }

  let create ?(vdd = Vdd_model.nominal_voltage) ?(vdd_model = Vdd_model.default)
      ?(lib = Cell_lib.default) (c : Circuit.t) =
    let kind_factor =
      let table =
        List.map (fun k -> (k, Vdd_model.derate_kind vdd_model lib k vdd)) Cell.all
      in
      fun kind -> List.assq kind table
    in
    let delay =
      Array.mapi
        (fun i (g : Circuit.gate) ->
          c.Circuit.base_delay.(i) *. kind_factor g.Circuit.kind)
        c.Circuit.gates
    in
    let values = Array.make c.Circuit.n_nets false in
    (match c.Circuit.const_true with Some n -> values.(n) <- true | None -> ());
    Circuit.eval_all_gates c values;
    {
      circuit = c;
      delay;
      values;
      settle = Array.make c.Circuit.n_nets 0.;
      staged = Queue.create ();
      heap = Min_heap.create ();
    }

  let set_input t net v = Queue.add (net, v) t.staged

  let set_input_vec t nets word =
    Array.iteri (fun i n -> set_input t n ((word lsr i) land 1 = 1)) nets

  let cycle t =
    Array.fill t.settle 0 (Array.length t.settle) 0.;
    let off = t.circuit.Circuit.reader_off
    and rg = t.circuit.Circuit.reader_gate in
    let push_readers net time =
      for j = off.(net) to off.(net + 1) - 1 do
        let gi = rg.(j) in
        Min_heap.push t.heap (time +. t.delay.(gi)) gi
      done
    in
    Queue.iter
      (fun (net, v) ->
        if t.values.(net) <> v then begin
          t.values.(net) <- v;
          push_readers net 0.
        end)
      t.staged;
    Queue.clear t.staged;
    let rec drain () =
      match Min_heap.pop t.heap with
      | None -> ()
      | Some (time, gi) ->
        let out_net = t.circuit.Circuit.gates.(gi).Circuit.out in
        let v = Circuit.eval_gate t.circuit t.values gi in
        if t.values.(out_net) <> v then begin
          t.values.(out_net) <- v;
          t.settle.(out_net) <- time;
          push_readers out_net time
        end;
        drain ()
    in
    drain ()

  let read_vec t nets =
    let acc = ref 0 in
    Array.iteri (fun i n -> if t.values.(n) then acc := !acc lor (1 lsl i)) nets;
    !acc

  let settle_time t net = t.settle.(net)
end

let test_dta_equals_reference_kernel () =
  let alu = Lazy.force sized_alu in
  let c = alu.Alu.circuit in
  let dta = Dta.create c in
  let rf = Ref_dta.create c in
  let rng = Rng.of_int 2024 in
  List.iter
    (fun cls ->
      Array.iter
        (fun (sc, n) ->
          Dta.set_input dta n (sc = cls);
          Ref_dta.set_input rf n (sc = cls))
        alu.Alu.selects;
      for _ = 1 to 12 do
        let a = Rng.bits32 rng and b = Rng.bits32 rng in
        Dta.set_input_vec dta alu.Alu.a a;
        Ref_dta.set_input_vec rf alu.Alu.a a;
        Dta.set_input_vec dta alu.Alu.b b;
        Ref_dta.set_input_vec rf alu.Alu.b b;
        Dta.cycle dta;
        Ref_dta.cycle rf;
        Alcotest.(check int) "result vector identical"
          (Ref_dta.read_vec rf alu.Alu.result)
          (Dta.read_vec dta alu.Alu.result);
        Array.iter
          (fun n ->
            let s_ref = Ref_dta.settle_time rf n and s = Dta.settle_time dta n in
            if s <> s_ref then
              Alcotest.failf "settle mismatch on net %d: %.17g vs reference %.17g" n
                s s_ref)
          alu.Alu.result
      done)
    [ Op_class.Add; Op_class.Mul; Op_class.Xor_; Op_class.Sll ]

let test_dta_cycle_allocation_free () =
  match Sys.backend_type with
  | Sys.Native ->
    let alu = Lazy.force sized_alu in
    let dta = Dta.create alu.Alu.circuit in
    let rng = Rng.of_int 99 in
    let n = 64 in
    let va = Array.init n (fun _ -> Rng.bits32 rng) in
    let vb = Array.init n (fun _ -> Rng.bits32 rng) in
    let run () =
      for i = 0 to n - 1 do
        Dta.set_input_vec dta alu.Alu.a va.(i);
        Dta.set_input_vec dta alu.Alu.b vb.(i);
        Dta.cycle dta
      done
    in
    (* Warm-up grows the heap and staging buffers to steady state. *)
    run ();
    let w0 = Gc.minor_words () in
    run ();
    let dw = Gc.minor_words () -. w0 in
    (* The first Gc.minor_words call boxes its float result inside the
       measured window, so allow a few words of slack; the seed kernel
       allocated several words per event (hundreds of thousands here). *)
    Alcotest.(check bool)
      (Printf.sprintf "DTA cycles allocated %.0f minor words" dw)
      true (dw < 16.)
  | Sys.Bytecode | Sys.Other _ ->
    (* Bytecode boxes the [@unboxed] float/int64 externals; the property
       only holds (and only matters) for native code. *)
    ()

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_heap_sorts;
        prop_heap_matches_sort;
        prop_cdf_monotone;
        prop_dta_matches_logic_on_random_circuits;
        prop_dta_settle_within_sta_on_random_circuits;
      ]
  in
  Alcotest.run "sfi_timing"
    [
      ( "min_heap",
        [
          Alcotest.test_case "basic" `Quick test_heap_basic;
          Alcotest.test_case "grows" `Quick test_heap_grows;
          Alcotest.test_case "int-key api" `Quick test_heap_int_key_api;
        ] );
      ( "vdd_model",
        [
          Alcotest.test_case "nominal unity" `Quick test_vdd_nominal_is_unity;
          Alcotest.test_case "monotone" `Quick test_vdd_monotone;
          Alcotest.test_case "scale factor anchors" `Quick test_vdd_scale_factor;
          Alcotest.test_case "anchors" `Quick test_vdd_anchors;
          Alcotest.test_case "bad anchor rejected" `Quick test_vdd_rejects_bad_anchor;
          Alcotest.test_case "sensitivity sign" `Quick test_vdd_sensitivity_negative;
          Alcotest.test_case "per-kind skew" `Quick test_vdd_kind_skew;
        ] );
      ( "cdf",
        [
          Alcotest.test_case "basic" `Quick test_cdf_basic;
          Alcotest.test_case "quantiles" `Quick test_cdf_quantiles;
          Alcotest.test_case "empty rejected" `Quick test_cdf_empty_rejected;
          Alcotest.test_case "NaN rejected" `Quick test_cdf_nan_rejected;
          Alcotest.test_case "total order incl. zeros and infinities" `Quick
            test_cdf_total_order;
        ] );
      ( "noise",
        [
          Alcotest.test_case "zero sigma" `Quick test_noise_zero_sigma;
          Alcotest.test_case "clipping" `Quick test_noise_clipping;
          Alcotest.test_case "negative sigma rejected" `Quick test_noise_rejects_negative;
        ] );
      ( "sta",
        [
          Alcotest.test_case "inverter chain" `Quick test_sta_inverter_chain;
          Alcotest.test_case "max path" `Quick test_sta_takes_max_path;
          Alcotest.test_case "vdd derating" `Quick test_sta_vdd_derating;
          Alcotest.test_case "through restriction" `Quick test_sta_through_restriction;
          Alcotest.test_case "frequency conversions" `Quick test_sta_frequency_conversions;
        ] );
      ( "dta",
        [
          Alcotest.test_case "inverter chain settle" `Quick test_dta_inverter_chain_settle;
          Alcotest.test_case "no toggle no settle" `Quick test_dta_no_toggle_no_settle;
          Alcotest.test_case "rejects non-input" `Quick test_dta_rejects_non_input;
          Alcotest.test_case "matches logic sim on ALU" `Quick test_dta_matches_logic_sim_on_alu;
          Alcotest.test_case "settle bounded by STA" `Quick test_dta_settle_bounded_by_sta;
          Alcotest.test_case "equals seed reference kernel" `Quick
            test_dta_equals_reference_kernel;
          Alcotest.test_case "cycle is allocation-free" `Quick
            test_dta_cycle_allocation_free;
        ] );
      ( "path_report",
        [
          Alcotest.test_case "inverter chain" `Quick test_path_report_inverter_chain;
          Alcotest.test_case "longest branch" `Quick test_path_report_picks_longest_branch;
          Alcotest.test_case "worst sorted" `Quick test_path_report_worst_sorted;
          Alcotest.test_case "unknown endpoint" `Quick test_path_report_unknown_endpoint;
          Alcotest.test_case "pp truncates" `Quick test_path_report_pp_truncates;
        ] );
      ( "sizing",
        [
          Alcotest.test_case "hits STA limit" `Quick test_sizing_hits_sta_limit;
          Alcotest.test_case "mul critical" `Quick test_sizing_mul_is_critical;
          Alcotest.test_case "preserves function" `Quick test_sizing_preserves_function;
          Alcotest.test_case "rejects bad compression" `Quick
            test_redistribute_rejects_bad_compression;
        ] );
      ( "characterize",
        [
          Alcotest.test_case "P monotone in f" `Quick
            test_characterize_probability_monotone_in_frequency;
          Alcotest.test_case "class ordering" `Quick test_characterize_class_ordering;
          Alcotest.test_case "noise shifts down" `Quick
            test_characterize_noise_scale_shifts_down;
          Alcotest.test_case "MSB fails first" `Quick test_characterize_msb_fails_before_lsb;
          Alcotest.test_case "higher vdd shifts right" `Quick
            test_characterize_higher_vdd_shifts_right;
          Alcotest.test_case "16-bit profile safer" `Quick
            test_characterize_16bit_profile_safer;
          Alcotest.test_case "violation mask consistent" `Quick test_violation_mask_consistent;
          Alcotest.test_case "deterministic in seed" `Quick
            test_characterize_deterministic_in_seed;
          Alcotest.test_case "rejects bad cycles" `Quick test_characterize_rejects_bad_cycles;
        ] );
      ("properties", qsuite);
    ]
